# GPUSimPow reproduction — build/test/benchmark entry points.
#
# `make ci` is the gate every change must pass: vet, build, and the full
# test suite under the race detector (load-bearing since the experiment
# sweeps fan out over internal/runner's worker pool).

GO ?= go

.PHONY: ci vet build test race bench baseline

ci: vet build race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark pass over the whole harness (one iteration each).
bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE .

# Regenerate BENCH_BASELINE.json (see docs/PERFORMANCE.md).
baseline:
	./scripts/bench_baseline.sh
