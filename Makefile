# GPUSimPow reproduction — build/test/benchmark entry points.
#
# `make ci` is the gate every change must pass: vet, the repo-specific
# lints, build, and the full test suite under the race detector
# (load-bearing since the experiment sweeps fan out over
# internal/runner's worker pool).

GO ?= go

.PHONY: ci vet lint build test race bench baseline bench-compare ci-bench ci-seq ci-service ci-restart ci-fleet fmt-check golden-update profile

ci: fmt-check vet lint build race ci-seq ci-bench ci-service ci-restart ci-fleet

vet:
	$(GO) vet ./...

# Repo-specific static analysis (cmd/gpowlint): the determinism and
# cache-partition invariants go vet cannot see — timing-key coverage,
# map-iteration order, wall-clock reads, wire-struct json tags, faultpoint
# name drift. See docs/LINTS.md.
lint:
	$(GO) run ./cmd/gpowlint

# gofmt gate: any file gofmt would rewrite fails CI.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt -l flagged:"; echo "$$out"; exit 1; fi

# Service smoke: start gpowd on a loopback port, run the cheapest sweep
# scenario in-process and through the daemon, diff the NDJSON cell
# records AND the reduced report (JSON + rendered text) byte for byte
# (see scripts/service_smoke.sh).
ci-service:
	./scripts/service_smoke.sh

# Crash/restart drill: kill gpowd mid-job via the
# crash-after-journal-append faultpoint, restart it on the same state
# dir, and diff the self-healing client's resumed output and the
# recovered job's report byte for byte against an uninterrupted run
# (see scripts/service_restart.sh).
ci-restart:
	./scripts/service_restart.sh

# Fleet chaos drill: run 2 gpowd backends behind gpowfleet, kill the
# job's ring-owner backend mid-run via faultpoint, and prove the riding
# client's NDJSON and the failed-over job's report match an
# uninterrupted single-node run byte for byte; then drain a backend and
# prove it takes no new work while still serving its existing jobs
# (see scripts/fleet_drill.sh, docs/FLEET.md).
ci-fleet:
	./scripts/fleet_drill.sh

# The scenario golden files (internal/experiments/testdata/*.golden) pin
# every scenario's rendered report byte-identical to the pre-split
# printers; they run as part of `make race`/`make test`. Regenerate after
# an intentional output change:
golden-update:
	$(GO) test ./internal/experiments -run TestGoldenReports -update

# Sequential-mode gate: the equivalence suites (fast-forward, parallel
# stepping) once more with GPUSIMPOW_SIM_WORKERS=1 forced process-wide, so
# the reference path stays exercised even on many-core CI hosts where the
# default run parallelizes. (TestParallelEquivalence pins its own worker
# counts via the config knob, which the env override does not reach there.)
ci-seq:
	GPUSIMPOW_SIM_WORKERS=1 $(GO) test ./internal/sim -run 'Equivalence'

# Profile one scenario run end to end with the gpowexp pprof flags:
#   make profile SCENARIO=fig6a
# then `go tool pprof cpu.prof` / `go tool pprof mem.prof`.
SCENARIO ?= fig6a
profile:
	$(GO) run ./cmd/gpowexp run $(SCENARIO) -cpuprofile cpu.prof -memprofile mem.prof

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Quick benchmark pass over the whole harness (one iteration each).
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run=NONE .

# Regenerate BENCH_BASELINE.json (see docs/PERFORMANCE.md).
baseline:
	./scripts/bench_baseline.sh

# Diff two benchmark snapshots: custom-metric drift (must be zero) is
# flagged separately from timing/allocation drift, and fails the target.
#   make bench-compare OLD=BENCH_BASELINE.json NEW=BENCH_NEW.json
bench-compare:
	$(GO) run ./scripts/benchjson -compare $(OLD) $(NEW)

# CI gate on the committed baseline: run the benchmark harness once and
# compare against BENCH_BASELINE.json. Custom metrics are deterministic
# reproduced model quantities — any drift fails; timing and allocation
# deltas are host-dependent and only warn (benchjson prints them as
# informational).
ci-bench:
	@tmp=$$(mktemp) && trap 'rm -f "$$tmp" "$$tmp.json"' EXIT && \
	$(GO) test -bench=. -benchtime=1x -benchmem -run=NONE -json . > "$$tmp" && \
	$(GO) run ./scripts/benchjson < "$$tmp" > "$$tmp.json" && \
	$(GO) run ./scripts/benchjson -compare BENCH_BASELINE.json "$$tmp.json"
