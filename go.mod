module gpusimpow

go 1.24.0
