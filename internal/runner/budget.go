package runner

import (
	"runtime"
	"sync/atomic"
)

// Shared node-wide worker budget.
//
// Two layers of this codebase fan out onto OS threads: the experiment
// runner's job pool (MapN, above) and the timing simulator's
// intra-simulation core stepping (internal/sim, the SimWorkers knob).
// Composed naively — a GOMAXPROCS-wide sweep whose every job also spawns
// GOMAXPROCS sim workers — they oversubscribe the node quadratically. The
// budget below is the coordination point: a single process-wide count of
// *extra* workers (beyond the calling goroutine) currently claimed. MapN
// registers its pool here unconditionally — the sweep layer is the outer
// loop and gets priority — while the simulator asks elastically via
// TryReserveWorkers and falls back to its sequential path when the budget
// is exhausted. The budget only shapes how many threads run; it never
// changes what is simulated (the parallel and sequential sim paths are
// bit-identical), so an unlucky reservation race costs throughput, not
// determinism.

// reservedWorkers counts extra OS-thread claims currently outstanding
// (each Map/MapN pool counts workers-1; each parallel simulation counts
// its sim workers minus one).
var reservedWorkers atomic.Int64

// workerBudget is the total number of extra workers worth claiming:
// GOMAXPROCS minus the calling goroutine.
func workerBudget() int64 {
	return int64(runtime.GOMAXPROCS(0)) - 1
}

// ReserveWorkers unconditionally claims n extra workers, driving the
// budget negative if need be. Callers that were explicitly told a worker
// count (a forced SimWorkers config, an explicit MapN width) use this:
// the user's word beats the heuristic. Pair with ReleaseWorkers.
func ReserveWorkers(n int) {
	if n > 0 {
		reservedWorkers.Add(int64(n))
	}
}

// TryReserveWorkers claims up to n extra workers without exceeding the
// budget and returns how many it got (possibly zero; never negative).
// Elastic callers — the simulator's auto worker mode — size themselves
// from the grant and must release exactly that many afterwards.
func TryReserveWorkers(n int) int {
	if n <= 0 {
		return 0
	}
	budget := workerBudget()
	for {
		cur := reservedWorkers.Load()
		free := budget - cur
		if free <= 0 {
			return 0
		}
		grant := int64(n)
		if grant > free {
			grant = free
		}
		if reservedWorkers.CompareAndSwap(cur, cur+grant) {
			return int(grant)
		}
	}
}

// ReleaseWorkers returns n previously reserved workers to the budget.
func ReleaseWorkers(n int) {
	if n > 0 {
		reservedWorkers.Add(-int64(n))
	}
}
