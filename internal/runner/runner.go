// Package runner provides the bounded-parallelism fan-out used by the
// experiment sweeps. The paper's headline artifacts — Figure 6's 19 kernels
// × 2 GPUs, the design-choice ablations, the DVFS sweep — are embarrassingly
// parallel: every (configuration, kernel) simulation is independent. The
// runner executes such jobs across a GOMAXPROCS-sized worker pool while
// keeping results (and the reported error) deterministic: results are
// returned in index order, and the error of the lowest-index failing job
// wins regardless of completion order.
//
// Jobs must not share mutable state. In this codebase that means each job
// builds its own simulator (core.New), virtual card (hw.NewCard) and
// benchmark instance; configurations returned by config presets are fresh
// per call and safe to use within one job.
package runner

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Map runs fn(0) … fn(n-1) on a worker pool sized min(n, GOMAXPROCS) and
// returns the results in index order. Every job runs to completion even if
// another job fails; if any jobs failed, the error of the lowest-index
// failure is returned alongside the full result slice.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(0, n, fn)
}

// MapN is Map with an explicit worker count. workers <= 0 selects
// min(n, GOMAXPROCS).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)

	if workers == 1 {
		// Degenerate pool: run inline, sparing the goroutine machinery (and
		// keeping single-CPU traces identical to the serial code).
		for i := 0; i < n; i++ {
			results[i], errs[i] = fn(i)
		}
		return results, firstError(errs)
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

// ForEach is Map for jobs with no result value.
func ForEach(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
