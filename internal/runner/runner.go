// Package runner provides the bounded-parallelism fan-out used by the
// experiment sweeps. The paper's headline artifacts — Figure 6's 19 kernels
// × 2 GPUs, the design-choice ablations, the DVFS sweep — are embarrassingly
// parallel: every (configuration, kernel) simulation is independent. The
// runner executes such jobs across a GOMAXPROCS-sized worker pool while
// keeping results (and the reported error) deterministic: results are
// returned in index order, and the error of the lowest-index failing job
// wins regardless of completion order.
//
// Jobs must not share mutable state. In this codebase that means each job
// builds its own simulator (core.New), virtual card (hw.NewCard) and
// benchmark instance; configurations returned by config presets are fresh
// per call and safe to use within one job.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError is what a job function's panic becomes: the pool recovers it
// on the worker goroutine (where it would otherwise kill the whole
// process — no caller can recover a panic on another goroutine) and
// reports it through the normal error path, stack attached. Long-lived
// callers (the sweep service's job workers) thus survive a panicking
// workload builder or scenario hook: the job fails, the process stays up.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("runner: job panicked: %v\n%s", e.Value, e.Stack)
}

// Map runs fn(0) … fn(n-1) on a worker pool sized min(n, GOMAXPROCS) and
// returns the results in index order. Every job runs to completion even if
// another job fails; if any jobs failed, the error of the lowest-index
// failure is returned alongside the full result slice. A panicking job is
// contained to that job: it yields a *PanicError instead of unwinding the
// pool.
func Map[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	return MapN(0, n, fn)
}

// MapN is Map with an explicit worker count. workers <= 0 selects
// min(n, GOMAXPROCS).
func MapN[T any](workers, n int, fn func(i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	results := make([]T, n)
	errs := make([]error, n)
	// Panic containment applies on the inline path too, so a job's failure
	// mode does not depend on GOMAXPROCS.
	call := func(i int) (out T, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = &PanicError{Value: r, Stack: debug.Stack()}
			}
		}()
		return fn(i)
	}

	if workers == 1 {
		// Degenerate pool: run inline, sparing the goroutine machinery (and
		// keeping single-CPU traces identical to the serial code).
		for i := 0; i < n; i++ {
			results[i], errs[i] = call(i)
		}
		return results, firstError(errs)
	}

	// Register the pool's extra threads with the shared worker budget so
	// intra-simulation parallelism (internal/sim's elastic SimWorkers auto
	// mode) sizes itself around the sweep-level fan-out instead of
	// multiplying with it.
	ReserveWorkers(workers - 1)
	defer ReleaseWorkers(workers - 1)

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				results[i], errs[i] = call(i)
			}
		}()
	}
	wg.Wait()
	return results, firstError(errs)
}

// ForEach is Map for jobs with no result value.
func ForEach(n int, fn func(i int) error) error {
	_, err := Map(n, func(i int) (struct{}, error) { return struct{}{}, fn(i) })
	return err
}

func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Flight deduplicates concurrent calls by key ("single-flight"): the first
// caller of a key runs fn, every caller that arrives while that call is in
// flight blocks and receives the same result. The simulation-result cache
// fronts the timing simulator with one, so parallel sweep jobs wanting the
// same content-addressed key simulate it exactly once. The zero value is
// ready to use.
type Flight[K comparable, V any] struct {
	mu       sync.Mutex
	inflight map[K]*flightCall[V]
}

type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do runs fn once per concurrently-requested key and returns its result.
// shared reports whether the result came from another caller's execution —
// callers that need fn's side effects locally must replay them when shared
// is true. Results are not memoized beyond the in-flight window: a new call
// after completion runs fn again (long-term memoization is the cache's job,
// not the flight group's).
func (f *Flight[K, V]) Do(key K, fn func() (V, error)) (val V, err error, shared bool) {
	f.mu.Lock()
	if f.inflight == nil {
		f.inflight = make(map[K]*flightCall[V])
	}
	if c, ok := f.inflight[key]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.inflight[key] = c
	f.mu.Unlock()

	// The cleanup must run even if fn panics: the key would otherwise stay
	// in the inflight map with its done channel never closed, deadlocking
	// every current and future caller of that key. A panicking fn still
	// unwinds the leader, but waiters receive an error instead of hanging.
	completed := false
	defer func() {
		if !completed {
			c.err = errFlightPanicked
		}
		f.mu.Lock()
		delete(f.inflight, key)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	completed = true
	return c.val, c.err, false
}

// errFlightPanicked is handed to waiters whose leader's fn panicked.
var errFlightPanicked = errors.New("runner: single-flight function panicked")
