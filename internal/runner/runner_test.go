package runner

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	const n = 1000
	got, err := Map(n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (index order violated)", i, v, i*i)
		}
	}
}

func TestMapDeterministicError(t *testing.T) {
	// Jobs 700 and 13 both fail; the lowest index must win no matter which
	// worker finishes first.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(1000, func(i int) (int, error) {
			if i == 700 || i == 13 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 13 failed" {
			t.Fatalf("trial %d: got error %v, want job 13's", trial, err)
		}
	}
}

func TestMapAllJobsRunDespiteFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(100, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("only %d of 100 jobs ran", ran.Load())
	}
}

func TestMapNWorkerClamping(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 64} {
		got, err := MapN(workers, 10, func(i int) (int, error) { return i, nil })
		if err != nil || len(got) != 10 {
			t.Fatalf("workers=%d: len=%d err=%v", workers, len(got), err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}

func TestFlightDeduplicatesConcurrentCalls(t *testing.T) {
	var f Flight[string, int]
	var calls atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	const n = 8
	results := make([]int, n)
	shareds := make([]bool, n)
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do("k", func() (int, error) {
				close(started)
				<-release // hold the flight open so everyone piles up
				calls.Add(1)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i], shareds[i] = v, shared
		}(i)
	}
	<-started
	// Give the other callers a moment to enqueue, then release the leader.
	for i := 0; i < 100; i++ {
		runtime.Gosched()
	}
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	leaders := 0
	for i := 0; i < n; i++ {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d", i, results[i])
		}
		if !shareds[i] {
			leaders++
		}
	}
	if leaders != 1 {
		t.Fatalf("%d callers claim to have run fn, want 1", leaders)
	}
}

func TestFlightSequentialCallsRunAgain(t *testing.T) {
	var f Flight[int, int]
	var calls int
	for i := 0; i < 3; i++ {
		v, err, shared := f.Do(7, func() (int, error) { calls++; return calls, nil })
		if err != nil || shared {
			t.Fatalf("call %d: err=%v shared=%v", i, err, shared)
		}
		if v != i+1 {
			t.Fatalf("call %d returned %d; flights must not memoize", i, v)
		}
	}
}

func TestFlightPropagatesErrors(t *testing.T) {
	var f Flight[int, int]
	wantErr := errors.New("boom")
	if _, err, _ := f.Do(1, func() (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	// A failed flight leaves nothing behind; the next call runs fn again.
	v, err, shared := f.Do(1, func() (int, error) { return 9, nil })
	if v != 9 || err != nil || shared {
		t.Fatalf("post-error call: v=%d err=%v shared=%v", v, err, shared)
	}
}

func TestFlightSurvivesPanic(t *testing.T) {
	var f Flight[int, int]
	// A waiter blocked behind the panicking leader must be released with an
	// error, and the key must be usable again afterwards.
	entered := make(chan struct{})
	waiterDone := make(chan error, 1)
	go func() {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("leader's panic was swallowed")
				}
			}()
			f.Do(1, func() (int, error) {
				close(entered)
				for i := 0; i < 200; i++ {
					runtime.Gosched() // let the waiter enqueue
				}
				panic("boom")
			})
		}()
	}()
	<-entered
	// This call either catches the in-flight panicking leader (must be
	// released with an error, not deadlock) or — if cleanup already ran —
	// becomes a fresh leader and succeeds. Both are fine; hanging is not.
	_, err, shared := f.Do(1, func() (int, error) { return 1, nil })
	waiterDone <- err
	if err := <-waiterDone; shared && err == nil {
		t.Fatal("waiter behind a panicked flight got no error")
	}
	v, err, shared := f.Do(1, func() (int, error) { return 3, nil })
	if v != 3 || err != nil || shared {
		t.Fatalf("post-panic call: v=%d err=%v shared=%v (key leaked?)", v, err, shared)
	}
}

func TestMapNPanicContainment(t *testing.T) {
	// Both pool shapes must contain a panicking job identically: the
	// inline workers==1 path and the goroutine pool. A process-killing
	// panic here would fail the whole test binary, so merely returning
	// is already half the assertion.
	for _, workers := range []int{1, 4} {
		got, err := MapN(workers, 8, func(i int) (int, error) {
			if i == 3 {
				panic(fmt.Sprintf("job %d exploded", i))
			}
			return i, nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err %v, want *PanicError", workers, err)
		}
		if pe.Value != "job 3 exploded" {
			t.Errorf("workers=%d: panic value %v", workers, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "goroutine") {
			t.Errorf("workers=%d: stack missing: %q", workers, pe.Stack)
		}
		if !strings.Contains(pe.Error(), "job 3 exploded") {
			t.Errorf("workers=%d: Error() lost the value: %q", workers, pe.Error())
		}
		// The other jobs still ran to completion.
		for i, v := range got {
			if i != 3 && v != i {
				t.Errorf("workers=%d: job %d result %d despite unrelated panic", workers, i, v)
			}
		}
	}
}
