package runner

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderAndCompleteness(t *testing.T) {
	const n = 1000
	got, err := Map(n, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d (index order violated)", i, v, i*i)
		}
	}
}

func TestMapDeterministicError(t *testing.T) {
	// Jobs 700 and 13 both fail; the lowest index must win no matter which
	// worker finishes first.
	for trial := 0; trial < 20; trial++ {
		_, err := Map(1000, func(i int) (int, error) {
			if i == 700 || i == 13 {
				return 0, fmt.Errorf("job %d failed", i)
			}
			return i, nil
		})
		if err == nil || err.Error() != "job 13 failed" {
			t.Fatalf("trial %d: got error %v, want job 13's", trial, err)
		}
	}
}

func TestMapAllJobsRunDespiteFailure(t *testing.T) {
	var ran atomic.Int64
	boom := errors.New("boom")
	_, err := Map(100, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("error = %v, want boom", err)
	}
	if ran.Load() != 100 {
		t.Fatalf("only %d of 100 jobs ran", ran.Load())
	}
}

func TestMapNWorkerClamping(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 64} {
		got, err := MapN(workers, 10, func(i int) (int, error) { return i, nil })
		if err != nil || len(got) != 10 {
			t.Fatalf("workers=%d: len=%d err=%v", workers, len(got), err)
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || got != nil {
		t.Fatalf("empty map: %v %v", got, err)
	}
}

func TestForEach(t *testing.T) {
	var sum atomic.Int64
	if err := ForEach(100, func(i int) error { sum.Add(int64(i)); return nil }); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 4950 {
		t.Fatalf("sum = %d, want 4950", sum.Load())
	}
}
