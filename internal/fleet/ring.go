// Package fleet turns N independent gpowd daemons into one fault-tolerant
// sweep service behind the unchanged /v1/* API. The router (router.go)
// shards jobs across backends by the plan's dominant timing-group key
// (sweep.Plan.RoutingKey) over the consistent-hash ring in this file, so
// sweeps that share their expensive simulation land where the simcache is
// already hot; the prober (backend.go) drives a three-state circuit
// breaker (healthy/draining/dead) per backend; failover (router.go)
// re-dispatches a dead backend's jobs to survivors under their original
// idempotency keys, riding on the backends' bit-identical re-execution;
// and the routing table persists through the same journal+snapshot store
// the daemons use (store.go), so a router restart recovers every
// job→backend assignment.
package fleet

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringVnodes is how many virtual points each backend contributes. 128
// keeps the per-backend share within a few percent of uniform for
// single-digit fleets while the ring stays tiny (N×128 points).
const ringVnodes = 128

// ringPoint is one virtual node: a hash position owned by a backend.
type ringPoint struct {
	hash uint64
	name string
}

// Ring is a consistent-hash ring over backend names. Hashing names (not
// URLs) keeps assignments stable when a backend moves hosts, and makes
// the ring a pure function of the membership list — the router and the
// `gpowfleet -route` dry-run compute identical owners.
//
// The consistency property failover depends on: removing a backend moves
// only the keys that backend owned (they fall to the next point
// clockwise); the survivors' keys do not shuffle. Adding one steals keys
// only for the new backend. Ring stability is what makes a drain or a
// death a bounded re-dispatch, not a fleet-wide cache flush.
type Ring struct {
	points []ringPoint // sorted by hash
}

// hash64 is FNV-1a — stable across processes and platforms (a routing
// table that outlives the process must never depend on seeded hashing).
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// NewRing builds the ring for the given backend names.
func NewRing(names []string) *Ring {
	r := &Ring{points: make([]ringPoint, 0, len(names)*ringVnodes)}
	for _, name := range names {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: hash64(fmt.Sprintf("%s#%d", name, v)),
				name: name,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		return a.name < b.name // total order even on hash collisions
	})
	return r
}

// Lookup returns the owner of key among backends admitted by ok (nil
// admits all): the first admitted point clockwise from the key's hash.
// Walking past rejected points is what makes the ring and the breaker
// compose — a dead owner's keys fall through to the next live backend,
// and exactly those keys return home when it recovers. Returns "" when no
// backend is admitted.
func (r *Ring) Lookup(key string, ok func(name string) bool) string {
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := map[string]bool{} // a name rejected once need not be re-asked
	for i := 0; i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.name] {
			continue
		}
		if ok == nil || ok(p.name) {
			return p.name
		}
		seen[p.name] = true
	}
	return ""
}
