package fleet

import (
	"context"
	"sync"
	"time"

	"gpusimpow/internal/service"
)

// State is a backend's circuit-breaker position.
type State string

const (
	// StateHealthy: routable and serving.
	StateHealthy State = "healthy"
	// StateDraining: serving existing jobs (streams keep flowing, reports
	// keep answering) but receives no new work — the zero-downtime rollout
	// state. Entered by operator drain (persisted across router restarts)
	// or by the backend itself reporting "draining" on /v1/healthz.
	StateDraining State = "draining"
	// StateDead: unreachable or hung past the failure threshold. Its
	// in-flight jobs are re-dispatched to survivors; it rejoins as healthy
	// once probes succeed again.
	StateDead State = "dead"
)

// Backend is one gpowd under the router: its client, breaker state, and
// the last health payload (the router's load-scoring input).
type Backend struct {
	Name string
	URL  string

	client *service.Client

	mu sync.Mutex
	// dead and the failure counter are probe-owned; opDrain is the
	// operator's persisted drain bit; selfDrain mirrors the backend's own
	// healthz report. State() folds all three.
	dead      bool
	opDrain   bool
	selfDrain bool
	failures  int
	info      service.HealthInfo
	probed    time.Time
}

func newBackend(name, url string) *Backend {
	return &Backend{
		Name: name,
		URL:  url,
		// The router does its own failure handling (probes, breaker,
		// failover); the per-request client must fail fast, not mask a dying
		// backend behind minutes of backoff.
		client: &service.Client{Base: url, RetryAttempts: -1},
	}
}

// State folds the breaker inputs: dead trumps draining trumps healthy.
func (b *Backend) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.dead:
		return StateDead
	case b.opDrain || b.selfDrain:
		return StateDraining
	}
	return StateHealthy
}

// Routable reports whether new jobs may be assigned here.
func (b *Backend) Routable() bool { return b.State() == StateHealthy }

// Load is the backend's last-probed queue pressure (queued + running).
// Dead backends report an effectively infinite load.
func (b *Backend) Load() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return int(^uint(0) >> 1)
	}
	return b.info.Queued + b.info.Running
}

// Info returns the last probe payload and its timestamp.
func (b *Backend) Info() (service.HealthInfo, time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.info, b.probed
}

// setDrain flips the operator drain bit (persistence is the router's job).
func (b *Backend) setDrain(drained bool) {
	b.mu.Lock()
	b.opDrain = drained
	b.mu.Unlock()
}

// observe folds one probe outcome into the breaker. A success (any HTTP
// response, 200 or 503) proves liveness: failures reset, death clears,
// and the payload updates. An error counts toward the threshold; crossing
// it returns died=true exactly once per transition, which is the
// failover trigger.
func (b *Backend) observe(hi *service.HealthInfo, ok bool, err error, threshold int) (died bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probed = time.Now()
	if err != nil {
		b.failures++
		if b.failures >= threshold && !b.dead {
			b.dead = true
			return true
		}
		return false
	}
	b.failures = 0
	b.dead = false
	b.info = *hi
	// A 503 with a drain status is the backend announcing its own
	// rollout; anything else unhealthy (e.g. "closed") reads as draining
	// too — alive, answering, but not accepting.
	b.selfDrain = !ok
	return false
}

// probe runs one bounded health check against the backend.
func (b *Backend) probe(ctx context.Context, timeout time.Duration, threshold int) (died bool) {
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hi, ok, err := b.client.ProbeHealth(pctx)
	return b.observe(hi, ok, err, threshold)
}

// markDead force-trips the breaker (the stream proxy's synchronous
// verdict after a connection to the backend died and a confirm-probe
// failed). Returns true on the transition, false if already dead.
func (b *Backend) markDead() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		return false
	}
	b.dead = true
	b.failures = 0
	return true
}
