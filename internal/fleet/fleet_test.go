package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/service"
	"gpusimpow/internal/sweep"
)

// testScenario is the cheapest registered real sweep: 5 cells, 1 timing
// group, with a reduction — everything a fleet job needs.
const testScenario = "ablation-processnode"

// backendFixture is one gpowd-equivalent: a Manager behind its HTTP API.
type backendFixture struct {
	name string
	m    *service.Manager
	srv  *httptest.Server
}

// newTestFleet stands up n in-process backends and a router over them.
func newTestFleet(t *testing.T, n int, mutate func(*Options)) (*Router, *httptest.Server, []*backendFixture) {
	t.Helper()
	var fixtures []*backendFixture
	var specs []BackendSpec
	for i := 0; i < n; i++ {
		m := service.NewManager(service.Options{MaxConcurrent: 2})
		srv := httptest.NewServer(service.NewServer(m))
		name := fmt.Sprintf("b%d", i)
		fixtures = append(fixtures, &backendFixture{name: name, m: m, srv: srv})
		specs = append(specs, BackendSpec{Name: name, URL: srv.URL})
	}
	opts := Options{
		Backends:      specs,
		ProbeInterval: 50 * time.Millisecond,
		ProbeTimeout:  250 * time.Millisecond,
		ProbeFails:    2,
		Logf:          t.Logf,
	}
	if mutate != nil {
		mutate(&opts)
	}
	rt, err := NewRouter(opts)
	if err != nil {
		t.Fatal(err)
	}
	rtSrv := httptest.NewServer(rt)
	t.Cleanup(func() {
		rtSrv.Close()
		rt.Close()
		for _, f := range fixtures {
			f.srv.Close()
			f.m.Close()
		}
	})
	return rt, rtSrv, fixtures
}

// --- ring stability (satellite: consistent-hash churn bounds) ---

// Removing a backend moves only the keys it owned; every other key keeps
// its assignment. Adding one steals keys only for itself. This is the
// property that makes a backend loss a bounded re-dispatch instead of a
// fleet-wide simcache flush.
func TestRingStabilityUnderChurn(t *testing.T) {
	names := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	keys := make([]string, 500)
	for i := range keys {
		keys[i] = fmt.Sprintf("timingkey-%d/workload-%d", i, i%7)
	}
	full := NewRing(names)
	base := map[string]string{}
	for _, k := range keys {
		base[k] = full.Lookup(k, nil)
	}
	// Sanity: every backend owns something.
	owned := map[string]int{}
	for _, o := range base {
		owned[o]++
	}
	for _, n := range names {
		if owned[n] == 0 {
			t.Fatalf("backend %s owns no keys out of %d", n, len(keys))
		}
	}

	for drop := range names {
		survivors := append(append([]string{}, names[:drop]...), names[drop+1:]...)
		shrunk := NewRing(survivors)
		moved := 0
		for _, k := range keys {
			got := shrunk.Lookup(k, nil)
			if base[k] == names[drop] {
				moved++
				if got == names[drop] {
					t.Fatalf("dropped backend %s still owns %q", names[drop], k)
				}
			} else if got != base[k] {
				t.Errorf("removing %s moved key %q: %s -> %s (only the departed share may move)",
					names[drop], k, base[k], got)
			}
		}
		if moved != owned[names[drop]] {
			t.Errorf("removing %s moved %d keys, want exactly its %d", names[drop], moved, owned[names[drop]])
		}
	}

	grown := NewRing(append(append([]string{}, names...), "zeta"))
	for _, k := range keys {
		if got := grown.Lookup(k, nil); got != base[k] && got != "zeta" {
			t.Errorf("adding zeta moved key %q to %s (may only move to the newcomer)", k, got)
		}
	}
}

// Lookup with a predicate falls through dead owners to the next live
// backend and returns "" only when nothing is admitted.
func TestRingLookupSkipsRejected(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	key := "some/routing-key"
	owner := r.Lookup(key, nil)
	next := r.Lookup(key, func(n string) bool { return n != owner })
	if next == owner || next == "" {
		t.Fatalf("fallback owner %q (ring owner %q)", next, owner)
	}
	if got := r.Lookup(key, func(string) bool { return false }); got != "" {
		t.Errorf("all-rejected lookup returned %q, want empty", got)
	}
}

// --- helpers driving the router's HTTP surface ---

func routerClient(srv *httptest.Server) *service.Client {
	return &service.Client{Base: srv.URL, HTTP: srv.Client(), RetryBase: time.Millisecond, RetryMax: 20 * time.Millisecond}
}

func fleetState(t *testing.T, srv *httptest.Server) FleetStatus {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + "/v1/fleet")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st FleetStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func assignmentOf(t *testing.T, srv *httptest.Server, fleetID string) AssignmentStatus {
	t.Helper()
	for _, a := range fleetState(t, srv).Assignments {
		if a.ID == fleetID {
			return a
		}
	}
	t.Fatalf("no assignment for %s", fleetID)
	return AssignmentStatus{}
}

func waitDone(t *testing.T, c *service.Client, id string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		st, err := c.Job(context.Background(), id)
		if err == nil && st.State == service.StateDone {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s not done (last: %+v, %v)", id, st, err)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// rawStream reads an entire NDJSON endpoint body.
func rawStream(t *testing.T, base *http.Client, url string) []byte {
	t.Helper()
	resp, err := base.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: HTTP %d: %s", url, resp.StatusCode, body)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s: %v", url, err)
	}
	return body
}

// --- routing + proxying ---

// A job submitted through the router lands on the ring owner, streams
// byte-identically to a single-node run, and reports byte-identically.
func TestRouterProxiesByteIdentical(t *testing.T) {
	_, rtSrv, _ := newTestFleet(t, 2, nil)
	c := routerClient(rtSrv)
	req := sweep.JobRequest{Scenario: testScenario}

	st, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" {
		t.Errorf("fleet job ID %q, want router-namespaced job-1", st.ID)
	}
	a := assignmentOf(t, rtSrv, st.ID)
	_, wantOwner, err := Owner([]string{"b0", "b1"}, req)
	if err != nil {
		t.Fatal(err)
	}
	if a.Backend != wantOwner {
		t.Errorf("assigned to %s, ring owner is %s", a.Backend, wantOwner)
	}
	waitDone(t, c, st.ID)

	// Reference run on a pristine single node.
	ref := service.NewManager(service.Options{MaxConcurrent: 2})
	defer ref.Close()
	refSrv := httptest.NewServer(service.NewServer(ref))
	defer refSrv.Close()
	refC := &service.Client{Base: refSrv.URL, HTTP: refSrv.Client()}
	refSt, err := refC.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, refC, refSt.ID)

	cells := rawStream(t, rtSrv.Client(), rtSrv.URL+"/v1/jobs/"+st.ID+"/cells")
	refCells := rawStream(t, refSrv.Client(), refSrv.URL+"/v1/jobs/"+refSt.ID+"/cells")
	if !bytes.Equal(cells, refCells) {
		t.Errorf("proxied cell stream differs from single-node run (%d vs %d bytes)", len(cells), len(refCells))
	}
	report := rawStream(t, rtSrv.Client(), rtSrv.URL+"/v1/jobs/"+st.ID+"/report")
	refReport := rawStream(t, refSrv.Client(), refSrv.URL+"/v1/jobs/"+refSt.ID+"/report")
	if !bytes.Equal(report, refReport) {
		t.Errorf("proxied report differs from single-node run:\n%s\n--- vs ---\n%s", report, refReport)
	}
}

// A client Idempotency-Key replayed against the router returns the same
// fleet job instead of dispatching a duplicate.
func TestRouterClientIdempotency(t *testing.T) {
	_, rtSrv, fixtures := newTestFleet(t, 2, nil)
	c := routerClient(rtSrv)
	req := sweep.JobRequest{Scenario: testScenario}

	first, err := c.SubmitKeyed(context.Background(), req, "client-key-1")
	if err != nil {
		t.Fatal(err)
	}
	again, err := c.SubmitKeyed(context.Background(), req, "client-key-1")
	if err != nil {
		t.Fatal(err)
	}
	if first.ID != again.ID {
		t.Errorf("replayed submit created %s, want %s", again.ID, first.ID)
	}
	total := 0
	for _, f := range fixtures {
		total += len(f.m.Jobs())
	}
	if total != 1 {
		t.Errorf("%d backend jobs exist, want 1", total)
	}
}

// --- failover ---

// Dropping the backend mid-stream (faultpoint) re-dispatches the job to
// the survivor and the riding client's stream comes through byte-identical
// to an uninterrupted single-node run — the unit-level ci-fleet drill.
func TestFailoverMidStreamByteIdentical(t *testing.T) {
	t.Setenv("GPUSIMPOW_FAULTPOINT", service.FaultDropBackendMidStream+":skip=1")
	service.ResetFaultpoints()
	defer service.ResetFaultpoints()

	_, rtSrv, fixtures := newTestFleet(t, 2, nil)
	c := routerClient(rtSrv)
	req := sweep.JobRequest{Scenario: testScenario}
	st, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	before := assignmentOf(t, rtSrv, st.ID)

	// The ride: one GET held open across the internal backend swap. The
	// faultpoint drops the backend connection after the 2nd forwarded
	// line; the router must mark it dead, re-dispatch, and resume the
	// stream from line 2 against the survivor.
	cells := rawStream(t, rtSrv.Client(), rtSrv.URL+"/v1/jobs/"+st.ID+"/cells")
	lines := bytes.Split(bytes.TrimSpace(cells), []byte("\n"))
	if len(lines) != 5 {
		t.Fatalf("rode %d lines, want the scenario's 5 cells:\n%s", len(lines), cells)
	}
	for i, line := range lines {
		var rec sweep.CellRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			t.Fatalf("line %d undecodable: %v", i, err)
		}
		if rec.Index != i {
			t.Fatalf("line %d carries index %d — duplicate or dropped cell across the swap", i, rec.Index)
		}
	}

	after := assignmentOf(t, rtSrv, st.ID)
	if after.Backend == before.Backend {
		t.Errorf("job still on %s; faultpoint should have forced failover", before.Backend)
	}

	// Byte-identity against an untouched single node.
	ref := service.NewManager(service.Options{MaxConcurrent: 2})
	defer ref.Close()
	refSrv := httptest.NewServer(service.NewServer(ref))
	defer refSrv.Close()
	refC := &service.Client{Base: refSrv.URL, HTTP: refSrv.Client()}
	refSt, err := refC.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, refC, refSt.ID)
	refCells := rawStream(t, refSrv.Client(), refSrv.URL+"/v1/jobs/"+refSt.ID+"/cells")
	if !bytes.Equal(cells, refCells) {
		t.Errorf("stream that rode through failover differs from single-node run")
	}

	// The exactly-once guarantee: one backend job per fleet job per home.
	for _, f := range fixtures {
		if n := len(f.m.Jobs()); n > 1 {
			t.Errorf("backend %s holds %d jobs, want at most 1", f.name, n)
		}
	}
}

// Concurrent re-dispatchers (probe-loop failover racing a stream proxy's
// synchronous verdict) move a job exactly once: one submission reaches
// the survivor, every other caller observes the done CAS.
func TestRedispatchExactlyOnce(t *testing.T) {
	rt, rtSrv, fixtures := newTestFleet(t, 2, nil)
	c := routerClient(rtSrv)
	st, err := c.Submit(context.Background(), sweep.JobRequest{Scenario: testScenario})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, st.ID)
	from := assignmentOf(t, rtSrv, st.ID).Backend

	rt.mu.Lock()
	j := rt.jobs[st.ID]
	rt.mu.Unlock()

	var moved atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if rt.redispatch(j, from) {
				moved.Add(1)
			}
		}()
	}
	wg.Wait()
	if moved.Load() != 1 {
		t.Errorf("%d re-dispatches moved the job, want exactly 1", moved.Load())
	}
	var survivor *backendFixture
	for _, f := range fixtures {
		if f.name != from {
			survivor = f
		}
	}
	if n := len(survivor.m.Jobs()); n != 1 {
		t.Errorf("survivor %s holds %d jobs, want exactly 1", survivor.name, n)
	}
}

// --- drain-aware routing ---

// A drained backend receives no new jobs but keeps serving its in-flight
// work (status, stream, report) — the zero-downtime rollout contract.
func TestDrainAwareRouting(t *testing.T) {
	_, rtSrv, fixtures := newTestFleet(t, 2, nil)
	c := routerClient(rtSrv)
	req := sweep.JobRequest{Scenario: testScenario}

	st1, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	owner := assignmentOf(t, rtSrv, st1.ID).Backend
	waitDone(t, c, st1.ID)

	// Drain the owner.
	resp, err := rtSrv.Client().Post(rtSrv.URL+"/v1/fleet/backends/"+owner+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// New work must route elsewhere even though the drained owner is the
	// affinity home.
	st2, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := assignmentOf(t, rtSrv, st2.ID).Backend; got == owner {
		t.Errorf("new job routed to drained backend %s", owner)
	}

	// The drained backend's existing job still serves end to end.
	if _, err := c.Job(context.Background(), st1.ID); err != nil {
		t.Errorf("status through drained backend: %v", err)
	}
	cells := rawStream(t, rtSrv.Client(), rtSrv.URL+"/v1/jobs/"+st1.ID+"/cells")
	if n := len(bytes.Split(bytes.TrimSpace(cells), []byte("\n"))); n != 5 {
		t.Errorf("drained backend streamed %d lines, want 5", n)
	}
	if _, err := c.Report(context.Background(), st1.ID); err != nil {
		t.Errorf("report through drained backend: %v", err)
	}

	// Undrain restores routing; with every backend healthy the ring owner
	// takes new work again.
	resp, err = rtSrv.Client().Post(rtSrv.URL+"/v1/fleet/backends/"+owner+"/undrain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	st3, err := c.Submit(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if got := assignmentOf(t, rtSrv, st3.ID).Backend; got != owner {
		t.Errorf("after undrain new job routed to %s, want ring owner %s", got, owner)
	}
	_ = fixtures
}

// --- breaker: blackholed probes trip it, recovery clears it ---

// A backend whose healthz hangs (blackhole faultpoint) reads as dead once
// the failure threshold is crossed, and rejoins as healthy when probes
// start answering again.
func TestBreakerTripsOnBlackholedProbes(t *testing.T) {
	t.Setenv("GPUSIMPOW_FAULTPOINT", service.FaultBlackholeProbe+":times=4")
	service.ResetFaultpoints()
	defer service.ResetFaultpoints()

	rt, _, _ := newTestFleet(t, 1, func(o *Options) {
		o.ProbeInterval = 30 * time.Millisecond
		o.ProbeTimeout = 100 * time.Millisecond
	})
	b := rt.backends["b0"]

	deadline := time.Now().Add(10 * time.Second)
	for b.State() != StateDead {
		if time.Now().After(deadline) {
			t.Fatal("breaker never tripped on blackholed probes")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Faultpoint exhausts after 4 hung probes; the breaker must recover.
	for b.State() != StateHealthy {
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after probes resumed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// --- restart recovery ---

// A restarted router recovers job→backend assignments and operator drain
// bits from its journaled routing table: riding clients keep their fleet
// job IDs, and a mid-rollout drain stays in force.
func TestRouterRestartRecoversAssignments(t *testing.T) {
	stateDir := t.TempDir()
	rt, rtSrv, fixtures := newTestFleet(t, 2, func(o *Options) { o.StateDir = stateDir })
	c := routerClient(rtSrv)

	st, err := c.SubmitKeyed(context.Background(), sweep.JobRequest{Scenario: testScenario}, "ck-restart")
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, st.ID)
	before := assignmentOf(t, rtSrv, st.ID)
	resp, err := rtSrv.Client().Post(rtSrv.URL+"/v1/fleet/backends/"+before.Backend+"/drain", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	rtSrv.Close()
	rt.Close()

	specs := make([]BackendSpec, len(fixtures))
	for i, f := range fixtures {
		specs[i] = BackendSpec{Name: f.name, URL: f.srv.URL}
	}
	rt2, err := NewRouter(Options{
		Backends:      specs,
		StateDir:      stateDir,
		ProbeInterval: 50 * time.Millisecond,
		ProbeFails:    2,
		Logf:          t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt2.Close()
	rtSrv2 := httptest.NewServer(rt2)
	defer rtSrv2.Close()
	c2 := routerClient(rtSrv2)

	after := assignmentOf(t, rtSrv2, st.ID)
	if after.Backend != before.Backend || after.BackendID != before.BackendID {
		t.Errorf("recovered assignment %+v, want %+v", after, before)
	}
	got, err := c2.Job(context.Background(), st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != st.ID || got.State != service.StateDone {
		t.Errorf("recovered job status %+v", got)
	}
	if rt2.backends[before.Backend].State() != StateDraining {
		t.Errorf("drain bit lost across restart: %s is %s", before.Backend, rt2.backends[before.Backend].State())
	}
	// The client idempotency map survives too.
	again, err := c2.SubmitKeyed(context.Background(), sweep.JobRequest{Scenario: testScenario}, "ck-restart")
	if err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID {
		t.Errorf("replayed client key created %s, want recovered %s", again.ID, st.ID)
	}
}
