package fleet

import (
	"encoding/json"
	"fmt"
	"path/filepath"

	"gpusimpow/internal/journal"
	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// The router's durable routing table, on the same journal+snapshot
// substrate as the daemons' job store (internal/journal): one line per
// assignment, re-dispatch, drain flip or forget, compacted into a
// snapshot at shutdown. A restarted router recovers every fleet
// job→backend assignment and every operator drain bit, so riding clients
// resume their streams against the same fleet job IDs and a mid-rollout
// drain survives the rollout of the router itself.

// fleetStoreVersion guards the persisted shape; bump on change.
const fleetStoreVersion = 1

// storedAssignment is one fleet job's persisted routing state.
type storedAssignment struct {
	// ID is the fleet-assigned job ID clients see ("job-N" in router
	// numbering — a namespace distinct from any backend's own IDs).
	ID      string           `json:"id"`
	Request sweep.JobRequest `json:"request"`
	// RoutingKey is the plan's dominant timing-group key (memoized so
	// recovery and re-dispatch never re-plan).
	RoutingKey string `json:"routingKey"`
	// Key is the router-generated Idempotency-Key every dispatch of this
	// job carries — what makes a raced or repeated re-dispatch collapse to
	// one backend job.
	Key string `json:"idempotencyKey"`
	// ClientKey is the submitting client's own Idempotency-Key ("" when
	// none), so a client retrying a submit whose response was lost gets
	// this fleet job back instead of a duplicate.
	ClientKey string `json:"clientKey,omitempty"`
	// Backend is the owning backend's name; BackendID the job's ID there.
	Backend   string `json:"backend"`
	BackendID string `json:"backendID"`
}

// drainEntry journals an operator drain flip.
type drainEntry struct {
	Backend string `json:"backend"`
	Drained bool   `json:"drained"`
}

// fleetEntry is one journal line; exactly one field is set.
type fleetEntry struct {
	Assign *storedAssignment `json:"assign,omitempty"`
	// Reassign re-homes an existing fleet job (failover); only the
	// backend coordinates change.
	Reassign *storedAssignment `json:"reassign,omitempty"`
	Drain    *drainEntry       `json:"drain,omitempty"`
	Forget   *struct {
		ID string `json:"id"`
	} `json:"forget,omitempty"`
}

// fleetSnapshot is the compacted on-disk state.
type fleetSnapshot struct {
	Version     int                 `json:"version"`
	NextID      int                 `json:"nextID"`
	Assignments []*storedAssignment `json:"assignments,omitempty"` // creation order
	Drained     []string            `json:"drained,omitempty"`     // operator-drained backends
}

// fleetRecovered is what recovery hands the router.
type fleetRecovered struct {
	Assignments []*storedAssignment // creation order
	NextID      int
	Drained     map[string]bool
	Skipped     int
}

// fleetStore wraps one journal.Log with the fleet entry fold.
type fleetStore struct {
	log *journal.Log
}

// openFleetStore opens the routing table under stateDir, in a generation
// directory keyed by the router binary's fingerprint — routing state
// written by an incompatible build is ignored, exactly like the daemons'
// job stores (a fleet job assigned by an old build would reference
// backend jobs the new build's backends cannot reproduce).
func openFleetStore(stateDir string) (*fleetStore, error) {
	dir := filepath.Join(stateDir, fmt.Sprintf("fleet-v%d-%s", fleetStoreVersion, simcache.Fingerprint()))
	l, err := journal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return &fleetStore{log: l}, nil
}

func (s *fleetStore) append(e fleetEntry) { s.log.Append(e) }
func (s *fleetStore) close()              { s.log.Close() }

// compact folds the live state into a fresh snapshot.
func (s *fleetStore) compact(snap *fleetSnapshot) {
	snap.Version = fleetStoreVersion
	s.log.Compact(snap)
}

// recover reads the snapshot and folds the journal over it.
func (s *fleetStore) recover() *fleetRecovered {
	rs := &fleetRecovered{Drained: map[string]bool{}}
	byID := map[string]*storedAssignment{}
	var order []string

	var snap fleetSnapshot
	if s.log.Snapshot(&snap) && snap.Version == fleetStoreVersion {
		rs.NextID = snap.NextID
		for _, a := range snap.Assignments {
			if a == nil || a.ID == "" || byID[a.ID] != nil {
				continue
			}
			byID[a.ID] = a
			order = append(order, a.ID)
		}
		for _, name := range snap.Drained {
			rs.Drained[name] = true
		}
	}

	s.log.Replay(func(line []byte) {
		var e fleetEntry
		if json.Unmarshal(line, &e) != nil {
			rs.Skipped++
			return
		}
		switch {
		case e.Assign != nil && e.Assign.ID != "":
			if byID[e.Assign.ID] != nil {
				return // replayed over a partial compaction
			}
			byID[e.Assign.ID] = e.Assign
			order = append(order, e.Assign.ID)
		case e.Reassign != nil && e.Reassign.ID != "":
			a := byID[e.Reassign.ID]
			if a == nil {
				rs.Skipped++
				return
			}
			a.Backend = e.Reassign.Backend
			a.BackendID = e.Reassign.BackendID
		case e.Drain != nil:
			if e.Drain.Drained {
				rs.Drained[e.Drain.Backend] = true
			} else {
				delete(rs.Drained, e.Drain.Backend)
			}
		case e.Forget != nil:
			if byID[e.Forget.ID] != nil {
				delete(byID, e.Forget.ID)
				for i, id := range order {
					if id == e.Forget.ID {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		default:
			rs.Skipped++
		}
	})

	for _, id := range order {
		rs.Assignments = append(rs.Assignments, byID[id])
	}
	for _, a := range rs.Assignments {
		var n int
		if _, err := fmt.Sscanf(a.ID, "job-%d", &n); err == nil && n > rs.NextID {
			rs.NextID = n
		}
	}
	return rs
}
