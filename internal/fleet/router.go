package fleet

import (
	"bufio"
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"gpusimpow/internal/service"
	"gpusimpow/internal/sweep"
)

// BackendSpec declares one fleet member.
type BackendSpec struct {
	Name string // stable identity — what the ring hashes and the store records
	URL  string // where the daemon currently lives
}

// Options configures a Router.
type Options struct {
	// Backends is the fleet membership, in declaration order.
	Backends []BackendSpec
	// StateDir persists the routing table (assignments + operator drains)
	// through the journal+snapshot store; "" keeps it in memory only.
	StateDir string
	// ProbeInterval is the health-probe cadence per backend (default 1s).
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe (default ProbeInterval, floor 100ms) —
	// a blackholed (hung, not refused) healthz counts as a failure.
	ProbeTimeout time.Duration
	// ProbeFails is the consecutive-failure threshold that trips the
	// breaker to dead (default 2).
	ProbeFails int
	// SpillQueue is the affinity owner's probed queue depth (queued +
	// running) at which new jobs spill to the least-loaded healthy backend
	// instead — affinity is a cache optimization, not a hard shard, and a
	// hot backend should shed before it saturates. <= 0 disables spilling.
	SpillQueue int
	// Logf, when set, narrates probe transitions, failovers, re-dispatches.
	Logf func(format string, args ...any)
}

// fleetJob is one routed job: the persisted assignment plus the mutex
// serializing re-dispatch. The CAS discipline in redispatch() — re-check
// the owner under the lock before moving — plus the per-job idempotency
// key at the backend make "exactly one live backend job per fleet job" a
// two-layer guarantee.
type fleetJob struct {
	mu sync.Mutex
	a  storedAssignment
}

// coords snapshots the job's current backend coordinates.
func (j *fleetJob) coords() (backend, backendID string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.a.Backend, j.a.BackendID
}

// Router fronts the fleet behind the unchanged /v1/* API.
type Router struct {
	opts     Options
	ring     *Ring
	backends map[string]*Backend
	names    []string // declaration order
	store    *fleetStore

	mu          sync.Mutex
	jobs        map[string]*fleetJob
	order       []string          // fleet job creation order
	byClientKey map[string]string // client Idempotency-Key -> fleet job ID
	nextID      int

	probeCancel context.CancelFunc
	probeWG     sync.WaitGroup

	mux *http.ServeMux
}

// NewRouter builds the router, recovers the persisted routing table, runs
// one synchronous probe round, and starts the probers.
func NewRouter(opts Options) (*Router, error) {
	if len(opts.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.ProbeTimeout <= 0 {
		opts.ProbeTimeout = opts.ProbeInterval
	}
	if opts.ProbeTimeout < 100*time.Millisecond {
		opts.ProbeTimeout = 100 * time.Millisecond
	}
	if opts.ProbeFails <= 0 {
		opts.ProbeFails = 2
	}

	rt := &Router{
		opts:        opts,
		backends:    map[string]*Backend{},
		jobs:        map[string]*fleetJob{},
		byClientKey: map[string]string{},
	}
	for _, bs := range opts.Backends {
		if bs.Name == "" || bs.URL == "" || rt.backends[bs.Name] != nil {
			return nil, fmt.Errorf("fleet: invalid or duplicate backend %q", bs.Name)
		}
		rt.backends[bs.Name] = newBackend(bs.Name, bs.URL)
		rt.names = append(rt.names, bs.Name)
	}
	rt.ring = NewRing(rt.names)

	if opts.StateDir != "" {
		st, err := openFleetStore(opts.StateDir)
		if err != nil {
			return nil, err
		}
		rt.store = st
		rec := st.recover()
		rt.nextID = rec.NextID
		for _, a := range rec.Assignments {
			j := &fleetJob{a: *a}
			rt.jobs[a.ID] = j
			rt.order = append(rt.order, a.ID)
			if a.ClientKey != "" {
				rt.byClientKey[a.ClientKey] = a.ID
			}
		}
		for name := range rec.Drained {
			if b := rt.backends[name]; b != nil {
				b.setDrain(true)
			}
		}
		if rec.Skipped > 0 {
			rt.logf("fleet: recovery skipped %d corrupt journal line(s)", rec.Skipped)
		}
		if len(rec.Assignments) > 0 {
			rt.logf("fleet: recovered %d job assignment(s)", len(rec.Assignments))
		}
	}

	// One synchronous probe round so the first submit routes on real
	// state, then the steady probe loops.
	for _, name := range rt.names {
		rt.backends[name].probe(context.Background(), opts.ProbeTimeout, opts.ProbeFails)
	}
	ctx, cancel := context.WithCancel(context.Background())
	rt.probeCancel = cancel
	for _, name := range rt.names {
		b := rt.backends[name]
		rt.probeWG.Add(1)
		go func() {
			defer rt.probeWG.Done()
			tick := time.NewTicker(opts.ProbeInterval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					was := b.State()
					if b.probe(ctx, opts.ProbeTimeout, opts.ProbeFails) {
						rt.logf("fleet: backend %s dead (probe threshold); failing over", b.Name)
						rt.failover(b.Name)
					} else if now := b.State(); now != was {
						rt.logf("fleet: backend %s %s -> %s", b.Name, was, now)
					}
				}
			}
		}()
	}

	rt.mux = http.NewServeMux()
	rt.mux.HandleFunc("GET /v1/healthz", rt.healthz)
	rt.mux.HandleFunc("GET /v1/scenarios", rt.scenarios)
	rt.mux.HandleFunc("POST /v1/jobs", rt.submit)
	rt.mux.HandleFunc("GET /v1/jobs", rt.listJobs)
	rt.mux.HandleFunc("GET /v1/jobs/{id}", rt.jobStatus)
	rt.mux.HandleFunc("DELETE /v1/jobs/{id}", rt.cancelJob)
	rt.mux.HandleFunc("GET /v1/jobs/{id}/cells", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStream(w, r, "cells")
	})
	rt.mux.HandleFunc("GET /v1/jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		rt.proxyStream(w, r, "events")
	})
	rt.mux.HandleFunc("GET /v1/jobs/{id}/report", rt.jobReport)
	rt.mux.HandleFunc("GET /v1/fleet", rt.fleetStatus)
	rt.mux.HandleFunc("POST /v1/fleet/backends/{name}/drain", func(w http.ResponseWriter, r *http.Request) {
		rt.setBackendDrain(w, r, true)
	})
	rt.mux.HandleFunc("POST /v1/fleet/backends/{name}/undrain", func(w http.ResponseWriter, r *http.Request) {
		rt.setBackendDrain(w, r, false)
	})
	return rt, nil
}

func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

func (rt *Router) logf(format string, args ...any) {
	if rt.opts.Logf != nil {
		rt.opts.Logf(format, args...)
	}
}

// Close stops the probers and folds the routing table into a snapshot.
func (rt *Router) Close() {
	rt.probeCancel()
	rt.probeWG.Wait()
	if rt.store != nil {
		rt.store.compact(rt.snapshot())
		rt.store.close()
	}
}

func (rt *Router) snapshot() *fleetSnapshot {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	snap := &fleetSnapshot{NextID: rt.nextID}
	for _, id := range rt.order {
		j := rt.jobs[id]
		j.mu.Lock()
		a := j.a
		j.mu.Unlock()
		snap.Assignments = append(snap.Assignments, &a)
	}
	for _, name := range rt.names {
		b := rt.backends[name]
		b.mu.Lock()
		drained := b.opDrain
		b.mu.Unlock()
		if drained {
			snap.Drained = append(snap.Drained, name)
		}
	}
	return snap
}

// Owner computes the pure ring owner for a request among the named
// backends, ignoring health — the `gpowfleet -route` dry-run, and the
// drill's way of predicting the victim deterministically before arming a
// faultpoint on it.
func Owner(names []string, req sweep.JobRequest) (routingKey, owner string, err error) {
	plan, err := req.Plan()
	if err != nil {
		return "", "", err
	}
	key := plan.RoutingKey()
	return key, NewRing(names).Lookup(key, nil), nil
}

// --- HTTP plumbing (mirrors internal/service's envelope) ---

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// healthz reports the router's own liveness plus a per-backend breaker
// summary. The router serves as long as it runs — a fleet with every
// backend dead still answers (503) rather than vanishing.
func (rt *Router) healthz(w http.ResponseWriter, r *http.Request) {
	states := map[string]State{}
	routable := 0
	for name, b := range rt.backends {
		st := b.State()
		states[name] = st
		if st == StateHealthy {
			routable++
		}
	}
	code := http.StatusOK
	status := "ok"
	if routable == 0 {
		code = http.StatusServiceUnavailable
		status = "no-routable-backends"
	}
	writeJSON(w, code, map[string]any{"status": status, "backends": states})
}

// anyAlive returns a backend able to answer read-only queries (healthy
// first, then draining — a draining backend still serves), or nil.
func (rt *Router) anyAlive() *Backend {
	for _, name := range rt.names {
		if rt.backends[name].State() == StateHealthy {
			return rt.backends[name]
		}
	}
	for _, name := range rt.names {
		if rt.backends[name].State() == StateDraining {
			return rt.backends[name]
		}
	}
	return nil
}

// scenarios proxies the scenario listing verbatim from any live backend
// (every backend runs the same binary, so any copy is authoritative).
func (rt *Router) scenarios(w http.ResponseWriter, r *http.Request) {
	b := rt.anyAlive()
	if b == nil {
		writeError(w, http.StatusServiceUnavailable, errors.New("no live backends"))
		return
	}
	rt.proxyRaw(w, r, b, "/v1/scenarios")
}

// proxyRaw forwards one GET to a backend, copying status, content type
// and body bytes verbatim — the no-re-encoding path that keeps reports
// byte-identical to a single-node run.
func (rt *Router) proxyRaw(w http.ResponseWriter, r *http.Request, b *Backend, path string) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.client.Base+path, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", b.Name, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// newDispatchKey generates the router-owned Idempotency-Key a fleet job
// carries to every backend it is (re-)dispatched to.
func newDispatchKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return ""
	}
	return "fleet-" + hex.EncodeToString(b[:])
}

// pickBackend selects the target for a routing key: the ring's affinity
// owner among healthy backends, unless spilling is on and the owner's
// probed queue depth says it is saturated — then the least-loaded healthy
// backend takes the job (a cold simcache costs one timing run; a
// saturated queue costs every job behind it). Backends in excluded are
// skipped. Returns nil when nothing is routable.
func (rt *Router) pickBackend(routingKey string, excluded map[string]bool) *Backend {
	admit := func(name string) bool {
		return !excluded[name] && rt.backends[name].Routable()
	}
	owner := rt.ring.Lookup(routingKey, admit)
	if owner == "" {
		return nil
	}
	b := rt.backends[owner]
	if rt.opts.SpillQueue > 0 && b.Load() >= rt.opts.SpillQueue {
		for _, name := range rt.names {
			if admit(name) && rt.backends[name].Load() < b.Load() {
				b = rt.backends[name]
			}
		}
	}
	return b
}

// submit routes one job: plan locally (validation + routing key), pick
// the backend, dispatch under a fresh router-owned idempotency key, and
// answer with the status rewritten into the fleet's job-ID namespace.
// A client Idempotency-Key replays the existing fleet job, mirroring the
// single-node contract.
func (rt *Router) submit(w http.ResponseWriter, r *http.Request) {
	var req sweep.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}

	clientKey := r.Header.Get("Idempotency-Key")
	if clientKey != "" {
		rt.mu.Lock()
		id, ok := rt.byClientKey[clientKey]
		j := rt.jobs[id]
		rt.mu.Unlock()
		if ok && j != nil {
			st, err := rt.backendStatus(r.Context(), j)
			if err != nil {
				writeError(w, http.StatusBadGateway, err)
				return
			}
			writeJSON(w, http.StatusOK, st)
			return
		}
	}

	plan, err := req.Plan()
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, sweep.ErrUnknownScenario) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	routingKey := plan.RoutingKey()
	key := newDispatchKey()

	// Dispatch with per-candidate failover: a backend that errors at
	// submit time is excluded and the next candidate tried; the
	// idempotency key makes a lost-response retry collapse server-side.
	excluded := map[string]bool{}
	for {
		b := rt.pickBackend(routingKey, excluded)
		if b == nil {
			writeError(w, http.StatusServiceUnavailable, errors.New("no routable backends"))
			return
		}
		st, err := b.client.SubmitKeyed(r.Context(), req, key)
		if err != nil {
			rt.logf("fleet: submit to %s failed (%v); trying next", b.Name, err)
			excluded[b.Name] = true
			continue
		}

		rt.mu.Lock()
		rt.nextID++
		fleetID := fmt.Sprintf("job-%d", rt.nextID)
		rt.mu.Unlock()
		a := storedAssignment{
			ID:         fleetID,
			Request:    req,
			RoutingKey: routingKey,
			Key:        key,
			ClientKey:  clientKey,
			Backend:    b.Name,
			BackendID:  st.ID,
		}
		// Journal before publishing: once the job is visible, a concurrent
		// failover may append a Reassign, which recovery can only fold onto
		// an already-journaled assignment.
		if rt.store != nil {
			rt.store.append(fleetEntry{Assign: &a})
		}
		j := &fleetJob{a: a}
		rt.mu.Lock()
		rt.jobs[fleetID] = j
		rt.order = append(rt.order, fleetID)
		if clientKey != "" {
			rt.byClientKey[clientKey] = fleetID
		}
		rt.mu.Unlock()
		rt.logf("fleet: %s -> %s (%s) key %.16s...", fleetID, b.Name, st.ID, routingKey)

		st.ID = fleetID
		writeJSON(w, http.StatusAccepted, st)
		return
	}
}

// lookup resolves a fleet job ID (404 envelope on miss).
func (rt *Router) lookup(w http.ResponseWriter, r *http.Request) (*fleetJob, bool) {
	id := r.PathValue("id")
	rt.mu.Lock()
	j := rt.jobs[id]
	rt.mu.Unlock()
	if j == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return j, true
}

// backendStatus fetches a fleet job's status from its current backend,
// rewritten into the fleet ID namespace. A dead backend triggers failover
// and one retry against the new home.
func (rt *Router) backendStatus(ctx context.Context, j *fleetJob) (*service.JobStatus, error) {
	for attempt := 0; ; attempt++ {
		name, bid := j.coords()
		b := rt.backends[name]
		st, err := b.client.Job(ctx, bid)
		if err == nil {
			j.mu.Lock()
			st.ID = j.a.ID
			j.mu.Unlock()
			return st, nil
		}
		if attempt >= 1 || ctx.Err() != nil {
			return nil, fmt.Errorf("backend %s: %w", name, err)
		}
		rt.confirmDead(b)
		if newName, _ := j.coords(); newName == name {
			return nil, fmt.Errorf("backend %s: %w", name, err)
		}
	}
}

// confirmDead probes a misbehaving backend synchronously; a failed
// confirm trips the breaker and fails its jobs over immediately, without
// waiting for the probe loop's threshold.
func (rt *Router) confirmDead(b *Backend) {
	pctx, cancel := context.WithTimeout(context.Background(), rt.opts.ProbeTimeout)
	defer cancel()
	if _, _, err := b.client.ProbeHealth(pctx); err == nil {
		return // alive after all; a single request hiccup
	}
	if b.markDead() {
		rt.logf("fleet: backend %s dead (confirm probe); failing over", b.Name)
	}
	// Re-dispatch even when the breaker was already tripped: this job may
	// have been assigned between the trip and now.
	rt.failover(b.Name)
}

// failover re-homes every fleet job currently assigned to the named
// backend. Each job moves at most once per loss (redispatch re-checks
// ownership under the job lock), and survivors re-execute bit-identically
// from their own journals, so riding streams resume seamlessly.
func (rt *Router) failover(name string) {
	rt.mu.Lock()
	js := make([]*fleetJob, 0, len(rt.order))
	for _, id := range rt.order {
		js = append(js, rt.jobs[id])
	}
	rt.mu.Unlock()
	for _, j := range js {
		rt.redispatch(j, name)
	}
}

// redispatch moves one fleet job off a lost backend: re-submit to a
// survivor under the job's original idempotency key, then journal the new
// coordinates. The owner re-check under j.mu makes concurrent callers
// (probe-loop failover racing a stream proxy's confirmDead) collapse to
// exactly one move — and the idempotency key makes even a true double
// submit resolve to one backend job.
func (rt *Router) redispatch(j *fleetJob, from string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.a.Backend != from {
		return false // already moved (or never here)
	}
	excluded := map[string]bool{from: true}
	for {
		b := rt.pickBackend(j.a.RoutingKey, excluded)
		if b == nil {
			rt.logf("fleet: no survivor for %s (lost %s)", j.a.ID, from)
			return false
		}
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		st, err := b.client.SubmitKeyed(ctx, j.a.Request, j.a.Key)
		cancel()
		if err != nil {
			rt.logf("fleet: re-dispatch %s to %s failed (%v); trying next", j.a.ID, b.Name, err)
			excluded[b.Name] = true
			continue
		}
		j.a.Backend, j.a.BackendID = b.Name, st.ID
		if rt.store != nil {
			a := j.a
			rt.store.append(fleetEntry{Reassign: &a})
		}
		rt.logf("fleet: %s re-dispatched %s -> %s (%s)", j.a.ID, from, b.Name, st.ID)
		return true
	}
}

func (rt *Router) jobStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.lookup(w, r)
	if !ok {
		return
	}
	st, err := rt.backendStatus(r.Context(), j)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// listJobs aggregates every fleet job's status in creation order. A job
// whose backend cannot answer right now (mid-failover) is reported from
// the routing table as interrupted — which is what it is: queued for
// bit-identical re-execution elsewhere.
func (rt *Router) listJobs(w http.ResponseWriter, r *http.Request) {
	rt.mu.Lock()
	js := make([]*fleetJob, 0, len(rt.order))
	for _, id := range rt.order {
		js = append(js, rt.jobs[id])
	}
	rt.mu.Unlock()
	out := make([]service.JobStatus, 0, len(js))
	for _, j := range js {
		if st, err := rt.backendStatus(r.Context(), j); err == nil {
			out = append(out, *st)
			continue
		}
		j.mu.Lock()
		out = append(out, service.JobStatus{
			ID:       j.a.ID,
			Scenario: j.a.Request.Scenario,
			Filter:   j.a.Request.Filter,
			Label:    j.a.Request.Label,
			State:    service.StateInterrupted,
		})
		j.mu.Unlock()
	}
	writeJSON(w, http.StatusOK, out)
}

func (rt *Router) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.lookup(w, r)
	if !ok {
		return
	}
	name, bid := j.coords()
	b := rt.backends[name]
	if err := b.client.Cancel(r.Context(), bid); err != nil {
		writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", name, err))
		return
	}
	st, err := rt.backendStatus(r.Context(), j)
	if err != nil {
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// jobReport proxies the finished job's report verbatim. A dead backend
// fails over first; the survivor's re-execution reduces to the same
// bytes (deterministic simulation + canonical JSON encoding), so which
// node answers is unobservable to the client.
func (rt *Router) jobReport(w http.ResponseWriter, r *http.Request) {
	j, ok := rt.lookup(w, r)
	if !ok {
		return
	}
	name, bid := j.coords()
	b := rt.backends[name]
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, b.client.Base+"/v1/jobs/"+bid+"/report", nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		rt.confirmDead(b)
		if newName, newBid := j.coords(); newName != name {
			rt.proxyRaw(w, r, rt.backends[newName], "/v1/jobs/"+newBid+"/report")
			return
		}
		writeError(w, http.StatusBadGateway, fmt.Errorf("backend %s: %w", name, err))
		return
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

// errBackendDropped marks a stream severed by the drop-backend-mid-stream
// faultpoint: the proxy must treat the backend as lost, not just retry.
var errBackendDropped = errors.New("fleet: faultpoint dropped backend connection")

// errStreamEnded marks a stream the backend terminated with an {"error"}
// trailer, already forwarded to the client — the proxy is done.
var errStreamEnded = errors.New("fleet: stream ended with error trailer")

// proxyStream follows a fleet job's NDJSON endpoint across backend
// swaps: forward complete lines verbatim (never a torn fragment), and on
// any interruption reconnect to the job's current backend — wherever
// failover has moved it — with ?from=<forwarded>, the same resumption
// handle the client itself would use. The client sees one continuous
// byte-identical stream even when the backend executing the job dies
// mid-sweep; deterministic re-execution guarantees the resumed lines
// match what the lost backend would have sent.
func (rt *Router) proxyStream(w http.ResponseWriter, r *http.Request, endpoint string) {
	j, ok := rt.lookup(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q", v))
			return
		}
		from = n
	}
	flusher, ok2 := w.(http.Flusher)
	if !ok2 {
		writeError(w, http.StatusInternalServerError, errors.New("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()

	delivered := from
	failures := 0
	for {
		before := delivered
		name, bid := j.coords()
		b := rt.backends[name]
		err := rt.streamOnce(r.Context(), w, flusher, b, bid, endpoint, &delivered)
		switch {
		case errors.Is(err, errStreamEnded):
			return
		case err == nil:
			// Backend's clean EOF: complete, or cut short by its drain?
			st, jerr := b.client.Job(r.Context(), bid)
			if jerr == nil {
				switch {
				case st.State == service.StateDone && delivered >= st.Cells:
					return
				case st.State == service.StateFailed || st.State == service.StateCanceled:
					rt.writeTrailer(w, flusher, j, st)
					return
				}
				err = fmt.Errorf("stream ended at line %d with backend job %s", delivered, st.State)
			} else {
				err = jerr
			}
		}
		if r.Context().Err() != nil {
			return // the riding client is gone; its own resume takes over
		}
		if errors.Is(err, errBackendDropped) {
			if b.markDead() {
				rt.logf("fleet: backend %s dead (faultpoint drop); failing over", b.Name)
			}
			rt.failover(b.Name)
		} else {
			rt.confirmDead(b) // trips the breaker + fails over if truly lost
		}
		if delivered > before {
			failures = 0
		} else {
			failures++
		}
		if failures > 8 {
			// Out of patience without progress: surface the fault as a
			// trailer; the riding client's own resumption logic (reconnect
			// with ?from=) takes over from here.
			rt.writeTrailerMsg(w, flusher, fmt.Sprintf("fleet: stream interrupted at line %d: %v", delivered, err))
			return
		}
		d := 25 * time.Millisecond << uint(min(failures, 5))
		rt.logf("fleet: %s %s stream: %v; resuming from line %d in %v", j.a.ID, endpoint, err, delivered, d)
		select {
		case <-r.Context().Done():
			return
		case <-time.After(d):
		}
	}
}

// streamOnce proxies one backend connection of a resumable stream,
// bumping *delivered per complete payload line forwarded. nil is this
// connection's clean EOF; errBackendDropped / errStreamEnded are the
// special verdicts; anything else means "sever — reconnect and resume".
func (rt *Router) streamOnce(ctx context.Context, w http.ResponseWriter, flusher http.Flusher, b *Backend, bid, endpoint string, delivered *int) error {
	url := fmt.Sprintf("%s/v1/jobs/%s/%s?from=%d", b.client.Base, bid, endpoint, *delivered)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("backend %s: HTTP %d: %s", b.Name, resp.StatusCode, bytes.TrimSpace(body))
	}
	rd := bufio.NewReader(resp.Body)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			// A torn fragment (no trailing newline) is never forwarded —
			// the reconnect replays that line whole, so the riding client
			// cannot observe the sever.
			if err == io.EOF && len(line) == 0 {
				return nil
			}
			if err == io.EOF {
				return fmt.Errorf("backend %s: stream cut mid-line", b.Name)
			}
			return err
		}
		// An {"error": ...} line is the backend's terminal trailer, not a
		// payload: forward it and end the proxy (payload lines never carry
		// an "error" key).
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(line, &env) == nil && env.Error != "" {
			_, _ = w.Write(line)
			flusher.Flush()
			return errStreamEnded
		}
		if _, err := w.Write(line); err != nil {
			return &clientGoneError{err}
		}
		flusher.Flush()
		*delivered++
		if service.Faultpoint(service.FaultSeverProxiedStream) {
			// Sever the *client's* connection after a flushed line — the
			// riding client must resume through the router via ?from=N.
			panic(http.ErrAbortHandler)
		}
		if service.Faultpoint(service.FaultDropBackendMidStream) {
			// Abandon the *backend* mid-stream and treat it as lost —
			// the in-process stand-in for a backend crash.
			return errBackendDropped
		}
	}
}

// clientGoneError marks a write failure toward the riding client.
type clientGoneError struct{ err error }

func (e *clientGoneError) Error() string { return e.err.Error() }
func (e *clientGoneError) Unwrap() error { return e.err }

// writeTrailer forwards a terminal backend state as the NDJSON error
// trailer, mirroring the single-node stream contract.
func (rt *Router) writeTrailer(w http.ResponseWriter, flusher http.Flusher, j *fleetJob, st *service.JobStatus) {
	msg := st.Error
	if msg == "" {
		j.mu.Lock()
		msg = fmt.Sprintf("job %s %s", j.a.ID, st.State)
		j.mu.Unlock()
	}
	rt.writeTrailerMsg(w, flusher, msg)
}

func (rt *Router) writeTrailerMsg(w http.ResponseWriter, flusher http.Flusher, msg string) {
	line, _ := json.Marshal(map[string]string{"error": msg})
	_, _ = w.Write(append(line, '\n'))
	flusher.Flush()
}

// --- fleet status + drain control ---

// BackendStatus is one backend's row in GET /v1/fleet.
type BackendStatus struct {
	Name    string    `json:"name"`
	URL     string    `json:"url"`
	State   State     `json:"state"`
	Queued  int       `json:"queued"`
	Running int       `json:"running"`
	Jobs    int       `json:"jobs"` // fleet jobs currently assigned here
	Probed  time.Time `json:"probed,omitempty"`
}

// AssignmentStatus is one fleet job's row in GET /v1/fleet.
type AssignmentStatus struct {
	ID         string `json:"id"`
	Scenario   string `json:"scenario"`
	Backend    string `json:"backend"`
	BackendID  string `json:"backendID"`
	RoutingKey string `json:"routingKey"`
}

// FleetStatus is the GET /v1/fleet payload.
type FleetStatus struct {
	Backends    []BackendStatus    `json:"backends"`
	Assignments []AssignmentStatus `json:"assignments,omitempty"`
}

func (rt *Router) fleetStatus(w http.ResponseWriter, r *http.Request) {
	st := FleetStatus{}
	perBackend := map[string]int{}
	rt.mu.Lock()
	for _, id := range rt.order {
		j := rt.jobs[id]
		j.mu.Lock()
		st.Assignments = append(st.Assignments, AssignmentStatus{
			ID:         j.a.ID,
			Scenario:   j.a.Request.Scenario,
			Backend:    j.a.Backend,
			BackendID:  j.a.BackendID,
			RoutingKey: j.a.RoutingKey,
		})
		perBackend[j.a.Backend]++
		j.mu.Unlock()
	}
	rt.mu.Unlock()
	for _, name := range rt.names {
		b := rt.backends[name]
		info, probed := b.Info()
		st.Backends = append(st.Backends, BackendStatus{
			Name:    name,
			URL:     b.URL,
			State:   b.State(),
			Queued:  info.Queued,
			Running: info.Running,
			Jobs:    perBackend[name],
			Probed:  probed,
		})
	}
	sort.SliceStable(st.Backends, func(i, k int) bool { return st.Backends[i].Name < st.Backends[k].Name })
	writeJSON(w, http.StatusOK, st)
}

// setBackendDrain flips a backend's operator drain bit: drained backends
// take no new jobs (routing and failover skip them) but keep serving
// their in-flight work — the zero-downtime rollout primitive. The bit is
// journaled, so a router restart mid-rollout preserves it.
func (rt *Router) setBackendDrain(w http.ResponseWriter, r *http.Request, drained bool) {
	name := r.PathValue("name")
	b := rt.backends[name]
	if b == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("no backend %q", name))
		return
	}
	b.setDrain(drained)
	if rt.store != nil {
		rt.store.append(fleetEntry{Drain: &drainEntry{Backend: name, Drained: drained}})
	}
	rt.logf("fleet: backend %s drained=%v", name, drained)
	writeJSON(w, http.StatusOK, map[string]any{"backend": name, "drained": drained, "state": b.State()})
}
