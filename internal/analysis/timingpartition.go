package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// timingpartition cross-references the simcache key partition:
//
//   - every config.GPU field the timing side (internal/sim and
//     internal/core) reads — directly or through a config.GPU method —
//     must be encoded by appendTimingFields, unless the config package
//     declares it timing-neutral (timingNeutralFields: knobs proven
//     bit-identical, like DenseClock);
//   - a field declared power-only (powerOnlyFields) that timing-side code
//     reads is a cache-corruption bug: two configs differing only in that
//     field share a simcache key but would simulate differently;
//   - a field appendTimingFields encodes that no timing-side code reads is
//     a warning (dead key material — it fragments the cache for nothing);
//   - every GPU field must be classified: encoded by appendTimingFields,
//     listed in powerOnlyFields, or listed in timingNeutralFields —
//     exactly one of the three. (The reflection test in internal/config
//     checks the same partition behaviorally, by perturbing fields and
//     watching the key.)
//
// Removing a field from appendTimingFields that internal/sim reads
// therefore fails lint with no change anywhere else.

const (
	configPkg        = "internal/config"
	gpuTypeName      = "GPU"
	timingKeyFunc    = "appendTimingFields"
	powerOnlyVar     = "powerOnlyFields"
	timingNeutralVar = "timingNeutralFields"
)

// timingSidePkgs are the packages whose config.GPU reads must stay inside
// the timing key partition.
var timingSidePkgs = []string{"internal/sim", "internal/core"}

// gpuMethodSkip are config.GPU methods whose field reads are not
// timing-semantic: validation and serialization touch every field by
// design.
var gpuMethodSkip = map[string]bool{
	timingKeyFunc: true, "TimingKey": true, "Validate": true,
	"WriteXML": true, "SaveFile": true, "String": true,
}

func runTimingPartition(m *Module) []Finding {
	pass := "timingpartition"
	cfg := m.Pkg(configPkg)
	if cfg == nil || cfg.Types == nil {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("no %s package in module %s", configPkg, m.Path)}}
	}
	gpuObj, ok := cfg.Types.Scope().Lookup(gpuTypeName).(*types.TypeName)
	if !ok {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("%s: no type %s", configPkg, gpuTypeName)}}
	}
	gpuStruct, ok := gpuObj.Type().Underlying().(*types.Struct)
	if !ok {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("%s.%s is not a struct", configPkg, gpuTypeName)}}
	}

	var out []Finding

	// All declared GPU fields (XMLName is xml plumbing, never classified).
	fieldPos := map[string]token.Position{}
	var fieldOrder []string
	for i := 0; i < gpuStruct.NumFields(); i++ {
		f := gpuStruct.Field(i)
		if f.Name() == "XMLName" {
			continue
		}
		fieldOrder = append(fieldOrder, f.Name())
		fieldPos[f.Name()] = m.Fset.Position(f.Pos())
	}
	isField := map[string]bool{}
	for _, n := range fieldOrder {
		isField[n] = true
	}

	// Encoded set: field selections on the receiver inside appendTimingFields.
	encoded := map[string]token.Position{}
	var keyFuncPos token.Position
	forEachGPUMethod(cfg, gpuObj, func(fd *ast.FuncDecl) {
		if fd.Name.Name != timingKeyFunc {
			return
		}
		keyFuncPos = m.Fset.Position(fd.Pos())
		for name, pos := range gpuFieldReads(m, cfg, gpuObj, fd.Body) {
			encoded[name] = pos
		}
	})
	if keyFuncPos.Filename == "" {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("%s: no method %s.%s", configPkg, gpuTypeName, timingKeyFunc)}}
	}

	// Declared classification lists.
	powerOnly, poFound := stringListVar(m, cfg, powerOnlyVar)
	neutral, tnFound := stringListVar(m, cfg, timingNeutralVar)
	if !poFound {
		out = append(out, Finding{Pos: keyFuncPos, Pass: pass,
			Msg: fmt.Sprintf("%s: missing var %s (the explicit power-only field list)", configPkg, powerOnlyVar)})
	}
	if !tnFound {
		out = append(out, Finding{Pos: keyFuncPos, Pass: pass,
			Msg: fmt.Sprintf("%s: missing var %s (the explicit timing-neutral field list)", configPkg, timingNeutralVar)})
	}
	inList := func(list []listEntry, name string) bool {
		for _, e := range list {
			if e.name == name {
				return true
			}
		}
		return false
	}
	for _, e := range powerOnly {
		if !isField[e.name] {
			out = append(out, Finding{Pos: e.pos, Pass: pass,
				Msg: fmt.Sprintf("%s lists %q, which is not a %s.%s field", powerOnlyVar, e.name, configPkg, gpuTypeName)})
		}
	}
	for _, e := range neutral {
		if !isField[e.name] {
			out = append(out, Finding{Pos: e.pos, Pass: pass,
				Msg: fmt.Sprintf("%s lists %q, which is not a %s.%s field", timingNeutralVar, e.name, configPkg, gpuTypeName)})
		}
	}

	// Exhaustiveness: every field in exactly one class.
	for _, name := range fieldOrder {
		_, enc := encoded[name]
		po := inList(powerOnly, name)
		tn := inList(neutral, name)
		n := 0
		for _, b := range []bool{enc, po, tn} {
			if b {
				n++
			}
		}
		switch {
		case n == 0:
			out = append(out, Finding{Pos: fieldPos[name], Pass: pass,
				Msg: fmt.Sprintf("field %s is unclassified: encode it in %s or add it to %s/%s", name, timingKeyFunc, powerOnlyVar, timingNeutralVar)})
		case n > 1:
			out = append(out, Finding{Pos: fieldPos[name], Pass: pass,
				Msg: fmt.Sprintf("field %s has conflicting classifications (encoded=%v %s=%v %s=%v); pick one", name, enc, powerOnlyVar, po, timingNeutralVar, tn)})
		}
	}

	// Field reads of each (non-skipped) GPU method, with a transitive
	// closure over method-to-method calls, so cfg.NumCores() counts as
	// reading Clusters and CoresPerCluster at the call site.
	methodReads := map[string]map[string]bool{}
	methodCalls := map[string]map[string]bool{}
	forEachGPUMethod(cfg, gpuObj, func(fd *ast.FuncDecl) {
		name := fd.Name.Name
		if gpuMethodSkip[name] {
			return
		}
		reads := map[string]bool{}
		for f := range gpuFieldReads(m, cfg, gpuObj, fd.Body) {
			reads[f] = true
		}
		methodReads[name] = reads
		methodCalls[name] = gpuMethodCalls(cfg, gpuObj, fd.Body)
	})
	for changed := true; changed; {
		changed = false
		for name, calls := range methodCalls {
			for callee := range calls {
				for f := range methodReads[callee] {
					if !methodReads[name][f] {
						methodReads[name][f] = true
						changed = true
					}
				}
			}
		}
	}

	// Timing-side reads: direct field selections plus method calls.
	reads := map[string]token.Position{} // field -> first read site
	note := func(field string, pos token.Position) {
		if old, ok := reads[field]; !ok || posLess(pos, old) {
			reads[field] = pos
		}
	}
	for _, pkg := range m.SortedPkgs() {
		if !isTimingSide(pkg.RelPath) || pkg.Info == nil {
			continue
		}
		for sel, selection := range pkg.Info.Selections {
			if !recvIsGPU(selection.Recv(), gpuObj) {
				continue
			}
			pos := m.Fset.Position(sel.Sel.Pos())
			switch selection.Kind() {
			case types.FieldVal:
				note(selection.Obj().Name(), pos)
			case types.MethodVal, types.MethodExpr:
				for f := range methodReads[selection.Obj().Name()] {
					note(f, pos)
				}
			}
		}
	}

	// Reads must be encoded or neutral; power-only reads are the bug class.
	var readFields []string
	for f := range reads {
		readFields = append(readFields, f)
	}
	sort.Strings(readFields)
	for _, f := range readFields {
		_, enc := encoded[f]
		if enc || inList(neutral, f) {
			continue
		}
		pos := reads[f]
		if inList(powerOnly, f) {
			out = append(out, Finding{Pos: pos, Pass: pass,
				Msg: fmt.Sprintf("timing-side code reads config.GPU.%s, which %s declares power-only: configs differing in it share a simcache key (cache corruption)", f, powerOnlyVar)})
		} else {
			out = append(out, Finding{Pos: pos, Pass: pass,
				Msg: fmt.Sprintf("timing-side code reads config.GPU.%s but %s does not encode it: configs differing in it share a simcache key (cache corruption)", f, timingKeyFunc)})
		}
	}

	// Encoded-but-unread fields fragment the cache: warn.
	var encFields []string
	for f := range encoded {
		encFields = append(encFields, f)
	}
	sort.Strings(encFields)
	for _, f := range encFields {
		if _, ok := reads[f]; !ok && isField[f] {
			out = append(out, Finding{Pos: encoded[f], Pass: pass, Warning: true,
				Msg: fmt.Sprintf("%s encodes config.GPU.%s but no timing-side code reads it: equal simulations get distinct simcache keys", timingKeyFunc, f)})
		}
	}
	return out
}

func isTimingSide(rel string) bool {
	for _, p := range timingSidePkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

// recvIsGPU reports whether t is config.GPU or *config.GPU.
func recvIsGPU(t types.Type, gpu *types.TypeName) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == gpu
}

// forEachGPUMethod visits every FuncDecl in the config package whose
// receiver is GPU or *GPU.
func forEachGPUMethod(cfg *Package, gpu *types.TypeName, visit func(*ast.FuncDecl)) {
	for _, f := range cfg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || fd.Body == nil {
				continue
			}
			rt := cfg.Info.Types[fd.Recv.List[0].Type].Type
			if rt != nil && recvIsGPU(rt, gpu) {
				visit(fd)
			}
		}
	}
}

// gpuFieldReads collects the GPU fields selected anywhere under n, keyed by
// field name with the first selection position.
func gpuFieldReads(m *Module, cfg *Package, gpu *types.TypeName, n ast.Node) map[string]token.Position {
	out := map[string]token.Position{}
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := cfg.Info.Selections[sel]
		if !ok || selection.Kind() != types.FieldVal || !recvIsGPU(selection.Recv(), gpu) {
			return true
		}
		name := selection.Obj().Name()
		pos := m.Fset.Position(sel.Sel.Pos())
		if old, ok := out[name]; !ok || posLess(pos, old) {
			out[name] = pos
		}
		return true
	})
	return out
}

// gpuMethodCalls collects the names of GPU methods called anywhere under n.
func gpuMethodCalls(cfg *Package, gpu *types.TypeName, n ast.Node) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(n, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := cfg.Info.Selections[sel]
		if ok && selection.Kind() == types.MethodVal && recvIsGPU(selection.Recv(), gpu) {
			out[selection.Obj().Name()] = true
		}
		return true
	})
	return out
}

// listEntry is one element of a declared string-list var.
type listEntry struct {
	name string
	pos  token.Position
}

// stringListVar extracts a package-level `var name = []string{...}`
// declaration's elements.
func stringListVar(m *Module, pkg *Package, name string) ([]listEntry, bool) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return nil, false
					}
					var out []listEntry
					for _, el := range cl.Elts {
						if tv, ok := pkg.Info.Types[el]; ok && tv.Value != nil {
							out = append(out, listEntry{
								name: strings.Trim(tv.Value.ExactString(), `"`),
								pos:  m.Fset.Position(el.Pos()),
							})
						}
					}
					return out, true
				}
			}
		}
	}
	return nil, false
}
