package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// nowallclock forbids wall-clock reads and the globally-seeded math/rand
// generators in the deterministic packages: a simulation result, sweep
// record or report that depends on either cannot be replayed bit-identically
// from the simcache or re-executed identically after a crash. service,
// fleet and hw are exempt by design (timeouts, backoff jitter, and the
// card's explicitly-seeded DAQ noise streams live there). Test files are
// exempt: deadlines in tests are harness plumbing, not results.
//
// Banned: time.Now, time.Since, time.Until, and every package-level
// math/rand (and math/rand/v2) function — those draw from the
// randomly-seeded global generator. Explicit generators (rand.New,
// rand.NewSource, rand.NewPCG, ...) stay legal: a caller constructing one
// chooses its seed, which is exactly the determinism contract.
func runNoWallClock(m *Module) []Finding {
	bannedTime := map[string]bool{"Now": true, "Since": true, "Until": true}
	allowedRand := map[string]bool{
		"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true, "NewZipf": true,
	}
	var out []Finding
	for _, pkg := range m.SortedPkgs() {
		if !inDeterministicPkg(pkg.RelPath) || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgID, ok := sel.X.(*ast.Ident)
				if !ok {
					return true
				}
				pn, ok := pkg.Info.Uses[pkgID].(*types.PkgName)
				if !ok {
					return true
				}
				path := pn.Imported().Path()
				name := sel.Sel.Name
				switch {
				case path == "time" && bannedTime[name]:
					out = append(out, Finding{Pos: m.Fset.Position(sel.Pos()), Pass: "nowallclock",
						Msg: fmt.Sprintf("time.%s in a deterministic package: results must not depend on wall-clock time", name)})
				case (path == "math/rand" || path == "math/rand/v2") && !allowedRand[name]:
					if _, isFunc := pkg.Info.Uses[sel.Sel].(*types.Func); !isFunc {
						return true // types (rand.Rand, rand.Source) are fine
					}
					out = append(out, Finding{Pos: m.Fset.Position(sel.Pos()), Pass: "nowallclock",
						Msg: fmt.Sprintf("rand.%s uses the globally-seeded generator in a deterministic package: construct an explicitly-seeded rand.New(...) instead", name)})
				}
				return true
			})
		}
	}
	return out
}
