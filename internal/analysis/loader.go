// Package analysis is gpowlint's engine: a standard-library-only static
// analyzer (go/parser, go/ast, go/types — no external modules) that
// type-checks the whole module and runs the repo-specific passes enforcing
// the determinism and cache-partition invariants. See docs/LINTS.md for
// what each pass guarantees and why.
package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded module package: parsed syntax plus (for non-test
// files) full type information. Test files are parsed but not type-checked
// — the passes that consult them (faultpoint cross-referencing) work
// syntactically, which keeps the loader free of external test-package
// plumbing.
type Package struct {
	// RelPath is the module-relative import path ("" for the root package,
	// "internal/sim", ...).
	RelPath string
	// Dir is the package directory on disk.
	Dir string
	// Files are the non-test files, in deterministic (name-sorted) order.
	Files []*ast.File
	// TestFiles are the _test.go files (in-package and external), parsed
	// only.
	TestFiles []*ast.File
	// Types and Info hold the type-checker's results for Files.
	Types *types.Package
	Info  *types.Info
}

// Module is the fully loaded target: every package of one Go module.
type Module struct {
	// Root is the module root directory (where go.mod lives).
	Root string
	// Path is the module path from go.mod.
	Path string
	// Fset is the shared position table for every parsed file.
	Fset *token.FileSet
	// Pkgs maps module-relative paths to loaded packages.
	Pkgs map[string]*Package
}

// Pkg returns the package at the module-relative path, or nil.
func (m *Module) Pkg(rel string) *Package { return m.Pkgs[rel] }

// SortedPkgs returns the packages in deterministic path order.
func (m *Module) SortedPkgs() []*Package {
	rels := make([]string, 0, len(m.Pkgs))
	for rel := range m.Pkgs {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	out := make([]*Package, len(rels))
	for i, rel := range rels {
		out[i] = m.Pkgs[rel]
	}
	return out
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod []byte) string {
	for _, line := range strings.Split(string(gomod), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`)
		}
	}
	return ""
}

// Load parses and type-checks every package under root (the directory
// containing go.mod). Stdlib imports are type-checked from GOROOT source via
// the standard source importer; module-internal imports resolve to the
// module's own directories. testdata, hidden and vendor directories are
// skipped, as are directories without Go files.
func Load(root string) (*Module, error) {
	gomod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	mpath := modulePath(gomod)
	if mpath == "" {
		return nil, fmt.Errorf("analysis: no module path in %s/go.mod", root)
	}
	m := &Module{Root: root, Path: mpath, Fset: token.NewFileSet(), Pkgs: map[string]*Package{}}

	// Discover package directories.
	var rels []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
			name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		ents, err := os.ReadDir(path)
		if err != nil {
			return err
		}
		for _, e := range ents {
			if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
				rel, err := filepath.Rel(root, path)
				if err != nil {
					return err
				}
				if rel == "." {
					rel = ""
				}
				rels = append(rels, filepath.ToSlash(rel))
				break
			}
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	sort.Strings(rels)

	// Parse every discovered package up front (shared fileset, deterministic
	// file order), then type-check on demand through a module-aware importer.
	for _, rel := range rels {
		pkg, err := m.parseDir(rel)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			m.Pkgs[rel] = pkg
		}
	}

	ld := &loader{m: m, src: importer.ForCompiler(m.Fset, "source", nil), cache: map[string]*types.Package{}}
	for _, rel := range rels {
		if m.Pkgs[rel] == nil {
			continue
		}
		if _, err := ld.loadModulePkg(rel); err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %w", m.importPath(rel), err)
		}
	}
	return m, nil
}

// importPath maps a module-relative path to its import path.
func (m *Module) importPath(rel string) string {
	if rel == "" {
		return m.Path
	}
	return m.Path + "/" + rel
}

// relOfImport maps an import path of this module to its relative path
// (ok=false for foreign imports).
func (m *Module) relOfImport(path string) (string, bool) {
	if path == m.Path {
		return "", true
	}
	if rest, ok := strings.CutPrefix(path, m.Path+"/"); ok {
		return rest, true
	}
	return "", false
}

// parseDir parses one package directory. Returns nil when the directory
// holds only test files of a foreign package (cannot happen in practice) or
// no buildable files.
func (m *Module) parseDir(rel string) (*Package, error) {
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %w", err)
	}
	pkg := &Package{RelPath: rel, Dir: dir}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		if strings.HasSuffix(name, "_test.go") {
			pkg.TestFiles = append(pkg.TestFiles, f)
		} else {
			pkg.Files = append(pkg.Files, f)
		}
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, nil
	}
	return pkg, nil
}

// loader type-checks module packages recursively, delegating stdlib imports
// to the source importer.
type loader struct {
	m     *Module
	src   types.Importer
	cache map[string]*types.Package
	stack []string // import cycle detection
}

// Import implements types.Importer for the type-checker's import clause
// resolution.
func (ld *loader) Import(path string) (*types.Package, error) {
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	if rel, ok := ld.m.relOfImport(path); ok {
		return ld.loadModulePkg(rel)
	}
	p, err := ld.src.Import(path)
	if err != nil {
		return nil, err
	}
	ld.cache[path] = p
	return p, nil
}

// loadModulePkg type-checks one module package (idempotent).
func (ld *loader) loadModulePkg(rel string) (*types.Package, error) {
	path := ld.m.importPath(rel)
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	pkg := ld.m.Pkgs[rel]
	if pkg == nil {
		return nil, fmt.Errorf("import %q: no such module package", path)
	}
	for _, s := range ld.stack {
		if s == path {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
	}
	ld.stack = append(ld.stack, path)
	defer func() { ld.stack = ld.stack[:len(ld.stack)-1] }()

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: ld}
	tp, err := conf.Check(path, ld.m.Fset, pkg.Files, info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tp
	pkg.Info = info
	ld.cache[path] = tp
	return tp, nil
}
