package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one diagnostic: a position, the pass that produced it, and a
// message. Warnings print but do not fail the lint.
type Finding struct {
	Pos     token.Position
	Pass    string
	Warning bool
	Msg     string
}

// String renders the finding in go vet style, with the file path relative
// to root when possible.
func (f *Finding) String(root string) string {
	file := f.Pos.Filename
	if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
		file = rel
	}
	sev := ""
	if f.Warning {
		sev = "warning: "
	}
	return fmt.Sprintf("%s:%d:%d: %s%s [%s]", file, f.Pos.Line, f.Pos.Column, sev, f.Msg, f.Pass)
}

// Pass is one analyzer: it inspects the loaded module and reports findings.
type Pass struct {
	Name string
	Doc  string
	Run  func(m *Module) []Finding
}

// Passes returns every registered pass, in documentation order.
func Passes() []Pass {
	return []Pass{
		{Name: "timingpartition", Doc: "config.GPU fields the simulator reads must be encoded in appendTimingFields (or declared timing-neutral)", Run: runTimingPartition},
		{Name: "detrange", Doc: "no map-ordered iteration in the deterministic packages without a sort or an explicit waiver", Run: runDetRange},
		{Name: "nowallclock", Doc: "no wall-clock or global math/rand reads in the deterministic packages", Run: runNoWallClock},
		{Name: "wirejson", Doc: "every exported field reaching encoding/json in the wire packages carries a json tag", Run: runWireJSON},
		{Name: "faultpoint", Doc: "faultpoint names are declared in the shared manifest and exercised by tests or scripts", Run: runFaultpoint},
	}
}

// Run loads the module at root and executes the selected passes (all when
// names is empty). Findings come back sorted by position then message.
func Run(root string, names []string) ([]Finding, error) {
	m, err := Load(root)
	if err != nil {
		return nil, err
	}
	sel := map[string]bool{}
	for _, n := range names {
		sel[n] = true
	}
	var out []Finding
	for _, p := range Passes() {
		if len(sel) > 0 && !sel[p.Name] {
			continue
		}
		out = append(out, p.Run(m)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := &out[i], &out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Msg < b.Msg
	})
	return out, nil
}

// deterministicPkgs are the module-relative package prefixes whose results
// must be bit-reproducible: everything feeding the simcache key, the sweep
// records or the golden reports. service, fleet and hw are exempt by design
// (they deal in wall-clock time and seeded noise streams on purpose).
var deterministicPkgs = []string{
	"internal/sim",
	"internal/core",
	"internal/power",
	"internal/sweep",
	"internal/experiments",
	"internal/kernel",
}

// inDeterministicPkg reports whether the package is in the enforced set
// (prefix match covers subpackages like internal/sim/cache).
func inDeterministicPkg(rel string) bool {
	for _, p := range deterministicPkgs {
		if rel == p || strings.HasPrefix(rel, p+"/") {
			return true
		}
	}
	return false
}

// lineDirectives collects "//gpowlint:<verb>" comment directives of one
// file, keyed by the line they apply to: a directive applies to its own
// line (trailing comment) and, when it stands alone, to the next line.
func lineDirectives(fset *token.FileSet, f *ast.File) map[int][]string {
	out := map[int][]string{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			if !strings.HasPrefix(text, "gpowlint:") {
				continue
			}
			verb := strings.Fields(strings.TrimPrefix(text, "gpowlint:"))
			if len(verb) == 0 {
				continue
			}
			line := fset.Position(c.Pos()).Line
			out[line] = append(out[line], verb[0])
			out[line+1] = append(out[line+1], verb[0])
		}
	}
	return out
}

// hasDirective reports whether the line (or the line above) carries the
// given gpowlint directive in the file.
func hasDirective(dirs map[int][]string, line int, verb string) bool {
	for _, v := range dirs[line] {
		if v == verb {
			return true
		}
	}
	return false
}
