package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"reflect"
	"sort"
)

// wirejson guards the wire formats: any struct that flows into
// encoding/json inside the wire packages (the sweep wire layer, the service
// HTTP types, the fleet API types) — plus everything reachable through its
// fields, plus any type marked `//gpowlint:wire` anywhere in the module —
// must tag every exported field with a `json` tag. An untagged exported
// field marshals under its Go name, so an innocent rename silently breaks
// remote clients, journals and fleet routing state; the tag makes the wire
// name an explicit, diffable contract.
//
// Embedded fields need no tag themselves (their promoted fields marshal
// under their own tags) but their types join the closure. Types defined
// outside the module (time.Time, ...) are trusted.

// wirePkgs are the packages whose encoding/json call sites seed the wire
// type closure.
var wirePkgs = []string{"internal/sweep", "internal/service", "internal/fleet"}

func runWireJSON(m *Module) []Finding {
	pass := "wirejson"

	// Seed the closure: payload types of json calls in the wire packages...
	seen := map[*types.Named]bool{}
	var queue []*types.Named
	addType := func(t types.Type) {
		for {
			switch u := t.(type) {
			case *types.Pointer:
				t = u.Elem()
				continue
			case *types.Slice:
				t = u.Elem()
				continue
			case *types.Array:
				t = u.Elem()
				continue
			case *types.Map:
				t = u.Elem()
				continue
			}
			break
		}
		n, ok := t.(*types.Named)
		if !ok || n.Obj().Pkg() == nil {
			return
		}
		if _, inModule := m.relOfImport(n.Obj().Pkg().Path()); !inModule {
			return
		}
		if !seen[n] {
			seen[n] = true
			queue = append(queue, n)
		}
	}
	for _, rel := range wirePkgs {
		pkg := m.Pkg(rel)
		if pkg == nil || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				for _, arg := range jsonPayloadArgs(pkg, call) {
					if tv, ok := pkg.Info.Types[arg]; ok {
						addType(tv.Type)
					}
				}
				return true
			})
		}
	}
	// ...plus explicitly marked types anywhere in the module.
	for _, pkg := range m.SortedPkgs() {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			dirs := lineDirectives(m.Fset, f)
			ast.Inspect(f, func(n ast.Node) bool {
				ts, ok := n.(*ast.TypeSpec)
				if !ok {
					return true
				}
				if hasDirective(dirs, m.Fset.Position(ts.Pos()).Line, "wire") {
					if obj, ok := pkg.Info.Defs[ts.Name].(*types.TypeName); ok {
						addType(obj.Type())
					}
				}
				return true
			})
		}
	}

	// Walk the closure, checking struct fields.
	var out []Finding
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		st, ok := n.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		tname := n.Obj().Pkg().Name() + "." + n.Obj().Name()
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			addType(f.Type()) // reachable wire surface, tagged or not
			if f.Embedded() {
				continue
			}
			tag := reflect.StructTag(st.Tag(i))
			if _, ok := tag.Lookup("json"); !ok {
				out = append(out, Finding{Pos: m.Fset.Position(f.Pos()), Pass: pass,
					Msg: fmt.Sprintf("exported field %s.%s reaches encoding/json without a json tag: the wire format silently depends on the Go field name", tname, f.Name())})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return posLess(out[i].Pos, out[j].Pos) })
	return out
}

// jsonPayloadArgs returns the payload expressions of an encoding/json call:
// json.Marshal(v), json.MarshalIndent(v, ...), json.Unmarshal(b, &v),
// enc.Encode(v), dec.Decode(&v). Non-json calls return nil.
func jsonPayloadArgs(pkg *Package, call *ast.CallExpr) []ast.Expr {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	// Package-level json.X calls.
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := pkg.Info.Uses[id].(*types.PkgName); ok {
			if pn.Imported().Path() != "encoding/json" {
				return nil
			}
			switch sel.Sel.Name {
			case "Marshal", "MarshalIndent":
				if len(call.Args) >= 1 {
					return call.Args[:1]
				}
			case "Unmarshal":
				if len(call.Args) == 2 {
					return call.Args[1:]
				}
			}
			return nil
		}
	}
	// Method calls on *json.Encoder / *json.Decoder.
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return nil
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return nil
	}
	if (fn.Name() == "Encode" || fn.Name() == "Decode") && len(call.Args) == 1 {
		return call.Args
	}
	return nil
}
