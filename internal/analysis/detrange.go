package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// detrange forbids ranging over a map in the deterministic packages: map
// iteration order is randomized per run, so any result, error message or
// output derived from it is nondeterministic (the PR 1 texture-line-dedup
// incident was exactly this class). Two escapes:
//
//   - the canonical collect-then-sort idiom is recognized: a loop whose
//     body only appends the key/value to a slice that is later passed to a
//     sort.* / slices.Sort* call in the same function;
//   - a `//gpowlint:unordered` comment on the range statement (or the line
//     above) waives the check for loops that are genuinely order-free
//     (pure set membership, counting into another map). The waiver is the
//     documentation that someone thought about it.
//
// Test files are exempt: they assert determinism, they do not produce it.
func runDetRange(m *Module) []Finding {
	var out []Finding
	for _, pkg := range m.SortedPkgs() {
		if !inDeterministicPkg(pkg.RelPath) || pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			dirs := lineDirectives(m.Fset, f)
			// Walk with enclosing-function tracking so the sorted-later
			// heuristic knows where to look.
			var walk func(n ast.Node, fnBody *ast.BlockStmt)
			walk = func(n ast.Node, fnBody *ast.BlockStmt) {
				ast.Inspect(n, func(n ast.Node) bool {
					switch n := n.(type) {
					case *ast.FuncDecl:
						if n.Body != nil {
							walk(n.Body, n.Body)
						}
						return false
					case *ast.FuncLit:
						walk(n.Body, n.Body)
						return false
					case *ast.RangeStmt:
						tv, ok := pkg.Info.Types[n.X]
						if !ok {
							return true
						}
						if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
							return true
						}
						pos := m.Fset.Position(n.Pos())
						if hasDirective(dirs, pos.Line, "unordered") {
							return true
						}
						if isCollectThenSort(pkg, n, fnBody) {
							return true
						}
						out = append(out, Finding{Pos: pos, Pass: "detrange",
							Msg: fmt.Sprintf("range over map %s iterates in nondeterministic order: sort the keys first or waive with //gpowlint:unordered", types.TypeString(tv.Type, types.RelativeTo(pkg.Types)))})
					}
					return true
				})
			}
			walk(f, nil)
		}
	}
	return out
}

// isCollectThenSort recognizes the collect-then-sort idiom: every statement
// in the loop body appends the range's key/value (or expressions built from
// them) to slice variables, and each such slice is sorted after the loop in
// the same function body.
func isCollectThenSort(pkg *Package, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if fnBody == nil || len(rng.Body.List) == 0 {
		return false
	}
	var collected []types.Object
	for _, stmt := range rng.Body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return false
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		if !ok || fn.Name != "append" {
			return false
		}
		lhs, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return false
		}
		obj := pkg.Info.Uses[lhs]
		if obj == nil {
			obj = pkg.Info.Defs[lhs]
		}
		if obj == nil {
			return false
		}
		// append's first arg must be the same slice being assigned.
		if arg0, ok := call.Args[0].(*ast.Ident); !ok || pkg.Info.Uses[arg0] != obj {
			return false
		}
		collected = append(collected, obj)
	}
	for _, obj := range collected {
		if !sortedAfter(pkg, obj, rng, fnBody) {
			return false
		}
	}
	return true
}

// sortedAfter reports whether obj appears as an argument to a sort.* or
// slices.* call positioned after the range statement within the function
// body.
func sortedAfter(pkg *Package, obj types.Object, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pkg.Info.Uses[pkgID].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := arg.(*ast.Ident); ok && pkg.Info.Uses[id] == obj {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
