#!/bin/sh
# Fixture drill: the first arm is declared (and counts as crash-early's
# reference); the second arms a typo'd name the manifest never declared.
GPUSIMPOW_FAULTPOINT=crash-early:2 ./daemon
GPUSIMPOW_FAULTPOINT=typo-point ./daemon
