module fixturemod

go 1.24
