// Package sweep seeds the wirejson pass: Record flows into json.Marshal,
// Cell joins the closure through Record's field, and each carries one
// untagged exported field.
package sweep

import "encoding/json"

// Record is the marshaled root.
type Record struct {
	Scenario string `json:"scenario"`
	Cells    []Cell `json:"cells"`
	Elapsed  int    // untagged on purpose
}

// Cell is reached only transitively.
type Cell struct {
	Index int     `json:"index"`
	Power float64 // untagged on purpose
}

// Marshal is the seeding call site.
func Marshal(r *Record) ([]byte, error) { return json.Marshal(r) }
