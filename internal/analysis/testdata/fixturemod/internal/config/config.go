// Package config is a miniature of the real module's config package,
// seeded with one violation of each timingpartition rule so the golden
// test can pin the diagnostics.
package config

import (
	"crypto/sha256"
	"encoding/binary"
)

// GPU mirrors the real config.GPU shape: some fields encoded in the
// timing key, some classified, and one (DebugLabel) left unclassified on
// purpose.
type GPU struct {
	Name         string
	CoreClockMHz float64
	Clusters     int
	ProcessNM    float64
	L1KB         int
	DebugLabel   string
}

// powerOnlyFields deliberately lists one real field and one field that
// does not exist ("Ghost").
var powerOnlyFields = []string{
	"ProcessNM",
	"Ghost",
}

var timingNeutralFields = []string{
	"Name",
}

// appendTimingFields encodes CoreClockMHz, Clusters and L1KB. L1KB is
// never read by the sim package, so it is dead key material (warning).
func (g *GPU) appendTimingFields(b []byte) []byte {
	b = binary.BigEndian.AppendUint64(b, uint64(g.CoreClockMHz))
	b = binary.BigEndian.AppendUint64(b, uint64(g.Clusters))
	b = binary.BigEndian.AppendUint64(b, uint64(g.L1KB))
	return b
}

// TimingKey mirrors the real content-addressed key.
func (g *GPU) TimingKey() [32]byte { return sha256.Sum256(g.appendTimingFields(nil)) }

// NumCores exists to exercise the transitive method-read closure: a sim
// call to NumCores counts as reading Clusters.
func (g *GPU) NumCores() int { return g.Clusters * 2 }

// CalReport is marked as a wire type even though config is not a wire
// package; the directive pulls it into the json-tag closure.
//
//gpowlint:wire
type CalReport struct {
	Version int // untagged on purpose
}
