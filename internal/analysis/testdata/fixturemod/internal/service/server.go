package service

// crashMaybe arms one declared point (clean) and one undeclared literal
// (finding).
func crashMaybe() bool {
	if Faultpoint(FaultCrashEarly) {
		return true
	}
	return Faultpoint("undeclared-literal")
}

// armDynamic forwards a computed name (finding: not a constant).
func armDynamic(n string) bool { return Faultpoint(n) }

var _ = crashMaybe
var _ = armDynamic
var _ = FaultRogue
