// Package service seeds the faultpoint pass: one const missing from the
// manifest, one manifest name with no const, and call sites with a
// literal and a computed argument (in server.go — this file is exempt as
// the declaring file).
package service

const (
	// FaultCrashEarly is declared in the manifest and exercised by the
	// fixture script.
	FaultCrashEarly = "crash-early"
	// FaultRogue is missing from the manifest on purpose.
	FaultRogue = "rogue-point"
)

func faultpoint(name string) bool { return name != "" }

// Faultpoint is the exported check; forwarding a parameter here is the
// declaring file's prerogative.
func Faultpoint(name string) bool { return faultpoint(name) }
