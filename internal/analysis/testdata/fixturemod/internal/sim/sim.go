// Package sim seeds one violation of each determinism rule, plus the
// clean idioms (waiver, collect-then-sort, method-mediated field read)
// that must NOT be flagged.
package sim

import (
	"math/rand"
	"sort"
	"time"

	"fixturemod/internal/config"
)

// Run trips timingpartition (power-only and unclassified reads),
// detrange (unsorted map range) and nowallclock (time.Now, global rand).
func Run(cfg *config.GPU, counts map[string]int) float64 {
	total := float64(cfg.NumCores()) * cfg.CoreClockMHz
	total += cfg.ProcessNM // power-only field read on the timing side
	if cfg.DebugLabel != "" {
		total++
	}
	for _, v := range counts { // unsorted map iteration
		total += float64(v)
	}
	seen := map[string]bool{}
	for k := range counts { //gpowlint:unordered pure membership, order-free
		seen[k] = true
	}
	var keys []string
	for k := range counts { // collect-then-sort: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	total += float64(len(keys) + len(seen))
	total += float64(time.Now().Nanosecond())
	total += rand.Float64()
	return total
}

// mergeShards mimics the parallel stepper's cycle-barrier merge: combining
// per-worker activity shards by ranging over an unsorted map makes the
// accumulated floating-point totals (and any order-sensitive replay) depend
// on Go's randomized map order — exactly the bug class detrange exists for.
func mergeShards(shards map[int]float64) float64 {
	var total float64
	for _, shard := range shards { // unsorted shard merge
		total += shard
	}
	return total
}

var _ = mergeShards
