package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// faultpoint closes the loop between the fault-injection names that Go
// code, tests and the shell drills all match by string:
//
//   - the manifest (internal/service/faultpoints.txt) is the single list
//     of declared faultpoint names, shared by Go (go:embed) and the
//     scripts (service_lib.sh validates against it);
//   - every `const Fault...` string in internal/service must be a manifest
//     name, and every manifest name must have such a const — neither side
//     can drift;
//   - every argument to service.Faultpoint (or the internal faultpoint)
//     must be a compile-time constant whose value is a manifest name: a
//     typo'd name can never arm, so it must never compile;
//   - every GPUSIMPOW_FAULTPOINT=<name>[:opts] assignment in scripts/*.sh
//     must name a manifest entry — the typo'd-drill bug class: a drill
//     that arms a nonexistent point "passes" by testing nothing;
//   - every manifest name must be exercised by at least one _test.go file
//     or one script, so a declared point cannot silently rot.

const manifestRel = "internal/service/faultpoints.txt"

// servicePkg is the package owning the faultpoint machinery.
const servicePkg = "internal/service"

func runFaultpoint(m *Module) []Finding {
	pass := "faultpoint"
	manifestPath := filepath.Join(m.Root, filepath.FromSlash(manifestRel))
	data, err := os.ReadFile(manifestPath)
	if err != nil {
		return []Finding{{Pass: pass, Pos: token.Position{Filename: manifestPath},
			Msg: fmt.Sprintf("missing faultpoint manifest: %v", err)}}
	}
	manifest := map[string]int{} // name -> manifest line
	var names []string
	for i, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if _, dup := manifest[line]; dup {
			return []Finding{{Pass: pass, Pos: token.Position{Filename: manifestPath, Line: i + 1},
				Msg: fmt.Sprintf("duplicate manifest entry %q", line)}}
		}
		manifest[line] = i + 1
		names = append(names, line)
	}

	var out []Finding
	svc := m.Pkg(servicePkg)
	if svc == nil || svc.Info == nil {
		return []Finding{{Pass: pass, Msg: fmt.Sprintf("no %s package in module %s", servicePkg, m.Path)}}
	}

	// Fault* consts in the service package: name -> value, and value -> const
	// names (for the test-reference scan).
	constVal := map[string]string{}
	constPos := map[string]token.Position{}
	for _, f := range svc.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for _, id := range vs.Names {
				if !strings.HasPrefix(id.Name, "Fault") {
					continue
				}
				c, ok := svc.Info.Defs[id].(*types.Const)
				if !ok || c.Val().Kind() != constant.String {
					continue
				}
				constVal[id.Name] = constant.StringVal(c.Val())
				constPos[id.Name] = m.Fset.Position(id.Pos())
			}
			return true
		})
	}
	valueConsts := map[string][]string{}
	var constNames []string
	for cn := range constVal {
		constNames = append(constNames, cn)
	}
	sort.Strings(constNames)
	for _, cn := range constNames {
		v := constVal[cn]
		valueConsts[v] = append(valueConsts[v], cn)
		if _, ok := manifest[v]; !ok {
			out = append(out, Finding{Pos: constPos[cn], Pass: pass,
				Msg: fmt.Sprintf("const %s = %q is not in the faultpoint manifest (%s)", cn, v, manifestRel)})
		}
	}
	for _, name := range names {
		if len(valueConsts[name]) == 0 {
			out = append(out, Finding{Pos: token.Position{Filename: manifestPath, Line: manifest[name]}, Pass: pass,
				Msg: fmt.Sprintf("manifest name %q has no Fault* const in %s", name, servicePkg)})
		}
	}

	// Every Faultpoint(...) argument must be a constant manifest name. The
	// file declaring the faultpoint machinery is exempt: its exported
	// wrapper forwards a parameter by design, and the wrapper's callers
	// are what get checked.
	declFiles := map[string]bool{}
	for _, f := range svc.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && (fd.Name.Name == "Faultpoint" || fd.Name.Name == "faultpoint") {
				declFiles[m.Fset.Position(f.Pos()).Filename] = true
			}
		}
	}
	for _, pkg := range m.SortedPkgs() {
		if pkg.Info == nil {
			continue
		}
		for _, f := range pkg.Files {
			if declFiles[m.Fset.Position(f.Pos()).Filename] {
				continue
			}
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					return true
				}
				if !isFaultpointCallee(m, pkg, call.Fun) {
					return true
				}
				pos := m.Fset.Position(call.Args[0].Pos())
				tv, ok := pkg.Info.Types[call.Args[0]]
				if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
					out = append(out, Finding{Pos: pos, Pass: pass,
						Msg: "Faultpoint argument must be a string constant (a declared Fault* const), not a computed value"})
					return true
				}
				v := constant.StringVal(tv.Value)
				if _, ok := manifest[v]; !ok {
					out = append(out, Finding{Pos: pos, Pass: pass,
						Msg: fmt.Sprintf("Faultpoint(%q): name is not in the faultpoint manifest (%s)", v, manifestRel)})
				}
				return true
			})
		}
	}

	// Scripts: every armed faultpoint must be a manifest name; collect
	// referenced names along the way.
	referenced := map[string]bool{}
	scriptFiles, _ := filepath.Glob(filepath.Join(m.Root, "scripts", "*.sh"))
	sort.Strings(scriptFiles)
	armRe := regexp.MustCompile(`GPUSIMPOW_FAULTPOINT=["']?([A-Za-z0-9_.-]+)`)
	for _, sf := range scriptFiles {
		body, err := os.ReadFile(sf)
		if err != nil {
			continue
		}
		for i, line := range strings.Split(string(body), "\n") {
			if mm := armRe.FindStringSubmatch(line); mm != nil {
				name := strings.SplitN(mm[1], ":", 2)[0]
				if _, ok := manifest[name]; !ok {
					out = append(out, Finding{Pos: token.Position{Filename: sf, Line: i + 1}, Pass: pass,
						Msg: fmt.Sprintf("script arms faultpoint %q, which is not in the faultpoint manifest (%s): the drill would test nothing", name, manifestRel)})
				}
			}
		}
		for _, name := range names {
			if strings.Contains(string(body), name) {
				referenced[name] = true
			}
		}
	}

	// Tests: a manifest name is exercised when a _test.go file mentions the
	// name literally or uses one of its consts.
	for _, pkg := range m.SortedPkgs() {
		for _, f := range pkg.TestFiles {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if v, ok := constVal[n.Name]; ok {
						referenced[v] = true
					}
				case *ast.BasicLit:
					if n.Kind == token.STRING {
						for _, name := range names {
							if strings.Contains(n.Value, name) {
								referenced[name] = true
							}
						}
					}
				}
				return true
			})
		}
	}
	for _, name := range names {
		if !referenced[name] {
			out = append(out, Finding{Pos: token.Position{Filename: manifestPath, Line: manifest[name]}, Pass: pass,
				Msg: fmt.Sprintf("faultpoint %q is declared but no test or script exercises it", name)})
		}
	}
	return out
}

// isFaultpointCallee reports whether the call target is the service
// package's Faultpoint (or internal faultpoint) function.
func isFaultpointCallee(m *Module, pkg *Package, fun ast.Expr) bool {
	var obj types.Object
	switch f := fun.(type) {
	case *ast.Ident:
		obj = pkg.Info.Uses[f]
	case *ast.SelectorExpr:
		obj = pkg.Info.Uses[f.Sel]
	default:
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return false
	}
	if fn.Name() != "Faultpoint" && fn.Name() != "faultpoint" {
		return false
	}
	rel, ok := m.relOfImport(fn.Pkg().Path())
	return ok && rel == servicePkg
}
