package analysis

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden findings file")

// TestFixtureFindings runs every pass over the seeded fixture module
// (testdata/fixturemod — a self-contained mini-module with one violation
// of each rule plus the clean idioms that must not be flagged) and pins
// the rendered diagnostics byte-for-byte. Regenerate after an intentional
// diagnostic change with:
//
//	go test ./internal/analysis -run TestFixtureFindings -update
func TestFixtureFindings(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, nil)
	if err != nil {
		t.Fatalf("Run(%s): %v", root, err)
	}
	if len(findings) == 0 {
		t.Fatal("the seeded fixture produced no findings; the analyzers are blind")
	}
	var buf bytes.Buffer
	for i := range findings {
		buf.WriteString(findings[i].String(root))
		buf.WriteByte('\n')
	}
	golden := filepath.Join("testdata", "findings.golden")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("findings diverge from %s (rerun with -update if the change is intentional)\n--- got ---\n%s--- want ---\n%s", golden, buf.Bytes(), want)
	}
}

// TestPassSelection checks that Run honors an explicit pass subset: with
// only detrange selected, the fixture's timingpartition/nowallclock/
// wirejson/faultpoint seeds must stay silent.
func TestPassSelection(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "fixturemod"))
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Run(root, []string{"detrange"})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) == 0 {
		t.Fatal("detrange found nothing in the seeded fixture")
	}
	for i := range findings {
		if findings[i].Pass != "detrange" {
			t.Errorf("selected only detrange but got a %s finding: %s", findings[i].Pass, findings[i].String(root))
		}
	}
}
