package experiments

// Golden-file contract of the Reduce/Render split: every registered
// scenario's rendered text is pinned byte for byte in testdata/*.golden.
// The files were captured from the pre-split Print* implementations, so
// the typed reduction layer (reduce* -> sweep.Report -> sweep.RenderText)
// provably changes no output. Regenerate deliberately with
//
//	go test ./internal/experiments -run TestGoldenReports -update
//
// after an intentional output change (and say so in the commit).

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"gpusimpow/internal/sweep"
)

var updateGolden = flag.Bool("update", false, "rewrite the scenario golden files")

// heavyScenarios are skipped in -short mode (full measurement grids /
// waveform synthesis), matching the package's existing -short policy.
var heavyScenarios = map[string]bool{
	"fig4":  true,
	"fig6":  true,
	"fig6a": true,
	"fig6b": true,
}

func TestGoldenReports(t *testing.T) {
	for _, sc := range sweep.Scenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			if testing.Short() && heavyScenarios[sc.Name] {
				t.Skip("heavy scenario in -short mode")
			}
			var buf bytes.Buffer
			if err := sweep.RunScenario(&buf, sc.Name, nil); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", sc.Name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s: rendered report diverged from golden\n%s", sc.Name, diffLines(want, buf.Bytes()))
			}
		})
	}
}

// diffLines reports the first diverging line, with context — enough to
// debug a formatting regression without a full diff engine.
func diffLines(want, got []byte) string {
	w := bytes.Split(want, []byte("\n"))
	g := bytes.Split(got, []byte("\n"))
	n := len(w)
	if len(g) < n {
		n = len(g)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(w[i], g[i]) {
			return fmt.Sprintf("line %d:\n want %q\n got  %q", i+1, w[i], g[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(w), len(g))
}
