package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/sweep"
)

// L1SchedSpec declares a genuinely new two-axis design-space study on the
// sweep engine — the ROADMAP's "new scenarios are now ~30 lines" claim,
// and the service's cheap demo workload: L1 data-cache size × warp
// scheduler policy on a GTX580-class core, driven by the reuse-heavy
// kernel the L2 ablation uses (scattered gathers over a 64 KB array, the
// access pattern whose hit rate an L1 actually moves). Both axes are
// timing-relevant, so every cell is its own timing group.
func L1SchedSpec() *sweep.Spec {
	var l1 []sweep.Value
	for _, kb := range []int{0, 16, 32, 48} {
		kb := kb
		name := fmt.Sprintf("%dKB", kb)
		if kb == 0 {
			name = "none"
		}
		l1 = append(l1, sweep.Value{Name: name, Mutate: func(c *config.GPU) {
			c.Name += "-l1." + name
			c.L1KB = kb
		}})
	}
	var sched []sweep.Value
	for _, pol := range []string{"rr", "gto", "twolevel"} {
		pol := pol
		sched = append(sched, sweep.Value{Name: pol, Mutate: func(c *config.GPU) {
			c.Name += "-" + pol
			c.SchedulerPolicy = pol
		}})
	}
	w := kernelWorkload(l2ReuseKernel)
	return &sweep.Spec{
		Name:  "l1sched",
		Title: "Extension: L1 size x scheduler policy on a reuse-heavy workload (GTX580)",
		Axes: []sweep.Axis{
			{Name: "l1", Values: l1},
			{Name: "sched", Values: sched},
		},
		Base:     config.GTX580,
		Workload: func(*sweep.Cell) (*sweep.Workload, error) { return w, nil },
		Sim:      true, Power: true,
	}
}

// L1SchedRow is one grid point's outcome.
type L1SchedRow struct {
	L1, Sched string
	Cycles    uint64
	L1HitRate float64
	TotalW    float64
	DynamicW  float64
	StaticW   float64
	EnergyMJ  float64
}

// L1Sched runs the grid (optionally filtered) and reduces it row per cell,
// in plan order.
func L1Sched(f sweep.Filter) ([]L1SchedRow, error) {
	plan, err := L1SchedSpec().Plan(f)
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	rows := make([]L1SchedRow, len(rs))
	for i, cr := range rs {
		u := &cr.Units[0]
		p := u.Power
		rows[i] = L1SchedRow{
			L1:        cr.Cell.Value("l1"),
			Sched:     cr.Cell.Value("sched"),
			Cycles:    u.Timing.Perf.Activity.Cycles,
			L1HitRate: u.Timing.Perf.L1HitRate,
			TotalW:    p.TotalW,
			DynamicW:  p.DynamicW,
			StaticW:   p.StaticW,
			EnergyMJ:  p.TotalW * p.Seconds * 1e3,
		}
	}
	return rows, nil
}
