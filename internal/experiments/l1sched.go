package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/sweep"
)

// L1SchedSpec declares a genuinely new two-axis design-space study on the
// sweep engine — the ROADMAP's "new scenarios are now ~30 lines" claim,
// and the service's cheap demo workload: L1 data-cache size × warp
// scheduler policy on a GTX580-class core, driven by the reuse-heavy
// kernel the L2 ablation uses (scattered gathers over a 64 KB array, the
// access pattern whose hit rate an L1 actually moves). Both axes are
// timing-relevant, so every cell is its own timing group.
func L1SchedSpec() *sweep.Spec {
	var l1 []sweep.Value
	for _, kb := range []int{0, 16, 32, 48} {
		kb := kb
		name := fmt.Sprintf("%dKB", kb)
		if kb == 0 {
			name = "none"
		}
		l1 = append(l1, sweep.Value{Name: name, Mutate: func(c *config.GPU) {
			c.Name += "-l1." + name
			c.L1KB = kb
		}})
	}
	var sched []sweep.Value
	for _, pol := range []string{"rr", "gto", "twolevel"} {
		pol := pol
		sched = append(sched, sweep.Value{Name: pol, Mutate: func(c *config.GPU) {
			c.Name += "-" + pol
			c.SchedulerPolicy = pol
		}})
	}
	w := kernelWorkload(l2ReuseKernel)
	return &sweep.Spec{
		Name:  "l1sched",
		Title: "Extension: L1 size x scheduler policy on a reuse-heavy workload (GTX580)",
		Axes: []sweep.Axis{
			{Name: "l1", Values: l1},
			{Name: "sched", Values: sched},
		},
		Base:     config.GTX580,
		Workload: func(*sweep.Cell) (*sweep.Workload, error) { return w, nil },
		Sim:      true, Power: true,
	}
}

// L1SchedRow is one grid point's outcome.
type L1SchedRow struct {
	L1, Sched string
	Cycles    uint64
	L1HitRate float64
	TotalW    float64
	DynamicW  float64
	StaticW   float64
	EnergyMJ  float64
}

// L1Sched runs the grid (optionally filtered) and reduces it row per cell,
// in plan order.
func L1Sched(f sweep.Filter) ([]L1SchedRow, error) {
	plan, err := L1SchedSpec().Plan(f)
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	return l1SchedReduce(plan.Records(rs))
}

// l1SchedReduce folds the grid's flat cell records into rows — shared by
// L1Sched, the CLI report and the service's wire report.
func l1SchedReduce(recs []*sweep.CellRecord) ([]L1SchedRow, error) {
	rows := make([]L1SchedRow, len(recs))
	for i, rec := range recs {
		if len(rec.Units) == 0 || rec.Units[0].Timing == nil || rec.Units[0].Power == nil {
			return nil, fmt.Errorf("experiments: l1sched: record %s missing timing/power", rec.CoordString())
		}
		u := &rec.Units[0]
		row := L1SchedRow{
			Cycles:    u.Timing.Cycles,
			L1HitRate: u.Timing.L1HitRate,
			TotalW:    u.Power.TotalW,
			DynamicW:  u.Power.DynamicW,
			StaticW:   u.Power.StaticW,
			EnergyMJ:  u.Power.TotalW * u.Power.Seconds * 1e3,
		}
		for _, co := range rec.Coords {
			switch co.Axis {
			case "l1":
				row.L1 = co.Value
			case "sched":
				row.Sched = co.Value
			}
		}
		rows[i] = row
	}
	return rows, nil
}
