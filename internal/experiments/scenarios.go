package experiments

import (
	"fmt"
	"io"
	"strings"

	"gpusimpow/internal/sweep"
)

// This file registers every experiment as a named scenario in the sweep
// registry, so front-ends (cmd/gpowexp) list, filter and run them without
// hard-wired dispatch. Sweep-backed scenarios expose their Spec (axes are
// listable and filterable); table-style artifacts register as plain
// printable scenarios.

func init() {
	sweep.Register(sweep.Scenario{
		Name: "table2", Title: "Table II: key features of the evaluated GPU architectures",
		Print: func(w io.Writer, _ sweep.Filter) error { return PrintTable2(w) },
	})
	sweep.Register(sweep.Scenario{
		Name: "table4", Title: "Table IV: static power and area (simulated vs. measured/datasheet)",
		Print: func(w io.Writer, _ sweep.Filter) error { return PrintTable4(w) },
	})
	sweep.Register(sweep.Scenario{
		Name: "table5", Title: "Table V: blackscholes power breakdown on GT240",
		Print: func(w io.Writer, _ sweep.Filter) error { return PrintTable5(w) },
	})
	sweep.Register(sweep.Scenario{
		Name: "fig4", Title: "Figure 4: GT240 power vs. thread block count (cluster staircase)",
		Print: func(w io.Writer, _ sweep.Filter) error { return PrintFig4(w) },
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6", Title: "Figure 6: simulated vs. measured power over the benchmark suite",
		Spec:  Fig6Spec,
		Print: PrintFig6,
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6a", Title: "Figure 6a: simulated vs. measured power, GT240",
		Print: func(w io.Writer, _ sweep.Filter) error {
			return PrintFig6(w, sweep.Filter{"gpu": {"GT240"}})
		},
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6b", Title: "Figure 6b: simulated vs. measured power, GTX580",
		Print: func(w io.Writer, _ sweep.Filter) error {
			return PrintFig6(w, sweep.Filter{"gpu": {"GTX580"}})
		},
	})
	sweep.Register(sweep.Scenario{
		Name: "energyperop", Title: "Section III-D: execution unit energy via lane differencing",
		Spec: EnergyPerOpSpec,
		Print: func(w io.Writer, f sweep.Filter) error {
			// The lane-differencing reduction needs the full grid: filters
			// would break the 31-vs-1 pairing, so reject them rather than
			// silently printing an unrestricted run.
			if len(f) > 0 {
				return fmt.Errorf("experiments: energyperop needs its full grid (31-vs-1 lane differencing); run it unfiltered")
			}
			return PrintEnergyPerOp(w)
		},
	})
	sweep.Register(sweep.Scenario{
		Name: "staticextrap", Title: "Section IV-B: static power by frequency extrapolation (GT240)",
		Print: func(w io.Writer, _ sweep.Filter) error { return PrintStaticExtrap(w) },
	})
	sweep.Register(sweep.Scenario{
		Name: "dvfs", Title: "DVFS sweep: compute-bound kernel on the virtual GT240",
		Spec:  DVFSSpec,
		Print: PrintDVFS,
	})

	ablations := []struct {
		title string
		spec  func() *sweep.Spec
	}{
		{"scoreboard vs. blocking issue", AblationScoreboardSpec},
		{"L2 cache", AblationL2Spec},
		{"process node sweep", AblationProcessNodeSpec},
		{"core count scaling", AblationCoreCountSpec},
		{"warp scheduler policy", AblationSchedulerSpec},
	}
	for _, a := range ablations {
		a := a
		sp := a.spec()
		sweep.Register(sweep.Scenario{
			Name: sp.Name, Title: sp.Title,
			Spec: a.spec,
			Print: func(w io.Writer, f sweep.Filter) error {
				return printAblation(w, a.title, a.spec(), f)
			},
		})
	}
	sweep.Register(sweep.Scenario{
		Name: "l1sched", Title: "Extension: L1 size x scheduler policy on a reuse-heavy workload (GTX580)",
		Spec:  L1SchedSpec,
		Print: PrintL1Sched,
	})
	sweep.Register(sweep.Scenario{
		Name: "ablation", Title: "All five design-choice ablation studies",
		Print: func(w io.Writer, _ sweep.Filter) error {
			for _, a := range ablations {
				if err := printAblation(w, a.title, a.spec(), nil); err != nil {
					return err
				}
			}
			return nil
		},
	})
}

// PrintTable2 renders Table II.
func PrintTable2(w io.Writer) error {
	fmt.Fprintln(w, "Table II: key features of the evaluated GPU architectures")
	fmt.Fprintf(w, "%-20s %12s %12s\n", "Feature", "GT240", "GTX580")
	for _, r := range Table2() {
		fmt.Fprintf(w, "%-20s %12s %12s\n", r.Feature, r.GT240, r.GTX580)
	}
	return nil
}

// PrintTable4 renders Table IV.
func PrintTable4(w io.Writer) error {
	rows, err := Table4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table IV: static power and area (simulated vs. measured/datasheet)")
	fmt.Fprintf(w, "%-8s %-10s %12s %12s\n", "GPU", "", "Static [W]", "Area [mm2]")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %-10s %12.1f %12.1f\n", r.GPU, "Simulated", r.SimStaticW, r.SimAreaMM2)
		fmt.Fprintf(w, "%-8s %-10s %12.1f %12.1f\n", "", "Real", r.RealStaticW, r.RealAreaMM2)
	}
	return nil
}

// PrintTable5 renders Table V.
func PrintTable5(w io.Writer) error {
	rep, err := Table5()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Table V: blackscholes power breakdown on GT240")
	return rep.WriteProfile(w)
}

// PrintFig4 renders the Figure 4 staircase.
func PrintFig4(w io.Writer) error {
	r, err := Fig4()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Figure 4: GT240 power vs. thread block count (cluster staircase)")
	fmt.Fprintf(w, "idle (pre/post kernel): %.2f W\n", r.IdleW)
	maxP := r.PowerPerBlocks[len(r.PowerPerBlocks)-1]
	for i, p := range r.PowerPerBlocks {
		bar := strings.Repeat("#", int(40*(p-r.IdleW)/(maxP-r.IdleW)))
		fmt.Fprintf(w, "%2d block(s): %6.2f W  |%s\n", i+1, p, bar)
	}
	fmt.Fprintf(w, "first block delta: %.2f W (global scheduler + cluster + core)\n", r.FirstBlockDeltaW)
	fmt.Fprintf(w, "cluster step (blocks 2-4):  %.3f W\n", r.ClusterStepW)
	fmt.Fprintf(w, "core step (blocks 5-12):    %.3f W\n", r.CoreStepW)
	fmt.Fprintf(w, "cluster activation premium: %.3f W (paper: 0.692 W)\n", r.ClusterStepW-r.CoreStepW)
	return nil
}

// PrintFig6 renders one sub-figure of Figure 6 per GPU the filter admits
// (both when unfiltered).
func PrintFig6(w io.Writer, f sweep.Filter) error {
	gpus := f["gpu"]
	if len(gpus) == 0 {
		gpus = []string{"GT240", "GTX580"}
	}
	// Non-gpu filter axes (e.g. bench=...) would silently bias the error
	// aggregates, so restrict filtering to whole sub-figures.
	for axis := range f {
		if axis != "gpu" {
			return fmt.Errorf("experiments: fig6 filters on gpu only (got %s=...)", axis)
		}
	}
	for i, gpu := range gpus {
		if i > 0 {
			fmt.Fprintln(w)
		}
		r, err := Fig6(gpu)
		if err != nil {
			return err
		}
		sub := "6a"
		if gpu == "GTX580" {
			sub = "6b"
		}
		fmt.Fprintf(w, "Figure %s: simulated vs. measured power, %s\n", sub, gpu)
		fmt.Fprintf(w, "%-14s %10s %10s %10s %10s %7s %s\n",
			"Kernel", "SimStat", "SimDyn", "MeasStat", "MeasDyn", "Err%", "")
		for _, b := range r.Bars {
			note := ""
			if b.ShortWindow {
				note = "(short measurement window)"
			}
			fmt.Fprintf(w, "%-14s %10.2f %10.2f %10.2f %10.2f %7.1f %s\n",
				b.Kernel, b.SimStaticW, b.SimDynamicW, b.MeasStaticW, b.MeasDynamicW, b.RelErrPct, note)
		}
		fmt.Fprintf(w, "average relative error: %.1f%% (paper: %s)\n", r.AvgRelErrPct,
			map[string]string{"GT240": "11.7%", "GTX580": "10.8%"}[gpu])
		fmt.Fprintf(w, "dynamic-only average relative error: %.1f%% (paper: %s)\n", r.DynAvgRelErrPct,
			map[string]string{"GT240": "28.3%", "GTX580": "20.9%"}[gpu])
		fmt.Fprintf(w, "max relative error: %.1f%% on %s\n", r.MaxRelErrPct, r.MaxErrKernel)
		fmt.Fprintf(w, "kernels overestimated: %.0f%%\n", 100*r.OverestimatedFraction)
	}
	return nil
}

// PrintEnergyPerOp renders the Section III-D estimates.
func PrintEnergyPerOp(w io.Writer) error {
	r, err := EnergyPerOp()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Section III-D: execution unit energy via lane differencing")
	fmt.Fprintf(w, "INT: measured %.1f pJ/op (model anchor %.0f pJ; paper ~40 pJ)\n", r.IntOpPJ, r.NominalIntPJ)
	fmt.Fprintf(w, "FP:  measured %.1f pJ/op (model anchor %.0f pJ; paper ~75 pJ, NVIDIA reports 50 pJ)\n", r.FPOpPJ, r.NominalFPPJ)
	return nil
}

// PrintStaticExtrap renders the Section IV-B methodology check.
func PrintStaticExtrap(w io.Writer) error {
	r, err := StaticExtrapolation()
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Section IV-B: static power by frequency extrapolation (GT240)")
	fmt.Fprintf(w, "estimated %.2f W vs. true card leakage %.2f W (error %.1f%%)\n",
		r.EstimatedStaticW, r.TrueStaticW, r.ErrPct)
	return nil
}

// PrintDVFS renders the DVFS energy curve; a scale filter restricts the
// measured operating points. The reduction is runDVFS — the same code the
// equivalence tests pin — so the printed numbers cannot drift from the
// DVFS() API.
func PrintDVFS(w io.Writer, f sweep.Filter) error {
	r, err := runDVFS(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "DVFS sweep: compute-bound kernel on the virtual GT240")
	fmt.Fprintf(w, "%8s %10s %12s %11s\n", "Clock", "Power W", "Kernel s", "Energy mJ")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%7.0f%% %10.2f %12.3g %11.4f\n", p.ClockScale*100, p.PowerW, p.KernelSeconds, p.EnergyMJ)
	}
	fmt.Fprintf(w, "energy-optimal clock: %.0f%% (leakage-dominated cards race to idle)\n", r.MinEnergyScale*100)
	return nil
}

// PrintL1Sched renders the L1-size x scheduler grid, optionally filtered
// on either axis.
func PrintL1Sched(w io.Writer, f sweep.Filter) error {
	rows, err := L1Sched(f)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Extension: L1 size x warp scheduler policy, reuse-heavy workload (GTX580)")
	fmt.Fprintf(w, "%-6s %-9s %10s %8s %9s %9s %9s %10s\n",
		"L1", "Sched", "Cycles", "L1 hit", "Total W", "Dyn W", "Stat W", "Energy mJ")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-9s %10d %7.1f%% %9.2f %9.2f %9.2f %10.3f\n",
			r.L1, r.Sched, r.Cycles, 100*r.L1HitRate, r.TotalW, r.DynamicW, r.StaticW, r.EnergyMJ)
	}
	return nil
}

// printAblation renders one design-choice study, optionally filtered on its
// variant axis. Rows come from runAblation — the reduction the equivalence
// tests pin.
func printAblation(w io.Writer, title string, spec *sweep.Spec, f sweep.Filter) error {
	rows, err := runAblation(spec, f)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, "Ablation:", title)
	fmt.Fprintf(w, "  %-28s %10s %9s %9s %9s %10s\n", "Variant", "Cycles", "Total W", "Dyn W", "Stat W", "Energy mJ")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-28s %10d %9.2f %9.2f %9.2f %10.3f\n",
			r.Variant, r.Cycles, r.TotalW, r.DynamicW, r.StaticW, r.EnergyMJ)
	}
	return nil
}
