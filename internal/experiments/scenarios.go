package experiments

import (
	"fmt"
	"sort"
	"strings"

	"gpusimpow/internal/sweep"
)

// This file registers every experiment as a named scenario in the sweep
// registry and carries the scenarios' reducers: pure functions folding a
// run's flat cell records (or, for table-style artifacts, a fresh
// computation) into typed sweep.Reports. Rendering is nowhere here — every
// scenario's text output comes from the one generic sweep.RenderText, and
// the golden tests (testdata/*.golden) pin it byte-identical to the
// pre-split fmt.Fprintf printers. Because reducers consume wire records,
// the service serves the same reports over GET /v1/jobs/{id}/report that
// the CLI renders in-process.

func init() {
	sweep.Register(sweep.Scenario{
		Name: "table2", Title: "Table II: key features of the evaluated GPU architectures",
		Reduce: reduceTable2,
	})
	sweep.Register(sweep.Scenario{
		Name: "table4", Title: "Table IV: static power and area (simulated vs. measured/datasheet)",
		Reduce: reduceTable4,
	})
	sweep.Register(sweep.Scenario{
		Name: "table5", Title: "Table V: blackscholes power breakdown on GT240",
		Reduce: reduceTable5,
	})
	sweep.Register(sweep.Scenario{
		Name: "fig4", Title: "Figure 4: GT240 power vs. thread block count (cluster staircase)",
		Reduce: reduceFig4,
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6", Title: "Figure 6: simulated vs. measured power over the benchmark suite",
		Spec:        Fig6Spec,
		Reduce:      reduceFig6,
		CheckFilter: fig6CheckFilter,
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6a", Title: "Figure 6a: simulated vs. measured power, GT240",
		Reduce: func(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
			return fig6SubReport("fig6a", "GT240")
		},
	})
	sweep.Register(sweep.Scenario{
		Name: "fig6b", Title: "Figure 6b: simulated vs. measured power, GTX580",
		Reduce: func(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
			return fig6SubReport("fig6b", "GTX580")
		},
	})
	sweep.Register(sweep.Scenario{
		Name: "energyperop", Title: "Section III-D: execution unit energy via lane differencing",
		Spec:        EnergyPerOpSpec,
		Reduce:      reduceEnergyPerOp,
		CheckFilter: energyPerOpCheckFilter,
	})
	sweep.Register(sweep.Scenario{
		Name: "staticextrap", Title: "Section IV-B: static power by frequency extrapolation (GT240)",
		Reduce: reduceStaticExtrap,
	})
	sweep.Register(sweep.Scenario{
		Name: "dvfs", Title: "DVFS sweep: compute-bound kernel on the virtual GT240",
		Spec:   DVFSSpec,
		Reduce: reduceDVFS,
	})

	ablations := []struct {
		title string
		spec  func() *sweep.Spec
	}{
		{"scoreboard vs. blocking issue", AblationScoreboardSpec},
		{"L2 cache", AblationL2Spec},
		{"process node sweep", AblationProcessNodeSpec},
		{"core count scaling", AblationCoreCountSpec},
		{"warp scheduler policy", AblationSchedulerSpec},
	}
	for _, a := range ablations {
		a := a
		sp := a.spec()
		sweep.Register(sweep.Scenario{
			Name: sp.Name, Title: sp.Title,
			Spec: a.spec,
			Reduce: func(recs []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
				return reduceAblation(sp.Name, a.title, recs)
			},
		})
	}
	sweep.Register(sweep.Scenario{
		Name: "l1sched", Title: "Extension: L1 size x scheduler policy on a reuse-heavy workload (GTX580)",
		Spec:   L1SchedSpec,
		Reduce: reduceL1Sched,
	})
	sweep.Register(sweep.Scenario{
		Name: "ablation", Title: "All five design-choice ablation studies",
		Reduce: func(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
			rep := &sweep.Report{Scenario: "ablation"}
			for _, a := range ablations {
				sub, err := sweep.BuildReport(a.spec().Name, nil)
				if err != nil {
					return nil, err
				}
				rep.Sections = append(rep.Sections, sub.Sections...)
			}
			return rep, nil
		},
	})
}

// reduceTable2 builds Table II (pure configuration data; no records).
func reduceTable2(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	sec := sweep.Section{
		Title: "Table II: key features of the evaluated GPU architectures",
		Columns: []sweep.Column{
			{Label: "Feature", Format: "%-20s"},
			{Label: "GT240", Format: "%12s"},
			{Label: "GTX580", Format: "%12s"},
		},
		Header: true,
	}
	for _, r := range Table2() {
		sec.Rows = append(sec.Rows, []sweep.Datum{sweep.Str(r.Feature), sweep.Str(r.GT240), sweep.Str(r.GTX580)})
	}
	return &sweep.Report{Scenario: "table2", Sections: []sweep.Section{sec}}, nil
}

// reduceTable4 builds Table IV.
func reduceTable4(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	rows, err := Table4()
	if err != nil {
		return nil, err
	}
	sec := sweep.Section{
		Title: "Table IV: static power and area (simulated vs. measured/datasheet)",
		Columns: []sweep.Column{
			{Label: "GPU", Format: "%-8s"},
			{Label: "", Format: "%-10s"},
			{Label: "Static [W]", Unit: "W", Format: "%12.1f", Head: "%12s"},
			{Label: "Area [mm2]", Unit: "mm2", Format: "%12.1f", Head: "%12s"},
		},
		Header: true,
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows,
			[]sweep.Datum{sweep.Str(r.GPU), sweep.Str("Simulated"), sweep.Num(r.SimStaticW), sweep.Num(r.SimAreaMM2)},
			[]sweep.Datum{sweep.Str(""), sweep.Str("Real"), sweep.Num(r.RealStaticW), sweep.Num(r.RealAreaMM2)},
		)
	}
	return &sweep.Report{Scenario: "table4", Sections: []sweep.Section{sec}}, nil
}

// reduceTable5 builds Table V: the blackscholes power profile in the
// paper's hierarchical shape (chip level, then one core, then DRAM).
// The layout deliberately matches core.KernelReport.WriteProfile — the
// per-kernel profile cmd/gpusimpow prints — column for column; the two
// cannot share code (core cannot import sweep), so each pins its shape in
// tests: table5.golden here, TestWriteProfileFormat in internal/core.
// Change one and the other must follow.
func reduceTable5(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	rep, err := Table5()
	if err != nil {
		return nil, err
	}
	p := rep.Power
	gpuSec := sweep.Section{
		Columns: []sweep.Column{
			{Label: "GPU", Format: "%-22s"},
			{Label: "Static [W]", Unit: "W", Format: "%10.3f", Head: "%10s"},
			{Label: "Dynamic [W]", Unit: "W", Format: "%11.3f", Head: "%11s"},
			{Label: "Percent", Unit: "%", Format: "%7.1f%%", Head: "%8s"},
		},
		Header: true,
		Rows: [][]sweep.Datum{
			{sweep.Str("Overall"), sweep.Num(p.StaticW), sweep.Num(p.DynamicW), sweep.Num(100.0)},
		},
	}
	for _, it := range p.GPU {
		gpuSec.Rows = append(gpuSec.Rows, []sweep.Datum{
			sweep.Str(it.Name), sweep.Num(it.StaticW), sweep.Num(it.DynamicW), sweep.Num(100 * it.Total() / p.TotalW),
		})
	}
	var coreTotal float64
	for _, it := range p.Core {
		coreTotal += it.Total()
	}
	coreSec := sweep.Section{
		Columns: []sweep.Column{
			{Label: "Core", Format: "%-22s"},
			{Label: "Static [W]", Unit: "W", Format: "%10.4f", Head: "%10s"},
			{Label: "Dynamic [W]", Unit: "W", Format: "%11.4f", Head: "%11s"},
			{Label: "Percent", Unit: "%", Format: "%7.1f%%", Head: "%8s"},
		},
		Header: true,
	}
	for _, it := range p.Core {
		coreSec.Rows = append(coreSec.Rows, []sweep.Datum{
			sweep.Str(it.Name), sweep.Num(it.StaticW), sweep.Num(it.DynamicW), sweep.Num(100 * it.Total() / coreTotal),
		})
	}
	return &sweep.Report{Scenario: "table5", Sections: []sweep.Section{
		{
			Title: "Table V: blackscholes power breakdown on GT240",
			Notes: []sweep.Note{sweep.Notef("Power profile: %s on %s (runtime %.3g s)",
				sweep.Str(rep.Kernel), sweep.Str(p.GPUName), sweep.Num(p.Seconds))},
		},
		gpuSec,
		coreSec,
		{
			Notes: []sweep.Note{sweep.Notef(
				"External DRAM: %.3f W (background %.2f, activate %.2f, r/w %.2f, term %.2f, refresh %.2f)",
				sweep.Num(p.DRAMW), sweep.Num(p.DRAM.Background), sweep.Num(p.DRAM.Activate),
				sweep.Num(p.DRAM.ReadWrite), sweep.Num(p.DRAM.Termination), sweep.Num(p.DRAM.Refresh))},
		},
	}}, nil
}

// reduceFig4 builds the Figure 4 staircase.
func reduceFig4(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	r, err := Fig4()
	if err != nil {
		return nil, err
	}
	bars := sweep.Section{
		Columns: []sweep.Column{
			{Label: "blocks", Format: "%2d block(s):"},
			{Label: "power", Unit: "W", Format: "%6.2f W "},
			{Label: "bar", Format: "|%s"},
		},
	}
	maxP := r.PowerPerBlocks[len(r.PowerPerBlocks)-1]
	for i, p := range r.PowerPerBlocks {
		bar := strings.Repeat("#", int(40*(p-r.IdleW)/(maxP-r.IdleW)))
		bars.Rows = append(bars.Rows, []sweep.Datum{sweep.Uint(uint64(i + 1)), sweep.Num(p), sweep.Str(bar)})
	}
	bars.Notes = []sweep.Note{
		sweep.Notef("first block delta: %.2f W (global scheduler + cluster + core)", sweep.Num(r.FirstBlockDeltaW)),
		sweep.Notef("cluster step (blocks 2-4):  %.3f W", sweep.Num(r.ClusterStepW)),
		sweep.Notef("core step (blocks 5-12):    %.3f W", sweep.Num(r.CoreStepW)),
		sweep.Notef("cluster activation premium: %.3f W (paper: 0.692 W)", sweep.Num(r.ClusterStepW-r.CoreStepW)),
	}
	return &sweep.Report{Scenario: "fig4", Sections: []sweep.Section{
		{
			Title: "Figure 4: GT240 power vs. thread block count (cluster staircase)",
			Notes: []sweep.Note{sweep.Notef("idle (pre/post kernel): %.2f W", sweep.Num(r.IdleW))},
		},
		bars,
	}}, nil
}

// fig6CheckFilter restricts Figure 6 filtering to whole sub-figures:
// non-gpu axes (e.g. bench=...) would silently bias the error aggregates.
// Axes are checked in sorted order so the reported offender is stable
// across runs (map order would pick one at random).
func fig6CheckFilter(f sweep.Filter) error {
	axes := make([]string, 0, len(f))
	for axis := range f {
		axes = append(axes, axis)
	}
	sort.Strings(axes)
	for _, axis := range axes {
		if axis != "gpu" {
			return fmt.Errorf("experiments: fig6 filters on gpu only (got %s=...)", axis)
		}
	}
	return nil
}

// reduceFig6 folds the validation grid's records into one sub-figure per
// admitted GPU (both when unfiltered), in GPU order.
func reduceFig6(recs []*sweep.CellRecord, f sweep.Filter) (*sweep.Report, error) {
	if err := fig6CheckFilter(f); err != nil {
		return nil, err
	}
	gpus := f["gpu"]
	if len(gpus) == 0 {
		gpus = []string{"GT240", "GTX580"}
	}
	byGPU := map[string][]*sweep.CellRecord{}
	for _, rec := range recs {
		var gpu string
		for _, co := range rec.Coords {
			if co.Axis == "gpu" {
				gpu = co.Value
			}
		}
		byGPU[gpu] = append(byGPU[gpu], rec)
	}
	rep := &sweep.Report{Scenario: "fig6"}
	for i, gpu := range gpus {
		r, err := fig6Reduce(gpu, byGPU[gpu])
		if err != nil {
			return nil, err
		}
		rep.Sections = append(rep.Sections, fig6Section(r, i > 0))
	}
	return rep, nil
}

// fig6SubReport builds one sub-figure (fig6a/fig6b) by running the fig6
// sweep restricted to its GPU.
func fig6SubReport(name, gpu string) (*sweep.Report, error) {
	rep, err := sweep.BuildReport("fig6", sweep.Filter{"gpu": {gpu}})
	if err != nil {
		return nil, err
	}
	rep.Scenario = name
	return rep, nil
}

// fig6Section lays out one sub-figure's bars and error aggregates.
func fig6Section(r *Fig6Result, gap bool) sweep.Section {
	sub := "6a"
	if r.GPU == "GTX580" {
		sub = "6b"
	}
	sec := sweep.Section{
		Gap:   gap,
		Title: fmt.Sprintf("Figure %s: simulated vs. measured power, %s", sub, r.GPU),
		Columns: []sweep.Column{
			{Label: "Kernel", Format: "%-14s"},
			{Label: "SimStat", Unit: "W", Format: "%10.2f", Head: "%10s"},
			{Label: "SimDyn", Unit: "W", Format: "%10.2f", Head: "%10s"},
			{Label: "MeasStat", Unit: "W", Format: "%10.2f", Head: "%10s"},
			{Label: "MeasDyn", Unit: "W", Format: "%10.2f", Head: "%10s"},
			{Label: "Err%", Unit: "%", Format: "%7.1f", Head: "%7s"},
			{Label: "", Format: "%s"},
		},
		Header: true,
	}
	for _, b := range r.Bars {
		note := ""
		if b.ShortWindow {
			note = "(short measurement window)"
		}
		sec.Rows = append(sec.Rows, []sweep.Datum{
			sweep.Str(b.Kernel), sweep.Num(b.SimStaticW), sweep.Num(b.SimDynamicW),
			sweep.Num(b.MeasStaticW), sweep.Num(b.MeasDynamicW), sweep.Num(b.RelErrPct), sweep.Str(note),
		})
	}
	sec.Notes = []sweep.Note{
		sweep.Notef("average relative error: %.1f%% (paper: %s)", sweep.Num(r.AvgRelErrPct),
			sweep.Str(map[string]string{"GT240": "11.7%", "GTX580": "10.8%"}[r.GPU])),
		sweep.Notef("dynamic-only average relative error: %.1f%% (paper: %s)", sweep.Num(r.DynAvgRelErrPct),
			sweep.Str(map[string]string{"GT240": "28.3%", "GTX580": "20.9%"}[r.GPU])),
		sweep.Notef("max relative error: %.1f%% on %s", sweep.Num(r.MaxRelErrPct), sweep.Str(r.MaxErrKernel)),
		sweep.Notef("kernels overestimated: %.0f%%", sweep.Num(100*r.OverestimatedFraction)),
	}
	return sec
}

// energyPerOpCheckFilter rejects any filter: the 31-vs-1 lane pairing
// needs the full grid.
func energyPerOpCheckFilter(f sweep.Filter) error {
	if len(f) > 0 {
		return fmt.Errorf("experiments: energyperop needs its full grid (31-vs-1 lane differencing); run it unfiltered")
	}
	return nil
}

// reduceEnergyPerOp builds the Section III-D estimates from the grid's
// records.
func reduceEnergyPerOp(recs []*sweep.CellRecord, f sweep.Filter) (*sweep.Report, error) {
	if err := energyPerOpCheckFilter(f); err != nil {
		return nil, err
	}
	r, err := energyPerOpReduce(recs)
	if err != nil {
		return nil, err
	}
	return &sweep.Report{Scenario: "energyperop", Sections: []sweep.Section{{
		Title: "Section III-D: execution unit energy via lane differencing",
		Notes: []sweep.Note{
			sweep.Notef("INT: measured %.1f pJ/op (model anchor %.0f pJ; paper ~40 pJ)",
				sweep.Num(r.IntOpPJ), sweep.Num(r.NominalIntPJ)),
			sweep.Notef("FP:  measured %.1f pJ/op (model anchor %.0f pJ; paper ~75 pJ, NVIDIA reports 50 pJ)",
				sweep.Num(r.FPOpPJ), sweep.Num(r.NominalFPPJ)),
		},
	}}}, nil
}

// reduceStaticExtrap builds the Section IV-B methodology check.
func reduceStaticExtrap(_ []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	r, err := StaticExtrapolation()
	if err != nil {
		return nil, err
	}
	return &sweep.Report{Scenario: "staticextrap", Sections: []sweep.Section{{
		Title: "Section IV-B: static power by frequency extrapolation (GT240)",
		Notes: []sweep.Note{sweep.Notef("estimated %.2f W vs. true card leakage %.2f W (error %.1f%%)",
			sweep.Num(r.EstimatedStaticW), sweep.Num(r.TrueStaticW), sweep.Num(r.ErrPct))},
	}}}, nil
}

// reduceDVFS builds the DVFS energy curve from the sweep's records; a
// scale filter restricts the measured operating points.
func reduceDVFS(recs []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	r, err := dvfsReduce(recs)
	if err != nil {
		return nil, err
	}
	sec := sweep.Section{
		Title: "DVFS sweep: compute-bound kernel on the virtual GT240",
		Columns: []sweep.Column{
			{Label: "Clock", Unit: "%", Format: "%7.0f%%", Head: "%8s"},
			{Label: "Power W", Unit: "W", Format: "%10.2f", Head: "%10s"},
			{Label: "Kernel s", Unit: "s", Format: "%12.3g", Head: "%12s"},
			{Label: "Energy mJ", Unit: "mJ", Format: "%11.4f", Head: "%11s"},
		},
		Header: true,
	}
	for _, p := range r.Points {
		sec.Rows = append(sec.Rows, []sweep.Datum{
			sweep.Num(p.ClockScale * 100), sweep.Num(p.PowerW), sweep.Num(p.KernelSeconds), sweep.Num(p.EnergyMJ),
		})
	}
	sec.Notes = []sweep.Note{sweep.Notef("energy-optimal clock: %.0f%% (leakage-dominated cards race to idle)",
		sweep.Num(r.MinEnergyScale*100))}
	return &sweep.Report{Scenario: "dvfs", Sections: []sweep.Section{sec}}, nil
}

// reduceL1Sched builds the L1-size x scheduler grid, optionally filtered
// on either axis.
func reduceL1Sched(recs []*sweep.CellRecord, _ sweep.Filter) (*sweep.Report, error) {
	rows, err := l1SchedReduce(recs)
	if err != nil {
		return nil, err
	}
	sec := sweep.Section{
		Title: "Extension: L1 size x warp scheduler policy, reuse-heavy workload (GTX580)",
		Columns: []sweep.Column{
			{Label: "L1", Format: "%-6s"},
			{Label: "Sched", Format: "%-9s"},
			{Label: "Cycles", Unit: "cycles", Format: "%10d", Head: "%10s"},
			{Label: "L1 hit", Unit: "%", Format: "%7.1f%%", Head: "%8s"},
			{Label: "Total W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Dyn W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Stat W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Energy mJ", Unit: "mJ", Format: "%10.3f", Head: "%10s"},
		},
		Header: true,
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, []sweep.Datum{
			sweep.Str(r.L1), sweep.Str(r.Sched), sweep.Uint(r.Cycles), sweep.Num(100 * r.L1HitRate),
			sweep.Num(r.TotalW), sweep.Num(r.DynamicW), sweep.Num(r.StaticW), sweep.Num(r.EnergyMJ),
		})
	}
	return &sweep.Report{Scenario: "l1sched", Sections: []sweep.Section{sec}}, nil
}

// reduceAblation builds one design-choice study's table from its records.
func reduceAblation(name, title string, recs []*sweep.CellRecord) (*sweep.Report, error) {
	rows, err := ablationReduce(recs)
	if err != nil {
		return nil, err
	}
	sec := sweep.Section{
		Title:  "Ablation: " + title,
		Indent: "  ",
		Columns: []sweep.Column{
			{Label: "Variant", Format: "%-28s"},
			{Label: "Cycles", Unit: "cycles", Format: "%10d", Head: "%10s"},
			{Label: "Total W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Dyn W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Stat W", Unit: "W", Format: "%9.2f", Head: "%9s"},
			{Label: "Energy mJ", Unit: "mJ", Format: "%10.3f", Head: "%10s"},
		},
		Header: true,
	}
	for _, r := range rows {
		sec.Rows = append(sec.Rows, []sweep.Datum{
			sweep.Str(r.Variant), sweep.Uint(r.Cycles),
			sweep.Num(r.TotalW), sweep.Num(r.DynamicW), sweep.Num(r.StaticW), sweep.Num(r.EnergyMJ),
		})
	}
	return &sweep.Report{Scenario: name, Sections: []sweep.Section{sec}}, nil
}
