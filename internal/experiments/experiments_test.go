package experiments

import (
	"math"
	"testing"
)

func TestTable2(t *testing.T) {
	rows := Table2()
	if len(rows) != 9 {
		t.Fatalf("Table II has %d rows, want 9", len(rows))
	}
	want := map[string][2]string{
		"#Cores":            {"12", "16"},
		"#Threads per core": {"768", "1536"},
		"#FUs per core":     {"8", "32"},
		"Scoreboard":        {"no", "yes"},
		"L2-$ size":         {"no", "768KByte"},
		"Process node":      {"40nm", "40nm"},
	}
	for _, r := range rows {
		if w, ok := want[r.Feature]; ok {
			if r.GT240 != w[0] || r.GTX580 != w[1] {
				t.Errorf("%s: got %s/%s, want %s/%s", r.Feature, r.GT240, r.GTX580, w[0], w[1])
			}
		}
	}
}

func TestTable4(t *testing.T) {
	rows, err := Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("want 2 rows, got %d", len(rows))
	}
	// Paper Table IV: GT240 17.9/17.6 W and 105/133 mm^2;
	// GTX580 81.5/80 W and 306/520 mm^2. Check the reproduction bands.
	gt := rows[0]
	if gt.GPU != "GT240" {
		t.Fatalf("row order: %s", gt.GPU)
	}
	if math.Abs(gt.SimStaticW-17.9) > 1.0 {
		t.Errorf("GT240 sim static %.2f, want ~17.9", gt.SimStaticW)
	}
	if math.Abs(gt.RealStaticW-17.6) > 1.5 {
		t.Errorf("GT240 real static %.2f, want ~17.6", gt.RealStaticW)
	}
	if gt.SimAreaMM2 >= gt.RealAreaMM2 {
		t.Error("modeled area should undershoot the die (undifferentiated logic)")
	}
	gx := rows[1]
	if math.Abs(gx.SimStaticW-81.5) > 4 {
		t.Errorf("GTX580 sim static %.2f, want ~81.5", gx.SimStaticW)
	}
	if math.Abs(gx.RealStaticW-80) > 8 {
		t.Errorf("GTX580 real static %.2f, want ~80", gx.RealStaticW)
	}
	if gx.SimAreaMM2 >= gx.RealAreaMM2 {
		t.Error("GTX580 modeled area should undershoot the 520 mm^2 die")
	}
}

func TestTable5Shape(t *testing.T) {
	rep, err := Table5()
	if err != nil {
		t.Fatal(err)
	}
	p := rep.Power
	// Paper Table V shapes: cores ~82 % of GPU power; execution units are
	// the largest differentiated core consumer; register file second;
	// undifferentiated core the largest core static item.
	var cores, noc, mc, pcie float64
	for _, it := range p.GPU {
		switch it.Name {
		case "Cores":
			cores = it.Total()
		case "NoC":
			noc = it.Total()
		case "Memory Controller":
			mc = it.Total()
		case "PCIe Controller":
			pcie = it.Total()
		}
	}
	total := p.TotalW
	if f := cores / total; f < 0.70 || f > 0.95 {
		t.Errorf("cores fraction %.2f outside [0.70, 0.95] (paper: 0.82)", f)
	}
	if noc <= 0 || mc <= 0 || pcie <= 0 {
		t.Error("uncore components must be non-zero")
	}
	var exe, rf, wcu, undiff, ldst float64
	for _, it := range p.Core {
		switch it.Name {
		case "Execution Units":
			exe = it.DynamicW
		case "Register File":
			rf = it.DynamicW
		case "WCU":
			wcu = it.DynamicW
		case "Undiff. Core":
			undiff = it.StaticW
		case "LDSTU":
			ldst = it.Total()
		}
	}
	if !(exe > rf && rf > wcu) {
		t.Errorf("core dynamic ordering EXE(%.3f) > RF(%.3f) > WCU(%.3f) violated", exe, rf, wcu)
	}
	if undiff <= 0 || ldst <= 0 {
		t.Error("undiff/LDSTU must contribute")
	}
	// DRAM reported separately (paper: 4.3 W excluded from the table).
	if p.DRAMW <= 0 {
		t.Error("DRAM power missing")
	}
	// Static close to Table IV's 17.9 W.
	if math.Abs(p.StaticW-17.9) > 1 {
		t.Errorf("static %.2f, want ~17.9", p.StaticW)
	}
}

func TestFig4Staircase(t *testing.T) {
	r, err := Fig4()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.PowerPerBlocks) != 12 {
		t.Fatalf("want 12 block counts, got %d", len(r.PowerPerBlocks))
	}
	// Power must increase monotonically with block count.
	for i := 1; i < len(r.PowerPerBlocks); i++ {
		if r.PowerPerBlocks[i] <= r.PowerPerBlocks[i-1] {
			t.Errorf("power not increasing at %d blocks: %.2f <= %.2f",
				i+1, r.PowerPerBlocks[i], r.PowerPerBlocks[i-1])
		}
	}
	// The paper's staircase: the first block costs the most (global
	// scheduler ~3.34 W + cluster + core), cluster steps (blocks 2..4)
	// exceed core-only steps (blocks 5..12).
	if r.FirstBlockDeltaW <= r.ClusterStepW {
		t.Errorf("first block delta %.2f should exceed cluster step %.2f", r.FirstBlockDeltaW, r.ClusterStepW)
	}
	if r.ClusterStepW <= r.CoreStepW {
		t.Errorf("cluster step %.2f should exceed core step %.2f", r.ClusterStepW, r.CoreStepW)
	}
	if r.ClusterStepW-r.CoreStepW < 0.3 {
		t.Errorf("cluster activation premium %.2f W too small (paper: 0.692 W)", r.ClusterStepW-r.CoreStepW)
	}
	if len(r.Trace.Samples) == 0 {
		t.Error("waveform missing")
	}
}

func TestEnergyPerOp(t *testing.T) {
	r, err := EnergyPerOp()
	if err != nil {
		t.Fatal(err)
	}
	// The estimates must land near the configured anchors (the card's true
	// silicon deviates by up to ~12 % plus measurement error) and preserve
	// the paper's headline relation FP > INT with INT ~40 pJ, FP ~75 pJ.
	if math.Abs(r.IntOpPJ-r.NominalIntPJ)/r.NominalIntPJ > 0.30 {
		t.Errorf("INT estimate %.1f pJ too far from %.1f pJ", r.IntOpPJ, r.NominalIntPJ)
	}
	if math.Abs(r.FPOpPJ-r.NominalFPPJ)/r.NominalFPPJ > 0.30 {
		t.Errorf("FP estimate %.1f pJ too far from %.1f pJ", r.FPOpPJ, r.NominalFPPJ)
	}
	if r.FPOpPJ <= r.IntOpPJ {
		t.Errorf("FP ops (%.1f pJ) must cost more than INT ops (%.1f pJ)", r.FPOpPJ, r.IntOpPJ)
	}
}

func TestStaticExtrapolation(t *testing.T) {
	r, err := StaticExtrapolation()
	if err != nil {
		t.Fatal(err)
	}
	if r.ErrPct > 6 {
		t.Errorf("extrapolation error %.1f%% too large", r.ErrPct)
	}
	if r.EstimatedStaticW <= 0 || r.TrueStaticW <= 0 {
		t.Error("degenerate result")
	}
}

func TestFig6GT240(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep in -short mode")
	}
	r, err := Fig6("GT240")
	if err != nil {
		t.Fatal(err)
	}
	checkFig6(t, r, 19)
}

func TestFig6GTX580(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep in -short mode")
	}
	r, err := Fig6("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	checkFig6(t, r, 19)
}

func checkFig6(t *testing.T, r *Fig6Result, wantBars int) {
	t.Helper()
	if len(r.Bars) != wantBars {
		t.Fatalf("%s: %d bars, want %d", r.GPU, len(r.Bars), wantBars)
	}
	// Paper: 11.7 % (GT240) / 10.8 % (GTX580) average relative error. The
	// virtual silicon differs from the real cards, so accept the band the
	// methodology should land in.
	if r.AvgRelErrPct < 2 || r.AvgRelErrPct > 22 {
		t.Errorf("%s: average relative error %.1f%% outside the expected [2, 22]%% band", r.GPU, r.AvgRelErrPct)
	}
	// The simulator should overestimate for most kernels.
	if r.OverestimatedFraction < 0.6 {
		t.Errorf("%s: only %.0f%% of kernels overestimated; paper reports nearly all",
			r.GPU, 100*r.OverestimatedFraction)
	}
	// Dynamic-only error is larger than total error (static dilutes it).
	if r.DynAvgRelErrPct <= r.AvgRelErrPct {
		t.Errorf("%s: dynamic error %.1f%% should exceed total error %.1f%%",
			r.GPU, r.DynAvgRelErrPct, r.AvgRelErrPct)
	}
	for _, b := range r.Bars {
		if b.SimTotalW() <= 0 || b.MeasTotalW() <= 0 {
			t.Errorf("%s/%s: non-positive power", r.GPU, b.Kernel)
		}
		if b.SimStaticW <= 0 || b.MeasStaticW <= 0 {
			t.Errorf("%s/%s: missing static split", r.GPU, b.Kernel)
		}
	}
	if r.GPU == "GT240" {
		// The paper's outlier: the short in-place mergeSort3 measurement.
		var ms3 *Fig6Bar
		for i := range r.Bars {
			if r.Bars[i].Kernel == "mergeSort3" {
				ms3 = &r.Bars[i]
			}
		}
		if ms3 == nil {
			t.Fatal("mergeSort3 bar missing")
		}
		if !ms3.ShortWindow {
			t.Error("mergeSort3 should be flagged as a short-window measurement")
		}
		if ms3.RelErrPct < r.AvgRelErrPct {
			t.Error("mergeSort3 should show an above-average error (measurement artifact)")
		}
	}
}

func TestAblations(t *testing.T) {
	sb, err := AblationScoreboard()
	if err != nil {
		t.Fatal(err)
	}
	if sb[1].Cycles >= sb[0].Cycles {
		t.Error("scoreboard should cut cycles")
	}
	if sb[1].EnergyMJ >= sb[0].EnergyMJ {
		t.Error("finishing faster at similar power should cut energy")
	}

	l2, err := AblationL2()
	if err != nil {
		t.Fatal(err)
	}
	if l2[1].Cycles <= l2[0].Cycles {
		t.Error("removing the L2 should cost cycles on a memory-bound kernel")
	}

	nodes, err := AblationProcessNode()
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 5 {
		t.Fatalf("want 5 node variants, got %d", len(nodes))
	}
	// Smaller nodes leak relatively more per area but the calibrated undiff
	// dominates; at least dynamic energy per op must shrink with the node.
	first, last := nodes[0], nodes[len(nodes)-1]
	if last.DynamicW >= first.DynamicW {
		t.Errorf("28 nm dynamic %.2f should undercut 65 nm dynamic %.2f", last.DynamicW, first.DynamicW)
	}

	cores, err := AblationCoreCount()
	if err != nil {
		t.Fatal(err)
	}
	if cores[len(cores)-1].Cycles >= cores[0].Cycles {
		t.Error("more cores should finish the fixed-size-per-core workload... faster overall")
	}
}

func TestAblationScheduler(t *testing.T) {
	rows, err := AblationScheduler()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("want 3 policies, got %d", len(rows))
	}
	for _, r := range rows {
		if r.Cycles == 0 || r.TotalW <= 0 {
			t.Errorf("%s: degenerate result", r.Variant)
		}
	}
	// The policies must not all behave identically.
	if rows[0].Cycles == rows[1].Cycles && rows[0].Cycles == rows[2].Cycles &&
		rows[0].DynamicW == rows[1].DynamicW && rows[0].DynamicW == rows[2].DynamicW {
		t.Error("scheduler policies indistinguishable in both timing and power")
	}
}

func TestDVFS(t *testing.T) {
	r, err := DVFS()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Points) != 6 {
		t.Fatalf("want 6 operating points, got %d", len(r.Points))
	}
	for i := 1; i < len(r.Points); i++ {
		// Higher clock: more power, less time.
		if r.Points[i].PowerW <= r.Points[i-1].PowerW {
			t.Errorf("power not increasing with clock at scale %.1f", r.Points[i].ClockScale)
		}
		if r.Points[i].KernelSeconds >= r.Points[i-1].KernelSeconds {
			t.Errorf("runtime not decreasing with clock at scale %.1f", r.Points[i].ClockScale)
		}
	}
	// With ~18 W of leakage, race-to-idle wins: the energy-optimal point
	// sits at the highest clock.
	if r.MinEnergyScale < 0.9 {
		t.Errorf("min-energy scale %.1f; static-dominated cards should race to idle", r.MinEnergyScale)
	}
}
