package experiments

// This file preserves the pre-sweep-engine implementations of the grid
// experiments — hand-rolled loops over runner.Map, exactly as they shipped
// before internal/sweep existed — as the reference side of the equivalence
// tests in equivalence_test.go. The refactor's contract is that re-routing
// every experiment through the declarative engine changes no reported
// metric bit: same simulations (shared content-addressed cache), same card
// sessions, same measurement order, same aggregation arithmetic.

import (
	"fmt"
	"math"
	"sort"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/runner"
)

// legacyFig6 is the pre-refactor Fig6.
func legacyFig6(gpuName string) (*Fig6Result, error) {
	mk, ok := config.Presets()[gpuName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown GPU %q", gpuName)
	}
	simr, err := core.New(mk())
	if err != nil {
		return nil, err
	}
	card, err := hw.NewCard(mk())
	if err != nil {
		return nil, err
	}

	measStatic, err := measuredStaticFor(card)
	if err != nil {
		return nil, err
	}
	simStatic := simr.Static().StaticW

	suite := bench.Suite()
	perBench, err := runner.Map(len(suite), func(i int) ([]fig6Agg, error) {
		return legacyFig6Benchmark(mk, suite[i])
	})
	if err != nil {
		return nil, err
	}

	perKernel := map[string]*fig6Agg{}
	var order []string
	for _, aggs := range perBench {
		for _, ka := range aggs {
			a := perKernel[ka.name]
			if a == nil {
				a = &fig6Agg{name: ka.name}
				perKernel[ka.name] = a
				order = append(order, ka.name)
			}
			a.simTotal += ka.simTotal
			a.measTotal += ka.measTotal
			a.n += ka.n
			a.short = a.short || ka.short
		}
	}

	res := &Fig6Result{GPU: gpuName}
	sort.Strings(order)
	var sumErr, sumDynErr float64
	over := 0
	for _, name := range order {
		a := perKernel[name]
		simTotal := a.simTotal / float64(a.n)
		measTotal := a.measTotal / float64(a.n)
		bar := Fig6Bar{
			Kernel:       name,
			SimStaticW:   simStatic,
			SimDynamicW:  simTotal - simStatic,
			MeasStaticW:  measStatic,
			MeasDynamicW: measTotal - measStatic,
			ShortWindow:  a.short,
			Executions:   a.n,
		}
		bar.RelErrPct = 100 * math.Abs(simTotal-measTotal) / measTotal
		res.Bars = append(res.Bars, bar)
		sumErr += bar.RelErrPct
		if bar.RelErrPct > res.MaxRelErrPct {
			res.MaxRelErrPct = bar.RelErrPct
			res.MaxErrKernel = name
		}
		if bar.MeasDynamicW > 0 {
			sumDynErr += 100 * math.Abs(bar.SimDynamicW-bar.MeasDynamicW) / bar.MeasDynamicW
		}
		if simTotal > measTotal {
			over++
		}
	}
	n := float64(len(res.Bars))
	res.AvgRelErrPct = sumErr / n
	res.DynAvgRelErrPct = sumDynErr / n
	res.OverestimatedFraction = float64(over) / n
	return res, nil
}

// legacyFig6Benchmark is the pre-refactor per-benchmark job.
func legacyFig6Benchmark(mk func() *config.GPU, f bench.Factory) ([]fig6Agg, error) {
	simr, err := core.New(mk())
	if err != nil {
		return nil, err
	}
	card, err := hw.NewCardSession(mk(), "fig6/"+f.Name)
	if err != nil {
		return nil, err
	}

	perKernel := map[string]*fig6Agg{}
	var order []string

	simInst, err := f.Make()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", f.Name, err)
	}
	for _, r := range simInst.Runs {
		tr, err := simr.Simulate(r.Launch, simInst.Mem, r.CMem)
		if err != nil {
			return nil, fmt.Errorf("experiments: simulating %s/%s: %w", f.Name, r.Name, err)
		}
		rt, err := simr.EvaluatePower(tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: power for %s/%s: %w", f.Name, r.Name, err)
		}
		a := perKernel[r.Name]
		if a == nil {
			a = &fig6Agg{name: r.Name}
			perKernel[r.Name] = a
			order = append(order, r.Name)
		}
		a.simTotal += rt.TotalW + rt.DRAMW
		a.n++
	}
	if err := simInst.Verify(); err != nil {
		return nil, fmt.Errorf("experiments: %s failed verification on the simulator: %w", f.Name, err)
	}

	hwInst, err := f.Make()
	if err != nil {
		return nil, err
	}
	items := make([]hw.SeqItem, len(hwInst.Runs))
	for i, r := range hwInst.Runs {
		items[i] = hw.SeqItem{Launch: r.Launch, Mem: hwInst.Mem, CMem: r.CMem, GapS: 0.01}
		if r.MaxRepeats > 0 {
			items[i].Repeats = r.MaxRepeats
		} else {
			items[i].MinWindowS = measureWindowS
		}
	}
	_, ms, err := card.MeasureSequence(items)
	if err != nil {
		return nil, fmt.Errorf("experiments: measuring %s: %w", f.Name, err)
	}
	for i, m := range ms {
		a := perKernel[hwInst.Runs[i].Name]
		a.measTotal += m.AvgPowerW
		if m.ShortWindow && hwInst.Runs[i].MaxRepeats > 0 {
			a.short = true
		}
	}

	out := make([]fig6Agg, 0, len(order))
	for _, name := range order {
		out = append(out, *perKernel[name])
	}
	return out, nil
}

// legacyDVFS is the pre-refactor DVFS.
func legacyDVFS() (*DVFSResult, error) {
	scales := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	points, err := runner.Map(len(scales), func(i int) (DVFSPoint, error) {
		card, err := hw.NewCardSession(config.GT240(), fmt.Sprintf("dvfs/%.1f", scales[i]))
		if err != nil {
			return DVFSPoint{}, err
		}
		if err := card.SetClockScale(scales[i]); err != nil {
			return DVFSPoint{}, err
		}
		l, mem := legacyMicroFPBusy(card)
		m, err := card.MeasureKernel(l, mem, nil, 0)
		if err != nil {
			return DVFSPoint{}, err
		}
		return DVFSPoint{
			ClockScale:    scales[i],
			PowerW:        m.AvgPowerW,
			KernelSeconds: m.TrueKernelSeconds,
			EnergyMJ:      m.AvgPowerW * m.TrueKernelSeconds * 1e3,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &DVFSResult{Points: points, MinEnergyScale: 1}
	best := 0.0
	for _, pt := range points {
		if best == 0 || pt.EnergyMJ < best {
			best = pt.EnergyMJ
			res.MinEnergyScale = pt.ClockScale
		}
	}
	return res, nil
}

func legacyMicroFPBusy(card *hw.Card) (*kernel.Launch, *kernel.GlobalMem) {
	return busyFPKernel(cardCores(card)*2, 256, 40)
}

// legacyRunVariant is the pre-refactor per-variant job.
func legacyRunVariant(name string, cfg *config.GPU, kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) (AblationRow, error) {
	simr, err := core.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	l, mem := kernelFn(cfg)
	tr, err := simr.Simulate(l, mem, nil)
	if err != nil {
		return AblationRow{}, err
	}
	p, err := simr.EvaluatePower(tr)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{
		Variant:  name,
		Cycles:   tr.Perf.Activity.Cycles,
		TotalW:   p.TotalW,
		DynamicW: p.DynamicW,
		StaticW:  p.StaticW,
		EnergyMJ: p.TotalW * p.Seconds * 1e3,
	}
	row.EDPnJs = row.EnergyMJ * p.Seconds * 1e3
	return row, nil
}

type legacyNamedCfg struct {
	name string
	cfg  *config.GPU
}

func legacyRunVariants(vs []legacyNamedCfg) ([]AblationRow, error) {
	return legacyRunVariantsOn(vs, ablationKernel)
}

func legacyRunVariantsOn(vs []legacyNamedCfg, kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) ([]AblationRow, error) {
	return runner.Map(len(vs), func(i int) (AblationRow, error) {
		row, err := legacyRunVariant(vs[i].name, vs[i].cfg, kernelFn)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: variant %s: %w", vs[i].name, err)
		}
		return row, nil
	})
}

// legacyAblationScoreboard .. legacyAblationScheduler are the pre-refactor
// study definitions.
func legacyAblationScoreboard() ([]AblationRow, error) {
	base := config.GT240()
	sb := config.GT240()
	sb.Name = "GT240+scoreboard"
	sb.HasScoreboard = true
	sb.ScoreboardEntries = 6
	return legacyRunVariants([]legacyNamedCfg{{"blocking issue (GT240)", base}, {"scoreboarded issue", sb}})
}

func legacyAblationL2() ([]AblationRow, error) {
	base := config.GTX580()
	no := config.GTX580()
	no.Name = "GTX580-noL2"
	no.L2KB = 0
	return legacyRunVariantsOn([]legacyNamedCfg{{"768KB L2 (GTX580)", base}, {"no L2", no}}, l2ReuseKernel)
}

func legacyAblationProcessNode() ([]AblationRow, error) {
	var variants []legacyNamedCfg
	for _, nm := range []float64{65, 45, 40, 32, 28} {
		c := config.GT240()
		c.Name = fmt.Sprintf("GT240@%.0fnm", nm)
		c.ProcessNM = nm
		variants = append(variants, legacyNamedCfg{c.Name, c})
	}
	return legacyRunVariants(variants)
}

func legacyAblationCoreCount() ([]AblationRow, error) {
	var variants []legacyNamedCfg
	for _, clusters := range []int{2, 4, 6, 8} {
		c := config.GT240()
		c.Name = fmt.Sprintf("GT240x%dclusters", clusters)
		c.Clusters = clusters
		variants = append(variants, legacyNamedCfg{fmt.Sprintf("%d cores (%d clusters)", c.NumCores(), clusters), c})
	}
	return legacyRunVariants(variants)
}

func legacyAblationScheduler() ([]AblationRow, error) {
	var variants []legacyNamedCfg
	for _, pol := range []string{"rr", "gto", "twolevel"} {
		c := config.GTX580()
		c.Name = "GTX580-" + pol
		c.SchedulerPolicy = pol
		variants = append(variants, legacyNamedCfg{pol + " scheduler", c})
	}
	return legacyRunVariants(variants)
}

// legacyEnergyPerOp is the pre-refactor EnergyPerOp.
func legacyEnergyPerOp() (*EnergyPerOpResult, error) {
	cfg := config.GT240()
	card, err := hw.NewCard(cfg)
	if err != nil {
		return nil, err
	}
	simr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	res := &EnergyPerOpResult{
		NominalIntPJ: cfg.Power.IntOpPJ,
		NominalFPPJ:  cfg.Power.FPOpPJ,
	}

	estimate := func(mk func(lanes int) (*kernel.Launch, *kernel.GlobalMem), isFP bool) (float64, error) {
		counts := [2]float64{}
		energies := [2]float64{}
		for i, lanes := range []int{31, 1} {
			l, mem := mk(lanes)
			tr, err := simr.Simulate(l, mem, nil)
			if err != nil {
				return 0, err
			}
			if isFP {
				counts[i] = float64(tr.Perf.Activity.FPThreadInstrs)
			} else {
				counts[i] = float64(tr.Perf.Activity.IntThreadInstrs)
			}
			l2, mem2 := mk(lanes)
			m, err := card.MeasureKernel(l2, mem2, nil, 0)
			if err != nil {
				return 0, err
			}
			energies[i] = m.AvgPowerW * m.TrueKernelSeconds
		}
		dE := energies[0] - energies[1]
		dOps := counts[0] - counts[1]
		if dOps <= 0 {
			return 0, fmt.Errorf("experiments: lane differencing produced no op delta")
		}
		return dE / dOps * 1e12, nil
	}

	intPJ, err := estimate(func(lanes int) (*kernel.Launch, *kernel.GlobalMem) {
		return lfsrKernel(cfg.NumCores(), lanes)
	}, false)
	if err != nil {
		return nil, err
	}
	fpPJ, err := estimate(func(lanes int) (*kernel.Launch, *kernel.GlobalMem) {
		return mandelbrotKernel(cfg.NumCores(), lanes)
	}, true)
	if err != nil {
		return nil, err
	}
	res.IntOpPJ = intPJ
	res.FPOpPJ = fpPJ
	return res, nil
}
