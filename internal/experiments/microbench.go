package experiments

import (
	"fmt"
	"strconv"

	"gpusimpow/internal/config"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sweep"
)

// ---------------------------------------------------------------------------
// E7: Section III-D — deriving execution-unit energy empirically.
// ---------------------------------------------------------------------------

// EnergyPerOpResult is the outcome of the lane-differencing microbenchmark.
type EnergyPerOpResult struct {
	// IntOpPJ and FPOpPJ are the estimated per-operation energies.
	IntOpPJ, FPOpPJ float64
	// NominalIntPJ / NominalFPPJ are the model's configured anchors
	// (the paper measured ~40 pJ INT and ~75 pJ FP; NVIDIA reports 50 pJ/FP).
	NominalIntPJ, NominalFPPJ float64
}

// EnergyPerOpSpec declares the paper's microbenchmark methodology as a
// sweep: "we are alternately configuring the test kernels to use 31 enabled
// threads per warp and 1 enabled thread per warp. Both configurations have
// the same execution time. We then calculate the energy difference between
// these two kernel launches and divide the result by the number of executed
// instructions ... to arrive at an estimate for the energy used by a single
// execution unit executing a single instruction." The grid is (op: int, fp)
// × (lanes: 31, 1); the integer loop simulates linear feedback shift
// registers, the floating-point loop iterates the Mandelbrot map. The four
// cells share one card (SharedCard): the lane-differencing methodology
// subtracts consecutive measurements on one rig, so the rig's noise-stream
// order is part of what is reproduced.
func EnergyPerOpSpec() *sweep.Spec {
	return &sweep.Spec{
		Name:  "energyperop",
		Title: "Section III-D: execution-unit energy via lane differencing (GT240)",
		Axes: []sweep.Axis{
			{Name: "op", Values: []sweep.Value{{Name: "int"}, {Name: "fp"}}},
			{Name: "lanes", Values: []sweep.Value{{Name: "31"}, {Name: "1"}}},
		},
		Base: config.GT240,
		Workload: func(c *sweep.Cell) (*sweep.Workload, error) {
			lanes, err := strconv.Atoi(c.Value("lanes"))
			if err != nil {
				return nil, err
			}
			mk := lfsrKernel
			if c.Value("op") == "fp" {
				mk = mandelbrotKernel
			}
			// Build once for the name; workloads are identified by program
			// name ("lfsr31", "mandel1", ...).
			l, _ := mk(2, lanes)
			return &sweep.Workload{
				Name: l.Prog.Name,
				Build: func(cfg *config.GPU) (*sweep.Instance, error) {
					l, mem := mk(cfg.NumCores(), lanes)
					return &sweep.Instance{Mem: mem, Units: []sweep.Unit{
						{Name: l.Prog.Name, Launch: l, MinWindowS: 0.150},
					}}, nil
				},
			}, nil
		},
		Sim: true, Measure: true,
		SharedCard: true,
	}
}

// EnergyPerOp runs the lane-differencing microbenchmark through the sweep
// engine: per cell, the timing stage counts thread instructions (the power
// model has nothing to add to an instruction count, so the spec skips the
// power stage) and the measurement stage yields the kernel energy; the
// reduction differences the 31-lane and 1-lane cells per operation class.
func EnergyPerOp() (*EnergyPerOpResult, error) {
	plan, err := EnergyPerOpSpec().Plan(nil)
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	return energyPerOpReduce(plan.Records(rs))
}

// energyPerOpReduce differences the grid's flat cell records: the wire
// records carry the per-class thread-instruction counts
// (TimingRecord.Int/FPThreadInstrs) and the measured kernel energy, which
// is everything the methodology needs.
func energyPerOpReduce(recs []*sweep.CellRecord) (*EnergyPerOpResult, error) {
	if len(recs) != 4 {
		return nil, fmt.Errorf("experiments: energyperop needs its full 4-cell grid, got %d record(s)", len(recs))
	}
	cfg := config.GT240()
	res := &EnergyPerOpResult{
		NominalIntPJ: cfg.Power.IntOpPJ,
		NominalFPPJ:  cfg.Power.FPOpPJ,
	}

	// Records arrive in row-major order: (int,31), (int,1), (fp,31), (fp,1).
	estimate := func(recs []*sweep.CellRecord, isFP bool) (float64, error) {
		counts := [2]float64{}
		energies := [2]float64{}
		for i, rec := range recs {
			if len(rec.Units) == 0 || rec.Units[0].Timing == nil || rec.Units[0].Meas == nil {
				return 0, fmt.Errorf("experiments: energyperop: record %s missing timing/measurement", rec.CoordString())
			}
			u := &rec.Units[0]
			if isFP {
				counts[i] = float64(u.Timing.FPThreadInstrs)
			} else {
				counts[i] = float64(u.Timing.IntThreadInstrs)
			}
			// Energy per single kernel execution: average power above idle
			// is what the execution units add; the paper differences two
			// launches, cancelling everything except the enabled lanes.
			energies[i] = u.Meas.AvgPowerW * u.Meas.KernelSeconds
		}
		dE := energies[0] - energies[1]
		dOps := counts[0] - counts[1]
		if dOps <= 0 {
			return 0, fmt.Errorf("experiments: lane differencing produced no op delta")
		}
		return dE / dOps * 1e12, nil
	}
	intPJ, err := estimate(recs[0:2], false)
	if err != nil {
		return nil, err
	}
	fpPJ, err := estimate(recs[2:4], true)
	if err != nil {
		return nil, err
	}
	res.IntOpPJ = intPJ
	res.FPOpPJ = fpPJ
	return res, nil
}

// lfsrKernel: each enabled lane iterates a 32-bit xorshift LFSR with an
// unrolled body; one block per core, 512 threads per block (paper setup).
func lfsrKernel(cores, lanesEnabled int) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder(fmt.Sprintf("lfsr%d", lanesEnabled), 10).Params(1)
	b.SReg(0, kernel.SpecLane)
	b.ISet(1, kernel.CmpGE, kernel.R(0), kernel.I(int32(lanesEnabled)))
	b.When(1).Exit()
	b.SReg(2, kernel.SpecTidX)
	b.IAdd(2, kernel.R(2), kernel.I(0x1234))
	b.MovI(3, 0)
	b.Label("loop")
	for u := 0; u < 8; u++ {
		// x ^= x << 13; x ^= x >> 17; x ^= x << 5
		b.IShl(4, kernel.R(2), kernel.I(13))
		b.IXor(2, kernel.R(2), kernel.R(4))
		b.IShr(4, kernel.R(2), kernel.I(17))
		b.IXor(2, kernel.R(2), kernel.R(4))
		b.IShl(4, kernel.R(2), kernel.I(5))
		b.IXor(2, kernel.R(2), kernel.R(4))
	}
	b.IAdd(3, kernel.R(3), kernel.I(1))
	b.ISet(5, kernel.CmpLT, kernel.R(3), kernel.I(24))
	b.When(5).Bra("loop", "end")
	b.Label("end")
	b.LdParam(6, 0)
	b.SReg(7, kernel.SpecTidX)
	b.IShl(7, kernel.R(7), kernel.I(2))
	b.IAdd(6, kernel.R(6), kernel.R(7))
	b.St(kernel.SpaceGlobal, kernel.R(6), kernel.R(2), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(512 * 4)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: cores, Y: 1},
		Block:  kernel.Dim{X: 512, Y: 1},
		Params: []uint32{out},
	}, mem
}

// mandelbrotKernel: each enabled lane iterates z = z^2 + c with an unrolled
// body.
func mandelbrotKernel(cores, lanesEnabled int) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder(fmt.Sprintf("mandel%d", lanesEnabled), 14).Params(1)
	b.SReg(0, kernel.SpecLane)
	b.ISet(1, kernel.CmpGE, kernel.R(0), kernel.I(int32(lanesEnabled)))
	b.When(1).Exit()
	b.SReg(2, kernel.SpecTidX)
	b.I2F(2, kernel.R(2))
	b.FMul(3, kernel.R(2), kernel.F(0.0001)) // cr
	b.FMul(4, kernel.R(2), kernel.F(0.0002)) // ci
	b.MovF(5, 0)                             // zr
	b.MovF(6, 0)                             // zi
	b.MovI(7, 0)
	b.Label("loop")
	for u := 0; u < 4; u++ {
		b.FMul(8, kernel.R(5), kernel.R(5))               // zr^2
		b.FMul(9, kernel.R(6), kernel.R(6))               // zi^2
		b.FMul(10, kernel.R(5), kernel.R(6))              // zr zi
		b.FSub(5, kernel.R(8), kernel.R(9))               // zr' = zr^2 - zi^2
		b.FAdd(5, kernel.R(5), kernel.R(3))               //     + cr
		b.FFma(6, kernel.R(10), kernel.F(2), kernel.R(4)) // zi' = 2 zr zi + ci
	}
	b.IAdd(7, kernel.R(7), kernel.I(1))
	b.ISet(11, kernel.CmpLT, kernel.R(7), kernel.I(24))
	b.When(11).Bra("loop", "end")
	b.Label("end")
	b.LdParam(12, 0)
	b.SReg(13, kernel.SpecTidX)
	b.IShl(13, kernel.R(13), kernel.I(2))
	b.IAdd(12, kernel.R(12), kernel.R(13))
	b.St(kernel.SpaceGlobal, kernel.R(12), kernel.R(5), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(512 * 4)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: cores, Y: 1},
		Block:  kernel.Dim{X: 512, Y: 1},
		Params: []uint32{out},
	}, mem
}

// ---------------------------------------------------------------------------
// E8: Section IV-B — static power extrapolation experiment.
// ---------------------------------------------------------------------------

// StaticExtrapResult reports the methodology check.
type StaticExtrapResult struct {
	EstimatedStaticW float64
	TrueStaticW      float64 // ground truth (virtual card internals)
	ErrPct           float64
}

// StaticExtrapolation runs the frequency-extrapolation methodology on the
// virtual GT240 and compares it against the card's actual leakage.
func StaticExtrapolation() (*StaticExtrapResult, error) {
	card, err := hw.NewCard(config.GT240())
	if err != nil {
		return nil, err
	}
	est, err := EstimateStaticByFrequency(card)
	if err != nil {
		return nil, err
	}
	truth := card.TrueStaticW()
	e := (est - truth) / truth * 100
	if e < 0 {
		e = -e
	}
	return &StaticExtrapResult{EstimatedStaticW: est, TrueStaticW: truth, ErrPct: e}, nil
}
