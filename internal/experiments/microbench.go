package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/kernel"
)

// ---------------------------------------------------------------------------
// E7: Section III-D — deriving execution-unit energy empirically.
// ---------------------------------------------------------------------------

// EnergyPerOpResult is the outcome of the lane-differencing microbenchmark.
type EnergyPerOpResult struct {
	// IntOpPJ and FPOpPJ are the estimated per-operation energies.
	IntOpPJ, FPOpPJ float64
	// NominalIntPJ / NominalFPPJ are the model's configured anchors
	// (the paper measured ~40 pJ INT and ~75 pJ FP; NVIDIA reports 50 pJ/FP).
	NominalIntPJ, NominalFPPJ float64
}

// EnergyPerOp reproduces the paper's microbenchmark methodology: "we are
// alternately configuring the test kernels to use 31 enabled threads per
// warp and 1 enabled thread per warp. Both configurations have the same
// execution time. We then calculate the energy difference between these two
// kernel launches and divide the result by the number of executed
// instructions ... to arrive at an estimate for the energy used by a single
// execution unit executing a single instruction." The integer loop simulates
// linear feedback shift registers; the floating-point loop iterates the
// Mandelbrot map.
func EnergyPerOp() (*EnergyPerOpResult, error) {
	cfg := config.GT240()
	card, err := hw.NewCard(cfg)
	if err != nil {
		return nil, err
	}
	simr, err := core.New(cfg)
	if err != nil {
		return nil, err
	}

	res := &EnergyPerOpResult{
		NominalIntPJ: cfg.Power.IntOpPJ,
		NominalFPPJ:  cfg.Power.FPOpPJ,
	}

	estimate := func(mk func(lanes int) (*kernel.Launch, *kernel.GlobalMem), isFP bool) (float64, error) {
		// Thread-instruction counts from the performance simulator (the
		// paper derives them statically from the unrolled loop). Only the
		// timing stage is needed — the power model has nothing to add to an
		// instruction count — so this uses Simulate directly, and the
		// measurement below replays the same cached timing result on the
		// card side.
		counts := [2]float64{}
		energies := [2]float64{}
		for i, lanes := range []int{31, 1} {
			l, mem := mk(lanes)
			tr, err := simr.Simulate(l, mem, nil)
			if err != nil {
				return 0, err
			}
			if isFP {
				counts[i] = float64(tr.Perf.Activity.FPThreadInstrs)
			} else {
				counts[i] = float64(tr.Perf.Activity.IntThreadInstrs)
			}
			l2, mem2 := mk(lanes)
			m, err := card.MeasureKernel(l2, mem2, nil, 0)
			if err != nil {
				return 0, err
			}
			// Energy per single kernel execution: average power above idle
			// is what the execution units add; the paper differences two
			// launches, cancelling everything except the enabled lanes.
			energies[i] = m.AvgPowerW * m.TrueKernelSeconds
		}
		dE := energies[0] - energies[1]
		dOps := counts[0] - counts[1]
		if dOps <= 0 {
			return 0, fmt.Errorf("experiments: lane differencing produced no op delta")
		}
		return dE / dOps * 1e12, nil
	}

	intPJ, err := estimate(func(lanes int) (*kernel.Launch, *kernel.GlobalMem) {
		return lfsrKernel(cfg.NumCores(), lanes)
	}, false)
	if err != nil {
		return nil, err
	}
	fpPJ, err := estimate(func(lanes int) (*kernel.Launch, *kernel.GlobalMem) {
		return mandelbrotKernel(cfg.NumCores(), lanes)
	}, true)
	if err != nil {
		return nil, err
	}
	res.IntOpPJ = intPJ
	res.FPOpPJ = fpPJ
	return res, nil
}

// lfsrKernel: each enabled lane iterates a 32-bit xorshift LFSR with an
// unrolled body; one block per core, 512 threads per block (paper setup).
func lfsrKernel(cores, lanesEnabled int) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder(fmt.Sprintf("lfsr%d", lanesEnabled), 10).Params(1)
	b.SReg(0, kernel.SpecLane)
	b.ISet(1, kernel.CmpGE, kernel.R(0), kernel.I(int32(lanesEnabled)))
	b.When(1).Exit()
	b.SReg(2, kernel.SpecTidX)
	b.IAdd(2, kernel.R(2), kernel.I(0x1234))
	b.MovI(3, 0)
	b.Label("loop")
	for u := 0; u < 8; u++ {
		// x ^= x << 13; x ^= x >> 17; x ^= x << 5
		b.IShl(4, kernel.R(2), kernel.I(13))
		b.IXor(2, kernel.R(2), kernel.R(4))
		b.IShr(4, kernel.R(2), kernel.I(17))
		b.IXor(2, kernel.R(2), kernel.R(4))
		b.IShl(4, kernel.R(2), kernel.I(5))
		b.IXor(2, kernel.R(2), kernel.R(4))
	}
	b.IAdd(3, kernel.R(3), kernel.I(1))
	b.ISet(5, kernel.CmpLT, kernel.R(3), kernel.I(24))
	b.When(5).Bra("loop", "end")
	b.Label("end")
	b.LdParam(6, 0)
	b.SReg(7, kernel.SpecTidX)
	b.IShl(7, kernel.R(7), kernel.I(2))
	b.IAdd(6, kernel.R(6), kernel.R(7))
	b.St(kernel.SpaceGlobal, kernel.R(6), kernel.R(2), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(512 * 4)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: cores, Y: 1},
		Block:  kernel.Dim{X: 512, Y: 1},
		Params: []uint32{out},
	}, mem
}

// mandelbrotKernel: each enabled lane iterates z = z^2 + c with an unrolled
// body.
func mandelbrotKernel(cores, lanesEnabled int) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder(fmt.Sprintf("mandel%d", lanesEnabled), 14).Params(1)
	b.SReg(0, kernel.SpecLane)
	b.ISet(1, kernel.CmpGE, kernel.R(0), kernel.I(int32(lanesEnabled)))
	b.When(1).Exit()
	b.SReg(2, kernel.SpecTidX)
	b.I2F(2, kernel.R(2))
	b.FMul(3, kernel.R(2), kernel.F(0.0001)) // cr
	b.FMul(4, kernel.R(2), kernel.F(0.0002)) // ci
	b.MovF(5, 0)                             // zr
	b.MovF(6, 0)                             // zi
	b.MovI(7, 0)
	b.Label("loop")
	for u := 0; u < 4; u++ {
		b.FMul(8, kernel.R(5), kernel.R(5))               // zr^2
		b.FMul(9, kernel.R(6), kernel.R(6))               // zi^2
		b.FMul(10, kernel.R(5), kernel.R(6))              // zr zi
		b.FSub(5, kernel.R(8), kernel.R(9))               // zr' = zr^2 - zi^2
		b.FAdd(5, kernel.R(5), kernel.R(3))               //     + cr
		b.FFma(6, kernel.R(10), kernel.F(2), kernel.R(4)) // zi' = 2 zr zi + ci
	}
	b.IAdd(7, kernel.R(7), kernel.I(1))
	b.ISet(11, kernel.CmpLT, kernel.R(7), kernel.I(24))
	b.When(11).Bra("loop", "end")
	b.Label("end")
	b.LdParam(12, 0)
	b.SReg(13, kernel.SpecTidX)
	b.IShl(13, kernel.R(13), kernel.I(2))
	b.IAdd(12, kernel.R(12), kernel.R(13))
	b.St(kernel.SpaceGlobal, kernel.R(12), kernel.R(5), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(512 * 4)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: cores, Y: 1},
		Block:  kernel.Dim{X: 512, Y: 1},
		Params: []uint32{out},
	}, mem
}

// ---------------------------------------------------------------------------
// E8: Section IV-B — static power extrapolation experiment.
// ---------------------------------------------------------------------------

// StaticExtrapResult reports the methodology check.
type StaticExtrapResult struct {
	EstimatedStaticW float64
	TrueStaticW      float64 // ground truth (virtual card internals)
	ErrPct           float64
}

// StaticExtrapolation runs the frequency-extrapolation methodology on the
// virtual GT240 and compares it against the card's actual leakage.
func StaticExtrapolation() (*StaticExtrapResult, error) {
	card, err := hw.NewCard(config.GT240())
	if err != nil {
		return nil, err
	}
	est, err := EstimateStaticByFrequency(card)
	if err != nil {
		return nil, err
	}
	truth := card.TrueStaticW()
	e := (est - truth) / truth * 100
	if e < 0 {
		e = -e
	}
	return &StaticExtrapResult{EstimatedStaticW: est, TrueStaticW: truth, ErrPct: e}, nil
}
