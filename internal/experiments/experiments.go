// Package experiments regenerates every table and figure of the paper's
// evaluation: Table II (configurations), Table IV (static power and area),
// Table V (blackscholes power profile), Figure 4 (cluster power staircase),
// Figures 6a/6b (simulated vs. measured power over all benchmark kernels),
// the Section III-D energy-per-operation microbenchmark, the Section IV-B
// static-power extrapolation, and a set of design-choice ablations.
package experiments

import (
	"fmt"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/power"
)

// measureWindowS is the default measurement window the harness stretches
// repeatable kernels to (comfortably beyond the 50 ms reliability limit).
const measureWindowS = 0.12

// ---------------------------------------------------------------------------
// E1: Table II — configuration summary.
// ---------------------------------------------------------------------------

// Table2Row is one column of the paper's Table II.
type Table2Row struct {
	Feature string
	GT240   string
	GTX580  string
}

// Table2 reproduces the configuration summary.
func Table2() []Table2Row {
	a, b := config.GT240(), config.GTX580()
	yn := func(v bool) string {
		if v {
			return "yes"
		}
		return "no"
	}
	l2 := func(g *config.GPU) string {
		if g.L2KB == 0 {
			return "no"
		}
		return fmt.Sprintf("%dKByte", g.L2KB)
	}
	return []Table2Row{
		{"#Cores", fmt.Sprint(a.NumCores()), fmt.Sprint(b.NumCores())},
		{"#Threads per core", fmt.Sprint(a.MaxThreadsPerCore), fmt.Sprint(b.MaxThreadsPerCore)},
		{"#FUs per core", fmt.Sprint(a.FUsPerCore), fmt.Sprint(b.FUsPerCore)},
		{"Uncore clock", fmt.Sprintf("%.0f MHz", a.UncoreClockMHz), fmt.Sprintf("%.0f MHz", b.UncoreClockMHz)},
		{"Shader-to-Uncore", fmt.Sprintf("%.2fx", a.UncoreRatio()), fmt.Sprintf("%.0fx", b.UncoreRatio())},
		{"#Warps in-flight", fmt.Sprint(a.MaxWarpsPerCore), fmt.Sprint(b.MaxWarpsPerCore)},
		{"Scoreboard", yn(a.HasScoreboard), yn(b.HasScoreboard)},
		{"L2-$ size", l2(a), l2(b)},
		{"Process node", fmt.Sprintf("%.0fnm", a.ProcessNM), fmt.Sprintf("%.0fnm", b.ProcessNM)},
	}
}

// ---------------------------------------------------------------------------
// E2: Table IV — static power and area, simulated vs. "real" (virtual card).
// ---------------------------------------------------------------------------

// Table4Row is one GPU's row pair of Table IV.
type Table4Row struct {
	GPU         string
	SimStaticW  float64
	RealStaticW float64 // estimated from the virtual card, per the paper's methods
	SimAreaMM2  float64
	RealAreaMM2 float64
}

// Table4 reproduces the static power and area comparison. The GT240's
// hardware static power is estimated by the frequency-extrapolation method;
// the GTX580's (whose driver cannot change clocks) by scaling its idle power
// with the idle-to-static ratio found on the GT240 — exactly the paper's
// two methodologies.
func Table4() ([]Table4Row, error) {
	var rows []Table4Row

	// GT240: frequency extrapolation.
	gt240 := config.GT240()
	sim240, err := core.New(gt240)
	if err != nil {
		return nil, err
	}
	card240, err := hw.NewCard(gt240)
	if err != nil {
		return nil, err
	}
	static240, err := EstimateStaticByFrequency(card240)
	if err != nil {
		return nil, err
	}
	s240 := sim240.Static()
	rows = append(rows, Table4Row{
		GPU:        "GT240",
		SimStaticW: s240.StaticW, RealStaticW: static240,
		SimAreaMM2: s240.AreaMM2, RealAreaMM2: card240.RealAreaMM2(),
	})

	// GTX580: idle-ratio method.
	gtx := config.GTX580()
	simX, err := core.New(gtx)
	if err != nil {
		return nil, err
	}
	cardX, err := hw.NewCard(gtx)
	if err != nil {
		return nil, err
	}
	ratio := static240 / (card240.PrePostKernelPowerW() + card240.DRAMIdleW())
	staticX := (cardX.PrePostKernelPowerW() + cardX.DRAMIdleW()) * ratio
	sX := simX.Static()
	rows = append(rows, Table4Row{
		GPU:        "GTX580",
		SimStaticW: sX.StaticW, RealStaticW: staticX,
		SimAreaMM2: sX.AreaMM2, RealAreaMM2: cardX.RealAreaMM2(),
	})
	return rows, nil
}

// EstimateStaticByFrequency implements the Section IV-B methodology on a
// virtual card: measure the same kernel at the stock clock and at 20 % lower,
// then extrapolate linearly to 0 Hz, where only static power remains. The
// result includes the DRAM background (the rig measures the whole board);
// the GPU-only static is obtained by subtracting the card's DRAM idle power.
// Cycle counts are clock-invariant (the card scales clocks analytically), so
// the two operating points — and every later caller of this estimator in
// the same process — share a single cached timing simulation.
func EstimateStaticByFrequency(card *hw.Card) (float64, error) {
	measure := func(scale float64) (float64, error) {
		if err := card.SetClockScale(scale); err != nil {
			return 0, err
		}
		l, mem := microFPBusy(card)
		m, err := card.MeasureKernel(l, mem, nil, 0)
		if err != nil {
			return 0, err
		}
		return m.AvgPowerW, nil
	}
	p100, err := measure(1.0)
	if err != nil {
		return 0, err
	}
	p80, err := measure(0.8)
	if err != nil {
		return 0, err
	}
	if err := card.SetClockScale(1.0); err != nil {
		return 0, err
	}
	boardStatic := (p80*1.0 - p100*0.8) / 0.2
	return boardStatic - card.DRAMIdleW(), nil
}

// microFPBusy builds a compute-bound FP kernel occupying every core of the
// card (one resident block per core, fully unrolled inner loop).
func microFPBusy(card *hw.Card) (*kernel.Launch, *kernel.GlobalMem) {
	return busyFPKernel(cardCores(card)*2, 256, 40)
}

func cardCores(card *hw.Card) int {
	if mk, ok := config.Presets()[card.Name()]; ok {
		return mk().NumCores()
	}
	return 12
}

// busyFPBody emits `unroll` FFMA operations per loop iteration for `iters`
// iterations, then stores the result.
func busyFPKernel(blocks, threads, iters int) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("fpBusy", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.I2F(1, kernel.R(0))
	b.MovI(2, 0)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.FFma(1, kernel.R(1), kernel.F(1.0001), kernel.F(0.5))
	}
	b.IAdd(2, kernel.R(2), kernel.I(1))
	b.ISet(3, kernel.CmpLT, kernel.R(2), kernel.I(int32(iters)))
	b.When(3).Bra("loop", "exit")
	b.Label("exit")
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(threads * 4)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: blocks, Y: 1},
		Block:  kernel.Dim{X: threads, Y: 1},
		Params: []uint32{out},
	}, mem
}

// ---------------------------------------------------------------------------
// E3: Table V — blackscholes power profile on GT240.
// ---------------------------------------------------------------------------

// Table5 reproduces the blackscholes power breakdown. The timing stage is
// shared with Fig6a through the simulation-result cache (same GPU, same
// kernel, same inputs); the verification step below still checks the
// functional output, which a cache hit replays from the stored final image.
func Table5() (*core.KernelReport, error) {
	simr, err := core.New(config.GT240())
	if err != nil {
		return nil, err
	}
	inst, err := bench.BlackScholes()
	if err != nil {
		return nil, err
	}
	r := inst.Runs[0]
	tr, err := simr.Simulate(r.Launch, inst.Mem, r.CMem)
	if err != nil {
		return nil, err
	}
	if err := inst.Verify(); err != nil {
		return nil, fmt.Errorf("experiments: blackscholes failed verification: %w", err)
	}
	rt, err := simr.EvaluatePower(tr)
	if err != nil {
		return nil, err
	}
	return &core.KernelReport{Kernel: tr.Kernel, Perf: tr.Perf, Power: rt}, nil
}

// ---------------------------------------------------------------------------
// E4: Figure 4 — cluster power staircase.
// ---------------------------------------------------------------------------

// Fig4Result carries the measured staircase of the block-count sweep.
type Fig4Result struct {
	// Trace is the full measured waveform (power vs. time).
	Trace *hw.Trace
	// PowerPerBlocks[i] is the measured average power with i+1 thread blocks.
	PowerPerBlocks []float64
	// IdleW is the pre/post-kernel idle level.
	IdleW float64
	// FirstBlockDeltaW is P(1 block) - idle: global scheduler + first
	// cluster + first core.
	FirstBlockDeltaW float64
	// ClusterStepW is the mean increment while new clusters activate
	// (blocks 2..Clusters).
	ClusterStepW float64
	// CoreStepW is the mean increment once all clusters are active
	// (blocks Clusters+1..Cores).
	CoreStepW float64
}

// Fig4 runs the same compute-bound kernel 12 times with 1..12 thread blocks
// on the virtual GT240, reproducing the staircase of the paper's Figure 4:
// the first block pays for the global scheduler, blocks 2..4 activate new
// clusters (larger steps), blocks 5..12 only add cores (smaller steps).
func Fig4() (*Fig4Result, error) {
	cfg := config.GT240()
	card, err := hw.NewCard(cfg)
	if err != nil {
		return nil, err
	}
	n := cfg.NumCores()
	items := make([]hw.SeqItem, n)
	for i := 0; i < n; i++ {
		l, mem := busyFPKernel(i+1, 256, 60)
		items[i] = hw.SeqItem{Launch: l, Mem: mem, MinWindowS: measureWindowS, GapS: 0.03}
	}
	tr, ms, err := card.MeasureSequence(items)
	if err != nil {
		return nil, err
	}
	res := &Fig4Result{Trace: tr, IdleW: card.PrePostKernelPowerW() + card.DRAMIdleW()}
	for _, m := range ms {
		res.PowerPerBlocks = append(res.PowerPerBlocks, m.AvgPowerW)
	}
	res.FirstBlockDeltaW = res.PowerPerBlocks[0] - res.IdleW
	cl := cfg.Clusters
	for i := 1; i < cl; i++ {
		res.ClusterStepW += res.PowerPerBlocks[i] - res.PowerPerBlocks[i-1]
	}
	res.ClusterStepW /= float64(cl - 1)
	for i := cl; i < n; i++ {
		res.CoreStepW += res.PowerPerBlocks[i] - res.PowerPerBlocks[i-1]
	}
	res.CoreStepW /= float64(n - cl)
	return res, nil
}

var _ = power.Item{} // keep the power import alongside future formatting helpers
