package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sweep"
)

// ---------------------------------------------------------------------------
// E10: design-choice ablations — the kind of architectural what-if studies
// the paper positions GPUSimPow for ("architects can evaluate design choices
// early from a power perspective"). Every study is a one-axis sweep over
// configuration variants on a fixed workload; the planner groups variants
// that share a timing key (the process-node sweep: every node differs only
// in power parameters), so such studies simulate once and batch-evaluate
// the power model per variant.
// ---------------------------------------------------------------------------

// AblationRow is one configuration variant's outcome on a fixed workload.
type AblationRow struct {
	Variant  string
	Cycles   uint64
	TotalW   float64
	DynamicW float64
	StaticW  float64
	EnergyMJ float64 // kernel energy in millijoules
	EDPnJs   float64 // energy-delay product (mJ * ms)
}

// ablationKernel is a medium-intensity mixed kernel (FP work + strided
// global traffic) used for all variants.
func ablationKernel(cfg *config.GPU) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("ablation", 12).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 0)
	b.IShl(4, kernel.R(0), kernel.I(2))
	b.IAdd(3, kernel.R(3), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 5, kernel.R(3), 0)
	b.MovI(6, 0)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.FFma(5, kernel.R(5), kernel.F(1.0003), kernel.F(0.25))
	}
	b.IAdd(6, kernel.R(6), kernel.I(1))
	b.ISet(7, kernel.CmpLT, kernel.R(6), kernel.I(16))
	b.When(7).Bra("loop", "store")
	b.Label("store")
	b.LdParam(8, 1)
	b.IAdd(8, kernel.R(8), kernel.R(4))
	b.St(kernel.SpaceGlobal, kernel.R(8), kernel.R(5), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	// Fixed total work so that core-count variants genuinely divide it.
	const n = 12 * 4 * 256
	_ = cfg
	in := mem.AllocZeroF32(n)
	out := mem.AllocZeroF32(n)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: n / 256, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{in, out},
	}, mem
}

// l2ReuseKernel: every block gathers pseudo-randomly from one shared array,
// so an L2 captures cross-block reuse that DRAM otherwise pays for.
func l2ReuseKernel(cfg *config.GPU) (*kernel.Launch, *kernel.GlobalMem) {
	const n = 16384 // 64 KB working set: far beyond L1, comfortably in L2
	b := kernel.NewBuilder("l2reuse", 14).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.LdParam(2, 0)
	b.MovF(3, 0) // acc
	b.MovI(4, 0) // i
	b.Label("loop")
	// idx = (tid*97 + i*389 + bid*31) % n  -- scattered but shared
	b.IMul(5, kernel.R(0), kernel.I(97))
	b.IMad(5, kernel.R(4), kernel.I(389), kernel.R(5))
	b.IMad(5, kernel.R(1), kernel.I(31), kernel.R(5))
	b.IAnd(5, kernel.R(5), kernel.I(n-1))
	b.IShl(5, kernel.R(5), kernel.I(2))
	b.IAdd(5, kernel.R(2), kernel.R(5))
	b.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0)
	b.FAdd(3, kernel.R(3), kernel.R(6))
	b.IAdd(4, kernel.R(4), kernel.I(1))
	b.ISet(7, kernel.CmpLT, kernel.R(4), kernel.I(16))
	b.When(7).Bra("loop", "store")
	b.Label("store")
	b.LdParam(8, 1)
	b.SReg(9, kernel.SpecNTidX)
	b.IMad(9, kernel.R(1), kernel.R(9), kernel.R(0))
	b.IShl(9, kernel.R(9), kernel.I(2))
	b.IAdd(8, kernel.R(8), kernel.R(9))
	b.St(kernel.SpaceGlobal, kernel.R(8), kernel.R(3), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	in := mem.AllocZeroF32(n)
	blocks := cfg.NumCores() * 4
	out := mem.AllocZeroF32(blocks * 256)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: blocks, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{in, out},
	}, mem
}

// kernelWorkload adapts a (launch, mem)-builder into a one-unit sweep
// workload.
func kernelWorkload(kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) *sweep.Workload {
	var name string
	{
		// The program name identifies the workload; build once against a
		// reference config just for the name (builders are cheap and pure).
		l, _ := kernelFn(config.GT240())
		name = l.Prog.Name
	}
	return &sweep.Workload{
		Name: name,
		Build: func(cfg *config.GPU) (*sweep.Instance, error) {
			l, mem := kernelFn(cfg)
			return &sweep.Instance{Mem: mem, Units: []sweep.Unit{{Name: l.Prog.Name, Launch: l}}}, nil
		},
	}
}

// ablationSpec assembles one design-choice study: a variant axis over
// configurations, the standard two-stage sim+power pipeline, no
// measurement.
func ablationSpec(name, title string, variants []sweep.Value, kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) *sweep.Spec {
	w := kernelWorkload(kernelFn)
	return &sweep.Spec{
		Name:     name,
		Title:    title,
		Axes:     []sweep.Axis{{Name: "variant", Values: variants}},
		Workload: func(*sweep.Cell) (*sweep.Workload, error) { return w, nil },
		Sim:      true, Power: true,
	}
}

// runAblation plans, runs and reduces one study into its rows (variant
// order = axis order), optionally filtered.
func runAblation(spec *sweep.Spec, f sweep.Filter) ([]AblationRow, error) {
	plan, err := spec.Plan(f)
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	return ablationReduce(plan.Records(rs))
}

// ablationReduce folds one study's flat cell records into its rows — the
// one reduction the Ablation* functions, the CLI report and the service's
// wire report all go through, so the rows are the same arithmetic the
// equivalence tests pin.
func ablationReduce(recs []*sweep.CellRecord) ([]AblationRow, error) {
	rows := make([]AblationRow, len(recs))
	for i, rec := range recs {
		if len(rec.Units) == 0 || rec.Units[0].Timing == nil || rec.Units[0].Power == nil {
			return nil, fmt.Errorf("experiments: ablation: record %s missing timing/power", rec.CoordString())
		}
		u := &rec.Units[0]
		label := ""
		for _, co := range rec.Coords {
			if co.Axis == "variant" {
				label = co.Label
			}
		}
		row := AblationRow{
			Variant:  label,
			Cycles:   u.Timing.Cycles,
			TotalW:   u.Power.TotalW,
			DynamicW: u.Power.DynamicW,
			StaticW:  u.Power.StaticW,
			EnergyMJ: u.Power.TotalW * u.Power.Seconds * 1e3,
		}
		row.EDPnJs = row.EnergyMJ * u.Power.Seconds * 1e3
		rows[i] = row
	}
	return rows, nil
}

// AblationScoreboardSpec compares blocking barrel issue against scoreboarded
// issue on an otherwise identical GT240-class core.
func AblationScoreboardSpec() *sweep.Spec {
	return ablationSpec("ablation-scoreboard", "Ablation: scoreboard vs. blocking issue (GT240)",
		[]sweep.Value{
			{Name: "blocking", Label: "blocking issue (GT240)", Base: config.GT240},
			{Name: "scoreboard", Label: "scoreboarded issue", Base: func() *config.GPU {
				sb := config.GT240()
				sb.Name = "GT240+scoreboard"
				sb.HasScoreboard = true
				sb.ScoreboardEntries = 6
				return sb
			}},
		}, ablationKernel)
}

// AblationScoreboard runs the scoreboard study.
func AblationScoreboard() ([]AblationRow, error) { return runAblation(AblationScoreboardSpec(), nil) }

// AblationL2Spec compares the GTX580 with and without its L2 cache on a
// reuse-heavy workload (every block re-reads the same array — the access
// pattern an L2 exists for).
func AblationL2Spec() *sweep.Spec {
	return ablationSpec("ablation-l2", "Ablation: L2 cache on a reuse-heavy workload (GTX580)",
		[]sweep.Value{
			{Name: "l2", Label: "768KB L2 (GTX580)", Base: config.GTX580},
			{Name: "nol2", Label: "no L2", Base: func() *config.GPU {
				no := config.GTX580()
				no.Name = "GTX580-noL2"
				no.L2KB = 0
				return no
			}},
		}, l2ReuseKernel)
}

// AblationL2 runs the L2 study.
func AblationL2() ([]AblationRow, error) { return runAblation(AblationL2Spec(), nil) }

// AblationProcessNodeSpec sweeps the manufacturing node, the ITRS-style
// scaling study McPAT integration enables. The node is a power-only
// parameter, so the whole sweep is one timing group: one simulation, five
// batched power evaluations.
func AblationProcessNodeSpec() *sweep.Spec {
	var variants []sweep.Value
	for _, nm := range []float64{65, 45, 40, 32, 28} {
		nm := nm
		name := fmt.Sprintf("GT240@%.0fnm", nm)
		variants = append(variants, sweep.Value{
			Name:  fmt.Sprintf("%.0fnm", nm),
			Label: name,
			Mutate: func(c *config.GPU) {
				c.Name = name
				c.ProcessNM = nm
			},
		})
	}
	sp := ablationSpec("ablation-processnode", "Ablation: process node sweep (GT240)", variants, ablationKernel)
	sp.Base = config.GT240
	return sp
}

// AblationProcessNode runs the process-node study.
func AblationProcessNode() ([]AblationRow, error) { return runAblation(AblationProcessNodeSpec(), nil) }

// AblationCoreCountSpec scales the core count at constant cluster shape,
// exercising the "coherently simulate an architecture with a varied number
// of cores" claim of Section III-A.
func AblationCoreCountSpec() *sweep.Spec {
	var variants []sweep.Value
	for _, clusters := range []int{2, 4, 6, 8} {
		clusters := clusters
		c := config.GT240()
		c.Clusters = clusters
		variants = append(variants, sweep.Value{
			Name:  fmt.Sprintf("%dclusters", clusters),
			Label: fmt.Sprintf("%d cores (%d clusters)", c.NumCores(), clusters),
			Mutate: func(c *config.GPU) {
				c.Name = fmt.Sprintf("GT240x%dclusters", clusters)
				c.Clusters = clusters
			},
		})
	}
	sp := ablationSpec("ablation-corecount", "Ablation: core count scaling (GT240)", variants, ablationKernel)
	sp.Base = config.GT240
	return sp
}

// AblationCoreCount runs the core-count study.
func AblationCoreCount() ([]AblationRow, error) { return runAblation(AblationCoreCountSpec(), nil) }

// AblationSchedulerSpec compares the warp scheduling policies the paper's
// conclusion proposes evaluating "from a power perspective": rotating
// priority (baseline), greedy-then-oldest, and two-level scheduling with a
// narrow active set (and hence a narrower arbitration encoder).
func AblationSchedulerSpec() *sweep.Spec {
	var variants []sweep.Value
	for _, pol := range []string{"rr", "gto", "twolevel"} {
		pol := pol
		variants = append(variants, sweep.Value{
			Name:  pol,
			Label: pol + " scheduler",
			Mutate: func(c *config.GPU) {
				c.Name = "GTX580-" + pol
				c.SchedulerPolicy = pol
			},
		})
	}
	sp := ablationSpec("ablation-scheduler", "Ablation: warp scheduler policy (GTX580)", variants, ablationKernel)
	sp.Base = config.GTX580
	return sp
}

// AblationScheduler runs the scheduler-policy study.
func AblationScheduler() ([]AblationRow, error) { return runAblation(AblationSchedulerSpec(), nil) }
