package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/runner"
)

// ---------------------------------------------------------------------------
// E10: design-choice ablations — the kind of architectural what-if studies
// the paper positions GPUSimPow for ("architects can evaluate design choices
// early from a power perspective").
// ---------------------------------------------------------------------------

// AblationRow is one configuration variant's outcome on a fixed workload.
type AblationRow struct {
	Variant  string
	Cycles   uint64
	TotalW   float64
	DynamicW float64
	StaticW  float64
	EnergyMJ float64 // kernel energy in millijoules
	EDPnJs   float64 // energy-delay product (mJ * ms)
}

// ablationKernel is a medium-intensity mixed kernel (FP work + strided
// global traffic) used for all variants.
func ablationKernel(cfg *config.GPU) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("ablation", 12).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 0)
	b.IShl(4, kernel.R(0), kernel.I(2))
	b.IAdd(3, kernel.R(3), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 5, kernel.R(3), 0)
	b.MovI(6, 0)
	b.Label("loop")
	for i := 0; i < 4; i++ {
		b.FFma(5, kernel.R(5), kernel.F(1.0003), kernel.F(0.25))
	}
	b.IAdd(6, kernel.R(6), kernel.I(1))
	b.ISet(7, kernel.CmpLT, kernel.R(6), kernel.I(16))
	b.When(7).Bra("loop", "store")
	b.Label("store")
	b.LdParam(8, 1)
	b.IAdd(8, kernel.R(8), kernel.R(4))
	b.St(kernel.SpaceGlobal, kernel.R(8), kernel.R(5), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	// Fixed total work so that core-count variants genuinely divide it.
	const n = 12 * 4 * 256
	_ = cfg
	in := mem.AllocZeroF32(n)
	out := mem.AllocZeroF32(n)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: n / 256, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{in, out},
	}, mem
}

// runVariant evaluates one configuration variant on the workload kernelFn
// builds and condenses the outcome into an AblationRow. The two stages are
// explicit: the timing stage goes through the simulation-result cache, so
// variants that differ only in power-side parameters (the process-node
// sweep: every node shares one timing key) simulate once and re-evaluate
// the analytic model per variant.
func runVariant(name string, cfg *config.GPU, kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) (AblationRow, error) {
	simr, err := core.New(cfg)
	if err != nil {
		return AblationRow{}, err
	}
	l, mem := kernelFn(cfg)
	tr, err := simr.Simulate(l, mem, nil)
	if err != nil {
		return AblationRow{}, err
	}
	p, err := simr.EvaluatePower(tr)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{
		Variant:  name,
		Cycles:   tr.Perf.Activity.Cycles,
		TotalW:   p.TotalW,
		DynamicW: p.DynamicW,
		StaticW:  p.StaticW,
		EnergyMJ: p.TotalW * p.Seconds * 1e3,
	}
	row.EDPnJs = row.EnergyMJ * p.Seconds * 1e3
	return row, nil
}

// AblationScoreboard compares blocking barrel issue against scoreboarded
// issue on an otherwise identical GT240-class core.
func AblationScoreboard() ([]AblationRow, error) {
	base := config.GT240()
	sb := config.GT240()
	sb.Name = "GT240+scoreboard"
	sb.HasScoreboard = true
	sb.ScoreboardEntries = 6
	return runVariants([]namedCfg{{"blocking issue (GT240)", base}, {"scoreboarded issue", sb}})
}

// AblationL2 compares the GTX580 with and without its L2 cache on a
// reuse-heavy workload (every block re-reads the same array — the access
// pattern an L2 exists for).
func AblationL2() ([]AblationRow, error) {
	base := config.GTX580()
	no := config.GTX580()
	no.Name = "GTX580-noL2"
	no.L2KB = 0
	return runVariantsOn([]namedCfg{{"768KB L2 (GTX580)", base}, {"no L2", no}}, l2ReuseKernel)
}

// l2ReuseKernel: every block gathers pseudo-randomly from one shared array,
// so an L2 captures cross-block reuse that DRAM otherwise pays for.
func l2ReuseKernel(cfg *config.GPU) (*kernel.Launch, *kernel.GlobalMem) {
	const n = 16384 // 64 KB working set: far beyond L1, comfortably in L2
	b := kernel.NewBuilder("l2reuse", 14).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.LdParam(2, 0)
	b.MovF(3, 0) // acc
	b.MovI(4, 0) // i
	b.Label("loop")
	// idx = (tid*97 + i*389 + bid*31) % n  -- scattered but shared
	b.IMul(5, kernel.R(0), kernel.I(97))
	b.IMad(5, kernel.R(4), kernel.I(389), kernel.R(5))
	b.IMad(5, kernel.R(1), kernel.I(31), kernel.R(5))
	b.IAnd(5, kernel.R(5), kernel.I(n-1))
	b.IShl(5, kernel.R(5), kernel.I(2))
	b.IAdd(5, kernel.R(2), kernel.R(5))
	b.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0)
	b.FAdd(3, kernel.R(3), kernel.R(6))
	b.IAdd(4, kernel.R(4), kernel.I(1))
	b.ISet(7, kernel.CmpLT, kernel.R(4), kernel.I(16))
	b.When(7).Bra("loop", "store")
	b.Label("store")
	b.LdParam(8, 1)
	b.SReg(9, kernel.SpecNTidX)
	b.IMad(9, kernel.R(1), kernel.R(9), kernel.R(0))
	b.IShl(9, kernel.R(9), kernel.I(2))
	b.IAdd(8, kernel.R(8), kernel.R(9))
	b.St(kernel.SpaceGlobal, kernel.R(8), kernel.R(3), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	in := mem.AllocZeroF32(n)
	blocks := cfg.NumCores() * 4
	out := mem.AllocZeroF32(blocks * 256)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: blocks, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{in, out},
	}, mem
}

// AblationProcessNode sweeps the manufacturing node, the ITRS-style scaling
// study McPAT integration enables.
func AblationProcessNode() ([]AblationRow, error) {
	var variants []namedCfg
	for _, nm := range []float64{65, 45, 40, 32, 28} {
		c := config.GT240()
		c.Name = fmt.Sprintf("GT240@%.0fnm", nm)
		c.ProcessNM = nm
		variants = append(variants, namedCfg{c.Name, c})
	}
	return runVariants(variants)
}

// AblationCoreCount scales the core count at constant cluster shape,
// exercising the "coherently simulate an architecture with a varied number
// of cores" claim of Section III-A.
func AblationCoreCount() ([]AblationRow, error) {
	var variants []namedCfg
	for _, clusters := range []int{2, 4, 6, 8} {
		c := config.GT240()
		c.Name = fmt.Sprintf("GT240x%dclusters", clusters)
		c.Clusters = clusters
		variants = append(variants, namedCfg{fmt.Sprintf("%d cores (%d clusters)", c.NumCores(), clusters), c})
	}
	return runVariants(variants)
}

// AblationScheduler compares the warp scheduling policies the paper's
// conclusion proposes evaluating "from a power perspective": rotating
// priority (baseline), greedy-then-oldest, and two-level scheduling with a
// narrow active set (and hence a narrower arbitration encoder).
func AblationScheduler() ([]AblationRow, error) {
	var variants []namedCfg
	for _, pol := range []string{"rr", "gto", "twolevel"} {
		c := config.GTX580()
		c.Name = "GTX580-" + pol
		c.SchedulerPolicy = pol
		variants = append(variants, namedCfg{pol + " scheduler", c})
	}
	return runVariants(variants)
}

type namedCfg struct {
	name string
	cfg  *config.GPU
}

// runVariants fans the variants out over the worker pool on the standard
// ablation workload; rows come back in variant order.
func runVariants(vs []namedCfg) ([]AblationRow, error) {
	return runVariantsOn(vs, ablationKernel)
}

// runVariantsOn runs every variant on the workload kernelFn builds. Each
// variant owns its configuration, simulator and memory image, so the jobs
// are independent and safe to run concurrently.
func runVariantsOn(vs []namedCfg, kernelFn func(*config.GPU) (*kernel.Launch, *kernel.GlobalMem)) ([]AblationRow, error) {
	return runner.Map(len(vs), func(i int) (AblationRow, error) {
		row, err := runVariant(vs[i].name, vs[i].cfg, kernelFn)
		if err != nil {
			return AblationRow{}, fmt.Errorf("experiments: variant %s: %w", vs[i].name, err)
		}
		return row, nil
	})
}
