package experiments

import (
	"fmt"
	"math"
	"sort"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/sweep"
)

// Fig6Bar is one bar pair of Figure 6: one kernel's simulated and measured
// total power, split into static and dynamic parts.
type Fig6Bar struct {
	Kernel string

	SimStaticW   float64
	SimDynamicW  float64
	MeasStaticW  float64
	MeasDynamicW float64

	// RelErrPct is |sim - measured| / measured * 100 on total power.
	RelErrPct float64
	// ShortWindow marks kernels measured below the 50 ms reliability limit.
	ShortWindow bool
	// Executions is how many launches were aggregated (multi-launch kernels
	// are averaged arithmetically, as in the paper).
	Executions int
}

// SimTotalW returns the simulated total power.
func (b Fig6Bar) SimTotalW() float64 { return b.SimStaticW + b.SimDynamicW }

// MeasTotalW returns the measured total power.
func (b Fig6Bar) MeasTotalW() float64 { return b.MeasStaticW + b.MeasDynamicW }

// Fig6Result is one sub-figure (6a or 6b).
type Fig6Result struct {
	GPU  string
	Bars []Fig6Bar
	// AvgRelErrPct is the average of absolute relative errors ("when
	// averaging errors, we always average the absolute value of errors").
	AvgRelErrPct float64
	// MaxRelErrPct / MaxErrKernel identify the worst kernel.
	MaxRelErrPct float64
	MaxErrKernel string
	// DynAvgRelErrPct is the average relative error on dynamic power only
	// (paper: 28.3 % GT240, 20.9 % GTX580).
	DynAvgRelErrPct float64
	// OverestimatedFraction is the share of kernels where the simulator
	// overestimates (paper: nearly all).
	OverestimatedFraction float64
}

// benchWorkload wraps one Table I benchmark as a sweep workload: the units
// are the benchmark's launches in execution order (sharing one memory
// image), annotated with Figure 6's measurement policy — repeat-capped
// kernels keep their cap, everything else stretches to the reliable window.
func benchWorkload(f bench.Factory) *sweep.Workload {
	return &sweep.Workload{
		Name: f.Name,
		Build: func(cfg *config.GPU) (*sweep.Instance, error) {
			inst, err := f.Make()
			if err != nil {
				return nil, err
			}
			units := make([]sweep.Unit, len(inst.Runs))
			for i, r := range inst.Runs {
				units[i] = sweep.Unit{Name: r.Name, Launch: r.Launch, CMem: r.CMem, GapS: 0.01}
				if r.MaxRepeats > 0 {
					units[i].Repeats = r.MaxRepeats
				} else {
					units[i].MinWindowS = measureWindowS
				}
			}
			return &sweep.Instance{Mem: inst.Mem, Units: units, Verify: inst.Verify}, nil
		},
	}
}

// gpuAxis is the validated-GPUs axis shared by sweeps that run on both
// cards.
func gpuAxis() sweep.Axis {
	return sweep.Axis{Name: "gpu", Values: []sweep.Value{
		{Name: "GT240", Base: config.GT240},
		{Name: "GTX580", Base: config.GTX580},
	}}
}

// Fig6Spec declares the full Figure 6 validation grid: every Table I +
// needle benchmark simulated with GPUSimPow and measured on the matching
// virtual card, over both validated GPUs. Each (gpu, bench) cell is its own
// timing group; the simulator side fills the timing cache and the card side
// (whose silicon perturbation is power-only, hence timing-key-equal)
// replays it.
func Fig6Spec() *sweep.Spec {
	var benchVals []sweep.Value
	for _, f := range bench.Suite() {
		benchVals = append(benchVals, sweep.Value{Name: f.Name})
	}
	return &sweep.Spec{
		Name:  "fig6",
		Title: "Figure 6: simulated vs. measured power over the benchmark suite",
		Axes: []sweep.Axis{
			gpuAxis(),
			{Name: "bench", Values: benchVals},
		},
		Workload: func(c *sweep.Cell) (*sweep.Workload, error) {
			f, err := bench.ByName(c.Value("bench"))
			if err != nil {
				return nil, err
			}
			return benchWorkload(f), nil
		},
		Sim: true, Power: true, Verify: true, Measure: true,
		Session: func(c *sweep.Cell) string { return "fig6/" + c.Value("bench") },
	}
}

// fig6Agg is the per-kernel aggregate one benchmark cell contributes.
type fig6Agg struct {
	name                string
	simTotal, measTotal float64
	n                   int
	short               bool
}

// Fig6 runs the validation of Figure 6 for the named GPU ("GT240" for 6a,
// "GTX580" for 6b) through the sweep engine and aggregates per-kernel
// relative errors.
func Fig6(gpuName string) (*Fig6Result, error) {
	if _, ok := config.Presets()[gpuName]; !ok {
		return nil, fmt.Errorf("experiments: unknown GPU %q", gpuName)
	}
	plan, err := Fig6Spec().Plan(sweep.Filter{"gpu": {gpuName}})
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	return fig6Reduce(gpuName, plan.Records(rs))
}

// fig6Reduce folds the sweep's flat cell records into the figure:
// per-kernel aggregation in record (= cell) order — multi-launch kernels
// average arithmetically — against the per-card static power estimated
// with the methodology available for each card. Reducing from wire
// records rather than live results is what lets the service serve the
// same figure from a finished job's record stream, bit-identically.
func fig6Reduce(gpuName string, recs []*sweep.CellRecord) (*Fig6Result, error) {
	mk, ok := config.Presets()[gpuName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown GPU %q", gpuName)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("experiments: fig6: no cell records for %s", gpuName)
	}

	// Simulated static power from the model, measured static power from the
	// card (paper Section IV-B / V-A), estimated once per card.
	ev, err := core.NewPowerEvaluator(mk())
	if err != nil {
		return nil, err
	}
	simStatic := ev.Static().StaticW
	card, err := hw.NewCard(mk())
	if err != nil {
		return nil, err
	}
	measStatic, err := measuredStaticFor(card)
	if err != nil {
		return nil, err
	}

	// Deterministic merge in record (= suite) order.
	perKernel := map[string]*fig6Agg{}
	var order []string
	for _, rec := range recs {
		for i := range rec.Units {
			ur := &rec.Units[i]
			if ur.Power == nil || ur.Meas == nil {
				return nil, fmt.Errorf("experiments: fig6: record %s unit %s missing power/measurement", rec.CoordString(), ur.Name)
			}
			a := perKernel[ur.Name]
			if a == nil {
				a = &fig6Agg{name: ur.Name}
				perKernel[ur.Name] = a
				order = append(order, ur.Name)
			}
			a.simTotal += ur.Power.TotalW + ur.Power.DRAMW
			a.measTotal += ur.Meas.AvgPowerW
			a.n++
			// The short-window flag matters only for kernels whose repeat
			// count is capped (in-place kernels that cannot be stretched).
			if ur.Meas.ShortWindow && ur.Repeats > 0 {
				a.short = true
			}
		}
	}

	res := &Fig6Result{GPU: gpuName}
	sort.Strings(order)
	var sumErr, sumDynErr float64
	over := 0
	for _, name := range order {
		a := perKernel[name]
		simTotal := a.simTotal / float64(a.n)
		measTotal := a.measTotal / float64(a.n)
		bar := Fig6Bar{
			Kernel:       name,
			SimStaticW:   simStatic,
			SimDynamicW:  simTotal - simStatic,
			MeasStaticW:  measStatic,
			MeasDynamicW: measTotal - measStatic,
			ShortWindow:  a.short,
			Executions:   a.n,
		}
		bar.RelErrPct = 100 * math.Abs(simTotal-measTotal) / measTotal
		res.Bars = append(res.Bars, bar)
		sumErr += bar.RelErrPct
		if bar.RelErrPct > res.MaxRelErrPct {
			res.MaxRelErrPct = bar.RelErrPct
			res.MaxErrKernel = name
		}
		if bar.MeasDynamicW > 0 {
			sumDynErr += 100 * math.Abs(bar.SimDynamicW-bar.MeasDynamicW) / bar.MeasDynamicW
		}
		if simTotal > measTotal {
			over++
		}
	}
	n := float64(len(res.Bars))
	res.AvgRelErrPct = sumErr / n
	res.DynAvgRelErrPct = sumDynErr / n
	res.OverestimatedFraction = float64(over) / n
	return res, nil
}

// measuredStaticFor applies the per-card static estimation methodology:
// frequency extrapolation on cards that support downclocking (GT240-class),
// the idle-ratio transfer method otherwise (GTX580-class, whose Linux driver
// "does not yet support changing the clock speed").
func measuredStaticFor(card *hw.Card) (float64, error) {
	if card.Name() != "GTX580" {
		return EstimateStaticByFrequency(card)
	}
	ref, err := hw.NewCard(config.GT240())
	if err != nil {
		return 0, err
	}
	refStatic, err := EstimateStaticByFrequency(ref)
	if err != nil {
		return 0, err
	}
	ratio := refStatic / (ref.PrePostKernelPowerW() + ref.DRAMIdleW())
	return (card.PrePostKernelPowerW() + card.DRAMIdleW()) * ratio, nil
}
