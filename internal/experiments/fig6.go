package experiments

import (
	"fmt"
	"math"
	"sort"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/runner"
)

// Fig6Bar is one bar pair of Figure 6: one kernel's simulated and measured
// total power, split into static and dynamic parts.
type Fig6Bar struct {
	Kernel string

	SimStaticW   float64
	SimDynamicW  float64
	MeasStaticW  float64
	MeasDynamicW float64

	// RelErrPct is |sim - measured| / measured * 100 on total power.
	RelErrPct float64
	// ShortWindow marks kernels measured below the 50 ms reliability limit.
	ShortWindow bool
	// Executions is how many launches were aggregated (multi-launch kernels
	// are averaged arithmetically, as in the paper).
	Executions int
}

// SimTotalW returns the simulated total power.
func (b Fig6Bar) SimTotalW() float64 { return b.SimStaticW + b.SimDynamicW }

// MeasTotalW returns the measured total power.
func (b Fig6Bar) MeasTotalW() float64 { return b.MeasStaticW + b.MeasDynamicW }

// Fig6Result is one sub-figure (6a or 6b).
type Fig6Result struct {
	GPU  string
	Bars []Fig6Bar
	// AvgRelErrPct is the average of absolute relative errors ("when
	// averaging errors, we always average the absolute value of errors").
	AvgRelErrPct float64
	// MaxRelErrPct / MaxErrKernel identify the worst kernel.
	MaxRelErrPct float64
	MaxErrKernel string
	// DynAvgRelErrPct is the average relative error on dynamic power only
	// (paper: 28.3 % GT240, 20.9 % GTX580).
	DynAvgRelErrPct float64
	// OverestimatedFraction is the share of kernels where the simulator
	// overestimates (paper: nearly all).
	OverestimatedFraction float64
}

// fig6Agg is the per-kernel aggregate one benchmark job contributes.
type fig6Agg struct {
	name                string
	simTotal, measTotal float64
	n                   int
	short               bool
}

// Fig6 runs the full validation of Figure 6 for the named GPU ("GT240" for
// 6a, "GTX580" for 6b): every Table I + needle kernel is simulated with
// GPUSimPow and measured on the virtual card, and per-kernel relative errors
// are aggregated. The benchmarks are independent of one another (each job
// builds its own simulator, card and memory image; only the launches within
// one benchmark share state), so they fan out over the runner's worker pool.
func Fig6(gpuName string) (*Fig6Result, error) {
	mk, ok := config.Presets()[gpuName]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown GPU %q", gpuName)
	}
	simr, err := core.New(mk())
	if err != nil {
		return nil, err
	}
	card, err := hw.NewCard(mk())
	if err != nil {
		return nil, err
	}

	// Measured static power, estimated once per card with the methodology
	// available for it (paper Section IV-B / V-A).
	measStatic, err := measuredStaticFor(card)
	if err != nil {
		return nil, err
	}
	simStatic := simr.Static().StaticW

	suite := bench.Suite()
	perBench, err := runner.Map(len(suite), func(i int) ([]fig6Agg, error) {
		return fig6Benchmark(mk, suite[i])
	})
	if err != nil {
		return nil, err
	}

	// Deterministic merge in suite order (runner.Map preserves indices).
	perKernel := map[string]*fig6Agg{}
	var order []string
	for _, aggs := range perBench {
		for _, ka := range aggs {
			a := perKernel[ka.name]
			if a == nil {
				a = &fig6Agg{name: ka.name}
				perKernel[ka.name] = a
				order = append(order, ka.name)
			}
			a.simTotal += ka.simTotal
			a.measTotal += ka.measTotal
			a.n += ka.n
			a.short = a.short || ka.short
		}
	}

	res := &Fig6Result{GPU: gpuName}
	sort.Strings(order)
	var sumErr, sumDynErr float64
	over := 0
	for _, name := range order {
		a := perKernel[name]
		simTotal := a.simTotal / float64(a.n)
		measTotal := a.measTotal / float64(a.n)
		bar := Fig6Bar{
			Kernel:       name,
			SimStaticW:   simStatic,
			SimDynamicW:  simTotal - simStatic,
			MeasStaticW:  measStatic,
			MeasDynamicW: measTotal - measStatic,
			ShortWindow:  a.short,
			Executions:   a.n,
		}
		bar.RelErrPct = 100 * math.Abs(simTotal-measTotal) / measTotal
		res.Bars = append(res.Bars, bar)
		sumErr += bar.RelErrPct
		if bar.RelErrPct > res.MaxRelErrPct {
			res.MaxRelErrPct = bar.RelErrPct
			res.MaxErrKernel = name
		}
		if bar.MeasDynamicW > 0 {
			sumDynErr += 100 * math.Abs(bar.SimDynamicW-bar.MeasDynamicW) / bar.MeasDynamicW
		}
		if simTotal > measTotal {
			over++
		}
	}
	n := float64(len(res.Bars))
	res.AvgRelErrPct = sumErr / n
	res.DynAvgRelErrPct = sumDynErr / n
	res.OverestimatedFraction = float64(over) / n
	return res, nil
}

// fig6Benchmark simulates and measures one benchmark end to end: the
// simulator side on a fresh GPUSimPow instance, the hardware side on a fresh
// virtual card (same silicon — cards are seeded by name — so results stay
// deterministic regardless of worker interleaving).
func fig6Benchmark(mk func() *config.GPU, f bench.Factory) ([]fig6Agg, error) {
	simr, err := core.New(mk())
	if err != nil {
		return nil, err
	}
	// Same card, per-benchmark measurement session: identical silicon and
	// rig calibration, independent DAQ noise (not a replay of one stream).
	card, err := hw.NewCardSession(mk(), "fig6/"+f.Name)
	if err != nil {
		return nil, err
	}

	perKernel := map[string]*fig6Agg{}
	var order []string

	// Simulator side, explicitly two-stage: the timing results enter the
	// shared simulation-result cache here, and the hardware side below (the
	// card's silicon differs only in power anchors, hence shares the timing
	// key) replays them instead of simulating the same launches again.
	simInst, err := f.Make()
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", f.Name, err)
	}
	for _, r := range simInst.Runs {
		tr, err := simr.Simulate(r.Launch, simInst.Mem, r.CMem)
		if err != nil {
			return nil, fmt.Errorf("experiments: simulating %s/%s: %w", f.Name, r.Name, err)
		}
		rt, err := simr.EvaluatePower(tr)
		if err != nil {
			return nil, fmt.Errorf("experiments: power for %s/%s: %w", f.Name, r.Name, err)
		}
		a := perKernel[r.Name]
		if a == nil {
			a = &fig6Agg{name: r.Name}
			perKernel[r.Name] = a
			order = append(order, r.Name)
		}
		a.simTotal += rt.TotalW + rt.DRAMW
		a.n++
	}
	if err := simInst.Verify(); err != nil {
		return nil, fmt.Errorf("experiments: %s failed verification on the simulator: %w", f.Name, err)
	}

	// Hardware side: a fresh instance measured kernel by kernel.
	hwInst, err := f.Make()
	if err != nil {
		return nil, err
	}
	items := make([]hw.SeqItem, len(hwInst.Runs))
	for i, r := range hwInst.Runs {
		items[i] = hw.SeqItem{Launch: r.Launch, Mem: hwInst.Mem, CMem: r.CMem, GapS: 0.01}
		if r.MaxRepeats > 0 {
			items[i].Repeats = r.MaxRepeats
		} else {
			items[i].MinWindowS = measureWindowS
		}
	}
	_, ms, err := card.MeasureSequence(items)
	if err != nil {
		return nil, fmt.Errorf("experiments: measuring %s: %w", f.Name, err)
	}
	for i, m := range ms {
		a := perKernel[hwInst.Runs[i].Name]
		a.measTotal += m.AvgPowerW
		if m.ShortWindow && hwInst.Runs[i].MaxRepeats > 0 {
			a.short = true
		}
	}

	out := make([]fig6Agg, 0, len(order))
	for _, name := range order {
		out = append(out, *perKernel[name])
	}
	return out, nil
}

// measuredStaticFor applies the per-card static estimation methodology:
// frequency extrapolation on cards that support downclocking (GT240-class),
// the idle-ratio transfer method otherwise (GTX580-class, whose Linux driver
// "does not yet support changing the clock speed").
func measuredStaticFor(card *hw.Card) (float64, error) {
	if card.Name() != "GTX580" {
		return EstimateStaticByFrequency(card)
	}
	ref, err := hw.NewCard(config.GT240())
	if err != nil {
		return 0, err
	}
	refStatic, err := EstimateStaticByFrequency(ref)
	if err != nil {
		return 0, err
	}
	ratio := refStatic / (ref.PrePostKernelPowerW() + ref.DRAMIdleW())
	return (card.PrePostKernelPowerW() + card.DRAMIdleW()) * ratio, nil
}
