package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/runner"
)

// ---------------------------------------------------------------------------
// E11 (extension): DVFS energy study — the same clock-scaling mechanism the
// static-power methodology uses (Section IV-B), swept across the supported
// range to chart the energy/performance trade-off of frequency scaling on
// the virtual card.
// ---------------------------------------------------------------------------

// DVFSPoint is one operating point of the sweep.
type DVFSPoint struct {
	ClockScale float64
	// PowerW is the measured average power while the kernel runs.
	PowerW float64
	// KernelSeconds is one execution's duration at this clock.
	KernelSeconds float64
	// EnergyMJ is the energy of one kernel execution in millijoules.
	EnergyMJ float64
}

// DVFSResult is the full sweep.
type DVFSResult struct {
	Points []DVFSPoint
	// MinEnergyScale is the clock scale with the lowest kernel energy: with
	// large static power, racing to idle usually wins, so this tends to sit
	// at or near full clock.
	MinEnergyScale float64
}

// DVFS measures a compute-bound kernel across clock scales on the virtual
// GT240. Each operating point runs on its own card instance (the silicon
// perturbation is seeded by the card name, so every instance is the same
// "board"), which makes the points independent jobs for the worker pool.
//
// Cycle counts are clock-invariant — the card applies clock scaling
// analytically after the timing stage — so all six operating points share
// one content-addressed timing result: the first job to reach the
// simulation-result cache simulates the kernel (concurrent jobs are
// single-flighted behind it) and the rest re-evaluate only the power side.
func DVFS() (*DVFSResult, error) {
	scales := []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	points, err := runner.Map(len(scales), func(i int) (DVFSPoint, error) {
		card, err := hw.NewCardSession(config.GT240(), fmt.Sprintf("dvfs/%.1f", scales[i]))
		if err != nil {
			return DVFSPoint{}, err
		}
		if err := card.SetClockScale(scales[i]); err != nil {
			return DVFSPoint{}, err
		}
		l, mem := microFPBusy(card)
		m, err := card.MeasureKernel(l, mem, nil, 0)
		if err != nil {
			return DVFSPoint{}, err
		}
		return DVFSPoint{
			ClockScale:    scales[i],
			PowerW:        m.AvgPowerW,
			KernelSeconds: m.TrueKernelSeconds,
			EnergyMJ:      m.AvgPowerW * m.TrueKernelSeconds * 1e3,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &DVFSResult{Points: points, MinEnergyScale: 1}
	best := 0.0
	for _, pt := range points {
		if best == 0 || pt.EnergyMJ < best {
			best = pt.EnergyMJ
			res.MinEnergyScale = pt.ClockScale
		}
	}
	return res, nil
}
