package experiments

import (
	"gpusimpow/internal/config"
	"gpusimpow/internal/hw"
)

// ---------------------------------------------------------------------------
// E11 (extension): DVFS energy study — the same clock-scaling mechanism the
// static-power methodology uses (Section IV-B), swept across the supported
// range to chart the energy/performance trade-off of frequency scaling on
// the virtual card.
// ---------------------------------------------------------------------------

// DVFSPoint is one operating point of the sweep.
type DVFSPoint struct {
	ClockScale float64
	// PowerW is the measured average power while the kernel runs.
	PowerW float64
	// KernelSeconds is one execution's duration at this clock.
	KernelSeconds float64
	// EnergyMJ is the energy of one kernel execution in millijoules.
	EnergyMJ float64
}

// DVFSResult is the full sweep.
type DVFSResult struct {
	Points []DVFSPoint
	// MinEnergyScale is the clock scale with the lowest kernel energy: with
	// large static power, racing to idle usually wins, so this tends to sit
	// at or near full clock.
	MinEnergyScale float64
}

// DVFS measures a compute-bound kernel across clock scales on the virtual
// GT240.
func DVFS() (*DVFSResult, error) {
	card, err := hw.NewCard(config.GT240())
	if err != nil {
		return nil, err
	}
	res := &DVFSResult{MinEnergyScale: 1}
	best := 0.0
	for _, s := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		if err := card.SetClockScale(s); err != nil {
			return nil, err
		}
		l, mem := microFPBusy(card)
		m, err := card.MeasureKernel(l, mem, nil, 0)
		if err != nil {
			return nil, err
		}
		pt := DVFSPoint{
			ClockScale:    s,
			PowerW:        m.AvgPowerW,
			KernelSeconds: m.TrueKernelSeconds,
			EnergyMJ:      m.AvgPowerW * m.TrueKernelSeconds * 1e3,
		}
		res.Points = append(res.Points, pt)
		if best == 0 || pt.EnergyMJ < best {
			best = pt.EnergyMJ
			res.MinEnergyScale = s
		}
	}
	return res, card.SetClockScale(1.0)
}
