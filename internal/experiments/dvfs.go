package experiments

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/sweep"
)

// ---------------------------------------------------------------------------
// E11 (extension): DVFS energy study — the same clock-scaling mechanism the
// static-power methodology uses (Section IV-B), swept across the supported
// range to chart the energy/performance trade-off of frequency scaling on
// the virtual card.
// ---------------------------------------------------------------------------

// DVFSPoint is one operating point of the sweep.
type DVFSPoint struct {
	ClockScale float64
	// PowerW is the measured average power while the kernel runs.
	PowerW float64
	// KernelSeconds is one execution's duration at this clock.
	KernelSeconds float64
	// EnergyMJ is the energy of one kernel execution in millijoules.
	EnergyMJ float64
}

// DVFSResult is the full sweep.
type DVFSResult struct {
	Points []DVFSPoint
	// MinEnergyScale is the clock scale with the lowest kernel energy: with
	// large static power, racing to idle usually wins, so this tends to sit
	// at or near full clock.
	MinEnergyScale float64
}

// fpBusyWorkload is the compute-bound kernel occupying every core of the
// configured card (one resident block per core... times two, fully unrolled
// inner loop), measured over the reliable 150 ms window.
var fpBusyWorkload = &sweep.Workload{
	Name: "fpBusy",
	Build: func(cfg *config.GPU) (*sweep.Instance, error) {
		l, mem := busyFPKernel(cfg.NumCores()*2, 256, 40)
		return &sweep.Instance{Mem: mem, Units: []sweep.Unit{
			{Name: l.Prog.Name, Launch: l, MinWindowS: 0.150},
		}}, nil
	},
}

// DVFSSpec declares the clock-scale sweep on the virtual GT240: six
// operating points, each measured on its own card session. Cycle counts are
// clock-invariant (the card applies clock scaling analytically), so the
// planner folds all six cells into one timing group — the sweep simulates
// the kernel once and measures six times.
func DVFSSpec() *sweep.Spec {
	var vals []sweep.Value
	for _, s := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 1.0} {
		vals = append(vals, sweep.Value{Name: fmt.Sprintf("%.1f", s), ClockScale: s})
	}
	return &sweep.Spec{
		Name:     "dvfs",
		Title:    "DVFS energy study: compute-bound kernel across clock scales (GT240)",
		Axes:     []sweep.Axis{{Name: "scale", Values: vals}},
		Base:     config.GT240,
		Workload: func(*sweep.Cell) (*sweep.Workload, error) { return fpBusyWorkload, nil },
		Measure:  true,
		Session:  func(c *sweep.Cell) string { return "dvfs/" + c.Value("scale") },
	}
}

// DVFS measures a compute-bound kernel across clock scales on the virtual
// GT240 through the sweep engine and reduces the energy curve.
func DVFS() (*DVFSResult, error) {
	return runDVFS(nil)
}

// runDVFS plans, runs and reduces the sweep, optionally filtered.
func runDVFS(f sweep.Filter) (*DVFSResult, error) {
	plan, err := DVFSSpec().Plan(f)
	if err != nil {
		return nil, err
	}
	rs, err := plan.Run(nil)
	if err != nil {
		return nil, err
	}
	return dvfsReduce(plan.Records(rs))
}

// dvfsReduce folds the sweep's flat cell records into the energy curve —
// the one reduction DVFS(), the CLI report and the service's wire report
// all go through, so the curve is the same arithmetic the equivalence
// tests pin.
func dvfsReduce(recs []*sweep.CellRecord) (*DVFSResult, error) {
	res := &DVFSResult{MinEnergyScale: 1}
	best := 0.0
	for _, rec := range recs {
		if len(rec.Units) == 0 || rec.Units[0].Meas == nil {
			return nil, fmt.Errorf("experiments: dvfs: record %s carries no measurement", rec.CoordString())
		}
		m := rec.Units[0].Meas
		pt := DVFSPoint{
			ClockScale:    rec.ClockScale,
			PowerW:        m.AvgPowerW,
			KernelSeconds: m.KernelSeconds,
			EnergyMJ:      m.AvgPowerW * m.KernelSeconds * 1e3,
		}
		res.Points = append(res.Points, pt)
		if best == 0 || pt.EnergyMJ < best {
			best = pt.EnergyMJ
			res.MinEnergyScale = pt.ClockScale
		}
	}
	return res, nil
}
