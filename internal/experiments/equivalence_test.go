package experiments

// Equivalence contract of the sweep-engine refactor: every experiment
// re-expressed as a declarative sweep reports bit-identical metrics to the
// pre-refactor hand-rolled implementation (preserved in legacy_test.go).
// reflect.DeepEqual over the result structs compares every float bit for
// bit — no tolerance. `make race` runs these under the race detector, which
// also exercises the engine's group fan-out concurrently with the legacy
// runner.Map fan-out against the shared simulation-result cache.

import (
	"reflect"
	"testing"
)

func TestSweepEquivalenceDVFS(t *testing.T) {
	want, err := legacyDVFS()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DVFS()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep DVFS diverged from legacy path:\n got %+v\nwant %+v", got, want)
	}
}

func TestSweepEquivalenceAblations(t *testing.T) {
	cases := []struct {
		name   string
		legacy func() ([]AblationRow, error)
		sweep  func() ([]AblationRow, error)
	}{
		{"scoreboard", legacyAblationScoreboard, AblationScoreboard},
		{"l2", legacyAblationL2, AblationL2},
		{"processnode", legacyAblationProcessNode, AblationProcessNode},
		{"corecount", legacyAblationCoreCount, AblationCoreCount},
		{"scheduler", legacyAblationScheduler, AblationScheduler},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want, err := tc.legacy()
			if err != nil {
				t.Fatal(err)
			}
			got, err := tc.sweep()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("sweep ablation diverged from legacy path:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestSweepEquivalenceEnergyPerOp(t *testing.T) {
	want, err := legacyEnergyPerOp()
	if err != nil {
		t.Fatal(err)
	}
	got, err := EnergyPerOp()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep EnergyPerOp diverged from legacy path:\n got %+v\nwant %+v", got, want)
	}
}

func TestSweepEquivalenceFig6GT240(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep in -short mode")
	}
	want, err := legacyFig6("GT240")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fig6("GT240")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep Fig6 diverged from legacy path:\n got %+v\nwant %+v", got, want)
	}
}

func TestSweepEquivalenceFig6GTX580(t *testing.T) {
	if testing.Short() {
		t.Skip("full validation sweep in -short mode")
	}
	want, err := legacyFig6("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fig6("GTX580")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("sweep Fig6 diverged from legacy path:\n got %+v\nwant %+v", got, want)
	}
}
