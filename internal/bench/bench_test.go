package bench

import (
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

// runFunctional executes an instance's launches through the functional
// interpreter (no timing) and verifies the result.
func runFunctional(t *testing.T, inst *Instance) *kernel.InterpStats {
	t.Helper()
	total := &kernel.InterpStats{}
	for _, r := range inst.Runs {
		st, err := kernel.Interp(r.Launch, inst.Mem, cmemOf(r))
		if err != nil {
			t.Fatalf("%s / %s: %v", inst.Name, r.Name, err)
		}
		total.WarpInstrs += st.WarpInstrs
		total.ThreadInstrs += st.ThreadInstrs
		total.Divergences += st.Divergences
		total.Barriers += st.Barriers
		for i := range total.PerClass {
			total.PerClass[i] += st.PerClass[i]
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatalf("%s: verification failed: %v", inst.Name, err)
	}
	return total
}

func cmemOf(r Run) *kernel.ConstMem {
	if r.CMem != nil {
		return r.CMem
	}
	return nil
}

func TestAllBenchmarksFunctionallyCorrect(t *testing.T) {
	for _, f := range Suite() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			inst, err := f.Make()
			if err != nil {
				t.Fatal(err)
			}
			st := runFunctional(t, inst)
			if st.WarpInstrs == 0 {
				t.Error("no instructions executed")
			}
		})
	}
}

func TestSuiteMatchesTableI(t *testing.T) {
	// Table I: 11 benchmarks; Fig. 6 additionally shows needle.
	suite := Suite()
	if len(suite) != 12 {
		t.Fatalf("suite has %d benchmarks, want 12 (Table I + needle)", len(suite))
	}
	wantKernels := map[string]int{
		"backprop": 2, "heartwall": 1, "kmeans": 2, "pathfinder": 1,
		"bfs": 2, "hotspot": 1, "matrixMul": 1, "BlackScholes": 1,
		"mergeSort": 4, "scalarProd": 1, "vectorAdd": 1, "needle": 2,
	}
	totalKernels := 0
	for _, f := range suite {
		if want, ok := wantKernels[f.Name]; !ok || f.Kernels != want {
			t.Errorf("%s: %d kernels, want %d", f.Name, f.Kernels, wantKernels[f.Name])
		}
		totalKernels += f.Kernels
	}
	if totalKernels != 19 {
		t.Errorf("total distinct kernels %d, want 19 (Fig. 6 bars)", totalKernels)
	}
	// Every factory produces instances whose run names match its kernels.
	for _, f := range suite {
		inst, err := f.Make()
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		names := map[string]bool{}
		for _, r := range inst.Runs {
			names[r.Name] = true
			if err := r.Launch.Validate(); err != nil {
				t.Errorf("%s / %s: invalid launch: %v", f.Name, r.Name, err)
			}
		}
		if len(names) != f.Kernels {
			t.Errorf("%s: %d distinct kernel names, factory claims %d", f.Name, len(names), f.Kernels)
		}
	}
}

func TestBenchmarksFreshPerInstance(t *testing.T) {
	// Two instances must be independent: running one never affects the other.
	a1, err := VectorAdd()
	if err != nil {
		t.Fatal(err)
	}
	a2, err := VectorAdd()
	if err != nil {
		t.Fatal(err)
	}
	runFunctional(t, a1)
	// a2 not yet run: its output must still verify as unwritten -> fails.
	if err := a2.Verify(); err == nil {
		t.Error("unrun instance unexpectedly verifies (shared state?)")
	}
	runFunctional(t, a2)
}

func TestWorkloadCharacteristicsSpan(t *testing.T) {
	// The paper stresses that the benchmarks cover "an equally wide variety
	// of algorithmic (and thus, dynamic power) characteristics". Check a few
	// distinguishing features.
	get := func(name string) *kernel.InterpStats {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := f.Make()
		if err != nil {
			t.Fatal(err)
		}
		return runFunctional(t, inst)
	}
	bs := get("BlackScholes")
	if bs.PerClass[kernel.ClassSFU] == 0 {
		t.Error("BlackScholes must exercise the SFUs")
	}
	bfs := get("bfs")
	if bfs.Divergences == 0 {
		t.Error("bfs must diverge")
	}
	mm := get("matrixMul")
	if mm.Barriers == 0 {
		t.Error("matrixMul must synchronise at barriers")
	}
	va := get("vectorAdd")
	memRatioVA := float64(va.PerClass[kernel.ClassMem]) / float64(va.WarpInstrs)
	memRatioBS := float64(bs.PerClass[kernel.ClassMem]) / float64(bs.WarpInstrs)
	if memRatioVA <= memRatioBS {
		t.Error("vectorAdd should be markedly more memory-bound than BlackScholes")
	}
}

func TestMergeSortInPlaceKernelMarked(t *testing.T) {
	inst, err := MergeSort()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range inst.Runs {
		if r.Name == "mergeSort3" && r.MaxRepeats != 1 {
			t.Error("mergeSort3 must be marked non-repeatable (paper's measurement artifact)")
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("nonexistent"); err == nil {
		t.Error("unknown benchmark should error")
	}
	f, err := ByName("hotspot")
	if err != nil || f.Name != "hotspot" {
		t.Errorf("ByName(hotspot) = %v, %v", f.Name, err)
	}
}

// TestBenchmarksOnTimingSimulator runs two representative benchmarks through
// the full cycle-level simulator on the GT240 to check that timing-mode
// execution also produces correct results.
func TestBenchmarksOnTimingSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("timing simulation in -short mode")
	}
	for _, name := range []string{"vectorAdd", "mergeSort", "bfs"} {
		f, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := f.Make()
		if err != nil {
			t.Fatal(err)
		}
		g, err := sim.New(config.GT240())
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range inst.Runs {
			if _, err := g.Run(r.Launch, inst.Mem, cmemOf(r)); err != nil {
				t.Fatalf("%s / %s: %v", name, r.Name, err)
			}
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("%s (timing sim): %v", name, err)
		}
	}
}
