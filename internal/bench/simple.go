package bench

import (
	"fmt"

	"gpusimpow/internal/kernel"
)

// VectorAdd is the CUDA SDK vectorAdd sample: c[i] = a[i] + b[i].
func VectorAdd() (*Instance, error) {
	const n = 8192
	const block = 256

	b := kernel.NewBuilder("vectorAdd", 12).Params(4)
	emitGlobalTidX(b, 0, 1, 2)
	b.LdParam(3, 3)
	emitGuardExit(b, 0, 3, 4)
	b.LdParam(5, 0)
	b.LdParam(6, 1)
	b.LdParam(7, 2)
	b.IShl(8, kernel.R(0), kernel.I(2))
	b.IAdd(5, kernel.R(5), kernel.R(8))
	b.IAdd(6, kernel.R(6), kernel.R(8))
	b.IAdd(7, kernel.R(7), kernel.R(8))
	b.Ld(kernel.SpaceGlobal, 9, kernel.R(5), 0)
	b.Ld(kernel.SpaceGlobal, 10, kernel.R(6), 0)
	b.FAdd(11, kernel.R(9), kernel.R(10))
	b.St(kernel.SpaceGlobal, kernel.R(7), kernel.R(11), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 1}
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = rnd.rangeF32(-10, 10)
		bv[i] = rnd.rangeF32(-10, 10)
	}
	aAddr := mem.AllocF32(av)
	bAddr := mem.AllocF32(bv)
	cAddr := mem.AllocZeroF32(n)

	inst := &Instance{
		Name: "vectorAdd",
		Mem:  mem,
		Runs: []Run{{
			Name: "vectorAdd",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: n / block, Y: 1},
				Block:  kernel.Dim{X: block, Y: 1},
				Params: []uint32{aAddr, bAddr, cAddr, n},
			},
		}},
	}
	inst.Verify = func() error {
		got := mem.ReadF32Slice(cAddr, n)
		for i := range got {
			if got[i] != av[i]+bv[i] {
				return fmt.Errorf("vectorAdd: c[%d] = %v, want %v", i, got[i], av[i]+bv[i])
			}
		}
		return nil
	}
	return inst, nil
}

// ScalarProd is the CUDA SDK scalarProd sample: dot products of vector
// pairs, one block per pair with a shared-memory tree reduction.
func ScalarProd() (*Instance, error) {
	const pairs = 48
	const vlen = 2048
	const block = 128

	// Params: 0=a, 1=b, 2=out, 3=vlen.
	b := kernel.NewBuilder("scalarProd", 16).Params(4).SMem(block * 4)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.LdParam(2, 3) // vlen
	// Element base of this pair: pair*vlen.
	b.IMul(3, kernel.R(1), kernel.R(2))
	b.LdParam(4, 0)
	b.LdParam(5, 1)
	// acc = 0; for i = tid; i < vlen; i += block
	b.MovF(6, 0)
	b.Mov(7, kernel.R(0)) // i
	b.Label("loop")
	b.IAdd(8, kernel.R(3), kernel.R(7)) // element index
	b.IShl(8, kernel.R(8), kernel.I(2))
	b.IAdd(9, kernel.R(4), kernel.R(8))
	b.IAdd(10, kernel.R(5), kernel.R(8))
	b.Ld(kernel.SpaceGlobal, 11, kernel.R(9), 0)
	b.Ld(kernel.SpaceGlobal, 12, kernel.R(10), 0)
	b.FFma(6, kernel.R(11), kernel.R(12), kernel.R(6))
	b.SReg(13, kernel.SpecNTidX)
	b.IAdd(7, kernel.R(7), kernel.R(13))
	b.ISet(14, kernel.CmpLT, kernel.R(7), kernel.R(2))
	b.When(14).Bra("loop", "reduce")
	b.Label("reduce")
	// smem[tid] = acc
	b.IShl(13, kernel.R(0), kernel.I(2))
	b.St(kernel.SpaceShared, kernel.R(13), kernel.R(6), 0)
	b.Bar()
	// Tree reduction: stride = block/2 .. 1.
	b.MovI(14, block/2)
	b.Label("rloop")
	b.ISet(15, kernel.CmpLT, kernel.R(0), kernel.R(14))
	b.When(15).Bra("doadd", "skip")
	b.BraUni("skip")
	b.Label("doadd")
	b.IAdd(8, kernel.R(0), kernel.R(14))
	b.IShl(8, kernel.R(8), kernel.I(2))
	b.Ld(kernel.SpaceShared, 9, kernel.R(8), 0)
	b.Ld(kernel.SpaceShared, 10, kernel.R(13), 0)
	b.FAdd(9, kernel.R(9), kernel.R(10))
	b.St(kernel.SpaceShared, kernel.R(13), kernel.R(9), 0)
	b.Label("skip")
	b.Bar()
	b.IShr(14, kernel.R(14), kernel.I(1))
	b.ISet(15, kernel.CmpGT, kernel.R(14), kernel.I(0))
	b.When(15).Bra("rloop", "done")
	b.Label("done")
	// Thread 0 writes the result.
	b.ISet(15, kernel.CmpNE, kernel.R(0), kernel.I(0))
	b.When(15).Exit()
	b.Ld(kernel.SpaceShared, 9, kernel.U(0), 0)
	b.LdParam(10, 2)
	b.IShl(11, kernel.R(1), kernel.I(2))
	b.IAdd(10, kernel.R(10), kernel.R(11))
	b.St(kernel.SpaceGlobal, kernel.R(10), kernel.R(9), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 2}
	av := make([]float32, pairs*vlen)
	bv := make([]float32, pairs*vlen)
	for i := range av {
		av[i] = rnd.rangeF32(-1, 1)
		bv[i] = rnd.rangeF32(-1, 1)
	}
	aAddr := mem.AllocF32(av)
	bAddr := mem.AllocF32(bv)
	outAddr := mem.AllocZeroF32(pairs)

	inst := &Instance{
		Name: "scalarProd",
		Mem:  mem,
		Runs: []Run{{
			Name: "scalarProd",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: pairs, Y: 1},
				Block:  kernel.Dim{X: block, Y: 1},
				Params: []uint32{aAddr, bAddr, outAddr, vlen},
			},
		}},
	}
	inst.Verify = func() error {
		got := mem.ReadF32Slice(outAddr, pairs)
		for p := 0; p < pairs; p++ {
			// Reference in the same accumulation order per lane, then tree
			// order differs; accept small tolerance.
			var want float64
			for i := 0; i < vlen; i++ {
				want += float64(av[p*vlen+i]) * float64(bv[p*vlen+i])
			}
			if !approxEq(got[p], float32(want), 1e-3) {
				return fmt.Errorf("scalarProd: out[%d] = %v, want ~%v", p, got[p], want)
			}
		}
		return nil
	}
	return inst, nil
}
