package bench

import (
	"fmt"
	"sort"

	"gpusimpow/internal/kernel"
)

// MergeSort is the CUDA SDK parallel merge sort, structured as the sample's
// four kernels: mergeSort1 sorts 128-element tiles in shared memory with a
// bitonic network; mergeSort2..4 are rank-based merge rounds that double the
// sorted-run length each time (128 -> 256 -> 512 -> 1024). mergeSort3 is the
// run that, like the paper's, "does in-place processing of its data" and is
// therefore measured without repetition — the source of the paper's largest
// relative error.
func MergeSort() (*Instance, error) {
	const n = 1024
	const tile0 = 128
	const block = 64

	prog1, err := bitonicTileSort(tile0, block)
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 12}
	data := make([]int32, n)
	for i := range data {
		data[i] = int32(rnd.intn(1_000_000))
	}
	bufA := mem.AllocI32(data)
	bufB := mem.Alloc(n * 4)

	inst := &Instance{Name: "mergeSort", Mem: mem}
	inst.Runs = append(inst.Runs, Run{
		Name: "mergeSort1",
		Launch: &kernel.Launch{
			Prog:   prog1,
			Grid:   kernel.Dim{X: n / tile0, Y: 1},
			Block:  kernel.Dim{X: block, Y: 1},
			Params: []uint32{bufA},
		},
	})

	// Merge rounds ping-pong between the buffers.
	src, dst := bufA, bufB
	tileLen := tile0
	for round := 2; round <= 4; round++ {
		prog, err := mergeByRank(fmt.Sprintf("mergeSort%d", round), tileLen)
		if err != nil {
			return nil, err
		}
		inst.Runs = append(inst.Runs, Run{
			Name: prog.Name,
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: n / 256, Y: 1},
				Block:  kernel.Dim{X: 256, Y: 1},
				Params: []uint32{src, dst, uint32(n)},
			},
			// mergeSort3 processes its data in place and cannot be repeated
			// for measurement (the paper's 35.4 % outlier); the other rounds
			// were modified to repeat, as the paper did.
			MaxRepeats: map[bool]int{true: 1, false: 0}[round == 3],
		})
		src, dst = dst, src
		tileLen *= 2
	}
	finalBuf := src

	inst.Verify = func() error {
		got := mem.ReadI32Slice(finalBuf, n)
		want := append([]int32(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range got {
			if got[i] != want[i] {
				return fmt.Errorf("mergeSort: out[%d] = %d, want %d", i, got[i], want[i])
			}
		}
		return nil
	}
	return inst, nil
}

// bitonicTileSort builds the shared-memory bitonic sorter: each block loads
// `tileLen` elements (two per thread), runs the full bitonic network with
// barriers between stages, and writes the sorted tile back.
func bitonicTileSort(tileLen, block int) (*kernel.Program, error) {
	b := kernel.NewBuilder("mergeSort1", 20).Params(1).SMem(tileLen * 4)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.LdParam(2, 0)
	b.IMul(3, kernel.R(1), kernel.I(int32(tileLen*4)))
	b.IAdd(2, kernel.R(2), kernel.R(3)) // tile base (global, bytes)
	// Load two elements per thread into shared memory.
	for half := 0; half < 2; half++ {
		b.IAdd(4, kernel.R(0), kernel.I(int32(half*block)))
		b.IShl(4, kernel.R(4), kernel.I(2))
		b.IAdd(5, kernel.R(2), kernel.R(4))
		b.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0)
		b.St(kernel.SpaceShared, kernel.R(4), kernel.R(6), 0)
	}
	b.Bar()
	step := 0
	for kk := 2; kk <= tileLen; kk *= 2 {
		for j := kk / 2; j >= 1; j /= 2 {
			// Element index: i = (t % j) + 2*j*(t / j).
			log2j := 0
			for 1<<log2j != j {
				log2j++
			}
			b.IAnd(4, kernel.R(0), kernel.I(int32(j-1)))
			b.IShr(5, kernel.R(0), kernel.I(int32(log2j)))
			b.IMul(5, kernel.R(5), kernel.I(int32(2*j)))
			b.IAdd(4, kernel.R(4), kernel.R(5)) // i
			// asc = ((i & kk) == 0)
			b.IAnd(6, kernel.R(4), kernel.I(int32(kk)))
			b.ISet(6, kernel.CmpEQ, kernel.R(6), kernel.I(0))
			b.IShl(7, kernel.R(4), kernel.I(2)) // &sm[i]
			b.Ld(kernel.SpaceShared, 8, kernel.R(7), 0)
			b.Ld(kernel.SpaceShared, 9, kernel.R(7), int32(4*j))
			// swap if (asc && x>y) || (!asc && x<y)
			b.ISet(10, kernel.CmpGT, kernel.R(8), kernel.R(9))
			b.ISet(11, kernel.CmpLT, kernel.R(8), kernel.R(9))
			b.ISel(10, kernel.R(6), kernel.R(10), kernel.R(11))
			b.ISel(12, kernel.R(10), kernel.R(9), kernel.R(8)) // new x
			b.ISel(13, kernel.R(10), kernel.R(8), kernel.R(9)) // new y
			b.St(kernel.SpaceShared, kernel.R(7), kernel.R(12), 0)
			b.St(kernel.SpaceShared, kernel.R(7), kernel.R(13), int32(4*j))
			b.Bar()
			step++
		}
	}
	// Write back.
	for half := 0; half < 2; half++ {
		b.IAdd(4, kernel.R(0), kernel.I(int32(half*block)))
		b.IShl(4, kernel.R(4), kernel.I(2))
		b.Ld(kernel.SpaceShared, 6, kernel.R(4), 0)
		b.IAdd(5, kernel.R(2), kernel.R(4))
		b.St(kernel.SpaceGlobal, kernel.R(5), kernel.R(6), 0)
	}
	b.Exit()
	return b.Build()
}

// mergeByRank builds the rank-based merge: one thread per element finds its
// destination as own-offset + rank-in-sibling-tile via a branchless binary
// search (fixed log2(tileLen) steps, stable tie-breaking).
func mergeByRank(name string, tileLen int) (*kernel.Program, error) {
	log2t := 0
	for 1<<log2t != tileLen {
		log2t++
	}
	// Params: 0=src, 1=dst, 2=n.
	b := kernel.NewBuilder(name, 24).Params(3)
	emitGlobalTidX(b, 0, 1, 2)
	b.LdParam(3, 2)
	emitGuardExit(b, 0, 3, 4)
	// pairBase = i & ~(2*tileLen-1); within = i & (2*tileLen-1)
	b.IAnd(4, kernel.R(0), kernel.I(int32(2*tileLen-1)))           // within
	b.ISub(5, kernel.R(0), kernel.R(4))                            // pairBase
	b.ISet(6, kernel.CmpLT, kernel.R(4), kernel.I(int32(tileLen))) // isA
	b.IAnd(7, kernel.R(4), kernel.I(int32(tileLen-1)))             // ownLocal
	// siblingBase = pairBase + tileLen*isA
	b.IMul(8, kernel.R(6), kernel.I(int32(tileLen)))
	b.IAdd(8, kernel.R(8), kernel.R(5))
	// Load own element.
	b.LdParam(9, 0)
	b.IAdd(10, kernel.R(5), kernel.R(4))
	b.IShl(10, kernel.R(10), kernel.I(2))
	b.IAdd(10, kernel.R(9), kernel.R(10))
	b.Ld(kernel.SpaceGlobal, 11, kernel.R(10), 0) // key
	// Stable search threshold: A elements use strict '<', B elements '<=',
	// i.e. compare against key + (1 - isA).
	b.MovI(12, 1)
	b.ISub(12, kernel.R(12), kernel.R(6))
	b.IAdd(12, kernel.R(11), kernel.R(12)) // key'
	// Branchless binary search over the sibling tile: a fixed number of
	// steps with updates masked once lo == hi (the interval can collapse a
	// step early on right-leaning paths).
	b.MovI(13, 0)              // lo
	b.MovI(14, int32(tileLen)) // hi
	for it := 0; it <= log2t; it++ {
		b.IAdd(15, kernel.R(13), kernel.R(14))
		b.IShr(15, kernel.R(15), kernel.I(1))                // mid
		b.IMin(22, kernel.R(15), kernel.I(int32(tileLen-1))) // clamped for the load
		b.IAdd(16, kernel.R(8), kernel.R(22))
		b.IShl(16, kernel.R(16), kernel.I(2))
		b.IAdd(16, kernel.R(9), kernel.R(16))
		b.Ld(kernel.SpaceGlobal, 17, kernel.R(16), 0) // v = sibling[mid]
		b.ISet(18, kernel.CmpLT, kernel.R(17), kernel.R(12))
		b.ISet(23, kernel.CmpLT, kernel.R(13), kernel.R(14)) // live = lo < hi
		b.IAnd(18, kernel.R(18), kernel.R(23))               // go right, live
		b.INot(21, kernel.R(18))
		b.IAnd(21, kernel.R(21), kernel.I(1))
		b.IAnd(21, kernel.R(21), kernel.R(23)) // go left, live
		b.IAdd(19, kernel.R(15), kernel.I(1))
		b.ISel(13, kernel.R(18), kernel.R(19), kernel.R(13)) // lo = mid+1 when right
		b.ISel(14, kernel.R(21), kernel.R(15), kernel.R(14)) // hi = mid when left
	}
	// dst[pairBase + ownLocal + lo] = key
	b.LdParam(20, 1)
	b.IAdd(21, kernel.R(5), kernel.R(7))
	b.IAdd(21, kernel.R(21), kernel.R(13))
	b.IShl(21, kernel.R(21), kernel.I(2))
	b.IAdd(21, kernel.R(20), kernel.R(21))
	b.St(kernel.SpaceGlobal, kernel.R(21), kernel.R(11), 0)
	b.Exit()
	return b.Build()
}
