package bench

import (
	"fmt"
	"math"

	"gpusimpow/internal/kernel"
)

// Black-Scholes constants (CUDA SDK values).
const (
	bsRiskFree   = float32(0.02)
	bsVolatility = float32(0.30)
	// Cumulative normal distribution polynomial (Abramowitz & Stegun).
	bsA1 = float32(0.31938153)
	bsA2 = float32(-0.356563782)
	bsA3 = float32(1.781477937)
	bsA4 = float32(-1.821255978)
	bsA5 = float32(1.330274429)

	ln2     = float32(0.6931471805599453)
	log2e   = float32(1.4426950408889634)
	rsqt2pi = float32(0.3989422804014327)
)

// emitCND emits the cumulative-normal-distribution of register d into
// register out, clobbering t1..t4 and p.
func emitCND(b *kernel.Builder, d, out, t1, t2, t3, p int) {
	b.FAbs(t1, kernel.R(d)) // |d|
	// K = 1/(1 + 0.2316419 |d|)
	b.FFma(t1, kernel.R(t1), kernel.F(0.2316419), kernel.F(1))
	b.Rcp(t1, kernel.R(t1))
	// Horner: poly = ((((a5 K + a4) K + a3) K + a2) K + a1) K
	b.MovF(t2, bsA5)
	b.FFma(t2, kernel.R(t2), kernel.R(t1), kernel.F(bsA4))
	b.FFma(t2, kernel.R(t2), kernel.R(t1), kernel.F(bsA3))
	b.FFma(t2, kernel.R(t2), kernel.R(t1), kernel.F(bsA2))
	b.FFma(t2, kernel.R(t2), kernel.R(t1), kernel.F(bsA1))
	b.FMul(t2, kernel.R(t2), kernel.R(t1))
	// pdf = rsqt2pi * 2^(-d^2/2 * log2e)
	b.FMul(t3, kernel.R(d), kernel.R(d))
	b.FMul(t3, kernel.R(t3), kernel.F(-0.5*log2e))
	b.Ex2(t3, kernel.R(t3))
	b.FMul(t3, kernel.R(t3), kernel.F(rsqt2pi))
	// cnd = pdf * poly; mirror for d > 0.
	b.FMul(out, kernel.R(t3), kernel.R(t2))
	b.FSet(p, kernel.CmpGT, kernel.R(d), kernel.F(0))
	b.FSub(t3, kernel.F(1), kernel.R(out))
	b.ISel(out, kernel.R(p), kernel.R(t3), kernel.R(out))
}

// cndRef mirrors emitCND on the host in float32 steps.
func cndRef(d float32) float32 {
	k := float32(1) / (1 + 0.2316419*float32(math.Abs(float64(d))))
	poly := ((((bsA5*k+bsA4)*k+bsA3)*k+bsA2)*k + bsA1) * k
	pdf := rsqt2pi * float32(math.Exp2(float64(-0.5*log2e*d*d)))
	cnd := pdf * poly
	if d > 0 {
		cnd = 1 - cnd
	}
	return cnd
}

// BlackScholes is the CUDA SDK option-pricing benchmark: an SFU-heavy
// kernel evaluating the Black-Scholes PDE closed form per option.
func BlackScholes() (*Instance, error) {
	const n = 4096
	const block = 128

	// Params: 0=S, 1=X, 2=T, 3=call, 4=put, 5=n.
	b := kernel.NewBuilder("BlackScholes", 28).Params(6)
	emitGlobalTidX(b, 0, 1, 2)
	b.LdParam(3, 5)
	emitGuardExit(b, 0, 3, 4)
	b.IShl(4, kernel.R(0), kernel.I(2)) // byte offset
	b.LdParam(1, 0)
	b.IAdd(1, kernel.R(1), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 5, kernel.R(1), 0) // S
	b.LdParam(1, 1)
	b.IAdd(1, kernel.R(1), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 6, kernel.R(1), 0) // X
	b.LdParam(1, 2)
	b.IAdd(1, kernel.R(1), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 7, kernel.R(1), 0) // T

	// sqrtT, V*sqrtT and its reciprocal.
	b.Sqrt(8, kernel.R(7))
	b.FMul(13, kernel.R(8), kernel.F(bsVolatility)) // V sqrtT
	b.Rcp(12, kernel.R(13))
	// ln(S/X) = lg2(S * (1/X)) * ln2
	b.Rcp(9, kernel.R(6))
	b.FMul(9, kernel.R(5), kernel.R(9))
	b.Lg2(9, kernel.R(9))
	b.FMul(9, kernel.R(9), kernel.F(ln2))
	// (R + V^2/2) T
	b.FMul(10, kernel.R(7), kernel.F(bsRiskFree+0.5*bsVolatility*bsVolatility))
	// d1, d2
	b.FAdd(11, kernel.R(9), kernel.R(10))
	b.FMul(11, kernel.R(11), kernel.R(12)) // d1
	b.FSub(14, kernel.R(11), kernel.R(13)) // d2

	emitCND(b, 11, 15, 17, 18, 19, 20) // cnd1 -> r15
	emitCND(b, 14, 16, 17, 18, 19, 20) // cnd2 -> r16

	// expRT = 2^(-R T log2e); XexpRT = X * expRT
	b.FMul(21, kernel.R(7), kernel.F(-bsRiskFree*log2e))
	b.Ex2(21, kernel.R(21))
	b.FMul(21, kernel.R(6), kernel.R(21))
	// call = S cnd1 - XexpRT cnd2
	b.FMul(22, kernel.R(5), kernel.R(15))
	b.FNeg(23, kernel.R(21))
	b.FFma(22, kernel.R(23), kernel.R(16), kernel.R(22))
	// put = XexpRT (1-cnd2) - S (1-cnd1)
	b.FSub(24, kernel.F(1), kernel.R(16))
	b.FMul(24, kernel.R(21), kernel.R(24))
	b.FSub(25, kernel.F(1), kernel.R(15))
	b.FMul(25, kernel.R(5), kernel.R(25))
	b.FSub(24, kernel.R(24), kernel.R(25))

	b.LdParam(1, 3)
	b.IAdd(1, kernel.R(1), kernel.R(4))
	b.St(kernel.SpaceGlobal, kernel.R(1), kernel.R(22), 0)
	b.LdParam(1, 4)
	b.IAdd(1, kernel.R(1), kernel.R(4))
	b.St(kernel.SpaceGlobal, kernel.R(1), kernel.R(24), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 6}
	sv := make([]float32, n)
	xv := make([]float32, n)
	tv := make([]float32, n)
	for i := range sv {
		sv[i] = rnd.rangeF32(5, 30)
		xv[i] = rnd.rangeF32(1, 100)
		tv[i] = rnd.rangeF32(0.25, 10)
	}
	sAddr := mem.AllocF32(sv)
	xAddr := mem.AllocF32(xv)
	tAddr := mem.AllocF32(tv)
	callAddr := mem.AllocZeroF32(n)
	putAddr := mem.AllocZeroF32(n)

	inst := &Instance{
		Name: "BlackScholes",
		Mem:  mem,
		Runs: []Run{{
			Name: "BlackScholes",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: n / block, Y: 1},
				Block:  kernel.Dim{X: block, Y: 1},
				Params: []uint32{sAddr, xAddr, tAddr, callAddr, putAddr, n},
			},
		}},
	}
	inst.Verify = func() error {
		call := mem.ReadF32Slice(callAddr, n)
		put := mem.ReadF32Slice(putAddr, n)
		for i := 0; i < n; i++ {
			s, x, tt := sv[i], xv[i], tv[i]
			sqrtT := float32(math.Sqrt(float64(tt)))
			d1 := (float32(math.Log(float64(s/x))) + (bsRiskFree+0.5*bsVolatility*bsVolatility)*tt) / (bsVolatility * sqrtT)
			d2 := d1 - bsVolatility*sqrtT
			expRT := x * float32(math.Exp(float64(-bsRiskFree*tt)))
			wantCall := s*cndRef(d1) - expRT*cndRef(d2)
			wantPut := expRT*(1-cndRef(d2)) - s*(1-cndRef(d1))
			if !approxEq(call[i], wantCall, 5e-3) {
				return fmt.Errorf("BlackScholes: call[%d] = %v, want ~%v (S=%v X=%v T=%v)", i, call[i], wantCall, s, x, tt)
			}
			if !approxEq(put[i], wantPut, 5e-3) {
				return fmt.Errorf("BlackScholes: put[%d] = %v, want ~%v", i, put[i], wantPut)
			}
		}
		return nil
	}
	return inst, nil
}
