package bench

import (
	"fmt"

	"gpusimpow/internal/kernel"
)

// BFS is the Rodinia breadth-first search: a frontier-expansion kernel
// (bfs1) and a frontier-update kernel (bfs2), launched once per BFS level —
// the classic irregular, divergence-heavy GPGPU workload.
func BFS() (*Instance, error) {
	const n = 1024
	const degree = 4

	// Build a random directed graph in CSR form; chain edges i -> i+1 keep
	// it connected, random edges keep the level count small.
	rnd := &lcg{s: 10}
	adj := make([][]int32, n)
	for i := 0; i < n; i++ {
		if i+1 < n {
			adj[i] = append(adj[i], int32(i+1))
		}
		for e := 0; e < degree; e++ {
			adj[i] = append(adj[i], int32(rnd.intn(n)))
		}
	}
	rowOff := make([]int32, n+1)
	var cols []int32
	for i := 0; i < n; i++ {
		rowOff[i+1] = rowOff[i] + int32(len(adj[i]))
		cols = append(cols, adj[i]...)
	}

	// Host-side reference BFS (also yields the level count).
	ref := make([]int32, n)
	for i := range ref {
		ref[i] = -1
	}
	ref[0] = 0
	frontier := []int32{0}
	levels := 0
	for len(frontier) > 0 {
		var next []int32
		for _, u := range frontier {
			for _, v := range adj[u] {
				if ref[v] < 0 {
					ref[v] = ref[u] + 1
					next = append(next, v)
				}
			}
		}
		frontier = next
		levels++
	}

	// --- Kernel 1: expand the frontier ---
	// Params: 0=rowOff, 1=cols, 2=mask, 3=updating, 4=visited, 5=cost, 6=n.
	b1 := kernel.NewBuilder("bfs1", 22).Params(7)
	emitGlobalTidX(b1, 0, 1, 2)
	b1.LdParam(3, 6)
	emitGuardExit(b1, 0, 3, 4)
	b1.IShl(4, kernel.R(0), kernel.I(2)) // byte offset of this node
	b1.LdParam(5, 2)
	b1.IAdd(5, kernel.R(5), kernel.R(4))
	b1.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0) // mask[tid]
	b1.ISet(7, kernel.CmpEQ, kernel.R(6), kernel.I(0))
	b1.When(7).Exit() // not in frontier
	b1.MovI(6, 0)
	b1.St(kernel.SpaceGlobal, kernel.R(5), kernel.R(6), 0) // mask[tid] = 0
	// cost[tid]
	b1.LdParam(8, 5)
	b1.IAdd(9, kernel.R(8), kernel.R(4))
	b1.Ld(kernel.SpaceGlobal, 10, kernel.R(9), 0) // myCost
	b1.IAdd(10, kernel.R(10), kernel.I(1))
	// Edge range.
	b1.LdParam(11, 0)
	b1.IAdd(12, kernel.R(11), kernel.R(4))
	b1.Ld(kernel.SpaceGlobal, 13, kernel.R(12), 0) // start
	b1.Ld(kernel.SpaceGlobal, 14, kernel.R(12), 4) // end
	b1.LdParam(15, 1)                              // cols
	b1.LdParam(16, 4)                              // visited
	b1.LdParam(17, 3)                              // updating
	b1.Label("edges")
	b1.ISet(18, kernel.CmpGE, kernel.R(13), kernel.R(14))
	b1.When(18).Bra("done", "done")
	b1.IShl(19, kernel.R(13), kernel.I(2))
	b1.IAdd(19, kernel.R(15), kernel.R(19))
	b1.Ld(kernel.SpaceGlobal, 20, kernel.R(19), 0) // neighbour id
	b1.IShl(20, kernel.R(20), kernel.I(2))
	b1.IAdd(19, kernel.R(16), kernel.R(20))
	b1.Ld(kernel.SpaceGlobal, 21, kernel.R(19), 0) // visited[nb]
	b1.ISet(21, kernel.CmpEQ, kernel.R(21), kernel.I(0))
	b1.Unless(21).Bra("next", "next")
	// cost[nb] = myCost; updating[nb] = 1 (benign race: same value).
	b1.IAdd(19, kernel.R(8), kernel.R(20))
	b1.St(kernel.SpaceGlobal, kernel.R(19), kernel.R(10), 0)
	b1.IAdd(19, kernel.R(17), kernel.R(20))
	b1.MovI(6, 1)
	b1.St(kernel.SpaceGlobal, kernel.R(19), kernel.R(6), 0)
	b1.Label("next")
	b1.IAdd(13, kernel.R(13), kernel.I(1))
	b1.BraUni("edges")
	b1.Label("done")
	b1.Exit()
	prog1, err := b1.Build()
	if err != nil {
		return nil, err
	}

	// --- Kernel 2: commit the next frontier ---
	// Params: 0=mask, 1=updating, 2=visited, 3=continueFlag, 4=n.
	b2 := kernel.NewBuilder("bfs2", 14).Params(5)
	emitGlobalTidX(b2, 0, 1, 2)
	b2.LdParam(3, 4)
	emitGuardExit(b2, 0, 3, 4)
	b2.IShl(4, kernel.R(0), kernel.I(2))
	b2.LdParam(5, 1)
	b2.IAdd(5, kernel.R(5), kernel.R(4))
	b2.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0) // updating[tid]
	b2.ISet(7, kernel.CmpEQ, kernel.R(6), kernel.I(0))
	b2.When(7).Exit()
	b2.MovI(8, 1)
	b2.LdParam(9, 0)
	b2.IAdd(9, kernel.R(9), kernel.R(4))
	b2.St(kernel.SpaceGlobal, kernel.R(9), kernel.R(8), 0) // mask = 1
	b2.LdParam(9, 2)
	b2.IAdd(9, kernel.R(9), kernel.R(4))
	b2.St(kernel.SpaceGlobal, kernel.R(9), kernel.R(8), 0) // visited = 1
	b2.LdParam(9, 3)
	b2.St(kernel.SpaceGlobal, kernel.R(9), kernel.R(8), 0) // continue = 1
	b2.MovI(8, 0)
	b2.St(kernel.SpaceGlobal, kernel.R(5), kernel.R(8), 0) // updating = 0
	b2.Exit()
	prog2, err := b2.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rowAddr := mem.AllocI32(rowOff)
	colAddr := mem.AllocI32(cols)
	maskAddr := mem.Alloc(n * 4)
	updAddr := mem.Alloc(n * 4)
	visAddr := mem.Alloc(n * 4)
	costAddr := mem.Alloc(n * 4)
	flagAddr := mem.Alloc(4)
	// Source node 0 forms the initial frontier.
	mem.Write32(maskAddr, 1)
	mem.Write32(visAddr, 1)
	for i := 1; i < n; i++ {
		mem.Write32(costAddr+uint32(4*i), uint32(0xFFFFFFFF)) // -1
	}

	inst := &Instance{Name: "bfs", Mem: mem}
	grid := kernel.Dim{X: n / 256, Y: 1}
	block := kernel.Dim{X: 256, Y: 1}
	for lvl := 0; lvl < levels; lvl++ {
		inst.Runs = append(inst.Runs,
			Run{
				Name: "bfs1",
				Launch: &kernel.Launch{
					Prog: prog1, Grid: grid, Block: block,
					Params: []uint32{rowAddr, colAddr, maskAddr, updAddr, visAddr, costAddr, n},
				},
			},
			Run{
				Name: "bfs2",
				Launch: &kernel.Launch{
					Prog: prog2, Grid: grid, Block: block,
					Params: []uint32{maskAddr, updAddr, visAddr, flagAddr, n},
				},
			},
		)
	}
	inst.Verify = func() error {
		got := mem.ReadI32Slice(costAddr, n)
		for i := 0; i < n; i++ {
			if got[i] != ref[i] {
				return fmt.Errorf("bfs: cost[%d] = %d, want %d", i, got[i], ref[i])
			}
		}
		return nil
	}
	return inst, nil
}

// Needle is the Rodinia Needleman-Wunsch sequence alignment benchmark: the
// DP score matrix is processed in 16x16 tiles along anti-diagonals, with
// needle1 sweeping the growing half of the matrix and needle2 the shrinking
// half (two kernels, as in Fig. 6).
func Needle() (*Instance, error) {
	const nTiles = 6
	const tile = 16
	const n = nTiles * tile // sequence length; matrix is (n+1)^2
	const dim = n + 1
	const penalty = 2

	rnd := &lcg{s: 11}
	// Similarity matrix entries for cells (1..n, 1..n).
	sim := make([]int32, dim*dim)
	for i := 1; i < dim; i++ {
		for j := 1; j < dim; j++ {
			sim[i*dim+j] = int32(rnd.intn(20)) - 10
		}
	}
	// Score matrix with initialised borders.
	score := make([]int32, dim*dim)
	for i := 0; i < dim; i++ {
		score[i*dim] = int32(-i * penalty)
		score[i] = int32(-i * penalty)
	}

	// Host reference DP.
	ref := append([]int32(nil), score...)
	for i := 1; i < dim; i++ {
		for j := 1; j < dim; j++ {
			d := ref[(i-1)*dim+(j-1)] + sim[i*dim+j]
			u := ref[(i-1)*dim+j] - penalty
			l := ref[i*dim+(j-1)] - penalty
			m := d
			if u > m {
				m = u
			}
			if l > m {
				m = l
			}
			ref[i*dim+j] = m
		}
	}

	// One program serves both kernels; the tile-coordinate mapping differs
	// via the params: tileX = bid*dxBid + xOff; tileY = yOff - bid.
	// Params: 0=score, 1=sim, 2=xOff, 3=yOff.
	build := func(name string) (*kernel.Program, error) {
		b := kernel.NewBuilder(name, 26).Params(4).SMem((tile + 1) * (tile + 1) * 4)
		b.SReg(0, kernel.SpecTidX) // t in [0, tile)
		b.SReg(1, kernel.SpecCtaX)
		b.LdParam(2, 2)
		b.IAdd(2, kernel.R(2), kernel.R(1)) // tileX
		b.LdParam(3, 3)
		b.ISub(3, kernel.R(3), kernel.R(1)) // tileY
		// Global base cell of the tile: row = tileY*tile + 1, col = tileX*tile + 1.
		b.IMul(4, kernel.R(3), kernel.I(tile))
		b.IAdd(4, kernel.R(4), kernel.I(1)) // rowBase
		b.IMul(5, kernel.R(2), kernel.I(tile))
		b.IAdd(5, kernel.R(5), kernel.I(1)) // colBase
		b.LdParam(6, 0)                     // score base
		// Load halo: sm[0][t+1] = score[rowBase-1][colBase+t]
		const smw = tile + 1
		gaddr := func(dst, row, col int, rowImm, colImm int32) {
			// dst = score + ((row+rowImm)*dim + col+colImm)*4
			b.IAdd(dst, kernel.R(row), kernel.I(rowImm))
			b.IMul(dst, kernel.R(dst), kernel.I(dim))
			b.IAdd(dst, kernel.R(dst), kernel.R(col))
			b.IAdd(dst, kernel.R(dst), kernel.I(colImm))
			b.IShl(dst, kernel.R(dst), kernel.I(2))
			b.IAdd(dst, kernel.R(6), kernel.R(dst))
		}
		// top halo (col varies with t)
		b.IAdd(7, kernel.R(5), kernel.R(0)) // colBase + t
		b.IAdd(8, kernel.R(4), kernel.I(-1))
		b.IMul(8, kernel.R(8), kernel.I(dim))
		b.IAdd(8, kernel.R(8), kernel.R(7))
		b.IShl(8, kernel.R(8), kernel.I(2))
		b.IAdd(8, kernel.R(6), kernel.R(8))
		b.Ld(kernel.SpaceGlobal, 9, kernel.R(8), 0)
		b.IAdd(10, kernel.R(0), kernel.I(1))
		b.IShl(10, kernel.R(10), kernel.I(2))
		b.St(kernel.SpaceShared, kernel.R(10), kernel.R(9), 0) // sm[0][t+1]
		// left halo: sm[t+1][0] = score[rowBase+t][colBase-1]
		b.IAdd(8, kernel.R(4), kernel.R(0))
		b.IMul(8, kernel.R(8), kernel.I(dim))
		b.IAdd(8, kernel.R(8), kernel.R(5))
		b.IAdd(8, kernel.R(8), kernel.I(-1))
		b.IShl(8, kernel.R(8), kernel.I(2))
		b.IAdd(8, kernel.R(6), kernel.R(8))
		b.Ld(kernel.SpaceGlobal, 9, kernel.R(8), 0)
		b.IAdd(10, kernel.R(0), kernel.I(1))
		b.IMul(10, kernel.R(10), kernel.I(smw*4))
		b.St(kernel.SpaceShared, kernel.R(10), kernel.R(9), 0) // sm[t+1][0]
		// corner by thread 0
		b.ISet(11, kernel.CmpNE, kernel.R(0), kernel.I(0))
		b.When(11).Bra("corner_done", "corner_done")
		gaddr(8, 4, 5, -1, -1)
		b.Ld(kernel.SpaceGlobal, 9, kernel.R(8), 0)
		b.St(kernel.SpaceShared, kernel.U(0), kernel.R(9), 0)
		b.Label("corner_done")
		b.Bar()
		// Wavefront: step m = 0..2*tile-2; thread t handles cell
		// (i=t+1, j=m-t+1) when 0 <= m-t < tile.
		b.LdParam(12, 1) // sim base
		b.MovI(13, 0)    // m
		b.Label("wave")
		b.ISub(14, kernel.R(13), kernel.R(0)) // j-1 = m - t
		// active = (m-t) in [0, tile)
		b.ISet(15, kernel.CmpGE, kernel.R(14), kernel.I(0))
		b.ISet(16, kernel.CmpLT, kernel.R(14), kernel.I(tile))
		b.IAnd(15, kernel.R(15), kernel.R(16))
		b.Unless(15).Bra("wave_sync", "wave_sync")
		// local (i, j) = (t+1, m-t+1); smem linear = i*smw + j.
		b.IAdd(16, kernel.R(0), kernel.I(1))  // i
		b.IAdd(17, kernel.R(14), kernel.I(1)) // j
		b.IMul(18, kernel.R(16), kernel.I(smw))
		b.IAdd(18, kernel.R(18), kernel.R(17))
		b.IShl(18, kernel.R(18), kernel.I(2)) // &sm[i][j] (byte)
		// Neighbours: diag = sm[i-1][j-1], up = sm[i-1][j], left = sm[i][j-1].
		b.Ld(kernel.SpaceShared, 19, kernel.R(18), int32(-4*(smw+1)))
		b.Ld(kernel.SpaceShared, 20, kernel.R(18), int32(-4*smw))
		b.Ld(kernel.SpaceShared, 21, kernel.R(18), -4)
		// sim[(rowBase+t)*dim + colBase + m-t]
		b.IAdd(22, kernel.R(4), kernel.R(0))
		b.IMul(22, kernel.R(22), kernel.I(dim))
		b.IAdd(22, kernel.R(22), kernel.R(5))
		b.IAdd(22, kernel.R(22), kernel.R(14))
		b.IShl(22, kernel.R(22), kernel.I(2))
		b.IAdd(22, kernel.R(12), kernel.R(22))
		b.Ld(kernel.SpaceGlobal, 23, kernel.R(22), 0)
		b.IAdd(19, kernel.R(19), kernel.R(23))       // diag + sim
		b.IAdd(20, kernel.R(20), kernel.I(-penalty)) // up - penalty
		b.IAdd(21, kernel.R(21), kernel.I(-penalty)) // left - penalty
		b.IMax(19, kernel.R(19), kernel.R(20))
		b.IMax(19, kernel.R(19), kernel.R(21))
		b.St(kernel.SpaceShared, kernel.R(18), kernel.R(19), 0)
		b.Label("wave_sync")
		b.Bar()
		b.IAdd(13, kernel.R(13), kernel.I(1))
		b.ISet(15, kernel.CmpLT, kernel.R(13), kernel.I(2*tile-1))
		b.When(15).Bra("wave", "writeback")
		b.Label("writeback")
		// Write the tile back: thread t writes column t+1 of all rows.
		b.MovI(13, 1) // row r
		b.Label("wb")
		b.IMul(18, kernel.R(13), kernel.I(smw))
		b.IAdd(18, kernel.R(18), kernel.R(0))
		b.IAdd(18, kernel.R(18), kernel.I(1))
		b.IShl(18, kernel.R(18), kernel.I(2))
		b.Ld(kernel.SpaceShared, 19, kernel.R(18), 0) // sm[r][t+1]
		b.IAdd(20, kernel.R(4), kernel.R(13))
		b.IAdd(20, kernel.R(20), kernel.I(-1))
		b.IMul(20, kernel.R(20), kernel.I(dim))
		b.IAdd(20, kernel.R(20), kernel.R(5))
		b.IAdd(20, kernel.R(20), kernel.R(0))
		b.IShl(20, kernel.R(20), kernel.I(2))
		b.IAdd(20, kernel.R(6), kernel.R(20))
		b.St(kernel.SpaceGlobal, kernel.R(20), kernel.R(19), 0)
		b.IAdd(13, kernel.R(13), kernel.I(1))
		b.ISet(15, kernel.CmpLE, kernel.R(13), kernel.I(tile))
		b.When(15).Bra("wb", "end")
		b.Label("end")
		b.Exit()
		return b.Build()
	}

	prog1, err := build("needle1")
	if err != nil {
		return nil, err
	}
	prog2, err := build("needle2")
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	scoreAddr := mem.AllocI32(score)
	simAddr := mem.AllocI32(sim)

	inst := &Instance{Name: "needle", Mem: mem}
	block := kernel.Dim{X: tile, Y: 1}
	// Growing diagonals: g = 0..nTiles-1, tiles (bid, g-bid).
	for g := 0; g < nTiles; g++ {
		inst.Runs = append(inst.Runs, Run{
			Name: "needle1",
			Launch: &kernel.Launch{
				Prog: prog1, Grid: kernel.Dim{X: g + 1, Y: 1}, Block: block,
				Params: []uint32{scoreAddr, simAddr, 0, uint32(g)},
			},
		})
	}
	// Shrinking diagonals: g = nTiles..2*nTiles-2, tileX = g-(nTiles-1)+bid.
	for g := nTiles; g <= 2*nTiles-2; g++ {
		inst.Runs = append(inst.Runs, Run{
			Name: "needle2",
			Launch: &kernel.Launch{
				Prog: prog2, Grid: kernel.Dim{X: 2*nTiles - 1 - g, Y: 1}, Block: block,
				Params: []uint32{scoreAddr, simAddr, uint32(g - (nTiles - 1)), uint32(nTiles - 1)},
			},
		})
	}
	inst.Verify = func() error {
		got := mem.ReadI32Slice(scoreAddr, dim*dim)
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				if got[i*dim+j] != ref[i*dim+j] {
					return fmt.Errorf("needle: score[%d][%d] = %d, want %d", i, j, got[i*dim+j], ref[i*dim+j])
				}
			}
		}
		return nil
	}
	return inst, nil
}
