package bench

import (
	"fmt"
	"math"

	"gpusimpow/internal/kernel"
)

// Backprop is the Rodinia multi-layer perceptron training benchmark:
// kernel 1 (backprop1) computes the hidden layer forward pass with a
// shared-memory reduction per hidden unit; kernel 2 (backprop2) adjusts the
// input-to-hidden weights.
func Backprop() (*Instance, error) {
	const nIn = 512
	const nHid = 16
	const block = 128
	const lr = float32(0.3)

	// --- Kernel 1: hidden[j] = sigmoid(sum_i in[i] * w[i*nHid+j]) ---
	// One block per hidden unit. Params: 0=in, 1=w, 2=hidden, 3=nIn.
	b1 := kernel.NewBuilder("backprop1", 18).Params(4).SMem(block * 4)
	b1.SReg(0, kernel.SpecTidX)
	b1.SReg(1, kernel.SpecCtaX) // j
	b1.LdParam(2, 3)            // nIn
	b1.LdParam(3, 0)
	b1.LdParam(4, 1)
	b1.MovF(5, 0)          // acc
	b1.Mov(6, kernel.R(0)) // i
	b1.Label("loop")
	b1.IShl(7, kernel.R(6), kernel.I(2))
	b1.IAdd(7, kernel.R(3), kernel.R(7))
	b1.Ld(kernel.SpaceGlobal, 8, kernel.R(7), 0) // in[i]
	b1.IMul(9, kernel.R(6), kernel.I(nHid))
	b1.IAdd(9, kernel.R(9), kernel.R(1))
	b1.IShl(9, kernel.R(9), kernel.I(2))
	b1.IAdd(9, kernel.R(4), kernel.R(9))
	b1.Ld(kernel.SpaceGlobal, 10, kernel.R(9), 0) // w[i][j]
	b1.FFma(5, kernel.R(8), kernel.R(10), kernel.R(5))
	b1.IAdd(6, kernel.R(6), kernel.I(block))
	b1.ISet(11, kernel.CmpLT, kernel.R(6), kernel.R(2))
	b1.When(11).Bra("loop", "reduce")
	b1.Label("reduce")
	b1.IShl(12, kernel.R(0), kernel.I(2))
	b1.St(kernel.SpaceShared, kernel.R(12), kernel.R(5), 0)
	b1.Bar()
	for stride := block / 2; stride >= 1; stride /= 2 {
		b1.ISet(13, kernel.CmpGE, kernel.R(0), kernel.I(int32(stride)))
		b1.When(13).Bra("skip"+fmt.Sprint(stride), "skip"+fmt.Sprint(stride))
		b1.Ld(kernel.SpaceShared, 14, kernel.R(12), int32(4*stride))
		b1.Ld(kernel.SpaceShared, 15, kernel.R(12), 0)
		b1.FAdd(14, kernel.R(14), kernel.R(15))
		b1.St(kernel.SpaceShared, kernel.R(12), kernel.R(14), 0)
		b1.Label("skip" + fmt.Sprint(stride))
		b1.Bar()
	}
	// Thread 0: hidden[j] = 1/(1 + 2^(-sum*log2e))
	b1.ISet(13, kernel.CmpNE, kernel.R(0), kernel.I(0))
	b1.When(13).Exit()
	b1.Ld(kernel.SpaceShared, 14, kernel.U(0), 0)
	b1.FMul(14, kernel.R(14), kernel.F(-log2e))
	b1.Ex2(14, kernel.R(14))
	b1.FAdd(14, kernel.R(14), kernel.F(1))
	b1.Rcp(14, kernel.R(14))
	b1.LdParam(15, 2)
	b1.IShl(16, kernel.R(1), kernel.I(2))
	b1.IAdd(15, kernel.R(15), kernel.R(16))
	b1.St(kernel.SpaceGlobal, kernel.R(15), kernel.R(14), 0)
	b1.Exit()
	prog1, err := b1.Build()
	if err != nil {
		return nil, err
	}

	// --- Kernel 2: w[i][j] += lr * delta[j] * in[i] ---
	// Params: 0=w, 1=delta, 2=in, 3=total(nIn*nHid).
	b2 := kernel.NewBuilder("backprop2", 16).Params(4)
	emitGlobalTidX(b2, 0, 1, 2)
	b2.LdParam(3, 3)
	emitGuardExit(b2, 0, 3, 4)
	// i = idx / nHid, j = idx % nHid (nHid = 16).
	b2.IShr(5, kernel.R(0), kernel.I(4))
	b2.IAnd(6, kernel.R(0), kernel.I(15))
	b2.LdParam(7, 1)
	b2.IShl(8, kernel.R(6), kernel.I(2))
	b2.IAdd(7, kernel.R(7), kernel.R(8))
	b2.Ld(kernel.SpaceGlobal, 9, kernel.R(7), 0) // delta[j]
	b2.LdParam(10, 2)
	b2.IShl(11, kernel.R(5), kernel.I(2))
	b2.IAdd(10, kernel.R(10), kernel.R(11))
	b2.Ld(kernel.SpaceGlobal, 12, kernel.R(10), 0) // in[i]
	b2.FMul(9, kernel.R(9), kernel.R(12))
	b2.FMul(9, kernel.R(9), kernel.F(lr))
	b2.LdParam(13, 0)
	b2.IShl(14, kernel.R(0), kernel.I(2))
	b2.IAdd(13, kernel.R(13), kernel.R(14))
	b2.Ld(kernel.SpaceGlobal, 15, kernel.R(13), 0)
	b2.FAdd(15, kernel.R(15), kernel.R(9))
	b2.St(kernel.SpaceGlobal, kernel.R(13), kernel.R(15), 0)
	b2.Exit()
	prog2, err := b2.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 7}
	in := make([]float32, nIn)
	w := make([]float32, nIn*nHid)
	delta := make([]float32, nHid)
	for i := range in {
		in[i] = rnd.rangeF32(0, 1)
	}
	for i := range w {
		w[i] = rnd.rangeF32(-0.5, 0.5)
	}
	for i := range delta {
		delta[i] = rnd.rangeF32(-0.2, 0.2)
	}
	inAddr := mem.AllocF32(in)
	wAddr := mem.AllocF32(w)
	hidAddr := mem.AllocZeroF32(nHid)
	deltaAddr := mem.AllocF32(delta)

	inst := &Instance{
		Name: "backprop",
		Mem:  mem,
		Runs: []Run{
			{
				Name: "backprop1",
				Launch: &kernel.Launch{
					Prog:   prog1,
					Grid:   kernel.Dim{X: nHid, Y: 1},
					Block:  kernel.Dim{X: block, Y: 1},
					Params: []uint32{inAddr, wAddr, hidAddr, nIn},
				},
			},
			{
				Name: "backprop2",
				Launch: &kernel.Launch{
					Prog:   prog2,
					Grid:   kernel.Dim{X: nIn * nHid / 256, Y: 1},
					Block:  kernel.Dim{X: 256, Y: 1},
					Params: []uint32{wAddr, deltaAddr, inAddr, nIn * nHid},
				},
			},
		},
	}
	inst.Verify = func() error {
		hid := mem.ReadF32Slice(hidAddr, nHid)
		for j := 0; j < nHid; j++ {
			var sum float64
			for i := 0; i < nIn; i++ {
				sum += float64(in[i]) * float64(w[i*nHid+j])
			}
			want := 1 / (1 + math.Exp(-sum))
			if !approxEq(hid[j], float32(want), 2e-3) {
				return fmt.Errorf("backprop1: hidden[%d] = %v, want ~%v", j, hid[j], want)
			}
		}
		wGot := mem.ReadF32Slice(wAddr, nIn*nHid)
		for idx := 0; idx < nIn*nHid; idx++ {
			i, j := idx/nHid, idx%nHid
			want := w[idx] + lr*delta[j]*in[i]
			if !approxEq(wGot[idx], want, 1e-4) {
				return fmt.Errorf("backprop2: w[%d] = %v, want ~%v", idx, wGot[idx], want)
			}
		}
		return nil
	}
	return inst, nil
}

// KMeans is the Rodinia k-means clustering benchmark: kernel 1 (kmeans1)
// transposes the point array into feature-major layout (Rodinia's
// invert_mapping); kernel 2 (kmeans2) assigns each point to its nearest
// centre, with the centres broadcast from constant memory.
func KMeans() (*Instance, error) {
	const n = 2048
	const d = 8
	const k = 5

	// --- Kernel 1: transpose points [n][d] -> features [d][n] ---
	// Params: 0=in, 1=out, 2=n.
	b1 := kernel.NewBuilder("kmeans1", 14).Params(3)
	emitGlobalTidX(b1, 0, 1, 2)
	b1.LdParam(3, 2)
	emitGuardExit(b1, 0, 3, 4)
	b1.LdParam(5, 0)
	b1.LdParam(6, 1)
	for f := 0; f < d; f++ {
		// in[i*d + f] -> out[f*n + i]
		b1.IMul(7, kernel.R(0), kernel.I(d))
		b1.IAdd(7, kernel.R(7), kernel.I(int32(f)))
		b1.IShl(7, kernel.R(7), kernel.I(2))
		b1.IAdd(7, kernel.R(5), kernel.R(7))
		b1.Ld(kernel.SpaceGlobal, 8, kernel.R(7), 0)
		b1.IAdd(9, kernel.R(0), kernel.I(int32(f*n)))
		b1.IShl(9, kernel.R(9), kernel.I(2))
		b1.IAdd(9, kernel.R(6), kernel.R(9))
		b1.St(kernel.SpaceGlobal, kernel.R(9), kernel.R(8), 0)
	}
	b1.Exit()
	prog1, err := b1.Build()
	if err != nil {
		return nil, err
	}

	// --- Kernel 2: membership[i] = argmin_c dist(point_i, centre_c) ---
	// Feature-major point access (coalesced); centres in constant memory.
	// Params: 0=features, 1=membership, 2=n.
	b2 := kernel.NewBuilder("kmeans2", 18).Params(3)
	emitGlobalTidX(b2, 0, 1, 2)
	b2.LdParam(3, 2)
	emitGuardExit(b2, 0, 3, 4)
	b2.LdParam(5, 0)
	b2.MovF(6, float32(math.Inf(1))) // best distance
	b2.MovI(7, 0)                    // best cluster
	for c := 0; c < k; c++ {
		b2.MovF(8, 0) // dist
		for f := 0; f < d; f++ {
			b2.IAdd(9, kernel.R(0), kernel.I(int32(f*n)))
			b2.IShl(9, kernel.R(9), kernel.I(2))
			b2.IAdd(9, kernel.R(5), kernel.R(9))
			b2.Ld(kernel.SpaceGlobal, 10, kernel.R(9), 0)
			b2.Ld(kernel.SpaceConst, 11, kernel.U(uint32((c*d+f)*4)), 0)
			b2.FSub(10, kernel.R(10), kernel.R(11))
			b2.FFma(8, kernel.R(10), kernel.R(10), kernel.R(8))
		}
		b2.FSet(12, kernel.CmpLT, kernel.R(8), kernel.R(6))
		b2.ISel(7, kernel.R(12), kernel.I(int32(c)), kernel.R(7))
		// best = min(best, dist)
		b2.FMin(6, kernel.R(6), kernel.R(8))
	}
	b2.LdParam(13, 1)
	b2.IShl(14, kernel.R(0), kernel.I(2))
	b2.IAdd(13, kernel.R(13), kernel.R(14))
	b2.St(kernel.SpaceGlobal, kernel.R(13), kernel.R(7), 0)
	b2.Exit()
	prog2, err := b2.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 8}
	points := make([]float32, n*d)
	for i := range points {
		points[i] = rnd.rangeF32(0, 10)
	}
	centres := make([]float32, k*d)
	for i := range centres {
		centres[i] = rnd.rangeF32(0, 10)
	}
	ptAddr := mem.AllocF32(points)
	featAddr := mem.AllocZeroF32(n * d)
	memAddr := mem.Alloc(n * 4)
	cmem := kernel.NewConstMem(k * d * 4)
	cmem.WriteF32Slice(0, centres)

	inst := &Instance{
		Name: "kmeans",
		Mem:  mem,
		Runs: []Run{
			{
				Name: "kmeans1",
				Launch: &kernel.Launch{
					Prog:   prog1,
					Grid:   kernel.Dim{X: n / 256, Y: 1},
					Block:  kernel.Dim{X: 256, Y: 1},
					Params: []uint32{ptAddr, featAddr, n},
				},
				CMem: cmem,
			},
			{
				Name: "kmeans2",
				Launch: &kernel.Launch{
					Prog:   prog2,
					Grid:   kernel.Dim{X: n / 256, Y: 1},
					Block:  kernel.Dim{X: 256, Y: 1},
					Params: []uint32{featAddr, memAddr, n},
				},
				CMem: cmem,
			},
		},
	}
	inst.Verify = func() error {
		feat := mem.ReadF32Slice(featAddr, n*d)
		for i := 0; i < n; i++ {
			for f := 0; f < d; f++ {
				if feat[f*n+i] != points[i*d+f] {
					return fmt.Errorf("kmeans1: feat[%d][%d] wrong", f, i)
				}
			}
		}
		got := mem.ReadI32Slice(memAddr, n)
		for i := 0; i < n; i++ {
			best, bestC := float32(math.Inf(1)), int32(0)
			for c := 0; c < k; c++ {
				var dist float32
				for f := 0; f < d; f++ {
					diff := points[i*d+f] - centres[c*d+f]
					dist += diff * diff
				}
				if dist < best {
					best, bestC = dist, int32(c)
				}
			}
			if got[i] != bestC {
				return fmt.Errorf("kmeans2: membership[%d] = %d, want %d", i, got[i], bestC)
			}
		}
		return nil
	}
	return inst, nil
}

// Heartwall is a condensed form of the Rodinia ultrasound tracking
// benchmark: each block tracks one sample point by matching an 8x8 template
// against a 3x3 search neighbourhood (SSD matching with a shared-memory
// reduction), emitting the best-matching displacement.
func Heartwall() (*Instance, error) {
	const imgDim = 64
	const patch = 8 // 8x8 = 64 pixels = 64 threads
	const np = 48   // tracking points

	// Params: 0=image, 1=templates, 2=coords(x,y int pairs), 3=outIdx.
	b := kernel.NewBuilder("heartwall", 24).Params(4).SMem(64 * 4)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX) // point index
	// Point top-left corner.
	b.LdParam(2, 2)
	b.IShl(3, kernel.R(1), kernel.I(3)) // p*8 bytes (2 ints)
	b.IAdd(2, kernel.R(2), kernel.R(3))
	b.Ld(kernel.SpaceGlobal, 4, kernel.R(2), 0) // px
	b.Ld(kernel.SpaceGlobal, 5, kernel.R(2), 4) // py
	// Pixel (r, c) of this thread within the patch.
	b.IShr(6, kernel.R(0), kernel.I(3)) // r
	b.IAnd(7, kernel.R(0), kernel.I(7)) // c
	// Template value: templates[p*64 + tid].
	b.LdParam(8, 1)
	b.IShl(9, kernel.R(1), kernel.I(6))
	b.IAdd(9, kernel.R(9), kernel.R(0))
	b.IShl(9, kernel.R(9), kernel.I(2))
	b.IAdd(8, kernel.R(8), kernel.R(9))
	b.Ld(kernel.SpaceGlobal, 10, kernel.R(8), 0) // tmpl
	b.LdParam(11, 0)                             // image
	b.IShl(12, kernel.R(0), kernel.I(2))         // smem slot
	b.MovF(13, float32(math.Inf(1)))             // best SSD (thread 0)
	b.MovI(14, 0)                                // best offset index
	idx := 0
	for oy := -1; oy <= 1; oy++ {
		for ox := -1; ox <= 1; ox++ {
			// image[(py+oy+r)*imgDim + (px+ox+c)]
			b.IAdd(15, kernel.R(5), kernel.I(int32(oy)))
			b.IAdd(15, kernel.R(15), kernel.R(6))
			b.IMul(15, kernel.R(15), kernel.I(imgDim))
			b.IAdd(16, kernel.R(4), kernel.I(int32(ox)))
			b.IAdd(16, kernel.R(16), kernel.R(7))
			b.IAdd(15, kernel.R(15), kernel.R(16))
			b.IShl(15, kernel.R(15), kernel.I(2))
			b.IAdd(15, kernel.R(11), kernel.R(15))
			b.Ld(kernel.SpaceGlobal, 16, kernel.R(15), 0)
			b.FSub(16, kernel.R(16), kernel.R(10))
			b.FMul(16, kernel.R(16), kernel.R(16))
			b.St(kernel.SpaceShared, kernel.R(12), kernel.R(16), 0)
			b.Bar()
			for stride := 32; stride >= 1; stride /= 2 {
				lbl := fmt.Sprintf("o%ds%d", idx, stride)
				b.ISet(17, kernel.CmpGE, kernel.R(0), kernel.I(int32(stride)))
				b.When(17).Bra(lbl, lbl)
				b.Ld(kernel.SpaceShared, 18, kernel.R(12), int32(4*stride))
				b.Ld(kernel.SpaceShared, 19, kernel.R(12), 0)
				b.FAdd(18, kernel.R(18), kernel.R(19))
				b.St(kernel.SpaceShared, kernel.R(12), kernel.R(18), 0)
				b.Label(lbl)
				b.Bar()
			}
			// All threads track the winner branchlessly (only thread 0's copy
			// is stored).
			b.Ld(kernel.SpaceShared, 18, kernel.U(0), 0)
			b.FSet(19, kernel.CmpLT, kernel.R(18), kernel.R(13))
			b.ISel(14, kernel.R(19), kernel.I(int32(idx)), kernel.R(14))
			b.FMin(13, kernel.R(13), kernel.R(18))
			b.Bar() // smem reused next offset
			idx++
		}
	}
	b.ISet(20, kernel.CmpNE, kernel.R(0), kernel.I(0))
	b.When(20).Exit()
	b.LdParam(21, 3)
	b.IShl(22, kernel.R(1), kernel.I(2))
	b.IAdd(21, kernel.R(21), kernel.R(22))
	b.St(kernel.SpaceGlobal, kernel.R(21), kernel.R(14), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 9}
	img := make([]float32, imgDim*imgDim)
	for i := range img {
		img[i] = rnd.rangeF32(0, 255)
	}
	coords := make([]int32, np*2)
	tmpl := make([]float32, np*patch*patch)
	wantIdx := make([]int32, np)
	for p := 0; p < np; p++ {
		px := int32(2 + rnd.intn(imgDim-patch-4))
		py := int32(2 + rnd.intn(imgDim-patch-4))
		coords[2*p] = px
		coords[2*p+1] = py
		// The template is the patch at a known true offset: SSD is zero
		// there, so the kernel must recover exactly that displacement.
		oy := rnd.intn(3) - 1
		ox := rnd.intn(3) - 1
		wantIdx[p] = int32((oy+1)*3 + (ox + 1))
		for r := 0; r < patch; r++ {
			for c := 0; c < patch; c++ {
				tmpl[p*64+r*patch+c] = img[(int(py)+oy+r)*imgDim+int(px)+ox+c]
			}
		}
	}
	imgAddr := mem.AllocF32(img)
	tmplAddr := mem.AllocF32(tmpl)
	coordAddr := mem.AllocI32(coords)
	outAddr := mem.Alloc(np * 4)

	inst := &Instance{
		Name: "heartwall",
		Mem:  mem,
		Runs: []Run{{
			Name: "heartwall",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: np, Y: 1},
				Block:  kernel.Dim{X: patch * patch, Y: 1},
				Params: []uint32{imgAddr, tmplAddr, coordAddr, outAddr},
			},
		}},
	}
	inst.Verify = func() error {
		got := mem.ReadI32Slice(outAddr, np)
		for p := 0; p < np; p++ {
			if got[p] != wantIdx[p] {
				return fmt.Errorf("heartwall: point %d matched offset %d, want %d", p, got[p], wantIdx[p])
			}
		}
		return nil
	}
	return inst, nil
}
