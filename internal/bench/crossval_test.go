package bench

import (
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

// TestInterpreterAndTimingSimulatorAgree runs every benchmark through both
// the functional interpreter and the cycle-level simulator and checks that
// the dynamic instruction streams agree exactly: same per-class warp
// instruction counts, same lane-weighted totals, same final memory. Timing
// must never change semantics.
func TestInterpreterAndTimingSimulatorAgree(t *testing.T) {
	if testing.Short() {
		t.Skip("full cross-validation in -short mode")
	}
	for _, f := range Suite() {
		f := f
		t.Run(f.Name, func(t *testing.T) {
			// Functional pass.
			fi, err := f.Make()
			if err != nil {
				t.Fatal(err)
			}
			var fInt, fFP, fSFU, fMem, fThreads uint64
			for _, r := range fi.Runs {
				st, err := kernel.Interp(r.Launch, fi.Mem, cmemOf(r))
				if err != nil {
					t.Fatal(err)
				}
				fInt += st.PerClass[kernel.ClassInt]
				fFP += st.PerClass[kernel.ClassFP]
				fSFU += st.PerClass[kernel.ClassSFU]
				fMem += st.PerClass[kernel.ClassMem]
				fThreads += st.ThreadInstrs
			}
			if err := fi.Verify(); err != nil {
				t.Fatalf("functional: %v", err)
			}

			// Timing pass on a fresh instance.
			ti, err := f.Make()
			if err != nil {
				t.Fatal(err)
			}
			g, err := sim.New(config.GT240())
			if err != nil {
				t.Fatal(err)
			}
			var sInt, sFP, sSFU, sMem uint64
			for _, r := range ti.Runs {
				res, err := g.Run(r.Launch, ti.Mem, cmemOf(r))
				if err != nil {
					t.Fatal(err)
				}
				sInt += res.Activity.IntWarpInstrs
				sFP += res.Activity.FPWarpInstrs
				sSFU += res.Activity.SFUWarpInstrs
				sMem += res.Activity.MemWarpInstrs
			}
			if err := ti.Verify(); err != nil {
				t.Fatalf("timing: %v", err)
			}

			if sInt != fInt || sFP != fFP || sSFU != fSFU || sMem != fMem {
				t.Errorf("instruction streams diverge: timing INT/FP/SFU/MEM = %d/%d/%d/%d, functional = %d/%d/%d/%d",
					sInt, sFP, sSFU, sMem, fInt, fFP, fSFU, fMem)
			}
		})
	}
}
