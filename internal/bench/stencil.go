package bench

import (
	"fmt"

	"gpusimpow/internal/kernel"
)

// MatrixMul is the CUDA SDK tiled matrix multiplication: C = A x B with
// 16x16 shared-memory tiles (the canonical SMEM benchmark).
func MatrixMul() (*Instance, error) {
	const dim = 64 // square matrices
	const tile = 16

	// Params: 0=A, 1=B, 2=C.
	b := kernel.NewBuilder("matrixMul", 20).Params(3).SMem(2 * tile * tile * 4)
	b.SReg(0, kernel.SpecTidX) // tx
	b.SReg(1, kernel.SpecTidY) // ty
	b.SReg(2, kernel.SpecCtaX) // bx
	b.SReg(3, kernel.SpecCtaY) // by
	// row = by*tile + ty; col = bx*tile + tx
	b.IMul(4, kernel.R(3), kernel.I(tile))
	b.IAdd(4, kernel.R(4), kernel.R(1)) // row
	b.IMul(5, kernel.R(2), kernel.I(tile))
	b.IAdd(5, kernel.R(5), kernel.R(0)) // col
	// r6 = &A[row*dim + tx]; advances tile*4 bytes per step
	b.LdParam(6, 0)
	b.IMul(7, kernel.R(4), kernel.I(dim))
	b.IAdd(7, kernel.R(7), kernel.R(0))
	b.IShl(7, kernel.R(7), kernel.I(2))
	b.IAdd(6, kernel.R(6), kernel.R(7))
	// r7 = &B[ty*dim + col]; advances tile*dim*4 bytes per step
	b.LdParam(7, 1)
	b.IMul(8, kernel.R(1), kernel.I(dim))
	b.IAdd(8, kernel.R(8), kernel.R(5))
	b.IShl(8, kernel.R(8), kernel.I(2))
	b.IAdd(7, kernel.R(7), kernel.R(8))
	// r8 = shared slot (ty*tile+tx)*4; r9 = ty*tile*4; r10 = tx*4
	b.IMul(8, kernel.R(1), kernel.I(tile))
	b.IAdd(8, kernel.R(8), kernel.R(0))
	b.IShl(8, kernel.R(8), kernel.I(2))
	b.IMul(9, kernel.R(1), kernel.I(tile*4))
	b.IShl(10, kernel.R(0), kernel.I(2))
	b.MovF(11, 0) // acc
	b.MovI(12, 0) // t
	const bsOff = tile * tile * 4
	b.Label("tloop")
	b.Ld(kernel.SpaceGlobal, 13, kernel.R(6), 0)
	b.St(kernel.SpaceShared, kernel.R(8), kernel.R(13), 0) // As[ty][tx]
	b.Ld(kernel.SpaceGlobal, 13, kernel.R(7), 0)
	b.St(kernel.SpaceShared, kernel.R(8), kernel.R(13), bsOff) // Bs[ty][tx]
	b.Bar()
	for k := 0; k < tile; k++ {
		b.Ld(kernel.SpaceShared, 14, kernel.R(9), int32(k*4))             // As[ty][k]
		b.Ld(kernel.SpaceShared, 15, kernel.R(10), int32(bsOff+k*tile*4)) // Bs[k][tx]
		b.FFma(11, kernel.R(14), kernel.R(15), kernel.R(11))
	}
	b.Bar()
	b.IAdd(6, kernel.R(6), kernel.I(tile*4))
	b.IAdd(7, kernel.R(7), kernel.I(tile*dim*4))
	b.IAdd(12, kernel.R(12), kernel.I(1))
	b.ISet(16, kernel.CmpLT, kernel.R(12), kernel.I(dim/tile))
	b.When(16).Bra("tloop", "store")
	b.Label("store")
	b.LdParam(17, 2)
	b.IMul(18, kernel.R(4), kernel.I(dim))
	b.IAdd(18, kernel.R(18), kernel.R(5))
	b.IShl(18, kernel.R(18), kernel.I(2))
	b.IAdd(17, kernel.R(17), kernel.R(18))
	b.St(kernel.SpaceGlobal, kernel.R(17), kernel.R(11), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 3}
	a := make([]float32, dim*dim)
	bm := make([]float32, dim*dim)
	for i := range a {
		a[i] = rnd.rangeF32(-1, 1)
		bm[i] = rnd.rangeF32(-1, 1)
	}
	aAddr := mem.AllocF32(a)
	bAddr := mem.AllocF32(bm)
	cAddr := mem.AllocZeroF32(dim * dim)

	inst := &Instance{
		Name: "matrixMul",
		Mem:  mem,
		Runs: []Run{{
			Name: "matrixMul",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: dim / tile, Y: dim / tile},
				Block:  kernel.Dim{X: tile, Y: tile},
				Params: []uint32{aAddr, bAddr, cAddr},
			},
		}},
	}
	inst.Verify = func() error {
		got := mem.ReadF32Slice(cAddr, dim*dim)
		for r := 0; r < dim; r++ {
			for c := 0; c < dim; c++ {
				var want float64
				for k := 0; k < dim; k++ {
					want += float64(a[r*dim+k]) * float64(bm[k*dim+c])
				}
				if !approxEq(got[r*dim+c], float32(want), 1e-3) {
					return fmt.Errorf("matrixMul: C[%d][%d] = %v, want ~%v", r, c, got[r*dim+c], want)
				}
			}
		}
		return nil
	}
	return inst, nil
}

// Hotspot is the Rodinia processor-temperature stencil: each step relaxes
// the temperature grid towards its neighbours plus the local power density.
func Hotspot() (*Instance, error) {
	const dim = 64
	const tile = 16
	const steps = 2
	const kc = float32(0.15) // diffusion coefficient
	const pc = float32(0.10) // power coupling

	// Params: 0=Tin, 1=Tout, 2=P.
	b := kernel.NewBuilder("hotspot", 22).Params(3)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecTidY)
	b.SReg(2, kernel.SpecCtaX)
	b.SReg(3, kernel.SpecCtaY)
	b.IMul(4, kernel.R(3), kernel.I(tile))
	b.IAdd(4, kernel.R(4), kernel.R(1)) // row
	b.IMul(5, kernel.R(2), kernel.I(tile))
	b.IAdd(5, kernel.R(5), kernel.R(0)) // col
	// Clamped neighbour indices.
	b.IAdd(6, kernel.R(4), kernel.I(-1))
	b.IMax(6, kernel.R(6), kernel.I(0)) // up row
	b.IAdd(7, kernel.R(4), kernel.I(1))
	b.IMin(7, kernel.R(7), kernel.I(dim-1)) // down row
	b.IAdd(8, kernel.R(5), kernel.I(-1))
	b.IMax(8, kernel.R(8), kernel.I(0)) // left col
	b.IAdd(9, kernel.R(5), kernel.I(1))
	b.IMin(9, kernel.R(9), kernel.I(dim-1)) // right col
	b.LdParam(10, 0)
	// addr(r, c) helper: base + (r*dim+c)*4
	addr := func(dst, r, c int) {
		b.IMul(dst, kernel.R(r), kernel.I(dim))
		b.IAdd(dst, kernel.R(dst), kernel.R(c))
		b.IShl(dst, kernel.R(dst), kernel.I(2))
		b.IAdd(dst, kernel.R(dst), kernel.R(10))
	}
	addr(11, 4, 5)
	b.Ld(kernel.SpaceGlobal, 16, kernel.R(11), 0) // centre
	addr(12, 6, 5)
	b.Ld(kernel.SpaceGlobal, 17, kernel.R(12), 0) // up
	addr(12, 7, 5)
	b.Ld(kernel.SpaceGlobal, 18, kernel.R(12), 0) // down
	addr(12, 4, 8)
	b.Ld(kernel.SpaceGlobal, 19, kernel.R(12), 0) // left
	addr(12, 4, 9)
	b.Ld(kernel.SpaceGlobal, 20, kernel.R(12), 0) // right
	// delta = up+down+left+right - 4*centre
	b.FAdd(17, kernel.R(17), kernel.R(18))
	b.FAdd(17, kernel.R(17), kernel.R(19))
	b.FAdd(17, kernel.R(17), kernel.R(20))
	b.FMul(18, kernel.R(16), kernel.F(-4))
	b.FAdd(17, kernel.R(17), kernel.R(18))
	// P term.
	b.LdParam(12, 2)
	b.IMul(13, kernel.R(4), kernel.I(dim))
	b.IAdd(13, kernel.R(13), kernel.R(5))
	b.IShl(13, kernel.R(13), kernel.I(2))
	b.IAdd(14, kernel.R(12), kernel.R(13))
	b.Ld(kernel.SpaceGlobal, 15, kernel.R(14), 0)
	// Tnew = T + kc*delta + pc*P
	b.FFma(16, kernel.R(17), kernel.F(kc), kernel.R(16))
	b.FFma(16, kernel.R(15), kernel.F(pc), kernel.R(16))
	b.LdParam(12, 1)
	b.IAdd(14, kernel.R(12), kernel.R(13))
	b.St(kernel.SpaceGlobal, kernel.R(14), kernel.R(16), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 4}
	temp := make([]float32, dim*dim)
	pow := make([]float32, dim*dim)
	for i := range temp {
		temp[i] = rnd.rangeF32(40, 90)
		pow[i] = rnd.rangeF32(0, 2)
	}
	t0 := mem.AllocF32(temp)
	t1 := mem.AllocZeroF32(dim * dim)
	pAddr := mem.AllocF32(pow)

	inst := &Instance{Name: "hotspot", Mem: mem}
	bufs := [2]uint32{t0, t1}
	for s := 0; s < steps; s++ {
		inst.Runs = append(inst.Runs, Run{
			Name: "hotspot",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: dim / tile, Y: dim / tile},
				Block:  kernel.Dim{X: tile, Y: tile},
				Params: []uint32{bufs[s%2], bufs[(s+1)%2], pAddr},
			},
			// Repeatable for measurement: the paper modified short-kernel
			// benchmarks "to execute the same kernels 100 times".
		})
	}

	inst.Verify = func() error {
		ref := make([]float32, dim*dim)
		cur := append([]float32(nil), temp...)
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		for s := 0; s < steps; s++ {
			for r := 0; r < dim; r++ {
				for c := 0; c < dim; c++ {
					up := cur[clamp(r-1, 0, dim-1)*dim+c]
					dn := cur[clamp(r+1, 0, dim-1)*dim+c]
					lf := cur[r*dim+clamp(c-1, 0, dim-1)]
					rt := cur[r*dim+clamp(c+1, 0, dim-1)]
					t := cur[r*dim+c]
					delta := up + dn + lf + rt + t*-4
					ref[r*dim+c] = t + delta*kc + pow[r*dim+c]*pc
				}
			}
			cur, ref = ref, cur
		}
		got := mem.ReadF32Slice(bufs[steps%2], dim*dim)
		for i := range got {
			if !approxEq(got[i], cur[i], 1e-4) {
				return fmt.Errorf("hotspot: T[%d] = %v, want ~%v", i, got[i], cur[i])
			}
		}
		return nil
	}
	return inst, nil
}

// Pathfinder is the Rodinia dynamic-programming path search: each row keeps
// the cheapest path cost to each column, relaxed against the three
// neighbours of the previous row, with rows iterated inside the kernel using
// block barriers and a ping-pong shared-memory buffer.
func Pathfinder() (*Instance, error) {
	const cols = 256
	const rows = 48

	// Params: 0=wall, 1=out.
	b := kernel.NewBuilder("pathfinder", 20).Params(2).SMem(2 * cols * 4)
	b.SReg(0, kernel.SpecTidX) // j
	b.IShl(1, kernel.R(0), kernel.I(2))
	// Clamped neighbour byte offsets.
	b.IAdd(2, kernel.R(0), kernel.I(-1))
	b.IMax(2, kernel.R(2), kernel.I(0))
	b.IShl(2, kernel.R(2), kernel.I(2))
	b.IAdd(3, kernel.R(0), kernel.I(1))
	b.IMin(3, kernel.R(3), kernel.I(cols-1))
	b.IShl(3, kernel.R(3), kernel.I(2))
	// Load row 0 of the wall into shared buffer 0.
	b.LdParam(4, 0)
	b.IAdd(5, kernel.R(4), kernel.R(1))
	b.Ld(kernel.SpaceGlobal, 6, kernel.R(5), 0)
	b.St(kernel.SpaceShared, kernel.R(1), kernel.R(6), 0)
	b.Bar()
	b.MovI(7, 1) // r
	const buf1 = cols * 4
	b.Label("rowloop")
	// srcOff = ((r+1)&1)*buf1 ; dstOff = (r&1)*buf1
	b.IAdd(8, kernel.R(7), kernel.I(1))
	b.IAnd(8, kernel.R(8), kernel.I(1))
	b.IMul(8, kernel.R(8), kernel.I(buf1)) // srcOff
	b.IAnd(9, kernel.R(7), kernel.I(1))
	b.IMul(9, kernel.R(9), kernel.I(buf1)) // dstOff
	// min3 of previous row.
	b.IAdd(10, kernel.R(8), kernel.R(2))
	b.Ld(kernel.SpaceShared, 11, kernel.R(10), 0)
	b.IAdd(10, kernel.R(8), kernel.R(1))
	b.Ld(kernel.SpaceShared, 12, kernel.R(10), 0)
	b.IAdd(10, kernel.R(8), kernel.R(3))
	b.Ld(kernel.SpaceShared, 13, kernel.R(10), 0)
	b.IMin(11, kernel.R(11), kernel.R(12))
	b.IMin(11, kernel.R(11), kernel.R(13))
	// wall[r*cols + j]
	b.IMul(12, kernel.R(7), kernel.I(cols))
	b.IAdd(12, kernel.R(12), kernel.R(0))
	b.IShl(12, kernel.R(12), kernel.I(2))
	b.IAdd(12, kernel.R(4), kernel.R(12))
	b.Ld(kernel.SpaceGlobal, 13, kernel.R(12), 0)
	b.IAdd(11, kernel.R(11), kernel.R(13))
	b.IAdd(10, kernel.R(9), kernel.R(1))
	b.St(kernel.SpaceShared, kernel.R(10), kernel.R(11), 0)
	b.Bar()
	b.IAdd(7, kernel.R(7), kernel.I(1))
	b.ISet(14, kernel.CmpLT, kernel.R(7), kernel.I(rows))
	b.When(14).Bra("rowloop", "write")
	b.Label("write")
	// Final row lives in buffer ((rows-1)&1).
	b.MovI(8, int32(((rows-1)&1)*buf1))
	b.IAdd(8, kernel.R(8), kernel.R(1))
	b.Ld(kernel.SpaceShared, 9, kernel.R(8), 0)
	b.LdParam(10, 1)
	b.IAdd(10, kernel.R(10), kernel.R(1))
	b.St(kernel.SpaceGlobal, kernel.R(10), kernel.R(9), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		return nil, err
	}

	mem := kernel.NewGlobalMem()
	rnd := &lcg{s: 5}
	wall := make([]int32, rows*cols)
	for i := range wall {
		wall[i] = int32(rnd.intn(10))
	}
	wAddr := mem.AllocI32(wall)
	outAddr := mem.Alloc(cols * 4)

	inst := &Instance{
		Name: "pathfinder",
		Mem:  mem,
		Runs: []Run{{
			Name: "pathfinder",
			Launch: &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: 1, Y: 1},
				Block:  kernel.Dim{X: cols, Y: 1},
				Params: []uint32{wAddr, outAddr},
			},
		}},
	}
	inst.Verify = func() error {
		prev := make([]int32, cols)
		cur := make([]int32, cols)
		for j := 0; j < cols; j++ {
			prev[j] = wall[j]
		}
		clamp := func(v, lo, hi int) int {
			if v < lo {
				return lo
			}
			if v > hi {
				return hi
			}
			return v
		}
		for r := 1; r < rows; r++ {
			for j := 0; j < cols; j++ {
				m := prev[clamp(j-1, 0, cols-1)]
				if prev[j] < m {
					m = prev[j]
				}
				if v := prev[clamp(j+1, 0, cols-1)]; v < m {
					m = v
				}
				cur[j] = wall[r*cols+j] + m
			}
			prev, cur = cur, prev
		}
		got := mem.ReadI32Slice(outAddr, cols)
		for j := range got {
			if got[j] != prev[j] {
				return fmt.Errorf("pathfinder: out[%d] = %d, want %d", j, got[j], prev[j])
			}
		}
		return nil
	}
	return inst, nil
}
