// Package bench implements the GPGPU workloads of the paper's Table I —
// backprop, heartwall, kmeans, pathfinder, bfs and hotspot from Rodinia;
// matmul, blackscholes, mergesort, scalarprod and vectoradd from the CUDA
// SDK — plus needle (Needleman-Wunsch, present in Figure 6), hand-written in
// the internal SIMT ISA. Every benchmark provides a functional verification
// against a host-side Go reference, so the simulator's executed results are
// checked, not just timed.
package bench

import (
	"fmt"
	"math"

	"gpusimpow/internal/kernel"
)

// Run is one kernel launch of a benchmark, in execution order.
type Run struct {
	// Name is the kernel's display name as used in the paper's Figure 6
	// (e.g. "backprop1", "mergeSort3").
	Name   string
	Launch *kernel.Launch
	CMem   *kernel.ConstMem
	// MaxRepeats caps how often the measurement harness may re-execute the
	// kernel to stretch its measurement window. 0 means unlimited; 1 marks
	// kernels that process data in place and therefore "could not easily be
	// changed to call it multiple times" (the paper's mergeSort3 situation).
	MaxRepeats int
}

// Instance is a ready-to-execute benchmark: launches share one memory image
// and must run in order; Verify checks the final memory against the host
// reference.
type Instance struct {
	Name   string
	Mem    *kernel.GlobalMem
	Runs   []Run
	Verify func() error
}

// Factory creates fresh instances of one benchmark.
type Factory struct {
	Name string
	// Kernels is the number of distinct kernels (Table I column 2).
	Kernels int
	Make    func() (*Instance, error)
}

// Suite returns all benchmarks in the order of the paper's Figure 6.
func Suite() []Factory {
	return []Factory{
		{Name: "backprop", Kernels: 2, Make: Backprop},
		{Name: "bfs", Kernels: 2, Make: BFS},
		{Name: "BlackScholes", Kernels: 1, Make: BlackScholes},
		{Name: "heartwall", Kernels: 1, Make: Heartwall},
		{Name: "hotspot", Kernels: 1, Make: Hotspot},
		{Name: "kmeans", Kernels: 2, Make: KMeans},
		{Name: "matrixMul", Kernels: 1, Make: MatrixMul},
		{Name: "mergeSort", Kernels: 4, Make: MergeSort},
		{Name: "needle", Kernels: 2, Make: Needle},
		{Name: "pathfinder", Kernels: 1, Make: Pathfinder},
		{Name: "scalarProd", Kernels: 1, Make: ScalarProd},
		{Name: "vectorAdd", Kernels: 1, Make: VectorAdd},
	}
}

// ByName returns the factory with the given name.
func ByName(name string) (Factory, error) {
	for _, f := range Suite() {
		if f.Name == name {
			return f, nil
		}
	}
	return Factory{}, fmt.Errorf("bench: unknown benchmark %q", name)
}

// --- shared assembler idioms ---

// emitGlobalTidX computes the global x thread index into register dst,
// clobbering scratch registers s1 and s2.
func emitGlobalTidX(b *kernel.Builder, dst, s1, s2 int) {
	b.SReg(dst, kernel.SpecTidX)
	b.SReg(s1, kernel.SpecCtaX)
	b.SReg(s2, kernel.SpecNTidX)
	b.IMad(dst, kernel.R(s1), kernel.R(s2), kernel.R(dst))
}

// emitGuardExit exits threads whose register idx is >= the value of
// register n, using scratch register p for the predicate.
func emitGuardExit(b *kernel.Builder, idx, n, p int) {
	b.ISet(p, kernel.CmpGE, kernel.R(idx), kernel.R(n))
	b.When(p).Exit()
}

// emitElemAddr computes base + 4*idx into dst (dst may alias base).
func emitElemAddr(b *kernel.Builder, dst, base, idx, scratch int) {
	b.IShl(scratch, kernel.R(idx), kernel.I(2))
	b.IAdd(dst, kernel.R(base), kernel.R(scratch))
}

// approxEq compares float32 values with a relative/absolute tolerance.
func approxEq(a, b, tol float32) bool {
	d := float64(a - b)
	if d < 0 {
		d = -d
	}
	m := math.Max(math.Abs(float64(a)), math.Abs(float64(b)))
	return d <= float64(tol)*math.Max(m, 1)
}

// lcg is a tiny deterministic generator for input data.
type lcg struct{ s uint32 }

func (l *lcg) next() uint32 {
	l.s = l.s*1664525 + 1013904223
	return l.s
}

// f32 returns a float in [0, 1).
func (l *lcg) f32() float32 { return float32(l.next()>>8) / (1 << 24) }

// rangeF32 returns a float in [lo, hi).
func (l *lcg) rangeF32(lo, hi float32) float32 { return lo + (hi-lo)*l.f32() }

// intn returns an int in [0, n).
func (l *lcg) intn(n int) int { return int(l.next() % uint32(n)) }
