package power

import (
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

func mustModel(t *testing.T, cfg *config.GPU) *Model {
	t.Helper()
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestStaticMatchesTableIVTargets(t *testing.T) {
	// Paper Table IV: GT240 simulated 17.9 W / 105 mm^2, GTX580 simulated
	// 81.5 W / 306 mm^2. Our model is calibrated to reproduce these.
	cases := []struct {
		cfg              *config.GPU
		staticW, areaMM2 float64
	}{
		{config.GT240(), 17.9, 105},
		{config.GTX580(), 81.5, 306},
	}
	for _, c := range cases {
		s := mustModel(t, c.cfg).Static()
		if rel(s.StaticW, c.staticW) > 0.05 {
			t.Errorf("%s static %.2f W, want ~%.1f W", c.cfg.Name, s.StaticW, c.staticW)
		}
		if rel(s.AreaMM2, c.areaMM2) > 0.05 {
			t.Errorf("%s area %.1f mm^2, want ~%.0f mm^2", c.cfg.Name, s.AreaMM2, c.areaMM2)
		}
		if s.PeakDynamicW <= s.StaticW {
			t.Errorf("%s peak dynamic %.1f should exceed static %.1f", c.cfg.Name, s.PeakDynamicW, s.StaticW)
		}
	}
}

func rel(got, want float64) float64 {
	d := got - want
	if d < 0 {
		d = -d
	}
	return d / want
}

func TestStaticBreakdownShape(t *testing.T) {
	s := mustModel(t, config.GT240()).Static()
	cores, ok := Find(s.Items, "Cores")
	if !ok {
		t.Fatal("no Cores item")
	}
	// Cores dominate static power (paper: 15.4 of 17.9 W).
	if cores.StaticW < 0.6*s.StaticW {
		t.Errorf("cores static %.2f below 60%% of %.2f", cores.StaticW, s.StaticW)
	}
	var sum float64
	for _, it := range s.Items {
		if it.StaticW <= 0 {
			t.Errorf("%s: non-positive static", it.Name)
		}
		sum += it.StaticW
	}
	if rel(sum, s.StaticW) > 0.10 {
		t.Errorf("items sum %.2f far from total %.2f", sum, s.StaticW)
	}
}

func TestScoreboardPresenceAffectsModel(t *testing.T) {
	with := config.GT240()
	with.HasScoreboard = true
	with.ScoreboardEntries = 6
	sWith := mustModel(t, with).Static()
	sWithout := mustModel(t, config.GT240()).Static()
	if sWith.StaticW <= sWithout.StaticW {
		t.Error("adding a scoreboard must add leakage")
	}
}

func TestProcessNodeScaling(t *testing.T) {
	old := config.GT240()
	old.ProcessNM = 65
	sOld := mustModel(t, old).Static()
	sNew := mustModel(t, config.GT240()).Static()
	// At the older node the analytic structures are larger; the calibrated
	// undiff terms are constant, so total area must grow.
	if sOld.AreaMM2 <= sNew.AreaMM2 {
		t.Errorf("65 nm area %.1f should exceed 40 nm area %.1f", sOld.AreaMM2, sNew.AreaMM2)
	}
}

func runBusyKernel(t *testing.T, cfg *config.GPU) *sim.Result {
	t.Helper()
	b := kernel.NewBuilder("busyfp", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.I2F(1, kernel.R(0))
	b.MovI(2, 0)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.FFma(1, kernel.R(1), kernel.F(1.0001), kernel.F(0.5))
	}
	b.IAdd(2, kernel.R(2), kernel.I(1))
	b.ISet(3, kernel.CmpLT, kernel.R(2), kernel.I(30))
	b.When(3).Bra("loop", "exit")
	b.Label("exit")
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	p := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(256 * 4)
	l := &kernel.Launch{Prog: p, Grid: kernel.Dim{X: cfg.NumCores() * 2, Y: 1},
		Block: kernel.Dim{X: 256, Y: 1}, Params: []uint32{out}}
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRuntimeReportShape(t *testing.T) {
	cfg := config.GT240()
	m := mustModel(t, cfg)
	res := runBusyKernel(t, cfg)
	r, err := m.Runtime(res)
	if err != nil {
		t.Fatal(err)
	}
	if r.DynamicW <= 0 || r.StaticW <= 0 {
		t.Fatalf("power must be positive: %+v", r)
	}
	if rel(r.TotalW, r.StaticW+r.DynamicW) > 1e-9 {
		t.Error("total != static + dynamic")
	}
	// Static matches the architectural estimate.
	if rel(r.StaticW, m.Static().StaticW) > 1e-9 {
		t.Error("runtime static differs from architectural static")
	}
	// GPU-level: cores dominate (paper: 82.2% for blackscholes).
	cores, _ := Find(r.GPU, "Cores")
	if cores.Total() < 0.6*r.TotalW {
		t.Errorf("cores %.2f W below 60%% of total %.2f W", cores.Total(), r.TotalW)
	}
	// Core-level, FP-heavy kernel: execution units are the top dynamic
	// consumer, register file second (paper Table V ordering).
	exe, _ := Find(r.Core, "Execution Units")
	rf, _ := Find(r.Core, "Register File")
	wcu, _ := Find(r.Core, "WCU")
	if !(exe.DynamicW > rf.DynamicW && rf.DynamicW > wcu.DynamicW) {
		t.Errorf("expected EXE > RF > WCU dynamic, got %.4f / %.4f / %.4f",
			exe.DynamicW, rf.DynamicW, wcu.DynamicW)
	}
	undiff, _ := Find(r.Core, "Undiff. Core")
	if undiff.DynamicW != 0 {
		t.Error("undifferentiated core must be purely static (no activity factors)")
	}
	if undiff.StaticW != cfg.Power.UndiffCoreStaticW {
		t.Error("undiff static must equal the calibration anchor")
	}
	// DRAM power reported separately and positive under traffic.
	if r.DRAMW <= 0 {
		t.Error("DRAM power missing")
	}
	if rel(r.DRAMW, r.DRAM.Total()) > 1e-9 {
		t.Error("DRAM breakdown inconsistent with total")
	}
	// Peak dynamic bounds runtime dynamic.
	if r.DynamicW > m.Static().PeakDynamicW {
		t.Errorf("runtime dynamic %.1f exceeds peak %.1f", r.DynamicW, m.Static().PeakDynamicW)
	}
}

func TestRuntimeErrors(t *testing.T) {
	m := mustModel(t, config.GT240())
	if _, err := m.Runtime(nil); err == nil {
		t.Error("nil result should error")
	}
	if _, err := m.Runtime(&sim.Result{}); err == nil {
		t.Error("zero-duration result should error")
	}
}

func TestDynScaleFactor(t *testing.T) {
	cfg := config.GT240()
	res := runBusyKernel(t, cfg)
	r1, err := mustModel(t, cfg).Runtime(res)
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := config.GT240()
	cfg2.Power.DynScaleFactor = 2
	r2, err := mustModel(t, cfg2).Runtime(res)
	if err != nil {
		t.Fatal(err)
	}
	if rel(r2.DynamicW, 2*r1.DynamicW) > 0.01 {
		t.Errorf("doubling DynScaleFactor should double dynamic: %.2f vs %.2f", r2.DynamicW, r1.DynamicW)
	}
	if rel(r2.StaticW, r1.StaticW) > 1e-9 {
		t.Error("DynScaleFactor must not touch static power")
	}
}

func TestHigherFPEnergyRaisesDynamic(t *testing.T) {
	cfg := config.GT240()
	res := runBusyKernel(t, cfg)
	base, _ := mustModel(t, cfg).Runtime(res)
	hot := config.GT240()
	hot.Power.FPOpPJ = 150
	r, _ := mustModel(t, hot).Runtime(res)
	if r.DynamicW <= base.DynamicW {
		t.Error("doubling FP op energy must raise dynamic power of an FP kernel")
	}
}

func TestComponentBudgetsPopulated(t *testing.T) {
	m := mustModel(t, config.GTX580())
	bud := m.componentBudgets()
	for _, name := range []string{"wst", "ibuf", "reconv", "scheduler", "rfBank", "oc",
		"opXbar", "sagu", "coalInQ", "coalPRT", "smemBank", "smemXbar", "ccTag",
		"ccData", "nocXbar", "mcLogic", "scoreboard", "l1Tag", "l2Tag", "l2Data"} {
		b, ok := bud[name]
		if !ok {
			t.Fatalf("missing component %s", name)
		}
		if b.AreaMM2 <= 0 {
			t.Errorf("%s: zero area on GTX580", name)
		}
	}
	// GT240 has no scoreboard / L1 / L2: those budgets must be zero.
	m2 := mustModel(t, config.GT240())
	bud2 := m2.componentBudgets()
	for _, name := range []string{"scoreboard", "l1Tag", "l2Tag", "l2Data"} {
		if bud2[name].AreaMM2 != 0 {
			t.Errorf("GT240 %s should be absent", name)
		}
	}
}

func TestInvalidConfigRejected(t *testing.T) {
	cfg := config.GT240()
	cfg.ProcessNM = 5 // outside technology range
	if _, err := New(cfg); err == nil {
		t.Error("unsupported node must be rejected")
	}
	cfg2 := config.GT240()
	cfg2.Clusters = 0
	if _, err := New(cfg2); err == nil {
		t.Error("invalid config must be rejected")
	}
}

func TestFindHelper(t *testing.T) {
	items := []Item{{Name: "A", StaticW: 1, DynamicW: 2}}
	if it, ok := Find(items, "A"); !ok || it.Total() != 3 {
		t.Error("Find broken")
	}
	if _, ok := Find(items, "B"); ok {
		t.Error("Find should miss absent names")
	}
}
