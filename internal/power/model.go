// Package power implements GPGPU-Pow, the architecture tier of the
// GPUSimPow power model: it maps the configured GPU onto circuit-tier
// structures (package circuit) and empirical component models, producing
//
//   - architectural estimates: chip area, leakage (static) power, and peak
//     dynamic power, and
//   - runtime dynamic power for a kernel, from the activity counts the
//     performance simulator (package sim) collected,
//
// following Eq. (1) of the paper: P = alpha*C*Vdd^2*f (dynamic, via
// per-event energies x event counts) + short-circuit (folded into the
// energies) + Vdd*Ileak (static).
package power

import (
	"fmt"

	"gpusimpow/internal/circuit"
	"gpusimpow/internal/config"
	"gpusimpow/internal/gddr"
	"gpusimpow/internal/tech"
)

// Model holds the per-component circuit budgets and energy coefficients for
// one GPU configuration.
type Model struct {
	cfg  *config.GPU
	node tech.Node

	// Per-core structures (budgets are for ONE core).
	wst, ibuf, reconv circuit.Budget
	scoreboard        circuit.Budget // zero when absent
	scheduler         circuit.Budget // one warp scheduler
	decoder           circuit.Budget
	icache            circuit.Budget

	rfBank         circuit.Budget // one register bank
	rfBanks        int
	oc             circuit.Budget // one operand collector entry write
	opXbar         circuit.Budget
	rowsPerOperand float64 // bank rows read per warp-wide operand

	exeLeakage circuit.Budget // FPU+SFU leakage/area, one core

	sagu      circuit.Budget
	saguCount int
	coalInQ   circuit.Budget
	coalPRT   circuit.Budget
	smemBank  circuit.Budget // one shared-memory/L1 bank
	smemBanks int
	smemXbar  circuit.Budget
	l1Tag     circuit.Budget // zero when no L1
	ccTag     circuit.Budget
	ccData    circuit.Budget
	texTag    circuit.Budget // zero when no texture cache
	texData   circuit.Budget

	// Chip-level structures.
	l2Tag, l2Data circuit.Budget // zero when no L2
	nocXbar       circuit.Budget
	mcLogic       circuit.Budget

	// Off-chip DRAM.
	dramChip gddr.Chip

	// Cached energy coefficients in joules.
	eInt, eFP, eSFU, eAGU     float64
	eNoCFlit, eMCReq, eDecode float64
	ePCIePerByte              float64

	// static is the precomputed leakage decomposition (see staticSplit):
	// filled once by computeStaticSplit so Evaluate/EvaluateBatch never
	// recompute it per call.
	static staticSplit
}

// New builds the power model for a configuration.
func New(cfg *config.GPU) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	node, err := tech.ForNode(cfg.ProcessNM)
	if err != nil {
		return nil, err
	}
	m := &Model{cfg: cfg, node: node}
	if err := m.build(); err != nil {
		return nil, err
	}
	p := cfg.Power
	m.eInt = p.IntOpPJ * 1e-12
	m.eFP = p.FPOpPJ * 1e-12
	m.eSFU = p.SFUOpPJ * 1e-12
	m.eAGU = p.AGUOpPJ * 1e-12
	m.eNoCFlit = p.NoCFlitPJ * 1e-12
	m.eMCReq = p.MCRequestPJ * 1e-12
	m.eDecode = p.DecodePJ * 1e-12
	m.ePCIePerByte = p.PCIeDynPerKBJ / 1024
	chip, err := gddr.ForType(cfg.MemType, cfg.MemDataRateGbps)
	if err != nil {
		return nil, err
	}
	m.dramChip = chip
	m.computeStaticSplit()
	return m, nil
}

// build instantiates every circuit structure. Geometry follows Section III-C
// of the paper and the patents it cites.
func (m *Model) build() error {
	cfg, t := m.cfg, m.node
	var err error

	// --- Warp control unit ---
	// Warp status table: one entry per in-flight warp; master PC, priority,
	// valid/ready/barrier bits and block binding: ~64 bits, multi-ported.
	if m.wst, err = circuit.Array(t, circuit.ArraySpec{
		Entries: cfg.MaxWarpsPerCore, BitsPerEntry: 64,
		ReadPorts: 2, WritePorts: 2,
	}); err != nil {
		return fmt.Errorf("power: WST: %w", err)
	}
	// Instruction buffer: cache-like, 2 slots per warp, decoded instruction
	// plus warp-ID tag: ~80 bits per slot.
	if m.ibuf, err = circuit.Array(t, circuit.ArraySpec{
		Entries: cfg.MaxWarpsPerCore * 2, BitsPerEntry: 80,
		ReadPorts: 1, WritePorts: 1,
	}); err != nil {
		return fmt.Errorf("power: IBuf: %w", err)
	}
	// Per-warp reconvergence stack: 16 tokens of {exec PC, reconv PC, mask}.
	if m.reconv, err = circuit.Array(t, circuit.ArraySpec{
		Entries: cfg.MaxWarpsPerCore * 16, BitsPerEntry: 96,
		ReadPorts: 1, WritePorts: 1, Banks: cfg.MaxWarpsPerCore,
	}); err != nil {
		return fmt.Errorf("power: reconvergence stack: %w", err)
	}
	// Scoreboard: cache-like table tagged by warp ID; per warp up to
	// ScoreboardEntries destination registers are matched associatively.
	if cfg.HasScoreboard {
		if m.scoreboard, err = circuit.CAM(t, circuit.CAMSpec{
			Entries: cfg.MaxWarpsPerCore, TagBits: 8 * cfg.ScoreboardEntries,
		}); err != nil {
			return fmt.Errorf("power: scoreboard: %w", err)
		}
	}
	// Warp scheduler (inverters + priority encoder + phase counter, Kun et
	// al.). The encoder width depends on the policy: the rotating-priority
	// baseline arbitrates all warps of the scheduler; the two-level policy
	// only arbitrates its small active set (its power advantage); GTO needs
	// the full width plus age comparators.
	schedWidth := cfg.MaxWarpsPerCore / cfg.Schedulers
	if cfg.SchedulerPolicy == "twolevel" {
		aw := cfg.ActiveWarpsPerSched
		if aw <= 0 {
			aw = 8
		}
		if aw < schedWidth {
			schedWidth = aw
		}
	}
	if m.scheduler, err = circuit.PriorityEncoder(t, circuit.PriorityEncoderSpec{
		Width: schedWidth,
	}); err != nil {
		return fmt.Errorf("power: scheduler: %w", err)
	}
	if cfg.SchedulerPolicy == "gto" {
		// Age CAM/comparator overhead alongside the encoder.
		gtoCmp, err := circuit.Logic(t, circuit.LogicSpec{Gates: 40 * schedWidth, ActivityFraction: 0.3})
		if err != nil {
			return fmt.Errorf("power: GTO comparators: %w", err)
		}
		m.scheduler.Add(gtoCmp)
	}
	if cfg.SchedulerPolicy == "twolevel" {
		// Active/pending swap machinery: a small table and swap FSM.
		swap, err := circuit.FFBank(t, cfg.MaxWarpsPerCore*8)
		if err != nil {
			return fmt.Errorf("power: two-level swap state: %w", err)
		}
		m.scheduler.Add(circuit.Budget{
			AreaMM2:     swap.AreaMM2,
			LeakageW:    swap.LeakageW,
			ReadEnergyJ: swap.ReadEnergyJ * 0.1, // swaps are rare relative to arbitrations
		})
	}
	// Instruction decoder (reused from McPAT's decoder model: random logic).
	if m.decoder, err = circuit.Logic(t, circuit.LogicSpec{Gates: 6000, ActivityFraction: 0.3}); err != nil {
		return fmt.Errorf("power: decoder: %w", err)
	}
	// Instruction cache: 8 KB, 128-bit fetch rows.
	if m.icache, err = circuit.Array(t, circuit.ArraySpec{
		Entries: 8 * 1024 * 8 / 128, BitsPerEntry: 128,
		ReadPorts: 1, WritePorts: 1,
	}); err != nil {
		return fmt.Errorf("power: I-cache: %w", err)
	}

	// --- Register file (NVIDIA patent: single-ported banks + operand
	// collectors + crossbar) ---
	m.rfBanks = 16
	rfBytes := cfg.RegsPerCore * 4
	rowBytes := 32 // 8 lanes x 32 bit collected per cycle
	entriesPerBank := rfBytes / m.rfBanks / rowBytes
	if m.rfBank, err = circuit.Array(t, circuit.ArraySpec{
		Entries: entriesPerBank, BitsPerEntry: rowBytes * 8,
		ReadPorts: 0, WritePorts: 1, // single-ported
	}); err != nil {
		return fmt.Errorf("power: RF bank: %w", err)
	}
	m.rowsPerOperand = float64(cfg.WarpSize * 4 / rowBytes)
	// Operand collector: two-ported four-entry register files holding a
	// warp-wide operand (128 B).
	if m.oc, err = circuit.Array(t, circuit.ArraySpec{
		Entries: 4, BitsPerEntry: cfg.WarpSize * 32,
		ReadPorts: 1, WritePorts: 1,
	}); err != nil {
		return fmt.Errorf("power: operand collector: %w", err)
	}
	if m.opXbar, err = circuit.Crossbar(t, circuit.CrossbarSpec{
		Inputs: m.rfBanks, Outputs: 6, WidthBits: rowBytes * 8,
	}); err != nil {
		return fmt.Errorf("power: operand crossbar: %w", err)
	}

	// --- Execution units: empirical energy (paper §III-D), area from Galal
	// & Horowitz (FPU) and De Caro et al. (SFU) ---
	exeArea := float64(cfg.FUsPerCore)*cfg.Power.FPUAreaMM2 + float64(cfg.SFUsPerCore)*cfg.Power.SFUAreaMM2
	m.exeLeakage = circuit.Budget{
		AreaMM2:  exeArea,
		LeakageW: exeArea*t.LeakagePerMM2*0.3 + float64(cfg.SFUsPerCore)*cfg.Power.SFUStaticWPerUnit,
	}

	// --- Load/store unit ---
	m.saguCount = cfg.WarpSize / 8 // each sub-AGU makes 8 addresses/cycle
	if m.sagu, err = circuit.Logic(t, circuit.LogicSpec{Gates: 4500, ActivityFraction: 0.35}); err != nil {
		return fmt.Errorf("power: SAGU: %w", err)
	}
	// Coalescer: input queue entries are warp-wide address bundles; the
	// pending request table tracks outstanding segments. Both are too wide
	// for CACTI-style arrays, so they are built from D flip-flops (paper
	// §III-C4).
	if m.coalInQ, err = circuit.FFBank(t, 4*cfg.WarpSize*32); err != nil {
		return fmt.Errorf("power: coalescer input queue: %w", err)
	}
	if m.coalPRT, err = circuit.FFBank(t, 16*96); err != nil {
		return fmt.Errorf("power: coalescer PRT: %w", err)
	}
	// Unified SMEM/L1 physical banks (32-bit wide each).
	m.smemBanks = cfg.SMemBanks
	smemBytes := (cfg.SharedMemPerCoreKB + cfg.L1KB) * 1024
	if smemBytes > 0 {
		if m.smemBank, err = circuit.Array(t, circuit.ArraySpec{
			Entries: smemBytes / m.smemBanks / 4, BitsPerEntry: 32,
			ReadPorts: 1, WritePorts: 1,
		}); err != nil {
			return fmt.Errorf("power: SMEM bank: %w", err)
		}
	}
	if m.smemXbar, err = circuit.Crossbar(t, circuit.CrossbarSpec{
		Inputs: cfg.WarpSize, Outputs: m.smemBanks, WidthBits: 32,
	}); err != nil {
		return fmt.Errorf("power: SMEM crossbar: %w", err)
	}
	if cfg.L1KB > 0 {
		lines := cfg.L1KB * 1024 / cfg.L1LineB
		if m.l1Tag, err = circuit.Array(t, circuit.ArraySpec{
			Entries: lines / cfg.L1Assoc, BitsPerEntry: 24 * cfg.L1Assoc,
			ReadPorts: 1, WritePorts: 1,
		}); err != nil {
			return fmt.Errorf("power: L1 tags: %w", err)
		}
	}
	// Constant cache: tag + 64-bit data rows (scalar broadcast reads).
	ccLines := cfg.ConstCacheKB * 1024 / cfg.ConstLineB
	if m.ccTag, err = circuit.Array(t, circuit.ArraySpec{
		Entries: ccLines / 4, BitsPerEntry: 24 * 4, ReadPorts: 1, WritePorts: 1,
	}); err != nil {
		return fmt.Errorf("power: const tags: %w", err)
	}
	if m.ccData, err = circuit.Array(t, circuit.ArraySpec{
		Entries: cfg.ConstCacheKB * 1024 / 8, BitsPerEntry: 64,
		ReadPorts: 1, WritePorts: 1,
	}); err != nil {
		return fmt.Errorf("power: const data: %w", err)
	}

	// Texture cache ("future variant" of the LDSTU, enabled via config).
	if cfg.TexCacheKB > 0 {
		lines := cfg.TexCacheKB * 1024 / cfg.TexLineB
		if m.texTag, err = circuit.Array(t, circuit.ArraySpec{
			Entries: lines / 4, BitsPerEntry: 24 * 4, ReadPorts: 1, WritePorts: 1,
		}); err != nil {
			return fmt.Errorf("power: texture tags: %w", err)
		}
		if m.texData, err = circuit.Array(t, circuit.ArraySpec{
			Entries: lines, BitsPerEntry: cfg.TexLineB * 8,
			ReadPorts: 1, WritePorts: 1,
		}); err != nil {
			return fmt.Errorf("power: texture data: %w", err)
		}
	}

	// --- L2 ---
	if cfg.L2KB > 0 {
		lines := cfg.L2KB * 1024 / cfg.L2LineB
		if m.l2Tag, err = circuit.Array(t, circuit.ArraySpec{
			Entries: lines / cfg.L2Assoc, BitsPerEntry: 24 * cfg.L2Assoc,
			ReadPorts: 1, WritePorts: 1, Banks: cfg.MemChannels,
		}); err != nil {
			return fmt.Errorf("power: L2 tags: %w", err)
		}
		if m.l2Data, err = circuit.Array(t, circuit.ArraySpec{
			Entries: lines, BitsPerEntry: cfg.L2LineB * 8,
			ReadPorts: 1, WritePorts: 1, Banks: cfg.MemChannels,
		}); err != nil {
			return fmt.Errorf("power: L2 data: %w", err)
		}
	}

	// --- NoC and memory controllers (area/leakage analytic; per-event
	// energies are the configured McPAT-style anchors) ---
	if m.nocXbar, err = circuit.Crossbar(t, circuit.CrossbarSpec{
		Inputs: cfg.NumCores(), Outputs: cfg.MemChannels, WidthBits: 256,
		SpanMM: 6,
	}); err != nil {
		return fmt.Errorf("power: NoC crossbar: %w", err)
	}
	if m.mcLogic, err = circuit.Logic(t, circuit.LogicSpec{Gates: 90000, ActivityFraction: 0.2}); err != nil {
		return fmt.Errorf("power: MC logic: %w", err)
	}
	return nil
}

// coreWCUBudget sums the warp-control-unit structures of one core.
func (m *Model) coreWCUBudget() circuit.Budget {
	var b circuit.Budget
	b.Add(m.wst)
	b.Add(m.ibuf)
	b.Add(m.reconv)
	b.Add(m.scoreboard)
	b.Add(m.scheduler.Scale(float64(m.cfg.Schedulers)))
	b.Add(m.decoder)
	b.Add(m.icache)
	return b
}

// coreRFBudget sums register file structures of one core.
func (m *Model) coreRFBudget() circuit.Budget {
	var b circuit.Budget
	b.Add(m.rfBank.Scale(float64(m.rfBanks)))
	b.Add(m.oc.Scale(6))
	b.Add(m.opXbar)
	return b
}

// coreLDSTBudget sums load/store structures of one core.
func (m *Model) coreLDSTBudget() circuit.Budget {
	var b circuit.Budget
	b.Add(m.sagu.Scale(float64(m.saguCount)))
	b.Add(m.coalInQ)
	b.Add(m.coalPRT)
	b.Add(m.smemBank.Scale(float64(m.smemBanks)))
	b.Add(m.smemXbar.Scale(2)) // address + data crossbars
	b.Add(m.l1Tag)
	b.Add(m.ccTag)
	b.Add(m.ccData)
	b.Add(m.texTag)
	b.Add(m.texData)
	return b
}

// Node returns the technology node used by the model.
func (m *Model) Node() tech.Node { return m.node }

// Config returns the modeled configuration.
func (m *Model) Config() *config.GPU { return m.cfg }
