package power

import (
	"fmt"

	"gpusimpow/internal/circuit"
	"gpusimpow/internal/gddr"
	"gpusimpow/internal/sim"
)

// Item is one row of a power breakdown.
type Item struct {
	Name     string
	StaticW  float64
	DynamicW float64
}

// Total returns static + dynamic.
func (i Item) Total() float64 { return i.StaticW + i.DynamicW }

// StaticReport carries the architectural (workload-independent) estimates:
// area, leakage power and peak dynamic power — the numbers Table IV compares
// against the real chips.
type StaticReport struct {
	GPUName      string
	AreaMM2      float64
	CoreAreaMM2  float64 // one core, including its undifferentiated share
	StaticW      float64
	PeakDynamicW float64
	Items        []Item // GPU-level static split: Cores, NoC, MC, PCIe
}

// leakScale returns the temperature-adjusted leakage multiplier.
func (m *Model) leakScale() float64 {
	f := m.cfg.Power.LeakageTempFactor
	if f <= 0 {
		f = 1
	}
	return f
}

// staticSplit holds the precomputed leakage decomposition of one model:
// per-core components (WCU, RF, EXE, LDSTU, Undiff) and uncore components
// (NoC, MC including L2, PCIe), temperature-scaled. The split depends only
// on the built circuit budgets and the configuration, so it is computed once
// per Model (computeStaticSplit) instead of on every Evaluate call — the
// amortization that makes evaluating one timing snapshot under N power
// variants (EvaluateBatch) a pure arithmetic pass.
type staticSplit struct {
	wcu, rf, exe, ldst, undiff float64 // one core
	noc, mc, pcie              float64 // chip level
}

// computeStaticSplit fills the cached split; called once from New after the
// circuit budgets are built.
func (m *Model) computeStaticSplit() {
	ls := m.leakScale()
	p := m.cfg.Power
	s := &m.static
	s.wcu = m.coreWCUBudget().LeakageW * ls
	s.rf = m.coreRFBudget().LeakageW * ls
	s.exe = m.exeLeakage.LeakageW * ls
	s.ldst = m.coreLDSTBudget().LeakageW * ls
	s.undiff = p.UndiffCoreStaticW
	s.noc = m.nocXbar.LeakageW*ls + p.NoCStaticW
	nMC := (m.cfg.MemChannels + 1) / 2
	s.mc = m.mcLogic.LeakageW*float64(nMC)*ls + (m.l2Tag.LeakageW+m.l2Data.LeakageW)*ls + p.MCStaticW
	s.pcie = p.PCIeIdleW
}

// coreStaticSplit returns the cached leakage of one core by component.
func (m *Model) coreStaticSplit() (wcu, rf, exe, ldst, undiff float64) {
	s := &m.static
	return s.wcu, s.rf, s.exe, s.ldst, s.undiff
}

// uncoreStaticSplit returns the cached NoC, MC (including L2) and PCIe
// leakage.
func (m *Model) uncoreStaticSplit() (noc, mc, pcie float64) {
	s := &m.static
	return s.noc, s.mc, s.pcie
}

// Static computes the architectural report.
func (m *Model) Static() *StaticReport {
	cfg := m.cfg
	n := float64(cfg.NumCores())

	wcu, rf, exe, ldst, undiff := m.coreStaticSplit()
	coreStatic := wcu + rf + exe + ldst + undiff
	noc, mc, pcie := m.uncoreStaticSplit()

	coreArea := m.coreWCUBudget().AreaMM2 + m.coreRFBudget().AreaMM2 +
		m.exeLeakage.AreaMM2 + m.coreLDSTBudget().AreaMM2 + cfg.Power.UndiffCoreAreaMM2
	nMC := (cfg.MemChannels + 1) / 2
	area := coreArea*n + m.nocXbar.AreaMM2 + m.mcLogic.AreaMM2*float64(nMC) +
		m.l2Tag.AreaMM2 + m.l2Data.AreaMM2 + cfg.Power.UncoreAreaMM2

	r := &StaticReport{
		GPUName:     cfg.Name,
		AreaMM2:     area,
		CoreAreaMM2: coreArea,
		StaticW:     coreStatic*n + noc + mc + pcie + cfg.Power.UncoreStaticW,
		Items: []Item{
			{Name: "Cores", StaticW: coreStatic * n},
			{Name: "NoC", StaticW: noc},
			{Name: "Memory Controller", StaticW: mc},
			{Name: "PCIe Controller", StaticW: pcie},
		},
	}
	r.PeakDynamicW = m.peakDynamic()
	return r
}

// peakDynamic estimates the worst-case sustained dynamic power: every
// pipeline, bank and interface busy every cycle.
func (m *Model) peakDynamic() float64 {
	cfg := m.cfg
	f := cfg.CoreClockHz()
	n := float64(cfg.NumCores())
	p := cfg.Power

	exe := n * f * (float64(cfg.FUsPerCore)*m.eFP + float64(cfg.SFUsPerCore)*m.eSFU)
	// Issue machinery at one instruction per scheduler per cycle.
	issueRate := n * float64(cfg.Schedulers) * f
	wcu := issueRate * (m.ibuf.ReadEnergyJ + m.wst.ReadEnergyJ + m.scheduler.ReadEnergyJ + m.eDecode)
	rf := issueRate * m.rowsPerOperand * (3*m.rfBank.ReadEnergyJ + m.rfBank.WriteEnergyJ + m.opXbar.ReadEnergyJ)
	smem := n * f * float64(m.smemBanks) * m.smemBank.ReadEnergyJ
	// Memory interfaces at full bandwidth: one 32B flit per uncore cycle per
	// channel and DRAM bursting continuously.
	uncoreHz := cfg.UncoreClockMHz * 1e6
	noc := float64(cfg.MemChannels) * uncoreHz * m.eNoCFlit
	mc := float64(cfg.MemChannels) * uncoreHz / 4 * m.eMCReq
	base := p.GlobalSchedW + float64(cfg.Clusters)*p.ClusterBaseW + n*p.CoreBaseDynW

	return (exe + wcu + rf + smem + noc + mc + base + p.PCIeActiveW) * p.DynScaleFactor
}

// RuntimeReport is the per-kernel power result, mirroring the paper's
// Table V structure: a GPU-level breakdown and a single-core breakdown.
type RuntimeReport struct {
	GPUName string
	Seconds float64

	StaticW  float64
	DynamicW float64 // on-chip runtime dynamic
	TotalW   float64 // static + dynamic (GPU only, excludes DRAM)

	// DRAMW is the off-chip graphics memory power (excluded from TotalW,
	// as in the paper's Table V note).
	DRAMW float64
	DRAM  gddr.Breakdown

	GPU  []Item // Cores, NoC, Memory Controller, PCIe Controller
	Core []Item // one core: Base Power, WCU, Register File, Execution Units, LDSTU, Undiff. Core
}

// Find returns the item with the given name from a breakdown slice.
func Find(items []Item, name string) (Item, bool) {
	for _, it := range items {
		if it.Name == name {
			return it, true
		}
	}
	return Item{}, false
}

// Runtime converts a simulation result into runtime power, trusting the
// kernel duration the result carries. Production callers go through
// Evaluate (which derives the duration from the cycle count, as the
// cached-snapshot pipeline requires); Runtime remains the entry point for
// results carrying an authoritative duration, e.g. synthetic results in
// tests. Both share runtimeAt, so the model arithmetic cannot diverge.
func (m *Model) Runtime(res *sim.Result) (*RuntimeReport, error) {
	if res == nil || res.Seconds <= 0 {
		return nil, fmt.Errorf("power: result with non-positive runtime")
	}
	return m.runtimeAt(res, res.Seconds)
}

// Evaluate is the pure power stage of the two-stage (simulate-once,
// evaluate-many) pipeline: it computes runtime power from a timing snapshot
// alone, deriving the kernel duration from the cycle count at this model's
// own core clock. A snapshot replayed from the simulation-result cache thus
// evaluates at the evaluating configuration's operating point — and since
// the core clock is part of the timing key, the derived duration is
// bit-identical to what a live simulation would have reported.
func (m *Model) Evaluate(res *sim.Result) (*RuntimeReport, error) {
	if res == nil || res.Activity.Cycles == 0 {
		return nil, fmt.Errorf("power: timing snapshot with no cycles")
	}
	return m.runtimeAt(res, float64(res.Activity.Cycles)/m.cfg.CoreClockHz())
}

// EvaluateBatch evaluates one timing snapshot under every model, returning
// reports in argument order — the power stage of a sweep group that pairs N
// power-parameter variants with a single timing run. The result is
// bit-identical to N sequential Evaluate calls (each model's static split is
// precomputed at build time, so the batch is a pure arithmetic pass over the
// shared activity counters); the first failing model aborts the batch.
func EvaluateBatch(models []*Model, res *sim.Result) ([]*RuntimeReport, error) {
	out := make([]*RuntimeReport, len(models))
	for i, m := range models {
		r, err := m.Evaluate(res)
		if err != nil {
			return nil, fmt.Errorf("power: batch variant %d (%s): %w", i, m.cfg.Name, err)
		}
		out[i] = r
	}
	return out, nil
}

// runtimeAt maps activity counts to power over a kernel duration of T
// seconds.
func (m *Model) runtimeAt(res *sim.Result, T float64) (*RuntimeReport, error) {
	cfg := m.cfg
	p := cfg.Power
	a := &res.Activity
	scale := p.DynScaleFactor
	nCores := float64(cfg.NumCores())

	perT := func(count uint64, energy float64) float64 {
		return float64(count) * energy / T * scale
	}

	// --- WCU dynamic (all cores aggregated) ---
	wcuDyn := perT(a.ICacheReads, m.icache.ReadEnergyJ) +
		perT(a.Decodes, m.eDecode+m.decoder.ReadEnergyJ) +
		perT(a.WSTReads, m.wst.ReadEnergyJ) +
		perT(a.WSTWrites, m.wst.WriteEnergyJ) +
		perT(a.IBufReads, m.ibuf.ReadEnergyJ) +
		perT(a.IBufWrites, m.ibuf.WriteEnergyJ) +
		perT(a.SchedArbs, m.scheduler.ReadEnergyJ) +
		perT(a.ReconvReads, m.reconv.ReadEnergyJ) +
		perT(a.ReconvPushes, m.reconv.WriteEnergyJ) +
		perT(a.ReconvPops, m.reconv.ReadEnergyJ)
	if cfg.HasScoreboard {
		wcuDyn += perT(a.SBSearches, m.scoreboard.ReadEnergyJ) +
			perT(a.SBWrites, m.scoreboard.WriteEnergyJ)
	}

	// --- Register file dynamic ---
	rows := m.rowsPerOperand
	rfDyn := perT(a.RFBankReads, rows*m.rfBank.ReadEnergyJ) +
		perT(a.RFBankWrites, rows*m.rfBank.WriteEnergyJ) +
		perT(a.OCWrites, m.oc.WriteEnergyJ) +
		perT(a.OperandXbar, rows*m.opXbar.ReadEnergyJ)

	// --- Execution units (empirical pJ/op, lane-weighted) ---
	exeDyn := perT(a.IntThreadInstrs, m.eInt) +
		perT(a.FPThreadInstrs, m.eFP) +
		perT(a.SFUThreadInstrs, m.eSFU)

	// --- LDST unit ---
	lineAccesses := uint64(0)
	if cfg.L1KB > 0 {
		lineAccesses = (a.L1Reads - a.L1Misses) * uint64(cfg.L1LineB/4) // data rows on hits
	}
	ldstDyn := perT(a.AGUAddresses, m.eAGU+m.sagu.ReadEnergyJ/8) +
		perT(a.CoalescerQueries, m.coalInQ.WriteEnergyJ) +
		perT(a.PRTWrites, m.coalPRT.WriteEnergyJ) +
		perT(a.SMemAccesses, m.smemBank.ReadEnergyJ+m.smemXbar.ReadEnergyJ) +
		perT(lineAccesses, m.smemBank.ReadEnergyJ) +
		perT(a.L1Reads+a.L1Writes, m.l1Tag.ReadEnergyJ) +
		perT(a.ConstReads, m.ccTag.ReadEnergyJ+m.ccData.ReadEnergyJ) +
		perT(a.TexReads, m.texTag.ReadEnergyJ+m.texData.ReadEnergyJ)

	// --- Base power (empirical, paper Fig. 4 / Table V) ---
	cycles := float64(a.Cycles)
	var coreBusy float64
	for _, c := range a.CoreBusyCycles {
		coreBusy += float64(c)
	}
	var clusterBusy float64
	for _, c := range a.ClusterBusyCycles {
		clusterBusy += float64(c)
	}
	baseCoreDyn := p.CoreBaseDynW * coreBusy / cycles * scale   // summed over cores
	clusterDyn := p.ClusterBaseW * clusterBusy / cycles * scale // summed over clusters
	schedDyn := p.GlobalSchedW * float64(a.GlobalSchedCycles) / cycles * scale

	coresDyn := wcuDyn + rfDyn + exeDyn + ldstDyn + baseCoreDyn + clusterDyn + schedDyn

	// --- Uncore dynamic ---
	nocDyn := perT(a.NoCFlits, m.eNoCFlit+m.nocXbar.ReadEnergyJ)
	mcDyn := perT(a.MCRequests, m.eMCReq) +
		perT(a.L2Reads, m.l2Tag.ReadEnergyJ+m.l2Data.ReadEnergyJ) +
		perT(a.L2Writes, m.l2Tag.ReadEnergyJ+m.l2Data.WriteEnergyJ)
	activeFrac := float64(a.GlobalSchedCycles) / cycles
	if activeFrac > 1 {
		activeFrac = 1
	}
	pcieDyn := p.PCIeActiveW*activeFrac*scale + perT(a.PCIeBytes, m.ePCIePerByte)

	// --- Static ---
	wcuS, rfS, exeS, ldstS, undiffS := m.coreStaticSplit()
	coreStatic := wcuS + rfS + exeS + ldstS + undiffS
	nocS, mcS, pcieS := m.uncoreStaticSplit()
	staticW := coreStatic*nCores + nocS + mcS + pcieS + p.UncoreStaticW

	// --- DRAM (off-chip) ---
	chips := cfg.GDDRChips()
	perChip := gddr.Activity{
		Seconds:        T,
		Activates:      a.DRAMActivates / uint64(chips),
		ReadBursts:     a.DRAMReadBursts / uint64(chips),
		WriteBursts:    a.DRAMWriteBursts / uint64(chips),
		ActiveFraction: res.DRAMActiveFraction(cfg.MemChannels),
	}
	dramBk, err := m.dramChip.Power(perChip)
	if err != nil {
		return nil, err
	}
	dramBk.Background *= float64(chips)
	dramBk.Activate *= float64(chips)
	dramBk.ReadWrite *= float64(chips)
	dramBk.Termination *= float64(chips)
	dramBk.Refresh *= float64(chips)

	dyn := coresDyn + nocDyn + mcDyn + pcieDyn
	r := &RuntimeReport{
		GPUName:  cfg.Name,
		Seconds:  T,
		StaticW:  staticW,
		DynamicW: dyn,
		TotalW:   staticW + dyn,
		DRAMW:    dramBk.Total(),
		DRAM:     dramBk,
		GPU: []Item{
			{Name: "Cores", StaticW: coreStatic * nCores, DynamicW: coresDyn},
			{Name: "NoC", StaticW: nocS, DynamicW: nocDyn},
			{Name: "Memory Controller", StaticW: mcS, DynamicW: mcDyn},
			{Name: "PCIe Controller", StaticW: pcieS, DynamicW: pcieDyn},
		},
		Core: []Item{
			{Name: "Base Power", StaticW: 0, DynamicW: baseCoreDyn / nCores},
			{Name: "WCU", StaticW: wcuS, DynamicW: wcuDyn / nCores},
			{Name: "Register File", StaticW: rfS, DynamicW: rfDyn / nCores},
			{Name: "Execution Units", StaticW: exeS, DynamicW: exeDyn / nCores},
			{Name: "LDSTU", StaticW: ldstS, DynamicW: ldstDyn / nCores},
			{Name: "Undiff. Core", StaticW: undiffS, DynamicW: 0},
		},
	}
	return r, nil
}

// componentBudgets exposes the main circuit budgets for inspection and tests.
func (m *Model) componentBudgets() map[string]circuit.Budget {
	return map[string]circuit.Budget{
		"wst": m.wst, "ibuf": m.ibuf, "reconv": m.reconv,
		"scoreboard": m.scoreboard, "scheduler": m.scheduler,
		"decoder": m.decoder, "icache": m.icache,
		"rfBank": m.rfBank, "oc": m.oc, "opXbar": m.opXbar,
		"sagu": m.sagu, "coalInQ": m.coalInQ, "coalPRT": m.coalPRT,
		"smemBank": m.smemBank, "smemXbar": m.smemXbar,
		"l1Tag": m.l1Tag, "ccTag": m.ccTag, "ccData": m.ccData,
		"l2Tag": m.l2Tag, "l2Data": m.l2Data,
		"nocXbar": m.nocXbar, "mcLogic": m.mcLogic,
	}
}
