package hw

import (
	"math"
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// busyKernel builds an FP loop kernel for measurement tests.
func busyKernel(iter int) *kernel.Program {
	b := kernel.NewBuilder("busyfp", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.I2F(1, kernel.R(0))
	b.MovI(2, 0)
	b.Label("loop")
	for i := 0; i < 8; i++ {
		b.FFma(1, kernel.R(1), kernel.F(1.0001), kernel.F(0.5))
	}
	b.IAdd(2, kernel.R(2), kernel.I(1))
	b.ISet(3, kernel.CmpLT, kernel.R(2), kernel.I(int32(iter)))
	b.When(3).Bra("loop", "exit")
	b.Label("exit")
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	return b.MustBuild()
}

// testGT240 returns the GT240 preset (shared helper for rig tests).
func testGT240() *config.GPU { return config.GT240() }

// testBusyLaunch is busyLaunch under a name shared with rig_test.go.
func testBusyLaunch(blocks int) (*kernel.Launch, *kernel.GlobalMem) {
	return busyLaunch(blocks)
}

func busyLaunch(blocks int) (*kernel.Launch, *kernel.GlobalMem) {
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(256 * 4)
	return &kernel.Launch{
		Prog:   busyKernel(40),
		Grid:   kernel.Dim{X: blocks, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{out},
	}, mem
}

func TestCardDeterministic(t *testing.T) {
	c1, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	if c1.TrueStaticW() != c2.TrueStaticW() {
		t.Error("same card model must have identical silicon")
	}
	l1, m1 := busyLaunch(12)
	l2, m2 := busyLaunch(12)
	a, err := c1.MeasureKernel(l1, m1, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c2.MeasureKernel(l2, m2, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	if a.AvgPowerW != b.AvgPowerW {
		t.Errorf("measurements differ across identical cards: %v vs %v", a.AvgPowerW, b.AvgPowerW)
	}
}

func TestTrueStaticNearPaperValues(t *testing.T) {
	// Paper Table IV "Real": GT240 17.6 W, GTX580 80 W.
	gt, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	if s := gt.TrueStaticW(); math.Abs(s-17.6)/17.6 > 0.05 {
		t.Errorf("GT240 true static %.2f, want ~17.6", s)
	}
	gtx, err := NewCard(config.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	if s := gtx.TrueStaticW(); math.Abs(s-80)/80 > 0.06 {
		t.Errorf("GTX580 true static %.2f, want ~80", s)
	}
}

func TestSiliconBelowNominalModel(t *testing.T) {
	// The perturbation biases truth below the analytic model, reproducing
	// the paper's systematic slight overestimation.
	cfg := config.GT240()
	c, err := NewCard(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.truth.Power.DynScaleFactor >= cfg.Power.DynScaleFactor {
		t.Error("truth dynamic scale must sit below nominal")
	}
	if c.truth.Power.UndiffCoreStaticW >= cfg.Power.UndiffCoreStaticW {
		t.Error("truth static must sit below nominal")
	}
}

func TestIdleStates(t *testing.T) {
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	prePost := c.PrePostKernelPowerW()
	idle := c.IdlePowerW()
	static := c.TrueStaticW()
	// The paper: GT240 draws ~19.5 W around kernels, ~15 W deep idle, and
	// about 90 % of the pre/post state is static power.
	if math.Abs(static/prePost-0.9) > 0.01 {
		t.Errorf("static/prePost = %.3f, want 0.9", static/prePost)
	}
	if idle >= prePost {
		t.Error("deep idle must draw less than the pre/post-kernel state")
	}
	if prePost < 17 || prePost > 22 {
		t.Errorf("GT240 pre/post power %.1f outside the ~19.5 W regime", prePost)
	}
	if idle < 13 || idle > 17 {
		t.Errorf("GT240 deep idle %.1f outside the ~15 W regime", idle)
	}
}

func TestMeasureKernelAboveIdle(t *testing.T) {
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	l, mem := busyLaunch(24)
	m, err := c.MeasureKernel(l, mem, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	if m.AvgPowerW <= c.PrePostKernelPowerW() {
		t.Errorf("kernel power %.1f not above idle %.1f", m.AvgPowerW, c.PrePostKernelPowerW())
	}
	if m.AvgPowerW > 80 {
		t.Errorf("GT240 measured %.1f W — beyond the card's class", m.AvgPowerW)
	}
	if m.EnergyJ <= 0 || m.WindowS <= 0 || m.TrueKernelSeconds <= 0 {
		t.Error("measurement bookkeeping incomplete")
	}
	if math.Abs(m.EnergyJ-m.AvgPowerW*m.WindowS) > 1e-9 {
		t.Error("energy != power x window")
	}
}

func TestMeasurementAccuracyWithinChainSpec(t *testing.T) {
	// With a long window the measured power must sit within the chain's
	// +/-3.2 % error budget (plus a sliver for the capacitor edge).
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	l, mem := busyLaunch(24)
	trueW, oneT, err := c.kernelTruePower(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Fresh memory: kernelTruePower mutated the old image.
	l2, mem2 := busyLaunch(24)
	m, err := c.MeasureKernel(l2, mem2, nil, RepeatsForWindow(oneT, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	relErr := math.Abs(m.AvgPowerW-trueW) / trueW
	if relErr > c.chain.worstCaseErrorFraction()+0.01 {
		t.Errorf("measured %.2f vs true %.2f: error %.1f%% beyond chain spec", m.AvgPowerW, trueW, 100*relErr)
	}
}

func TestShortKernelArtifact(t *testing.T) {
	// A single short execution is smeared by the bulk capacitance: measured
	// power must be biased low versus a long repeated window, and flagged.
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	l1, mem1 := busyLaunch(12)
	short, err := c.MeasureKernel(l1, mem1, nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	l2, mem2 := busyLaunch(12)
	long, err := c.MeasureKernel(l2, mem2, nil, RepeatsForWindow(short.TrueKernelSeconds, 0.25))
	if err != nil {
		t.Fatal(err)
	}
	if !short.ShortWindow {
		t.Error("sub-50 ms window must be flagged")
	}
	if long.ShortWindow {
		t.Error("quarter-second window must not be flagged")
	}
	if short.AvgPowerW >= long.AvgPowerW {
		t.Errorf("capacitor smearing should bias short measurements low: %.2f vs %.2f",
			short.AvgPowerW, long.AvgPowerW)
	}
}

func TestClockScaling(t *testing.T) {
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetClockScale(1.2); err == nil {
		t.Error("overclocking beyond nominal must be rejected")
	}
	if err := c.SetClockScale(0.3); err == nil {
		t.Error("scale below 0.5 must be rejected")
	}
	l1, mem1 := busyLaunch(24)
	full, _, err := c.kernelTruePower(l1, mem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetClockScale(0.8); err != nil {
		t.Fatal(err)
	}
	l2, mem2 := busyLaunch(24)
	slow, slowT, err := c.kernelTruePower(l2, mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if slow >= full {
		t.Errorf("downclocked power %.2f not below nominal %.2f", slow, full)
	}
	// Linear extrapolation to 0 Hz recovers the frequency-independent board
	// power (GPU static + DRAM background) on noiseless true powers
	// (Section IV-B methodology).
	static := (slow*1.0 - full*0.8) / 0.2
	want := c.TrueBoardStaticW()
	if math.Abs(static-want)/want > 0.02 {
		t.Errorf("extrapolated static %.2f vs board static %.2f", static, want)
	}
	_ = slowT
}

func TestMeasureSequenceTrace(t *testing.T) {
	c, err := NewCard(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	var items []SeqItem
	for i := 1; i <= 3; i++ {
		l, mem := busyLaunch(i * 4)
		items = append(items, SeqItem{Launch: l, Mem: mem, Repeats: 400, GapS: 0.03})
	}
	tr, ms, err := c.MeasureSequence(items)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 3 || len(tr.Marks) != 3 {
		t.Fatalf("want 3 measurements, got %d", len(ms))
	}
	if len(tr.Samples) == 0 {
		t.Fatal("empty trace")
	}
	// More blocks -> more clusters active -> more power.
	if !(ms[0].AvgPowerW < ms[1].AvgPowerW && ms[1].AvgPowerW < ms[2].AvgPowerW) {
		t.Errorf("power should rise with block count: %.2f %.2f %.2f",
			ms[0].AvgPowerW, ms[1].AvgPowerW, ms[2].AvgPowerW)
	}
	// Trace timestamps must be ordered and inside the waveform.
	for i, mk := range tr.Marks {
		if mk[0] >= mk[1] {
			t.Errorf("mark %d: empty window", i)
		}
		if mk[1] > tr.TimeOf(len(tr.Samples)) {
			t.Errorf("mark %d beyond trace end", i)
		}
	}
	if _, _, err := c.MeasureSequence(nil); err == nil {
		t.Error("empty sequence must error")
	}
}

func TestRealAreaConstants(t *testing.T) {
	gt, _ := NewCard(config.GT240())
	if gt.RealAreaMM2() != 133 {
		t.Errorf("GT240 die %.0f, want 133 (Table IV)", gt.RealAreaMM2())
	}
	gtx, _ := NewCard(config.GTX580())
	if gtx.RealAreaMM2() != 520 {
		t.Errorf("GTX580 die %.0f, want 520 (Table IV)", gtx.RealAreaMM2())
	}
	custom := config.GT240()
	custom.Name = "CUSTOM99"
	c, err := NewCard(custom)
	if err != nil {
		t.Fatal(err)
	}
	if c.RealAreaMM2() <= 0 {
		t.Error("unknown cards need a plausible die estimate")
	}
}

func TestRepeatsForWindow(t *testing.T) {
	if RepeatsForWindow(0.001, 0.1) != 100 {
		t.Error("1 ms kernel needs 100 repeats for 100 ms")
	}
	if RepeatsForWindow(1, 0.1) != 1 {
		t.Error("long kernels need one execution")
	}
	if RepeatsForWindow(0, 0.1) != 1 {
		t.Error("degenerate duration must yield 1")
	}
}

func TestRNGDeterminismAndRange(t *testing.T) {
	a, b := newRNG(42), newRNG(42)
	for i := 0; i < 100; i++ {
		if a.next() != b.next() {
			t.Fatal("rng not deterministic")
		}
	}
	r := newRNG(7)
	for i := 0; i < 1000; i++ {
		v := r.uniform(0.8, 1.2)
		if v < 0.8 || v >= 1.2 {
			t.Fatalf("uniform out of range: %v", v)
		}
	}
	if seedFromString("GT240") == seedFromString("GTX580") {
		t.Error("seeds must differ per name")
	}
}
