package hw

// rng is a splitmix64 deterministic generator. The virtual hardware must be
// perfectly reproducible (the same card always has the same silicon), so all
// perturbations and noise derive from seeds, never from global randomness.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

// seedFromString hashes a name (FNV-1a) into a seed.
func seedFromString(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform value in [0, 1).
func (r *rng) float() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// uniform returns a uniform value in [lo, hi).
func (r *rng) uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.float()
}

// gauss returns an approximately normal sample with the given sigma
// (Irwin-Hall sum of 12 uniforms).
func (r *rng) gauss(sigma float64) float64 {
	var s float64
	for i := 0; i < 12; i++ {
		s += r.float()
	}
	return (s - 6) * sigma
}
