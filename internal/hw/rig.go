package hw

// This file models the measurement chain of the paper's Section IV-A: a
// riser card with 20 mOhm probing resistors on the 12 V and 3.3 V PCIe slot
// rails (plus 10 mOhm resistors in the external PCIe power cables for cards
// that have them), a signal conditioning board with a resistive divider
// (gain accuracy +/-1.7 %) and AD8210 current shunt monitors (gain accuracy
// +/-0.5 %, offset up to 1 mV ~ 60 mW at 12 V), sampled by a NI USB-6210
// DAQ at 31.2 kHz. Overall the chain measures power within +/-3.2 %.

// DAQSampleHz is the acquisition rate of the modeled NI USB-6210 setup.
const DAQSampleHz = 31200.0

// rail models one measured supply rail.
type rail struct {
	name string
	// share is the fraction of card power drawn from this rail.
	share float64
	// voltageGainErr and currentGainErr are the fixed calibration errors of
	// the resistive divider (±1.7 %) and AD8210 + shunt (±1.5 %).
	voltageGainErr float64
	currentGainErr float64
	// offsetW is the AD8210 output offset translated to watts (±60 mW).
	offsetW float64
	// noiseW is the per-sample RMS noise of the DAQ channel.
	noiseW float64
}

// chain is the complete measurement chain of one card.
type chain struct {
	rails []rail
	noise *rng
}

// newChain builds the measurement chain. Cards with external PCIe power
// connectors (GTX580) split the load across slot and cable rails; low-power
// cards (GT240) draw everything through the slot. The rng seeds both the
// fixed calibration errors and the ongoing sample noise; use retuneNoise to
// give a chain an independent noise stream while keeping its calibration.
func newChain(r *rng, hasExternalPower bool) *chain {
	mk := func(name string, share float64) rail {
		return rail{
			name:           name,
			share:          share,
			voltageGainErr: r.uniform(-0.017, 0.017),
			currentGainErr: r.uniform(-0.015, 0.015),
			offsetW:        r.uniform(-0.060, 0.060),
			noiseW:         0.04,
		}
	}
	var rails []rail
	if hasExternalPower {
		rails = []rail{
			mk("slot12V", 0.35),
			mk("slot3V3", 0.05),
			mk("ext12V-A", 0.30),
			mk("ext12V-B", 0.30),
		}
	} else {
		rails = []rail{
			mk("slot12V", 0.80),
			mk("slot3V3", 0.20),
		}
	}
	return &chain{rails: rails, noise: r}
}

// retuneNoise replaces the chain's DAQ noise stream without touching the
// rails' fixed calibration errors: the same physical rig, observed in a
// different measurement session.
func (c *chain) retuneNoise(r *rng) { c.noise = r }

// measure converts the card's true instantaneous power draw into the power
// the DAQ-based tool reports for one sample: per-rail gain errors, offsets
// and sample noise applied, then summed over rails (the paper's methodology
// measures all power sources, unlike the prior work it criticises).
func (c *chain) measure(trueW float64) float64 {
	var sum float64
	for _, r := range c.rails {
		p := trueW * r.share
		p *= (1 + r.voltageGainErr) * (1 + r.currentGainErr)
		p += r.offsetW + c.noise.gauss(r.noiseW)
		sum += p
	}
	return sum
}

// worstCaseErrorFraction returns the chain's error budget (the paper's
// +/-3.2 %): used by tests to assert the modeled chain stays within spec.
func (c *chain) worstCaseErrorFraction() float64 { return 0.032 }
