// Package hw is the virtual measurement testbed: the repository's substitute
// for the paper's real GT240/GTX580 graphics cards and custom DAQ setup
// (Section IV). A Card owns a ground-truth power model — a deterministic
// perturbation of the analytic model, standing in for real silicon whose
// per-component energies never exactly match a simulator — and a modeled
// measurement chain (sense resistors, AD8210 monitors, 31.2 kHz DAQ). The
// validation loop of the paper (simulate, measure, compare, report relative
// error) runs end to end against it; measurement error and model mismatch
// are emergent, not scripted.
package hw

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/gddr"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/power"
	"gpusimpow/internal/sim"
	"gpusimpow/internal/simcache"
)

// dieSizes holds the real (datasheet) die areas the paper's Table IV quotes.
var dieSizes = map[string]float64{
	"GT240":  133,
	"GTX580": 520,
}

// Card is a virtual graphics card plus its measurement rig.
type Card struct {
	name  string
	cfg   *config.GPU // nominal configuration (what a simulator user sees)
	truth *config.GPU // perturbed configuration: the "silicon"

	perf  *sim.GPU
	model *power.Model
	chain *chain

	clockScale float64

	// capTauS is the time constant of the supply's bulk capacitance: the
	// effect that makes sub-50 ms kernels hard to measure (Section II).
	capTauS float64
}

// NewCard manufactures the virtual card for a configuration. The silicon
// perturbation is seeded by the card name: the same card model always
// measures the same.
func NewCard(cfg *config.GPU) (*Card, error) {
	return NewCardSession(cfg, "")
}

// NewCardSession manufactures the same virtual card — identical silicon and
// identical rig calibration (both are seeded by the card name) — but with a
// DAQ noise stream derived from the session tag. Concurrent measurement
// jobs (the experiment sweeps fanning out over internal/runner) use
// distinct tags so their sample noise is independent rather than a replay
// of one shared stream, while results stay deterministic for a given tag.
func NewCardSession(cfg *config.GPU, session string) (*Card, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	truth := perturb(cfg)
	perf, err := sim.New(truth)
	if err != nil {
		return nil, err
	}
	model, err := power.New(truth)
	if err != nil {
		return nil, err
	}
	r := newRNG(seedFromString(cfg.Name + "/rig"))
	ch := newChain(r, cfg.NumCores() > 12) // big cards have external power
	if session != "" {
		ch.retuneNoise(newRNG(seedFromString(cfg.Name + "/rig/" + session)))
	}
	return &Card{
		name:       cfg.Name,
		cfg:        cfg,
		truth:      truth,
		perf:       perf,
		model:      model,
		chain:      ch,
		clockScale: 1,
		capTauS:    1.5e-3,
	}, nil
}

// perturb derives the silicon truth from the nominal configuration: every
// empirical anchor is multiplied by a deterministic per-component factor.
// The distribution is biased slightly below 1, which reproduces the paper's
// observation that "in nearly every benchmark kernel, the simulator slightly
// overestimates the true power consumed by the chip".
func perturb(cfg *config.GPU) *config.GPU {
	t := *cfg // shallow copy is fine: config has no pointers
	r := newRNG(seedFromString(cfg.Name + "/silicon"))
	p := &t.Power

	// Compute-side component energies: modest mismatch.
	p.IntOpPJ *= r.uniform(0.88, 1.02)
	p.FPOpPJ *= r.uniform(0.88, 1.02)
	p.SFUOpPJ *= r.uniform(0.82, 1.04)
	p.AGUOpPJ *= r.uniform(0.85, 1.05)
	p.DecodePJ *= r.uniform(0.85, 1.05)

	// Memory-side energies: publicly undocumented, larger mismatch.
	p.NoCFlitPJ *= r.uniform(0.70, 1.02)
	p.MCRequestPJ *= r.uniform(0.70, 1.02)
	p.PCIeActiveW *= r.uniform(0.80, 1.02)

	// Base power anchors.
	p.GlobalSchedW *= r.uniform(0.88, 1.02)
	p.ClusterBaseW *= r.uniform(0.88, 1.02)
	p.CoreBaseDynW *= r.uniform(0.88, 1.04)

	// Global analytic-model mismatch (wire loads, clock tree, activity
	// factors the simulator cannot see).
	p.DynScaleFactor *= r.uniform(0.86, 0.97)

	// Empirical-model transfer mismatch: the paper derives its execution
	// unit and base-power anchors on the GT240 and transfers them to other
	// cards (Section V-A notes the models "were obtained using the GT240
	// card"). Cards other than the calibration card therefore carry extra
	// per-anchor deviation.
	if cfg.Name != "GT240" {
		p.IntOpPJ *= r.uniform(0.84, 1.02)
		p.FPOpPJ *= r.uniform(0.84, 1.02)
		p.SFUOpPJ *= r.uniform(0.80, 1.04)
		p.GlobalSchedW *= r.uniform(0.82, 1.00)
		p.ClusterBaseW *= r.uniform(0.82, 1.00)
		p.CoreBaseDynW *= r.uniform(0.82, 1.00)
	}

	// Static: real chips leak slightly less than the calibrated model here
	// (paper Table IV: 17.6 vs 17.9 W; 80 vs 81.5 W).
	staticScale := r.uniform(0.972, 0.995)
	p.UndiffCoreStaticW *= staticScale
	p.NoCStaticW *= staticScale
	p.MCStaticW *= staticScale
	p.PCIeIdleW *= staticScale
	p.UncoreStaticW *= staticScale
	p.LeakageTempFactor *= staticScale
	return &t
}

// Name returns the card model name.
func (c *Card) Name() string { return c.name }

// RealAreaMM2 returns the physical die size (a datasheet constant, the
// "Real" area row of Table IV).
func (c *Card) RealAreaMM2() float64 {
	if a, ok := dieSizes[c.name]; ok {
		return a
	}
	// Unknown card: pretend the die is ~25 % bigger than modeled, the
	// typical gap the paper observes (undifferentiated logic).
	return c.model.Static().AreaMM2 * 1.25
}

// TrueStaticW exposes the ground-truth leakage. Real experiments cannot read
// this directly — they estimate it via frequency extrapolation — but tests
// use it to verify the estimation methodology.
func (c *Card) TrueStaticW() float64 { return c.model.Static().StaticW }

// SetClockScale changes the GPU clocks (all domains) to scale*nominal, the
// mechanism behind the static power estimation methodology of Section IV-B.
// Supported range is [0.5, 1.0]; the real driver exposes similar limits.
func (c *Card) SetClockScale(s float64) error {
	if s < 0.5 || s > 1.0 {
		return fmt.Errorf("hw: clock scale %.2f outside [0.5, 1.0]", s)
	}
	c.clockScale = s
	return nil
}

// ClockScale returns the current scaling.
func (c *Card) ClockScale() float64 { return c.clockScale }

// PrePostKernelPowerW is the card's power draw shortly before and after a
// kernel executes (clocks up, nothing running): static plus ~10 % idle
// dynamic — the state in which the paper observes 19.5 W (GT240) and 90 W
// (GTX580), "about 90 % of the power consumed by the card in this state thus
// seems to be static power".
func (c *Card) PrePostKernelPowerW() float64 {
	return c.TrueStaticW() / 0.9
}

// IdlePowerW is the deep-idle draw with power gating engaged (the GT240's
// ~15 W state).
func (c *Card) IdlePowerW() float64 {
	s := c.TrueStaticW()
	gated := s * (1 - c.truth.Power.IdleGatingFraction*2.35)
	if gated < 0 {
		gated = 0
	}
	return gated + s*0.1
}

// kernelTruePower obtains the ground-truth timing of a launch and returns
// the card's true average power (GPU + DRAM, since the rig measures the
// whole board) and the true kernel duration at the current clock scale.
// The timing stage is served through the simulation-result cache: the
// silicon perturbation touches only power-side anchors, so the truth
// configuration shares its timing key with the nominal one, and a kernel
// the simulator side of an experiment already ran (or a previous
// measurement at another clock scale — the scale is applied analytically
// below, never simulated) replays instead of re-simulating.
func (c *Card) kernelTruePower(l *kernel.Launch, mem *kernel.GlobalMem, cmem *kernel.ConstMem) (powerW, seconds float64, err error) {
	tr, err := simcache.Run(c.perf, l, mem, cmem)
	if err != nil {
		return 0, 0, err
	}
	rt, err := c.model.Evaluate(tr.Perf)
	if err != nil {
		return 0, 0, err
	}
	// Clock scaling: cycle counts are unchanged, wall time stretches by 1/s,
	// dynamic power scales by s, static stays. The DRAM splits the same way:
	// background and refresh are constant, command-driven components scale
	// with the traffic rate.
	s := c.clockScale
	seconds = rt.Seconds / s
	dramStatic := rt.DRAM.Background + rt.DRAM.Refresh
	dramDyn := rt.DRAM.Activate + rt.DRAM.ReadWrite + rt.DRAM.Termination
	powerW = rt.StaticW + dramStatic + (rt.DynamicW+dramDyn)*s
	return powerW, seconds, nil
}

// DRAMIdleW returns the board's DRAM background + refresh power: the rig
// measures the whole card, so frequency extrapolation recovers GPU static
// plus this term.
func (c *Card) DRAMIdleW() float64 {
	chip, err := gddr.ForType(c.truth.MemType, c.truth.MemDataRateGbps)
	if err != nil {
		chip = gddr.HynixGDDR5(c.truth.MemDataRateGbps)
	}
	return chip.IdlePower() * float64(c.truth.GDDRChips())
}

// TrueBoardStaticW is the frequency-independent board power: GPU leakage
// plus DRAM background — what the Section IV-B extrapolation converges to.
func (c *Card) TrueBoardStaticW() float64 { return c.TrueStaticW() + c.DRAMIdleW() }
