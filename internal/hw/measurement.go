package hw

import (
	"fmt"
	"math"

	"gpusimpow/internal/kernel"
)

// SeqItem is one kernel execution in a measured sequence.
type SeqItem struct {
	Launch *kernel.Launch
	Mem    *kernel.GlobalMem
	CMem   *kernel.ConstMem
	// Repeats executes the kernel back to back (the paper modifies
	// benchmarks with sub-500 us kernels to run 100 times, "because these
	// kernels are too short for reliable measurements").
	Repeats int
	// MinWindowS, when positive and Repeats is zero, auto-sizes the repeat
	// count so the measured window reaches at least this many seconds.
	MinWindowS float64
	// GapS is the idle gap after the kernel (clocks up, nothing running).
	GapS float64
}

// Measurement is the tool's per-kernel result: "the average power and amount
// of consumed energy can be calculated for each kernel execution" from the
// profiler timestamps and the sampled waveform.
type Measurement struct {
	KernelName string
	// AvgPowerW is the measured average power within the kernel window.
	AvgPowerW float64
	// EnergyJ is AvgPowerW integrated over the window.
	EnergyJ float64
	// WindowS is the measured window (kernel duration times repeats).
	WindowS float64
	// TrueKernelSeconds is one execution's true duration (from the
	// profiler; the paper's tool reads kernel start/end timestamps).
	TrueKernelSeconds float64
	// ShortWindow flags windows too short for the bulk capacitance of the
	// supply to settle — the measurement artifact the paper attributes the
	// mergeSort3 outlier to.
	ShortWindow bool
}

// Trace is the full sampled waveform of a measured sequence (Fig. 4 style).
type Trace struct {
	SampleHz float64
	// Samples holds the measured power at each tick.
	Samples []float64
	// Marks holds the [start, end) kernel windows in seconds.
	Marks [][2]float64
}

// TimeOf returns the timestamp of sample i.
func (tr *Trace) TimeOf(i int) float64 { return float64(i) / tr.SampleHz }

// avgWindow averages the samples within [t0, t1).
func (tr *Trace) avgWindow(t0, t1 float64) (float64, int) {
	i0 := int(t0 * tr.SampleHz)
	i1 := int(t1 * tr.SampleHz)
	if i1 <= i0 {
		i1 = i0 + 1
	}
	if i1 > len(tr.Samples) {
		i1 = len(tr.Samples)
	}
	if i0 >= len(tr.Samples) {
		return 0, 0
	}
	var sum float64
	for i := i0; i < i1; i++ {
		sum += tr.Samples[i]
	}
	return sum / float64(i1-i0), i1 - i0
}

// MeasureSequence executes a sequence of kernels on the virtual card and
// returns the sampled waveform plus per-kernel measurements. The waveform
// includes lead-in/lead-out idle, the supply's bulk-capacitance low-pass
// response, and the measurement chain's gain/offset/noise errors.
func (c *Card) MeasureSequence(items []SeqItem) (*Trace, []Measurement, error) {
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("hw: empty sequence")
	}
	const lead = 0.020 // seconds of idle before, between and after

	type phase struct {
		powerW float64
		durS   float64
		mark   int // index into measurements, or -1
	}
	idleW := c.PrePostKernelPowerW()
	phases := []phase{{idleW, lead, -1}}
	meas := make([]Measurement, len(items))

	for i, it := range items {
		trueW, oneT, err := c.kernelTruePower(it.Launch, it.Mem, it.CMem)
		if err != nil {
			return nil, nil, fmt.Errorf("hw: measuring %s: %w", it.Launch.Prog.Name, err)
		}
		if it.Repeats <= 0 {
			if it.MinWindowS > 0 {
				it.Repeats = RepeatsForWindow(oneT, it.MinWindowS)
			} else {
				it.Repeats = 1
			}
		}
		window := oneT * float64(it.Repeats)
		meas[i] = Measurement{
			KernelName:        it.Launch.Prog.Name,
			TrueKernelSeconds: oneT,
			WindowS:           window,
			ShortWindow:       window < 0.050, // the paper's 50 ms criterion
		}
		phases = append(phases, phase{trueW, window, i})
		gap := it.GapS
		if gap <= 0 {
			gap = lead
		}
		phases = append(phases, phase{idleW, gap, -1})
	}

	// Build the true waveform at the DAQ rate, applying the first-order
	// bulk-capacitance response, then push every sample through the chain.
	dt := 1.0 / DAQSampleHz
	tr := &Trace{SampleHz: DAQSampleHz, Marks: make([][2]float64, len(items))}
	level := idleW // filter state
	now := 0.0
	alpha := dt / c.capTauS
	if alpha > 1 {
		alpha = 1
	}
	for _, ph := range phases {
		n := int(math.Ceil(ph.durS / dt))
		if n < 1 {
			n = 1
		}
		if ph.mark >= 0 {
			tr.Marks[ph.mark] = [2]float64{now, now + ph.durS}
		}
		for i := 0; i < n; i++ {
			level += (ph.powerW - level) * alpha
			tr.Samples = append(tr.Samples, c.chain.measure(level))
		}
		now += float64(n) * dt
	}

	// The tool integrates the waveform between the profiler timestamps.
	for i := range meas {
		avg, n := tr.avgWindow(tr.Marks[i][0], tr.Marks[i][1])
		if n == 0 {
			return nil, nil, fmt.Errorf("hw: kernel %s too short to capture any sample", meas[i].KernelName)
		}
		meas[i].AvgPowerW = avg
		meas[i].EnergyJ = avg * meas[i].WindowS
	}
	return tr, meas, nil
}

// MeasureKernel measures one kernel (convenience wrapper). A non-positive
// repeat count auto-sizes the window to a reliable 150 ms.
func (c *Card) MeasureKernel(l *kernel.Launch, mem *kernel.GlobalMem, cmem *kernel.ConstMem, repeats int) (*Measurement, error) {
	item := SeqItem{Launch: l, Mem: mem, CMem: cmem, Repeats: repeats}
	if repeats <= 0 {
		item.Repeats = 0
		item.MinWindowS = 0.150
	}
	_, ms, err := c.MeasureSequence([]SeqItem{item})
	if err != nil {
		return nil, err
	}
	return &ms[0], nil
}

// RepeatsForWindow returns the repeat count needed so the measured window
// reaches at least wantS seconds (the paper's "execute the same kernels 100
// times" adjustment, generalised).
func RepeatsForWindow(oneKernelS, wantS float64) int {
	if oneKernelS <= 0 {
		return 1
	}
	r := int(math.Ceil(wantS / oneKernelS))
	if r < 1 {
		r = 1
	}
	return r
}
