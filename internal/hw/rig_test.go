package hw

import (
	"math"
	"testing"
)

func TestChainRailSplit(t *testing.T) {
	// GT240-class: slot only; GTX580-class: slot + external cables (the
	// paper inserted 10 mOhm resistors into the PCIe power cables for it).
	small := newChain(newRNG(1), false)
	big := newChain(newRNG(2), true)
	if len(small.rails) != 2 {
		t.Errorf("slot-powered card: %d rails, want 2", len(small.rails))
	}
	if len(big.rails) != 4 {
		t.Errorf("externally-powered card: %d rails, want 4", len(big.rails))
	}
	for _, c := range []*chain{small, big} {
		var share float64
		for _, r := range c.rails {
			share += r.share
		}
		if math.Abs(share-1) > 1e-9 {
			t.Errorf("rail shares sum to %v, want 1", share)
		}
	}
}

func TestChainErrorWithinSpec(t *testing.T) {
	// Averaged over many samples, the chain's systematic error must stay
	// within the paper's +/-3.2 % budget for a realistic power level.
	c := newChain(newRNG(99), false)
	const trueW = 35.0
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		sum += c.measure(trueW)
	}
	avg := sum / n
	if rel := math.Abs(avg-trueW) / trueW; rel > c.worstCaseErrorFraction() {
		t.Errorf("chain systematic error %.2f%% beyond the 3.2%% budget", 100*rel)
	}
}

func TestChainGainErrorsBounded(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		c := newChain(newRNG(seed), seed%2 == 0)
		for _, r := range c.rails {
			if math.Abs(r.voltageGainErr) > 0.017 {
				t.Fatalf("voltage gain error %v beyond ±1.7%%", r.voltageGainErr)
			}
			if math.Abs(r.currentGainErr) > 0.015 {
				t.Fatalf("current gain error %v beyond ±1.5%%", r.currentGainErr)
			}
			if math.Abs(r.offsetW) > 0.060 {
				t.Fatalf("offset %v beyond ±60 mW", r.offsetW)
			}
		}
	}
}

func TestWaveformRCStepResponse(t *testing.T) {
	// The supply capacitance must produce a first-order rise: after one
	// time constant the waveform reaches ~63% of a power step.
	card, err := newTestCard(t)
	if err != nil {
		t.Fatal(err)
	}
	// Long kernel: the plateau must be reached well within the window.
	l, mem := testBusyLaunch(12)
	tr, ms, err := card.MeasureSequence([]SeqItem{{Launch: l, Mem: mem, MinWindowS: 0.2}})
	if err != nil {
		t.Fatal(err)
	}
	start := int(tr.Marks[0][0] * tr.SampleHz)
	idle := tr.Samples[start-10]
	plateau := ms[0].AvgPowerW
	// Sample one time constant in: ~63% of the step.
	tauSamples := int(card.capTauS * tr.SampleHz)
	atTau := tr.Samples[start+tauSamples]
	frac := (atTau - idle) / (plateau - idle)
	if frac < 0.45 || frac > 0.8 {
		t.Errorf("step response at tau = %.2f of step, want ~0.63", frac)
	}
	// Deep into the window the waveform must sit at the plateau.
	end := int(tr.Marks[0][1]*tr.SampleHz) - 5
	late := tr.Samples[end]
	if math.Abs(late-plateau)/plateau > 0.05 {
		t.Errorf("late sample %.2f far from plateau %.2f", late, plateau)
	}
}

// helpers shared with hw_test.go

func newTestCard(t *testing.T) (*Card, error) {
	t.Helper()
	return NewCard(testGT240())
}
