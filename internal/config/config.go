// Package config defines the GPU architecture description consumed by both
// the performance simulator and the power model. Following the paper ("the
// key parameters of the simulated architecture are supplied using a simple
// XML-based interface"), configurations serialize to and from XML, and the
// two validation targets of the paper — the GeForce GT240 (GT215 chip) and
// the GeForce GTX580 (GF110 chip) — ship as presets matching Table II.
package config

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"os"
)

// GPU is a complete architecture configuration.
type GPU struct {
	XMLName xml.Name `xml:"gpu"`

	Name      string  `xml:"name,attr"`
	ProcessNM float64 `xml:"processNM"`

	// Clock domains. CoreClockMHz is the shader (hot) clock; UncoreClockMHz
	// drives the NoC, L2 and memory controller front-end; the DRAM interface
	// runs at MemDataRateGbps per pin.
	CoreClockMHz    float64 `xml:"coreClockMHz"`
	UncoreClockMHz  float64 `xml:"uncoreClockMHz"`
	MemDataRateGbps float64 `xml:"memDataRateGbps"`

	// Organization.
	Clusters          int `xml:"clusters"`
	CoresPerCluster   int `xml:"coresPerCluster"`
	WarpSize          int `xml:"warpSize"`
	MaxWarpsPerCore   int `xml:"maxWarpsPerCore"`
	MaxBlocksPerCore  int `xml:"maxBlocksPerCore"`
	MaxThreadsPerCore int `xml:"maxThreadsPerCore"`
	RegsPerCore       int `xml:"regsPerCore"` // 32-bit registers
	Schedulers        int `xml:"schedulers"`  // warp issue schedulers per core
	// SchedulerPolicy selects the warp scheduling policy: "rr" (rotating
	// priority / round-robin, the paper's baseline), "gto" (greedy then
	// oldest), or "twolevel" (Narasiman et al., the extension the paper's
	// conclusion proposes evaluating "from a power perspective"). Empty
	// means "rr".
	SchedulerPolicy string `xml:"schedulerPolicy"`
	// ActiveWarpsPerSched is the active-set size of the two-level scheduler
	// (ignored by other policies; default 8).
	ActiveWarpsPerSched int `xml:"activeWarpsPerSched"`
	FUsPerCore          int `xml:"fusPerCore"` // fused INT/FP SIMD lanes
	SFUsPerCore         int `xml:"sfusPerCore"`

	// Scoreboarding: when false the core uses blocking barrel issue (one
	// outstanding instruction per warp), as Table II indicates for GT240.
	HasScoreboard     bool `xml:"hasScoreboard"`
	ScoreboardEntries int  `xml:"scoreboardEntries"`

	// Pipeline latencies in core cycles.
	ALULatency  int `xml:"aluLatency"`
	SFULatency  int `xml:"sfuLatency"`
	SMemLatency int `xml:"smemLatency"`

	// Core memory structures.
	SharedMemPerCoreKB int `xml:"sharedMemPerCoreKB"`
	SMemBanks          int `xml:"smemBanks"`
	L1KB               int `xml:"l1KB"` // 0 = no L1 data cache (pre-Fermi)
	L1LineB            int `xml:"l1LineB"`
	L1Assoc            int `xml:"l1Assoc"`
	ConstCacheKB       int `xml:"constCacheKB"`
	ConstLineB         int `xml:"constLineB"`
	// Texture cache (0 = absent; the paper's published model omits it and
	// lists it as future work — enabling it here is that future variant).
	TexCacheKB int `xml:"texCacheKB"`
	TexLineB   int `xml:"texLineB"`

	// L2 (shared, connected through the NoC). L2KB == 0 means no L2.
	L2KB    int `xml:"l2KB"`
	L2LineB int `xml:"l2LineB"`
	L2Assoc int `xml:"l2Assoc"`

	// DRAM.
	// MemType selects the DRAM technology: "gddr5" (default) or "ddr3"
	// ("the current generation of GPUs such as Fermi use either DDR3 SDRAM
	// or GDDR5 SGRAM chips").
	MemType         string  `xml:"memType"`
	MemChannels     int     `xml:"memChannels"`     // 32-bit GDDR5 channels
	DRAMBanks       int     `xml:"dramBanks"`       // banks per channel
	DRAMRowBytes    int     `xml:"dramRowBytes"`    // row-buffer size
	DRAMLatencyCore int     `xml:"dramLatencyCore"` // base access latency, core cycles
	DRAMTRCDNS      float64 `xml:"dramTRCDNS"`
	DRAMTRPNS       float64 `xml:"dramTRPNS"`

	// PCIe interface.
	PCIeLanes int `xml:"pcieLanes"`

	// DenseClock disables the simulator's event-driven fast-forward and
	// forces the classic tick-every-cycle clock loop. The two modes are
	// bit-identical in every activity counter and in the functional memory
	// image (asserted by the sim package's equivalence tests); dense mode
	// exists for debugging and for benchmarking the fast-forward speedup.
	DenseClock bool `xml:"denseClock,omitempty"`

	// DisableSimCache forces every launch through a fresh timing simulation
	// instead of the process-wide content-addressed result cache
	// (internal/simcache). The cached and fresh paths are bit-identical in
	// every reported metric (enforced by the core package's equivalence
	// tests); the knob exists for debugging and for benchmarking the cache.
	// The GPUSIMPOW_DISABLE_SIM_CACHE environment variable has the same
	// effect process-wide.
	DisableSimCache bool `xml:"disableSimCache,omitempty"`

	// SimWorkers bounds how many OS threads one timing simulation may use
	// to step cores in parallel within a clock cycle. 1 forces the
	// sequential reference loop; 0 (the default) derives a worker count
	// from GOMAXPROCS (capped at the physical CPU count) minus whatever
	// the experiment runner's pool has already claimed, so sweep-level
	// fan-out times intra-sim workers never oversubscribes the node. The parallel and sequential paths are
	// bit-identical in every activity counter and in the functional memory
	// image (asserted by the sim package's TestParallelEquivalence), which
	// is why the knob is classified timing-neutral in partition.go. The
	// GPUSIMPOW_SIM_WORKERS environment variable overrides it process-wide.
	SimWorkers int `xml:"simWorkers,omitempty"`

	Power PowerCal `xml:"power"`
}

// ---------------------------------------------------------------------------
// Timing-key vs. power-parameter partition.
//
// The cycle-level simulator (internal/sim) reads only a subset of the
// configuration; every other field affects power evaluation alone. The
// partition is explicit here so the simulation-result cache
// (internal/simcache) can key timing results by exactly the fields that
// determine them: two configurations differing only in power-side
// parameters — the process node, the uncore clock, the memory technology
// label, the PCIe width, the whole PowerCal block, the name — share
// cycle-accurate results, which is what lets the DVFS, process-node and
// static-extrapolation sweeps simulate once and evaluate many times.
//
// CoreClockMHz and MemDataRateGbps ARE timing-relevant: DRAM nanosecond
// timings and per-burst transfer times are converted into core cycles with
// them. DenseClock and DisableSimCache are excluded deliberately: the
// event-driven and dense clock loops are bit-identical (enforced by the sim
// package's equivalence tests), and the cache knob must not change what is
// simulated.
//
// The partition is machine-checked twice: gpowlint's timingpartition pass
// cross-references the fields internal/sim and internal/core actually read
// against this encoding and the explicit lists in partition.go, and
// TestTimingPartitionExhaustive perturbs every field asserting the key
// moves exactly for the encoded ones. See docs/LINTS.md.
// ---------------------------------------------------------------------------

// TimingKey returns a stable content hash over the timing-relevant fields:
// configurations with equal keys produce bit-identical simulation results
// for any kernel. Adding a field the simulator reads requires extending
// appendTimingFields (and bumping timingKeyVersion).
func (g *GPU) TimingKey() [32]byte {
	return sha256.Sum256(g.appendTimingFields(make([]byte, 0, 512)))
}

// timingKeyVersion invalidates all keys when the encoding (or the set of
// timing-relevant fields) changes. v2: dropped MaxThreadsPerCore — it is
// validation-derived (Validate pins it to MaxWarpsPerCore*WarpSize) and no
// timing-side code reads it, so keying it was dead material.
const timingKeyVersion = 2

// appendTimingFields appends a fixed-order binary encoding of every field
// the performance simulator reads. Field order is load-bearing; integers are
// encoded as little-endian uint64, floats as their IEEE-754 bit patterns,
// strings with a length prefix.
func (g *GPU) appendTimingFields(b []byte) []byte {
	u := func(v uint64) { b = binary.LittleEndian.AppendUint64(b, v) }
	i := func(v int) { u(uint64(int64(v))) }
	f := func(v float64) { u(math.Float64bits(v)) }
	s := func(v string) { i(len(v)); b = append(b, v...) }
	o := func(v bool) {
		if v {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}

	u(timingKeyVersion)
	// Clocks and DRAM data rate (converted into core cycles by the DRAM
	// timing model).
	f(g.CoreClockMHz)
	f(g.MemDataRateGbps)
	// Organization.
	i(g.Clusters)
	i(g.CoresPerCluster)
	i(g.WarpSize)
	i(g.MaxWarpsPerCore)
	i(g.MaxBlocksPerCore)
	i(g.RegsPerCore)
	i(g.Schedulers)
	s(g.SchedulerPolicy)
	i(g.ActiveWarpsPerSched)
	i(g.FUsPerCore)
	i(g.SFUsPerCore)
	o(g.HasScoreboard)
	i(g.ScoreboardEntries)
	// Pipeline latencies.
	i(g.ALULatency)
	i(g.SFULatency)
	i(g.SMemLatency)
	// Core memory structures.
	i(g.SharedMemPerCoreKB)
	i(g.SMemBanks)
	i(g.L1KB)
	i(g.L1LineB)
	i(g.L1Assoc)
	i(g.ConstCacheKB)
	i(g.ConstLineB)
	i(g.TexCacheKB)
	i(g.TexLineB)
	// L2.
	i(g.L2KB)
	i(g.L2LineB)
	i(g.L2Assoc)
	// DRAM geometry and timing.
	i(g.MemChannels)
	i(g.DRAMBanks)
	i(g.DRAMRowBytes)
	i(g.DRAMLatencyCore)
	f(g.DRAMTRCDNS)
	f(g.DRAMTRPNS)
	return b
}

// PowerCal holds the empirical power-model anchors (paper §III-D and Fig. 4).
// Energies are specified at the configuration's own process node.
type PowerCal struct {
	// Per-lane per-instruction energies in picojoules (measured: INT ~40 pJ,
	// FP ~75 pJ on GT240 at 40 nm; NVIDIA reports 50 pJ/FP op).
	IntOpPJ float64 `xml:"intOpPJ"`
	FPOpPJ  float64 `xml:"fpOpPJ"`
	SFUOpPJ float64 `xml:"sfuOpPJ"`
	// Energy per generated address in the AGU (per sub-AGU operation).
	AGUOpPJ float64 `xml:"aguOpPJ"`

	// Empirical base power (paper Fig. 4): activating the global work
	// scheduler costs GlobalSchedW; each activated cluster costs
	// ClusterBaseW; each active core adds CoreBaseDynW of unattributable
	// dynamic power.
	GlobalSchedW float64 `xml:"globalSchedW"`
	ClusterBaseW float64 `xml:"clusterBaseW"`
	CoreBaseDynW float64 `xml:"coreBaseDynW"`

	// Undifferentiated core: per-core static power and area of components
	// with no public documentation (ROPs, video decode, texture units...).
	UndiffCoreStaticW  float64 `xml:"undiffCoreStaticW"`
	UndiffCoreAreaMM2  float64 `xml:"undiffCoreAreaMM2"`
	UncoreStaticW      float64 `xml:"uncoreStaticW"`     // fixed uncore leakage (PLLs, IO)
	UncoreAreaMM2      float64 `xml:"uncoreAreaMM2"`     // pads, PHYs, display
	NoCStaticW         float64 `xml:"nocStaticW"`        // NoC leakage anchor (McPAT-style)
	MCStaticW          float64 `xml:"mcStaticW"`         // memory controller leakage anchor
	PCIeIdleW          float64 `xml:"pcieIdleW"`         // PCIe controller leakage
	PCIeActiveW        float64 `xml:"pcieActiveW"`       // PCIe PHY dynamic while the GPU is active
	PCIeDynPerKBJ      float64 `xml:"pcieDynPerKBJ"`     // energy per KB transferred
	NoCFlitPJ          float64 `xml:"nocFlitPJ"`         // energy per flit-hop
	MCRequestPJ        float64 `xml:"mcRequestPJ"`       // controller energy per request
	DecodePJ           float64 `xml:"decodePJ"`          // per decoded instruction
	FPUAreaMM2         float64 `xml:"fpuAreaMM2"`        // Galal & Horowitz derived, per lane
	SFUAreaMM2         float64 `xml:"sfuAreaMM2"`        // De Caro et al. derived, per SFU
	SFUStaticWPerUnit  float64 `xml:"sfuStaticWPerUnit"` // De Caro et al. leakage
	GDDRChipsOverride  int     `xml:"gddrChipsOverride"` // 0 = MemChannels
	TempCelsius        float64 `xml:"tempCelsius"`
	LeakageTempFactor  float64 `xml:"leakageTempFactor"`  // multiplier applied to all leakage
	DynScaleFactor     float64 `xml:"dynScaleFactor"`     // global dynamic calibration (1.0 default)
	IdleGatingFraction float64 `xml:"idleGatingFraction"` // fraction of static gated off when idle
}

// NumCores returns the total core (SM) count.
func (g *GPU) NumCores() int { return g.Clusters * g.CoresPerCluster }

// CoreClockHz returns the shader clock in hertz.
func (g *GPU) CoreClockHz() float64 { return g.CoreClockMHz * 1e6 }

// UncoreRatio returns core-clock cycles per uncore cycle.
func (g *GPU) UncoreRatio() float64 { return g.CoreClockMHz / g.UncoreClockMHz }

// MemBandwidthGBs returns the peak DRAM bandwidth in GB/s.
func (g *GPU) MemBandwidthGBs() float64 {
	return g.MemDataRateGbps * float64(g.MemChannels) * 32 / 8
}

// GDDRChips returns the number of DRAM devices on the board (one x32 device
// per 32-bit channel unless overridden).
func (g *GPU) GDDRChips() int {
	if g.Power.GDDRChipsOverride > 0 {
		return g.Power.GDDRChipsOverride
	}
	return g.MemChannels
}

// Validate checks internal consistency.
func (g *GPU) Validate() error {
	switch {
	case g.Name == "":
		return fmt.Errorf("config: missing name")
	case g.ProcessNM <= 0:
		return fmt.Errorf("config %s: processNM must be positive", g.Name)
	case g.CoreClockMHz <= 0 || g.UncoreClockMHz <= 0:
		return fmt.Errorf("config %s: clocks must be positive", g.Name)
	case g.CoreClockMHz < g.UncoreClockMHz:
		return fmt.Errorf("config %s: shader clock below uncore clock", g.Name)
	case g.Clusters <= 0 || g.CoresPerCluster <= 0:
		return fmt.Errorf("config %s: need positive cluster/core counts", g.Name)
	case g.WarpSize <= 0 || g.WarpSize&(g.WarpSize-1) != 0:
		return fmt.Errorf("config %s: warp size must be a positive power of two", g.Name)
	case g.MaxWarpsPerCore <= 0:
		return fmt.Errorf("config %s: need positive warps per core", g.Name)
	case g.MaxThreadsPerCore < g.WarpSize:
		return fmt.Errorf("config %s: maxThreadsPerCore below warp size", g.Name)
	case g.MaxWarpsPerCore*g.WarpSize != g.MaxThreadsPerCore:
		return fmt.Errorf("config %s: maxThreadsPerCore (%d) != maxWarps*warpSize (%d)",
			g.Name, g.MaxThreadsPerCore, g.MaxWarpsPerCore*g.WarpSize)
	case g.FUsPerCore <= 0 || g.FUsPerCore > g.WarpSize:
		return fmt.Errorf("config %s: FUs per core must be in (0, warpSize]", g.Name)
	case g.SFUsPerCore <= 0:
		return fmt.Errorf("config %s: need at least one SFU", g.Name)
	case g.Schedulers <= 0:
		return fmt.Errorf("config %s: need at least one scheduler", g.Name)
	case g.SchedulerPolicy != "" && g.SchedulerPolicy != "rr" &&
		g.SchedulerPolicy != "gto" && g.SchedulerPolicy != "twolevel":
		return fmt.Errorf("config %s: unknown scheduler policy %q", g.Name, g.SchedulerPolicy)
	case g.HasScoreboard && g.ScoreboardEntries <= 0:
		return fmt.Errorf("config %s: scoreboard enabled with no entries", g.Name)
	case g.RegsPerCore <= 0:
		return fmt.Errorf("config %s: need positive register file", g.Name)
	case g.SharedMemPerCoreKB < 0 || g.SMemBanks <= 0:
		return fmt.Errorf("config %s: bad shared memory geometry", g.Name)
	case g.L1KB > 0 && (g.L1LineB <= 0 || g.L1Assoc <= 0):
		return fmt.Errorf("config %s: L1 present but line/assoc unset", g.Name)
	case g.L2KB > 0 && (g.L2LineB <= 0 || g.L2Assoc <= 0):
		return fmt.Errorf("config %s: L2 present but line/assoc unset", g.Name)
	case g.ConstCacheKB <= 0 || g.ConstLineB <= 0:
		return fmt.Errorf("config %s: constant cache required", g.Name)
	case g.TexCacheKB > 0 && g.TexLineB <= 0:
		return fmt.Errorf("config %s: texture cache present but line size unset", g.Name)
	case g.MemChannels <= 0 || g.DRAMBanks <= 0 || g.DRAMRowBytes <= 0:
		return fmt.Errorf("config %s: bad DRAM geometry", g.Name)
	case g.DRAMLatencyCore <= 0:
		return fmt.Errorf("config %s: DRAM latency must be positive", g.Name)
	case g.MemDataRateGbps <= 0:
		return fmt.Errorf("config %s: memory data rate must be positive", g.Name)
	case g.MemType != "" && g.MemType != "gddr5" && g.MemType != "ddr3":
		return fmt.Errorf("config %s: unknown memory type %q", g.Name, g.MemType)
	case g.ALULatency <= 0 || g.SFULatency <= 0 || g.SMemLatency <= 0:
		return fmt.Errorf("config %s: pipeline latencies must be positive", g.Name)
	case g.PCIeLanes <= 0:
		return fmt.Errorf("config %s: PCIe lanes must be positive", g.Name)
	case g.SimWorkers < 0:
		return fmt.Errorf("config %s: simWorkers must be non-negative", g.Name)
	}
	p := g.Power
	if p.IntOpPJ <= 0 || p.FPOpPJ <= 0 || p.SFUOpPJ <= 0 {
		return fmt.Errorf("config %s: execution-unit energies must be positive", g.Name)
	}
	if p.DynScaleFactor <= 0 {
		return fmt.Errorf("config %s: dynScaleFactor must be positive", g.Name)
	}
	if p.IdleGatingFraction < 0 || p.IdleGatingFraction > 1 {
		return fmt.Errorf("config %s: idleGatingFraction must be in [0,1]", g.Name)
	}
	return nil
}

// WriteXML serializes the configuration.
func (g *GPU) WriteXML(w io.Writer) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(g); err != nil {
		return fmt.Errorf("config: encoding %s: %w", g.Name, err)
	}
	return enc.Close()
}

// ReadXML parses a configuration and validates it.
func ReadXML(r io.Reader) (*GPU, error) {
	var g GPU
	if err := xml.NewDecoder(r).Decode(&g); err != nil {
		return nil, fmt.Errorf("config: decoding: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadFile reads a configuration from an XML file.
func LoadFile(path string) (*GPU, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	defer f.Close()
	return ReadXML(f)
}

// SaveFile writes the configuration to an XML file.
func (g *GPU) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("config: %w", err)
	}
	if err := g.WriteXML(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
