package config

import (
	"reflect"
	"testing"
)

// perturbValue nudges v to a different value of the same type. Returns
// false for kinds the GPU struct does not contain (a new field of an
// unhandled kind fails the test loudly instead of silently passing).
func perturbValue(v reflect.Value) bool {
	switch v.Kind() {
	case reflect.String:
		v.SetString(v.String() + "x")
	case reflect.Bool:
		v.SetBool(!v.Bool())
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		v.SetInt(v.Int() + 1)
	case reflect.Float32, reflect.Float64:
		v.SetFloat(v.Float() + 1)
	default:
		return false
	}
	return true
}

// TestTimingPartitionExhaustive perturbs every GPU field one at a time and
// asserts the timing key changes exactly when the field is neither
// power-only nor timing-neutral. This is the runtime half of the
// partition contract: gpowlint's timingpartition pass proves the
// classified fields match what timing-side code actually reads; this test
// proves appendTimingFields matches the classification. A new GPU field
// fails here until it is either encoded or added to one of the lists in
// partition.go.
func TestTimingPartitionExhaustive(t *testing.T) {
	unkeyed := map[string]bool{}
	for _, name := range powerOnlyFields {
		unkeyed[name] = true
	}
	for _, name := range timingNeutralFields {
		if unkeyed[name] {
			t.Fatalf("%s appears in both powerOnlyFields and timingNeutralFields", name)
		}
		unkeyed[name] = true
	}

	gpuType := reflect.TypeOf(GPU{})
	for name := range unkeyed {
		if _, ok := gpuType.FieldByName(name); !ok {
			t.Fatalf("partition.go classifies %q, which is not a GPU field", name)
		}
	}

	baseKey := GT240().TimingKey()
	for i := 0; i < gpuType.NumField(); i++ {
		field := gpuType.Field(i)
		if field.Name == "XMLName" {
			continue // xml bookkeeping, not configuration
		}
		if field.Type.Kind() == reflect.Struct {
			// Power (PowerCal): perturb each sub-field individually; none
			// may move the key, since the whole block is power-only.
			if !unkeyed[field.Name] {
				t.Errorf("struct field %s must be classified in partition.go", field.Name)
				continue
			}
			for j := 0; j < field.Type.NumField(); j++ {
				cfg := GT240()
				sub := reflect.ValueOf(cfg).Elem().Field(i).Field(j)
				if !perturbValue(sub) {
					t.Errorf("%s.%s: unhandled kind %s", field.Name, field.Type.Field(j).Name, sub.Kind())
					continue
				}
				if cfg.TimingKey() != baseKey {
					t.Errorf("%s.%s is classified power-only but perturbing it changes the timing key", field.Name, field.Type.Field(j).Name)
				}
			}
			continue
		}

		cfg := GT240()
		v := reflect.ValueOf(cfg).Elem().Field(i)
		if !perturbValue(v) {
			t.Errorf("%s: unhandled kind %s — extend perturbValue", field.Name, v.Kind())
			continue
		}
		changed := cfg.TimingKey() != baseKey
		if unkeyed[field.Name] && changed {
			t.Errorf("%s is classified as unkeyed in partition.go but perturbing it changes the timing key", field.Name)
		}
		if !unkeyed[field.Name] && !changed {
			t.Errorf("%s is unclassified yet perturbing it leaves the timing key unchanged — encode it in appendTimingFields or add it to partition.go", field.Name)
		}
	}
}

// TestSimWorkersIsTimingNeutral pins the intra-simulation parallelism knob
// outside the timing key: a parallel run and a sequential run of the same
// configuration must share cached timing results (the two paths are proven
// bit-identical by the sim package's TestParallelEquivalence). If someone
// encodes SimWorkers in appendTimingFields, this test and the exhaustive
// perturbation test above both fail.
func TestSimWorkersIsTimingNeutral(t *testing.T) {
	a, b := GT240(), GT240()
	b.SimWorkers = 8
	if a.TimingKey() != b.TimingKey() {
		t.Fatalf("SimWorkers moved the timing key: parallel and sequential runs would stop sharing cache entries")
	}
}
