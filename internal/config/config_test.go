package config

import (
	"bytes"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestPresetsValidate(t *testing.T) {
	for name, mk := range Presets() {
		g := mk()
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.Name != name {
			t.Errorf("preset %s reports name %s", name, g.Name)
		}
	}
}

func TestGT240MatchesTableII(t *testing.T) {
	g := GT240()
	if got := g.NumCores(); got != 12 {
		t.Errorf("GT240 cores = %d, want 12", got)
	}
	if g.MaxThreadsPerCore != 768 {
		t.Errorf("GT240 threads/core = %d, want 768", g.MaxThreadsPerCore)
	}
	if g.FUsPerCore != 8 {
		t.Errorf("GT240 FUs/core = %d, want 8", g.FUsPerCore)
	}
	if g.UncoreClockMHz != 550 {
		t.Errorf("GT240 uncore = %v, want 550", g.UncoreClockMHz)
	}
	if r := g.UncoreRatio(); r < 2.4 || r > 2.5 {
		t.Errorf("GT240 shader-to-uncore = %v, want ~2.47", r)
	}
	if g.MaxWarpsPerCore != 24 {
		t.Errorf("GT240 warps = %d, want 24", g.MaxWarpsPerCore)
	}
	if g.HasScoreboard {
		t.Error("GT240 must not have a scoreboard (Table II)")
	}
	if g.L2KB != 0 {
		t.Error("GT240 must not have an L2 (Table II)")
	}
	if g.ProcessNM != 40 {
		t.Errorf("GT240 process = %v, want 40", g.ProcessNM)
	}
	if g.Clusters != 4 {
		t.Errorf("GT240 clusters = %d, want 4 (paper Fig. 4)", g.Clusters)
	}
}

func TestGTX580MatchesTableII(t *testing.T) {
	g := GTX580()
	if got := g.NumCores(); got != 16 {
		t.Errorf("GTX580 cores = %d, want 16", got)
	}
	if g.MaxThreadsPerCore != 1536 {
		t.Errorf("GTX580 threads/core = %d, want 1536", g.MaxThreadsPerCore)
	}
	if g.FUsPerCore != 32 {
		t.Errorf("GTX580 FUs/core = %d, want 32", g.FUsPerCore)
	}
	if g.UncoreClockMHz != 882 {
		t.Errorf("GTX580 uncore = %v, want 882", g.UncoreClockMHz)
	}
	if r := g.UncoreRatio(); r != 2 {
		t.Errorf("GTX580 shader-to-uncore = %v, want 2", r)
	}
	if g.MaxWarpsPerCore != 48 {
		t.Errorf("GTX580 warps = %d, want 48", g.MaxWarpsPerCore)
	}
	if !g.HasScoreboard {
		t.Error("GTX580 must have a scoreboard (Table II)")
	}
	if g.L2KB != 768 {
		t.Errorf("GTX580 L2 = %d KB, want 768 (Table II)", g.L2KB)
	}
}

func TestPaperCalibrationAnchors(t *testing.T) {
	g := GT240()
	if g.Power.IntOpPJ != 40 || g.Power.FPOpPJ != 75 {
		t.Error("GT240 must carry the paper's measured 40 pJ INT / 75 pJ FP energies")
	}
	if g.Power.GlobalSchedW != 3.34 || g.Power.ClusterBaseW != 0.692 {
		t.Error("GT240 must carry the paper's Fig. 4 base-power anchors")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	for name, mk := range Presets() {
		g := mk()
		var buf bytes.Buffer
		if err := g.WriteXML(&buf); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}
		got, err := ReadXML(&buf)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		got.XMLName = g.XMLName // decoder records the element name; irrelevant for equality
		if !reflect.DeepEqual(g, got) {
			t.Errorf("%s: round trip mismatch\n  in: %+v\n out: %+v", name, g, got)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "gt240.xml")
	g := GT240()
	if err := g.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	got.XMLName = g.XMLName
	if !reflect.DeepEqual(g, got) {
		t.Error("file round trip mismatch")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.xml")); err == nil {
		t.Error("loading missing file should error")
	}
}

func TestReadXMLRejectsInvalid(t *testing.T) {
	if _, err := ReadXML(strings.NewReader("<gpu name=\"x\"></gpu>")); err == nil {
		t.Error("incomplete config should fail validation")
	}
	if _, err := ReadXML(strings.NewReader("not xml at all")); err == nil {
		t.Error("garbage should fail decoding")
	}
}

func TestValidateCatchesBreakage(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*GPU)
	}{
		{"no name", func(g *GPU) { g.Name = "" }},
		{"zero process", func(g *GPU) { g.ProcessNM = 0 }},
		{"zero clock", func(g *GPU) { g.CoreClockMHz = 0 }},
		{"shader below uncore", func(g *GPU) { g.CoreClockMHz = g.UncoreClockMHz / 2 }},
		{"zero clusters", func(g *GPU) { g.Clusters = 0 }},
		{"warp size not pow2", func(g *GPU) { g.WarpSize = 24 }},
		{"thread/warp mismatch", func(g *GPU) { g.MaxThreadsPerCore = 100 }},
		{"too many FUs", func(g *GPU) { g.FUsPerCore = 64 }},
		{"zero SFUs", func(g *GPU) { g.SFUsPerCore = 0 }},
		{"zero schedulers", func(g *GPU) { g.Schedulers = 0 }},
		{"scoreboard no entries", func(g *GPU) { g.HasScoreboard = true; g.ScoreboardEntries = 0 }},
		{"no regs", func(g *GPU) { g.RegsPerCore = 0 }},
		{"no smem banks", func(g *GPU) { g.SMemBanks = 0 }},
		{"L2 missing geometry", func(g *GPU) { g.L2KB = 128; g.L2LineB = 0 }},
		{"no const cache", func(g *GPU) { g.ConstCacheKB = 0 }},
		{"no channels", func(g *GPU) { g.MemChannels = 0 }},
		{"no dram latency", func(g *GPU) { g.DRAMLatencyCore = 0 }},
		{"no data rate", func(g *GPU) { g.MemDataRateGbps = 0 }},
		{"no alu latency", func(g *GPU) { g.ALULatency = 0 }},
		{"no pcie", func(g *GPU) { g.PCIeLanes = 0 }},
		{"no int energy", func(g *GPU) { g.Power.IntOpPJ = 0 }},
		{"zero dyn scale", func(g *GPU) { g.Power.DynScaleFactor = 0 }},
		{"bad gating", func(g *GPU) { g.Power.IdleGatingFraction = 2 }},
	}
	for _, c := range cases {
		g := GT240()
		c.break_(g)
		if err := g.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestDerivedQuantities(t *testing.T) {
	g := GT240()
	// 128-bit bus at 3.4 Gbps/pin = 54.4 GB/s.
	if bw := g.MemBandwidthGBs(); bw < 54 || bw > 55 {
		t.Errorf("GT240 bandwidth %v GB/s, want ~54.4", bw)
	}
	if g.GDDRChips() != 4 {
		t.Errorf("GT240 chips = %d, want 4", g.GDDRChips())
	}
	g.Power.GDDRChipsOverride = 8
	if g.GDDRChips() != 8 {
		t.Error("GDDR chip override ignored")
	}
	g2 := GTX580()
	if bw := g2.MemBandwidthGBs(); bw < 190 || bw > 195 {
		t.Errorf("GTX580 bandwidth %v GB/s, want ~192", bw)
	}
}

func TestTimingKeyIgnoresPowerSideParams(t *testing.T) {
	base := GT240().TimingKey()
	// Every mutation here is power/tech/presentation-side: the performance
	// simulator never reads these fields, so the timing key must not move.
	powerSide := []struct {
		name   string
		change func(*GPU)
	}{
		{"name", func(g *GPU) { g.Name = "GT240@28nm" }},
		{"process node", func(g *GPU) { g.ProcessNM = 28 }},
		{"uncore clock", func(g *GPU) { g.UncoreClockMHz = 400 }},
		{"memory technology label", func(g *GPU) { g.MemType = "ddr3" }},
		{"pcie lanes", func(g *GPU) { g.PCIeLanes = 8 }},
		{"dense clock", func(g *GPU) { g.DenseClock = true }},
		{"cache knob", func(g *GPU) { g.DisableSimCache = true }},
		{"fp energy", func(g *GPU) { g.Power.FPOpPJ *= 2 }},
		{"base power", func(g *GPU) { g.Power.ClusterBaseW *= 3 }},
		{"dyn scale", func(g *GPU) { g.Power.DynScaleFactor = 0.5 }},
		{"leakage temp", func(g *GPU) { g.Power.LeakageTempFactor = 1.4 }},
		{"gddr chips", func(g *GPU) { g.Power.GDDRChipsOverride = 8 }},
	}
	for _, c := range powerSide {
		g := GT240()
		c.change(g)
		if g.TimingKey() != base {
			t.Errorf("%s: power-side change moved the timing key", c.name)
		}
	}
}

func TestTimingKeySeesTimingParams(t *testing.T) {
	base := GT240().TimingKey()
	seen := map[[32]byte]string{base: "base"}
	// Every mutation here changes what the simulator does; each must yield
	// a key distinct from the base AND from all the others.
	timingSide := []struct {
		name   string
		change func(*GPU)
	}{
		{"core clock", func(g *GPU) { g.CoreClockMHz *= 0.8 }},
		{"mem data rate", func(g *GPU) { g.MemDataRateGbps = 2.0 }},
		{"clusters", func(g *GPU) { g.Clusters = 2 }},
		{"cores per cluster", func(g *GPU) { g.CoresPerCluster = 2 }},
		{"warp size", func(g *GPU) { g.WarpSize = 16 }},
		{"max warps", func(g *GPU) { g.MaxWarpsPerCore = 48 }},
		{"regs per core", func(g *GPU) { g.RegsPerCore *= 2 }},
		{"schedulers", func(g *GPU) { g.Schedulers = 2 }},
		{"scheduler policy", func(g *GPU) { g.SchedulerPolicy = "gto" }},
		{"active set", func(g *GPU) { g.ActiveWarpsPerSched = 4 }},
		{"fus", func(g *GPU) { g.FUsPerCore = 16 }},
		{"sfus", func(g *GPU) { g.SFUsPerCore = 4 }},
		{"scoreboard", func(g *GPU) { g.HasScoreboard = true; g.ScoreboardEntries = 6 }},
		{"alu latency", func(g *GPU) { g.ALULatency++ }},
		{"smem geometry", func(g *GPU) { g.SMemBanks = 32 }},
		{"l1", func(g *GPU) { g.L1KB = 16; g.L1LineB = 128; g.L1Assoc = 4 }},
		{"const cache", func(g *GPU) { g.ConstCacheKB *= 2 }},
		{"l2", func(g *GPU) { g.L2KB = 256; g.L2LineB = 128; g.L2Assoc = 8 }},
		{"mem channels", func(g *GPU) { g.MemChannels = 8 }},
		{"dram banks", func(g *GPU) { g.DRAMBanks = 8 }},
		{"dram latency", func(g *GPU) { g.DRAMLatencyCore += 10 }},
		{"dram trcd", func(g *GPU) { g.DRAMTRCDNS += 1 }},
	}
	for _, c := range timingSide {
		g := GT240()
		c.change(g)
		k := g.TimingKey()
		if prev, dup := seen[k]; dup {
			t.Errorf("%s: timing change collided with %q", c.name, prev)
		}
		seen[k] = c.name
	}
}

func TestTimingKeyDistinguishesPresets(t *testing.T) {
	if GT240().TimingKey() == GTX580().TimingKey() {
		t.Fatal("GT240 and GTX580 share a timing key")
	}
}
