package config

// GT240 returns the configuration of the NVIDIA GeForce GT240 (GT215 chip),
// matching Table II of the paper: 12 cores in 4 clusters, 768 threads per
// core, 8 fused INT/FP units per core, 550 MHz uncore with a 2.47x shader
// clock, no scoreboard (blocking barrel issue), no L2 cache, 40 nm process.
func GT240() *GPU {
	return &GPU{
		Name:      "GT240",
		ProcessNM: 40,

		CoreClockMHz:    1358.5, // 550 MHz x 2.47
		UncoreClockMHz:  550,
		MemDataRateGbps: 3.4,

		Clusters:          4,
		CoresPerCluster:   3,
		WarpSize:          32,
		MaxWarpsPerCore:   24,
		MaxBlocksPerCore:  8,
		MaxThreadsPerCore: 768,
		RegsPerCore:       16384,
		Schedulers:        1,
		FUsPerCore:        8,
		SFUsPerCore:       2,

		HasScoreboard:     false,
		ScoreboardEntries: 0,

		ALULatency:  20,
		SFULatency:  36,
		SMemLatency: 26,

		SharedMemPerCoreKB: 16,
		SMemBanks:          16,
		L1KB:               0, // Tesla-class: no L1 data cache
		ConstCacheKB:       8,
		ConstLineB:         64,

		L2KB: 0, // Table II: no L2

		MemChannels:     4, // 128-bit bus of x32 devices
		DRAMBanks:       16,
		DRAMRowBytes:    2048,
		DRAMLatencyCore: 440,
		DRAMTRCDNS:      12,
		DRAMTRPNS:       12,

		PCIeLanes: 16,

		Power: PowerCal{
			IntOpPJ: 40, // paper §III-D measurement
			FPOpPJ:  75, // paper §III-D measurement
			SFUOpPJ: 290,
			AGUOpPJ: 6,

			GlobalSchedW: 3.34,  // paper Fig. 4
			ClusterBaseW: 0.692, // paper Fig. 4
			CoreBaseDynW: 0.199, // paper Table V

			UndiffCoreStaticW: 0.886, // paper Table V
			UndiffCoreAreaMM2: 3.1,
			UncoreStaticW:     1.20, // PLLs, IO, display engine
			UncoreAreaMM2:     43,
			NoCStaticW:        1.40, // McPAT NoC anchor, paper Table V ballpark
			MCStaticW:         0.45,
			PCIeIdleW:         0.53,
			PCIeActiveW:       0.99,
			PCIeDynPerKBJ:     45e-9,
			NoCFlitPJ:         420,  // 32B flit across ~5mm of global wire
			MCRequestPJ:       3800, // controller + PHY energy per 128B request
			DecodePJ:          9,
			FPUAreaMM2:        0.035, // Galal & Horowitz, scaled to 40nm
			SFUAreaMM2:        0.22,  // De Caro et al., scaled
			SFUStaticWPerUnit: 0.004,

			TempCelsius:        70,
			LeakageTempFactor:  4.0, // hot-silicon leakage vs. nominal tables
			DynScaleFactor:     1.0,
			IdleGatingFraction: 0.10,
		},
	}
}

// GTX580 returns the configuration of the NVIDIA GeForce GTX580 (GF110,
// Fermi), matching Table II: 16 cores, 1536 threads per core, 32 FUs per
// core, 882 MHz uncore with 2x shader clock, scoreboarded issue, 768 KB L2,
// 40 nm process.
func GTX580() *GPU {
	return &GPU{
		Name:      "GTX580",
		ProcessNM: 40,

		CoreClockMHz:    1764, // 882 MHz x 2
		UncoreClockMHz:  882,
		MemDataRateGbps: 4.008,

		Clusters:          4,
		CoresPerCluster:   4,
		WarpSize:          32,
		MaxWarpsPerCore:   48,
		MaxBlocksPerCore:  8,
		MaxThreadsPerCore: 1536,
		RegsPerCore:       32768,
		Schedulers:        2,
		FUsPerCore:        32,
		SFUsPerCore:       4,

		HasScoreboard:     true,
		ScoreboardEntries: 6,

		ALULatency:  18,
		SFULatency:  32,
		SMemLatency: 24,

		SharedMemPerCoreKB: 48,
		SMemBanks:          32,
		L1KB:               16,
		L1LineB:            128,
		L1Assoc:            4,
		ConstCacheKB:       8,
		ConstLineB:         64,

		L2KB:    768,
		L2LineB: 128,
		L2Assoc: 16,

		MemChannels:     12, // 384-bit bus of x32 devices
		DRAMBanks:       16,
		DRAMRowBytes:    2048,
		DRAMLatencyCore: 520,
		DRAMTRCDNS:      12,
		DRAMTRPNS:       12,

		PCIeLanes: 16,

		Power: PowerCal{
			IntOpPJ: 40,
			FPOpPJ:  75,
			SFUOpPJ: 290,
			AGUOpPJ: 6,

			// Fermi's GigaThread engine and clusters are larger and clocked
			// higher; scaled from the GT240 anchors by area and V^2*f.
			GlobalSchedW: 6.4,
			ClusterBaseW: 1.9,
			CoreBaseDynW: 0.62,

			UndiffCoreStaticW: 3.05,
			UndiffCoreAreaMM2: 9.5,
			UncoreStaticW:     9.0, // PLLs, IO, display engine (GF110-scale)
			UncoreAreaMM2:     85,
			NoCStaticW:        5.6,
			MCStaticW:         2.1,
			PCIeIdleW:         0.9,
			PCIeActiveW:       0.99,
			PCIeDynPerKBJ:     45e-9,
			NoCFlitPJ:         480,
			MCRequestPJ:       4200,
			DecodePJ:          9,
			FPUAreaMM2:        0.035,
			SFUAreaMM2:        0.22,
			SFUStaticWPerUnit: 0.004,

			TempCelsius:        78,
			LeakageTempFactor:  5.0, // Fermi runs hotter; leakage scaled accordingly
			DynScaleFactor:     1.0,
			IdleGatingFraction: 0.10,
		},
	}
}

// Presets returns all built-in configurations keyed by name.
func Presets() map[string]func() *GPU {
	return map[string]func() *GPU{
		"GT240":  GT240,
		"GTX580": GTX580,
	}
}
