package config

// Explicit classification of every GPU field that appendTimingFields does
// NOT encode. Together with the encoded set, these lists partition the
// configuration exhaustively; two enforcers keep the partition honest:
//
//   - gpowlint's timingpartition pass (internal/analysis) cross-references
//     the lists against the fields internal/sim and internal/core actually
//     read, and against appendTimingFields — an unclassified or
//     misclassified field fails `make lint`;
//   - TestTimingPartitionExhaustive (partition_test.go) perturbs every
//     field and asserts the key changes exactly for the encoded ones — an
//     unclassified new field fails `go test` too.
//
// Adding a field to GPU therefore forces a decision: encode it in
// appendTimingFields (and bump timingKeyVersion), or declare it here.

// powerOnlyFields are read by the power model alone: two configurations
// differing only in these fields produce bit-identical simulations and
// must share a simcache key (that sharing is the simulate-once-
// evaluate-many optimization). Timing-side code reading one of these is a
// cache-corruption bug, and gpowlint rejects it.
var powerOnlyFields = []string{
	"ProcessNM",
	"UncoreClockMHz",
	"MemType",
	"PCIeLanes",
	"Power",
	// MaxThreadsPerCore is not read by the power model either: it exists
	// for Table II presentation and Validate pins it to
	// MaxWarpsPerCore*WarpSize, so it can never vary independently. What
	// matters here is the enforced half: timing-side code must not read it
	// unkeyed.
	"MaxThreadsPerCore",
}

// timingNeutralFields may be read by timing-side code but are deliberately
// excluded from the key: they must not change what is simulated.
// DenseClock switches between two clock loops proven bit-identical (the
// sim package's fast-forward equivalence tests); DisableSimCache controls
// whether the cache is consulted at all, so keying on it would be
// circular.
var timingNeutralFields = []string{
	"DenseClock",
	"DisableSimCache",
	// SimWorkers only picks how many OS threads step cores inside one
	// clock cycle; the parallel and sequential paths are proven
	// bit-identical (the sim package's TestParallelEquivalence matrix), so
	// a parallel run must share its cached timing results with a
	// sequential one. Keying on it would fracture the cache by host shape.
	"SimWorkers",
	// Name is identity metadata: it appears in error text and report
	// headers (internal/sim quotes it when a kernel touches a texture
	// cache the config lacks) but never in simulated behavior, so two
	// configs differing only in name share their timing results — that
	// sharing is what lets hw's silicon-perturbed "truth" config reuse
	// the nominal config's simulation.
	"Name",
}
