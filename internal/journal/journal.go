// Package journal is the durable-state substrate shared by the sweep
// service's job store and the fleet router's routing table: an append-only
// NDJSON journal plus a compacted, atomically-replaced JSON snapshot,
// living in a caller-named generation directory so state written by one
// binary generation is never blindly replayed by an incompatible one.
//
// The package owns only the I/O discipline — what PR 6 proved out for the
// job store and internal/simcache/disk.go proved for the timing cache:
//
//   - Appends are single unfragmented writes, so a torn line can only be
//     the journal's tail (a crash mid-write), and nothing after it is lost.
//   - The snapshot is written to a temp file and renamed into place, then
//     the journal is truncated. A crash between the two leaves journal
//     entries that are already folded into the snapshot; callers make
//     replay idempotent.
//   - Corruption is never fatal: Replay hands every line to the caller,
//     who skips what fails to decode; a missing or corrupt snapshot reads
//     as empty state.
//   - No fsync, by design: the durability target is process death
//     (SIGKILL, panic, OOM), where the page cache survives — not power
//     loss.
//
// Entry shapes and fold/recovery semantics stay with the callers; this
// package never interprets a line.
package journal

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Log is one journal + snapshot pair rooted at a generation directory.
type Log struct {
	// AfterAppend, when set, runs after every successful journal append,
	// outside the log's lock — the hook crash-drill faultpoints fire from
	// (a process that dies here has the appended entry on disk, the
	// tightest crash window recovery must handle). Set before first use.
	AfterAppend func()

	mu      sync.Mutex
	dir     string
	journal *os.File
	// frozen drops all writes: set by Close, and by tests simulating the
	// instant of process death (a frozen log is a dead process's disk).
	frozen bool
}

// Open opens (creating if needed) the log under dir — conventionally
// <state-dir>/<generation>, where generation encodes a format version and
// a build fingerprint (see simcache.Fingerprint).
func Open(dir string) (*Log, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: state dir: %w", err)
	}
	j, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	return &Log{dir: dir, journal: j}, nil
}

// Dir returns the log's generation directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) snapshotPath() string { return filepath.Join(l.dir, "snapshot.json") }
func (l *Log) journalPath() string  { return filepath.Join(l.dir, "journal.ndjson") }

// Append marshals v and appends it as one journal line. All failures are
// swallowed — durability degrades, the caller does not; in-memory state
// still serves.
func (l *Log) Append(v any) {
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	l.mu.Lock()
	appended := false
	if !l.frozen && l.journal != nil {
		_, werr := l.journal.Write(append(b, '\n'))
		appended = werr == nil
	}
	l.mu.Unlock()
	if appended && l.AfterAppend != nil {
		l.AfterAppend()
	}
}

// Snapshot decodes the compacted snapshot into out, reporting whether a
// usable snapshot existed. A missing or undecodable snapshot is false,
// never an error — recovery starts empty and folds the journal.
func (l *Log) Snapshot(out any) bool {
	b, err := os.ReadFile(l.snapshotPath())
	if err != nil {
		return false
	}
	return json.Unmarshal(b, out) == nil
}

// Replay hands every non-empty journal line (including a torn tail, which
// the caller's decode rejects) to fn, in append order. It returns the
// number of lines visited; decoding and idempotent folding are the
// caller's job.
func (l *Log) Replay(fn func(line []byte)) int {
	f, err := os.Open(l.journalPath())
	if err != nil {
		return 0
	}
	defer f.Close()
	n := 0
	r := bufio.NewReader(f)
	for {
		line, err := r.ReadBytes('\n')
		if len(line) > 0 {
			n++
			fn(line)
		}
		if err != nil {
			return n
		}
	}
}

// Compact atomically replaces the snapshot with snap and truncates the
// journal. Failures leave the previous snapshot + journal intact — the
// log keeps appending and the next compaction retries.
func (l *Log) Compact(snap any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.frozen {
		return
	}
	b, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(l.dir, "snapshot-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), l.snapshotPath()); err != nil {
		os.Remove(tmp.Name())
		return
	}
	// Snapshot is durable; the journal's contents are now redundant.
	// (Crash before this truncate: replaying the stale entries over the
	// new snapshot is idempotent — the callers' contract.)
	if l.journal != nil {
		_ = l.journal.Truncate(0)
	}
}

// Freeze drops all future writes — the test stand-in for SIGKILL: what is
// on disk now is exactly the crash image a killed process leaves.
func (l *Log) Freeze() {
	l.mu.Lock()
	l.frozen = true
	l.mu.Unlock()
}

// Close freezes the log and closes the journal.
func (l *Log) Close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.frozen = true
	if l.journal != nil {
		l.journal.Close()
		l.journal = nil
	}
}

// JournalBytes is a test-oriented view of the raw journal (what a crash
// would leave on disk at this instant).
func (l *Log) JournalBytes() []byte {
	b, _ := os.ReadFile(l.journalPath())
	return b
}
