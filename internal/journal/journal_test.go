package journal

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

type entry struct {
	K string `json:"k"`
	N int    `json:"n"`
}

func TestAppendReplayRoundTrip(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gen"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	want := []entry{{"a", 1}, {"b", 2}, {"c", 3}}
	for _, e := range want {
		l.Append(e)
	}
	var got []entry
	n := l.Replay(func(line []byte) {
		var e entry
		if json.Unmarshal(line, &e) == nil {
			got = append(got, e)
		}
	})
	if n != 3 || len(got) != 3 {
		t.Fatalf("replayed %d lines, decoded %d, want 3", n, len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("line %d: %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestTornTailIsIsolated(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gen")
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	l.Append(entry{"a", 1})
	l.Close()

	// Simulate a crash mid-append: a trailing fragment without newline.
	f, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"k":"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var decoded, skipped int
	n := l2.Replay(func(line []byte) {
		var e entry
		if json.Unmarshal(line, &e) == nil {
			decoded++
		} else {
			skipped++
		}
	})
	if n != 2 || decoded != 1 || skipped != 1 {
		t.Fatalf("replay saw %d lines (%d decoded, %d skipped), want 2/1/1", n, decoded, skipped)
	}
}

func TestCompactTruncatesAndSnapshotLoads(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gen")
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(entry{"a", 1})
	snap := map[string]int{"total": 1}
	l.Compact(snap)
	if b := l.JournalBytes(); len(bytes.TrimSpace(b)) != 0 {
		t.Errorf("journal not truncated after compaction: %q", b)
	}
	var got map[string]int
	if !l.Snapshot(&got) || got["total"] != 1 {
		t.Errorf("snapshot round-trip failed: %v", got)
	}
	// Appends after compaction land in the (now empty) journal.
	l.Append(entry{"b", 2})
	if n := l.Replay(func([]byte) {}); n != 1 {
		t.Errorf("post-compaction journal has %d lines, want 1", n)
	}
}

func TestMissingOrCorruptSnapshotReadsEmpty(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "gen")
	l, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var out map[string]int
	if l.Snapshot(&out) {
		t.Error("missing snapshot should report absent")
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot.json"), []byte("{corrupt"), 0o644); err != nil {
		t.Fatal(err)
	}
	if l.Snapshot(&out) {
		t.Error("corrupt snapshot should report absent")
	}
}

func TestFreezeDropsWrites(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gen"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.Append(entry{"a", 1})
	l.Freeze()
	l.Append(entry{"b", 2})
	l.Compact(map[string]int{"total": 2})
	if n := l.Replay(func([]byte) {}); n != 1 {
		t.Errorf("frozen log accepted writes: %d lines", n)
	}
	var out map[string]int
	if l.Snapshot(&out) {
		t.Error("frozen log wrote a snapshot")
	}
}

func TestAfterAppendHookFires(t *testing.T) {
	l, err := Open(filepath.Join(t.TempDir(), "gen"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	fired := 0
	l.AfterAppend = func() { fired++ }
	l.Append(entry{"a", 1})
	l.Append(entry{"b", 2})
	if fired != 2 {
		t.Errorf("AfterAppend fired %d times, want 2", fired)
	}
	l.Freeze()
	l.Append(entry{"c", 3})
	if fired != 2 {
		t.Error("AfterAppend must not fire for dropped writes")
	}
}
