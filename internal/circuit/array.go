// Package circuit provides the circuit tier of the GPUSimPow power model:
// CACTI-style analytical area/energy/leakage models for the basic structures
// that architectural components are mapped onto — RAM arrays, CAM tags,
// crossbars, flip-flop banks, priority encoders, random logic, wires and
// clock distribution.
//
// Every model produces a Budget: silicon area, leakage power, and per-event
// dynamic energies. The architecture tier (package power) instantiates these
// for the concrete GPU configuration and multiplies per-event energies with
// activity counts from the performance simulator.
package circuit

import (
	"fmt"
	"math"

	"gpusimpow/internal/tech"
)

// Budget is the common output of all circuit models.
type Budget struct {
	// AreaMM2 is the silicon area in square millimetres.
	AreaMM2 float64
	// LeakageW is the static power in watts (sub-threshold + gate).
	LeakageW float64
	// ReadEnergyJ is the dynamic energy per read access in joules.
	ReadEnergyJ float64
	// WriteEnergyJ is the dynamic energy per write access in joules.
	WriteEnergyJ float64
}

// Add accumulates another budget into b (areas, leakage and energies sum;
// summing energies is meaningful for structures accessed together).
func (b *Budget) Add(o Budget) {
	b.AreaMM2 += o.AreaMM2
	b.LeakageW += o.LeakageW
	b.ReadEnergyJ += o.ReadEnergyJ
	b.WriteEnergyJ += o.WriteEnergyJ
}

// Scale returns the budget with all fields multiplied by k (e.g. for k
// identical instances).
func (b Budget) Scale(k float64) Budget {
	return Budget{b.AreaMM2 * k, b.LeakageW * k, b.ReadEnergyJ * k, b.WriteEnergyJ * k}
}

// ArraySpec describes an SRAM array (register file bank, cache data/tag
// array, buffer RAM, status table...).
type ArraySpec struct {
	// Entries is the number of addressable rows.
	Entries int
	// BitsPerEntry is the row width in bits.
	BitsPerEntry int
	// ReadPorts and WritePorts; at least one total. Multi-porting grows the
	// cell (two extra transistors and one wordline/bitline pair per port).
	ReadPorts, WritePorts int
	// Banks splits the array into independently addressed banks. Energy per
	// access is for one bank; leakage and area cover all banks.
	Banks int
}

// Array models an SRAM structure in the given technology.
//
// The model follows CACTI's decomposition: decoder, wordline drive, bitline
// swing, sense amplifiers and output drivers. It is deliberately simpler than
// CACTI 6.5 (no H-tree exploration) but preserves the scaling behaviour:
// energy grows with sqrt(entries) on the wordline/bitline dimensions and
// linearly with row width; leakage grows with total bit count.
func Array(t tech.Node, s ArraySpec) (Budget, error) {
	if s.Entries <= 0 || s.BitsPerEntry <= 0 {
		return Budget{}, fmt.Errorf("circuit: array needs positive entries and width, got %d x %d", s.Entries, s.BitsPerEntry)
	}
	if s.Banks <= 0 {
		s.Banks = 1
	}
	ports := s.ReadPorts + s.WritePorts
	if ports <= 0 {
		ports = 1
	}
	entriesPerBank := (s.Entries + s.Banks - 1) / s.Banks
	totalBits := float64(s.Entries * s.BitsPerEntry)

	// --- Area ---
	// Cell grows ~linearly with extra ports beyond the first.
	cellUM2 := t.SRAMCellUM2 * (1 + 0.6*float64(ports-1))
	// Peripheral overhead (decoder, sense amps, drivers): ~35 % plus a fixed
	// per-bank overhead.
	areaUM2 := totalBits*cellUM2*1.35 + float64(s.Banks)*1200*t.LogicGateUM2
	areaMM2 := areaUM2 / 1e6

	// --- Dynamic energy (per access of one bank, one port) ---
	rows := float64(entriesPerBank)
	colsBits := float64(s.BitsPerEntry)
	cellW := math.Sqrt(cellUM2) // cell pitch, um
	// Decoder: log2(rows) stages of ~4x gates.
	decCap := math.Log2(math.Max(rows, 2)) * 4 * t.GateCap(4*t.MinWidthUm())
	// Wordline: one access transistor gate per column bit (x ports wired but
	// only one toggles), plus wire along the row.
	wlWireMM := colsBits * cellW / 1000
	wlCap := colsBits*t.GateCap(t.MinWidthUm()) + wlWireMM*t.WireCPerMM
	// Bitlines: column height wire + one diffusion per row; reads use a
	// reduced swing (~Vdd/3), writes full swing.
	blWireMM := rows * cellW / 1000
	blCapPerCol := blWireMM*t.WireCPerMM + rows*t.CDiffPerUm*t.MinWidthUm()
	blCapTotal := blCapPerCol * colsBits
	// Sense amps + output drivers: proportional to row width.
	saCap := colsBits * 3 * t.GateCap(2*t.MinWidthUm())

	readE := t.SwitchEnergy(decCap+wlCap+saCap) + t.SwitchEnergy(blCapTotal)/3
	writeE := t.SwitchEnergy(decCap+wlCap+saCap) + t.SwitchEnergy(blCapTotal)

	// --- Leakage ---
	// Six transistors of minimum width per cell (plus port overhead), and
	// peripheral logic leakage from its area.
	cellWidthUm := 6 * t.MinWidthUm() * (1 + 0.4*float64(ports-1))
	leak := t.LeakagePower(totalBits*cellWidthUm*0.25) + // cells leak at reduced duty (stacked)
		areaMM2*0.35*t.LeakagePerMM2 // periphery

	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: readE, WriteEnergyJ: writeE}, nil
}

// CAMSpec describes a content-addressable tag structure (scoreboard tag
// match, cache tag compare, coalescer pending-request lookup).
type CAMSpec struct {
	Entries int
	TagBits int
}

// CAM models a content-addressable memory. A search charges every entry's
// matchline; writes behave like a RAM write of one entry.
func CAM(t tech.Node, s CAMSpec) (Budget, error) {
	if s.Entries <= 0 || s.TagBits <= 0 {
		return Budget{}, fmt.Errorf("circuit: CAM needs positive entries and tag bits, got %d x %d", s.Entries, s.TagBits)
	}
	totalBits := float64(s.Entries * s.TagBits)
	areaMM2 := totalBits * t.CAMCellUM2 * 1.4 / 1e6

	// Search: all matchlines precharged and (mostly) discharged, plus the
	// searchlines driving every row's compare gates.
	matchCap := float64(s.Entries) * (float64(s.TagBits)*t.CDiffPerUm*t.MinWidthUm() + 2*t.GateCap(t.MinWidthUm()))
	searchCap := float64(s.TagBits) * float64(s.Entries) * t.GateCap(t.MinWidthUm())
	searchE := t.SwitchEnergy(matchCap + searchCap/2)

	// Write: like a small RAM row write.
	writeE := t.SwitchEnergy(float64(s.TagBits) * (t.GateCap(t.MinWidthUm()) + t.CDiffPerUm*t.MinWidthUm()) * 3)

	leak := t.LeakagePower(totalBits*10*t.MinWidthUm()*0.25) + areaMM2*0.3*t.LeakagePerMM2

	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: searchE, WriteEnergyJ: writeE}, nil
}

// FFBank models a bank of D flip-flops holding the given number of bits.
// The paper uses this explicitly for the coalescer: "CACTI cannot be used to
// model buffers with few but very large entries ... we compute the total
// amount of bits which must be held in the coalescing system at any time and
// model the required storage using D-FlipFlops."
//
// ReadEnergyJ is the energy of clocking the bank for one cycle with a typical
// activity factor; WriteEnergyJ is the energy of toggling all bits once.
func FFBank(t tech.Node, bits int) (Budget, error) {
	if bits <= 0 {
		return Budget{}, fmt.Errorf("circuit: FF bank needs positive bit count, got %d", bits)
	}
	// A D-FF is ~24 transistors, ~6 of which see the clock each cycle.
	ffAreaUM2 := 24.0 / 4.0 * t.LogicGateUM2 // 4 transistors per NAND-equivalent
	areaMM2 := float64(bits) * ffAreaUM2 / 1e6
	clkCapPerFF := 6 * t.GateCap(t.MinWidthUm())
	dataCapPerFF := 10 * t.GateCap(t.MinWidthUm())
	readE := t.SwitchEnergy(float64(bits) * clkCapPerFF * 0.5) // clock at 50% internal activity
	writeE := t.SwitchEnergy(float64(bits) * (clkCapPerFF + dataCapPerFF) * 0.5)
	leak := t.LeakagePower(float64(bits) * 24 * t.MinWidthUm() * 0.2)
	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: readE, WriteEnergyJ: writeE}, nil
}
