package circuit

import (
	"testing"
	"testing/quick"

	"gpusimpow/internal/tech"
)

var t40 = tech.MustNode(40)

func TestArrayBasic(t *testing.T) {
	b, err := Array(t40, ArraySpec{Entries: 1024, BitsPerEntry: 256, ReadPorts: 1, WritePorts: 1})
	if err != nil {
		t.Fatal(err)
	}
	if b.AreaMM2 <= 0 || b.LeakageW <= 0 || b.ReadEnergyJ <= 0 || b.WriteEnergyJ <= 0 {
		t.Fatalf("all budget fields must be positive: %+v", b)
	}
	if b.WriteEnergyJ <= b.ReadEnergyJ {
		t.Errorf("full-swing write (%.3e) should cost more than reduced-swing read (%.3e)", b.WriteEnergyJ, b.ReadEnergyJ)
	}
}

func TestArrayErrors(t *testing.T) {
	if _, err := Array(t40, ArraySpec{Entries: 0, BitsPerEntry: 8}); err == nil {
		t.Error("zero entries should error")
	}
	if _, err := Array(t40, ArraySpec{Entries: 8, BitsPerEntry: 0}); err == nil {
		t.Error("zero width should error")
	}
	if _, err := Array(t40, ArraySpec{Entries: -1, BitsPerEntry: -1}); err == nil {
		t.Error("negative spec should error")
	}
}

func TestArrayScalesWithSize(t *testing.T) {
	small, _ := Array(t40, ArraySpec{Entries: 256, BitsPerEntry: 128, ReadPorts: 1, WritePorts: 1})
	big, _ := Array(t40, ArraySpec{Entries: 4096, BitsPerEntry: 128, ReadPorts: 1, WritePorts: 1})
	if big.AreaMM2 <= small.AreaMM2 || big.LeakageW <= small.LeakageW {
		t.Error("bigger array must have more area and leakage")
	}
	if big.ReadEnergyJ <= small.ReadEnergyJ {
		t.Error("bigger array must cost more energy per access")
	}
}

func TestArrayBankingReducesAccessEnergy(t *testing.T) {
	mono, _ := Array(t40, ArraySpec{Entries: 16384, BitsPerEntry: 128, ReadPorts: 1, WritePorts: 1, Banks: 1})
	banked, _ := Array(t40, ArraySpec{Entries: 16384, BitsPerEntry: 128, ReadPorts: 1, WritePorts: 1, Banks: 16})
	if banked.ReadEnergyJ >= mono.ReadEnergyJ {
		t.Errorf("banking should cut per-access energy: banked %.3e >= mono %.3e", banked.ReadEnergyJ, mono.ReadEnergyJ)
	}
	if banked.LeakageW < mono.LeakageW {
		t.Error("banking should not reduce total leakage")
	}
}

func TestArrayPortsCostArea(t *testing.T) {
	sp, _ := Array(t40, ArraySpec{Entries: 512, BitsPerEntry: 64, ReadPorts: 1, WritePorts: 1})
	mp, _ := Array(t40, ArraySpec{Entries: 512, BitsPerEntry: 64, ReadPorts: 4, WritePorts: 2})
	if mp.AreaMM2 <= sp.AreaMM2 {
		t.Error("multi-ported array must be larger")
	}
}

func TestArrayTechnologyScaling(t *testing.T) {
	t90 := tech.MustNode(90)
	spec := ArraySpec{Entries: 1024, BitsPerEntry: 256, ReadPorts: 1, WritePorts: 1}
	old, _ := Array(t90, spec)
	new_, _ := Array(t40, spec)
	if new_.AreaMM2 >= old.AreaMM2 {
		t.Error("smaller node must yield smaller array")
	}
	if new_.ReadEnergyJ >= old.ReadEnergyJ {
		t.Error("smaller node must yield lower access energy")
	}
}

func TestArrayEnergyPlausibleRange(t *testing.T) {
	// A 64KB register file bank structure should cost picojoules per access
	// at 40nm, not femto or nano joules.
	b, _ := Array(t40, ArraySpec{Entries: 1024, BitsPerEntry: 512, ReadPorts: 1, WritePorts: 1})
	if b.ReadEnergyJ < 0.5e-12 || b.ReadEnergyJ > 200e-12 {
		t.Errorf("read energy %.3e J outside plausible [0.5, 200] pJ", b.ReadEnergyJ)
	}
}

func TestCAM(t *testing.T) {
	b, err := CAM(t40, CAMSpec{Entries: 48, TagBits: 12})
	if err != nil {
		t.Fatal(err)
	}
	if b.ReadEnergyJ <= 0 || b.WriteEnergyJ <= 0 || b.AreaMM2 <= 0 || b.LeakageW <= 0 {
		t.Fatalf("CAM budget must be positive: %+v", b)
	}
	// A search touches all entries; it should cost more than a single write.
	if b.ReadEnergyJ <= b.WriteEnergyJ {
		t.Error("CAM search should cost more than single-entry write")
	}
	if _, err := CAM(t40, CAMSpec{}); err == nil {
		t.Error("empty CAM should error")
	}
}

func TestFFBank(t *testing.T) {
	b, err := FFBank(t40, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if b.AreaMM2 <= 0 || b.LeakageW <= 0 || b.ReadEnergyJ <= 0 || b.WriteEnergyJ <= b.ReadEnergyJ {
		t.Fatalf("FF bank budget implausible: %+v", b)
	}
	if _, err := FFBank(t40, 0); err == nil {
		t.Error("zero bits should error")
	}
	small, _ := FFBank(t40, 128)
	if small.LeakageW >= b.LeakageW {
		t.Error("leakage must grow with bit count")
	}
}

func TestCrossbar(t *testing.T) {
	b, err := Crossbar(t40, CrossbarSpec{Inputs: 16, Outputs: 8, WidthBits: 128})
	if err != nil {
		t.Fatal(err)
	}
	if b.ReadEnergyJ <= 0 || b.AreaMM2 <= 0 {
		t.Fatalf("crossbar budget implausible: %+v", b)
	}
	if b.ReadEnergyJ != b.WriteEnergyJ {
		t.Error("crossbar transfers are symmetric")
	}
	if _, err := Crossbar(t40, CrossbarSpec{}); err == nil {
		t.Error("empty crossbar should error")
	}
	wider, _ := Crossbar(t40, CrossbarSpec{Inputs: 16, Outputs: 8, WidthBits: 256})
	if wider.ReadEnergyJ <= b.ReadEnergyJ {
		t.Error("wider crossbar transfer must cost more")
	}
}

func TestPriorityEncoder(t *testing.T) {
	b24, err := PriorityEncoder(t40, PriorityEncoderSpec{Width: 24})
	if err != nil {
		t.Fatal(err)
	}
	b48, _ := PriorityEncoder(t40, PriorityEncoderSpec{Width: 48})
	if b48.ReadEnergyJ <= b24.ReadEnergyJ {
		t.Error("wider arbiter must cost more per arbitration")
	}
	if _, err := PriorityEncoder(t40, PriorityEncoderSpec{}); err == nil {
		t.Error("zero-width encoder should error")
	}
}

func TestLogic(t *testing.T) {
	b, err := Logic(t40, LogicSpec{Gates: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if b.ReadEnergyJ <= 0 || b.AreaMM2 <= 0 || b.LeakageW <= 0 {
		t.Fatalf("logic budget implausible: %+v", b)
	}
	hot, _ := Logic(t40, LogicSpec{Gates: 20000, ActivityFraction: 0.5})
	if hot.ReadEnergyJ <= b.ReadEnergyJ {
		t.Error("higher activity fraction must cost more per op")
	}
	if _, err := Logic(t40, LogicSpec{}); err == nil {
		t.Error("zero gates should error")
	}
}

func TestClockTree(t *testing.T) {
	b := ClockTree(t40, 10)
	if b.ReadEnergyJ <= 0 {
		t.Error("clock tree cycle energy must be positive")
	}
	if ClockTree(t40, 0) != (Budget{}) {
		t.Error("zero area clock tree must be empty")
	}
	big := ClockTree(t40, 100)
	if big.ReadEnergyJ <= b.ReadEnergyJ {
		t.Error("clocking more area must cost more")
	}
}

func TestWireEnergy(t *testing.T) {
	if WireEnergy(t40, 0, 32) != 0 || WireEnergy(t40, 1, 0) != 0 {
		t.Error("degenerate wire must cost nothing")
	}
	e1 := WireEnergy(t40, 1, 32)
	e2 := WireEnergy(t40, 2, 32)
	if e2 <= e1 {
		t.Error("longer wire must cost more")
	}
}

func TestBudgetAddScale(t *testing.T) {
	a := Budget{1, 2, 3, 4}
	b := Budget{10, 20, 30, 40}
	a.Add(b)
	if a != (Budget{11, 22, 33, 44}) {
		t.Errorf("Add wrong: %+v", a)
	}
	if a.Scale(2) != (Budget{22, 44, 66, 88}) {
		t.Errorf("Scale wrong: %+v", a.Scale(2))
	}
}

func TestArrayPropertyQuick(t *testing.T) {
	// Property: any valid array spec produces strictly positive budgets and
	// write >= read energy.
	f := func(e uint8, w uint16, rp, wp, banks uint8) bool {
		spec := ArraySpec{
			Entries:      int(e%200) + 1,
			BitsPerEntry: int(w%512) + 1,
			ReadPorts:    int(rp % 4),
			WritePorts:   int(wp % 4),
			Banks:        int(banks%8) + 1,
		}
		b, err := Array(t40, spec)
		if err != nil {
			return false
		}
		return b.AreaMM2 > 0 && b.LeakageW > 0 && b.ReadEnergyJ > 0 && b.WriteEnergyJ >= b.ReadEnergyJ
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
