package circuit

import (
	"fmt"
	"math"

	"gpusimpow/internal/tech"
)

// CrossbarSpec describes a full crossbar switch (register-file operand
// distribution, shared-memory address/data interconnect, NoC switch).
type CrossbarSpec struct {
	Inputs, Outputs int
	// WidthBits is the datapath width of one port.
	WidthBits int
	// SpanMM is the physical span the wires must cross; if zero a span is
	// estimated from port count and width.
	SpanMM float64
}

// Crossbar models a matrix crossbar. ReadEnergyJ is the energy of one
// transfer of WidthBits across the switch (one input driving one output);
// WriteEnergyJ is identical (transfers are symmetric).
func Crossbar(t tech.Node, s CrossbarSpec) (Budget, error) {
	if s.Inputs <= 0 || s.Outputs <= 0 || s.WidthBits <= 0 {
		return Budget{}, fmt.Errorf("circuit: crossbar needs positive inputs/outputs/width, got %d/%d/%d", s.Inputs, s.Outputs, s.WidthBits)
	}
	span := s.SpanMM
	if span == 0 {
		// Estimate: each port's wires occupy ~width * wire pitch; the switch
		// is roughly square.
		pitchMM := 4 * t.FeatureNM / 1e6 // wire pitch in mm
		span = math.Sqrt(float64(s.Inputs*s.Outputs)) * float64(s.WidthBits) * pitchMM
		if span < 0.05 {
			span = 0.05
		}
	}
	// One transfer drives input wires across the span plus the crosspoint
	// drain junctions of all the output columns it passes.
	wireCap := span * t.WireCPerMM * float64(s.WidthBits)
	junctionCap := float64(s.Outputs) * float64(s.WidthBits) * t.CDiffPerUm * 2 * t.MinWidthUm()
	driverCap := float64(s.WidthBits) * t.GateCap(8*t.MinWidthUm())
	transferE := t.SwitchEnergy((wireCap+junctionCap)*0.5 + driverCap) // ~50% bit toggle

	// Area: crosspoint transistors plus wire tracks.
	xpointUM2 := float64(s.Inputs*s.Outputs*s.WidthBits) * 2 * t.LogicGateUM2 / 4
	wireUM2 := span * 1000 * float64((s.Inputs+s.Outputs)*s.WidthBits) * (4 * t.FeatureNM / 1000)
	areaMM2 := (xpointUM2 + wireUM2) / 1e6

	leak := t.LeakagePower(float64(s.Inputs*s.Outputs*s.WidthBits)*2*t.MinWidthUm()*0.15) +
		areaMM2*0.1*t.LeakagePerMM2

	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: transferE, WriteEnergyJ: transferE}, nil
}

// WireEnergy returns the energy in joules of sending `bits` bits over a
// repeated wire of the given length with ~50 % toggle probability.
func WireEnergy(t tech.Node, lengthMM float64, bits int) float64 {
	if lengthMM <= 0 || bits <= 0 {
		return 0
	}
	// Repeaters add ~40 % capacitance overhead.
	return t.SwitchEnergy(lengthMM*t.WireCPerMM*1.4) * 0.5 * float64(bits)
}

// PriorityEncoderSpec describes the rotating-priority (round-robin) warp
// scheduler circuit from the paper: "Such schedulers consist of a set of
// inverters, a wide priority encoder, and a phase counter" (after Kun,
// Quan & Mason, ISCAS 2004).
type PriorityEncoderSpec struct {
	// Width is the number of request lines arbitrated (e.g. warps in flight).
	Width int
}

// PriorityEncoder models the scheduler circuit. ReadEnergyJ is the energy of
// one arbitration (inverter bank + look-ahead priority encode + phase counter
// update); WriteEnergyJ is zero.
func PriorityEncoder(t tech.Node, s PriorityEncoderSpec) (Budget, error) {
	if s.Width <= 0 {
		return Budget{}, fmt.Errorf("circuit: priority encoder needs positive width, got %d", s.Width)
	}
	w := float64(s.Width)
	stages := math.Ceil(math.Log2(math.Max(w, 2)))
	// Parallel priority look-ahead: ~6 gates per input plus log-depth
	// look-ahead tree of ~4 gates per node.
	gates := w*6 + stages*w*4/2
	// Phase counter: log2(width) bits of counter + comparator.
	gates += stages * 12
	areaMM2 := gates * t.LogicGateUM2 / 1e6
	// ~30 % of gates switch per arbitration.
	arbE := t.SwitchEnergy(gates * 0.3 * 2 * t.GateCap(2*t.MinWidthUm()))
	leak := t.LeakagePower(gates*4*t.MinWidthUm()*0.2) + areaMM2*0.1*t.LeakagePerMM2
	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: arbE}, nil
}

// LogicSpec describes a block of random logic characterised by an equivalent
// 2-input gate count (instruction decoders, FSMs, ALU control...).
type LogicSpec struct {
	Gates int
	// ActivityFraction is the fraction of gates toggling per operation
	// (default 0.25 when zero).
	ActivityFraction float64
}

// Logic models a random-logic block. ReadEnergyJ is the energy per operation.
func Logic(t tech.Node, s LogicSpec) (Budget, error) {
	if s.Gates <= 0 {
		return Budget{}, fmt.Errorf("circuit: logic block needs positive gate count, got %d", s.Gates)
	}
	af := s.ActivityFraction
	if af == 0 {
		af = 0.25
	}
	g := float64(s.Gates)
	areaMM2 := g * t.LogicGateUM2 / 1e6
	opE := t.SwitchEnergy(g * af * 2 * t.GateCap(2*t.MinWidthUm()))
	leak := t.LeakagePower(g*4*t.MinWidthUm()*0.2) + areaMM2*0.1*t.LeakagePerMM2
	return Budget{AreaMM2: areaMM2, LeakageW: leak, ReadEnergyJ: opE}, nil
}

// ClockTree models clock distribution over an area. ReadEnergyJ is the energy
// per clock cycle of driving the tree (excluding the latch clock pins, which
// FFBank accounts for).
func ClockTree(t tech.Node, areaMM2 float64) Budget {
	if areaMM2 <= 0 {
		return Budget{}
	}
	// H-tree wire length scales ~ 3x the sqrt of the area per level; total
	// roughly 6*sqrt(area) mm of wire plus buffers.
	wireMM := 6 * math.Sqrt(areaMM2)
	cap_ := wireMM*t.WireCPerMM*1.5 + wireMM*4*t.GateCap(16*t.MinWidthUm())
	return Budget{
		AreaMM2:     wireMM * 4 * 16 * t.MinWidthUm() * 1e-3 / 1e3,
		LeakageW:    t.LeakagePower(wireMM * 4 * 16 * t.MinWidthUm() * 0.3),
		ReadEnergyJ: t.SwitchEnergy(cap_), // clock toggles every cycle (activity 1)
	}
}
