package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestForNodeExact(t *testing.T) {
	for _, nm := range []float64{90, 65, 45, 40, 32, 22} {
		n, err := ForNode(nm)
		if err != nil {
			t.Fatalf("ForNode(%v): %v", nm, err)
		}
		if n.FeatureNM != nm {
			t.Errorf("ForNode(%v).FeatureNM = %v", nm, n.FeatureNM)
		}
	}
}

func TestForNodeOutOfRange(t *testing.T) {
	for _, nm := range []float64{10, 21.9, 90.1, 180, 0, -5} {
		if _, err := ForNode(nm); err == nil {
			t.Errorf("ForNode(%v): expected error, got nil", nm)
		}
	}
}

func TestForNodeInterpolationMonotone(t *testing.T) {
	// Smaller nodes must have lower Vdd, smaller cells, higher leakage density.
	prev, err := ForNode(90)
	if err != nil {
		t.Fatal(err)
	}
	for nm := 89.0; nm >= 22; nm-- {
		n, err := ForNode(nm)
		if err != nil {
			t.Fatalf("ForNode(%v): %v", nm, err)
		}
		if n.Vdd > prev.Vdd+1e-12 {
			t.Fatalf("Vdd not monotone at %v nm: %v > %v", nm, n.Vdd, prev.Vdd)
		}
		if n.SRAMCellUM2 > prev.SRAMCellUM2+1e-12 {
			t.Fatalf("SRAM cell not monotone at %v nm", nm)
		}
		if n.LeakagePerMM2 < prev.LeakagePerMM2-1e-12 {
			t.Fatalf("leakage density not monotone at %v nm", nm)
		}
		prev = n
	}
}

func TestInterpolationBracketed(t *testing.T) {
	n36, err := ForNode(36)
	if err != nil {
		t.Fatal(err)
	}
	n40 := MustNode(40)
	n32 := MustNode(32)
	if !(n36.Vdd <= n40.Vdd && n36.Vdd >= n32.Vdd) {
		t.Errorf("interpolated Vdd %v not within [%v, %v]", n36.Vdd, n32.Vdd, n40.Vdd)
	}
	if !(n36.SRAMCellUM2 <= n40.SRAMCellUM2 && n36.SRAMCellUM2 >= n32.SRAMCellUM2) {
		t.Errorf("interpolated SRAM cell %v not within bracket", n36.SRAMCellUM2)
	}
}

func TestSwitchEnergyQuadraticInVdd(t *testing.T) {
	n := MustNode(40)
	e1 := n.SwitchEnergy(1e-12)
	n2 := n
	n2.Vdd = n.Vdd * 2
	e2 := n2.SwitchEnergy(1e-12)
	if math.Abs(e2/e1-4) > 1e-9 {
		t.Errorf("switch energy should scale with Vdd^2: ratio %v", e2/e1)
	}
}

func TestSwitchEnergyIncludesShortCircuit(t *testing.T) {
	n := MustNode(40)
	base := 1e-12 * n.Vdd * n.Vdd
	if got := n.SwitchEnergy(1e-12); got <= base {
		t.Errorf("SwitchEnergy %v should exceed CV^2 %v by short-circuit fraction", got, base)
	}
}

func TestLeakagePowerLinearInWidth(t *testing.T) {
	n := MustNode(45)
	if math.Abs(n.LeakagePower(200)/n.LeakagePower(100)-2) > 1e-9 {
		t.Error("leakage should be linear in transistor width")
	}
	if n.LeakagePower(0) != 0 {
		t.Error("zero width should leak nothing")
	}
}

func TestPropertiesViaQuick(t *testing.T) {
	// Property: for any node in range, all physical parameters are positive.
	f := func(raw uint16) bool {
		nm := 22 + float64(raw%6800)/100 // [22, 90)
		n, err := ForNode(nm)
		if err != nil {
			return false
		}
		return n.Vdd > 0 && n.CGatePerUm > 0 && n.ISubPerUm > 0 &&
			n.SRAMCellUM2 > 0 && n.LogicGateUM2 > 0 && n.LeakagePerMM2 > 0 &&
			n.WireCPerMM > 0 && n.WireRPerMM > 0 && n.MinWidthUm() > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSwitchEnergyNonNegativeQuick(t *testing.T) {
	n := MustNode(40)
	f := func(capPF uint32) bool {
		c := float64(capPF) * 1e-15
		return n.SwitchEnergy(c) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFO4Positive(t *testing.T) {
	if MustNode(40).FO4DelaySeconds() <= 0 {
		t.Error("FO4 delay must be positive")
	}
	if MustNode(22).FO4DelaySeconds() >= MustNode(90).FO4DelaySeconds() {
		t.Error("FO4 delay should shrink with feature size")
	}
}

func TestMustNodePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustNode(5) should panic")
		}
	}()
	MustNode(5)
}
