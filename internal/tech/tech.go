// Package tech provides the technology tier of the GPUSimPow power model.
//
// It corresponds to McPAT's lowest modeling layer: for a given process node it
// supplies supply voltage, per-transistor and per-micron capacitances, leakage
// current densities and wire parasitics. Higher tiers (package circuit) build
// energy-per-access and leakage estimates for concrete circuit structures out
// of these numbers, and the architecture tier (package power) assembles those
// into GPU components.
//
// The parameter tables follow the ITRS-roadmap-style scaling McPAT uses: each
// node carries absolute values; Scale interpolates between nodes so that
// hypothetical processes (e.g. 28 nm) can be explored, mirroring the paper's
// claim that "to scale the GPU power model for a specific manufacturing
// process node, we can use the ITRS roadmap scaling techniques within McPAT".
package tech

import (
	"fmt"
	"math"
	"sort"
)

// Node describes a manufacturing process node.
type Node struct {
	// FeatureNM is the drawn feature size in nanometres (e.g. 40).
	FeatureNM float64
	// Vdd is the nominal supply voltage in volts.
	Vdd float64
	// Vth is the nominal threshold voltage in volts.
	Vth float64
	// CGatePerUm is gate capacitance per micron of transistor width (F/um).
	CGatePerUm float64
	// CDiffPerUm is drain/source diffusion capacitance per micron (F/um).
	CDiffPerUm float64
	// ISubPerUm is sub-threshold leakage current per micron of width at the
	// nominal temperature (A/um).
	ISubPerUm float64
	// IGatePerUm is gate leakage current per micron of width (A/um).
	IGatePerUm float64
	// WireCPerMM is wire capacitance per millimetre for intermediate-layer
	// wires (F/mm).
	WireCPerMM float64
	// WireRPerMM is wire resistance per millimetre (Ohm/mm).
	WireRPerMM float64
	// SRAMCellUM2 is the area of a 6T SRAM cell (um^2).
	SRAMCellUM2 float64
	// CAMCellUM2 is the area of a 10T CAM cell (um^2).
	CAMCellUM2 float64
	// LogicGateUM2 is the area of an average 2-input NAND gate (um^2),
	// used to convert gate counts into silicon area.
	LogicGateUM2 float64
	// LeakagePerMM2 is the bulk logic leakage power density (W/mm^2) at the
	// nominal temperature and Vdd, used for random logic whose transistor
	// composition we do not model individually.
	LeakagePerMM2 float64
	// ShortCircuitFraction is the fraction of dynamic power additionally
	// consumed as short-circuit power (both networks briefly on).
	ShortCircuitFraction float64
}

// nodes is ordered by descending feature size.
var nodes = []Node{
	{
		FeatureNM: 90, Vdd: 1.20, Vth: 0.24,
		CGatePerUm: 1.60e-15, CDiffPerUm: 0.80e-15,
		ISubPerUm: 30e-9, IGatePerUm: 2.2e-9,
		WireCPerMM: 0.30e-12, WireRPerMM: 750,
		SRAMCellUM2: 1.30, CAMCellUM2: 2.40, LogicGateUM2: 3.50,
		LeakagePerMM2: 0.055, ShortCircuitFraction: 0.10,
	},
	{
		FeatureNM: 65, Vdd: 1.10, Vth: 0.22,
		CGatePerUm: 1.35e-15, CDiffPerUm: 0.68e-15,
		ISubPerUm: 60e-9, IGatePerUm: 4.5e-9,
		WireCPerMM: 0.28e-12, WireRPerMM: 1100,
		SRAMCellUM2: 0.68, CAMCellUM2: 1.30, LogicGateUM2: 1.90,
		LeakagePerMM2: 0.075, ShortCircuitFraction: 0.10,
	},
	{
		FeatureNM: 45, Vdd: 1.00, Vth: 0.20,
		CGatePerUm: 1.10e-15, CDiffPerUm: 0.55e-15,
		ISubPerUm: 120e-9, IGatePerUm: 7.0e-9,
		WireCPerMM: 0.25e-12, WireRPerMM: 1700,
		SRAMCellUM2: 0.35, CAMCellUM2: 0.65, LogicGateUM2: 1.00,
		LeakagePerMM2: 0.095, ShortCircuitFraction: 0.09,
	},
	{
		FeatureNM: 40, Vdd: 1.00, Vth: 0.19,
		CGatePerUm: 1.00e-15, CDiffPerUm: 0.50e-15,
		ISubPerUm: 150e-9, IGatePerUm: 8.0e-9,
		WireCPerMM: 0.24e-12, WireRPerMM: 1900,
		SRAMCellUM2: 0.30, CAMCellUM2: 0.55, LogicGateUM2: 0.85,
		LeakagePerMM2: 0.105, ShortCircuitFraction: 0.09,
	},
	{
		FeatureNM: 32, Vdd: 0.95, Vth: 0.18,
		CGatePerUm: 0.90e-15, CDiffPerUm: 0.45e-15,
		ISubPerUm: 210e-9, IGatePerUm: 11e-9,
		WireCPerMM: 0.22e-12, WireRPerMM: 2500,
		SRAMCellUM2: 0.18, CAMCellUM2: 0.34, LogicGateUM2: 0.55,
		LeakagePerMM2: 0.125, ShortCircuitFraction: 0.08,
	},
	{
		FeatureNM: 22, Vdd: 0.85, Vth: 0.17,
		CGatePerUm: 0.75e-15, CDiffPerUm: 0.38e-15,
		ISubPerUm: 300e-9, IGatePerUm: 15e-9,
		WireCPerMM: 0.20e-12, WireRPerMM: 3600,
		SRAMCellUM2: 0.092, CAMCellUM2: 0.17, LogicGateUM2: 0.28,
		LeakagePerMM2: 0.150, ShortCircuitFraction: 0.08,
	},
}

// ForNode returns the technology parameters for the given feature size in
// nanometres. Sizes between tabulated nodes are geometrically interpolated;
// sizes outside [22, 90] nm are an error.
func ForNode(nm float64) (Node, error) {
	if nm > nodes[0].FeatureNM || nm < nodes[len(nodes)-1].FeatureNM {
		return Node{}, fmt.Errorf("tech: node %.0f nm outside supported range [%g, %g] nm",
			nm, nodes[len(nodes)-1].FeatureNM, nodes[0].FeatureNM)
	}
	// Exact match.
	for _, n := range nodes {
		if n.FeatureNM == nm {
			return n, nil
		}
	}
	// Find bracketing nodes (nodes sorted descending).
	i := sort.Search(len(nodes), func(i int) bool { return nodes[i].FeatureNM <= nm })
	hi, lo := nodes[i-1], nodes[i] // hi has larger feature size
	// Geometric interpolation on feature size.
	t := (math.Log(hi.FeatureNM) - math.Log(nm)) / (math.Log(hi.FeatureNM) - math.Log(lo.FeatureNM))
	lerp := func(a, b float64) float64 { return a * math.Pow(b/a, t) }
	return Node{
		FeatureNM:            nm,
		Vdd:                  lerp(hi.Vdd, lo.Vdd),
		Vth:                  lerp(hi.Vth, lo.Vth),
		CGatePerUm:           lerp(hi.CGatePerUm, lo.CGatePerUm),
		CDiffPerUm:           lerp(hi.CDiffPerUm, lo.CDiffPerUm),
		ISubPerUm:            lerp(hi.ISubPerUm, lo.ISubPerUm),
		IGatePerUm:           lerp(hi.IGatePerUm, lo.IGatePerUm),
		WireCPerMM:           lerp(hi.WireCPerMM, lo.WireCPerMM),
		WireRPerMM:           lerp(hi.WireRPerMM, lo.WireRPerMM),
		SRAMCellUM2:          lerp(hi.SRAMCellUM2, lo.SRAMCellUM2),
		CAMCellUM2:           lerp(hi.CAMCellUM2, lo.CAMCellUM2),
		LogicGateUM2:         lerp(hi.LogicGateUM2, lo.LogicGateUM2),
		LeakagePerMM2:        lerp(hi.LeakagePerMM2, lo.LeakagePerMM2),
		ShortCircuitFraction: lerp(hi.ShortCircuitFraction, lo.ShortCircuitFraction),
	}, nil
}

// MustNode is ForNode but panics on error; for use with known-good constants.
func MustNode(nm float64) Node {
	n, err := ForNode(nm)
	if err != nil {
		panic(err)
	}
	return n
}

// SwitchEnergy returns the energy in joules of charging-and-discharging the
// given capacitance once at full swing (E = C * Vdd^2), including the
// short-circuit surcharge from Eq. (1) of the paper.
func (n Node) SwitchEnergy(capF float64) float64 {
	return capF * n.Vdd * n.Vdd * (1 + n.ShortCircuitFraction)
}

// LeakagePower returns the static power in watts of the given total
// transistor width (in microns), combining sub-threshold and gate leakage
// (third term of Eq. (1): Vdd * Ileak).
func (n Node) LeakagePower(widthUm float64) float64 {
	return n.Vdd * widthUm * (n.ISubPerUm + n.IGatePerUm)
}

// GateCap returns the input capacitance in farads of a transistor of the
// given width in microns.
func (n Node) GateCap(widthUm float64) float64 { return n.CGatePerUm * widthUm }

// MinWidthUm returns the minimum transistor width in microns, taken as twice
// the feature size (a typical minimum-size device).
func (n Node) MinWidthUm() float64 { return 2 * n.FeatureNM / 1000 }

// FO4DelaySeconds estimates the fanout-of-4 inverter delay for this node.
// Not used for power, but exposed so that timing sanity checks can relate
// modeled clock frequencies to the process.
func (n Node) FO4DelaySeconds() float64 {
	// Classic approximation: ~0.5 ps per nm of feature size / 1000 * 9.
	return 9 * 0.05e-12 * n.FeatureNM / 10
}
