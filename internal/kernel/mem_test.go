package kernel

import (
	"reflect"
	"testing"
)

// TestReadsAreSideEffectFree pins the read semantics the simulation-result
// cache depends on: an out-of-range Read32 returns zero without growing the
// image (growth would perturb the image size and its content hash), while
// writes still grow it.
func TestReadsAreSideEffectFree(t *testing.T) {
	m := NewGlobalMem()
	a := m.Alloc(64)
	m.Write32(a, 42)
	before := append([]uint32(nil), m.Words()...)

	if v := m.Read32(1 << 20); v != 0 {
		t.Errorf("out-of-range read = %d, want 0", v)
	}
	if v := m.ReadF32(1 << 21); v != 0 {
		t.Errorf("out-of-range float read = %v, want 0", v)
	}
	if !reflect.DeepEqual(m.Words(), before) {
		t.Error("reads mutated the memory image")
	}
	if m.Read32(a) != 42 {
		t.Error("in-range read broken")
	}

	// Writes beyond the image still grow it.
	m.Write32(1<<20, 7)
	if len(m.Words()) <= len(before) {
		t.Error("out-of-range write did not grow the image")
	}
	if m.Read32(1<<20) != 7 {
		t.Error("grown word lost its value")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := NewGlobalMem()
	a := m.AllocI32([]int32{1, 2, 3, 4})
	snap := m.Snapshot()

	m.Write32(a, 99)
	b := m.Alloc(1024)
	m.Write32(b, 5)

	m.Restore(snap)
	if got := m.ReadI32Slice(a, 4); !reflect.DeepEqual(got, []int32{1, 2, 3, 4}) {
		t.Errorf("restored content = %v", got)
	}
	if m.Size() != int(snap.Next) {
		t.Errorf("restored high-water mark = %d, want %d", m.Size(), snap.Next)
	}
	// The snapshot must not alias the live image.
	m.Write32(a, 77)
	if snap.Words[int(a/4)] != 1 {
		t.Error("writing the restored image mutated the snapshot")
	}
}
