package kernel

import (
	"fmt"
	"strings"
)

// String renders an operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return fmt.Sprintf("r%d", o.Reg)
	case KindImm:
		// Heuristic display: small magnitudes as signed ints, otherwise hex.
		if v := int32(o.Imm); v > -65536 && v < 65536 {
			return fmt.Sprintf("%d", v)
		}
		return fmt.Sprintf("0x%08x", o.Imm)
	case KindSpecial:
		return "%" + o.Special.String()
	}
	return "?"
}

// String names a special register.
func (s Special) String() string {
	switch s {
	case SpecTidX:
		return "tid.x"
	case SpecTidY:
		return "tid.y"
	case SpecNTidX:
		return "ntid.x"
	case SpecNTidY:
		return "ntid.y"
	case SpecCtaX:
		return "ctaid.x"
	case SpecCtaY:
		return "ctaid.y"
	case SpecNCtaX:
		return "nctaid.x"
	case SpecNCtaY:
		return "nctaid.y"
	case SpecLane:
		return "laneid"
	case SpecWarpInBlock:
		return "warpid"
	}
	return "sreg?"
}

// String disassembles one instruction.
func (in Instr) String() string {
	var sb strings.Builder
	if in.Pred != NoPred {
		if in.PredNeg {
			sb.WriteString(fmt.Sprintf("@!r%d ", in.Pred))
		} else {
			sb.WriteString(fmt.Sprintf("@r%d ", in.Pred))
		}
	}
	switch in.Op {
	case OpBra:
		fmt.Fprintf(&sb, "bra %d, reconv %d", in.Target, in.Reconv)
	case OpBar, OpExit, OpNop:
		sb.WriteString(in.Op.String())
	case OpLd:
		fmt.Fprintf(&sb, "ld.%s r%d, [%s%+d]", in.Space, in.Dst, in.Src[0], in.Offset)
	case OpSt:
		fmt.Fprintf(&sb, "st.%s [%s%+d], %s", in.Space, in.Src[0], in.Offset, in.Src[1])
	case OpAtomAdd:
		fmt.Fprintf(&sb, "atom.add.%s r%d, [%s%+d], %s", in.Space, in.Dst, in.Src[0], in.Offset, in.Src[1])
	case OpISet, OpFSet:
		fmt.Fprintf(&sb, "%s.%s r%d, %s, %s", in.Op, in.Cmp, in.Dst, in.Src[0], in.Src[1])
	default:
		sb.WriteString(in.Op.String())
		if in.HasDst {
			fmt.Fprintf(&sb, " r%d", in.Dst)
		}
		for i := 0; i < in.NumSrc; i++ {
			if i == 0 && in.HasDst {
				sb.WriteString(",")
			} else if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(" " + in.Src[i].String())
		}
	}
	return sb.String()
}

// Disassemble renders the whole program with PC labels, one instruction per
// line — the debugging view of an assembled kernel.
func (p *Program) Disassemble() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "// kernel %s: %d instrs, %d regs, %d B smem, %d params\n",
		p.Name, len(p.Instrs), p.NumRegs, p.SMemBytes, p.NumParams)
	// Branch targets get labels.
	targets := map[int]bool{}
	for _, in := range p.Instrs {
		if in.Op == OpBra {
			targets[in.Target] = true
			targets[in.Reconv] = true
		}
	}
	for pc, in := range p.Instrs {
		mark := "   "
		if targets[pc] {
			mark = "L: "
		}
		fmt.Fprintf(&sb, "%s%4d:  %s\n", mark, pc, in.String())
	}
	return sb.String()
}
