package kernel

import (
	"math"
	"testing"
)

// buildVecAdd assembles c[i] = a[i] + b[i] with a bounds guard.
// Params: 0=a, 1=b, 2=c, 3=n.
func buildVecAdd(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder("vecadd", 12).Params(4)
	// r0 = tid.x + ctaid.x * ntid.x
	b.SReg(0, SpecTidX)
	b.SReg(1, SpecCtaX)
	b.SReg(2, SpecNTidX)
	b.IMad(0, R(1), R(2), R(0))
	// guard: exit when r0 >= n
	b.LdParam(3, 3)
	b.ISet(4, CmpGE, R(0), R(3))
	b.When(4).Exit()
	// addresses
	b.LdParam(5, 0)
	b.LdParam(6, 1)
	b.LdParam(7, 2)
	b.IShl(8, R(0), I(2)) // byte offset
	b.IAdd(5, R(5), R(8))
	b.IAdd(6, R(6), R(8))
	b.IAdd(7, R(7), R(8))
	b.Ld(SpaceGlobal, 9, R(5), 0)
	b.Ld(SpaceGlobal, 10, R(6), 0)
	b.FAdd(11, R(9), R(10))
	b.St(SpaceGlobal, R(7), R(11), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVecAddFunctional(t *testing.T) {
	p := buildVecAdd(t)
	const n = 1000 // not a multiple of 32 or block size: exercises guards
	mem := NewGlobalMem()
	av := make([]float32, n)
	bv := make([]float32, n)
	for i := range av {
		av[i] = float32(i) * 0.5
		bv[i] = float32(n - i)
	}
	aAddr := mem.AllocF32(av)
	bAddr := mem.AllocF32(bv)
	cAddr := mem.AllocZeroF32(n)

	l := &Launch{
		Prog:   p,
		Grid:   Dim{X: (n + 127) / 128, Y: 1},
		Block:  Dim{X: 128, Y: 1},
		Params: []uint32{aAddr, bAddr, cAddr, n},
	}
	stats, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	got := mem.ReadF32Slice(cAddr, n)
	for i := range got {
		want := av[i] + bv[i]
		if got[i] != want {
			t.Fatalf("c[%d] = %v, want %v", i, got[i], want)
		}
	}
	if stats.WarpInstrs == 0 || stats.ThreadInstrs == 0 {
		t.Error("stats not collected")
	}
	if stats.Blocks != uint64(l.Grid.X) {
		t.Errorf("blocks = %d, want %d", stats.Blocks, l.Grid.X)
	}
	// The guard exits lanes 1000..1023 early, so lane-weighted instruction
	// counts must fall short of warpInstrs * warpSize.
	if stats.ThreadInstrs >= stats.WarpInstrs*WarpSize {
		t.Error("expected some lanes to be masked off by the bounds guard")
	}
}

func TestDivergenceIfThenElse(t *testing.T) {
	// Even lanes write 100, odd lanes write 200, then all write +1 to a
	// second buffer — verifies both paths execute and reconvergence happens.
	b := NewBuilder("diverge", 8).Params(2)
	b.SReg(0, SpecTidX)
	b.IAnd(1, R(0), I(1)) // r1 = tid & 1
	b.LdParam(2, 0)
	b.IShl(3, R(0), I(2))
	b.IAdd(2, R(2), R(3)) // &out[tid]
	b.When(1).Bra("odd", "join")
	b.MovI(4, 100)
	b.BraUni("join")
	b.Label("odd")
	b.MovI(4, 200)
	b.Label("join")
	b.St(SpaceGlobal, R(2), R(4), 0)
	// After reconvergence all lanes store tid to buffer 2.
	b.LdParam(5, 1)
	b.IAdd(5, R(5), R(3))
	b.St(SpaceGlobal, R(5), R(0), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	o1 := mem.Alloc(32 * 4)
	o2 := mem.Alloc(32 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{o1, o2}}
	stats, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Divergences != 1 {
		t.Errorf("divergences = %d, want 1", stats.Divergences)
	}
	for i := 0; i < 32; i++ {
		want := int32(100)
		if i%2 == 1 {
			want = 200
		}
		if got := mem.ReadI32Slice(o1+uint32(4*i), 1)[0]; got != want {
			t.Errorf("out1[%d] = %d, want %d", i, got, want)
		}
		if got := mem.ReadI32Slice(o2+uint32(4*i), 1)[0]; got != int32(i) {
			t.Errorf("out2[%d] = %d, want %d (reconvergence broken)", i, got, i)
		}
	}
}

func TestDivergentLoopTripCounts(t *testing.T) {
	// Each lane loops tid+1 times, accumulating. out[tid] = tid+1.
	b := NewBuilder("looptrip", 8).Params(1)
	b.SReg(0, SpecTidX)
	b.IAdd(1, R(0), I(1)) // bound
	b.MovI(2, 0)          // counter
	b.Label("loop")
	b.IAdd(2, R(2), I(1))
	b.ISet(3, CmpLT, R(2), R(1))
	b.When(3).Bra("loop", "exit")
	b.Label("exit")
	b.LdParam(4, 0)
	b.IShl(5, R(0), I(2))
	b.IAdd(4, R(4), R(5))
	b.St(SpaceGlobal, R(4), R(2), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(32 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	stats, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := mem.ReadI32Slice(out, 32)
	for i, v := range vals {
		if v != int32(i+1) {
			t.Errorf("out[%d] = %d, want %d", i, v, i+1)
		}
	}
	if stats.MaxStackDepth < 2 {
		t.Error("divergent loop should deepen the reconvergence stack")
	}
	// With poppable tokens elided, a singly-nested divergent loop keeps the
	// stack shallow regardless of trip counts.
	if stats.MaxStackDepth > 4 {
		t.Errorf("stack depth %d suspiciously deep (token leak?)", stats.MaxStackDepth)
	}
}

func TestSharedMemoryAndBarrier(t *testing.T) {
	// Block-wide reversal through shared memory: out[i] = in[blockDim-1-i].
	const bs = 64
	b := NewBuilder("smemrev", 10).Params(2).SMem(bs * 4)
	b.SReg(0, SpecTidX)
	b.LdParam(1, 0) // in
	b.IShl(2, R(0), I(2))
	b.IAdd(3, R(1), R(2))
	b.Ld(SpaceGlobal, 4, R(3), 0)
	b.St(SpaceShared, R(2), R(4), 0)
	b.Bar()
	// read shared[bs-1-tid]
	b.MovI(5, bs-1)
	b.ISub(5, R(5), R(0))
	b.IShl(5, R(5), I(2))
	b.Ld(SpaceShared, 6, R(5), 0)
	b.LdParam(7, 1) // out
	b.IAdd(7, R(7), R(2))
	b.St(SpaceGlobal, R(7), R(6), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	in := make([]int32, bs)
	for i := range in {
		in[i] = int32(i * 7)
	}
	inAddr := mem.AllocI32(in)
	outAddr := mem.Alloc(bs * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{bs, 1}, Params: []uint32{inAddr, outAddr}}
	stats, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Barriers == 0 {
		t.Error("barrier should have been released at least once")
	}
	got := mem.ReadI32Slice(outAddr, bs)
	for i := range got {
		if got[i] != in[bs-1-i] {
			t.Fatalf("out[%d] = %d, want %d", i, got[i], in[bs-1-i])
		}
	}
}

func TestFloatOpsAndSFU(t *testing.T) {
	b := NewBuilder("fops", 12).Params(1)
	b.SReg(0, SpecTidX)
	b.I2F(1, R(0))                // f = tid
	b.FAdd(1, R(1), F(1.0))       // f = tid+1
	b.FMul(2, R(1), R(1))         // f^2
	b.Sqrt(3, R(2))               // back to f
	b.Rcp(4, R(3))                // 1/f
	b.FFma(5, R(3), R(4), F(1.0)) // f*(1/f)+1 = 2
	b.Sin(6, F(0))                // 0
	b.FAdd(5, R(5), R(6))         // still 2
	b.LdParam(7, 0)
	b.IShl(8, R(0), I(2))
	b.IAdd(7, R(7), R(8))
	b.St(SpaceGlobal, R(7), R(5), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(32 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	stats, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	vals := mem.ReadF32Slice(out, 32)
	for i, v := range vals {
		if math.Abs(float64(v)-2) > 1e-4 {
			t.Errorf("out[%d] = %v, want ~2", i, v)
		}
	}
	if stats.PerClass[ClassSFU] == 0 {
		t.Error("SFU class instructions not counted")
	}
	if stats.PerClass[ClassFP] == 0 {
		t.Error("FP class instructions not counted")
	}
}

func TestAtomAdd(t *testing.T) {
	// All 64 threads atomically add 1 to a counter.
	b := NewBuilder("atom", 6).Params(1)
	b.LdParam(0, 0)
	b.AtomAdd(1, R(0), I(1), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	ctr := mem.Alloc(4)
	l := &Launch{Prog: p, Grid: Dim{2, 1}, Block: Dim{32, 1}, Params: []uint32{ctr}}
	if _, err := Interp(l, mem, nil); err != nil {
		t.Fatal(err)
	}
	if got := mem.Read32(ctr); got != 64 {
		t.Errorf("counter = %d, want 64", got)
	}
}

func TestConstMemory(t *testing.T) {
	b := NewBuilder("const", 6).Params(1)
	b.SReg(0, SpecTidX)
	b.IShl(1, R(0), I(2))
	b.Ld(SpaceConst, 2, R(1), 0)
	b.LdParam(3, 0)
	b.IAdd(3, R(3), R(1))
	b.St(SpaceGlobal, R(3), R(2), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cmem := NewConstMem(128)
	cvals := make([]int32, 32)
	for i := range cvals {
		cvals[i] = int32(1000 + i)
	}
	cmem.WriteI32Slice(0, cvals)
	mem := NewGlobalMem()
	out := mem.Alloc(32 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	if _, err := Interp(l, mem, cmem); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadI32Slice(out, 32)
	for i := range got {
		if got[i] != cvals[i] {
			t.Errorf("out[%d] = %d, want %d", i, got[i], cvals[i])
		}
	}
}

func TestIntegerOps(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *Builder) // compute into r5 from r0=tid
		want func(tid int32) int32
	}{
		{"isub", func(b *Builder) { b.ISub(5, R(0), I(3)) }, func(t int32) int32 { return t - 3 }},
		{"imul", func(b *Builder) { b.IMul(5, R(0), I(-7)) }, func(t int32) int32 { return t * -7 }},
		{"imin", func(b *Builder) { b.IMin(5, R(0), I(5)) }, func(t int32) int32 { return min32(t, 5) }},
		{"imax", func(b *Builder) { b.IMax(5, R(0), I(5)) }, func(t int32) int32 { return max32(t, 5) }},
		{"iand", func(b *Builder) { b.IAnd(5, R(0), I(6)) }, func(t int32) int32 { return t & 6 }},
		{"ior", func(b *Builder) { b.IOr(5, R(0), I(8)) }, func(t int32) int32 { return t | 8 }},
		{"ixor", func(b *Builder) { b.IXor(5, R(0), I(0xF)) }, func(t int32) int32 { return t ^ 0xF }},
		{"inot", func(b *Builder) { b.INot(5, R(0)) }, func(t int32) int32 { return ^t }},
		{"ishl", func(b *Builder) { b.IShl(5, R(0), I(3)) }, func(t int32) int32 { return t << 3 }},
		{"ishr", func(b *Builder) { b.IShr(5, R(0), I(1)) }, func(t int32) int32 { return int32(uint32(t) >> 1) }},
		{"isra", func(b *Builder) { b.ISub(4, R(0), I(16)); b.ISra(5, R(4), I(2)) }, func(t int32) int32 { return (t - 16) >> 2 }},
		{"isel", func(b *Builder) { b.IAnd(4, R(0), I(1)); b.ISel(5, R(4), I(11), I(22)) }, func(t int32) int32 {
			if t&1 != 0 {
				return 11
			}
			return 22
		}},
		{"iset.le", func(b *Builder) { b.ISet(5, CmpLE, R(0), I(10)) }, func(t int32) int32 { return boolI(t <= 10) }},
		{"iset.ne", func(b *Builder) { b.ISet(5, CmpNE, R(0), I(4)) }, func(t int32) int32 { return boolI(t != 4) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder(c.name, 8).Params(1)
			b.SReg(0, SpecTidX)
			c.emit(b)
			b.LdParam(6, 0)
			b.IShl(7, R(0), I(2))
			b.IAdd(6, R(6), R(7))
			b.St(SpaceGlobal, R(6), R(5), 0)
			b.Exit()
			p, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			mem := NewGlobalMem()
			out := mem.Alloc(32 * 4)
			l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
			if _, err := Interp(l, mem, nil); err != nil {
				t.Fatal(err)
			}
			got := mem.ReadI32Slice(out, 32)
			for i := range got {
				if want := c.want(int32(i)); got[i] != want {
					t.Fatalf("lane %d: got %d, want %d", i, got[i], want)
				}
			}
		})
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}
func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}
func boolI(b bool) int32 {
	if b {
		return 1
	}
	return 0
}
