package kernel

import (
	"fmt"
	"math"
	"math/bits"
)

// Token is one entry of the per-warp reconvergence stack: an execution PC,
// the reconvergence PC at which this control-flow path merges back, and the
// active mask of lanes following the path (paper Fig. 2, after the Coon &
// Lindholm patent).
type Token struct {
	PC     int
	Reconv int // merge PC; -1 for the bottom-of-stack token
	Mask   uint32
}

// BlockCtx identifies a thread block within a launch.
type BlockCtx struct {
	CtaX, CtaY int
	Launch     *Launch
	// Shared is the block's shared-memory image (word-addressed).
	Shared []uint32
}

// NewBlockCtx prepares the execution context of one block.
func NewBlockCtx(l *Launch, ctaX, ctaY int) *BlockCtx {
	return &BlockCtx{
		CtaX: ctaX, CtaY: ctaY, Launch: l,
		Shared: make([]uint32, (l.SMemBytes()+3)/4),
	}
}

// Reset repoints a recycled block context at a new block, zeroing the
// shared-memory image. The simulator pools contexts per core so
// steady-state block turnover stops allocating; a context must never carry
// shared-memory state from the block that previously owned it (pinned by
// the sim package's pooled-state aliasing test).
func (b *BlockCtx) Reset(l *Launch, ctaX, ctaY int) {
	b.CtaX, b.CtaY, b.Launch = ctaX, ctaY, l
	need := (l.SMemBytes() + 3) / 4
	if cap(b.Shared) >= need {
		b.Shared = b.Shared[:need]
		clear(b.Shared)
	} else {
		b.Shared = make([]uint32, need)
	}
}

// Env bundles the memories a warp needs during execution.
type Env struct {
	Global *GlobalMem
	Const  *ConstMem
	Block  *BlockCtx
	// Capture, when non-nil, defers the Global side of Ld/St/AtomAdd: Exec
	// records the operations instead of performing them and the owner
	// replays them later in order (see GlobalCapture). Shared memory,
	// constants and parameters are unaffected.
	Capture *GlobalCapture
}

// Warp is the architectural state of one warp: per-lane registers and the
// reconvergence stack.
type Warp struct {
	// IDInBlock is the warp's index within its block.
	IDInBlock int
	// Regs holds NumRegs*WarpSize registers, lane-major: register r of lane
	// l is Regs[r*WarpSize+l].
	Regs []uint32
	// Stack is the reconvergence stack; the top is the last element.
	Stack []Token
	// AtBarrier is set while the warp waits at a block barrier.
	AtBarrier bool
	// Finished is set when all lanes have exited.
	Finished bool
	// initialMask covers the lanes that actually hold threads (the last
	// warp of a block may be partial).
	initialMask uint32
}

// NewWarp creates a warp with the given number of live lanes (1..WarpSize).
func NewWarp(idInBlock, liveLanes, numRegs int) *Warp {
	if liveLanes <= 0 || liveLanes > WarpSize {
		panic(fmt.Sprintf("kernel: warp with %d lanes", liveLanes))
	}
	var mask uint32
	if liveLanes == WarpSize {
		mask = FullMask
	} else {
		mask = (uint32(1) << liveLanes) - 1
	}
	return &Warp{
		IDInBlock:   idInBlock,
		Regs:        make([]uint32, numRegs*WarpSize),
		Stack:       []Token{{PC: 0, Reconv: -1, Mask: mask}},
		initialMask: mask,
	}
}

// Reset reinitialises a recycled warp to NewWarp's state: registers
// zeroed, a single bottom-of-stack token, flags cleared. The simulator
// pools warps per core; recycled register files and token stacks must be
// indistinguishable from fresh ones (pinned by the sim package's
// pooled-state aliasing test).
func (w *Warp) Reset(idInBlock, liveLanes, numRegs int) {
	if liveLanes <= 0 || liveLanes > WarpSize {
		panic(fmt.Sprintf("kernel: warp with %d lanes", liveLanes))
	}
	var mask uint32
	if liveLanes == WarpSize {
		mask = FullMask
	} else {
		mask = (uint32(1) << liveLanes) - 1
	}
	w.IDInBlock = idInBlock
	if len(w.Regs) == numRegs*WarpSize {
		clear(w.Regs)
	} else {
		w.Regs = make([]uint32, numRegs*WarpSize)
	}
	w.Stack = append(w.Stack[:0], Token{PC: 0, Reconv: -1, Mask: mask})
	w.AtBarrier = false
	w.Finished = false
	w.initialMask = mask
}

// Top returns the active token. Panics if the warp has finished.
func (w *Warp) Top() *Token { return &w.Stack[len(w.Stack)-1] }

// PC returns the current program counter.
func (w *Warp) PC() int { return w.Top().PC }

// ActiveMask returns the current lane mask.
func (w *Warp) ActiveMask() uint32 { return w.Top().Mask }

// StackDepth returns the reconvergence-stack depth.
func (w *Warp) StackDepth() int { return len(w.Stack) }

// reg returns a pointer to register r of lane l.
func (w *Warp) reg(r uint8, l int) *uint32 { return &w.Regs[int(r)*WarpSize+l] }

// SetReg sets register r of lane l (host-side initialisation in tests).
func (w *Warp) SetReg(r, l int, v uint32) { *w.reg(uint8(r), l) = v }

// GetReg reads register r of lane l.
func (w *Warp) GetReg(r, l int) uint32 { return *w.reg(uint8(r), l) }

// StepInfo reports what one instruction execution did; the cycle-level
// simulator converts it into timing and activity.
type StepInfo struct {
	// Instr is the executed instruction.
	Instr *Instr
	// PC is the program counter the instruction was fetched from.
	PC int
	// ExecMask is the set of lanes that performed the operation (active mask
	// AND predicate).
	ExecMask uint32
	// ActiveLanes is the popcount of ExecMask.
	ActiveLanes int
	// Addrs holds, for memory operations, the byte address accessed by each
	// executing lane (indexed by lane; only lanes in ExecMask are valid).
	Addrs [WarpSize]uint32
	// Diverged is set when a branch split the warp.
	Diverged bool
	// Reconverged counts stack pops performed after this instruction.
	Reconverged int
	// Finished is set when the warp fully exited.
	Finished bool
	// AtBarrier is set when the warp stopped at a barrier.
	AtBarrier bool
}

// operand fetches the value of operand o for lane l.
func (w *Warp) operand(o Operand, l int, env *Env) uint32 {
	switch o.Kind {
	case KindReg:
		return *w.reg(o.Reg, l)
	case KindImm:
		return o.Imm
	case KindSpecial:
		b := env.Block
		launch := b.Launch
		tid := w.IDInBlock*WarpSize + l
		switch o.Special {
		case SpecTidX:
			return uint32(tid % launch.Block.X)
		case SpecTidY:
			return uint32(tid / launch.Block.X)
		case SpecNTidX:
			return uint32(launch.Block.X)
		case SpecNTidY:
			return uint32(launch.Block.Y)
		case SpecCtaX:
			return uint32(b.CtaX)
		case SpecCtaY:
			return uint32(b.CtaY)
		case SpecNCtaX:
			return uint32(launch.Grid.X)
		case SpecNCtaY:
			return uint32(launch.Grid.Y)
		case SpecLane:
			return uint32(l)
		case SpecWarpInBlock:
			return uint32(w.IDInBlock)
		}
	}
	return 0
}

// Exec executes the warp's current instruction functionally and advances
// control flow. It returns a StepInfo for the timing model. Calling Exec on
// a finished warp or one waiting at a barrier is a programming error.
func (w *Warp) Exec(p *Program, env *Env) (StepInfo, error) {
	if w.Finished {
		return StepInfo{}, fmt.Errorf("kernel %s: exec on finished warp", p.Name)
	}
	if w.AtBarrier {
		return StepInfo{}, fmt.Errorf("kernel %s: exec on warp at barrier", p.Name)
	}
	top := w.Top()
	pc := top.PC
	if pc < 0 || pc >= len(p.Instrs) {
		return StepInfo{}, fmt.Errorf("kernel %s: pc %d out of range (missing exit?)", p.Name, pc)
	}
	in := &p.Instrs[pc]
	d := &p.Decoded()[pc]
	info := StepInfo{Instr: in, PC: pc}

	// Predicate resolution: build the set-lane mask branch-free over the
	// contiguous predicate-register row, then mask with the active lanes
	// (reading an inactive lane's predicate is harmless).
	execMask := top.Mask
	if d.predOff >= 0 {
		preds := w.Regs[d.predOff : d.predOff+WarpSize]
		var pm uint32
		for l, v := range preds {
			var bit uint32
			if v != 0 {
				bit = 1
			}
			pm |= bit << l
		}
		if in.PredNeg {
			pm = ^pm
		}
		execMask = top.Mask & pm
	}
	info.ExecMask = execMask
	info.ActiveLanes = bits.OnesCount32(execMask)

	switch in.Op {
	case OpBra:
		w.execBranch(in, execMask, &info)
	case OpExit:
		// Remove executing lanes from every stack level.
		for i := range w.Stack {
			w.Stack[i].Mask &^= execMask
		}
		top.PC++
		w.popEmptyAndMerged(&info)
	case OpBar:
		if execMask != 0 {
			w.AtBarrier = true
			info.AtBarrier = true
		}
		top.PC++
		w.popMerged(&info)
	default:
		var err error
		if d.fast {
			err = w.execDataFast(in, d, execMask, env, &info)
		} else {
			err = w.execData(in, execMask, env, &info)
		}
		if err != nil {
			return info, err
		}
		top.PC++
		w.popMerged(&info)
	}

	if len(w.Stack) == 0 || w.Top().Mask == 0 && len(w.Stack) == 1 {
		w.Finished = true
		info.Finished = true
	}
	return info, nil
}

// execBranch implements the stack-based divergence mechanism.
func (w *Warp) execBranch(in *Instr, takenMask uint32, info *StepInfo) {
	top := w.Top()
	notTaken := top.Mask &^ takenMask
	switch {
	case takenMask == 0: // uniform fall-through
		top.PC++
	case notTaken == 0: // uniform taken
		top.PC = in.Target
	default: // divergence
		info.Diverged = true
		fallPC := top.PC + 1
		// The current token becomes the reconvergence continuation.
		top.PC = in.Reconv
		// A token whose PC already equals its reconvergence point would pop
		// without executing anything, so it is never materialised; this keeps
		// the stack depth bounded by the nesting depth rather than by the
		// number of divergent loop iterations.
		if top.Reconv >= 0 && top.PC == top.Reconv {
			w.Stack = w.Stack[:len(w.Stack)-1]
		}
		if fallPC != in.Reconv {
			w.Stack = append(w.Stack, Token{PC: fallPC, Reconv: in.Reconv, Mask: notTaken})
		}
		if in.Target != in.Reconv {
			w.Stack = append(w.Stack, Token{PC: in.Target, Reconv: in.Reconv, Mask: takenMask})
		}
	}
	w.popMerged(info)
}

// popMerged pops tokens whose PC reached their reconvergence point.
func (w *Warp) popMerged(info *StepInfo) {
	for len(w.Stack) > 1 {
		t := w.Top()
		if t.Reconv >= 0 && t.PC == t.Reconv {
			w.Stack = w.Stack[:len(w.Stack)-1]
			info.Reconverged++
			continue
		}
		if t.Mask == 0 {
			w.Stack = w.Stack[:len(w.Stack)-1]
			info.Reconverged++
			continue
		}
		break
	}
}

// popEmptyAndMerged additionally drops empty tokens after an Exit.
func (w *Warp) popEmptyAndMerged(info *StepInfo) {
	w.popMerged(info)
	for len(w.Stack) > 1 && w.Top().Mask == 0 {
		w.Stack = w.Stack[:len(w.Stack)-1]
		info.Reconverged++
		w.popMerged(info)
	}
}

// ReleaseBarrier resumes a warp stopped at a barrier.
func (w *Warp) ReleaseBarrier() { w.AtBarrier = false }

// execData executes a non-control instruction for all lanes in execMask,
// iterating set bits directly (lanes ascend, so lane-ordered effects such as
// AtomAdd are unchanged) instead of testing all WarpSize lanes.
func (w *Warp) execData(in *Instr, execMask uint32, env *Env, info *StepInfo) error {
	for rem := execMask; rem != 0; rem &= rem - 1 {
		l := bits.TrailingZeros32(rem)
		a := uint32(0)
		if in.NumSrc > 0 {
			a = w.operand(in.Src[0], l, env)
		}
		b := uint32(0)
		if in.NumSrc > 1 {
			b = w.operand(in.Src[1], l, env)
		}
		c := uint32(0)
		if in.NumSrc > 2 {
			c = w.operand(in.Src[2], l, env)
		}

		var d uint32
		switch in.Op {
		case OpNop:
			continue
		case OpMov:
			d = a
		case OpIAdd:
			d = a + b
		case OpISub:
			d = a - b
		case OpIMul:
			d = a * b
		case OpIMad:
			d = a*b + c
		case OpIMin:
			if int32(a) < int32(b) {
				d = a
			} else {
				d = b
			}
		case OpIMax:
			if int32(a) > int32(b) {
				d = a
			} else {
				d = b
			}
		case OpIAnd:
			d = a & b
		case OpIOr:
			d = a | b
		case OpIXor:
			d = a ^ b
		case OpINot:
			d = ^a
		case OpIShl:
			d = a << (b & 31)
		case OpIShr:
			d = a >> (b & 31)
		case OpISra:
			d = uint32(int32(a) >> (b & 31))
		case OpISet:
			d = boolTo32(cmpI(in.Cmp, int32(a), int32(b)))
		case OpISel:
			if a != 0 {
				d = b
			} else {
				d = c
			}
		case OpFAdd:
			d = f2b(b2f(a) + b2f(b))
		case OpFSub:
			d = f2b(b2f(a) - b2f(b))
		case OpFMul:
			d = f2b(b2f(a) * b2f(b))
		case OpFFma:
			d = f2b(float32(float64(b2f(a))*float64(b2f(b)) + float64(b2f(c))))
		case OpFMin:
			d = f2b(float32(math.Min(float64(b2f(a)), float64(b2f(b)))))
		case OpFMax:
			d = f2b(float32(math.Max(float64(b2f(a)), float64(b2f(b)))))
		case OpFNeg:
			d = f2b(-b2f(a))
		case OpFAbs:
			d = f2b(float32(math.Abs(float64(b2f(a)))))
		case OpFSet:
			d = boolTo32(cmpF(in.Cmp, b2f(a), b2f(b)))
		case OpI2F:
			d = f2b(float32(int32(a)))
		case OpF2I:
			d = uint32(int32(b2f(a)))
		case OpRcp:
			d = f2b(1 / b2f(a))
		case OpRsq:
			d = f2b(float32(1 / math.Sqrt(float64(b2f(a)))))
		case OpSqrt:
			d = f2b(float32(math.Sqrt(float64(b2f(a)))))
		case OpSin:
			d = f2b(float32(math.Sin(float64(b2f(a)))))
		case OpCos:
			d = f2b(float32(math.Cos(float64(b2f(a)))))
		case OpEx2:
			d = f2b(float32(math.Exp2(float64(b2f(a)))))
		case OpLg2:
			d = f2b(float32(math.Log2(float64(b2f(a)))))
		case OpLd, OpSt, OpAtomAdd:
			addr := a + uint32(in.Offset)
			info.Addrs[l] = addr
			switch in.Op {
			case OpLd:
				if gc := env.Capture; gc != nil && (in.Space == SpaceGlobal || in.Space == SpaceTexture) {
					gc.captureLoad(w, dstOffOf(in), l, addr)
					continue
				}
				v, err := w.load(in.Space, addr, env)
				if err != nil {
					return err
				}
				d = v
			case OpSt:
				if gc := env.Capture; gc != nil && in.Space == SpaceGlobal {
					gc.captureStore(addr, b)
					continue
				}
				if err := w.store(in.Space, addr, b, env); err != nil {
					return err
				}
				continue
			case OpAtomAdd:
				if gc := env.Capture; gc != nil {
					gc.captureAtomAdd(w, dstOffOf(in), l, addr, b)
					continue
				}
				old := env.Global.Read32(addr)
				env.Global.Write32(addr, old+b)
				d = old
			}
		default:
			return fmt.Errorf("kernel: unimplemented op %v", in.Op)
		}
		if in.HasDst {
			*w.reg(in.Dst, l) = d
		}
	}
	return nil
}

// dstOffOf returns the flat Regs offset of the destination row, -1 if the
// instruction writes no register (the capture-path analogue of HasDst).
func dstOffOf(in *Instr) int32 {
	if in.HasDst {
		return int32(in.Dst) * WarpSize
	}
	return -1
}

func (w *Warp) load(space Space, addr uint32, env *Env) (uint32, error) {
	switch space {
	case SpaceGlobal:
		return env.Global.Read32(addr), nil
	case SpaceShared:
		i := int(addr / 4)
		if i >= len(env.Block.Shared) {
			return 0, fmt.Errorf("kernel: shared load at %d beyond %d bytes", addr, 4*len(env.Block.Shared))
		}
		return env.Block.Shared[i], nil
	case SpaceConst:
		return env.Const.Read32(addr), nil
	case SpaceParam:
		i := int(addr / 4)
		if i >= len(env.Block.Launch.Params) {
			return 0, fmt.Errorf("kernel: param %d beyond %d params", i, len(env.Block.Launch.Params))
		}
		return env.Block.Launch.Params[i], nil
	case SpaceTexture:
		// Textures are read-only views of global memory.
		return env.Global.Read32(addr), nil
	}
	return 0, fmt.Errorf("kernel: load from space %v", space)
}

func (w *Warp) store(space Space, addr, v uint32, env *Env) error {
	switch space {
	case SpaceGlobal:
		env.Global.Write32(addr, v)
		return nil
	case SpaceShared:
		i := int(addr / 4)
		if i >= len(env.Block.Shared) {
			return fmt.Errorf("kernel: shared store at %d beyond %d bytes", addr, 4*len(env.Block.Shared))
		}
		env.Block.Shared[i] = v
		return nil
	}
	return fmt.Errorf("kernel: store to space %v", space)
}

func boolTo32(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

func cmpI(c Cmp, a, b int32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}

func cmpF(c Cmp, a, b float32) bool {
	switch c {
	case CmpEQ:
		return a == b
	case CmpNE:
		return a != b
	case CmpLT:
		return a < b
	case CmpLE:
		return a <= b
	case CmpGT:
		return a > b
	case CmpGE:
		return a >= b
	}
	return false
}
