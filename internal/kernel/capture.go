package kernel

// Deferred global-memory execution.
//
// When the cycle-level simulator steps cores on parallel workers, the one
// piece of functional state cores share is GlobalMem: two cores touching
// global memory in the same cycle must apply their loads, stores and
// atomics in the sequential loop's order (ascending core id, issue order
// within a core) or results drift — and GlobalMem's grow-on-write slice is
// not safe to touch concurrently in the first place. Attaching a
// GlobalCapture to an Env makes Exec record those operations instead of
// performing them; the simulator replays each worker's capture at the
// cycle barrier in core-id order, reproducing the sequential interleaving
// bit for bit. The deferral is invisible to the machine model: a loaded
// value lands in its destination register at the barrier, and the
// scoreboard (or the blocking-warp rule) keeps the owning warp from
// issuing a dependent instruction until the memory writeback event fires
// cycles later, so no one can observe the window. Local state — shared
// memory, constants, parameters, registers of other instructions — is
// core-private and executes immediately as always.

// capKind discriminates captured operations.
type capKind uint8

const (
	capLoad capKind = iota
	capStore
	capAtomAdd
)

// CapturedOp is one deferred global-memory operation.
type CapturedOp struct {
	kind capKind
	addr uint32
	// val is the stored value (capStore) or the addend (capAtomAdd).
	val uint32
	// regs/regIdx locate the destination register for the loaded or
	// pre-atomic value; regs is nil when the instruction has no
	// destination.
	regs   []uint32
	regIdx int32
}

// GlobalCapture accumulates deferred global-memory operations in execution
// order. The zero value is ready to use; Reset recycles the backing array
// across cycles.
type GlobalCapture struct {
	Ops []CapturedOp
}

// Reset empties the capture, keeping capacity.
func (gc *GlobalCapture) Reset() { gc.Ops = gc.Ops[:0] }

// Len returns the number of captured operations; the simulator brackets
// each instruction's operations with [before, after) Len calls.
func (gc *GlobalCapture) Len() int { return len(gc.Ops) }

// Replay applies operations [start, end) to g in recorded order.
func (gc *GlobalCapture) Replay(g *GlobalMem, start, end int) {
	for i := start; i < end; i++ {
		op := &gc.Ops[i]
		switch op.kind {
		case capLoad:
			v := g.Read32(op.addr)
			if op.regs != nil {
				op.regs[op.regIdx] = v
			}
		case capStore:
			g.Write32(op.addr, op.val)
		case capAtomAdd:
			old := g.Read32(op.addr)
			g.Write32(op.addr, old+op.val)
			if op.regs != nil {
				op.regs[op.regIdx] = old
			}
		}
	}
}

// captureLoad records a deferred global/texture load into register row
// offset dstOff (flat Regs index), lane l; dstOff < 0 drops the value.
func (gc *GlobalCapture) captureLoad(w *Warp, dstOff int32, l int, addr uint32) {
	op := CapturedOp{kind: capLoad, addr: addr, regIdx: -1}
	if dstOff >= 0 {
		op.regs, op.regIdx = w.Regs, dstOff+int32(l)
	}
	gc.Ops = append(gc.Ops, op)
}

// captureStore records a deferred global store.
func (gc *GlobalCapture) captureStore(addr, v uint32) {
	gc.Ops = append(gc.Ops, CapturedOp{kind: capStore, addr: addr, val: v})
}

// captureAtomAdd records a deferred global atomic add returning the old
// value into dstOff (flat Regs index), lane l; dstOff < 0 drops it.
func (gc *GlobalCapture) captureAtomAdd(w *Warp, dstOff int32, l int, addr, addend uint32) {
	op := CapturedOp{kind: capAtomAdd, addr: addr, val: addend, regIdx: -1}
	if dstOff >= 0 {
		op.regs, op.regIdx = w.Regs, dstOff+int32(l)
	}
	gc.Ops = append(gc.Ops, op)
}
