// Package kernel defines the compact SIMT instruction set that GPGPU
// workloads are written in, together with a builder for assembling programs
// and the functional (lane-level) execution machinery shared by the
// functional interpreter and the cycle-level simulator.
//
// The ISA is a PTX-like register machine: each thread owns a set of 32-bit
// general registers; warps of 32 threads execute in lock step under an
// active mask maintained by a stack-based reconvergence mechanism (per the
// NVIDIA patent the paper cites). Instructions carry an optional predicate
// register, and branches carry an explicit reconvergence point (the
// immediate post-dominator, supplied by the program author through the
// builder's label mechanism).
package kernel

import (
	"fmt"
	"sync"
)

// WarpSize is the number of threads per warp. Both modeled GPUs use 32.
const WarpSize = 32

// FullMask is the active mask with all lanes enabled.
const FullMask uint32 = 0xFFFFFFFF

// Op enumerates instruction opcodes.
type Op uint8

const (
	OpNop Op = iota

	// Integer ALU (32-bit, wrapping).
	OpIAdd // d = a + b
	OpISub // d = a - b
	OpIMul // d = a * b (low 32 bits)
	OpIMad // d = a*b + c
	OpIMin // d = min(a, b) signed
	OpIMax // d = max(a, b) signed
	OpIAnd // d = a & b
	OpIOr  // d = a | b
	OpIXor // d = a ^ b
	OpINot // d = ^a
	OpIShl // d = a << (b & 31)
	OpIShr // d = a >> (b & 31) logical
	OpISra // d = a >> (b & 31) arithmetic
	OpISet // d = (a CMP b) ? 1 : 0, signed compare
	OpISel // d = (a != 0) ? b : c
	OpMov  // d = a

	// Floating point (IEEE binary32 carried in the 32-bit registers).
	OpFAdd // d = a + b
	OpFSub // d = a - b
	OpFMul // d = a * b
	OpFFma // d = a*b + c
	OpFMin // d = min(a, b)
	OpFMax // d = max(a, b)
	OpFNeg // d = -a
	OpFAbs // d = |a|
	OpFSet // d = (a CMP b) ? 1 : 0, float compare
	OpI2F  // d = float(int(a))
	OpF2I  // d = int(trunc(float(a)))

	// Special function unit (transcendentals).
	OpRcp  // d = 1/a
	OpRsq  // d = 1/sqrt(a)
	OpSqrt // d = sqrt(a)
	OpSin  // d = sin(a)
	OpCos  // d = cos(a)
	OpEx2  // d = 2^a
	OpLg2  // d = log2(a)

	// Memory. Address = value(Src[0]) + Offset. Ld: d = [addr]; St: [addr] = value(Src[1]).
	OpLd
	OpSt
	OpAtomAdd // d = old [addr]; [addr] += value(Src[1]); global space only

	// Control.
	OpBra  // divergence-aware branch: lanes with true predicate go to Target
	OpBar  // block-wide barrier
	OpExit // thread termination
)

var opNames = map[Op]string{
	OpNop: "nop", OpIAdd: "iadd", OpISub: "isub", OpIMul: "imul", OpIMad: "imad",
	OpIMin: "imin", OpIMax: "imax", OpIAnd: "iand", OpIOr: "ior", OpIXor: "ixor",
	OpINot: "inot", OpIShl: "ishl", OpIShr: "ishr", OpISra: "isra", OpISet: "iset",
	OpISel: "isel", OpMov: "mov",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFFma: "ffma", OpFMin: "fmin",
	OpFMax: "fmax", OpFNeg: "fneg", OpFAbs: "fabs", OpFSet: "fset", OpI2F: "i2f", OpF2I: "f2i",
	OpRcp: "rcp", OpRsq: "rsq", OpSqrt: "sqrt", OpSin: "sin", OpCos: "cos", OpEx2: "ex2", OpLg2: "lg2",
	OpLd: "ld", OpSt: "st", OpAtomAdd: "atom.add",
	OpBra: "bra", OpBar: "bar.sync", OpExit: "exit",
}

func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Class is the functional-unit class of an opcode; the simulator uses it to
// route instructions to pipelines and the power model to select energies.
type Class uint8

const (
	ClassInt Class = iota
	ClassFP
	ClassSFU
	ClassMem
	ClassCtrl
)

func (c Class) String() string {
	switch c {
	case ClassInt:
		return "INT"
	case ClassFP:
		return "FP"
	case ClassSFU:
		return "SFU"
	case ClassMem:
		return "MEM"
	case ClassCtrl:
		return "CTRL"
	}
	return "?"
}

// ClassOf returns the functional-unit class of an opcode.
func ClassOf(op Op) Class {
	switch op {
	case OpIAdd, OpISub, OpIMul, OpIMad, OpIMin, OpIMax, OpIAnd, OpIOr, OpIXor,
		OpINot, OpIShl, OpIShr, OpISra, OpISet, OpISel, OpMov:
		return ClassInt
	case OpFAdd, OpFSub, OpFMul, OpFFma, OpFMin, OpFMax, OpFNeg, OpFAbs, OpFSet, OpI2F, OpF2I:
		return ClassFP
	case OpRcp, OpRsq, OpSqrt, OpSin, OpCos, OpEx2, OpLg2:
		return ClassSFU
	case OpLd, OpSt, OpAtomAdd:
		return ClassMem
	default:
		return ClassCtrl
	}
}

// Space selects the memory segment of a Ld/St.
type Space uint8

const (
	SpaceGlobal Space = iota
	SpaceShared
	SpaceConst // read-only constant segment (cached)
	SpaceParam // kernel parameter bank (serviced by the constant cache)
	// SpaceTexture reads global memory through the texture cache: the
	// read-only, spatially-cached path the paper defers to "a future
	// variant of the model".
	SpaceTexture
)

func (s Space) String() string {
	switch s {
	case SpaceGlobal:
		return "global"
	case SpaceShared:
		return "shared"
	case SpaceConst:
		return "const"
	case SpaceParam:
		return "param"
	case SpaceTexture:
		return "texture"
	}
	return "?"
}

// Cmp is a comparison operator for ISet / FSet.
type Cmp uint8

const (
	CmpEQ Cmp = iota
	CmpNE
	CmpLT
	CmpLE
	CmpGT
	CmpGE
)

func (c Cmp) String() string {
	return [...]string{"eq", "ne", "lt", "le", "gt", "ge"}[c]
}

// Special enumerates read-only per-thread identification registers.
type Special uint8

const (
	SpecTidX Special = iota
	SpecTidY
	SpecNTidX
	SpecNTidY
	SpecCtaX
	SpecCtaY
	SpecNCtaX
	SpecNCtaY
	SpecLane
	SpecWarpInBlock
)

// OperandKind tags an Operand.
type OperandKind uint8

const (
	KindNone OperandKind = iota
	KindReg
	KindImm
	KindSpecial
)

// Operand is a source operand: a register, 32-bit immediate, or special register.
type Operand struct {
	Kind    OperandKind
	Reg     uint8
	Imm     uint32
	Special Special
}

// R makes a register operand.
func R(i int) Operand { return Operand{Kind: KindReg, Reg: uint8(i)} }

// I makes an integer immediate operand.
func I(v int32) Operand { return Operand{Kind: KindImm, Imm: uint32(v)} }

// U makes an unsigned immediate operand.
func U(v uint32) Operand { return Operand{Kind: KindImm, Imm: v} }

// F makes a float32 immediate operand.
func F(v float32) Operand { return Operand{Kind: KindImm, Imm: f2b(v)} }

// S makes a special-register operand.
func S(s Special) Operand { return Operand{Kind: KindSpecial, Special: s} }

// NoPred marks an instruction as unpredicated.
const NoPred int16 = -1

// Instr is one machine instruction.
type Instr struct {
	Op      Op
	Dst     uint8
	HasDst  bool
	Src     [3]Operand
	NumSrc  int
	Pred    int16 // register index holding the predicate, or NoPred
	PredNeg bool  // execute when predicate is zero instead
	Cmp     Cmp   // for ISet/FSet
	Space   Space // for Ld/St/AtomAdd
	Offset  int32 // byte offset added to the address register
	Target  int   // branch target PC (resolved by the builder)
	Reconv  int   // reconvergence PC for divergent branches
}

// SrcRegs appends the general registers read by the instruction to dst and
// returns it (used by the scoreboard and the register-file activity model).
func (in *Instr) SrcRegs(dst []uint8) []uint8 {
	for i := 0; i < in.NumSrc; i++ {
		if in.Src[i].Kind == KindReg {
			dst = append(dst, in.Src[i].Reg)
		}
	}
	if in.Pred != NoPred {
		dst = append(dst, uint8(in.Pred))
	}
	return dst
}

// Program is an assembled kernel.
type Program struct {
	Name string
	// Instrs is the instruction stream; PCs index into it.
	Instrs []Instr
	// NumRegs is the number of general registers each thread uses.
	NumRegs int
	// SMemBytes is the static shared-memory allocation per block.
	SMemBytes int
	// NumParams is the number of 32-bit kernel parameters expected.
	NumParams int

	// decodeOnce guards the lazy build of dec; see Decoded in decode.go.
	// Programs are assembled once by the builder and shared by pointer, so
	// the latch also makes concurrent first executions race-free.
	decodeOnce sync.Once
	dec        []DInstr
}

// Validate checks structural well-formedness of the program.
func (p *Program) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("kernel: program without name")
	}
	if len(p.Instrs) == 0 {
		return fmt.Errorf("kernel %s: empty program", p.Name)
	}
	if p.NumRegs <= 0 || p.NumRegs > 256 {
		return fmt.Errorf("kernel %s: NumRegs %d outside (0,256]", p.Name, p.NumRegs)
	}
	sawExit := false
	for pc, in := range p.Instrs {
		if in.HasDst && int(in.Dst) >= p.NumRegs {
			return fmt.Errorf("kernel %s: pc %d writes r%d >= NumRegs %d", p.Name, pc, in.Dst, p.NumRegs)
		}
		for i := 0; i < in.NumSrc; i++ {
			if in.Src[i].Kind == KindReg && int(in.Src[i].Reg) >= p.NumRegs {
				return fmt.Errorf("kernel %s: pc %d reads r%d >= NumRegs %d", p.Name, pc, in.Src[i].Reg, p.NumRegs)
			}
		}
		if in.Pred != NoPred && int(in.Pred) >= p.NumRegs {
			return fmt.Errorf("kernel %s: pc %d predicated on r%d >= NumRegs %d", p.Name, pc, in.Pred, p.NumRegs)
		}
		if in.Op == OpBra {
			if in.Target < 0 || in.Target > len(p.Instrs) {
				return fmt.Errorf("kernel %s: pc %d branch target %d out of range", p.Name, pc, in.Target)
			}
			if in.Reconv < 0 || in.Reconv > len(p.Instrs) {
				return fmt.Errorf("kernel %s: pc %d reconvergence %d out of range", p.Name, pc, in.Reconv)
			}
		}
		if in.Op == OpExit {
			sawExit = true
		}
	}
	if !sawExit {
		return fmt.Errorf("kernel %s: no exit instruction", p.Name)
	}
	return nil
}

// Dim is a 2-D extent (threads per block or blocks per grid).
type Dim struct{ X, Y int }

// Count returns X*Y.
func (d Dim) Count() int { return d.X * d.Y }

// Launch describes one kernel invocation.
type Launch struct {
	Prog *Program
	// Grid and Block extents.
	Grid, Block Dim
	// Params are the 32-bit kernel arguments (pointers are global addresses).
	Params []uint32
	// DynSMemBytes is extra dynamic shared memory per block.
	DynSMemBytes int
}

// Validate checks the launch against the program.
func (l *Launch) Validate() error {
	if l.Prog == nil {
		return fmt.Errorf("kernel: launch without program")
	}
	if err := l.Prog.Validate(); err != nil {
		return err
	}
	if l.Grid.X <= 0 || l.Grid.Y <= 0 || l.Block.X <= 0 || l.Block.Y <= 0 {
		return fmt.Errorf("kernel %s: non-positive launch dimensions %+v %+v", l.Prog.Name, l.Grid, l.Block)
	}
	if l.Block.Count() > 1024 {
		return fmt.Errorf("kernel %s: block of %d threads exceeds 1024", l.Prog.Name, l.Block.Count())
	}
	if len(l.Params) != l.Prog.NumParams {
		return fmt.Errorf("kernel %s: got %d params, program expects %d", l.Prog.Name, len(l.Params), l.Prog.NumParams)
	}
	return nil
}

// ThreadsPerBlock returns the block size in threads.
func (l *Launch) ThreadsPerBlock() int { return l.Block.Count() }

// WarpsPerBlock returns the number of warps per block (rounded up).
func (l *Launch) WarpsPerBlock() int {
	return (l.Block.Count() + WarpSize - 1) / WarpSize
}

// SMemBytes returns the total per-block shared memory demand.
func (l *Launch) SMemBytes() int { return l.Prog.SMemBytes + l.DynSMemBytes }
