package kernel

import (
	"fmt"
	"math"
	"math/bits"
)

// Specialized data-path executor.
//
// execDataFast is execData for the common case the decoder marked fast:
// every operand is a register row or an immediate. The generic path calls
// Warp.operand per source per lane — an OperandKind switch plus an index
// multiply, millions of times per simulation; here the decoded table's
// flat row offsets let each source resolve to a slice header once per
// instruction, so the per-lane work collapses to indexed loads. Semantics
// are bit-identical to execData by construction: the same lane order
// (ascending set bits, so AtomAdd's lane ordering is preserved), the same
// arithmetic, the same error text, the same capture behavior.

// pickOperand reads source lane l from a resolved operand: the register
// row when non-nil, the immediate otherwise. Small enough to inline.
func pickOperand(row []uint32, imm uint32, l int) uint32 {
	if row != nil {
		return row[l]
	}
	return imm
}

// srcRow resolves decoded source i to a register-row slice (nil for
// immediates).
func (w *Warp) srcRow(d *DInstr, i int) []uint32 {
	if off := d.srcOff[i]; off >= 0 {
		return w.Regs[off : off+WarpSize]
	}
	return nil
}

// execDataFast executes a decoded-fast non-control instruction for all
// lanes in execMask.
func (w *Warp) execDataFast(in *Instr, d *DInstr, execMask uint32, env *Env, info *StepInfo) error {
	aRow := w.srcRow(d, 0)
	bRow := w.srcRow(d, 1)
	cRow := w.srcRow(d, 2)
	aImm, bImm, cImm := d.srcImm[0], d.srcImm[1], d.srcImm[2]
	var dRow []uint32
	if d.dstOff >= 0 {
		dRow = w.Regs[d.dstOff : d.dstOff+WarpSize]
	}

	for rem := execMask; rem != 0; rem &= rem - 1 {
		l := bits.TrailingZeros32(rem)
		a := pickOperand(aRow, aImm, l)

		var v uint32
		switch in.Op {
		case OpNop:
			continue
		case OpMov:
			v = a
		case OpIAdd:
			v = a + pickOperand(bRow, bImm, l)
		case OpISub:
			v = a - pickOperand(bRow, bImm, l)
		case OpIMul:
			v = a * pickOperand(bRow, bImm, l)
		case OpIMad:
			v = a*pickOperand(bRow, bImm, l) + pickOperand(cRow, cImm, l)
		case OpIMin:
			b := pickOperand(bRow, bImm, l)
			if int32(a) < int32(b) {
				v = a
			} else {
				v = b
			}
		case OpIMax:
			b := pickOperand(bRow, bImm, l)
			if int32(a) > int32(b) {
				v = a
			} else {
				v = b
			}
		case OpIAnd:
			v = a & pickOperand(bRow, bImm, l)
		case OpIOr:
			v = a | pickOperand(bRow, bImm, l)
		case OpIXor:
			v = a ^ pickOperand(bRow, bImm, l)
		case OpINot:
			v = ^a
		case OpIShl:
			v = a << (pickOperand(bRow, bImm, l) & 31)
		case OpIShr:
			v = a >> (pickOperand(bRow, bImm, l) & 31)
		case OpISra:
			v = uint32(int32(a) >> (pickOperand(bRow, bImm, l) & 31))
		case OpISet:
			v = boolTo32(cmpI(in.Cmp, int32(a), int32(pickOperand(bRow, bImm, l))))
		case OpISel:
			if a != 0 {
				v = pickOperand(bRow, bImm, l)
			} else {
				v = pickOperand(cRow, cImm, l)
			}
		case OpFAdd:
			v = f2b(b2f(a) + b2f(pickOperand(bRow, bImm, l)))
		case OpFSub:
			v = f2b(b2f(a) - b2f(pickOperand(bRow, bImm, l)))
		case OpFMul:
			v = f2b(b2f(a) * b2f(pickOperand(bRow, bImm, l)))
		case OpFFma:
			v = f2b(float32(float64(b2f(a))*float64(b2f(pickOperand(bRow, bImm, l))) + float64(b2f(pickOperand(cRow, cImm, l)))))
		case OpFMin:
			v = f2b(float32(math.Min(float64(b2f(a)), float64(b2f(pickOperand(bRow, bImm, l))))))
		case OpFMax:
			v = f2b(float32(math.Max(float64(b2f(a)), float64(b2f(pickOperand(bRow, bImm, l))))))
		case OpFNeg:
			v = f2b(-b2f(a))
		case OpFAbs:
			v = f2b(float32(math.Abs(float64(b2f(a)))))
		case OpFSet:
			v = boolTo32(cmpF(in.Cmp, b2f(a), b2f(pickOperand(bRow, bImm, l))))
		case OpI2F:
			v = f2b(float32(int32(a)))
		case OpF2I:
			v = uint32(int32(b2f(a)))
		case OpRcp:
			v = f2b(1 / b2f(a))
		case OpRsq:
			v = f2b(float32(1 / math.Sqrt(float64(b2f(a)))))
		case OpSqrt:
			v = f2b(float32(math.Sqrt(float64(b2f(a)))))
		case OpSin:
			v = f2b(float32(math.Sin(float64(b2f(a)))))
		case OpCos:
			v = f2b(float32(math.Cos(float64(b2f(a)))))
		case OpEx2:
			v = f2b(float32(math.Exp2(float64(b2f(a)))))
		case OpLg2:
			v = f2b(float32(math.Log2(float64(b2f(a)))))
		case OpLd, OpSt, OpAtomAdd:
			addr := a + uint32(in.Offset)
			info.Addrs[l] = addr
			switch in.Op {
			case OpLd:
				if gc := env.Capture; gc != nil && (in.Space == SpaceGlobal || in.Space == SpaceTexture) {
					gc.captureLoad(w, d.dstOff, l, addr)
					continue
				}
				lv, err := w.load(in.Space, addr, env)
				if err != nil {
					return err
				}
				v = lv
			case OpSt:
				b := pickOperand(bRow, bImm, l)
				if gc := env.Capture; gc != nil && in.Space == SpaceGlobal {
					gc.captureStore(addr, b)
					continue
				}
				if err := w.store(in.Space, addr, b, env); err != nil {
					return err
				}
				continue
			case OpAtomAdd:
				b := pickOperand(bRow, bImm, l)
				if gc := env.Capture; gc != nil {
					gc.captureAtomAdd(w, d.dstOff, l, addr, b)
					continue
				}
				old := env.Global.Read32(addr)
				env.Global.Write32(addr, old+b)
				v = old
			}
		default:
			return fmt.Errorf("kernel: unimplemented op %v", in.Op)
		}
		if dRow != nil {
			dRow[l] = v
		}
	}
	return nil
}
