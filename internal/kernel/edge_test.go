package kernel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNestedDivergence(t *testing.T) {
	// Two nested if/else levels: each lane takes one of four paths selected
	// by its low two bits; out[tid] = 10*outer + inner.
	b := NewBuilder("nested", 10).Params(1)
	b.SReg(0, SpecTidX)
	b.IAnd(1, R(0), I(1)) // inner selector
	b.IAnd(2, R(0), I(2)) // outer selector
	b.When(2).Bra("outer1", "join")
	// outer == 0
	b.MovI(3, 0)
	b.When(1).Bra("o0i1", "innerjoin0")
	b.MovI(4, 0)
	b.BraUni("innerjoin0")
	b.Label("o0i1")
	b.MovI(4, 1)
	b.Label("innerjoin0")
	b.BraUni("join")
	b.Label("outer1")
	b.MovI(3, 1)
	b.When(1).Bra("o1i1", "innerjoin1")
	b.MovI(4, 0)
	b.BraUni("innerjoin1")
	b.Label("o1i1")
	b.MovI(4, 1)
	b.Label("innerjoin1")
	b.Label("join")
	b.IMul(5, R(3), I(10))
	b.IAdd(5, R(5), R(4))
	b.LdParam(6, 0)
	b.IShl(7, R(0), I(2))
	b.IAdd(6, R(6), R(7))
	b.St(SpaceGlobal, R(6), R(5), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(32 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	st, err := Interp(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxStackDepth < 3 {
		t.Errorf("nested divergence should deepen the stack, got %d", st.MaxStackDepth)
	}
	vals := mem.ReadI32Slice(out, 32)
	for i, v := range vals {
		inner := int32(i & 1)
		outer := int32(0)
		if i&2 != 0 {
			outer = 1
		}
		if want := outer*10 + inner; v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestPredicatedStore(t *testing.T) {
	// Only even lanes store; odd entries must keep their initial value.
	b := NewBuilder("predst", 8).Params(1)
	b.SReg(0, SpecTidX)
	b.IAnd(1, R(0), I(1))
	b.ISet(1, CmpEQ, R(1), I(0)) // even -> 1
	b.LdParam(2, 0)
	b.IShl(3, R(0), I(2))
	b.IAdd(2, R(2), R(3))
	b.MovI(4, 999)
	b.When(1).St(SpaceGlobal, R(2), R(4), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	init := make([]int32, 32)
	for i := range init {
		init[i] = -1
	}
	out := mem.AllocI32(init)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	if _, err := Interp(l, mem, nil); err != nil {
		t.Fatal(err)
	}
	got := mem.ReadI32Slice(out, 32)
	for i, v := range got {
		want := int32(-1)
		if i%2 == 0 {
			want = 999
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestTwoDimensionalGrid(t *testing.T) {
	// 2D blocks and grids: out[gy*W + gx] = gy*1000 + gx using tid.y/ctaid.y.
	const bx, by, gx, gy = 8, 4, 3, 2
	const W = bx * gx
	b := NewBuilder("grid2d", 12).Params(1)
	b.SReg(0, SpecTidX)
	b.SReg(1, SpecTidY)
	b.SReg(2, SpecCtaX)
	b.SReg(3, SpecCtaY)
	// global x = ctaX*bx + tidX; global y = ctaY*by + tidY
	b.IMad(4, R(2), I(bx), R(0))
	b.IMad(5, R(3), I(by), R(1))
	b.IMul(6, R(5), I(1000))
	b.IAdd(6, R(6), R(4))
	b.IMul(7, R(5), I(W))
	b.IAdd(7, R(7), R(4))
	b.IShl(7, R(7), I(2))
	b.LdParam(8, 0)
	b.IAdd(8, R(8), R(7))
	b.St(SpaceGlobal, R(8), R(6), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(W * by * gy * 4)
	l := &Launch{Prog: p, Grid: Dim{gx, gy}, Block: Dim{bx, by}, Params: []uint32{out}}
	if _, err := Interp(l, mem, nil); err != nil {
		t.Fatal(err)
	}
	for y := 0; y < by*gy; y++ {
		for x := 0; x < W; x++ {
			got := int32(mem.Read32(out + uint32(4*(y*W+x))))
			if want := int32(y*1000 + x); got != want {
				t.Fatalf("out[%d][%d] = %d, want %d", y, x, got, want)
			}
		}
	}
}

func TestFloatEdgeCases(t *testing.T) {
	b := NewBuilder("fedge", 10).Params(1)
	b.SReg(0, SpecLane)
	// r1 = -0.0 through FNeg(0); FAbs must clear the sign.
	b.MovF(1, 0)
	b.FNeg(1, R(1))
	b.FAbs(2, R(1))
	// FMin/FMax with mixed signs.
	b.FMin(3, F(-2), F(3))
	b.FMax(4, F(-2), F(3))
	// F2I truncation toward zero of negative value.
	b.MovF(5, -2.75)
	b.F2I(5, R(5))
	b.LdParam(6, 0)
	b.IShl(7, R(0), I(2))
	b.IMul(7, R(7), I(4)) // each lane writes 4 slots apart
	b.IAdd(6, R(6), R(7))
	b.St(SpaceGlobal, R(6), R(2), 0)
	b.St(SpaceGlobal, R(6), R(3), 4)
	b.St(SpaceGlobal, R(6), R(4), 8)
	b.St(SpaceGlobal, R(6), R(5), 12)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(32 * 16)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{out}}
	if _, err := Interp(l, mem, nil); err != nil {
		t.Fatal(err)
	}
	if v := mem.ReadF32(out); v != 0 || math.Signbit(float64(v)) {
		t.Errorf("|−0.0| = %v (signbit %v), want +0", v, math.Signbit(float64(v)))
	}
	if v := mem.ReadF32(out + 4); v != -2 {
		t.Errorf("fmin(-2,3) = %v", v)
	}
	if v := mem.ReadF32(out + 8); v != 3 {
		t.Errorf("fmax(-2,3) = %v", v)
	}
	if v := int32(mem.Read32(out + 12)); v != -2 {
		t.Errorf("f2i(-2.75) = %d, want -2 (truncate toward zero)", v)
	}
}

func TestIntOpsPropertyQuick(t *testing.T) {
	// Property: IMad matches Go arithmetic for arbitrary inputs (wrapping).
	b := NewBuilder("imadq", 8).Params(4)
	b.LdParam(0, 0)
	b.LdParam(1, 1)
	b.LdParam(2, 2)
	b.IMad(3, R(0), R(1), R(2))
	b.LdParam(4, 3)
	b.St(SpaceGlobal, R(4), R(3), 0)
	b.Exit()
	p := b.MustBuild()
	f := func(x, y, z uint32) bool {
		mem := NewGlobalMem()
		out := mem.Alloc(4)
		l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1},
			Params: []uint32{x, y, z, out}}
		if _, err := Interp(l, mem, nil); err != nil {
			return false
		}
		return mem.Read32(out) == x*y+z
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBarrierWithPartialWarpAndEarlyExit(t *testing.T) {
	// 48 threads (1.5 warps): half the threads of warp 0 exit before the
	// barrier; the rest must still synchronise and complete.
	b := NewBuilder("barexit", 8).Params(1).SMem(256)
	b.SReg(0, SpecTidX)
	b.ISet(1, CmpLT, R(0), I(16))
	b.When(1).Exit() // first 16 threads leave
	b.IShl(2, R(0), I(2))
	b.St(SpaceShared, R(2), R(0), 0)
	b.Bar()
	b.Ld(SpaceShared, 3, R(2), 0)
	b.LdParam(4, 0)
	b.IAdd(4, R(4), R(2))
	b.St(SpaceGlobal, R(4), R(3), 0)
	b.Exit()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	mem := NewGlobalMem()
	out := mem.Alloc(64 * 4)
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{48, 1}, Params: []uint32{out}}
	if _, err := Interp(l, mem, nil); err != nil {
		t.Fatal(err)
	}
	for i := 16; i < 48; i++ {
		if got := int32(mem.Read32(out + uint32(4*i))); got != int32(i) {
			t.Fatalf("out[%d] = %d, want %d", i, got, i)
		}
	}
}
