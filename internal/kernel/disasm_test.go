package kernel

import (
	"strings"
	"testing"
)

func TestDisassembleProgram(t *testing.T) {
	b := NewBuilder("demo", 8).Params(1)
	b.SReg(0, SpecTidX)
	b.MovI(1, 42)
	b.IAdd(2, R(0), R(1))
	b.ISet(3, CmpLT, R(2), I(100))
	b.When(3).Bra("skip", "skip")
	b.FMul(4, R(2), F(2.5))
	b.Label("skip")
	b.Ld(SpaceGlobal, 5, R(2), 8)
	b.St(SpaceShared, R(2), R(5), -4)
	b.AtomAdd(6, R(2), I(1), 0)
	b.Bar()
	b.Exit()
	p := b.MustBuild()

	asm := p.Disassemble()
	for _, want := range []string{
		"kernel demo",
		"mov r0, %tid.x",
		"mov r1, 42",
		"iadd r2, r0, r1",
		"iset.lt r3, r2, 100",
		"@r3 bra",
		"ld.global r5, [r2+8]",
		"st.shared [r2-4], r5",
		"atom.add.global r6, [r2+0], 1",
		"bar.sync",
		"exit",
		"L: ",
	} {
		if !strings.Contains(asm, want) {
			t.Errorf("disassembly missing %q\n%s", want, asm)
		}
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{R(7), "r7"},
		{I(-3), "-3"},
		{I(100), "100"},
		{U(0xDEADBEEF), "0xdeadbeef"},
		{S(SpecCtaX), "%ctaid.x"},
		{S(SpecLane), "%laneid"},
		{Operand{}, "?"},
	}
	for _, c := range cases {
		if got := c.op.String(); got != c.want {
			t.Errorf("%+v: got %q, want %q", c.op, got, c.want)
		}
	}
}

func TestPredicatedNegatedDisasm(t *testing.T) {
	b := NewBuilder("p", 4)
	b.MovI(0, 1)
	b.Unless(0).Exit()
	b.Exit()
	p := b.MustBuild()
	if !strings.Contains(p.Disassemble(), "@!r0 exit") {
		t.Errorf("negated predicate not rendered:\n%s", p.Disassemble())
	}
}

func TestEveryBenchKernelDisassembles(t *testing.T) {
	// Smoke: String must not panic for any op in a realistic program.
	b := NewBuilder("all", 16).Params(1)
	b.SReg(0, SpecTidY)
	b.IMad(1, R(0), I(3), R(0))
	b.IMin(2, R(1), I(7))
	b.IMax(3, R(1), I(7))
	b.IAnd(4, R(1), R(2))
	b.IOr(5, R(3), R(4))
	b.IXor(6, R(5), I(0xF))
	b.INot(7, R(6))
	b.IShl(8, R(7), I(2))
	b.IShr(9, R(8), I(1))
	b.ISra(10, R(9), I(1))
	b.ISel(11, R(10), R(9), R(8))
	b.I2F(12, R(11))
	b.FSub(12, R(12), F(1))
	b.FFma(12, R(12), F(2), F(3))
	b.FMin(12, R(12), F(10))
	b.FMax(12, R(12), F(-10))
	b.FNeg(13, R(12))
	b.FAbs(13, R(13))
	b.FSet(14, CmpGE, R(13), F(0))
	b.F2I(14, R(13))
	b.Rcp(13, R(12))
	b.Rsq(13, R(13))
	b.Sqrt(13, R(13))
	b.Sin(13, R(13))
	b.Cos(13, R(13))
	b.Ex2(13, R(13))
	b.Lg2(13, R(13))
	b.Nop()
	b.Exit()
	p := b.MustBuild()
	asm := p.Disassemble()
	if len(strings.Split(asm, "\n")) < 25 {
		t.Error("disassembly suspiciously short")
	}
}
