package kernel

import (
	"fmt"
	"math"
)

// GlobalMem is the device global-memory image: a flat 32-bit byte-address
// space accessed in aligned 32-bit words. The host side of a benchmark
// allocates buffers, fills inputs and reads back results; the device side
// accesses it through Ld/St instructions.
type GlobalMem struct {
	words []uint32
	next  uint32
}

// NewGlobalMem returns an empty memory. The zero address is left unmapped so
// that address 0 can serve as a null pointer.
func NewGlobalMem() *GlobalMem {
	return &GlobalMem{next: 256}
}

// Alloc reserves n bytes and returns the base address (256-byte aligned,
// mirroring cudaMalloc alignment).
func (m *GlobalMem) Alloc(n int) uint32 {
	if n < 0 {
		panic("kernel: negative allocation")
	}
	base := m.next
	m.next += uint32((n + 255) &^ 255)
	if need := int(m.next+3) / 4; need > len(m.words) {
		grown := make([]uint32, need+need/2)
		copy(grown, m.words)
		m.words = grown
	}
	return base
}

// Size returns the high-water byte size of the allocated space.
func (m *GlobalMem) Size() int { return int(m.next) }

func (m *GlobalMem) idx(addr uint32) int {
	i := int(addr / 4)
	if i >= len(m.words) {
		// Writes beyond the allocated space grow the image; hardware would
		// fault, but benchmarks under test deserve a usable zero rather
		// than a crash, and the functional tests verify addresses anyway.
		grown := make([]uint32, i+i/2+4)
		copy(grown, m.words)
		m.words = grown
	}
	return i
}

// Read32 loads the aligned 32-bit word containing addr. Reads beyond the
// image are side-effect-free and return zero, like an unmapped page; only
// writes grow the image. (A read that grew the image would perturb its size
// — and therefore its content hash, which the simulation-result cache keys
// timing results by.)
func (m *GlobalMem) Read32(addr uint32) uint32 {
	if i := int(addr / 4); i < len(m.words) {
		return m.words[i]
	}
	return 0
}

// Write32 stores v to the aligned 32-bit word containing addr.
func (m *GlobalMem) Write32(addr uint32, v uint32) { m.words[m.idx(addr)] = v }

// ReadF32 loads a float32.
func (m *GlobalMem) ReadF32(addr uint32) float32 { return b2f(m.Read32(addr)) }

// WriteF32 stores a float32.
func (m *GlobalMem) WriteF32(addr uint32, v float32) { m.Write32(addr, f2b(v)) }

// WriteI32Slice bulk-writes int32 values starting at addr.
func (m *GlobalMem) WriteI32Slice(addr uint32, vs []int32) {
	for i, v := range vs {
		m.Write32(addr+uint32(4*i), uint32(v))
	}
}

// ReadI32Slice bulk-reads n int32 values starting at addr.
func (m *GlobalMem) ReadI32Slice(addr uint32, n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(m.Read32(addr + uint32(4*i)))
	}
	return out
}

// WriteF32Slice bulk-writes float32 values starting at addr.
func (m *GlobalMem) WriteF32Slice(addr uint32, vs []float32) {
	for i, v := range vs {
		m.WriteF32(addr+uint32(4*i), v)
	}
}

// ReadF32Slice bulk-reads n float32 values starting at addr.
func (m *GlobalMem) ReadF32Slice(addr uint32, n int) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = m.ReadF32(addr + uint32(4*i))
	}
	return out
}

// AllocF32 allocates and initialises a float32 buffer, returning its address.
func (m *GlobalMem) AllocF32(vs []float32) uint32 {
	a := m.Alloc(4 * len(vs))
	m.WriteF32Slice(a, vs)
	return a
}

// AllocI32 allocates and initialises an int32 buffer, returning its address.
func (m *GlobalMem) AllocI32(vs []int32) uint32 {
	a := m.Alloc(4 * len(vs))
	m.WriteI32Slice(a, vs)
	return a
}

// AllocZeroF32 allocates an n-element zeroed float32 buffer.
func (m *GlobalMem) AllocZeroF32(n int) uint32 { return m.Alloc(4 * n) }

// MemSnapshot is a frozen copy of a GlobalMem image, taken by Snapshot and
// applied by Restore. The simulation-result cache stores one per cached
// timing result so that a cache hit can replay the kernel's memory side
// effects without re-simulating.
type MemSnapshot struct {
	Words []uint32
	Next  uint32
}

// Snapshot returns a frozen copy of the image.
func (m *GlobalMem) Snapshot() MemSnapshot {
	return MemSnapshot{Words: append([]uint32(nil), m.words...), Next: m.next}
}

// Restore overwrites the image with a snapshot's content. The snapshot is
// copied, so writes through the image never alias it.
func (m *GlobalMem) Restore(s MemSnapshot) {
	if cap(m.words) >= len(s.Words) {
		m.words = m.words[:len(s.Words)]
	} else {
		m.words = make([]uint32, len(s.Words))
	}
	copy(m.words, s.Words)
	m.next = s.Next
}

// Words exposes the raw word image for content hashing. Callers must treat
// the slice as read-only.
func (m *GlobalMem) Words() []uint32 { return m.words }

func f2b(v float32) uint32 { return math.Float32bits(v) }
func b2f(v uint32) float32 { return math.Float32frombits(v) }

// ConstMem is the read-only constant segment, indexed by byte address.
type ConstMem struct {
	words []uint32
}

// NewConstMem builds a constant segment of the given byte size.
func NewConstMem(bytes int) *ConstMem {
	return &ConstMem{words: make([]uint32, (bytes+3)/4)}
}

// WriteF32Slice initialises constants (host-side, pre-launch).
func (c *ConstMem) WriteF32Slice(addr uint32, vs []float32) {
	for i, v := range vs {
		c.words[int(addr/4)+i] = f2b(v)
	}
}

// WriteI32Slice initialises integer constants.
func (c *ConstMem) WriteI32Slice(addr uint32, vs []int32) {
	for i, v := range vs {
		c.words[int(addr/4)+i] = uint32(v)
	}
}

// Read32 loads a constant word; out-of-range reads return zero like an
// unmapped constant bank.
func (c *ConstMem) Read32(addr uint32) uint32 {
	i := int(addr / 4)
	if i >= len(c.words) {
		return 0
	}
	return c.words[i]
}

// Bytes returns the segment size in bytes.
func (c *ConstMem) Bytes() int { return 4 * len(c.words) }

// Words exposes the raw word image for content hashing. Callers must treat
// the slice as read-only.
func (c *ConstMem) Words() []uint32 { return c.words }

func (c *ConstMem) String() string { return fmt.Sprintf("const[%dB]", c.Bytes()) }
