package kernel

// Decoded instruction tables.
//
// The cycle-level simulator executes the same static instruction millions
// of times; Instr is builder-friendly, not executor-friendly, so every
// execution used to re-derive the functional-unit class, re-walk the
// operand descriptors per lane, and re-collect the register-read set per
// issue. DInstr is the execution-oriented view, computed once per program:
// flat register-row offsets (a register operand is a contiguous
// WarpSize-word row of Warp.Regs), the scoreboard and register-file
// accounting sets, and a fast-path flag for instructions whose operands
// are plain registers or immediates (special registers re-derive
// per-thread values and keep the generic path).

// DInstr is the decoded form of one instruction.
type DInstr struct {
	// Class is the functional-unit class (ClassOf, precomputed).
	Class Class
	// SrcRegs lists the general registers the instruction reads — the
	// predicate register included — in the order Instr.SrcRegs reports
	// them; NSrc is its length. This is the register-file/operand-collector
	// accounting set.
	SrcRegs [4]uint8
	// NSrc is the number of valid entries in SrcRegs.
	NSrc uint8
	// HazRegs extends SrcRegs with the destination register; NHaz is its
	// length. This is the scoreboard-comparison set.
	HazRegs [5]uint8
	// NHaz is the number of valid entries in HazRegs.
	NHaz uint8

	// fast marks instructions the specialized executor handles: every
	// operand is a register row or an immediate.
	fast bool
	// srcOff[i] is the flat Regs offset of source i's register row, or -1
	// when source i is the immediate srcImm[i] (or absent).
	srcOff [3]int32
	// srcImm[i] is the immediate value of source i when srcOff[i] < 0.
	srcImm [3]uint32
	// dstOff is the flat Regs offset of the destination row, -1 if none.
	dstOff int32
	// predOff is the flat Regs offset of the predicate row, -1 if the
	// instruction is unpredicated.
	predOff int32
}

// decode builds the DInstr for one instruction.
func decode(in *Instr) DInstr {
	d := DInstr{Class: ClassOf(in.Op), dstOff: -1, predOff: -1, fast: true}
	var buf [4]uint8
	srcs := in.SrcRegs(buf[:0])
	copy(d.SrcRegs[:], srcs)
	d.NSrc = uint8(len(srcs))
	copy(d.HazRegs[:], srcs)
	d.NHaz = d.NSrc
	if in.HasDst {
		d.HazRegs[d.NHaz] = in.Dst
		d.NHaz++
		d.dstOff = int32(in.Dst) * WarpSize
	}
	if in.Pred != NoPred {
		d.predOff = int32(in.Pred) * WarpSize
	}
	for i := 0; i < 3; i++ {
		d.srcOff[i] = -1
		if i >= in.NumSrc {
			continue
		}
		switch in.Src[i].Kind {
		case KindReg:
			d.srcOff[i] = int32(in.Src[i].Reg) * WarpSize
		case KindImm, KindNone:
			d.srcImm[i] = in.Src[i].Imm
		case KindSpecial:
			d.fast = false
		}
	}
	return d
}

// Decoded returns the program's decoded instruction table, building it on
// first use. The table is content-derived from Instrs and never mutated
// after construction, so concurrent executors share one build (guarded by
// the program's decode latch).
func (p *Program) Decoded() []DInstr {
	p.decodeOnce.Do(func() {
		dec := make([]DInstr, len(p.Instrs))
		for i := range p.Instrs {
			dec[i] = decode(&p.Instrs[i])
		}
		p.dec = dec
	})
	return p.dec
}
