package kernel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestBuilderErrors(t *testing.T) {
	b := NewBuilder("bad", 4)
	b.Bra("nowhere", "nowhere")
	b.Exit()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "undefined label") {
		t.Errorf("expected undefined-label error, got %v", err)
	}

	b2 := NewBuilder("noexit", 4)
	b2.Nop()
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "no exit") {
		t.Errorf("expected missing-exit error, got %v", err)
	}

	b3 := NewBuilder("badreg", 2)
	b3.MovI(5, 1) // r5 >= NumRegs 2
	b3.Exit()
	if _, err := b3.Build(); err == nil {
		t.Error("expected out-of-range register error")
	}

	b4 := NewBuilder("", 4)
	b4.Exit()
	if _, err := b4.Build(); err == nil {
		t.Error("expected missing-name error")
	}
}

func TestBuilderDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate label should panic")
		}
	}()
	b := NewBuilder("dup", 4)
	b.Label("x")
	b.Label("x")
}

func TestLaunchValidate(t *testing.T) {
	b := NewBuilder("k", 4).Params(1)
	b.Exit()
	p := b.MustBuild()
	good := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: []uint32{0}}
	if err := good.Validate(); err != nil {
		t.Errorf("good launch rejected: %v", err)
	}
	cases := []*Launch{
		nil,
		{Prog: nil},
		{Prog: p, Grid: Dim{0, 1}, Block: Dim{32, 1}, Params: []uint32{0}},
		{Prog: p, Grid: Dim{1, 1}, Block: Dim{0, 1}, Params: []uint32{0}},
		{Prog: p, Grid: Dim{1, 1}, Block: Dim{2048, 1}, Params: []uint32{0}},
		{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}, Params: nil},
	}
	for i, l := range cases {
		if l == nil {
			continue
		}
		if err := l.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestWarpsPerBlockRounding(t *testing.T) {
	b := NewBuilder("k", 4)
	b.Exit()
	p := b.MustBuild()
	for _, c := range []struct{ threads, warps int }{
		{1, 1}, {32, 1}, {33, 2}, {64, 2}, {100, 4}, {1024, 32},
	} {
		l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{c.threads, 1}}
		if got := l.WarpsPerBlock(); got != c.warps {
			t.Errorf("%d threads: %d warps, want %d", c.threads, got, c.warps)
		}
	}
}

func TestPartialWarpMask(t *testing.T) {
	w := NewWarp(0, 10, 4)
	if w.ActiveMask() != (1<<10)-1 {
		t.Errorf("mask = %#x, want %#x", w.ActiveMask(), (1<<10)-1)
	}
	w32 := NewWarp(0, 32, 4)
	if w32.ActiveMask() != FullMask {
		t.Errorf("full warp mask = %#x", w32.ActiveMask())
	}
}

func TestNewWarpPanicsOnBadLanes(t *testing.T) {
	for _, lanes := range []int{0, -1, 33} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWarp with %d lanes should panic", lanes)
				}
			}()
			NewWarp(0, lanes, 4)
		}()
	}
}

func TestExecErrorsOnFinishedWarp(t *testing.T) {
	b := NewBuilder("k", 4)
	b.Exit()
	p := b.MustBuild()
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}}
	env := &Env{Global: NewGlobalMem(), Const: NewConstMem(0), Block: NewBlockCtx(l, 0, 0)}
	w := NewWarp(0, 32, 4)
	info, err := w.Exec(p, env)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Finished || !w.Finished {
		t.Fatal("warp should finish after exit")
	}
	if _, err := w.Exec(p, env); err == nil {
		t.Error("exec on finished warp should error")
	}
}

func TestRunawayPCDetected(t *testing.T) {
	// A program whose control falls off the end (exit only on a path not
	// taken) must produce an error, not an infinite loop or panic.
	b := NewBuilder("falloff", 4)
	b.MovI(0, 0)
	b.When(0).Exit() // never true
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}}
	env := &Env{Global: NewGlobalMem(), Const: NewConstMem(0), Block: NewBlockCtx(l, 0, 0)}
	w := NewWarp(0, 32, 4)
	var lastErr error
	for i := 0; i < 10; i++ {
		if _, lastErr = w.Exec(p, env); lastErr != nil {
			break
		}
	}
	if lastErr == nil {
		t.Error("running off the end of the program should error")
	}
}

func TestSharedOutOfBoundsErrors(t *testing.T) {
	b := NewBuilder("oob", 4).SMem(16)
	b.MovI(0, 1024)
	b.Ld(SpaceShared, 1, R(0), 0)
	b.Exit()
	p := b.MustBuild()
	l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}}
	if _, err := Interp(l, NewGlobalMem(), nil); err == nil {
		t.Error("out-of-bounds shared access should error")
	}
}

func TestClassOfCoversAllOps(t *testing.T) {
	for op := OpNop; op <= OpExit; op++ {
		c := ClassOf(op)
		if c > ClassCtrl {
			t.Errorf("op %v has invalid class %v", op, c)
		}
	}
	if ClassOf(OpFFma) != ClassFP || ClassOf(OpIMad) != ClassInt ||
		ClassOf(OpSin) != ClassSFU || ClassOf(OpLd) != ClassMem || ClassOf(OpBra) != ClassCtrl {
		t.Error("representative class mapping broken")
	}
}

func TestSrcRegs(t *testing.T) {
	in := Instr{Op: OpIMad, NumSrc: 3, Pred: 5}
	in.Src[0] = R(1)
	in.Src[1] = I(7)
	in.Src[2] = R(3)
	regs := in.SrcRegs(nil)
	if len(regs) != 3 || regs[0] != 1 || regs[1] != 3 || regs[2] != 5 {
		t.Errorf("SrcRegs = %v, want [1 3 5]", regs)
	}
}

func TestGlobalMemAllocAlignment(t *testing.T) {
	m := NewGlobalMem()
	a := m.Alloc(10)
	b := m.Alloc(1)
	if a%256 != 0 || b%256 != 0 {
		t.Errorf("allocations not 256-aligned: %d %d", a, b)
	}
	if a == 0 {
		t.Error("address 0 must stay unmapped (null)")
	}
	if b <= a {
		t.Error("allocations must not overlap")
	}
}

func TestGlobalMemRoundTrip(t *testing.T) {
	m := NewGlobalMem()
	f := func(off uint16, v uint32) bool {
		addr := 256 + uint32(off)*4
		m.Write32(addr, v)
		return m.Read32(addr) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	ff := func(v float32) bool {
		m.WriteF32(512, v)
		got := m.ReadF32(512)
		return got == v || (v != v && got != got) // NaN-safe
	}
	if err := quick.Check(ff, nil); err != nil {
		t.Error(err)
	}
}

func TestReconvergenceStackInvariant(t *testing.T) {
	// Property: for random two-way divergence masks, child masks partition
	// the parent mask.
	f := func(predBits uint32) bool {
		b := NewBuilder("p", 4)
		b.SReg(0, SpecLane)
		// predicate = bit tid of predBits
		b.MovI(1, int32(predBits))
		b.IShr(1, R(1), R(0))
		b.IAnd(1, R(1), I(1))
		b.When(1).Bra("taken", "join")
		b.Nop()
		b.BraUni("join")
		b.Label("taken")
		b.Nop()
		b.Label("join")
		b.Exit()
		p, err := b.Build()
		if err != nil {
			return false
		}
		l := &Launch{Prog: p, Grid: Dim{1, 1}, Block: Dim{32, 1}}
		env := &Env{Global: NewGlobalMem(), Const: NewConstMem(0), Block: NewBlockCtx(l, 0, 0)}
		w := NewWarp(0, 32, 4)
		for !w.Finished {
			if len(w.Stack) > 0 {
				bottom := w.Stack[0].Mask
				for i := 1; i < len(w.Stack); i++ {
					// Invariant 1: every mask is a subset of the bottom mask.
					if w.Stack[i].Mask&^bottom != 0 {
						return false
					}
					// Invariant 2: sibling tokens (same reconvergence point,
					// adjacent) carry disjoint masks.
					if w.Stack[i].Reconv == w.Stack[i-1].Reconv &&
						w.Stack[i].Mask&w.Stack[i-1].Mask != 0 {
						return false
					}
				}
			}
			if _, err := w.Exec(p, env); err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
