package kernel

import "fmt"

// InterpStats summarises a functional execution.
type InterpStats struct {
	// WarpInstrs is the number of warp-level instructions executed.
	WarpInstrs uint64
	// ThreadInstrs is the lane-weighted instruction count.
	ThreadInstrs uint64
	// PerClass splits WarpInstrs by functional-unit class.
	PerClass [5]uint64
	// Divergences counts warp splits.
	Divergences uint64
	// Barriers counts barrier releases.
	Barriers uint64
	// Blocks counts executed thread blocks.
	Blocks uint64
	// MaxStackDepth is the deepest reconvergence stack observed.
	MaxStackDepth int
}

// Interp executes a launch functionally (no timing): blocks run one after
// another, warps within a block interleave round-robin instruction by
// instruction, which exercises divergence and barrier behaviour the same way
// the timing simulator does. It is the reference executor used to verify
// benchmark correctness.
func Interp(l *Launch, global *GlobalMem, cmem *ConstMem) (*InterpStats, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	if cmem == nil {
		cmem = NewConstMem(0)
	}
	stats := &InterpStats{}
	maxInstr := uint64(1) << 33 // runaway guard

	for cy := 0; cy < l.Grid.Y; cy++ {
		for cx := 0; cx < l.Grid.X; cx++ {
			block := NewBlockCtx(l, cx, cy)
			env := &Env{Global: global, Const: cmem, Block: block}
			warps := makeBlockWarps(l)
			stats.Blocks++

			for {
				progress := false
				allDone := true
				for _, w := range warps {
					if w.Finished || w.AtBarrier {
						if !w.Finished {
							allDone = false
						}
						continue
					}
					allDone = false
					info, err := w.Exec(l.Prog, env)
					if err != nil {
						return stats, fmt.Errorf("block (%d,%d) warp %d: %w", cx, cy, w.IDInBlock, err)
					}
					progress = true
					stats.WarpInstrs++
					stats.ThreadInstrs += uint64(info.ActiveLanes)
					stats.PerClass[ClassOf(info.Instr.Op)]++
					if info.Diverged {
						stats.Divergences++
					}
					if d := w.StackDepth(); d > stats.MaxStackDepth {
						stats.MaxStackDepth = d
					}
					if stats.WarpInstrs > maxInstr {
						return stats, fmt.Errorf("kernel %s: instruction budget exceeded (infinite loop?)", l.Prog.Name)
					}
				}
				if allDone {
					break
				}
				if !progress {
					// Everyone alive is at a barrier: release it.
					released := false
					for _, w := range warps {
						if w.AtBarrier {
							w.ReleaseBarrier()
							released = true
						}
					}
					if !released {
						return stats, fmt.Errorf("kernel %s: deadlock in block (%d,%d)", l.Prog.Name, cx, cy)
					}
					stats.Barriers++
				}
			}
		}
	}
	return stats, nil
}

// makeBlockWarps creates the warps of one block, assigning live lanes to the
// trailing partial warp if the block size is not a multiple of WarpSize.
func makeBlockWarps(l *Launch) []*Warp {
	threads := l.ThreadsPerBlock()
	n := l.WarpsPerBlock()
	warps := make([]*Warp, n)
	for i := 0; i < n; i++ {
		lanes := WarpSize
		if rem := threads - i*WarpSize; rem < WarpSize {
			lanes = rem
		}
		warps[i] = NewWarp(i, lanes, l.Prog.NumRegs)
	}
	return warps
}
