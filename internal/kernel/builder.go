package kernel

import "fmt"

// Builder assembles a Program. Branch targets and reconvergence points are
// expressed with named labels, resolved at Build time. Methods panic on
// misuse (an assembler programming error, not a runtime condition); Build
// returns an error for unresolved labels and validation failures.
type Builder struct {
	name      string
	numRegs   int
	numParams int
	smemBytes int
	instrs    []Instr
	labels    map[string]int
	fixups    []fixup
	pred      int16
	predNeg   bool
}

type fixup struct {
	pc     int
	target string // label for Target
	reconv string // label for Reconv
}

// NewBuilder starts a program with the given name and per-thread register count.
func NewBuilder(name string, numRegs int) *Builder {
	return &Builder{name: name, numRegs: numRegs, labels: map[string]int{}, pred: NoPred}
}

// Params declares the number of 32-bit kernel parameters.
func (b *Builder) Params(n int) *Builder { b.numParams = n; return b }

// SMem declares the static shared-memory allocation per block in bytes.
func (b *Builder) SMem(bytes int) *Builder { b.smemBytes = bytes; return b }

// Label binds a name to the next instruction's PC.
func (b *Builder) Label(name string) {
	if _, dup := b.labels[name]; dup {
		panic(fmt.Sprintf("kernel %s: duplicate label %q", b.name, name))
	}
	b.labels[name] = len(b.instrs)
}

// When predicates the next emitted instruction on register p being non-zero.
func (b *Builder) When(p int) *Builder { b.pred, b.predNeg = int16(p), false; return b }

// Unless predicates the next emitted instruction on register p being zero.
func (b *Builder) Unless(p int) *Builder { b.pred, b.predNeg = int16(p), true; return b }

func (b *Builder) emit(in Instr) {
	in.Pred, in.PredNeg = b.pred, b.predNeg
	b.pred, b.predNeg = NoPred, false
	b.instrs = append(b.instrs, in)
}

func (b *Builder) op3(op Op, d int, s ...Operand) {
	in := Instr{Op: op, Dst: uint8(d), HasDst: true, NumSrc: len(s)}
	if len(s) > 3 {
		panic("kernel: more than 3 source operands")
	}
	copy(in.Src[:], s)
	b.emit(in)
}

// --- Integer ---

// Mov emits d = a.
func (b *Builder) Mov(d int, a Operand) { b.op3(OpMov, d, a) }

// MovI emits d = imm (32-bit integer immediate).
func (b *Builder) MovI(d int, v int32) { b.op3(OpMov, d, I(v)) }

// MovF emits d = imm (float32 immediate).
func (b *Builder) MovF(d int, v float32) { b.op3(OpMov, d, F(v)) }

// SReg emits d = special register.
func (b *Builder) SReg(d int, s Special) { b.op3(OpMov, d, S(s)) }

// IAdd emits d = a + b.
func (b *Builder) IAdd(d int, a, s Operand) { b.op3(OpIAdd, d, a, s) }

// ISub emits d = a - b.
func (b *Builder) ISub(d int, a, s Operand) { b.op3(OpISub, d, a, s) }

// IMul emits d = a * b (low 32 bits).
func (b *Builder) IMul(d int, a, s Operand) { b.op3(OpIMul, d, a, s) }

// IMad emits d = a*b + c.
func (b *Builder) IMad(d int, a, s, c Operand) { b.op3(OpIMad, d, a, s, c) }

// IMin emits d = min(a, b) (signed).
func (b *Builder) IMin(d int, a, s Operand) { b.op3(OpIMin, d, a, s) }

// IMax emits d = max(a, b) (signed).
func (b *Builder) IMax(d int, a, s Operand) { b.op3(OpIMax, d, a, s) }

// IAnd emits d = a & b.
func (b *Builder) IAnd(d int, a, s Operand) { b.op3(OpIAnd, d, a, s) }

// IOr emits d = a | b.
func (b *Builder) IOr(d int, a, s Operand) { b.op3(OpIOr, d, a, s) }

// IXor emits d = a ^ b.
func (b *Builder) IXor(d int, a, s Operand) { b.op3(OpIXor, d, a, s) }

// INot emits d = ^a.
func (b *Builder) INot(d int, a Operand) { b.op3(OpINot, d, a) }

// IShl emits d = a << (b & 31).
func (b *Builder) IShl(d int, a, s Operand) { b.op3(OpIShl, d, a, s) }

// IShr emits d = a >> (b & 31), logical.
func (b *Builder) IShr(d int, a, s Operand) { b.op3(OpIShr, d, a, s) }

// ISra emits d = a >> (b & 31), arithmetic.
func (b *Builder) ISra(d int, a, s Operand) { b.op3(OpISra, d, a, s) }

// ISet emits d = (a cmp b) ? 1 : 0 with signed comparison.
func (b *Builder) ISet(d int, cmp Cmp, a, s Operand) {
	in := Instr{Op: OpISet, Dst: uint8(d), HasDst: true, NumSrc: 2, Cmp: cmp}
	in.Src[0], in.Src[1] = a, s
	b.emit(in)
}

// ISel emits d = (a != 0) ? x : y.
func (b *Builder) ISel(d int, a, x, y Operand) { b.op3(OpISel, d, a, x, y) }

// --- Floating point ---

// FAdd emits d = a + b.
func (b *Builder) FAdd(d int, a, s Operand) { b.op3(OpFAdd, d, a, s) }

// FSub emits d = a - b.
func (b *Builder) FSub(d int, a, s Operand) { b.op3(OpFSub, d, a, s) }

// FMul emits d = a * b.
func (b *Builder) FMul(d int, a, s Operand) { b.op3(OpFMul, d, a, s) }

// FFma emits d = a*b + c.
func (b *Builder) FFma(d int, a, s, c Operand) { b.op3(OpFFma, d, a, s, c) }

// FMin emits d = min(a, b).
func (b *Builder) FMin(d int, a, s Operand) { b.op3(OpFMin, d, a, s) }

// FMax emits d = max(a, b).
func (b *Builder) FMax(d int, a, s Operand) { b.op3(OpFMax, d, a, s) }

// FNeg emits d = -a.
func (b *Builder) FNeg(d int, a Operand) { b.op3(OpFNeg, d, a) }

// FAbs emits d = |a|.
func (b *Builder) FAbs(d int, a Operand) { b.op3(OpFAbs, d, a) }

// FSet emits d = (a cmp b) ? 1 : 0 with float comparison.
func (b *Builder) FSet(d int, cmp Cmp, a, s Operand) {
	in := Instr{Op: OpFSet, Dst: uint8(d), HasDst: true, NumSrc: 2, Cmp: cmp}
	in.Src[0], in.Src[1] = a, s
	b.emit(in)
}

// I2F emits d = float32(int32(a)).
func (b *Builder) I2F(d int, a Operand) { b.op3(OpI2F, d, a) }

// F2I emits d = int32(trunc(float32(a))).
func (b *Builder) F2I(d int, a Operand) { b.op3(OpF2I, d, a) }

// --- SFU ---

// Rcp emits d = 1/a.
func (b *Builder) Rcp(d int, a Operand) { b.op3(OpRcp, d, a) }

// Rsq emits d = 1/sqrt(a).
func (b *Builder) Rsq(d int, a Operand) { b.op3(OpRsq, d, a) }

// Sqrt emits d = sqrt(a).
func (b *Builder) Sqrt(d int, a Operand) { b.op3(OpSqrt, d, a) }

// Sin emits d = sin(a).
func (b *Builder) Sin(d int, a Operand) { b.op3(OpSin, d, a) }

// Cos emits d = cos(a).
func (b *Builder) Cos(d int, a Operand) { b.op3(OpCos, d, a) }

// Ex2 emits d = 2^a.
func (b *Builder) Ex2(d int, a Operand) { b.op3(OpEx2, d, a) }

// Lg2 emits d = log2(a).
func (b *Builder) Lg2(d int, a Operand) { b.op3(OpLg2, d, a) }

// --- Memory ---

// Ld emits d = space[addrReg + offset].
func (b *Builder) Ld(space Space, d int, addr Operand, offset int32) {
	in := Instr{Op: OpLd, Dst: uint8(d), HasDst: true, NumSrc: 1, Space: space, Offset: offset}
	in.Src[0] = addr
	b.emit(in)
}

// St emits space[addrReg + offset] = val.
func (b *Builder) St(space Space, addr Operand, val Operand, offset int32) {
	in := Instr{Op: OpSt, NumSrc: 2, Space: space, Offset: offset}
	in.Src[0], in.Src[1] = addr, val
	b.emit(in)
}

// LdParam emits d = params[idx] (serviced by the constant cache).
func (b *Builder) LdParam(d int, idx int) {
	b.Ld(SpaceParam, d, U(uint32(idx*4)), 0)
}

// AtomAdd emits d = global[addr+offset]; global[addr+offset] += val, atomically.
func (b *Builder) AtomAdd(d int, addr, val Operand, offset int32) {
	in := Instr{Op: OpAtomAdd, Dst: uint8(d), HasDst: true, NumSrc: 2, Space: SpaceGlobal, Offset: offset}
	in.Src[0], in.Src[1] = addr, val
	b.emit(in)
}

// --- Control ---

// Bra emits a branch: lanes whose pending predicate evaluates true jump to
// `target`; the reconvergence point is `reconv` (the immediate post-dominator
// of the branch). Use When/Unless before Bra to set the condition; an
// unconditional Bra takes all lanes.
func (b *Builder) Bra(target, reconv string) {
	b.fixups = append(b.fixups, fixup{pc: len(b.instrs), target: target, reconv: reconv})
	b.emit(Instr{Op: OpBra})
}

// BraUni emits an unconditional branch whose reconvergence point equals its
// target (no divergence possible).
func (b *Builder) BraUni(target string) { b.Bra(target, target) }

// Bar emits a block-wide barrier.
func (b *Builder) Bar() { b.emit(Instr{Op: OpBar}) }

// Exit emits thread termination.
func (b *Builder) Exit() { b.emit(Instr{Op: OpExit}) }

// Nop emits a no-op.
func (b *Builder) Nop() { b.emit(Instr{Op: OpNop}) }

// Build resolves labels and validates the program.
func (b *Builder) Build() (*Program, error) {
	for _, f := range b.fixups {
		t, ok := b.labels[f.target]
		if !ok {
			return nil, fmt.Errorf("kernel %s: undefined label %q", b.name, f.target)
		}
		r, ok := b.labels[f.reconv]
		if !ok {
			return nil, fmt.Errorf("kernel %s: undefined reconvergence label %q", b.name, f.reconv)
		}
		b.instrs[f.pc].Target = t
		b.instrs[f.pc].Reconv = r
	}
	p := &Program{
		Name:      b.name,
		Instrs:    b.instrs,
		NumRegs:   b.numRegs,
		SMemBytes: b.smemBytes,
		NumParams: b.numParams,
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build but panics on error, for statically-known-good kernels.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
