package kernel

import (
	"reflect"
	"testing"
)

// The simulator's per-core pools recycle warps and block contexts across
// thread blocks; Reset must leave an object indistinguishable from a newly
// constructed one, or pooled state leaks into later blocks.

func TestWarpResetMatchesNew(t *testing.T) {
	w := NewWarp(3, 16, 8)
	// Dirty every piece of state a kernel can touch.
	for i := range w.Regs {
		w.Regs[i] = 0xA5A5A5A5
	}
	w.Stack = append(w.Stack, Token{PC: 7, Reconv: 9, Mask: 0x0F0F})
	w.AtBarrier = true
	w.Finished = true

	// Same register count: the backing array must be reused and cleared.
	regs := &w.Regs[0]
	w.Reset(1, WarpSize, 8)
	if !reflect.DeepEqual(w, NewWarp(1, WarpSize, 8)) {
		t.Errorf("Reset(1, %d, 8) = %+v, want fresh %+v", WarpSize, w, NewWarp(1, WarpSize, 8))
	}
	if &w.Regs[0] != regs {
		t.Error("Reset reallocated Regs despite an unchanged register count")
	}

	// Different register count: Reset must size the file like NewWarp.
	w.Reset(0, 8, 16)
	if !reflect.DeepEqual(w, NewWarp(0, 8, 16)) {
		t.Errorf("Reset(0, 8, 16) = %+v, want fresh %+v", w, NewWarp(0, 8, 16))
	}
}

func TestBlockCtxResetMatchesNew(t *testing.T) {
	b := NewBuilder("resetProbe", 4)
	b.SMem(32)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	l := &Launch{Prog: prog, Grid: Dim{X: 4, Y: 1}, Block: Dim{X: WarpSize, Y: 1}}

	ctx := NewBlockCtx(l, 2, 0)
	for i := range ctx.Shared {
		ctx.Shared[i] = 0xDEADBEEF
	}

	shared := &ctx.Shared[0]
	ctx.Reset(l, 3, 0)
	if !reflect.DeepEqual(ctx, NewBlockCtx(l, 3, 0)) {
		t.Errorf("Reset = %+v, want fresh %+v", ctx, NewBlockCtx(l, 3, 0))
	}
	if &ctx.Shared[0] != shared {
		t.Error("Reset reallocated Shared despite an unchanged size")
	}

	// A larger demand forces reallocation, still matching a fresh context.
	b2 := NewBuilder("resetProbe2", 4)
	b2.SMem(4096)
	b2.Exit()
	prog2, err := b2.Build()
	if err != nil {
		t.Fatal(err)
	}
	l2 := &Launch{Prog: prog2, Grid: Dim{X: 1, Y: 1}, Block: Dim{X: WarpSize, Y: 1}}
	ctx.Reset(l2, 0, 0)
	if !reflect.DeepEqual(ctx, NewBlockCtx(l2, 0, 0)) {
		t.Errorf("Reset to larger smem = %+v, want fresh %+v", ctx, NewBlockCtx(l2, 0, 0))
	}
}
