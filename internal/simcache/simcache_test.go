package simcache

import (
	"reflect"
	"sync"
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

// testKernel builds a small mixed kernel: per-thread FP work plus a strided
// global store, so both the activity counters and the memory image depend on
// the inputs.
func testKernel(blocks, iters int, seed int32) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("simcacheProbe", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.I2F(1, kernel.R(0))
	b.MovI(2, 0)
	b.Label("loop")
	b.FFma(1, kernel.R(1), kernel.F(1.0002), kernel.F(0.125))
	b.IAdd(2, kernel.R(2), kernel.I(1))
	b.ISet(3, kernel.CmpLT, kernel.R(2), kernel.I(int32(iters)))
	b.When(3).Bra("loop", "store")
	b.Label("store")
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(blocks * 64 * 4)
	mem.Write32(out, uint32(seed)) // fold the seed into the input image
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: blocks, Y: 1},
		Block:  kernel.Dim{X: 64, Y: 1},
		Params: []uint32{out},
	}, mem
}

func newSim(t *testing.T, cfg *config.GPU) *sim.GPU {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestKeySensitivity(t *testing.T) {
	cfg := config.GT240()
	l, mem := testKernel(4, 8, 1)
	base := KeyFor(cfg, l, mem, nil)

	// Power-side config change: same key.
	pcfg := config.GT240()
	pcfg.ProcessNM = 28
	pcfg.Power.FPOpPJ *= 2
	if KeyFor(pcfg, l, mem, nil) != base {
		t.Error("power-side config change moved the key")
	}
	// Timing-side config change: different key.
	tcfg := config.GT240()
	tcfg.Clusters = 2
	if KeyFor(tcfg, l, mem, nil) == base {
		t.Error("timing-side config change kept the key")
	}
	// Input memory content: different key.
	l2, mem2 := testKernel(4, 8, 2)
	if KeyFor(cfg, l2, mem2, nil) == base {
		t.Error("input memory change kept the key")
	}
	// Launch geometry: different key.
	l3, mem3 := testKernel(8, 8, 1)
	if KeyFor(cfg, l3, mem3, nil) == base {
		t.Error("grid change kept the key")
	}
	// Program content: different key.
	l4, mem4 := testKernel(4, 9, 1)
	if KeyFor(cfg, l4, mem4, nil) == base {
		t.Error("program change kept the key")
	}
	// Constant memory: present vs. absent and content both key.
	cm := kernel.NewConstMem(16)
	withC := KeyFor(cfg, l, mem, cm)
	if withC == base {
		t.Error("constant segment presence kept the key")
	}
	cm.WriteI32Slice(0, []int32{7})
	if KeyFor(cfg, l, mem, cm) == withC {
		t.Error("constant content change kept the key")
	}
}

func TestHitReplaysResultAndMemory(t *testing.T) {
	var c Cache
	g := newSim(t, config.GT240())

	l1, mem1 := testKernel(4, 8, 3)
	tr1, err := c.Run(g, l1, mem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr1.CacheHit {
		t.Error("first run reported a hit")
	}

	l2, mem2 := testKernel(4, 8, 3)
	tr2, err := c.Run(g, l2, mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr2.CacheHit {
		t.Error("identical second run missed")
	}
	if !reflect.DeepEqual(tr1.Perf, tr2.Perf) {
		t.Error("replayed result differs from simulated result")
	}
	if tr1.MemHash != tr2.MemHash {
		t.Error("final memory hash differs between miss and hit")
	}
	if !reflect.DeepEqual(mem1.Words(), mem2.Words()) {
		t.Error("replayed memory image differs from simulated image")
	}
	if st := c.Stats(); st.Entries != 1 || st.Misses != 1 || st.Hits != 1 {
		t.Errorf("stats = %+v, want 1 entry / 1 miss / 1 hit", st)
	}

	// The cached master copy must not alias the handed-out results.
	tr2.Perf.Activity.Cycles = 0
	tr2.Perf.Activity.CoreBusyCycles[0] = ^uint64(0)
	l3, mem3 := testKernel(4, 8, 3)
	tr3, err := c.Run(g, l3, mem3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr3.Perf.Activity.Cycles != tr1.Perf.Activity.Cycles ||
		tr3.Perf.Activity.CoreBusyCycles[0] != tr1.Perf.Activity.CoreBusyCycles[0] {
		t.Error("mutating a returned result corrupted the cache")
	}
	// Nor must later writes through a replayed image corrupt the snapshot.
	mem3.Write32(256, 0xDEAD)
	l4, mem4 := testKernel(4, 8, 3)
	if _, err := c.Run(g, l4, mem4, nil); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mem4.Words(), mem1.Words()) {
		t.Error("writing through a replayed image corrupted the stored snapshot")
	}
}

func TestPowerSideConfigsShareEntries(t *testing.T) {
	var c Cache
	a := newSim(t, config.GT240())
	bcfg := config.GT240()
	bcfg.Name = "GT240@28nm"
	bcfg.ProcessNM = 28
	bcfg.Power.FPOpPJ *= 1.5
	b := newSim(t, bcfg)

	l1, mem1 := testKernel(4, 8, 4)
	if _, err := c.Run(a, l1, mem1, nil); err != nil {
		t.Fatal(err)
	}
	l2, mem2 := testKernel(4, 8, 4)
	tr, err := c.Run(b, l2, mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.CacheHit {
		t.Error("power-side variant did not share the timing result")
	}
}

func TestDisableKnobBypasses(t *testing.T) {
	var c Cache
	cfg := config.GT240()
	cfg.DisableSimCache = true
	g := newSim(t, cfg)
	for i := 0; i < 2; i++ {
		l, mem := testKernel(4, 8, 5)
		tr, err := c.Run(g, l, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		if tr.CacheHit {
			t.Error("disabled cache reported a hit")
		}
		if tr.Key != (Key{}) {
			t.Error("disabled cache computed a key")
		}
	}
	if st := c.Stats(); st.Entries != 0 || st.Bypasses != 2 {
		t.Errorf("stats = %+v, want 0 entries / 2 bypasses", st)
	}
}

// probeEntryBytes measures the accounted snapshot size of one
// testKernel(4, ...) entry (the words slice carries allocator slack, so the
// size is derived, not assumed).
func probeEntryBytes(t *testing.T, g *sim.GPU) int64 {
	t.Helper()
	var c Cache
	runProbe(t, &c, g, 99)
	return c.Stats().Bytes
}

// runProbe runs testKernel(4, 8, seed) through the cache and reports whether
// it hit.
func runProbe(t *testing.T, c *Cache, g *sim.GPU, seed int32) bool {
	t.Helper()
	l, mem := testKernel(4, 8, seed)
	tr, err := c.Run(g, l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tr.CacheHit
}

// TestLRUEviction bounds a cache to two entries and checks that the
// least-recently-used entry — with recency refreshed by hits, not just
// insertions — is the one evicted.
func TestLRUEviction(t *testing.T) {
	g := newSim(t, config.GT240())
	entryBytes := probeEntryBytes(t, g)

	var c Cache
	c.SetByteBudget(2 * entryBytes)
	runProbe(t, &c, g, 101) // store A
	runProbe(t, &c, g, 102) // store B
	if hit := runProbe(t, &c, g, 101); !hit {
		t.Fatal("A should still be cached") // and A is now MRU
	}
	runProbe(t, &c, g, 103) // store C: evicts B (LRU), not the touched A

	st := c.Stats()
	if st.Entries != 2 || st.Evictions != 1 || st.Bytes != 2*entryBytes {
		t.Fatalf("stats = %+v, want 2 entries / 1 eviction / %d bytes", st, 2*entryBytes)
	}
	if hit := runProbe(t, &c, g, 101); !hit {
		t.Error("touched entry A was evicted")
	}
	if hit := runProbe(t, &c, g, 102); hit {
		t.Error("LRU entry B survived eviction")
	}
}

// TestBudgetKeepsNewestEntry: a budget smaller than a single entry must not
// refuse to cache — the newest entry always stays, older ones go.
func TestBudgetKeepsNewestEntry(t *testing.T) {
	g := newSim(t, config.GT240())
	entryBytes := probeEntryBytes(t, g)

	var c Cache
	c.SetByteBudget(entryBytes / 2)
	runProbe(t, &c, g, 201)
	if st := c.Stats(); st.Entries != 1 || st.Evictions != 0 {
		t.Fatalf("stats = %+v, want the oversized entry retained", st)
	}
	if hit := runProbe(t, &c, g, 201); !hit {
		t.Error("oversized entry did not replay")
	}
	runProbe(t, &c, g, 202)
	st := c.Stats()
	if st.Entries != 1 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want old entry evicted for the new one", st)
	}
	if hit := runProbe(t, &c, g, 202); !hit {
		t.Error("newest entry was the one evicted")
	}
}

// TestSetByteBudgetShrinksImmediately: imposing a budget on an over-budget
// cache evicts on the spot; removing the bound stops eviction.
func TestSetByteBudgetShrinksImmediately(t *testing.T) {
	g := newSim(t, config.GT240())
	entryBytes := probeEntryBytes(t, g)

	var c Cache
	for seed := int32(301); seed <= 304; seed++ {
		runProbe(t, &c, g, seed)
	}
	c.SetByteBudget(2 * entryBytes)
	if st := c.Stats(); st.Entries != 2 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want immediate shrink to 2 entries", st)
	}
	c.SetByteBudget(0)
	runProbe(t, &c, g, 305)
	runProbe(t, &c, g, 306)
	if st := c.Stats(); st.Entries != 4 || st.Evictions != 2 {
		t.Fatalf("stats = %+v, want unbounded growth after budget removal", st)
	}
	// Evicted keys re-simulate and replay bit-identically afterwards.
	if hit := runProbe(t, &c, g, 301); hit {
		t.Error("evicted entry reported a hit")
	}
	if hit := runProbe(t, &c, g, 301); !hit {
		t.Error("re-simulated entry did not re-cache")
	}
}

// TestConcurrentSameKeySingleFlight hammers one key from many goroutines:
// exactly one simulation may run (single-flight), every caller must end with
// the same result and final memory image. Run under -race this also proves
// the cache's concurrency safety.
func TestConcurrentSameKeySingleFlight(t *testing.T) {
	var c Cache
	cfg := config.GT240()
	const n = 16
	type out struct {
		tr  *TimingResult
		mem *kernel.GlobalMem
	}
	outs := make([]out, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			g, err := sim.New(cfg)
			if err != nil {
				t.Error(err)
				return
			}
			l, mem := testKernel(4, 8, 6)
			tr, err := c.Run(g, l, mem, nil)
			if err != nil {
				t.Error(err)
				return
			}
			outs[i] = out{tr, mem}
		}(i)
	}
	wg.Wait()
	st := c.Stats()
	if st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want exactly one simulation", st)
	}
	if st.Hits != n-1 {
		t.Errorf("stats = %+v, want %d hits", st, n-1)
	}
	for i := 1; i < n; i++ {
		if !reflect.DeepEqual(outs[i].tr.Perf, outs[0].tr.Perf) {
			t.Fatalf("caller %d got a different result", i)
		}
		if !reflect.DeepEqual(outs[i].mem.Words(), outs[0].mem.Words()) {
			t.Fatalf("caller %d got a different memory image", i)
		}
	}
}
