// Package simcache is a process-wide, concurrency-safe, content-addressed
// cache in front of the cycle-level timing simulator. The paper's
// methodology is explicitly two-stage — a timing simulation produces
// activity counts, an analytic model turns them into watts — and most of
// the experiment suite re-runs the expensive first stage with inputs it has
// already simulated: DVFS evaluates the same kernel at six clock scales
// (the card applies clock scaling analytically, so the simulated cycle
// counts are identical), the process-node ablation varies only the power
// tier, and Fig6/Table4/Table5/EnergyPerOp/StaticExtrapolation overlap on
// (GPU, kernel) pairs.
//
// The cache key hashes exactly the inputs that determine a timing result:
// the timing-relevant subset of the configuration (config.GPU.TimingKey —
// power/tech/clock-only parameters are excluded by construction), the
// kernel program, the launch geometry and parameters, and the full input
// memory images (global and constant). A hit replays the kernel's memory
// side effects from the stored final-image snapshot and returns a deep copy
// of the stored result; a miss simulates, then stores. Concurrent callers
// wanting the same key are single-flighted (runner.Flight): the key is
// simulated exactly once and the waiters replay.
//
// Determinism contract: with the cache on or off, every reported metric is
// bit-identical (enforced by the core package's cached-vs-fresh equivalence
// tests). config.GPU.DisableSimCache or the GPUSIMPOW_DISABLE_SIM_CACHE
// environment variable forces the old always-simulate path.
//
// Memory is unbounded by default; SetByteBudget (or the
// GPUSIMPOW_SIM_CACHE_BUDGET_MB environment variable, for the process-wide
// cache) imposes an LRU bound keyed by final-image snapshot bytes, for
// long-lived multi-tenant sweep services. Eviction trades speed, never
// results: an evicted key simply re-simulates.
//
// SetDir (or GPUSIMPOW_SIM_CACHE_DIR) additionally spills entries to disk
// keyed by hex content key, so repeated processes — daemon restarts, CI
// runs, CLI invocations — share timing work; see disk.go.
package simcache

import (
	"crypto/sha256"
	"encoding/binary"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/runner"
	"gpusimpow/internal/sim"
)

// Key is the content address of one timing simulation.
type Key [32]byte

// TimingResult is the serializable outcome of the pure timing stage: the
// simulator's activity counters and performance stats plus the content
// identity of the run. The launch's memory side effects have already been
// applied to the caller's memory image when a TimingResult is returned.
type TimingResult struct {
	// Kernel is the launched program's name.
	Kernel string
	// Key is the content address the result is cached under (zero when the
	// cache is disabled).
	Key Key
	// Perf carries the activity counters and performance stats. It is the
	// caller's private copy.
	Perf *sim.Result
	// MemHash is a hash of the final global-memory image, part of the
	// determinism contract: a cached replay and a fresh simulation of the
	// same key must agree on it.
	MemHash [32]byte
	// CacheHit reports whether the timing stage was served from the cache
	// (including single-flight waits on a concurrent simulation).
	CacheHit bool
}

// entry is one cached simulation: the master result copy and the final
// memory image to replay on hits, threaded on the cache's recency list.
type entry struct {
	key     Key
	perf    *sim.Result
	final   kernel.MemSnapshot
	memHash [32]byte

	// bytes is the entry's accounted size: the final-image snapshot bytes,
	// which dominate an entry's footprint (activity counters are O(cores)).
	bytes int64
	// prev/next thread the recency list (prev is more recently used; the
	// list head is the MRU end, the tail the next eviction victim).
	prev, next *entry
}

// Cache is a content-addressed store of timing results. The package-level
// Run uses one process-wide instance; separate instances exist for tests.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*entry
	flight  runner.Flight[Key, *entry]

	// Recency list and byte accounting for the LRU bound. budget <= 0 means
	// unbounded (the default); see SetByteBudget.
	mru, lru *entry
	bytes    int64
	budget   int64

	// dir is the on-disk spill directory ("" = disabled); see disk.go.
	dir string

	hits      uint64
	misses    uint64
	diskHits  uint64
	evictions uint64
	bypasses  atomic.Uint64 // atomic: the bypass path must not contend on mu
}

// Stats is a point-in-time snapshot of cache effectiveness counters. It
// crosses the wire inside the service's /v1/healthz body, so every field
// carries an explicit json name (enforced by gpowlint's wirejson pass).
type Stats struct {
	// Entries is the number of distinct timing results stored.
	Entries int `json:"entries"`
	// Bytes is the accounted size of the stored final-image snapshots.
	Bytes int64 `json:"bytes"`
	// BudgetBytes is the configured byte budget (0 = unbounded).
	BudgetBytes int64 `json:"budgetBytes"`
	// Hits counts runs served from the store, the disk spill or a
	// single-flight wait.
	Hits uint64 `json:"hits"`
	// Misses counts runs that actually simulated.
	Misses uint64 `json:"misses"`
	// DiskHits counts runs served by loading a spilled entry from the
	// configured cache directory (a subset of Hits).
	DiskHits uint64 `json:"diskHits"`
	// Evictions counts entries dropped to honor the byte budget.
	Evictions uint64 `json:"evictions"`
	// Bypasses counts runs that skipped the cache (DisableSimCache knob).
	Bypasses uint64 `json:"bypasses"`
}

// shared is the process-wide cache every Simulator and virtual Card runs
// through.
var shared Cache

// Default returns the process-wide cache (for stats and tests).
func Default() *Cache { return &shared }

// init applies the GPUSIMPOW_SIM_CACHE_BUDGET_MB environment variable to the
// process-wide cache: a positive integer bounds the cache's snapshot memory
// to that many mebibytes. Long-lived multi-tenant sweep services set it (or
// call SetByteBudget) so the cache cannot grow without bound.
func init() {
	if v := os.Getenv("GPUSIMPOW_SIM_CACHE_BUDGET_MB"); v != "" {
		if mb, err := strconv.ParseInt(v, 10, 64); err == nil && mb > 0 {
			shared.SetByteBudget(mb << 20)
		}
	}
	// GPUSIMPOW_SIM_CACHE_DIR spills entries to disk so repeated daemon
	// restarts and CI runs share timing work (see disk.go). A directory
	// that cannot be created just leaves the spill off.
	if v := os.Getenv("GPUSIMPOW_SIM_CACHE_DIR"); v != "" {
		_ = shared.SetDir(v)
	}
}

// SetByteBudget bounds the bytes of final-image snapshots the cache may
// retain; least-recently-used entries are evicted when the bound is
// exceeded. n <= 0 removes the bound. The bound applies immediately (an
// over-budget cache shrinks on the spot) and never evicts the entry being
// stored or touched, so a single entry larger than the budget still caches —
// the budget bounds retention, it does not refuse work. Eviction only
// affects performance, never results: an evicted key re-simulates, and the
// cached-vs-fresh determinism contract makes that bit-identical.
func (c *Cache) SetByteBudget(n int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.budget = n
	c.evictOverBudgetLocked(nil)
}

// touchLocked moves e to the MRU end of the recency list (inserting it if it
// is not yet threaded). Callers hold c.mu.
func (c *Cache) touchLocked(e *entry) {
	if c.mru == e {
		return
	}
	c.unlinkLocked(e)
	e.next = c.mru
	if c.mru != nil {
		c.mru.prev = e
	}
	c.mru = e
	if c.lru == nil {
		c.lru = e
	}
}

// unlinkLocked removes e from the recency list if threaded.
func (c *Cache) unlinkLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else if c.mru == e {
		c.mru = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else if c.lru == e {
		c.lru = e.prev
	}
	e.prev, e.next = nil, nil
}

// evictOverBudgetLocked drops LRU entries until the byte budget is honored,
// never evicting keep. Callers hold c.mu.
func (c *Cache) evictOverBudgetLocked(keep *entry) {
	if c.budget <= 0 {
		return
	}
	for c.bytes > c.budget && c.lru != nil && c.lru != keep {
		victim := c.lru
		c.unlinkLocked(victim)
		delete(c.entries, victim.key)
		c.bytes -= victim.bytes
		c.evictions++
	}
}

// Run serves one kernel launch through the process-wide cache.
func Run(g *sim.GPU, l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*TimingResult, error) {
	return shared.Run(g, l, global, cmem)
}

// envDisabled reports the GPUSIMPOW_DISABLE_SIM_CACHE escape hatch, read
// once per process.
var envDisabled = sync.OnceValue(func() bool {
	v := os.Getenv("GPUSIMPOW_DISABLE_SIM_CACHE")
	return v != "" && v != "0"
})

// Run executes the pure timing stage for one launch: a fresh simulation on
// a key miss (stored for the future), a replay on a hit. Either way the
// caller's global memory image holds the kernel's final state afterwards,
// exactly as sim.GPU.Run would leave it.
func (c *Cache) Run(g *sim.GPU, l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*TimingResult, error) {
	if g.Config().DisableSimCache || envDisabled() {
		c.bypasses.Add(1)
		res, err := g.Run(l, global, cmem)
		if err != nil {
			return nil, err
		}
		// No key, no MemHash: the bypass path adds zero work on top of the
		// plain simulation (equivalence tests hash images themselves).
		return &TimingResult{Kernel: l.Prog.Name, Perf: res}, nil
	}

	key := KeyFor(g.Config(), l, global, cmem)

	// Fast path: already stored.
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.hits++
		c.touchLocked(e)
		c.mu.Unlock()
		global.Restore(e.final)
		return &TimingResult{Kernel: l.Prog.Name, Key: key, Perf: e.perf.Clone(), MemHash: e.memHash, CacheHit: true}, nil
	}
	c.mu.Unlock()

	// Miss: single-flight the simulation. The leader runs on its own memory
	// image (the side effects land where they belong); waiters — and late
	// callers whose leader completed between the fast-path lookup above and
	// the flight — replay the stored final image onto theirs.
	simulated := false
	e, err, waited := c.flight.Do(key, func() (*entry, error) {
		// Double-check the store: a previous leader may have stored the
		// entry and left the flight after our fast-path lookup; becoming a
		// fresh leader then would re-simulate an already-cached key.
		c.mu.Lock()
		if e, ok := c.entries[key]; ok {
			c.hits++
			c.touchLocked(e)
			c.mu.Unlock()
			return e, nil
		}
		c.mu.Unlock()
		// Disk spill: a previous process may have simulated this key.
		// Loading counts as a hit (no simulation ran) and populates the
		// memory store; the caller replays the final image exactly as on
		// a single-flight wait.
		if e := c.loadDisk(key); e != nil {
			c.mu.Lock()
			if c.entries == nil {
				c.entries = make(map[Key]*entry)
			}
			c.entries[key] = e
			c.bytes += e.bytes
			c.touchLocked(e)
			c.evictOverBudgetLocked(e)
			c.hits++
			c.diskHits++
			c.mu.Unlock()
			return e, nil
		}
		res, err := g.Run(l, global, cmem)
		if err != nil {
			return nil, err
		}
		simulated = true
		// res never escapes except through Clone below, so the cache can
		// keep it as the master copy directly.
		e := &entry{
			key:     key,
			perf:    res,
			final:   global.Snapshot(),
			memHash: hashWords(global.Words(), uint32(global.Size())),
		}
		e.bytes = int64(len(e.final.Words)) * 4
		c.mu.Lock()
		if c.entries == nil {
			c.entries = make(map[Key]*entry)
		}
		c.entries[key] = e
		c.bytes += e.bytes
		c.touchLocked(e)
		c.evictOverBudgetLocked(e)
		c.misses++
		c.mu.Unlock()
		c.saveDisk(e)
		return e, nil
	})
	if err != nil {
		return nil, err
	}
	if waited {
		c.mu.Lock()
		c.hits++
		c.mu.Unlock()
	}
	if !simulated {
		// Served by someone else's simulation (flight wait or double-check
		// hit): this caller's image still holds the input state, so replay.
		global.Restore(e.final)
	}
	return &TimingResult{Kernel: l.Prog.Name, Key: key, Perf: e.perf.Clone(), MemHash: e.memHash, CacheHit: !simulated}, nil
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries: len(c.entries), Bytes: c.bytes, BudgetBytes: c.budget,
		Hits: c.hits, Misses: c.misses, DiskHits: c.diskHits,
		Evictions: c.evictions,
		Bypasses:  c.bypasses.Load(),
	}
}

// Reset drops every entry and zeroes the counters, keeping the configured
// byte budget (tests and long-running servers that want to release memory).
func (c *Cache) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = nil
	c.mru, c.lru = nil, nil
	c.bytes = 0
	c.hits, c.misses, c.diskHits, c.evictions = 0, 0, 0, 0
	c.bypasses.Store(0)
}

// KeyFor computes the content address of one (configuration, launch, memory)
// triple. Two calls with equal keys are guaranteed to simulate identically:
// the hash covers every timing-relevant configuration field, the full
// instruction stream, the launch geometry and parameters, and both input
// memory images word by word.
func KeyFor(cfg *config.GPU, l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) Key {
	h := sha256.New()
	var scratch [16]byte
	u64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:8], v)
		h.Write(scratch[:8])
	}
	i64 := func(v int) { u64(uint64(int64(v))) }

	ck := cfg.TimingKey()
	h.Write(ck[:])

	// Program content (the name is presentation, not timing input).
	p := l.Prog
	i64(p.NumRegs)
	i64(p.SMemBytes)
	i64(p.NumParams)
	i64(len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		binary.LittleEndian.PutUint32(scratch[:4], uint32(in.Op)|uint32(in.Dst)<<16|uint32(in.NumSrc)<<24)
		flags := byte(0)
		if in.HasDst {
			flags |= 1
		}
		if in.PredNeg {
			flags |= 2
		}
		scratch[4] = flags
		scratch[5] = byte(in.Cmp)
		scratch[6] = byte(in.Space)
		scratch[7] = 0
		binary.LittleEndian.PutUint16(scratch[8:10], uint16(in.Pred))
		binary.LittleEndian.PutUint32(scratch[10:14], uint32(in.Offset))
		h.Write(scratch[:14])
		for s := 0; s < 3; s++ {
			o := &in.Src[s]
			binary.LittleEndian.PutUint32(scratch[:4], uint32(o.Kind)|uint32(o.Reg)<<8|uint32(o.Special)<<16)
			binary.LittleEndian.PutUint32(scratch[4:8], o.Imm)
			h.Write(scratch[:8])
		}
		i64(in.Target)
		i64(in.Reconv)
	}

	// Launch geometry and arguments.
	i64(l.Grid.X)
	i64(l.Grid.Y)
	i64(l.Block.X)
	i64(l.Block.Y)
	i64(l.DynSMemBytes)
	i64(len(l.Params))
	writeWords(h, l.Params)

	// Input memory images.
	i64(global.Size())
	writeWords(h, global.Words())
	if cmem != nil {
		i64(cmem.Bytes())
		writeWords(h, cmem.Words())
	} else {
		i64(-1)
	}

	var k Key
	h.Sum(k[:0])
	return k
}

// writeWords streams a word slice into the hash through a fixed chunk
// buffer, avoiding a full byte-slice materialization of multi-megabyte
// memory images.
func writeWords(h interface{ Write(p []byte) (int, error) }, ws []uint32) {
	var buf [4096]byte
	for len(ws) > 0 {
		n := len(ws)
		if n > len(buf)/4 {
			n = len(buf) / 4
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], ws[i])
		}
		h.Write(buf[:4*n])
		ws = ws[n:]
	}
}

// hashWords fingerprints a final memory image (words plus allocation
// high-water mark) for the determinism contract.
func hashWords(ws []uint32, next uint32) [32]byte {
	h := sha256.New()
	var scratch [4]byte
	binary.LittleEndian.PutUint32(scratch[:], next)
	h.Write(scratch[:])
	writeWords(h, ws)
	var out [32]byte
	h.Sum(out[:0])
	return out
}
