package simcache

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"gpusimpow/internal/config"
)

// A fresh cache sharing a spill directory with an earlier one (a
// "restarted process") must serve the key from disk without simulating,
// bit-identically to the original run.
func TestDiskSpillAcrossCaches(t *testing.T) {
	dir := t.TempDir()
	cfg := config.GT240()

	var c1 Cache
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	l1, mem1 := testKernel(4, 8, 77)
	tr1, err := c1.Run(newSim(t, cfg), l1, mem1, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st := c1.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Fatalf("first run: %+v", st)
	}
	files, err := filepath.Glob(filepath.Join(dir, "*", "*.gob"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want 1 spilled entry, got %v (%v)", files, err)
	}

	var c2 Cache
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	l2, mem2 := testKernel(4, 8, 77)
	tr2, err := c2.Run(newSim(t, cfg), l2, mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	st := c2.Stats()
	if st.Misses != 0 || st.DiskHits != 1 || st.Hits != 1 {
		t.Fatalf("disk run: %+v", st)
	}
	if !tr2.CacheHit {
		t.Error("disk-served run should report a cache hit")
	}
	if !reflect.DeepEqual(tr1.Perf, tr2.Perf) {
		t.Error("disk replay diverged from fresh simulation")
	}
	if tr1.MemHash != tr2.MemHash {
		t.Error("final-image hash diverged")
	}
	if h1, h2 := hashWords(mem1.Words(), uint32(mem1.Size())),
		hashWords(mem2.Words(), uint32(mem2.Size())); h1 != h2 {
		t.Error("replayed memory image diverged")
	}
}

// A corrupt or truncated spill file is a miss, never an error.
func TestDiskSpillCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	cfg := config.GT240()

	var c1 Cache
	if err := c1.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	l1, mem1 := testKernel(4, 8, 78)
	if _, err := c1.Run(newSim(t, cfg), l1, mem1, nil); err != nil {
		t.Fatal(err)
	}
	files, _ := filepath.Glob(filepath.Join(dir, "*", "*.gob"))
	if len(files) != 1 {
		t.Fatalf("want 1 spilled entry, got %v", files)
	}
	if err := os.WriteFile(files[0], []byte("not a gob stream"), 0o644); err != nil {
		t.Fatal(err)
	}

	var c2 Cache
	if err := c2.SetDir(dir); err != nil {
		t.Fatal(err)
	}
	l2, mem2 := testKernel(4, 8, 78)
	tr, err := c2.Run(newSim(t, cfg), l2, mem2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if tr.CacheHit {
		t.Error("corrupt entry must re-simulate")
	}
	if st := c2.Stats(); st.Misses != 1 || st.DiskHits != 0 {
		t.Errorf("corrupt-entry run: %+v", st)
	}
}

// The spill is per-cache-directory: with no directory configured nothing
// is written.
func TestDiskSpillDisabled(t *testing.T) {
	var c Cache
	l, mem := testKernel(4, 8, 79)
	if _, err := c.Run(newSim(t, config.GT240()), l, mem, nil); err != nil {
		t.Fatal(err)
	}
	if d := c.spillDir(); d != "" {
		t.Fatalf("unexpected spill dir %q", d)
	}
}
