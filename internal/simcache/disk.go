package simcache

import (
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/debug"
	"sync"

	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

// Optional on-disk spill: when a directory is configured (SetDir or the
// GPUSIMPOW_SIM_CACHE_DIR environment variable), every simulated entry is
// also written to <dir>/<hex key>.gob, and an in-memory miss consults the
// directory before simulating. The directory thus shares timing work
// across processes — repeated daemon restarts, CI runs and CLI
// invocations replay instead of re-simulating.
//
// The spill trades only speed, never results: the determinism contract
// makes a disk replay bit-identical to a fresh simulation, so every disk
// error (corrupt file, version skew, permission problem) is silently
// treated as a miss. The memory byte budget does not govern the
// directory; evicted entries stay on disk and fault back in on demand.
// Writes are atomic (temp file + rename), so concurrent processes sharing
// a directory never observe partial entries.

// diskVersion guards the serialization format; bump it whenever the
// persisted shape (sim.Result, kernel.MemSnapshot) changes incompatibly.
// Entries with a different version are ignored — they re-simulate.
const diskVersion = 1

// generation names the subdirectory entries live under:
// v<diskVersion>-<build fingerprint>. The content key hashes the
// simulation *inputs*, not the simulator itself, so a directory shared
// across binary versions could otherwise serve timing results produced
// by an older simulator. Clean VCS-stamped builds are fingerprinted by
// their revision; everything else (go test binaries, dirty trees) falls
// back to hashing the executable itself, so any rebuild that changed
// the simulator starts a fresh generation. Only if both fail does the
// catch-all "dev" generation apply.
var generation = sync.OnceValue(func() string {
	return fmt.Sprintf("v%d-%s", diskVersion, Fingerprint())
})

// Fingerprint identifies the running build for on-disk generation dirs:
// the VCS revision for clean stamped builds, a hash of the executable for
// everything else (test binaries, dirty trees), "dev" as the catch-all.
// Shared with the service's durable job store, which has the same
// "state written by another simulator version must not be replayed
// blindly" problem this cache solved first.
var Fingerprint = sync.OnceValue(buildFingerprint)

func buildFingerprint() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		var rev string
		dirty := false
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				rev = s.Value
			case "vcs.modified":
				dirty = s.Value == "true"
			}
		}
		if len(rev) >= 12 && !dirty {
			return rev[:12]
		}
	}
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			defer f.Close()
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				return hex.EncodeToString(h.Sum(nil))[:12]
			}
		}
	}
	return "dev"
}

// diskEntry is the on-disk form of one cached timing result.
type diskEntry struct {
	Version int
	Perf    *sim.Result
	Final   kernel.MemSnapshot
	MemHash [32]byte
}

// SetDir configures the cache's spill directory (created if missing);
// an empty dir disables the spill. Applies to entries stored and looked
// up from now on — existing memory entries are not written back.
func (c *Cache) SetDir(dir string) error {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("simcache: spill dir: %w", err)
		}
	}
	c.mu.Lock()
	c.dir = dir
	c.mu.Unlock()
	return nil
}

// spillDir returns the configured directory ("" when disabled).
func (c *Cache) spillDir() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dir
}

// diskPath is the entry file for a key, inside the build's generation.
func diskPath(dir string, key Key) string {
	return filepath.Join(dir, generation(), hex.EncodeToString(key[:])+".gob")
}

// loadDisk reads a spilled entry, returning nil on any failure (a disk
// problem is just a cache miss).
func (c *Cache) loadDisk(key Key) *entry {
	dir := c.spillDir()
	if dir == "" {
		return nil
	}
	f, err := os.Open(diskPath(dir, key))
	if err != nil {
		return nil
	}
	defer f.Close()
	var de diskEntry
	if err := gob.NewDecoder(f).Decode(&de); err != nil ||
		de.Version != diskVersion || de.Perf == nil {
		return nil
	}
	e := &entry{key: key, perf: de.Perf, final: de.Final, memHash: de.MemHash}
	e.bytes = int64(len(e.final.Words)) * 4
	return e
}

// saveDisk spills an entry, atomically; failures are ignored (the memory
// entry still serves this process).
func (c *Cache) saveDisk(e *entry) {
	dir := c.spillDir()
	if dir == "" {
		return
	}
	gdir := filepath.Join(dir, generation())
	if err := os.MkdirAll(gdir, 0o755); err != nil {
		return
	}
	tmp, err := os.CreateTemp(gdir, "entry-*.tmp")
	if err != nil {
		return
	}
	de := diskEntry{Version: diskVersion, Perf: e.perf, Final: e.final, MemHash: e.memHash}
	if err := gob.NewEncoder(tmp).Encode(&de); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), diskPath(dir, e.key)); err != nil {
		os.Remove(tmp.Name())
	}
}
