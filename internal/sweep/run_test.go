package sweep

import (
	"reflect"
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/core"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/simcache"
)

// probeKernel builds a small FP kernel whose memory image folds in a seed,
// so each test owns distinct content-addressed cache keys.
func probeKernel(seed int32) (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("sweepProbe", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.I2F(1, kernel.R(0))
	b.MovI(2, 0)
	b.Label("loop")
	b.FFma(1, kernel.R(1), kernel.F(1.0002), kernel.F(0.125))
	b.IAdd(2, kernel.R(2), kernel.I(1))
	b.ISet(3, kernel.CmpLT, kernel.R(2), kernel.I(8))
	b.When(3).Bra("loop", "store")
	b.Label("store")
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(4 * 64 * 4)
	mem.Write32(out, uint32(seed))
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: 4, Y: 1},
		Block:  kernel.Dim{X: 64, Y: 1},
		Params: []uint32{out},
	}, mem
}

// probeWorkload wraps probeKernel for a given seed.
func probeWorkload(seed int32) *Workload {
	return &Workload{
		Name: "sweepProbe",
		Build: func(cfg *config.GPU) (*Instance, error) {
			l, mem := probeKernel(seed)
			return &Instance{Mem: mem, Units: []Unit{{Name: l.Prog.Name, Launch: l}}}, nil
		},
	}
}

// runSpec builds an executable 2x3 grid (timing axis x power axis) over the
// probe workload.
func runSpec(seed int32) *Spec {
	s := planSpec()
	s.Power = true
	s.Workload = func(*Cell) (*Workload, error) { return probeWorkload(seed), nil }
	return s
}

// TestRunTimingDedupCounts pins the planner's core promise at execution
// time: N power variants x one timing configuration simulate exactly once.
// The 2x3 grid (2 cluster variants x 3 process nodes) must cost exactly 2
// fresh simulations — observed on the process-wide cache counters — while
// every one of the 6 cells still gets timing and power results.
func TestRunTimingDedupCounts(t *testing.T) {
	before := simcache.Default().Stats()
	p, err := runSpec(1001).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	after := simcache.Default().Stats()

	if sims := after.Misses - before.Misses; sims != uint64(p.TimingRuns()) {
		t.Errorf("%d fresh simulations, want %d (one per timing group)", sims, p.TimingRuns())
	}
	if len(rs) != 6 {
		t.Fatalf("%d cell results, want 6", len(rs))
	}
	for _, cr := range rs {
		if cr.Units[0].Timing == nil || cr.Units[0].Power == nil {
			t.Fatalf("cell %s missing stage results", cr.Cell)
		}
	}
	// Cells of one group share the leader's timing snapshot; across groups
	// the snapshots differ.
	if rs[0].Units[0].Timing != rs[1].Units[0].Timing {
		t.Error("grouped cells should share the timing snapshot")
	}
	if rs[0].Units[0].Timing == rs[3].Units[0].Timing {
		t.Error("distinct timing groups must not share snapshots")
	}
}

// TestRunBatchedVsSequentialPower pins bit-identical batched power: every
// cell's report from the engine's EvaluatePowerBatch path equals an
// independent sequential Simulate+EvaluatePower of that cell's exact
// configuration.
func TestRunBatchedVsSequentialPower(t *testing.T) {
	p, err := runSpec(1002).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range rs {
		simr, err := core.New(cr.Cell.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		l, mem := probeKernel(1002)
		tr, err := simr.Simulate(l, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := simr.EvaluatePower(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cr.Units[0].Power, want) {
			t.Errorf("cell %s: batched power diverged from sequential evaluation", cr.Cell)
		}
		if !reflect.DeepEqual(cr.Units[0].Timing.Perf, tr.Perf) {
			t.Errorf("cell %s: shared timing snapshot diverged from direct simulation", cr.Cell)
		}
	}
}

// TestRunStreamsInPlanOrder: the stream callback sees every cell exactly
// once, in plan order, even though groups complete concurrently.
func TestRunStreamsInPlanOrder(t *testing.T) {
	p, err := runSpec(1003).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	var seen []int
	rs, err := p.Run(func(cr *CellResult) { seen = append(seen, cr.Cell.Index) })
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(rs) {
		t.Fatalf("streamed %d cells, want %d", len(seen), len(rs))
	}
	for i, idx := range seen {
		if idx != i {
			t.Fatalf("stream order %v, want ascending plan order", seen)
		}
	}
	for i, cr := range rs {
		if cr.Cell.Index != i {
			t.Errorf("result %d carries cell index %d", i, cr.Cell.Index)
		}
	}
}
