package sweep

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Scenario is a named, runnable experiment. Sweep scenarios carry their
// Spec (so front-ends can show axes and validate filters); table-style
// scenarios that are not grid sweeps register with a nil Spec.
type Scenario struct {
	Name  string
	Title string
	// Spec is the scenario's sweep specification (nil for non-sweeps).
	Spec func() *Spec
	// Reduce folds one completed run's cell records into the scenario's
	// typed Report (see report.go). Sweep-backed scenarios receive the
	// run's full record stream — the same records whether the run was
	// in-process or streamed by a daemon; table-style scenarios compute
	// from scratch and receive nil. The filter is the run's filter, so a
	// reducer can reject restrictions that would bias its aggregates.
	// Composites build their combined report here (the "ablation"
	// scenario concatenates its five studies' sections).
	Reduce func(recs []*CellRecord, f Filter) (*Report, error)
	// CheckFilter validates a filter before any sweep executes, on top of
	// the planner's axis/value validation: consulted by JobRequest.Plan
	// (so a daemon rejects the submission synchronously) and BuildReport
	// (so a local run fails before simulating). Scenarios whose
	// reductions need specific grid shapes reject here — fig6 restricts
	// filtering to whole sub-figures, energyperop needs its unfiltered
	// 31-vs-1 pairing. Nil accepts any planner-valid filter.
	CheckFilter func(f Filter) error
	// Print runs the scenario, restricted by the filter, and writes its
	// text output. Nil derives it from Reduce + RenderText (running the
	// sweep in-process when the scenario is sweep-backed); set it only
	// for output a single reduction cannot produce. At least one of
	// Print and Reduce must be set.
	Print func(w io.Writer, f Filter) error
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the process-wide registry; duplicate or
// anonymous registrations are programming errors and panic at init time.
// A scenario registered without a Print gets the default reduce-and-render
// pipeline.
func Register(sc Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if sc.Name == "" || (sc.Print == nil && sc.Reduce == nil) {
		panic("sweep: registering an incomplete scenario")
	}
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("sweep: duplicate scenario %q", sc.Name))
	}
	if sc.Print == nil {
		name := sc.Name
		sc.Print = func(w io.Writer, f Filter) error {
			rep, err := BuildReport(name, f)
			if err != nil {
				return err
			}
			return RenderText(w, rep)
		}
	}
	registry[sc.Name] = sc
}

// Scenarios returns every registered scenario, name-sorted.
func Scenarios() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	sc, ok := registry[name]
	return sc, ok
}

// BuildReport runs the named scenario in-process and reduces it to its
// typed report: for sweep-backed scenarios the plan executes (filtered)
// and its flat cell records feed the Reduce hook — exactly the records a
// daemon would have streamed, so the report is bit-identical to the one
// GET /v1/jobs/{id}/report serves for the same request.
func BuildReport(name string, f Filter) (*Report, error) {
	sc, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sweep: %w %q", ErrUnknownScenario, name)
	}
	if sc.Reduce == nil {
		return nil, fmt.Errorf("sweep: scenario %q has no reduction", name)
	}
	if sc.CheckFilter != nil {
		if err := sc.CheckFilter(f); err != nil {
			return nil, err
		}
	}
	var recs []*CellRecord
	if sc.Spec != nil {
		plan, err := sc.Spec().Plan(f)
		if err != nil {
			return nil, err
		}
		rs, err := plan.Run(nil)
		if err != nil {
			return nil, err
		}
		recs = plan.Records(rs)
	} else if len(f) > 0 {
		return nil, fmt.Errorf("sweep: scenario %q has no axes to filter", name)
	}
	return sc.Reduce(recs, f)
}

// RunScenario resolves and prints one scenario by name — the front door
// cmd/gpowexp dispatches through.
func RunScenario(w io.Writer, name string, f Filter) error {
	sc, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("sweep: unknown scenario %q (see `gpowexp list`)", name)
	}
	if len(f) > 0 && sc.Spec == nil {
		return fmt.Errorf("sweep: scenario %q has no axes to filter", name)
	}
	return sc.Print(w, f)
}
