package sweep

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Scenario is a named, runnable experiment. Sweep scenarios carry their
// Spec (so front-ends can show axes and validate filters); table-style
// scenarios that are not grid sweeps register with a nil Spec and only a
// Print. Print runs the scenario end to end and writes its report.
type Scenario struct {
	Name  string
	Title string
	// Spec is the scenario's sweep specification (nil for non-sweeps).
	Spec func() *Spec
	// Print runs the scenario, restricted by the filter, and writes the
	// report. The filter must be empty for non-sweep scenarios.
	Print func(w io.Writer, f Filter) error
}

var (
	regMu    sync.Mutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the process-wide registry; duplicate or
// anonymous registrations are programming errors and panic at init time.
func Register(sc Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	if sc.Name == "" || sc.Print == nil {
		panic("sweep: registering an incomplete scenario")
	}
	if _, dup := registry[sc.Name]; dup {
		panic(fmt.Sprintf("sweep: duplicate scenario %q", sc.Name))
	}
	registry[sc.Name] = sc
}

// Scenarios returns every registered scenario, name-sorted.
func Scenarios() []Scenario {
	regMu.Lock()
	defer regMu.Unlock()
	out := make([]Scenario, 0, len(registry))
	for _, sc := range registry {
		out = append(out, sc)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Lookup returns the named scenario.
func Lookup(name string) (Scenario, bool) {
	regMu.Lock()
	defer regMu.Unlock()
	sc, ok := registry[name]
	return sc, ok
}

// RunScenario resolves and prints one scenario by name — the front door
// cmd/gpowexp dispatches through.
func RunScenario(w io.Writer, name string, f Filter) error {
	sc, ok := Lookup(name)
	if !ok {
		return fmt.Errorf("sweep: unknown scenario %q (see `gpowexp list`)", name)
	}
	if len(f) > 0 && sc.Spec == nil {
		return fmt.Errorf("sweep: scenario %q has no axes to filter", name)
	}
	return sc.Print(w, f)
}
