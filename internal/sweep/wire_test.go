package sweep

import (
	"context"
	"encoding/json"
	"io"
	"reflect"
	"strings"
	"testing"
)

// The wire-layer scenario used by Describe tests; registered once (the
// registry panics on duplicates).
func init() {
	Register(Scenario{
		Name: "wireprobe", Title: "wire-layer probe scenario",
		Spec:  func() *Spec { return runSpec(2001) },
		Print: func(io.Writer, Filter) error { return nil },
	})
}

func TestJobRequestRoundTrip(t *testing.T) {
	in := JobRequest{
		Scenario: "fig6",
		Filter:   Filter{"gpu": {"GT240"}, "bench": {"bfs", "matrixMul"}},
		Label:    "ci-probe",
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out JobRequest
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the request: %+v -> %+v", in, out)
	}
}

func TestJobRequestPlanValidation(t *testing.T) {
	if _, err := (&JobRequest{}).Plan(); err == nil {
		t.Error("empty request should not plan")
	}
	if _, err := (&JobRequest{Scenario: "no-such-scenario"}).Plan(); err == nil {
		t.Error("unknown scenario should not plan")
	}
	bad := &JobRequest{Scenario: "wireprobe", Filter: Filter{"clusters": {"99"}}}
	if _, err := bad.Plan(); err == nil {
		t.Error("invalid filter value should not plan")
	}
	good := &JobRequest{Scenario: "wireprobe", Filter: Filter{"clusters": {"2"}}}
	p, err := good.Plan()
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 3 {
		t.Errorf("filtered plan has %d cells, want 3", len(p.Cells))
	}
}

// Records must carry coordinates, metrics and group provenance, survive a
// JSON round trip bit-identically, and share no memory with the plan.
func TestCellRecordRoundTrip(t *testing.T) {
	p, err := runSpec(2002).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := p.Run(nil)
	if err != nil {
		t.Fatal(err)
	}
	recs := p.Records(rs)
	if len(recs) != len(p.Cells) {
		t.Fatalf("%d records, want %d", len(recs), len(p.Cells))
	}
	for i, rec := range recs {
		cell := p.Cells[i]
		if rec.Index != i || rec.Scenario != p.Spec.Name {
			t.Fatalf("record %d misidentifies itself: %+v", i, rec)
		}
		if rec.CoordString() != cell.String() {
			t.Errorf("record %d coords %q, want %q", i, rec.CoordString(), cell.String())
		}
		if rec.Group != cell.Group || rec.GroupLeader != p.Groups[cell.Group].Leader().Index {
			t.Errorf("record %d group provenance %d/%d, want %d/%d",
				i, rec.Group, rec.GroupLeader, cell.Group, p.Groups[cell.Group].Leader().Index)
		}
		u := rec.Units[0]
		if u.Timing == nil || u.Power == nil {
			t.Fatalf("record %d missing stage metrics", i)
		}
		if u.Timing.Cycles == 0 || u.Power.TotalW <= 0 {
			t.Errorf("record %d carries empty metrics: %+v", i, u)
		}
		if len(u.Timing.TimingKey) != 64 || len(u.Timing.MemHash) != 64 {
			t.Errorf("record %d: want hex content key and mem hash, got %q / %q",
				i, u.Timing.TimingKey, u.Timing.MemHash)
		}

		b, err := json.Marshal(rec)
		if err != nil {
			t.Fatal(err)
		}
		var back CellRecord
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(*rec, back) {
			t.Errorf("record %d changed across the wire:\n have %+v\n want %+v", i, back, *rec)
		}
	}
	// Cells of one timing group share the timing key; across groups the
	// keys differ (cluster count is timing-relevant, process node is not).
	if recs[0].Units[0].Timing.TimingKey != recs[1].Units[0].Timing.TimingKey {
		t.Error("grouped cells should share the timing key")
	}
	if recs[0].Units[0].Timing.TimingKey == recs[3].Units[0].Timing.TimingKey {
		t.Error("distinct timing groups must not share timing keys")
	}
}

func TestDescribe(t *testing.T) {
	info, err := Describe("wireprobe")
	if err != nil {
		t.Fatal(err)
	}
	if !info.Sweep {
		t.Fatal("wireprobe should describe as a sweep")
	}
	if info.Cells != 6 || info.TimingRuns != 2 {
		t.Errorf("describe reports %d cells / %d timing runs, want 6 / 2", info.Cells, info.TimingRuns)
	}
	if info.EstCycles == 0 {
		t.Error("describe should carry a cost estimate")
	}
	wantAxes := []AxisInfo{
		{Name: "clusters", Values: []ValueInfo{{Name: "2"}, {Name: "3"}}},
		{Name: "node", Values: []ValueInfo{{Name: "40nm"}, {Name: "32nm"}, {Name: "28nm"}}},
	}
	if !reflect.DeepEqual(info.Axes, wantAxes) {
		t.Errorf("axes %+v, want %+v", info.Axes, wantAxes)
	}
	if _, err := Describe("no-such-scenario"); err == nil {
		t.Error("describing an unknown scenario should error")
	}
}

func TestCost(t *testing.T) {
	p, err := runSpec(2003).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	c, err := p.Cost()
	if err != nil {
		t.Fatal(err)
	}
	if c.Cells != 6 || c.TimingRuns != 2 || c.MeasuredCells != 0 {
		t.Errorf("cost shape %+v", c)
	}
	if c.EstCycles == 0 {
		t.Error("estimate should be positive")
	}
	var sum float64
	for _, f := range c.PerCell {
		if f <= 0 {
			t.Errorf("per-cell shares must be positive: %v", c.PerCell)
		}
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("per-cell shares sum to %v, want 1", sum)
	}
	c2, err := p.Cost()
	if err != nil || c2 != c {
		t.Error("cost should be memoized per plan")
	}
}

// Structured progress events arrive serialized, in plan order, with
// monotonically complete counters and cost fractions.
func TestProgressEvents(t *testing.T) {
	var events []Progress
	SetProgress(func(pr Progress) { events = append(events, pr) })
	defer SetProgress(nil)

	p, err := runSpec(2004).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(nil); err != nil {
		t.Fatal(err)
	}
	if len(events) != len(p.Cells) {
		t.Fatalf("%d progress events, want %d", len(events), len(p.Cells))
	}
	last := 0.0
	for i, pr := range events {
		if pr.Done != i+1 || pr.Total != len(p.Cells) || pr.TimingRuns != p.TimingRuns() {
			t.Errorf("event %d counters %+v", i, pr)
		}
		if pr.Cell == nil || pr.Cell.Index != i {
			t.Fatalf("event %d carries wrong cell: %+v", i, pr.Cell)
		}
		if pr.CostFraction <= last {
			t.Errorf("event %d cost fraction %v not increasing past %v", i, pr.CostFraction, last)
		}
		last = pr.CostFraction
	}
	if last < 0.999 || last > 1.001 {
		t.Errorf("final cost fraction %v, want 1", last)
	}
}

func TestRunContextCancel(t *testing.T) {
	p, err := runSpec(2005).Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := p.RunContext(ctx, nil); err == nil {
		t.Error("canceled context should abort the run")
	}
}

// Progress events round-trip through JSON unchanged — they are the
// payload of the service's NDJSON event stream, where a resuming client
// re-reads previously delivered lines and must see identical values.
func TestProgressRoundTrip(t *testing.T) {
	in := Progress{
		Scenario:     "wireprobe",
		Done:         3,
		Total:        5,
		TimingRuns:   2,
		CostFraction: 0.625,
		Cell: &CellRecord{
			Scenario:   "wireprobe",
			Index:      2,
			Coords:     []Coord{{Axis: "gpu", Value: "GT240"}},
			Config:     "GT240",
			Workload:   "probe",
			ClockScale: 1,
			Units:      []UnitRecord{},
		},
	}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Progress
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, out) {
		t.Errorf("round trip changed the event:\n %+v\n-> %+v", in, out)
	}
	// CostFraction is omitempty: an estimate-less event leaves the key
	// off the wire entirely.
	in.CostFraction = 0
	if b, err = json.Marshal(in); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(b), "costFraction") {
		t.Errorf("zero cost fraction serialized anyway: %s", b)
	}
}
