package sweep

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"gpusimpow/internal/core"
	"gpusimpow/internal/hw"
	"gpusimpow/internal/power"
	"gpusimpow/internal/runner"
	"gpusimpow/internal/simcache"
)

// UnitResult is one kernel launch's outcome within a cell: the stages the
// spec enabled are filled, the rest stay nil.
type UnitResult struct {
	// Unit carries the launch metadata (name, measurement policy) of the
	// unit this result belongs to.
	Unit Unit
	// Timing is the group-shared timing snapshot (Sim specs). Cells of one
	// group share the pointer; treat it as read-only.
	Timing *simcache.TimingResult
	// Power is this cell's power report for the unit (Power specs).
	Power *power.RuntimeReport
	// Meas is this cell's measurement of the unit (Measure specs).
	Meas *hw.Measurement
}

// CellResult is one cell's outcome, in unit order.
type CellResult struct {
	Cell  *Cell
	Units []UnitResult
}

// Progress is one structured cell-completion event: a wire-representable
// snapshot of how far a sweep has come, carrying the completed cell's
// record rather than pointers into plan internals. Events arrive
// serialized and in plan order.
type Progress struct {
	// Scenario is the running spec's name.
	Scenario string `json:"scenario"`
	// Done and Total count completed and planned cells.
	Done  int `json:"done"`
	Total int `json:"total"`
	// TimingRuns is the plan's timing-group count.
	TimingRuns int `json:"timingRuns"`
	// CostFraction is the cost-weighted completion fraction in (0, 1],
	// from Plan.Cost's per-cell shares; 0 when the estimate is
	// unavailable.
	CostFraction float64 `json:"costFraction,omitempty"`
	// Cell is the just-completed cell's record.
	Cell *CellRecord `json:"cell"`
}

// progressHook is an optional process-wide observer of cell completions,
// installed by front-ends (cmd/gpowexp -v) to surface sweep progress
// without threading a callback through every scenario's Print signature.
// Like Run's stream callback, it is invoked serialized and in plan order.
var progressHook atomic.Pointer[func(Progress)]

// SetProgress installs (or, with nil, removes) the process-wide progress
// observer.
func SetProgress(fn func(Progress)) {
	if fn == nil {
		progressHook.Store(nil)
		return
	}
	progressHook.Store(&fn)
}

// Run executes the plan and returns per-cell results in plan order. The
// optional stream callback receives each cell's result as soon as it — and
// every cell before it — is complete: calls are serialized and arrive in
// plan order, so a front-end can render progressively while the order stays
// deterministic. Groups fan out over internal/runner's worker pool; within
// a group the leader simulates once, every cell is priced by the batched
// power stage, and measured cells fan out again (each on its own
// deterministic card session).
func (p *Plan) Run(stream func(*CellResult)) ([]*CellResult, error) {
	return p.RunContext(context.Background(), stream)
}

// RunContext is Run with cancellation: the context is checked before every
// timing group and every per-cell assembly, so a canceled sweep stops at
// the next cell boundary and returns the context's error. Cells completed
// before cancellation have already been streamed; the returned slice is
// discarded (long-lived services keep the streamed records).
func (p *Plan) RunContext(ctx context.Context, stream func(*CellResult)) ([]*CellResult, error) {
	results := make([]*CellResult, len(p.Cells))
	emit := newEmitter(p, results, stream)

	if p.Spec.SharedCard {
		if err := p.runShared(ctx, emit); err != nil {
			return nil, err
		}
		return results, nil
	}

	err := runner.ForEach(len(p.Groups), func(gi int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		return p.runGroup(ctx, p.Groups[gi], emit)
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// emitter gates streaming so results surface in plan order even though
// groups complete out of order.
type emitter struct {
	mu      sync.Mutex
	plan    *Plan
	results []*CellResult
	stream  func(*CellResult)
	next    int

	// Cost-weighted progress, computed lazily on the first hook delivery
	// (the estimate builds workload instances, so it only runs when an
	// observer actually wants percentages).
	costTried bool
	cost      *Cost
	costDone  float64
}

func newEmitter(p *Plan, results []*CellResult, stream func(*CellResult)) *emitter {
	return &emitter{plan: p, results: results, stream: stream}
}

// done records one finished cell and streams the contiguous completed
// prefix.
func (e *emitter) done(r *CellResult) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.results[r.Cell.Index] = r
	hook := progressHook.Load()
	for e.next < len(e.results) && e.results[e.next] != nil {
		cr := e.results[e.next]
		if e.stream != nil {
			e.stream(cr)
		}
		if hook != nil {
			if !e.costTried {
				e.costTried = true
				e.cost, _ = e.plan.Cost() // best effort: nil leaves fractions 0
			}
			pr := Progress{
				Scenario:   e.plan.Spec.Name,
				Done:       e.next + 1,
				Total:      len(e.results),
				TimingRuns: len(e.plan.Groups),
				Cell:       e.plan.Record(cr),
			}
			if e.cost != nil {
				e.costDone += e.cost.PerCell[cr.Cell.Index]
				pr.CostFraction = e.costDone
			}
			(*hook)(pr)
		}
		e.next++
	}
}

// groupTiming is the shared outcome of one group's timing stage: the
// leader's simulator (its power model doubles as the leader cell's
// evaluator), the built units, and one timing snapshot per unit.
type groupTiming struct {
	simr    *core.Simulator
	units   []Unit
	timings []*simcache.TimingResult
}

// simGroupTiming runs the timing stage (and optional verification) on
// behalf of a group: its leader simulates every unit once, in order, on one
// shared memory image. All other cells of the group reuse these snapshots
// (their own simulation would replay bit-identically from the result cache
// anyway — the group saves the hashing and replay, and pins "one timing
// run per group" by construction). Both execution paths (grouped fan-out
// and the SharedCard sequential path) go through here.
func (p *Plan) simGroupTiming(leader *Cell) (*groupTiming, error) {
	s := p.Spec
	simr, err := core.New(leader.Cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %s: %w", s.Name, leader, err)
	}
	inst, err := leader.Workload.Build(leader.Cfg)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: %s: building %s: %w", s.Name, leader, leader.Workload.Name, err)
	}
	gt := &groupTiming{simr: simr, units: inst.Units}
	gt.timings = make([]*simcache.TimingResult, len(gt.units))
	for i := range gt.units {
		u := &gt.units[i]
		tr, err := simr.Simulate(u.Launch, inst.Mem, u.CMem)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: %s: simulating %s/%s: %w", s.Name, leader, leader.Workload.Name, u.Name, err)
		}
		gt.timings[i] = tr
	}
	if s.Verify && inst.Verify != nil {
		if err := inst.Verify(); err != nil {
			return nil, fmt.Errorf("sweep: %s: %s: %s failed verification: %w", s.Name, leader, leader.Workload.Name, err)
		}
	}
	return gt, nil
}

// runGroup executes one timing group: the leader's timing stage, the
// batched power stage across the group's cells, then the per-cell
// measurement fan-out.
func (p *Plan) runGroup(ctx context.Context, g *Group, emit *emitter) error {
	s := p.Spec
	leader := g.Leader()

	var gt *groupTiming
	var powerByUnit [][]*power.RuntimeReport
	if s.Sim {
		var err error
		gt, err = p.simGroupTiming(leader)
		if err != nil {
			return err
		}

		// Batched power stage: one shared timing result per unit, one power
		// evaluator per cell. The leader reuses the simulator's own model;
		// the other cells differ only in power-side parameters (that is what
		// put them in this group), so they need no timing machinery.
		if s.Power {
			evs := make([]*core.PowerEvaluator, len(g.Cells))
			evs[0] = gt.simr.PowerEvaluator()
			for ci := 1; ci < len(g.Cells); ci++ {
				ev, err := core.NewPowerEvaluator(g.Cells[ci].Cfg)
				if err != nil {
					return fmt.Errorf("sweep: %s: %s: %w", s.Name, g.Cells[ci], err)
				}
				evs[ci] = ev
			}
			powerByUnit = make([][]*power.RuntimeReport, len(gt.units))
			for i := range gt.units {
				rts, err := core.EvaluatePowerBatch(evs, gt.timings[i])
				if err != nil {
					return fmt.Errorf("sweep: %s: %s: unit %s: %w", s.Name, leader, gt.units[i].Name, err)
				}
				powerByUnit[i] = rts
			}
		}
	}

	// Per-cell assembly and measurement, fanned out when the group has
	// several cells (the DVFS pattern: one timing run, many measured
	// operating points).
	return runner.ForEach(len(g.Cells), func(ci int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		c := g.Cells[ci]
		cr := &CellResult{Cell: c}
		if gt != nil {
			for i := range gt.units {
				ur := UnitResult{Unit: gt.units[i], Timing: gt.timings[i]}
				if powerByUnit != nil {
					ur.Power = powerByUnit[i][ci]
				}
				cr.Units = append(cr.Units, ur)
			}
		}
		if s.Measure {
			if err := p.measureCell(c, nil, cr); err != nil {
				return err
			}
		}
		emit.done(cr)
		return nil
	})
}

// measureCell measures every unit of the cell on a virtual card: the cell's
// own session card unless a shared card is supplied. The cell's units come
// from a fresh instance build (measurement mutates memory images
// independently of the sim stage, exactly as a real rig re-runs the
// binary), issued as one measured sequence.
func (p *Plan) measureCell(c *Cell, card *hw.Card, cr *CellResult) error {
	s := p.Spec
	if card == nil {
		session := ""
		if s.Session != nil {
			session = s.Session(c)
		}
		var err error
		card, err = hw.NewCardSession(c.Cfg, session)
		if err != nil {
			return fmt.Errorf("sweep: %s: %s: %w", s.Name, c, err)
		}
	}
	if c.ClockScale != card.ClockScale() {
		if err := card.SetClockScale(c.ClockScale); err != nil {
			return fmt.Errorf("sweep: %s: %s: %w", s.Name, c, err)
		}
	}
	inst, err := c.Workload.Build(c.Cfg)
	if err != nil {
		return fmt.Errorf("sweep: %s: %s: building %s: %w", s.Name, c, c.Workload.Name, err)
	}
	items := make([]hw.SeqItem, len(inst.Units))
	for i := range inst.Units {
		u := &inst.Units[i]
		items[i] = hw.SeqItem{
			Launch: u.Launch, Mem: inst.Mem, CMem: u.CMem,
			Repeats: u.Repeats, MinWindowS: u.MinWindowS, GapS: u.GapS,
		}
	}
	_, ms, err := card.MeasureSequence(items)
	if err != nil {
		return fmt.Errorf("sweep: %s: %s: measuring %s: %w", s.Name, c, c.Workload.Name, err)
	}
	if len(cr.Units) == 0 {
		// Measure-only spec: the units come from the measured instance.
		cr.Units = make([]UnitResult, len(inst.Units))
		for i := range inst.Units {
			cr.Units[i].Unit = inst.Units[i]
		}
	}
	for i := range ms {
		cr.Units[i].Meas = &ms[i]
	}
	return nil
}

// runShared executes a SharedCard plan strictly sequentially: one card,
// built from the first cell's configuration, measures every cell in plan
// order, so the rig's noise stream advances exactly as the reproduced
// methodology prescribes. The timing stage still runs per group leader —
// here each cell is usually its own group — and verification/power behave
// as in the grouped path.
func (p *Plan) runShared(ctx context.Context, emit *emitter) error {
	s := p.Spec
	session := ""
	if s.Session != nil {
		session = s.Session(p.Cells[0])
	}
	card, err := hw.NewCardSession(p.Cells[0].Cfg, session)
	if err != nil {
		return fmt.Errorf("sweep: %s: %w", s.Name, err)
	}

	// Timing results are shared per group even on the sequential path; the
	// timing stage itself is the same simGroupTiming the grouped path runs,
	// lazily on the first cell of each group the plan order reaches (the
	// group's leader, since both orders derive from cell order).
	timingByGroup := map[*Group]*groupTiming{}
	groupOf := map[*Cell]*Group{}
	for _, g := range p.Groups {
		for _, c := range g.Cells {
			groupOf[c] = g
		}
	}

	for _, c := range p.Cells {
		if err := ctx.Err(); err != nil {
			return err
		}
		g := groupOf[c]
		cr := &CellResult{Cell: c}
		if s.Sim {
			gt, ok := timingByGroup[g]
			if !ok {
				var err error
				gt, err = p.simGroupTiming(c)
				if err != nil {
					return err
				}
				timingByGroup[g] = gt
			}
			for i := range gt.units {
				cr.Units = append(cr.Units, UnitResult{Unit: gt.units[i], Timing: gt.timings[i]})
			}
			if s.Power {
				ev := gt.simr.PowerEvaluator()
				if c != g.Leader() {
					var err error
					ev, err = core.NewPowerEvaluator(c.Cfg)
					if err != nil {
						return fmt.Errorf("sweep: %s: %s: %w", s.Name, c, err)
					}
				}
				for i := range cr.Units {
					rt, err := ev.EvaluatePower(cr.Units[i].Timing)
					if err != nil {
						return fmt.Errorf("sweep: %s: %s: unit %s: %w", s.Name, c, cr.Units[i].Unit.Name, err)
					}
					cr.Units[i].Power = rt
				}
			}
		}
		if s.Measure {
			if err := p.measureCell(c, card, cr); err != nil {
				return err
			}
		}
		emit.done(cr)
	}
	return nil
}
