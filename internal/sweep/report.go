package sweep

import (
	"fmt"
	"io"
)

// This file is the engine's typed reduction layer: the Reduce → Report →
// Render split. A scenario's Reduce hook folds flat cell records (the wire
// form a run produces, locally or through a daemon) into a Report — plain,
// JSON-serializable data: named sections of typed rows under labeled,
// unit-annotated columns, plus typed summary notes. One generic renderer,
// RenderText, turns any Report into the scenario's text output; nothing
// scenario-specific ever touches an io.Writer. The paper's deliverables are
// aggregates (Fig. 6 error summaries, DVFS curves, ablation deltas), and a
// Report is exactly one such aggregate: a remote client fetches it as JSON
// from the service and renders the same bytes the in-process CLI prints.
//
// Determinism contract: a Report is a pure function of the run's cell
// records (plus the deterministic virtual hardware a reducer may consult,
// e.g. the measured-static estimate Fig. 6 compares against), its field
// types survive a JSON round trip bit-exactly (float64 via shortest
// round-trip encoding, uint64 via typed decode), and section/row order is
// fixed by the reducer — so reflect.DeepEqual on a decoded remote report
// against the in-process reduction is a bitwise comparison.

// Report is one scenario's reduced outcome: ordered sections of typed rows
// and notes.
type Report struct {
	// Scenario is the registered scenario name the report reduces.
	Scenario string `json:"scenario"`
	// Sections render in order.
	Sections []Section `json:"sections"`
}

// Section is one table (or note block) of a report.
type Section struct {
	// Title prints as its own line before the table (omitted when empty).
	Title string `json:"title,omitempty"`
	// Gap prints a blank separator line before the section (sub-figure
	// breaks).
	Gap bool `json:"gap,omitempty"`
	// Indent prefixes the header and every row (not the title or notes).
	Indent string `json:"indent,omitempty"`
	// Columns describe and format the table; empty for note-only sections.
	Columns []Column `json:"columns,omitempty"`
	// Header prints the column-label row before the data rows.
	Header bool `json:"header,omitempty"`
	// Rows hold one Datum per column, in column order.
	Rows [][]Datum `json:"rows,omitempty"`
	// Notes are typed summary lines printed after the rows.
	Notes []Note `json:"notes,omitempty"`
}

// Column is one labeled, unit-annotated metric column.
type Column struct {
	// Label is the column's header text.
	Label string `json:"label"`
	// Unit is the column's unit ("W", "cycles", "mJ", "%"); informational
	// for wire consumers — rendering is governed by the formats alone.
	Unit string `json:"unit,omitempty"`
	// Format is the printf fragment rendering one data cell ("%10.2f",
	// "%-14s", "%7.1f%%"). Fragments may carry literal text; columns are
	// joined by single spaces.
	Format string `json:"format"`
	// Head is the printf fragment rendering the header cell; empty reuses
	// Format (all-string tables).
	Head string `json:"head,omitempty"`
}

// headFormat returns the header cell's format.
func (c *Column) headFormat() string {
	if c.Head != "" {
		return c.Head
	}
	return c.Format
}

// Datum is one typed value: exactly one of S (string), F (float64) or U
// (uint64) is meaningful. Pointer fields keep zero values representable
// ("f":0 is a datum; a missing key is a string datum).
type Datum struct {
	S string   `json:"s,omitempty"`
	F *float64 `json:"f,omitempty"`
	U *uint64  `json:"u,omitempty"`
}

// value returns the cell's dynamic value for printf rendering.
func (c *Datum) value() any {
	switch {
	case c.F != nil:
		return *c.F
	case c.U != nil:
		return *c.U
	default:
		return c.S
	}
}

// Str, Num and Uint build typed cells.
func Str(s string) Datum  { return Datum{S: s} }
func Num(f float64) Datum { return Datum{F: &f} }
func Uint(u uint64) Datum { return Datum{U: &u} }

// Note is one typed summary line: a printf template plus typed arguments,
// so wire consumers see the numbers, not prose with numbers baked in.
type Note struct {
	Format string  `json:"format"`
	Args   []Datum `json:"args,omitempty"`
}

// Notef builds a note.
func Notef(format string, args ...Datum) Note { return Note{Format: format, Args: args} }

// RenderText writes the report as text: per section, an optional blank
// separator, the title line, the indented header row, the indented data
// rows (cells joined by single spaces, each through its column's printf
// fragment), then the notes. Every scenario's output renders through this
// one function; the golden tests in internal/experiments pin the result
// byte-identical to the pre-split printers.
func RenderText(w io.Writer, r *Report) error {
	for si := range r.Sections {
		s := &r.Sections[si]
		if s.Gap {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if s.Title != "" {
			if _, err := fmt.Fprintln(w, s.Title); err != nil {
				return err
			}
		}
		if s.Header && len(s.Columns) > 0 {
			hdr := make([]Datum, len(s.Columns))
			for i := range s.Columns {
				hdr[i] = Str(s.Columns[i].Label)
			}
			if err := renderRow(w, s, hdr, true); err != nil {
				return err
			}
		}
		for _, row := range s.Rows {
			if err := renderRow(w, s, row, false); err != nil {
				return err
			}
		}
		for _, n := range s.Notes {
			args := make([]any, len(n.Args))
			for i := range n.Args {
				args[i] = n.Args[i].value()
			}
			if _, err := fmt.Fprintf(w, n.Format+"\n", args...); err != nil {
				return err
			}
		}
	}
	return nil
}

// renderRow prints one indented row of a section, header or data.
func renderRow(w io.Writer, s *Section, row []Datum, head bool) error {
	if len(row) != len(s.Columns) {
		return fmt.Errorf("sweep: section %q row has %d cell(s), want %d", s.Title, len(row), len(s.Columns))
	}
	if _, err := io.WriteString(w, s.Indent); err != nil {
		return err
	}
	for i := range row {
		format := s.Columns[i].Format
		if head {
			format = s.Columns[i].headFormat()
		}
		if i > 0 {
			if _, err := io.WriteString(w, " "); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, format, row[i].value()); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
