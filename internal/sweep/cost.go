package sweep

import "fmt"

// Cost is a static estimate of what executing a plan will take, for
// scheduling, admission and progress reporting — the planner's counterpart
// of Plan.TimingRuns' dedup count. Nothing here is measured: the estimate
// derives from launch geometry and program length alone, so it is cheap,
// deterministic, and available before any simulation runs.
type Cost struct {
	// Cells and TimingRuns restate the plan's shape.
	Cells      int
	TimingRuns int
	// MeasuredCells is how many cells run the measurement stage.
	MeasuredCells int
	// EstCycles is the coarse total cost in estimated issue cycles: per
	// timing group, warps × program instructions summed over the group's
	// units, counted once for the timing stage and once per measured cell
	// (a measurement replays the kernel on the virtual card). Loop trip
	// counts are invisible statically, so the estimate is a lower bound —
	// useful as a relative weight, not a wall-clock prediction.
	EstCycles uint64
	// PerCell is each cell's fractional share of EstCycles in plan order
	// (sums to 1): the weight progress reporting uses to turn "k of n
	// cells done" into a cost percentage.
	PerCell []float64
}

// Cost estimates the plan's execution cost, memoized on first use.
// Estimation builds each group leader's workload instance (pure
// construction — no simulation) to read launch geometry and program
// length.
func (p *Plan) Cost() (*Cost, error) {
	p.costOnce.Do(func() { p.cost, p.costErr = p.computeCost() })
	return p.cost, p.costErr
}

func (p *Plan) computeCost() (*Cost, error) {
	s := p.Spec
	c := &Cost{
		Cells:      len(p.Cells),
		TimingRuns: len(p.Groups),
		PerCell:    make([]float64, len(p.Cells)),
	}
	if s.Measure {
		c.MeasuredCells = len(p.Cells)
	}
	var total float64
	for _, g := range p.Groups {
		leader := g.Leader()
		inst, err := leader.Workload.Build(leader.Cfg)
		if err != nil {
			return nil, fmt.Errorf("sweep: %s: costing %s: %w", s.Name, leader, err)
		}
		var est float64
		for i := range inst.Units {
			u := &inst.Units[i]
			l := u.Launch
			// WarpsPerBlock is the simulator's own warp-formation rule, so
			// the estimate counts the warps that will actually run.
			warps := l.WarpsPerBlock() * l.Grid.Count()
			est += float64(warps * len(l.Prog.Instrs))
		}
		if est <= 0 {
			est = 1
		}
		// The timing stage runs once per group; its cost is shared evenly
		// by the cells that reuse the result. Measure-only specs (Sim
		// false) still pay it: the virtual card's true-power lookup
		// simulates the kernel through the result cache exactly once per
		// timing group, inside the group's first measurement. Each
		// measured cell then replays the kernel on its own virtual card,
		// so measurement adds one full unit of work per cell.
		if s.Sim || s.Measure {
			share := est / float64(len(g.Cells))
			for _, cell := range g.Cells {
				c.PerCell[cell.Index] += share
			}
			total += est
		}
		if s.Measure {
			for _, cell := range g.Cells {
				c.PerCell[cell.Index] += est
			}
			total += est * float64(len(g.Cells))
		}
	}
	// total is always positive: Spec.validate rejects specs with neither
	// Sim nor Measure (the only way to plan is through it), and every
	// group contributes at least est = 1.
	c.EstCycles = uint64(total)
	for i := range c.PerCell {
		c.PerCell[i] /= total
	}
	return c, nil
}
