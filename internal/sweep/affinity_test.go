package sweep

import (
	"encoding/hex"
	"errors"
	"strings"
	"testing"

	"gpusimpow/internal/config"
)

// weightedWorkload builds an instance repeating the probe kernel `units`
// times, so its static cost estimate scales linearly with units.
func weightedWorkload(name string, units int) *Workload {
	return &Workload{
		Name: name,
		Build: func(cfg *config.GPU) (*Instance, error) {
			l, mem := probeKernel(1)
			inst := &Instance{Mem: mem}
			for i := 0; i < units; i++ {
				inst.Units = append(inst.Units, Unit{Name: l.Prog.Name, Launch: l})
			}
			return inst, nil
		},
	}
}

// affinitySpec plans two timing groups split by workload name — "small"
// (1 kernel unit, first in leader order) and "big" (5 units) — so cost
// dominance and leader-order tiebreaks pull in different directions.
func affinitySpec() *Spec {
	return &Spec{
		Name: "affinityprobe",
		Axes: []Axis{
			{Name: "w", Values: []Value{{Name: "small"}, {Name: "big"}}},
		},
		Base: config.GT240,
		Workload: func(c *Cell) (*Workload, error) {
			if c.Value("w") == "big" {
				return weightedWorkload("big", 5), nil
			}
			return weightedWorkload("small", 1), nil
		},
		Sim: true,
	}
}

// The routing key names the dominant-by-cost group, not the first one.
func TestRoutingKeyPicksDominantGroup(t *testing.T) {
	p, err := affinitySpec().Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	key := p.RoutingKey()
	if !strings.HasSuffix(key, "/big") {
		t.Errorf("routing key %q, want the 5-unit group's workload suffix /big", key)
	}
	tk := p.Groups[1].Leader().Cfg.TimingKey()
	if want := hex.EncodeToString(tk[:]) + "/big"; key != want {
		t.Errorf("routing key %q, want %q", key, want)
	}
}

// The key is a pure function of the plan: replanning (and re-costing)
// never moves it, and a single-group plan keys on that group.
func TestRoutingKeyDeterministic(t *testing.T) {
	ref, err := affinitySpec().Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := ref.RoutingKey()
	for i := 0; i < 10; i++ {
		p, err := affinitySpec().Plan(nil)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.RoutingKey(); got != want {
			t.Fatalf("replan %d: routing key %q, want %q", i, got, want)
		}
	}

	f, err := ParseFilter([]string{"w=small"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := affinitySpec().Plan(f)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.RoutingKey(); !strings.HasSuffix(got, "/small") {
		t.Errorf("single-group plan keyed %q, want /small suffix", got)
	}
}

// When cost estimation fails (a workload that cannot build), the key
// falls back to the most-populous group instead of erroring.
func TestRoutingKeyFallsBackToLargestGroup(t *testing.T) {
	s := &Spec{
		Name: "affinityfallback",
		Axes: []Axis{
			{Name: "v", Values: []Value{{Name: "1"}, {Name: "2"}, {Name: "3"}}},
		},
		Base: config.GT240,
		Workload: func(c *Cell) (*Workload, error) {
			name := "b" // values 2 and 3 share a group
			if c.Value("v") == "1" {
				name = "a"
			}
			return &Workload{Name: name, Build: func(*config.GPU) (*Instance, error) {
				return nil, errors.New("unbuildable (injected)")
			}}, nil
		},
		Sim: true,
	}
	p, err := s.Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Cost(); err == nil {
		t.Fatal("cost must fail for this spec")
	}
	if key := p.RoutingKey(); !strings.HasSuffix(key, "/b") {
		t.Errorf("fallback keyed %q, want the 2-cell group's /b suffix", key)
	}
}
