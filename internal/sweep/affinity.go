package sweep

import "encoding/hex"

// RoutingKey identifies the plan's dominant timing group — the group
// carrying the largest share of the plan's estimated cost — as a stable
// string: "<hex timing key>/<workload name>". Two plans that share their
// dominant group simulate the same (deterministic-by-contract) kernel for
// the bulk of their work, so a fleet router hashing this key sends them to
// the same backend, where the simcache already holds the timing result.
//
// The key is a pure function of the plan (Cost() is static — no
// simulation), so the router and a dry-run CLI compute the same answer. A
// cost-estimation failure falls back to the most-populous group; ties on
// either measure keep the earliest group in leader order, preserving
// determinism.
func (p *Plan) RoutingKey() string {
	dominant := p.Groups[0]
	if cost, err := p.Cost(); err == nil {
		best := -1.0
		for _, g := range p.Groups {
			share := 0.0
			for _, cell := range g.Cells {
				share += cost.PerCell[cell.Index]
			}
			if share > best {
				best = share
				dominant = g
			}
		}
	} else {
		for _, g := range p.Groups {
			if len(g.Cells) > len(dominant.Cells) {
				dominant = g
			}
		}
	}
	leader := dominant.Leader()
	tk := leader.Cfg.TimingKey()
	return hex.EncodeToString(tk[:]) + "/" + leader.Workload.Name
}
