package sweep

import (
	"encoding/hex"
	"errors"
	"fmt"
	"strings"

	"gpusimpow/internal/simcache"
)

// ErrUnknownScenario marks resolution failures against the scenario
// registry, so transports can map them to "not found" without matching
// message text.
var ErrUnknownScenario = errors.New("unknown scenario")

// This file is the sweep engine's wire layer: JSON-representable,
// self-describing counterparts of the in-process types, stable enough to
// cross a process boundary. The in-process path (Spec/Plan/CellResult) is
// unchanged and stays bit-identical; the wire types are derived views.
//
//   - JobRequest names a registered scenario plus a filter: everything a
//     remote front-end needs to submit a sweep.
//   - ScenarioInfo (Describe/DescribeAll) is scenario metadata — axes,
//     values, plan size, timing runs, estimated cost — computed without
//     running any simulation.
//   - CellRecord/UnitRecord flatten one CellResult into plain values:
//     axis coordinates, per-unit timing/power/measurement metrics, and
//     cache/timing-group provenance (the content-addressed timing key and
//     the plan's group partition). Records carry only deterministic
//     quantities — cache hit/miss status is a performance artifact of
//     process state and deliberately stays out, so a local run and a
//     remote run of the same plan produce bit-identical records.

// JobRequest is the wire form of one sweep submission: a registered
// scenario name, an optional axis filter, and client options.
type JobRequest struct {
	// Scenario is the registered scenario name ("fig6", "dvfs", ...). The
	// scenario must be sweep-backed (carry a Spec); table-style printables
	// have no cells to stream.
	Scenario string `json:"scenario"`
	// Filter optionally restricts the sweep's axes, with the same
	// semantics (and validation) as the CLI's -filter flag.
	Filter Filter `json:"filter,omitempty"`
	// Label is an optional client-supplied tag echoed back in job status.
	Label string `json:"label,omitempty"`
}

// Plan resolves the request against the scenario registry and plans it:
// the one validation + planning path both the service and remote-capable
// front-ends share. Unknown scenarios, non-sweep scenarios and invalid
// filters are errors.
func (r *JobRequest) Plan() (*Plan, error) {
	if r.Scenario == "" {
		return nil, fmt.Errorf("sweep: job request without a scenario name")
	}
	sc, ok := Lookup(r.Scenario)
	if !ok {
		return nil, fmt.Errorf("sweep: %w %q", ErrUnknownScenario, r.Scenario)
	}
	if sc.Spec == nil {
		return nil, fmt.Errorf("sweep: scenario %q is not a sweep (no cells to stream)", r.Scenario)
	}
	if sc.CheckFilter != nil {
		// Scenario-specific filter constraints fail the submission here,
		// synchronously — not after the sweep has simulated (the reducers
		// re-validate as defense in depth, but a filter the reduction will
		// reject must never be admitted as a job).
		if err := sc.CheckFilter(r.Filter); err != nil {
			return nil, err
		}
	}
	return sc.Spec().Plan(r.Filter)
}

// ValueInfo is one axis value in scenario metadata.
type ValueInfo struct {
	Name  string `json:"name"`
	Label string `json:"label,omitempty"`
}

// AxisInfo is one axis in scenario metadata.
type AxisInfo struct {
	Name   string      `json:"name"`
	Values []ValueInfo `json:"values"`
}

// ScenarioInfo is the wire form of one registered scenario: identity, axes
// and the unfiltered plan's shape/cost. It is produced without executing
// any simulation (planning builds configurations; cost estimation builds
// workload instances — both are pure construction).
type ScenarioInfo struct {
	Name  string `json:"name"`
	Title string `json:"title"`
	// Sweep reports whether the scenario is sweep-backed and therefore
	// submittable as a job; table-style printables are listed with Sweep
	// false and no axes.
	Sweep bool       `json:"sweep"`
	Axes  []AxisInfo `json:"axes,omitempty"`
	// Cells and TimingRuns describe the unfiltered plan: how many grid
	// points it enumerates and how many timing simulations those points
	// deduplicate into.
	Cells      int `json:"cells,omitempty"`
	TimingRuns int `json:"timingRuns,omitempty"`
	// MeasuredCells is the number of cells the measurement stage runs on
	// (0 for sim/power-only sweeps).
	MeasuredCells int `json:"measuredCells,omitempty"`
	// EstCycles is the plan's coarse cost estimate (see Plan.Cost).
	EstCycles uint64 `json:"estCycles,omitempty"`
}

// Describe returns the named scenario's metadata. Sweep-backed scenarios
// are planned (unfiltered) so the listing can report plan size, timing-run
// dedup and estimated cost; nothing simulates.
func Describe(name string) (*ScenarioInfo, error) {
	sc, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("sweep: %w %q", ErrUnknownScenario, name)
	}
	info := &ScenarioInfo{Name: sc.Name, Title: sc.Title}
	if sc.Spec == nil {
		return info, nil
	}
	sp := sc.Spec()
	info.Sweep = true
	for _, ax := range sp.Axes {
		ai := AxisInfo{Name: ax.Name}
		for i := range ax.Values {
			v := &ax.Values[i]
			vi := ValueInfo{Name: v.Name}
			if l := v.DisplayLabel(); l != v.Name {
				vi.Label = l
			}
			ai.Values = append(ai.Values, vi)
		}
		info.Axes = append(info.Axes, ai)
	}
	plan, err := sp.Plan(nil)
	if err != nil {
		return nil, fmt.Errorf("sweep: describing %s: %w", name, err)
	}
	info.Cells = len(plan.Cells)
	info.TimingRuns = plan.TimingRuns()
	cost, err := plan.Cost()
	if err != nil {
		return nil, fmt.Errorf("sweep: describing %s: %w", name, err)
	}
	info.MeasuredCells = cost.MeasuredCells
	info.EstCycles = cost.EstCycles
	return info, nil
}

// DescribeAll returns metadata for every registered scenario, name-sorted.
func DescribeAll() ([]*ScenarioInfo, error) {
	var out []*ScenarioInfo
	for _, sc := range Scenarios() {
		info, err := Describe(sc.Name)
		if err != nil {
			return nil, err
		}
		out = append(out, info)
	}
	return out, nil
}

// CellRecord is the wire form of one cell's outcome: flat, self-describing
// and deterministic. A remote consumer reconstructs everything the
// in-process CellResult exposes except live pointers into plan internals.
type CellRecord struct {
	// Scenario is the spec name the cell belongs to.
	Scenario string `json:"scenario"`
	// Index is the cell's position in the filtered plan (stream order).
	Index int `json:"index"`
	// Coords holds one axis assignment per declared axis, in axis order.
	Coords []Coord `json:"coords"`
	// Config is the cell configuration's display name.
	Config string `json:"config"`
	// Workload is the cell's workload name.
	Workload string `json:"workload"`
	// ClockScale is the measured clock scale (1 when no axis set one).
	ClockScale float64 `json:"clockScale"`
	// Group and GroupLeader are the timing-group provenance: the index of
	// the cell's timing group (leader order) and the cell index of the
	// group's leader — the cell whose configuration ran the timing stage
	// this cell's results derive from.
	Group       int `json:"group"`
	GroupLeader int `json:"groupLeader"`
	// Units holds one record per kernel launch, in unit order.
	Units []UnitRecord `json:"units"`
}

// CoordString renders the record's coordinates ("gpu=GT240 bench=bfs"),
// mirroring Cell.String.
func (r *CellRecord) CoordString() string {
	parts := make([]string, len(r.Coords))
	for i, co := range r.Coords {
		parts[i] = co.Axis + "=" + co.Value
	}
	return strings.Join(parts, " ")
}

// UnitRecord is one kernel launch's wire outcome within a cell. Stages the
// spec did not enable stay nil.
type UnitRecord struct {
	Name string `json:"name"`
	// Repeats/MinWindowS/GapS echo the unit's measurement policy.
	Repeats    int     `json:"repeats,omitempty"`
	MinWindowS float64 `json:"minWindowS,omitempty"`
	GapS       float64 `json:"gapS,omitempty"`

	Timing *TimingRecord `json:"timing,omitempty"`
	Power  *PowerRecord  `json:"power,omitempty"`
	Meas   *MeasRecord   `json:"meas,omitempty"`
}

// TimingRecord is the wire form of the group-shared timing snapshot.
type TimingRecord struct {
	Cycles       uint64  `json:"cycles"`
	Seconds      float64 `json:"seconds"`
	WarpInstrs   uint64  `json:"warpInstrs"`
	ThreadInstrs uint64  `json:"threadInstrs"`
	// IntThreadInstrs/FPThreadInstrs/SFUThreadInstrs split ThreadInstrs by
	// execution-unit class — what the lane-differencing reduction divides
	// measured energy deltas by.
	IntThreadInstrs uint64  `json:"intThreadInstrs,omitempty"`
	FPThreadInstrs  uint64  `json:"fpThreadInstrs,omitempty"`
	SFUThreadInstrs uint64  `json:"sfuThreadInstrs,omitempty"`
	IPC             float64 `json:"ipc"`
	L1HitRate       float64 `json:"l1HitRate"`
	L2HitRate       float64 `json:"l2HitRate"`
	ConstHitRate    float64 `json:"constHitRate"`
	OccupancyPct    float64 `json:"occupancyPct"`
	// TimingKey is the hex content address the timing run is cached under
	// (empty when the simulation cache is disabled). Equal keys are the
	// engine's guarantee of bit-identical timing results — the cache
	// provenance a remote consumer can correlate across jobs.
	TimingKey string `json:"timingKey,omitempty"`
	// MemHash is the hex fingerprint of the final global-memory image, the
	// determinism contract's functional-output witness (empty when the
	// cache is disabled).
	MemHash string `json:"memHash,omitempty"`
}

// ItemRecord is one row of a power breakdown.
type ItemRecord struct {
	Name     string  `json:"name"`
	StaticW  float64 `json:"staticW"`
	DynamicW float64 `json:"dynamicW"`
}

// PowerRecord is the wire form of one cell's power report for a unit.
type PowerRecord struct {
	Seconds  float64 `json:"seconds"`
	StaticW  float64 `json:"staticW"`
	DynamicW float64 `json:"dynamicW"`
	TotalW   float64 `json:"totalW"`
	DRAMW    float64 `json:"dramW"`
	// GPU and Core are the chip-level and single-core breakdowns of the
	// paper's Table V structure.
	GPU  []ItemRecord `json:"gpu,omitempty"`
	Core []ItemRecord `json:"core,omitempty"`
}

// MeasRecord is the wire form of one unit's virtual-card measurement.
type MeasRecord struct {
	AvgPowerW     float64 `json:"avgPowerW"`
	EnergyJ       float64 `json:"energyJ"`
	WindowS       float64 `json:"windowS"`
	KernelSeconds float64 `json:"kernelSeconds"`
	ShortWindow   bool    `json:"shortWindow,omitempty"`
}

// Record flattens one cell result into its wire record. The record is a
// deep copy — it shares no memory with the plan or the result, so it can
// outlive both (the service accumulates records while the sweep runs on).
func (p *Plan) Record(cr *CellResult) *CellRecord {
	c := cr.Cell
	rec := &CellRecord{
		Scenario:    p.Spec.Name,
		Index:       c.Index,
		Coords:      append([]Coord(nil), c.Coords...),
		Config:      c.Cfg.Name,
		Workload:    c.Workload.Name,
		ClockScale:  c.ClockScale,
		Group:       c.Group,
		GroupLeader: p.Groups[c.Group].Leader().Index,
	}
	rec.Units = make([]UnitRecord, len(cr.Units))
	for i := range cr.Units {
		u := &cr.Units[i]
		ur := UnitRecord{
			Name:       u.Unit.Name,
			Repeats:    u.Unit.Repeats,
			MinWindowS: u.Unit.MinWindowS,
			GapS:       u.Unit.GapS,
		}
		if u.Timing != nil {
			perf := u.Timing.Perf
			tr := &TimingRecord{
				Cycles:          perf.Activity.Cycles,
				Seconds:         perf.Seconds,
				WarpInstrs:      perf.WarpInstrs,
				ThreadInstrs:    perf.ThreadInstrs,
				IntThreadInstrs: perf.Activity.IntThreadInstrs,
				FPThreadInstrs:  perf.Activity.FPThreadInstrs,
				SFUThreadInstrs: perf.Activity.SFUThreadInstrs,
				IPC:             perf.IPC,
				L1HitRate:       perf.L1HitRate,
				L2HitRate:       perf.L2HitRate,
				ConstHitRate:    perf.ConstHitRate,
				OccupancyPct:    perf.OccupancyPct,
			}
			if u.Timing.Key != (simcache.Key{}) {
				tr.TimingKey = hex.EncodeToString(u.Timing.Key[:])
				tr.MemHash = hex.EncodeToString(u.Timing.MemHash[:])
			}
			ur.Timing = tr
		}
		if u.Power != nil {
			pr := &PowerRecord{
				Seconds:  u.Power.Seconds,
				StaticW:  u.Power.StaticW,
				DynamicW: u.Power.DynamicW,
				TotalW:   u.Power.TotalW,
				DRAMW:    u.Power.DRAMW,
			}
			for _, it := range u.Power.GPU {
				pr.GPU = append(pr.GPU, ItemRecord{Name: it.Name, StaticW: it.StaticW, DynamicW: it.DynamicW})
			}
			for _, it := range u.Power.Core {
				pr.Core = append(pr.Core, ItemRecord{Name: it.Name, StaticW: it.StaticW, DynamicW: it.DynamicW})
			}
			ur.Power = pr
		}
		if u.Meas != nil {
			ur.Meas = &MeasRecord{
				AvgPowerW:     u.Meas.AvgPowerW,
				EnergyJ:       u.Meas.EnergyJ,
				WindowS:       u.Meas.WindowS,
				KernelSeconds: u.Meas.TrueKernelSeconds,
				ShortWindow:   u.Meas.ShortWindow,
			}
		}
		rec.Units[i] = ur
	}
	return rec
}

// Records flattens a full result slice in plan order.
func (p *Plan) Records(rs []*CellResult) []*CellRecord {
	out := make([]*CellRecord, len(rs))
	for i, cr := range rs {
		out[i] = p.Record(cr)
	}
	return out
}
