// Package sweep is the declarative grid-sweep engine behind the experiment
// suite. The paper's evaluation — Figure 6's validation grid, the DVFS
// study, the process-node and design-choice ablations, the energy-per-op
// microbenchmark — is in every case a sweep over named axes (GPUs, kernels,
// clock scales, tech nodes, power-calibration variants). Instead of each
// experiment hand-rolling nested loops, job construction and result
// plumbing, an experiment declares a Spec; the engine then
//
//   - enumerates the cartesian product of the axes in deterministic
//     row-major order (Plan), optionally restricted by a Filter,
//   - partitions the cells into timing groups by config.GPU.TimingKey() and
//     workload, so each distinct timing configuration simulates exactly
//     once per sweep (the planner's explicit counterpart of the
//     content-addressed cache in internal/simcache),
//   - executes the plan over internal/runner's worker pool: the group
//     leader runs the timing stage, every cell in the group is then priced
//     by the batched power stage (core.EvaluatePowerBatch — one shared
//     TimingResult, N power variants) and, for measured sweeps, each cell
//     is measured on its own deterministic virtual-card session,
//   - streams per-cell results in plan order (Run's stream callback) and
//     returns them in the same deterministic order.
//
// Scenario registration (registry.go) names runnable sweeps so front-ends
// like cmd/gpowexp can list, filter and run them without hard-wired
// dispatch.
package sweep

import (
	"fmt"
	"sort"
	"strings"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// Workload is a named, deterministic kernel workload. Build must return a
// fresh Instance on every call (instances are mutated by execution), derive
// everything it reads from timing-relevant configuration fields only (two
// configurations with equal timing keys must build identical instances —
// that contract is what lets the planner share one timing run across a
// group), and be safe to call concurrently.
type Workload struct {
	// Name identifies the workload; cells with equal timing keys and equal
	// workload names land in one timing group, so distinct workloads must
	// carry distinct names within a sweep.
	Name string
	// Build materializes the workload for one configuration.
	Build func(cfg *config.GPU) (*Instance, error)
}

// Instance is one materialized workload: an ordered list of kernel launches
// sharing one global-memory image (later launches see earlier results, as on
// real hardware).
type Instance struct {
	Mem   *kernel.GlobalMem
	Units []Unit
	// Verify checks the functional output after the timing stage (optional).
	Verify func() error
}

// Unit is one kernel launch of an instance, plus its measurement policy.
type Unit struct {
	Name   string
	Launch *kernel.Launch
	CMem   *kernel.ConstMem

	// Repeats caps/back-to-backs the measured executions; 0 lets MinWindowS
	// auto-size the window (see hw.SeqItem).
	Repeats int
	// MinWindowS is the minimum measurement window when Repeats is 0.
	MinWindowS float64
	// GapS is the idle gap after the kernel in a measured sequence.
	GapS float64
}

// Value is one labelled point on an axis. A value may replace the cell's
// base configuration (Base), mutate it (Mutate), and/or set the measured
// clock scale; pure-label values (all fields zero) are coordinates only,
// interpreted by the spec's Workload selector or reducer.
type Value struct {
	// Name is the filterable identity of the value ("GT240", "0.8", "28nm").
	Name string
	// Label is the display form; empty defaults to Name.
	Label string
	// Base supplies a fresh base configuration, replacing whatever earlier
	// axes built. At most one axis of a spec should carry Base values.
	Base func() *config.GPU
	// Mutate adjusts the configuration; applied after every Base, in axis
	// order.
	Mutate func(*config.GPU)
	// ClockScale sets the cell's measured clock scale (0 = inherit nominal).
	ClockScale float64
}

// DisplayLabel returns Label, defaulting to Name.
func (v *Value) DisplayLabel() string {
	if v.Label != "" {
		return v.Label
	}
	return v.Name
}

// Axis is one named dimension of a sweep.
type Axis struct {
	Name   string
	Values []Value
}

// Spec is a declarative sweep: named axes over configurations and
// workloads, plus the stages every cell runs. The zero stages are off; a
// spec enables the combination it needs (the ablations are Sim+Power, DVFS
// is Measure-only, Figure 6 is all four).
type Spec struct {
	// Name is the scenario identity ("dvfs", "fig6", ...).
	Name string
	// Title is the human description shown by listings.
	Title string

	Axes []Axis

	// Base supplies the default base configuration for cells whose axes set
	// none. Exactly one of Base or a Base-carrying axis must apply to every
	// cell.
	Base func() *config.GPU

	// Workload selects the cell's workload from its coordinates. Required.
	Workload func(c *Cell) (*Workload, error)

	// Sim runs the timing stage (through the simulation-result cache) once
	// per timing group.
	Sim bool
	// Power prices every cell's configuration against the group's shared
	// timing results (batched power evaluation). Implies Sim.
	Power bool
	// Verify checks the sim-side instance's functional output (group
	// leader's instance; replayed cells are bit-identical by the cache's
	// determinism contract).
	Verify bool
	// Measure measures every cell's units on a virtual card.
	Measure bool

	// Session derives the card-session tag for a measured cell (distinct
	// tags give sweep cells independent DAQ noise streams while keeping each
	// cell deterministic). Nil means the card's default stream.
	Session func(c *Cell) string
	// SharedCard serializes the whole sweep onto one card built from the
	// first cell's configuration: for experiments whose methodology
	// differences consecutive measurements on one physical rig (the
	// energy-per-op lane differencing), where the DAQ noise stream's order
	// dependence is part of the methodology being reproduced.
	SharedCard bool
}

// Coord is one axis assignment of a cell. Coords are part of the wire
// layer (CellRecord carries them verbatim), so the fields have stable JSON
// names.
type Coord struct {
	Axis  string `json:"axis"`
	Value string `json:"value"`
	Label string `json:"label,omitempty"`
}

// Cell is one point of the swept grid.
type Cell struct {
	// Index is the cell's position in the plan (deterministic row-major
	// order over the declared axes, after filtering).
	Index int
	// Coords holds one assignment per axis, in axis order.
	Coords []Coord
	// Cfg is the cell's configuration (fresh per cell; never shared).
	Cfg *config.GPU
	// Workload is the cell's selected workload.
	Workload *Workload
	// ClockScale is the measured clock scale (1 when no axis set one).
	ClockScale float64
	// Group is the index of the cell's timing group in Plan.Groups (leader
	// order) — the cache/timing-group provenance the wire layer reports.
	Group int
}

// Value returns the cell's value name on the named axis ("" if absent).
func (c *Cell) Value(axis string) string {
	for _, co := range c.Coords {
		if co.Axis == axis {
			return co.Value
		}
	}
	return ""
}

// Label returns the cell's display label on the named axis ("" if absent).
func (c *Cell) Label(axis string) string {
	for _, co := range c.Coords {
		if co.Axis == axis {
			return co.Label
		}
	}
	return ""
}

// String renders the cell's coordinates ("gpu=GT240 bench=bfs").
func (c *Cell) String() string {
	parts := make([]string, len(c.Coords))
	for i, co := range c.Coords {
		parts[i] = co.Axis + "=" + co.Value
	}
	return strings.Join(parts, " ")
}

// Filter restricts a plan to cells whose value name on each listed axis is
// one of the allowed names. A nil Filter admits every cell.
type Filter map[string][]string

// ParseFilter parses CLI filter arguments of the form "axis=v1,v2" into a
// Filter, merging repeated axes.
func ParseFilter(args []string) (Filter, error) {
	if len(args) == 0 {
		return nil, nil
	}
	f := Filter{}
	for _, a := range args {
		axis, vals, ok := strings.Cut(a, "=")
		if !ok || axis == "" || vals == "" {
			return nil, fmt.Errorf("sweep: malformed filter %q (want axis=value[,value])", a)
		}
		for _, v := range strings.Split(vals, ",") {
			if v == "" {
				return nil, fmt.Errorf("sweep: malformed filter %q (empty value)", a)
			}
			f[axis] = append(f[axis], v)
		}
	}
	return f, nil
}

// validate checks the filter against the spec's axes: unknown axes and
// unknown value names are errors (a typo must not silently select nothing).
// Axes are checked in sorted order so a filter with several offending axes
// reports the same one on every run (map order would pick one at random).
func (f Filter) validate(s *Spec) error {
	axes := make([]string, 0, len(f))
	for axis := range f {
		axes = append(axes, axis)
	}
	sort.Strings(axes)
	for _, axis := range axes {
		vals := f[axis]
		var ax *Axis
		for i := range s.Axes {
			if s.Axes[i].Name == axis {
				ax = &s.Axes[i]
				break
			}
		}
		if ax == nil {
			return fmt.Errorf("sweep: %s: no axis %q (have %s)", s.Name, axis, strings.Join(s.axisNames(), ", "))
		}
		for _, v := range vals {
			found := false
			for i := range ax.Values {
				if ax.Values[i].Name == v {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("sweep: %s: axis %q has no value %q", s.Name, axis, v)
			}
		}
	}
	return nil
}

// admits reports whether the filter allows value name v on the axis.
func (f Filter) admits(axis, v string) bool {
	if f == nil {
		return true
	}
	vals, ok := f[axis]
	if !ok {
		return true
	}
	for _, want := range vals {
		if want == v {
			return true
		}
	}
	return false
}

// axisNames lists the spec's axis names in order.
func (s *Spec) axisNames() []string {
	names := make([]string, len(s.Axes))
	for i := range s.Axes {
		names[i] = s.Axes[i].Name
	}
	return names
}

// validate checks spec well-formedness.
func (s *Spec) validate() error {
	if s.Name == "" {
		return fmt.Errorf("sweep: spec with no name")
	}
	if len(s.Axes) == 0 {
		return fmt.Errorf("sweep: %s: no axes", s.Name)
	}
	if s.Workload == nil {
		return fmt.Errorf("sweep: %s: no workload selector", s.Name)
	}
	if !s.Sim && !s.Measure {
		return fmt.Errorf("sweep: %s: no stages enabled", s.Name)
	}
	if s.Power && !s.Sim {
		// Power implies Sim; normalize rather than error so specs can say
		// just Power.
		s.Sim = true
	}
	seenAxis := map[string]bool{}
	for i := range s.Axes {
		ax := &s.Axes[i]
		if ax.Name == "" {
			return fmt.Errorf("sweep: %s: axis %d unnamed", s.Name, i)
		}
		if seenAxis[ax.Name] {
			return fmt.Errorf("sweep: %s: duplicate axis %q", s.Name, ax.Name)
		}
		seenAxis[ax.Name] = true
		if len(ax.Values) == 0 {
			return fmt.Errorf("sweep: %s: axis %q has no values", s.Name, ax.Name)
		}
		seenVal := map[string]bool{}
		for j := range ax.Values {
			v := &ax.Values[j]
			if v.Name == "" {
				return fmt.Errorf("sweep: %s: axis %q value %d unnamed", s.Name, ax.Name, j)
			}
			if seenVal[v.Name] {
				return fmt.Errorf("sweep: %s: axis %q duplicate value %q", s.Name, ax.Name, v.Name)
			}
			seenVal[v.Name] = true
		}
	}
	return nil
}
