package sweep

import (
	"strings"
	"testing"

	"gpusimpow/internal/config"
)

// stubWorkload returns a planning-only workload (Build is never called by
// Plan, but must be present for the spec to validate).
func stubWorkload(name string) *Workload {
	return &Workload{Name: name, Build: func(*config.GPU) (*Instance, error) {
		panic("sweep: stub workload built")
	}}
}

// planSpec builds a 2x3 spec: a timing axis (cluster count) crossed with a
// power axis (process node). The node axis is power-only, so groups form
// per cluster value.
func planSpec() *Spec {
	return &Spec{
		Name: "planprobe",
		Axes: []Axis{
			{Name: "clusters", Values: []Value{
				{Name: "2", Mutate: func(g *config.GPU) { g.Clusters = 2 }},
				{Name: "3", Mutate: func(g *config.GPU) { g.Clusters = 3 }},
			}},
			{Name: "node", Values: []Value{
				{Name: "40nm"},
				{Name: "32nm", Mutate: func(g *config.GPU) { g.ProcessNM = 32 }},
				{Name: "28nm", Mutate: func(g *config.GPU) { g.ProcessNM = 28 }},
			}},
		},
		Base:     config.GT240,
		Workload: func(*Cell) (*Workload, error) { return stubWorkload("probe"), nil },
		Sim:      true,
	}
}

// coordsOf flattens a plan's cell coordinates for comparison.
func coordsOf(p *Plan) []string {
	out := make([]string, len(p.Cells))
	for i, c := range p.Cells {
		out[i] = c.String()
	}
	return out
}

func TestPlanRowMajorOrder(t *testing.T) {
	p, err := planSpec().Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"clusters=2 node=40nm", "clusters=2 node=32nm", "clusters=2 node=28nm",
		"clusters=3 node=40nm", "clusters=3 node=32nm", "clusters=3 node=28nm",
	}
	got := coordsOf(p)
	if strings.Join(got, ";") != strings.Join(want, ";") {
		t.Errorf("cell order %v, want row-major %v", got, want)
	}
	for i, c := range p.Cells {
		if c.Index != i {
			t.Errorf("cell %d carries index %d", i, c.Index)
		}
	}
}

// TestPlanDeterministicUnderReplanning: planning is a pure function of the
// spec — repeated plans (each building fresh configs and exercising the
// group map anew) must agree on cell order, group order and group
// membership, bit for bit.
func TestPlanDeterministicUnderReplanning(t *testing.T) {
	ref, err := planSpec().Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	refCoords := coordsOf(ref)
	for trial := 0; trial < 20; trial++ {
		p, err := planSpec().Plan(nil)
		if err != nil {
			t.Fatal(err)
		}
		if strings.Join(coordsOf(p), ";") != strings.Join(refCoords, ";") {
			t.Fatalf("trial %d: cell order diverged", trial)
		}
		if len(p.Groups) != len(ref.Groups) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(p.Groups), len(ref.Groups))
		}
		for gi := range p.Groups {
			if p.Groups[gi].Leader().Index != ref.Groups[gi].Leader().Index {
				t.Fatalf("trial %d: group %d leader %d, want %d",
					trial, gi, p.Groups[gi].Leader().Index, ref.Groups[gi].Leader().Index)
			}
			if len(p.Groups[gi].Cells) != len(ref.Groups[gi].Cells) {
				t.Fatalf("trial %d: group %d size diverged", trial, gi)
			}
		}
	}
}

// TestPlanOrderFollowsDeclaredValues: shuffling the declared value order
// reorders the plan accordingly — enumeration order comes from the
// declaration, not from names or hashes.
func TestPlanOrderFollowsDeclaredValues(t *testing.T) {
	s := planSpec()
	vals := s.Axes[1].Values
	vals[0], vals[2] = vals[2], vals[0] // 28nm first, 40nm last
	p, err := s.Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Cells[0].Value("node"); got != "28nm" {
		t.Errorf("first cell node %q, want shuffled-first 28nm", got)
	}
	if got := p.Cells[2].Value("node"); got != "40nm" {
		t.Errorf("third cell node %q, want shuffled-last 40nm", got)
	}
}

// TestPlanTimingDedup: N power variants x one timing configuration plan N
// cells but one timing group; a timing-relevant axis splits groups.
func TestPlanTimingDedup(t *testing.T) {
	p, err := planSpec().Plan(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Cells) != 6 {
		t.Fatalf("%d cells, want 6", len(p.Cells))
	}
	if p.TimingRuns() != 2 {
		t.Fatalf("%d timing runs, want 2 (one per cluster variant)", p.TimingRuns())
	}
	for gi, g := range p.Groups {
		if len(g.Cells) != 3 {
			t.Errorf("group %d has %d cells, want the 3 node variants", gi, len(g.Cells))
		}
		lead := g.Leader().Value("clusters")
		for _, c := range g.Cells {
			if c.Value("clusters") != lead {
				t.Errorf("group %d mixes cluster variants", gi)
			}
		}
	}
	// Group leaders appear in cell order.
	if p.Groups[0].Leader().Index != 0 || p.Groups[1].Leader().Index != 3 {
		t.Errorf("group leaders at %d/%d, want 0/3",
			p.Groups[0].Leader().Index, p.Groups[1].Leader().Index)
	}
}

func TestPlanFilter(t *testing.T) {
	f, err := ParseFilter([]string{"node=32nm,28nm", "clusters=3"})
	if err != nil {
		t.Fatal(err)
	}
	p, err := planSpec().Plan(f)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"clusters=3 node=32nm", "clusters=3 node=28nm"}
	if strings.Join(coordsOf(p), ";") != strings.Join(want, ";") {
		t.Errorf("filtered cells %v, want %v", coordsOf(p), want)
	}
	if p.Cells[0].Index != 0 {
		t.Error("filtered plan must reindex cells from 0")
	}

	if _, err := planSpec().Plan(Filter{"nosuch": {"x"}}); err == nil {
		t.Error("unknown filter axis must error")
	}
	if _, err := planSpec().Plan(Filter{"node": {"90nm"}}); err == nil {
		t.Error("unknown filter value must error")
	}
	if _, err := ParseFilter([]string{"garbage"}); err == nil {
		t.Error("malformed filter must error")
	}
}

func TestSpecValidation(t *testing.T) {
	s := planSpec()
	s.Axes = append(s.Axes, Axis{Name: "clusters", Values: []Value{{Name: "x"}}})
	if _, err := s.Plan(nil); err == nil {
		t.Error("duplicate axis must error")
	}
	s = planSpec()
	s.Axes[0].Values = nil
	if _, err := s.Plan(nil); err == nil {
		t.Error("empty axis must error")
	}
	s = planSpec()
	s.Base = nil
	if _, err := s.Plan(nil); err == nil {
		t.Error("cell without base configuration must error")
	}
	s = planSpec()
	s.Sim, s.Measure = false, false
	if _, err := s.Plan(nil); err == nil {
		t.Error("spec with no stages must error")
	}
}
