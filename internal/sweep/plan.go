package sweep

import (
	"fmt"
	"sync"
)

// groupKey identifies a timing group: every cell whose configuration hashes
// to the same timing key and selects the same (deterministic-by-contract)
// workload simulates identically, so one timing run serves the whole group.
type groupKey struct {
	timing   [32]byte
	workload string
}

// Group is one timing-equivalence class of a plan. Cells appear in plan
// order; Cells[0] is the leader, the cell whose configuration runs the
// timing stage on behalf of the group.
type Group struct {
	// Index is the group's position in Plan.Groups (leader order).
	Index int
	Cells []*Cell
}

// Leader returns the group's timing-stage cell.
func (g *Group) Leader() *Cell { return g.Cells[0] }

// Plan is the planned execution of one sweep: the filtered cells in
// deterministic row-major order over the declared axes, partitioned into
// timing groups ordered by their leader's cell index.
type Plan struct {
	Spec   *Spec
	Cells  []*Cell
	Groups []*Group

	// Cost memoization (see cost.go); Plan pointers are shared across
	// worker goroutines, so the estimate is computed at most once.
	costOnce sync.Once
	cost     *Cost
	costErr  error
}

// TimingRuns returns how many timing simulations the plan needs — the
// number of groups, not the number of cells. A grid of N power variants
// over one timing configuration plans N cells but one timing run.
func (p *Plan) TimingRuns() int { return len(p.Groups) }

// String summarizes the plan ("dvfs: 6 cells in 1 timing group(s)").
func (p *Plan) String() string {
	return fmt.Sprintf("%s: %d cell(s) in %d timing group(s)", p.Spec.Name, len(p.Cells), len(p.Groups))
}

// Plan enumerates the spec's cartesian product, applies the filter, builds
// each cell's configuration and workload, and partitions the cells into
// timing groups. Enumeration is row-major over the axes as declared (the
// last axis varies fastest), so the plan — cell order, group membership and
// group order alike — is a pure function of the spec and filter, regardless
// of map iteration or workers.
func (s *Spec) Plan(f Filter) (*Plan, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	if err := f.validate(s); err != nil {
		return nil, err
	}

	p := &Plan{Spec: s}
	groups := map[groupKey]*Group{}
	idx := make([]int, len(s.Axes)) // odometer over axis values

	for {
		// Filter check on the current coordinate assignment.
		admitted := true
		for ai := range s.Axes {
			if !f.admits(s.Axes[ai].Name, s.Axes[ai].Values[idx[ai]].Name) {
				admitted = false
				break
			}
		}
		if admitted {
			cell, err := s.buildCell(idx)
			if err != nil {
				return nil, err
			}
			cell.Index = len(p.Cells)
			p.Cells = append(p.Cells, cell)

			gk := groupKey{timing: cell.Cfg.TimingKey(), workload: cell.Workload.Name}
			g := groups[gk]
			if g == nil {
				g = &Group{Index: len(p.Groups)}
				groups[gk] = g
				p.Groups = append(p.Groups, g) // first appearance = leader order
			}
			g.Cells = append(g.Cells, cell)
			cell.Group = g.Index
		}

		// Advance the odometer; the last axis varies fastest.
		ai := len(idx) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < len(s.Axes[ai].Values) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	if len(p.Cells) == 0 {
		return nil, fmt.Errorf("sweep: %s: filter selected no cells", s.Name)
	}
	return p, nil
}

// buildCell folds the selected axis values into one cell: base
// configuration, mutations, clock scale, then the workload selection.
func (s *Spec) buildCell(idx []int) (*Cell, error) {
	cell := &Cell{ClockScale: 1}

	// Base pass: the last Base-carrying value wins (specs declare at most
	// one Base axis, so "last" is a formality).
	base := s.Base
	cell.Coords = make([]Coord, len(s.Axes))
	for ai := range s.Axes {
		v := &s.Axes[ai].Values[idx[ai]]
		cell.Coords[ai] = Coord{Axis: s.Axes[ai].Name, Value: v.Name, Label: v.DisplayLabel()}
		if v.Base != nil {
			base = v.Base
		}
	}
	if base == nil {
		return nil, fmt.Errorf("sweep: %s: cell %v has no base configuration", s.Name, idx)
	}
	cell.Cfg = base()

	// Mutation pass, in axis order, after the base is fixed.
	for ai := range s.Axes {
		v := &s.Axes[ai].Values[idx[ai]]
		if v.Mutate != nil {
			v.Mutate(cell.Cfg)
		}
		if v.ClockScale != 0 {
			cell.ClockScale = v.ClockScale
		}
	}
	if err := cell.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("sweep: %s: cell %s: %w", s.Name, cell, err)
	}

	w, err := s.Workload(cell)
	if err != nil {
		return nil, fmt.Errorf("sweep: %s: cell %s: %w", s.Name, cell, err)
	}
	if w == nil || w.Name == "" || w.Build == nil {
		return nil, fmt.Errorf("sweep: %s: cell %s: workload selector returned an incomplete workload", s.Name, cell)
	}
	cell.Workload = w
	return cell, nil
}
