package sweep

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"reflect"
	"testing"
)

// RenderText's formatting contract: column formats for data cells, head
// formats for the label row, single-space joins, indent, gap lines, typed
// notes.
func TestRenderText(t *testing.T) {
	rep := &Report{
		Scenario: "probe",
		Sections: []Section{
			{
				Title:  "Probe table",
				Indent: "  ",
				Columns: []Column{
					{Label: "Variant", Format: "%-8s"},
					{Label: "Cycles", Unit: "cycles", Format: "%6d", Head: "%6s"},
					{Label: "Power", Unit: "W", Format: "%5.2f", Head: "%5s"},
					{Label: "Hit", Unit: "%", Format: "%4.1f%%", Head: "%5s"},
				},
				Header: true,
				Rows: [][]Datum{
					{Str("base"), Uint(1200), Num(17.5), Num(93.25)},
					{Str("nol2"), Uint(3400), Num(18), Num(0)},
				},
				Notes: []Note{Notef("best variant: %s (%.2f W)", Str("base"), Num(17.5))},
			},
			{
				Gap:   true,
				Title: "Second section",
				Notes: []Note{Notef("no arguments here")},
			},
		},
	}
	var buf bytes.Buffer
	if err := RenderText(&buf, rep); err != nil {
		t.Fatal(err)
	}
	want := "Probe table\n" +
		"  Variant  Cycles Power   Hit\n" +
		"  base       1200 17.50 93.2%\n" +
		"  nol2       3400 18.00  0.0%\n" +
		"best variant: base (17.50 W)\n" +
		"\n" +
		"Second section\n" +
		"no arguments here\n"
	if got := buf.String(); got != want {
		t.Errorf("rendered text:\n got %q\nwant %q", got, want)
	}
}

func TestRenderTextRowArityMismatch(t *testing.T) {
	rep := &Report{Sections: []Section{{
		Columns: []Column{{Label: "a", Format: "%s"}},
		Rows:    [][]Datum{{Str("x"), Str("y")}},
	}}}
	if err := RenderText(io.Discard, rep); err == nil {
		t.Error("row/column arity mismatch should error")
	}
}

// The wire contract of a Report: a JSON round trip reconstructs the exact
// value (floats via shortest round-trip encoding, uint64 via typed decode,
// empty fields omitted), so reflect.DeepEqual across the service boundary
// is a bitwise comparison.
func TestReportJSONRoundTrip(t *testing.T) {
	rep := &Report{
		Scenario: "probe",
		Sections: []Section{
			{
				Title:   "t",
				Columns: []Column{{Label: "x", Unit: "W", Format: "%7.3f", Head: "%7s"}},
				Header:  true,
				Rows:    [][]Datum{{Num(1.0 / 3.0)}, {Num(0)}, {Uint(1<<53 + 1)}},
				Notes:   []Note{Notef("n %g", Num(2.718281828459045))},
			},
			{Gap: true, Title: "only title"},
		},
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&got, rep) {
		t.Errorf("report did not survive the JSON round trip:\n got %#v\nwant %#v", &got, rep)
	}
}

// A scenario registered with only a Reduce hook gets the derived
// reduce-and-render Print; BuildReport feeds the reducer the run's records.
func TestRegisterDerivedPrint(t *testing.T) {
	Register(Scenario{
		Name: "reduceprobe", Title: "registry-derived print probe",
		Reduce: func(recs []*CellRecord, f Filter) (*Report, error) {
			return &Report{
				Scenario: "reduceprobe",
				Sections: []Section{{Notes: []Note{Notef("reduced %d record(s)", Uint(uint64(len(recs))))}}},
			}, nil
		},
	})
	var buf bytes.Buffer
	if err := RunScenario(&buf, "reduceprobe", nil); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), "reduced 0 record(s)\n"; got != want {
		t.Errorf("derived print rendered %q, want %q", got, want)
	}
	if _, err := BuildReport("no-such-scenario", nil); err == nil {
		t.Error("BuildReport on an unknown scenario should error")
	}
	if _, err := BuildReport("reduceprobe", Filter{"axis": {"v"}}); err == nil {
		t.Error("filtering a non-sweep report should error")
	}
}

// Scenario.CheckFilter gates both report building and job planning before
// any sweep executes.
func TestCheckFilterGatesEarly(t *testing.T) {
	reject := errors.New("filter rejected by scenario")
	Register(Scenario{
		Name: "checkprobe", Title: "CheckFilter probe",
		Reduce: func([]*CellRecord, Filter) (*Report, error) {
			return &Report{Scenario: "checkprobe"}, nil
		},
		CheckFilter: func(f Filter) error {
			if len(f) > 0 {
				return reject
			}
			return nil
		},
	})
	if _, err := BuildReport("checkprobe", Filter{"axis": {"v"}}); !errors.Is(err, reject) {
		t.Errorf("BuildReport bypassed CheckFilter: %v", err)
	}
	if _, err := BuildReport("checkprobe", nil); err != nil {
		t.Errorf("empty filter should pass: %v", err)
	}
	// JobRequest.Plan's submit-time gate is covered end to end by the
	// service tests (fig6/energyperop submissions).
}
