package service

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gpusimpow/internal/config"
	_ "gpusimpow/internal/experiments" // registers every scenario
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// blockGate makes svcblock's workload builds block while armed — giving
// the cancel test a job that is deterministically "running" for as long
// as it needs. Unarmed (everywhere else: DescribeAll's cost estimation,
// other tests) builds return instantly. Re-armable, so the package is
// safe under -count=N.
var (
	blockBuilds atomic.Int32
	blockGate   struct {
		mu sync.Mutex
		ch chan struct{}
	}
)

// blockArm installs a fresh gate; blockWait blocks on it (counting the
// waiter first); blockOpen releases it, idempotently.
func blockArm() {
	blockGate.mu.Lock()
	blockGate.ch = make(chan struct{})
	blockGate.mu.Unlock()
}

func blockWait() {
	blockGate.mu.Lock()
	ch := blockGate.ch
	blockGate.mu.Unlock()
	if ch != nil {
		blockBuilds.Add(1)
		<-ch
	}
}

func blockOpen() {
	blockGate.mu.Lock()
	if blockGate.ch != nil {
		close(blockGate.ch)
		blockGate.ch = nil
	}
	blockGate.mu.Unlock()
}

func blockKernel() (*kernel.Launch, *kernel.GlobalMem) {
	b := kernel.NewBuilder("svcblock", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.I2F(1, kernel.R(0))
	b.FAdd(1, kernel.R(1), kernel.F(0.5))
	b.LdParam(4, 0)
	b.IShl(5, kernel.R(0), kernel.I(2))
	b.IAdd(4, kernel.R(4), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(1), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.AllocZeroF32(64)
	return &kernel.Launch{
		Prog:   prog,
		Grid:   kernel.Dim{X: 1, Y: 1},
		Block:  kernel.Dim{X: 64, Y: 1},
		Params: []uint32{out},
	}, mem
}

func init() {
	spec := func() *sweep.Spec {
		return &sweep.Spec{
			Name:  "svcblock",
			Title: "service-test blocking scenario",
			Axes:  []sweep.Axis{{Name: "v", Values: []sweep.Value{{Name: "only"}}}},
			Base:  config.GT240,
			Workload: func(*sweep.Cell) (*sweep.Workload, error) {
				return &sweep.Workload{Name: "svcblock", Build: func(*config.GPU) (*sweep.Instance, error) {
					blockWait()
					l, mem := blockKernel()
					return &sweep.Instance{Mem: mem, Units: []sweep.Unit{{Name: l.Prog.Name, Launch: l}}}, nil
				}}, nil
			},
			Sim: true,
		}
	}
	sweep.Register(sweep.Scenario{
		Name: "svcblock", Title: "service-test blocking scenario",
		Spec:  spec,
		Print: func(io.Writer, sweep.Filter) error { return nil },
	})
}

// waitState polls a job until it reaches a terminal state.
func waitState(t *testing.T, j *Job, want JobState) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := j.Status()
		if st.State == want {
			return st
		}
		if st.State.terminal() || time.Now().After(deadline) {
			t.Fatalf("job %s reached %s (%s), want %s", st.ID, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The admission policy is a pure function; exercise every branch without
// staging real load.
func TestAdmissionPolicy(t *testing.T) {
	opts := (&Options{MaxQueued: 2, CachePressure: 0.9}).withDefaults()
	noBudget := simcache.Stats{Bytes: 1 << 30}
	if err := admissionError(noBudget, 0, 0, 0, opts); err != nil {
		t.Errorf("unbounded cache should admit: %v", err)
	}
	if err := admissionError(noBudget, 2, 0, 0, opts); err == nil {
		t.Error("full queue should reject")
	}
	pressured := simcache.Stats{BudgetBytes: 100, Bytes: 95, Evictions: 7}
	if err := admissionError(pressured, 0, 1, 7, opts); err != nil {
		t.Errorf("steady evictions should admit: %v", err)
	}
	if err := admissionError(pressured, 0, 1, 3, opts); err == nil {
		t.Error("near-budget cache with rising evictions under load should reject")
	}
	if err := admissionError(pressured, 1, 0, 3, opts); err == nil {
		t.Error("queued load counts as load for the pressure check")
	}
	if err := admissionError(pressured, 0, 0, 3, opts); err != nil {
		t.Errorf("an idle daemon should admit despite leftover eviction history: %v", err)
	}
	cold := simcache.Stats{BudgetBytes: 100, Bytes: 10, Evictions: 7}
	if err := admissionError(cold, 0, 1, 3, opts); err != nil {
		t.Errorf("low occupancy should admit despite evictions: %v", err)
	}
}

// One job end to end over HTTP: scenario metadata, submission, the NDJSON
// stream (plan order), status, error paths.
func TestServiceEndToEnd(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 2, MaxQueued: 8})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	infos, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*sweep.ScenarioInfo{}
	for _, in := range infos {
		byName[in.Name] = in
	}
	if in := byName["l1sched"]; in == nil || !in.Sweep || in.Cells != 12 || in.TimingRuns != 12 {
		t.Errorf("l1sched metadata wrong: %+v", byName["l1sched"])
	}
	if in := byName["table2"]; in == nil || in.Sweep {
		t.Errorf("table2 should list as a non-sweep: %+v", byName["table2"])
	}

	// Error paths: unknown scenario 404, non-sweep 400, malformed filter 400.
	if _, err := c.Submit(ctx, sweep.JobRequest{Scenario: "nope"}); err == nil ||
		!strings.Contains(err.Error(), "404") {
		t.Errorf("unknown scenario: %v", err)
	}
	if _, err := c.Submit(ctx, sweep.JobRequest{Scenario: "table2"}); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("non-sweep scenario: %v", err)
	}
	if _, err := c.Submit(ctx, sweep.JobRequest{
		Scenario: "ablation-processnode", Filter: sweep.Filter{"variant": {"9nm"}},
	}); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("bad filter: %v", err)
	}
	if _, err := c.Job(ctx, "job-999"); err == nil {
		t.Error("unknown job should 404")
	}

	// A real job: the cheapest sweep scenario.
	st, err := c.Submit(ctx, sweep.JobRequest{Scenario: "ablation-processnode", Label: "e2e"})
	if err != nil {
		t.Fatal(err)
	}
	if st.Cells != 5 || st.TimingRuns != 1 || st.Label != "e2e" {
		t.Errorf("submit status %+v", st)
	}
	var recs []*sweep.CellRecord
	if err := c.StreamCells(ctx, st.ID, func(r *sweep.CellRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("streamed %d records, want 5", len(recs))
	}
	plan, err := (&sweep.JobRequest{Scenario: "ablation-processnode"}).Plan()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Index != i {
			t.Fatalf("stream order broken: record %d carries index %d", i, r.Index)
		}
		if want := plan.Cells[i].String(); r.CoordString() != want {
			t.Errorf("record %d coords %q, want plan order %q", i, r.CoordString(), want)
		}
	}
	final, err := c.Job(ctx, st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.DoneCells != 5 || final.CostFraction != 1 || final.EstCycles == 0 {
		t.Errorf("final status %+v", final)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) == 0 || jobs[len(jobs)-1].ID != st.ID {
		t.Errorf("job listing missing the job: %+v", jobs)
	}
}

// Cancel semantics: a queued job cancels before start; a running job
// stops at the next cell boundary and reports canceled.
func TestCancelQueuedAndRunning(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 1})
	defer m.Close()
	blockArm()
	defer blockOpen()
	builds := blockBuilds.Load()

	running, err := m.Submit(sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	// Wait until the single worker is actually blocked inside svcblock's
	// build, so cancellation precedes the executor's next context check.
	deadline := time.Now().Add(30 * time.Second)
	for blockBuilds.Load() == builds {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the blocking build")
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != StateQueued {
		t.Fatalf("second job should queue behind the blocked worker, is %s", st.State)
	}
	if err := m.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if st := queued.Status(); st.State != StateCanceled {
		t.Errorf("queued job after cancel: %+v", st)
	}
	if rec, state, _ := queued.WaitCell(context.Background(), 0); rec != nil || state != StateCanceled {
		t.Errorf("canceled job's stream should terminate empty (%v, %s)", rec, state)
	}
	// Canceling freed the queue slot immediately: with MaxQueued=1 and the
	// worker still blocked, a fresh submission must be admitted (and a
	// second one rejected).
	queued2, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatalf("cancel should free the queue slot: %v", err)
	}
	if _, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"}); err == nil {
		t.Error("full queue should reject while the worker is blocked")
	}
	if err := m.Cancel(queued2.ID()); err != nil {
		t.Fatal(err)
	}

	// Cancel the running job, then release the build: the executor's next
	// context check stops the sweep.
	if err := m.Cancel(running.ID()); err != nil {
		t.Fatal(err)
	}
	blockOpen()
	st := waitState(t, running, StateCanceled)
	if st.Error == "" {
		t.Error("canceled running job should carry an error")
	}
}

// The submit handler must reject unknown fields rather than silently
// dropping a misspelled filter.
func TestSubmitUnknownField(t *testing.T) {
	m := NewManager(Options{})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	resp, err := srv.Client().Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"scenario":"dvfs","fliter":{"scale":["0.5"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		body, _ := io.ReadAll(resp.Body)
		t.Errorf("unknown field accepted: %d %s", resp.StatusCode, body)
	}
	var env map[string]string
	_ = json.NewDecoder(resp.Body).Decode(&env)
}
