package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"

	"gpusimpow/internal/sweep"
)

// NewServer wraps a Manager in the service's HTTP API:
//
//	GET    /v1/healthz          liveness: 200 while serving, 503 draining
//	GET    /v1/scenarios        scenario metadata (sweep.ScenarioInfo list)
//	POST   /v1/jobs             submit a sweep.JobRequest -> 202 + JobStatus
//	GET    /v1/jobs             every job's status, creation order
//	GET    /v1/jobs/{id}        one job's status
//	DELETE /v1/jobs/{id}        cancel (idempotent) -> JobStatus
//	GET    /v1/jobs/{id}/cells  NDJSON stream of CellRecords in plan order
//	GET    /v1/jobs/{id}/events NDJSON stream of Progress events in plan order
//	GET    /v1/jobs/{id}/report the scenario's reduced sweep.Report (JSON)
//
// Submissions may carry an Idempotency-Key header: retrying the same key
// returns the already-created job (200 instead of 202) rather than a
// duplicate, which is what makes client-side retries of lost responses
// safe. Admission rejections are 429 with a Retry-After; a draining
// daemon answers 503 with a Retry-After.
//
// The cells and events streams follow a running job live: each line is one
// sweep.CellRecord (resp. sweep.Progress, which embeds the completed
// cell's record plus done/total counters and the cost-weighted completion
// fraction), flushed as the cell completes, always in plan order. A
// ?from=N query skips the first N lines — the resumption handle a client
// that lost its connection after N lines replays from, exact because
// records are placed by plan index. If the job fails or is canceled
// mid-stream, a final {"error": "..."} line terminates the stream.
//
// The report endpoint reduces the finished job's records server-side
// through the scenario registry's Reduce hook: 409 while the job is still
// queued/running, 404 for scenarios without a reduction. The JSON is the
// same typed Report the in-process CLI reduces, DeepEqual across the wire.
func NewServer(m *Manager) http.Handler {
	s := &server{m: m}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/healthz", s.healthz)
	mux.HandleFunc("GET /v1/scenarios", s.scenarios)
	mux.HandleFunc("POST /v1/jobs", s.submit)
	mux.HandleFunc("GET /v1/jobs", s.listJobs)
	mux.HandleFunc("GET /v1/jobs/{id}", s.jobStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.cancelJob)
	mux.HandleFunc("GET /v1/jobs/{id}/cells", s.jobCells)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.jobEvents)
	mux.HandleFunc("GET /v1/jobs/{id}/report", s.jobReport)
	return mux
}

type server struct {
	m *Manager

	// Scenario metadata is static after init (the registry only grows at
	// package init time), so describe once.
	scenOnce sync.Once
	scenInfo []*sweep.ScenarioInfo
	scenErr  error
}

// writeJSON writes one JSON response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError writes the service's error envelope. Backpressure codes
// (429 saturated, 503 draining) carry a Retry-After the client honors.
func writeError(w http.ResponseWriter, code int, err error) {
	if code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *server) healthz(w http.ResponseWriter, r *http.Request) {
	if faultpoint(FaultBlackholeProbe) {
		// Hang until the prober gives up — a hung (not refused) health
		// check, the slow-failure mode circuit breakers exist for.
		<-r.Context().Done()
		return
	}
	hi, ok := s.m.HealthInfo()
	code := http.StatusOK
	if !ok {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, hi)
}

func (s *server) scenarios(w http.ResponseWriter, r *http.Request) {
	s.scenOnce.Do(func() { s.scenInfo, s.scenErr = sweep.DescribeAll() })
	if s.scenErr != nil {
		writeError(w, http.StatusInternalServerError, s.scenErr)
		return
	}
	writeJSON(w, http.StatusOK, s.scenInfo)
}

func (s *server) submit(w http.ResponseWriter, r *http.Request) {
	var req sweep.JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding job request: %w", err))
		return
	}
	j, replayed, err := s.m.SubmitIdempotent(req, r.Header.Get("Idempotency-Key"))
	if err != nil {
		code := http.StatusBadRequest
		var busy ErrBusy
		switch {
		case errors.As(err, &busy):
			code = http.StatusTooManyRequests
		case errors.Is(err, ErrDraining):
			code = http.StatusServiceUnavailable
		case errors.Is(err, sweep.ErrUnknownScenario):
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	if replayed {
		// The key already named a submission (a retry of a response the
		// client never saw): acknowledge the existing job, don't duplicate.
		writeJSON(w, http.StatusOK, j.Status())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Status())
}

func (s *server) listJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.m.Statuses())
}

func (s *server) job(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	j, ok := s.m.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("no job %q", id))
		return nil, false
	}
	return j, true
}

func (s *server) jobStatus(w http.ResponseWriter, r *http.Request) {
	if j, ok := s.job(w, r); ok {
		writeJSON(w, http.StatusOK, j.Status())
	}
}

func (s *server) cancelJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	_ = s.m.Cancel(j.ID())
	writeJSON(w, http.StatusOK, j.Status())
}

func (s *server) jobCells(w http.ResponseWriter, r *http.Request) {
	s.streamJob(w, r, func(j *Job, i int) (any, JobState, string) {
		rec, state, errMsg := j.WaitCell(r.Context(), i)
		if rec == nil {
			return nil, state, errMsg
		}
		return rec, state, ""
	})
}

func (s *server) jobEvents(w http.ResponseWriter, r *http.Request) {
	s.streamJob(w, r, func(j *Job, i int) (any, JobState, string) {
		pr, state, errMsg := j.WaitEvent(r.Context(), i)
		if pr == nil {
			return nil, state, errMsg
		}
		return pr, state, ""
	})
}

// streamJob drives one NDJSON stream over a job: next(j, i) blocks for the
// i-th line's payload (nil once the stream is exhausted or the context
// dies), and a failed/canceled job terminates the stream with an
// {"error": ...} line. ?from=N starts at line N, serving resumption.
func (s *server) streamJob(w http.ResponseWriter, r *http.Request, next func(*Job, int) (any, JobState, string)) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("invalid from=%q", v))
			return
		}
		from = n
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		// Push the headers out before blocking on the first cell: clients
		// (and response-header timeouts in proxies) must see "connected,
		// streaming", not silence, while the sweep simulates.
		flusher.Flush()
	}
	enc := json.NewEncoder(w)
	for i := from; ; i++ {
		line, state, errMsg := next(j, i)
		if line == nil {
			if state == StateFailed || state == StateCanceled {
				_ = enc.Encode(map[string]string{"error": errMsg})
			}
			return
		}
		if err := enc.Encode(line); err != nil {
			return // client went away
		}
		if flusher != nil {
			flusher.Flush()
		}
		if faultpoint(FaultDropConnectionMidStream) {
			// Sever the connection abruptly (no terminating error line, no
			// clean EOF semantics) — the torn-socket case stream resumption
			// exists for.
			panic(http.ErrAbortHandler)
		}
	}
}

func (s *server) jobReport(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(w, r)
	if !ok {
		return
	}
	rep, err := j.Report()
	if err != nil {
		code := http.StatusUnprocessableEntity // reducer rejected the records
		var notReady ErrNotReady
		var gone ErrGone
		switch {
		case errors.As(err, &notReady):
			code = http.StatusConflict
		case errors.As(err, &gone):
			code = http.StatusGone
		case errors.Is(err, ErrNoReduction):
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
