package service

import (
	"context"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"gpusimpow/internal/config"
	"gpusimpow/internal/sweep"
)

func init() {
	// svcredfail completes as a job but its reducer always rejects — the
	// 422 path (a reducer rejecting records it cannot aggregate).
	sweep.Register(sweep.Scenario{
		Name: "svcredfail", Title: "service-test reducer-rejection scenario",
		Spec: func() *sweep.Spec {
			return &sweep.Spec{
				Name:  "svcredfail",
				Title: "service-test reducer-rejection scenario",
				Axes:  []sweep.Axis{{Name: "v", Values: []sweep.Value{{Name: "only"}}}},
				Base:  config.GT240,
				Workload: func(*sweep.Cell) (*sweep.Workload, error) {
					return &sweep.Workload{Name: "svcredfail", Build: func(*config.GPU) (*sweep.Instance, error) {
						l, mem := blockKernel()
						return &sweep.Instance{Mem: mem, Units: []sweep.Unit{{Name: l.Prog.Name, Launch: l}}}, nil
					}}, nil
				},
				Sim: true,
			}
		},
		Reduce: func([]*sweep.CellRecord, sweep.Filter) (*sweep.Report, error) {
			return nil, fmt.Errorf("svcredfail: reduction always rejects")
		},
	})
}

// runToDone submits a request and blocks until the job terminates.
func runToDone(t *testing.T, m *Manager, req sweep.JobRequest) *Job {
	t.Helper()
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	return waitDone(t, j)
}

func waitDone(t *testing.T, j *Job) *Job {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for !j.Status().State.terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s never terminated", j.ID())
		}
		time.Sleep(5 * time.Millisecond)
	}
	return j
}

// The events stream: one Progress per cell in plan order, done counters
// incrementing, cost fractions nondecreasing and ending at ~1, each event
// embedding the same record the cells stream carries.
func TestJobEventsStream(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 4})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	st, err := c.Submit(ctx, sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	var events []*sweep.Progress
	if err := c.StreamEvents(ctx, st.ID, func(pr *sweep.Progress) error {
		events = append(events, pr)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(events) != 5 {
		t.Fatalf("streamed %d events, want 5", len(events))
	}
	prevFrac := 0.0
	for i, pr := range events {
		if pr.Done != i+1 || pr.Total != 5 || pr.TimingRuns != 1 || pr.Scenario != "ablation-processnode" {
			t.Errorf("event %d: %+v", i, pr)
		}
		if pr.Cell == nil || pr.Cell.Index != i {
			t.Errorf("event %d embeds cell %+v", i, pr.Cell)
		}
		if pr.CostFraction < prevFrac {
			t.Errorf("event %d: cost fraction regressed %g -> %g", i, prevFrac, pr.CostFraction)
		}
		prevFrac = pr.CostFraction
	}
	if prevFrac < 0.999 || prevFrac > 1.000001 {
		t.Errorf("final cost fraction %g, want ~1", prevFrac)
	}

	// The embedded records are the cells stream's records, verbatim.
	var recs []*sweep.CellRecord
	if err := c.StreamCells(ctx, st.ID, func(r *sweep.CellRecord) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range recs {
		if !reflect.DeepEqual(events[i].Cell, recs[i]) {
			t.Errorf("event %d cell diverges from cells stream", i)
		}
	}

	// A canceled job's events stream terminates with the error line.
	blockArm()
	defer blockOpen()
	bst, err := c.Submit(ctx, sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, bst.ID); err != nil {
		t.Fatal(err)
	}
	blockOpen()
	if err := c.StreamEvents(ctx, bst.ID, func(*sweep.Progress) error { return nil }); err == nil {
		t.Error("canceled job's events stream should surface the terminal error")
	}
}

// The report endpoint: 409 while unfinished, the reduced report once done,
// 404 for scenarios without a reduction, 422 when the reducer rejects.
func TestJobReportEndpoint(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 4})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	// Unfinished job: 409.
	blockArm()
	defer blockOpen()
	bst, err := c.Submit(ctx, sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + bst.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("report on a running job: HTTP %d, want 409", resp.StatusCode)
	}
	blockOpen()
	bj, _ := m.Job(bst.ID)
	waitDone(t, bj)

	// svcblock has no Reduce hook: 404 once done.
	resp, err = srv.Client().Get(srv.URL + "/v1/jobs/" + bst.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("report without a reduction: HTTP %d, want 404", resp.StatusCode)
	}

	// A finished dvfs job serves the same report the in-process reduction
	// builds for the same request — DeepEqual across the JSON hop.
	req := sweep.JobRequest{Scenario: "dvfs", Filter: sweep.Filter{"scale": {"0.5", "1.0"}}}
	j := runToDone(t, m, req)
	if st := j.Status(); st.State != StateDone {
		t.Fatalf("dvfs job ended %s: %s", st.State, st.Error)
	}
	got, err := c.Report(ctx, j.ID())
	if err != nil {
		t.Fatal(err)
	}
	want, err := sweep.BuildReport("dvfs", req.Filter)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("remote report diverged:\n got %+v\nwant %+v", got, want)
	}

	// A job whose reducer rejects its records: 422.
	pj := runToDone(t, m, sweep.JobRequest{Scenario: "svcredfail"})
	if st := pj.Status(); st.State != StateDone {
		t.Fatalf("svcredfail job ended %s: %s", st.State, st.Error)
	}
	resp, err = srv.Client().Get(srv.URL + "/v1/jobs/" + pj.ID() + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("reducer rejection: HTTP %d, want 422", resp.StatusCode)
	}

	// A canceled job is permanently reportless: 410, not a retryable 409.
	blockArm()
	cst, err := c.Submit(ctx, sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Cancel(ctx, cst.ID); err != nil {
		t.Fatal(err)
	}
	blockOpen()
	cj, ok := m.Job(cst.ID)
	if !ok {
		t.Fatal("canceled job vanished")
	}
	waitDone(t, cj)
	resp, err = srv.Client().Get(srv.URL + "/v1/jobs/" + cst.ID + "/report")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("report on a canceled job: HTTP %d, want 410", resp.StatusCode)
	}

	// Scenario-specific filter constraints fail at submit time — a filter
	// the reduction would reject must never become a job.
	if _, err := c.Submit(ctx, sweep.JobRequest{
		Scenario: "energyperop", Filter: sweep.Filter{"lanes": {"31"}},
	}); err == nil || !strings.Contains(err.Error(), "full grid") {
		t.Errorf("filtered energyperop should be rejected at submit: %v", err)
	}
	if _, err := c.Submit(ctx, sweep.JobRequest{
		Scenario: "fig6", Filter: sweep.Filter{"bench": {"bfs"}},
	}); err == nil || !strings.Contains(err.Error(), "gpu only") {
		t.Errorf("bench-filtered fig6 should be rejected at submit: %v", err)
	}
}

// Retention: terminal jobs beyond RetainJobs leave the table (newest
// kept), age-based pruning sheds stale jobs, live jobs always stay.
func TestJobRetention(t *testing.T) {
	// Two workers: the blocking svcblock job must not starve the terminal
	// jobs submitted while it runs.
	m := NewManager(Options{MaxConcurrent: 2, MaxQueued: 8, RetainJobs: 1})
	defer m.Close()

	first := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode"})
	second := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode", Label: "second"})
	third := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode", Label: "third"})

	sts := m.Statuses()
	if len(sts) != 1 || sts[0].ID != third.ID() {
		t.Fatalf("retention kept %+v, want only %s", sts, third.ID())
	}
	for _, id := range []string{first.ID(), second.ID()} {
		if _, ok := m.Job(id); ok {
			t.Errorf("pruned job %s still resolvable", id)
		}
	}
	if _, ok := m.Job(third.ID()); !ok {
		t.Error("newest terminal job should survive retention")
	}

	// A running job is never pruned, no matter how many terminals follow.
	blockArm()
	defer blockOpen()
	running, err := m.Submit(sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	done := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode"})
	if _, ok := m.Job(running.ID()); !ok {
		t.Error("running job pruned")
	}
	if _, ok := m.Job(done.ID()); !ok {
		t.Error("newest terminal job pruned")
	}
	blockOpen()
	waitDone(t, running)
}

// Age-based retention prunes on the next activity (here: a submission).
func TestJobRetentionByAge(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 8, RetainAge: time.Nanosecond})
	defer m.Close()
	old := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode"})
	time.Sleep(10 * time.Millisecond)
	fresh := runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode"})
	if _, ok := m.Job(old.ID()); ok {
		t.Error("stale terminal job survived age-based retention")
	}
	_ = fresh
}

// The EWMA calibration: pure arithmetic, then the integration — a
// completed job feeds the model, and a later running job's ETA scales
// remaining cost units by it.
func TestEtaModel(t *testing.T) {
	var e etaModel
	if _, ok := e.estimate(100); ok {
		t.Error("empty model should not estimate")
	}
	e.observe(0, 1) // ignored: no units
	e.observe(100, 2)
	if got, ok := e.estimate(50); !ok || math.Abs(got-1.0) > 1e-12 {
		t.Errorf("first sample should set the rate exactly: got %g (ok=%v), want 1", got, ok)
	}
	e.observe(100, 4) // rate sample 0.04; ewma = 0.2*0.04 + 0.8*0.02 = 0.024
	if got, _ := e.estimate(1000); math.Abs(got-24.0) > 1e-9 {
		t.Errorf("ewma estimate %g, want 24", got)
	}
}

func TestEtaCalibrationFeedsStatuses(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, MaxQueued: 4})
	defer m.Close()
	runToDone(t, m, sweep.JobRequest{Scenario: "ablation-processnode"})
	if m.eta.observations() == 0 {
		t.Fatal("completed job fed no calibration samples")
	}
	// A second job's status can carry a calibrated ETA as soon as its cost
	// is known, even at zero progress: synthesize the state rather than
	// racing a live sweep.
	j, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j)
	j.mu.Lock()
	j.state = StateRunning
	j.costDone = 0.5
	j.started = time.Now().Add(-time.Hour)
	j.mu.Unlock()
	st := j.Status()
	remaining := 0.5 * float64(st.EstCycles)
	want, ok := m.eta.estimate(remaining)
	if !ok || math.Abs(st.ETASeconds-want) > 1e-9 {
		t.Errorf("status ETA %g, want calibrated %g (ok=%v)", st.ETASeconds, want, ok)
	}
	j.mu.Lock()
	j.state = StateDone
	j.mu.Unlock()
}
