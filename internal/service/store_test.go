package service

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// storeDir returns the generation directory a state dir resolves to.
func storeDir(stateDir string) string {
	s, err := openStore(stateDir)
	if err != nil {
		panic(err)
	}
	defer s.close()
	return s.dir
}

// testRecord fabricates one minimal cell record at index i.
func testRecord(i int) *sweep.CellRecord {
	return &sweep.CellRecord{Index: i, Scenario: "svcblock", Config: "GT240"}
}

// The journal round-trips: submissions, transitions and cell records
// written by one store instance are recovered by the next, in order.
func TestStoreJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	req := sweep.JobRequest{Scenario: "svcblock", Label: "round-trip"}
	created := time.Now().Truncate(time.Millisecond)
	s.append(journalEntry{Submit: &storedJob{ID: "job-1", Request: req, State: StateQueued, Created: created}})
	s.append(journalEntry{Submit: &storedJob{ID: "job-2", Request: req, State: StateQueued, Created: created}})
	started := created.Add(time.Second)
	s.append(journalEntry{State: &stateEntry{ID: "job-1", State: StateRunning, At: started}})
	s.append(journalEntry{Cell: &cellEntry{ID: "job-1", Record: testRecord(0)}})
	s.append(journalEntry{State: &stateEntry{ID: "job-1", State: StateDone, At: started.Add(time.Second)}})
	s.append(journalEntry{ETA: &etaEntry{SecPerUnit: 0.5, Samples: 3}})
	s.close()

	s2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	rs := s2.recover()
	if rs.Skipped != 0 {
		t.Errorf("skipped %d entries in a clean journal", rs.Skipped)
	}
	if len(rs.Jobs) != 2 || rs.Jobs[0].ID != "job-1" || rs.Jobs[1].ID != "job-2" {
		t.Fatalf("recovered jobs: %+v", rs.Jobs)
	}
	j1 := rs.Jobs[0]
	if j1.State != StateDone || j1.Started == nil || !j1.Started.Equal(started) || j1.Finished == nil {
		t.Errorf("job-1 transitions lost: %+v", j1)
	}
	if len(j1.Records) != 1 || !reflect.DeepEqual(j1.Records[0], testRecord(0)) {
		t.Errorf("job-1 records: %+v", j1.Records)
	}
	if j1.Request.Label != "round-trip" {
		t.Errorf("request lost: %+v", j1.Request)
	}
	if rs.Jobs[1].State != StateQueued {
		t.Errorf("job-2 state: %s", rs.Jobs[1].State)
	}
	if rs.NextID != 2 {
		t.Errorf("NextID %d, want 2 (derived from job IDs)", rs.NextID)
	}
	if rs.ETA == nil || rs.ETA.SecPerUnit != 0.5 || rs.ETA.Samples != 3 {
		t.Errorf("eta calibration lost: %+v", rs.ETA)
	}
}

// A torn journal tail — the half-written line a crash mid-append leaves —
// is skipped without losing the intact entries before it, and corrupt
// lines never crash recovery.
func TestStoreCorruptTailSkipped(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.append(journalEntry{Submit: &storedJob{ID: "job-1", Request: sweep.JobRequest{Scenario: "svcblock"}, State: StateQueued, Created: time.Now()}})
	s.append(journalEntry{Cell: &cellEntry{ID: "job-1", Record: testRecord(0)}})
	s.close()

	// Tear the tail: a crash mid-write leaves a prefix of the last line.
	f, err := os.OpenFile(filepath.Join(storeDir(dir), "journal.ndjson"), os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cell":{"id":"job-1","rec`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	rs := s2.recover()
	if rs.Skipped != 1 {
		t.Errorf("skipped %d lines, want exactly the torn tail", rs.Skipped)
	}
	if len(rs.Jobs) != 1 || len(rs.Jobs[0].Records) != 1 {
		t.Fatalf("intact entries lost: %+v", rs.Jobs)
	}
}

// Compaction folds the journal into the snapshot and truncates it; a
// crash between the rename and the truncate leaves already-folded journal
// entries, whose replay must be idempotent (no duplicated jobs, no
// regressed state).
func TestStoreCompactionIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	submit := journalEntry{Submit: &storedJob{ID: "job-1", Request: sweep.JobRequest{Scenario: "svcblock"}, State: StateQueued, Created: time.Now()}}
	done := journalEntry{State: &stateEntry{ID: "job-1", State: StateDone, At: time.Now()}}
	s.append(submit)
	s.append(done)
	s.compact(&snapshotFile{Version: storeVersion, NextID: 1, Jobs: []*storedJob{{
		ID: "job-1", Request: sweep.JobRequest{Scenario: "svcblock"},
		State: StateDone, Created: time.Now(),
	}}})
	if b := s.journalBytes(); len(b) != 0 {
		t.Fatalf("journal not truncated by compaction: %q", b)
	}
	// Simulate the crash window: re-append the entries the snapshot already
	// folded, as if the truncate had never happened.
	s.append(submit)
	s.append(done)
	s.close()

	s2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	rs := s2.recover()
	if len(rs.Jobs) != 1 {
		t.Fatalf("stale journal replay duplicated jobs: %+v", rs.Jobs)
	}
	if rs.Jobs[0].State != StateDone || rs.NextID != 1 {
		t.Errorf("replay regressed state: %+v nextID=%d", rs.Jobs[0], rs.NextID)
	}
}

// Forget entries remove jobs (retention pruning's durable half), and an
// unreadable snapshot degrades to an empty start, never a crash.
func TestStoreForgetAndCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	s, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	s.append(journalEntry{Submit: &storedJob{ID: "job-1", Request: sweep.JobRequest{Scenario: "svcblock"}, State: StateQueued, Created: time.Now()}})
	s.append(journalEntry{Submit: &storedJob{ID: "job-2", Request: sweep.JobRequest{Scenario: "svcblock"}, State: StateQueued, Created: time.Now()}})
	s.append(journalEntry{Forget: &forgetEntry{ID: "job-1"}})
	rs := s.recover()
	if len(rs.Jobs) != 1 || rs.Jobs[0].ID != "job-2" {
		t.Errorf("forget not applied: %+v", rs.Jobs)
	}
	if rs.NextID != 2 {
		t.Errorf("NextID %d, want 2: forgotten IDs must never be reused", rs.NextID)
	}
	s.close()

	if err := os.WriteFile(filepath.Join(storeDir(dir), "snapshot.json"), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.close()
	rs = s2.recover() // journal still has the submits + forget
	if len(rs.Jobs) != 1 {
		t.Errorf("corrupt snapshot should fall back to the journal: %+v", rs.Jobs)
	}
}

// The store's generation directory is fingerprinted like the simulation
// cache's: state written by a different simulator build is invisible, not
// blindly replayed.
func TestStoreGenerationDir(t *testing.T) {
	dir := t.TempDir()
	got := storeDir(dir)
	want := filepath.Join(dir, "v1-"+simcache.Fingerprint())
	if got != want {
		t.Errorf("generation dir %q, want %q", got, want)
	}
}
