package service

import (
	_ "embed"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Fault injection for crash-restart and resilience tests. The
// GPUSIMPOW_FAULTPOINT environment variable arms one faultpoint:
//
//	<name>                 fire once, on the 1st hit
//	<name>:<skip>          fire once, on the (skip+1)-th hit (legacy form)
//	<name>:skip=N          same, spelled out
//	<name>:times=M         fire on hits 1..M
//	<name>:skip=N:times=M  fire on hits N+1..N+M
//
// Counted triggers let fleet drills fault exactly one health probe or one
// stream flush out of an ongoing series without killing every subsequent
// one. A firing point does whatever failure it models — the journal crash
// point kills the process like a SIGKILL would (os.Exit runs no deferred
// cleanup), the stream point severs the client's connection
// mid-NDJSON-line, the reduce point panics inside the scenario's reducer.
// Production daemons never set the variable, so every faultpoint is a
// single branch on a cached string.
const (
	// FaultCrashAfterJournalAppend kills the process immediately after a
	// journal entry has been written — the tightest crash window recovery
	// must handle (state admitted to disk, nothing else cleaned up).
	FaultCrashAfterJournalAppend = "crash-after-journal-append"
	// FaultDropConnectionMidStream severs a /cells or /events response
	// after a line has been flushed, exercising client stream resumption.
	FaultDropConnectionMidStream = "drop-connection-mid-stream"
	// FaultPanicInReduce panics inside the scenario's Reduce hook,
	// exercising the report path's panic isolation.
	FaultPanicInReduce = "panic-in-reduce"
	// FaultBlackholeProbe makes the backend's /v1/healthz hang until the
	// prober's timeout, exercising the router's dead-marking path without
	// killing the backend.
	FaultBlackholeProbe = "blackhole-probe"
	// FaultSeverProxiedStream severs the router's proxied NDJSON stream
	// after a line has been forwarded, exercising the router-side resume
	// (distinct from a backend loss: the backend stays healthy).
	FaultSeverProxiedStream = "sever-proxied-stream"
	// FaultDropBackendMidStream makes the router abandon its backend
	// connection mid-proxy and treat the backend as lost — the in-process
	// stand-in for a backend dropping mid-job, forcing failover without
	// killing any process.
	FaultDropBackendMidStream = "drop-backend-mid-stream"
)

// faultpointManifest is the single source of truth for faultpoint names,
// shared with the shell drills (scripts/service_lib.sh require_faultpoint
// greps the same file) and cross-checked against the Fault* constants by
// gpowlint's faultpoint pass and TestFaultpointManifest.
//
//go:embed faultpoints.txt
var faultpointManifest string

// DeclaredFaultpoints returns the manifest's faultpoint names, sorted.
// Comment lines (#) and blanks are skipped.
func DeclaredFaultpoints() []string {
	var names []string
	for _, line := range strings.Split(faultpointManifest, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		names = append(names, line)
	}
	sort.Strings(names)
	return names
}

// faultSpec is one parsed GPUSIMPOW_FAULTPOINT value.
type faultSpec struct {
	name  string
	skip  int // hits to let pass before firing
	times int // consecutive hits that fire
}

// parseFaultSpec parses the faultpoint grammar above. ok is false for an
// empty or malformed spec — a malformed spec arms nothing, it never
// half-fires.
func parseFaultSpec(spec string) (fs faultSpec, ok bool) {
	parts := strings.Split(spec, ":")
	if parts[0] == "" {
		return faultSpec{}, false
	}
	fs = faultSpec{name: parts[0], times: 1}
	for i, p := range parts[1:] {
		key, val, hasEq := strings.Cut(p, "=")
		if !hasEq {
			// Legacy bare-number form, only valid as the sole option.
			if i != 0 || len(parts) != 2 {
				return faultSpec{}, false
			}
			n, err := strconv.Atoi(p)
			if err != nil || n < 0 {
				return faultSpec{}, false
			}
			fs.skip = n
			return fs, true
		}
		n, err := strconv.Atoi(val)
		if err != nil {
			return faultSpec{}, false
		}
		switch key {
		case "skip":
			if n < 0 {
				return faultSpec{}, false
			}
			fs.skip = n
		case "times":
			if n < 1 {
				return faultSpec{}, false
			}
			fs.times = n
		default:
			return faultSpec{}, false
		}
	}
	return fs, true
}

var (
	faultMu   sync.Mutex
	faultHits = map[string]int{}
)

// faultpoint reports whether the named point fires at this hit. Hits are
// counted per name; with skip=N and times=M the point fires on hits
// N+1..N+M and never again.
func faultpoint(name string) bool {
	spec := os.Getenv("GPUSIMPOW_FAULTPOINT")
	if spec == "" {
		return false
	}
	fs, ok := parseFaultSpec(spec)
	if !ok || fs.name != name {
		return false
	}
	faultMu.Lock()
	faultHits[name]++
	hit := faultHits[name]
	faultMu.Unlock()
	return hit > fs.skip && hit <= fs.skip+fs.times
}

// Faultpoint is the exported faultpoint check for sibling packages
// (internal/fleet injects router-side faults through the same
// GPUSIMPOW_FAULTPOINT contract).
func Faultpoint(name string) bool { return faultpoint(name) }

// ResetFaultpoints clears all hit counters (test helper: lets one process
// arm the same point across sequential sub-tests).
func ResetFaultpoints() {
	faultMu.Lock()
	faultHits = map[string]int{}
	faultMu.Unlock()
}
