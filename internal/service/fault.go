package service

import (
	"os"
	"strconv"
	"strings"
	"sync"
)

// Fault injection for crash-restart and resilience tests. The
// GPUSIMPOW_FAULTPOINT environment variable names one faultpoint as
// "<name>" or "<name>:<skip>": the named point fires exactly once, on its
// (skip+1)-th hit. A firing point does whatever failure it models — the
// journal crash point kills the process like a SIGKILL would (os.Exit
// runs no deferred cleanup), the stream point severs the client's
// connection mid-NDJSON-line, the reduce point panics inside the
// scenario's reducer. Production daemons never set the variable, so every
// faultpoint is a single branch on a cached string.
const (
	// FaultCrashAfterJournalAppend kills the process immediately after a
	// journal entry has been written — the tightest crash window recovery
	// must handle (state admitted to disk, nothing else cleaned up).
	FaultCrashAfterJournalAppend = "crash-after-journal-append"
	// FaultDropConnectionMidStream severs a /cells or /events response
	// after a line has been flushed, exercising client stream resumption.
	FaultDropConnectionMidStream = "drop-connection-mid-stream"
	// FaultPanicInReduce panics inside the scenario's Reduce hook,
	// exercising the report path's panic isolation.
	FaultPanicInReduce = "panic-in-reduce"
)

var (
	faultMu   sync.Mutex
	faultHits = map[string]int{}
)

// faultpoint reports whether the named point fires at this hit. Hits are
// counted per name, so "name:3" arms the 4th hit; each point fires at
// most once per process.
func faultpoint(name string) bool {
	spec := os.Getenv("GPUSIMPOW_FAULTPOINT")
	if spec == "" {
		return false
	}
	armed, skipStr, _ := strings.Cut(spec, ":")
	if armed != name {
		return false
	}
	skip := 0
	if skipStr != "" {
		n, err := strconv.Atoi(skipStr)
		if err != nil || n < 0 {
			return false
		}
		skip = n
	}
	faultMu.Lock()
	faultHits[name]++
	hit := faultHits[name]
	faultMu.Unlock()
	return hit == skip+1
}
