package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpusimpow/internal/sweep"
)

// fastRetry returns a client tuned so retry tests run in milliseconds.
func fastRetry(srv *httptest.Server) *Client {
	return &Client{
		Base: srv.URL, HTTP: srv.Client(),
		RetryAttempts: 4,
		RetryBase:     time.Millisecond,
		RetryMax:      5 * time.Millisecond,
	}
}

// failNTransport refuses the first n round-trips at the transport layer —
// the connection-refused window of a daemon mid-restart.
type failNTransport struct {
	inner http.RoundTripper
	left  atomic.Int32
}

func (t *failNTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.left.Add(-1) >= 0 {
		return nil, errors.New("dial tcp: connection refused (injected)")
	}
	return t.inner.RoundTrip(req)
}

// The client rides out refused connections with backoff and succeeds once
// the daemon is back.
func TestClientRetriesConnectionErrors(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	tr := &failNTransport{inner: srv.Client().Transport}
	tr.left.Store(3)
	c := fastRetry(srv)
	c.HTTP = &http.Client{Transport: tr}

	st, err := c.Submit(context.Background(), sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatalf("submit should survive 3 refused connections: %v", err)
	}
	if st.ID == "" {
		t.Errorf("no job created: %+v", st)
	}
	// With retries disabled, the same fault is fatal.
	tr.left.Store(3)
	c.RetryAttempts = -1
	if _, err := c.Jobs(context.Background()); err == nil {
		t.Error("RetryAttempts<0 must not retry")
	}
}

// 5xx bursts (a proxy hiccup, a draining daemon) retry; 4xx does not.
func TestClientRetries5xxNot4xx(t *testing.T) {
	var fails atomic.Int32
	var gets atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		if fails.Add(-1) >= 0 {
			writeError(w, http.StatusBadGateway, errors.New("injected 502"))
			return
		}
		writeJSON(w, http.StatusOK, []JobStatus{})
	})
	mux.HandleFunc("GET /v1/jobs/nope", func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		writeError(w, http.StatusNotFound, errors.New("no job"))
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastRetry(srv)

	fails.Store(2)
	if _, err := c.Jobs(context.Background()); err != nil {
		t.Fatalf("a 2-response 502 burst should be ridden out: %v", err)
	}
	gets.Store(0)
	if _, err := c.Job(context.Background(), "nope"); err == nil {
		t.Fatal("404 should fail")
	}
	if n := gets.Load(); n != 1 {
		t.Errorf("404 retried %d times; 4xx must not retry", n-1)
	}
}

// A 429 with Retry-After defers the retry by the server's figure, not the
// client's own backoff.
func TestClientHonorsRetryAfter(t *testing.T) {
	var rejected atomic.Bool
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		if !rejected.Swap(true) {
			writeError(w, http.StatusTooManyRequests, errors.New("queue full (injected)"))
			return
		}
		writeJSON(w, http.StatusAccepted, JobStatus{ID: "job-1", State: StateQueued})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastRetry(srv) // RetryMax 5ms: only Retry-After can stretch the wait

	start := time.Now()
	st, err := c.Submit(context.Background(), sweep.JobRequest{Scenario: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if st.ID != "job-1" {
		t.Errorf("status %+v", st)
	}
	// writeError stamps Retry-After: 1 on 429s; the retry must have waited
	// roughly that second rather than the client's 5ms cap.
	if elapsed := time.Since(start); elapsed < 900*time.Millisecond {
		t.Errorf("retried after %v; Retry-After: 1 not honored", elapsed)
	}
}

// Regression: a Retry-After longer than the context's remaining deadline
// must not be slept — the retry it defers could never be issued. The
// client returns context.DeadlineExceeded promptly instead of blocking
// until the server's figure elapses.
func TestClientBackoffBoundedByDeadline(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "5")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "queue full (injected)"})
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastRetry(srv)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Submit(ctx, sweep.JobRequest{Scenario: "x"})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("submit against a permanently saturated server must fail")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("error should surface the deadline: %v", err)
	}
	// Well under the server's 5s Retry-After: the client must not have
	// slept past the 150ms deadline.
	if elapsed > time.Second {
		t.Errorf("returned after %v; backoff outlived the context deadline", elapsed)
	}
	// The original failure stays diagnosable alongside the deadline.
	if !strings.Contains(err.Error(), "queue full") {
		t.Errorf("last server error lost from %v", err)
	}
}

// A submit whose response is lost after the server processed it is
// retried under the same Idempotency-Key and resolves to the same job —
// no duplicate work.
func TestClientIdempotentSubmitRetry(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()

	dropped := false
	inner := srv.Client().Transport
	c := fastRetry(srv)
	c.HTTP = &http.Client{Transport: roundTripFunc(func(req *http.Request) (*http.Response, error) {
		resp, err := inner.RoundTrip(req)
		if err == nil && req.Method == http.MethodPost && !dropped {
			dropped = true // the server processed it; the client never hears
			resp.Body.Close()
			return nil, errors.New("connection reset by peer (injected)")
		}
		return resp, err
	})}

	st, err := c.Submit(context.Background(), sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Fatal("fault never injected")
	}
	var count int
	for _, js := range m.Statuses() {
		if js.Scenario == "ablation-processnode" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("%d jobs created; the idempotent retry must not duplicate", count)
	}
	if st.ID == "" {
		t.Errorf("replayed submit returned %+v", st)
	}
}

type roundTripFunc func(*http.Request) (*http.Response, error)

func (f roundTripFunc) RoundTrip(req *http.Request) (*http.Response, error) { return f(req) }

// A stream severed mid-NDJSON resumes from the next undelivered line:
// every record arrives exactly once, in plan order, across the
// reconnect. The cut is injected server-side by the drop-connection
// faultpoint — the same torn-socket image a daemon crash leaves.
func TestClientStreamResumesAfterDrop(t *testing.T) {
	resetFaultpoint(FaultDropConnectionMidStream)
	t.Setenv("GPUSIMPOW_FAULTPOINT", FaultDropConnectionMidStream+":1")

	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := fastRetry(srv)
	ctx := context.Background()

	st, err := c.Submit(ctx, sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	var got []int
	if err := c.StreamCells(ctx, st.ID, func(rec *sweep.CellRecord) error {
		got = append(got, rec.Index)
		return nil
	}); err != nil {
		t.Fatalf("stream should resume across the drop: %v", err)
	}
	if len(got) != 5 {
		t.Fatalf("delivered %d records, want 5: %v", len(got), got)
	}
	for i, idx := range got {
		if idx != i {
			t.Fatalf("delivery order/duplication broken: %v", got)
		}
	}
}

// A clean EOF on a job that is not done (the early stream end a draining
// daemon produces) reconnects rather than silently truncating; a job
// that terminated uncleanly surfaces its error.
func TestClientStreamChecksJobOnEOF(t *testing.T) {
	calls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/job-1/cells", func(w http.ResponseWriter, r *http.Request) {
		calls++
		enc := json.NewEncoder(w)
		switch calls {
		case 1:
			if r.URL.Query().Get("from") != "0" {
				t.Errorf("first connect from=%q", r.URL.Query().Get("from"))
			}
			_ = enc.Encode(&sweep.CellRecord{Index: 0}) // then clean EOF, job still running
		default:
			if r.URL.Query().Get("from") != "1" {
				t.Errorf("resume connect from=%q, want 1", r.URL.Query().Get("from"))
			}
			_ = enc.Encode(&sweep.CellRecord{Index: 1})
		}
	})
	mux.HandleFunc("GET /v1/jobs/job-1", func(w http.ResponseWriter, r *http.Request) {
		st := JobStatus{ID: "job-1", State: StateInterrupted, Cells: 2}
		if calls >= 2 {
			st.State = StateDone
			st.DoneCells = 2
		}
		writeJSON(w, http.StatusOK, st)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	c := fastRetry(srv)

	var got []int
	if err := c.StreamCells(context.Background(), "job-1", func(rec *sweep.CellRecord) error {
		got = append(got, rec.Index)
		return nil
	}); err != nil {
		t.Fatalf("stream should resume after an early EOF: %v", err)
	}
	if fmt.Sprint(got) != "[0 1]" {
		t.Errorf("delivered %v, want [0 1]", got)
	}

	// Failed jobs end the stream with their error, not a retry loop.
	mux2 := http.NewServeMux()
	mux2.HandleFunc("GET /v1/jobs/job-9/cells", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]string{"error": "boom"})
	})
	srv2 := httptest.NewServer(mux2)
	defer srv2.Close()
	c2 := fastRetry(srv2)
	err := c2.StreamCells(context.Background(), "job-9", func(*sweep.CellRecord) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("terminal error line: %v", err)
	}
}

// /v1/healthz flips to 503 when the manager drains; ?from validation
// rejects garbage; the Idempotency-Key header replays over raw HTTP.
func TestHealthzFromAndIdempotencyHTTP(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	if state, ok, err := c.Health(ctx); err != nil || !ok || state != "ok" {
		t.Errorf("healthz: %q %v %v", state, ok, err)
	}

	// Raw idempotent submits: 202 then 200, same job.
	body := `{"scenario":"ablation-processnode"}`
	post := func(key string) (*http.Response, error) {
		req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/jobs", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Idempotency-Key", key)
		return srv.Client().Do(req)
	}
	r1, err := post("test-key-1")
	if err != nil {
		t.Fatal(err)
	}
	var st1, st2 JobStatus
	_ = json.NewDecoder(r1.Body).Decode(&st1)
	r1.Body.Close()
	r2, err := post("test-key-1")
	if err != nil {
		t.Fatal(err)
	}
	_ = json.NewDecoder(r2.Body).Decode(&st2)
	r2.Body.Close()
	if r1.StatusCode != http.StatusAccepted || r2.StatusCode != http.StatusOK {
		t.Errorf("status codes %d/%d, want 202 then 200", r1.StatusCode, r2.StatusCode)
	}
	if st1.ID == "" || st1.ID != st2.ID {
		t.Errorf("idempotent replay returned %q then %q", st1.ID, st2.ID)
	}

	// from=N validation.
	resp, err := srv.Client().Get(srv.URL + "/v1/jobs/" + st1.ID + "/cells?from=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("from=bogus returned %d, want 400", resp.StatusCode)
	}

	// Drained manager: healthz 503, submits 503.
	m.Shutdown(ctx)
	state, ok, err := c.Health(ctx)
	if err != nil || ok || state == "ok" {
		t.Errorf("healthz after shutdown: %q %v %v", state, ok, err)
	}
	// A *known* key still replays during drain (replays are reads); a
	// fresh submission is refused.
	resp, err = post("test-key-1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("known-key replay during drain returned %d, want 200", resp.StatusCode)
	}
	resp, err = post("test-key-2")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit after shutdown returned %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 should carry Retry-After")
	}
	m.Close()
}
