package service

import "sync"

// etaModel calibrates the planner's static cost model against observed
// wall-clock. Plan.Cost counts estimated issue cycles from launch geometry
// alone — loop trip counts are invisible statically, so the estimate is a
// relative weight, not a duration. The manager therefore keeps an EWMA of
// observed seconds per cost unit, fed one sample per completed cell (its
// cost share over the wall-clock since the previous completion), and
// scales remaining cost units into ETA seconds for status responses. The
// model is shared across jobs, so a daemon's second job gets a calibrated
// ETA before its first cell finishes.
type etaModel struct {
	mu         sync.Mutex
	secPerUnit float64
	samples    uint64
}

// etaAlpha is the EWMA weight of the newest sample: low enough to smooth
// the jitter of pipelined cell completions, high enough to track a
// workload shift within a few cells.
const etaAlpha = 0.2

// observe feeds one completed chunk of work: units of static cost that
// took seconds of wall-clock.
func (e *etaModel) observe(units, seconds float64) {
	if units <= 0 || seconds < 0 {
		return
	}
	s := seconds / units
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		e.secPerUnit = s
	} else {
		e.secPerUnit = etaAlpha*s + (1-etaAlpha)*e.secPerUnit
	}
	e.samples++
}

// estimate scales remaining cost units into seconds; ok is false until the
// first observation lands.
func (e *etaModel) estimate(units float64) (seconds float64, ok bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.samples == 0 {
		return 0, false
	}
	return units * e.secPerUnit, true
}

// observations returns how many samples the model has absorbed.
func (e *etaModel) observations() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.samples
}

// export snapshots the calibration for the durable job store; restore is
// its inverse, seeding a freshly recovered daemon with the previous
// process's calibration so its first ETA (and first calibrated job
// timeout) is grounded instead of cold.
func (e *etaModel) export() (secPerUnit float64, samples uint64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.secPerUnit, e.samples
}

func (e *etaModel) restore(secPerUnit float64, samples uint64) {
	if samples == 0 || secPerUnit <= 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.secPerUnit = secPerUnit
	e.samples = samples
}
