package service

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		spec string
		want faultSpec
		ok   bool
	}{
		{"crash-after-journal-append", faultSpec{"crash-after-journal-append", 0, 1}, true},
		{"crash-after-journal-append:3", faultSpec{"crash-after-journal-append", 3, 1}, true},
		{"blackhole-probe:skip=2", faultSpec{"blackhole-probe", 2, 1}, true},
		{"blackhole-probe:times=4", faultSpec{"blackhole-probe", 0, 4}, true},
		{"sever-proxied-stream:skip=1:times=2", faultSpec{"sever-proxied-stream", 1, 2}, true},
		{"sever-proxied-stream:times=2:skip=1", faultSpec{"sever-proxied-stream", 1, 2}, true},
		{"", faultSpec{}, false},
		{":skip=1", faultSpec{}, false},
		{"name:-1", faultSpec{}, false},
		{"name:skip=-1", faultSpec{}, false},
		{"name:times=0", faultSpec{}, false},
		{"name:times=x", faultSpec{}, false},
		{"name:bogus=1", faultSpec{}, false},
		{"name:3:times=2", faultSpec{}, false}, // legacy bare number cannot mix
		{"name:skip=1:2", faultSpec{}, false},
	}
	for _, c := range cases {
		got, ok := parseFaultSpec(c.spec)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("parseFaultSpec(%q) = %+v, %v; want %+v, %v", c.spec, got, ok, c.want, c.ok)
		}
	}
}

func TestFaultpointCountedWindow(t *testing.T) {
	t.Setenv("GPUSIMPOW_FAULTPOINT", "blackhole-probe:skip=2:times=3")
	ResetFaultpoints()
	defer ResetFaultpoints()
	var fired []bool
	for i := 0; i < 7; i++ {
		fired = append(fired, Faultpoint(FaultBlackholeProbe))
	}
	want := []bool{false, false, true, true, true, false, false}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("hit %d fired=%v, want %v (all: %v)", i+1, fired[i], want[i], fired)
		}
	}
	if Faultpoint(FaultSeverProxiedStream) {
		t.Error("unarmed point fired")
	}
}

// TestFaultpointManifest pins the embedded manifest to the Fault*
// constants: a name added on one side without the other fails here (and
// fails `make lint` via gpowlint's faultpoint pass, which additionally
// checks the shell drills). The shell half of the contract —
// require_faultpoint in scripts/service_lib.sh — greps the same file.
func TestFaultpointManifest(t *testing.T) {
	consts := []string{
		FaultCrashAfterJournalAppend,
		FaultDropConnectionMidStream,
		FaultPanicInReduce,
		FaultBlackholeProbe,
		FaultSeverProxiedStream,
		FaultDropBackendMidStream,
	}
	sort.Strings(consts)
	declared := DeclaredFaultpoints()
	if !reflect.DeepEqual(declared, consts) {
		t.Fatalf("faultpoints.txt out of sync with Fault* constants:\nmanifest: %v\nconsts:   %v", declared, consts)
	}
	for _, name := range declared {
		if strings.TrimSpace(name) != name || name == "" || strings.HasPrefix(name, "#") {
			t.Errorf("malformed manifest name %q", name)
		}
	}
}
