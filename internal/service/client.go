package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"gpusimpow/internal/sweep"
)

// Client is the Go consumer of the service API — what cmd/gpowexp's
// -remote mode (and the smoke tests) drive. The zero HTTP client is
// replaced by http.DefaultClient.
type Client struct {
	// Base is the daemon's base URL ("http://127.0.0.1:8080").
	Base string
	// HTTP overrides the transport (httptest servers inject theirs).
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

// decodeError surfaces the service's {"error": ...} envelope.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", env.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Scenarios lists the daemon's registered scenarios.
func (c *Client) Scenarios(ctx context.Context) ([]*sweep.ScenarioInfo, error) {
	var out []*sweep.ScenarioInfo
	if err := c.getJSON(ctx, "/v1/scenarios", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Submit submits one job request and returns its initial status.
func (c *Client) Submit(ctx context.Context, jr sweep.JobRequest) (*JobStatus, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url("/v1/jobs"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job's status.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.getJSON(ctx, "/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.url("/v1/jobs/"+id), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// StreamCells follows a job's NDJSON cell stream, invoking fn for every
// record in plan order. It returns when the stream ends (job done), fn
// errors, or the stream carries a terminal error line.
func (c *Client) StreamCells(ctx context.Context, id string, fn func(*sweep.CellRecord) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/cells"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		// Each line is either a CellRecord or the terminal error
		// envelope; records never carry an "error" key.
		var line struct {
			sweep.CellRecord
			Error string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("service: decoding cell stream: %w", err)
		}
		if line.Error != "" {
			return fmt.Errorf("service: job %s: %s", id, line.Error)
		}
		rec := line.CellRecord
		if err := fn(&rec); err != nil {
			return err
		}
	}
}

// StreamEvents follows a job's NDJSON progress-event stream, invoking fn
// for every sweep.Progress event in plan order (each embeds the completed
// cell's record plus done/total counters and the cost-weighted completion
// fraction). It returns when the stream ends, fn errors, or the stream
// carries a terminal error line.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(*sweep.Progress) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/jobs/"+id+"/events"), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		// Each line is either a Progress event or the terminal error
		// envelope; events never carry an "error" key.
		var line struct {
			sweep.Progress
			Error string `json:"error"`
		}
		if err := dec.Decode(&line); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("service: decoding event stream: %w", err)
		}
		if line.Error != "" {
			return fmt.Errorf("service: job %s: %s", id, line.Error)
		}
		if line.Progress.Cell == nil {
			// Every real event embeds its cell record; a line without one
			// (version skew, stray keepalive) is a protocol error, not
			// something to hand consumers who will dereference the cell.
			return fmt.Errorf("service: job %s: malformed progress event (no cell record)", id)
		}
		pr := line.Progress
		if err := fn(&pr); err != nil {
			return err
		}
	}
}

// Report fetches the finished job's reduced report — the server-side
// counterpart of the in-process Reduce, bit-identical after the JSON hop.
func (c *Client) Report(ctx context.Context, id string) (*sweep.Report, error) {
	var rep sweep.Report
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Run submits a request, streams every cell through fn, and returns the
// job's final status — the remote analogue of Plan.Run. If the stream
// (or fn) fails, the job is cancelled best-effort so the daemon does not
// keep executing a sweep nobody is reading.
func (c *Client) Run(ctx context.Context, jr sweep.JobRequest, fn func(*sweep.CellRecord) error) (*JobStatus, error) {
	st, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, err
	}
	if err := c.StreamCells(ctx, st.ID, fn); err != nil {
		_ = c.Cancel(ctx, st.ID) // no-op if the job already terminated
		return nil, err
	}
	return c.Job(ctx, st.ID)
}
