package service

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand/v2"
	"net/http"
	"strconv"
	"strings"
	"time"

	"gpusimpow/internal/sweep"
)

// Client is the Go consumer of the service API — what cmd/gpowexp's
// -remote mode (and the smoke tests) drive. The zero HTTP client is
// replaced by http.DefaultClient.
//
// The client is self-healing: transport errors, 429 (saturated) and 5xx
// responses retry with capped exponential backoff plus jitter, honoring
// any Retry-After the server sends. Submissions carry a generated
// Idempotency-Key, so a retried submit whose first response was lost
// resolves to the already-created job instead of a duplicate. The NDJSON
// streams resume across severed connections and daemon restarts via the
// server's ?from=N offset, delivering every line exactly once in order —
// a consumer piping records to a file survives a mid-sweep daemon crash
// with byte-identical output.
type Client struct {
	// Base is the daemon's base URL ("http://127.0.0.1:8080").
	Base string
	// HTTP overrides the transport (httptest servers inject theirs).
	HTTP *http.Client
	// RetryAttempts bounds retries per request (and consecutive
	// no-progress reconnects per stream). 0 selects 8; negative disables
	// retrying entirely.
	RetryAttempts int
	// RetryBase is the first backoff delay (0 selects 100ms); successive
	// delays double, jittered, capped at RetryMax (0 selects 5s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// Logf, when set, narrates retries and resumptions (gpowexp -v).
	Logf func(format string, args ...any)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(path string) string {
	return strings.TrimRight(c.Base, "/") + path
}

func (c *Client) attempts() int {
	if c.RetryAttempts < 0 {
		return 0
	}
	if c.RetryAttempts == 0 {
		return 8
	}
	return c.RetryAttempts
}

func (c *Client) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// backoff computes the delay before retry number attempt (0-based):
// RetryBase doubled per attempt, capped at RetryMax, jittered to 50–100%
// so a fleet of clients re-finding a restarted daemon does not stampede.
func (c *Client) backoff(attempt int) time.Duration {
	base := c.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	maxD := c.RetryMax
	if maxD <= 0 {
		maxD = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > maxD {
		d = maxD
	}
	return d/2 + time.Duration(mrand.Int64N(int64(d/2)+1))
}

// sleep waits d or until the context dies.
func sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// sleepBounded waits d, but never past ctx's deadline: a backoff (or a
// server Retry-After) that would outlive the context is pointless — the
// retry it delays could never be issued — so it returns
// context.DeadlineExceeded immediately instead of sleeping into a
// guaranteed failure.
func sleepBounded(ctx context.Context, d time.Duration) error {
	if dl, ok := ctx.Deadline(); ok && time.Until(dl) < d {
		return context.DeadlineExceeded
	}
	return sleep(ctx, d)
}

// retryAfter extracts a 429/503 response's Retry-After delay (0 when
// absent or unparseable; only the delta-seconds form is supported).
func retryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && sec > 0 {
		return time.Duration(sec) * time.Second
	}
	return 0
}

// retryableStatus marks responses worth retrying: saturation (429),
// server faults and drains (5xx). Everything 4xx-but-429 is the caller's
// bug and retrying cannot fix it.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// do issues one request with the retry policy: transport errors and
// retryable statuses back off and reissue (the body is rebuilt from
// bytes each attempt), everything else returns as-is. idemKey, when
// non-empty, is sent as the Idempotency-Key header on every attempt —
// which is exactly what makes reissuing a POST safe.
func (c *Client) do(ctx context.Context, method, path string, body []byte, idemKey string) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, c.url(path), rd)
		if err != nil {
			return nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if idemKey != "" {
			req.Header.Set("Idempotency-Key", idemKey)
		}
		resp, err := c.httpClient().Do(req)
		if err == nil && !retryableStatus(resp.StatusCode) {
			return resp, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = decodeError(resp) // also closes the body
		}
		if attempt >= c.attempts() || ctx.Err() != nil {
			return nil, lastErr
		}
		d := c.backoff(attempt)
		if ra := retryAfter(resp); ra > 0 {
			d = ra
		}
		c.logf("service: %s %s: %v; retrying in %v", method, path, lastErr, d)
		if err := sleepBounded(ctx, d); err != nil {
			return nil, errors.Join(err, lastErr)
		}
	}
}

// decodeError surfaces the service's {"error": ...} envelope.
func decodeError(resp *http.Response) error {
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var env struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &env) == nil && env.Error != "" {
		return fmt.Errorf("service: %s (HTTP %d)", env.Error, resp.StatusCode)
	}
	return fmt.Errorf("service: HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
}

func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil, "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// Scenarios lists the daemon's registered scenarios.
func (c *Client) Scenarios(ctx context.Context) ([]*sweep.ScenarioInfo, error) {
	var out []*sweep.ScenarioInfo
	if err := c.getJSON(ctx, "/v1/scenarios", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health probes GET /v1/healthz: ok while the daemon serves, false (with
// the reported state) while it drains. Not retried — health is a point
// probe, and a dead daemon should report as one immediately.
func (c *Client) Health(ctx context.Context) (state string, ok bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return "", false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", false, err
	}
	defer resp.Body.Close()
	var env struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return "", false, err
	}
	return env.Status, resp.StatusCode == http.StatusOK, nil
}

// ProbeHealth fetches the full enriched /v1/healthz payload (load, cache
// heat, drain state). Like Health it is a point probe, never retried: a
// dead or hung daemon should report as one within ctx's deadline.
func (c *Client) ProbeHealth(ctx context.Context) (*HealthInfo, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/v1/healthz"), nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	var hi HealthInfo
	if err := json.NewDecoder(resp.Body).Decode(&hi); err != nil {
		return nil, false, err
	}
	return &hi, resp.StatusCode == http.StatusOK, nil
}

// newIdempotencyKey generates one client-chosen submission identity.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // no entropy, no idempotency — submits still work
	}
	return hex.EncodeToString(b[:])
}

// Submit submits one job request and returns its initial status. The
// request carries a generated Idempotency-Key, so the retry loop can
// safely reissue it: if the daemon processed a previous attempt whose
// response was lost, the retry returns that same job (HTTP 200) instead
// of creating a duplicate (202).
func (c *Client) Submit(ctx context.Context, jr sweep.JobRequest) (*JobStatus, error) {
	return c.SubmitKeyed(ctx, jr, newIdempotencyKey())
}

// SubmitKeyed is Submit with a caller-chosen Idempotency-Key. The fleet
// router dispatches through this: routing and failover re-dispatch reuse
// one key per fleet job, so a job re-sent to a survivor — or raced by two
// re-dispatchers — resolves to a single backend job.
func (c *Client) SubmitKeyed(ctx context.Context, jr sweep.JobRequest, key string) (*JobStatus, error) {
	body, err := json.Marshal(jr)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, key)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		return nil, decodeError(resp)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var st JobStatus
	if err := c.getJSON(ctx, "/v1/jobs/"+id, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Jobs lists every job's status.
func (c *Client) Jobs(ctx context.Context) ([]JobStatus, error) {
	var out []JobStatus
	if err := c.getJSON(ctx, "/v1/jobs", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a job.
func (c *Client) Cancel(ctx context.Context, id string) error {
	resp, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "")
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return decodeError(resp)
	}
	resp.Body.Close()
	return nil
}

// permanentError marks a stream failure resumption cannot fix: the job
// itself failed, the consumer's callback errored, or the server rejected
// the request outright.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// streamNDJSON follows one of a job's NDJSON endpoints, delivering each
// line exactly once in order across reconnects: a severed connection (or
// restarted daemon) backs off and reconnects with ?from=<delivered>, and
// a clean EOF is confirmed against the job's status — a drained daemon
// ends streams early on a job that will still complete after recovery.
func (c *Client) streamNDJSON(ctx context.Context, id, endpoint string, line func(json.RawMessage) error) error {
	delivered := 0
	failures := 0
	for {
		before := delivered
		err := c.streamOnce(ctx, id, endpoint, &delivered, line)
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if err == nil {
			// Clean EOF: complete, or cut short by a drain?
			st, jerr := c.Job(ctx, id)
			if jerr != nil {
				return jerr
			}
			switch {
			case st.State == StateDone && delivered >= st.Cells:
				return nil
			case st.State == StateFailed || st.State == StateCanceled:
				if st.Error != "" {
					return fmt.Errorf("service: job %s: %s", id, st.Error)
				}
				return fmt.Errorf("service: job %s %s", id, st.State)
			}
			err = fmt.Errorf("service: job %s: stream ended at line %d with job %s", id, delivered, st.State)
		}
		if ctx.Err() != nil {
			return err
		}
		if delivered > before {
			failures = 0 // progress resets the patience budget
		} else {
			failures++
		}
		if failures > c.attempts() {
			return err
		}
		d := c.backoff(failures - 1)
		c.logf("service: job %s %s stream: %v; resuming from line %d in %v", id, endpoint, err, delivered, d)
		if serr := sleepBounded(ctx, d); serr != nil {
			return errors.Join(serr, err)
		}
	}
}

// streamOnce runs one connection of a resumable stream, bumping
// *delivered per line handed to fn. A nil return is this connection's
// clean EOF (not necessarily the stream's end); non-permanent errors
// mean "sever — reconnect and resume".
func (c *Client) streamOnce(ctx context.Context, id, endpoint string, delivered *int, fn func(json.RawMessage) error) error {
	resp, err := c.do(ctx, http.MethodGet,
		fmt.Sprintf("/v1/jobs/%s/%s?from=%d", id, endpoint, *delivered), nil, "")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return &permanentError{decodeError(resp)}
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var raw json.RawMessage
		if err := dec.Decode(&raw); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("service: decoding %s stream: %w", endpoint, err)
		}
		// Each line is either a payload or the terminal error envelope;
		// payloads never carry an "error" key.
		var env struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &env) == nil && env.Error != "" {
			return &permanentError{fmt.Errorf("service: job %s: %s", id, env.Error)}
		}
		if err := fn(raw); err != nil {
			return &permanentError{err}
		}
		*delivered++
	}
}

// StreamCells follows a job's NDJSON cell stream, invoking fn for every
// record in plan order, resuming across severed connections and daemon
// restarts. It returns when the job's stream is complete, fn errors, or
// the job terminates without finishing.
func (c *Client) StreamCells(ctx context.Context, id string, fn func(*sweep.CellRecord) error) error {
	return c.streamNDJSON(ctx, id, "cells", func(raw json.RawMessage) error {
		var rec sweep.CellRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return fmt.Errorf("service: decoding cell record: %w", err)
		}
		return fn(&rec)
	})
}

// StreamEvents follows a job's NDJSON progress-event stream, invoking fn
// for every sweep.Progress event in plan order (each embeds the completed
// cell's record plus done/total counters and the cost-weighted completion
// fraction), with the same resumption semantics as StreamCells.
func (c *Client) StreamEvents(ctx context.Context, id string, fn func(*sweep.Progress) error) error {
	return c.streamNDJSON(ctx, id, "events", func(raw json.RawMessage) error {
		var pr sweep.Progress
		if err := json.Unmarshal(raw, &pr); err != nil {
			return fmt.Errorf("service: decoding progress event: %w", err)
		}
		if pr.Cell == nil {
			// Every real event embeds its cell record; a line without one
			// (version skew, stray keepalive) is a protocol error, not
			// something to hand consumers who will dereference the cell.
			return fmt.Errorf("service: job %s: malformed progress event (no cell record)", id)
		}
		return fn(&pr)
	})
}

// Report fetches the finished job's reduced report — the server-side
// counterpart of the in-process Reduce, bit-identical after the JSON hop.
func (c *Client) Report(ctx context.Context, id string) (*sweep.Report, error) {
	var rep sweep.Report
	if err := c.getJSON(ctx, "/v1/jobs/"+id+"/report", &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// Run submits a request, streams every cell through fn, and returns the
// job's final status — the remote analogue of Plan.Run. If the stream
// (or fn) fails, the job is cancelled best-effort so the daemon does not
// keep executing a sweep nobody is reading.
func (c *Client) Run(ctx context.Context, jr sweep.JobRequest, fn func(*sweep.CellRecord) error) (*JobStatus, error) {
	st, err := c.Submit(ctx, jr)
	if err != nil {
		return nil, err
	}
	if err := c.StreamCells(ctx, st.ID, fn); err != nil {
		_ = c.Cancel(ctx, st.ID) // no-op if the job already terminated
		return nil, err
	}
	return c.Job(ctx, st.ID)
}
