package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gpusimpow/internal/journal"
	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// The durable job store: an append-only NDJSON journal plus a compacted
// snapshot under gpowd's -state-dir, so a daemon crash or restart loses
// no job state. Every artifact a job owns is already serializable
// (JobRequest, CellRecord, Report, the ETA model's EWMA) and every
// simulation is deterministic, so recovery is safe replay: terminal jobs
// restore with their records and memoized reports, queued jobs re-enqueue
// in submit order, and jobs that were running when the process died come
// back as "interrupted" and re-execute bit-identically.
//
// The I/O discipline (generation directory, torn-tail-tolerant journal,
// atomic snapshot + truncate, no fsync by design) lives in
// internal/journal, shared with the fleet router's routing table; this
// file owns the job-shaped entry types and the idempotent fold.
//
// Write path: one journal line per event (submission, state transition,
// cell record, memoized report, EWMA sample, forget). Compaction (at
// recovery, on prune evictions, and at shutdown) folds everything into
// snapshot.json and truncates the journal, which both bounds disk under
// -retain/-retain-age and clears any torn tail so later appends cannot
// concatenate onto it.
//
// Crash windows: the snapshot is renamed into place before the journal is
// truncated, so a crash between the two leaves journal entries that are
// already folded into the snapshot. Replaying them is idempotent by
// construction — submissions of a known job are skipped, state/report
// entries overwrite, cell entries place by record index — except that a
// job forgotten by the snapshot may be resurrected by its surviving
// journal entries; that is benign (the next prune forgets it again) and
// strictly better than the reverse order, which could lose jobs.

// storeVersion guards the persisted shape; bump on incompatible change.
const storeVersion = 1

// storedJob is one job's persisted form — everything recovery needs to
// rebuild it (the Plan is re-derived from the request).
type storedJob struct {
	ID      string           `json:"id"`
	Request sweep.JobRequest `json:"request"`
	// Key is the client's Idempotency-Key, so retried submissions keep
	// resolving to this job across restarts.
	Key      string     `json:"idempotencyKey,omitempty"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Records and Report are kept for terminal jobs only: a non-terminal
	// job re-executes on recovery and regenerates both deterministically.
	Records []*sweep.CellRecord `json:"records,omitempty"`
	Report  *sweep.Report       `json:"report,omitempty"`
}

// stateEntry journals one lifecycle transition.
type stateEntry struct {
	ID    string    `json:"id"`
	State JobState  `json:"state"`
	Error string    `json:"error,omitempty"`
	At    time.Time `json:"at"`
}

// cellEntry journals one streamed cell record; Record.Index is its
// position, so replaying a duplicate entry is idempotent.
type cellEntry struct {
	ID     string            `json:"id"`
	Record *sweep.CellRecord `json:"record"`
}

// reportEntry journals a job's memoized reduction.
type reportEntry struct {
	ID     string        `json:"id"`
	Report *sweep.Report `json:"report"`
}

// etaEntry journals the shared ETA model's calibration.
type etaEntry struct {
	SecPerUnit float64 `json:"secPerUnit"`
	Samples    uint64  `json:"samples"`
}

// forgetEntry journals a pruned/canceled-and-pruned job's removal.
type forgetEntry struct {
	ID string `json:"id"`
}

// journalEntry is one journal line; exactly one field is set.
type journalEntry struct {
	Submit *storedJob   `json:"submit,omitempty"`
	State  *stateEntry  `json:"state,omitempty"`
	Cell   *cellEntry   `json:"cell,omitempty"`
	Report *reportEntry `json:"report,omitempty"`
	ETA    *etaEntry    `json:"eta,omitempty"`
	Forget *forgetEntry `json:"forget,omitempty"`
}

// snapshotFile is the compacted on-disk state.
type snapshotFile struct {
	Version int `json:"version"`
	// NextID is the highest job number ever assigned, so recovered
	// daemons never reuse a pruned job's ID.
	NextID int          `json:"nextID"`
	ETA    *etaEntry    `json:"eta,omitempty"`
	Jobs   []*storedJob `json:"jobs,omitempty"` // creation order
}

// recoveredState is what recover() hands the Manager.
type recoveredState struct {
	Jobs    []*storedJob // creation order
	NextID  int
	ETA     *etaEntry
	Skipped int // corrupt/unusable journal lines skipped
}

// Store is the journal + snapshot pair for one state directory.
type Store struct {
	dir string // generation directory
	log *journal.Log
}

// openStore opens (creating if needed) the store under stateDir. State
// lives under a generation directory (<state-dir>/v<version>-<build
// fingerprint>/, mirroring internal/simcache/disk.go) so a directory
// shared across simulator versions never replays state an incompatible
// binary wrote.
func openStore(stateDir string) (*Store, error) {
	dir := filepath.Join(stateDir, fmt.Sprintf("v%d-%s", storeVersion, simcache.Fingerprint()))
	l, err := journal.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	l.AfterAppend = func() {
		if faultpoint(FaultCrashAfterJournalAppend) {
			fmt.Fprintln(os.Stderr, "gpowd: faultpoint crash-after-journal-append: dying")
			os.Exit(137)
		}
	}
	return &Store{dir: dir, log: l}, nil
}

// append writes one journal line. All failures are swallowed — durability
// degrades, the daemon does not; the in-memory state still serves.
func (s *Store) append(e journalEntry) { s.log.Append(e) }

// freeze drops all future writes — the test stand-in for SIGKILL: what is
// on disk now is exactly the crash image a killed process leaves.
func (s *Store) freeze() { s.log.Freeze() }

// recover reads the snapshot, folds the journal over it, and returns the
// merged state. Corrupt snapshot: start empty. Corrupt journal line
// (including a torn tail): skip. Entries referencing unknown jobs: skip,
// except submissions, which introduce jobs.
func (s *Store) recover() *recoveredState {
	rs := &recoveredState{}
	byID := map[string]*storedJob{}
	var order []string

	var snap snapshotFile
	if s.log.Snapshot(&snap) && snap.Version == storeVersion {
		rs.NextID = snap.NextID
		rs.ETA = snap.ETA
		for _, sj := range snap.Jobs {
			if sj == nil || sj.ID == "" || byID[sj.ID] != nil {
				continue
			}
			byID[sj.ID] = sj
			order = append(order, sj.ID)
		}
	}

	s.log.Replay(func(line []byte) {
		var e journalEntry
		if json.Unmarshal(line, &e) != nil {
			// Corrupt or torn line: skip. A torn line can only be the
			// journal's tail (appends are single writes), so nothing after
			// it is lost.
			rs.Skipped++
			return
		}
		applyEntry(&e, byID, &order, rs)
	})

	for _, id := range order {
		rs.Jobs = append(rs.Jobs, byID[id])
	}
	for _, sj := range rs.Jobs {
		if n := jobNumber(sj.ID); n > rs.NextID {
			rs.NextID = n
		}
	}
	return rs
}

// applyEntry folds one journal entry into the recovery state.
func applyEntry(e *journalEntry, byID map[string]*storedJob, order *[]string, rs *recoveredState) {
	switch {
	case e.Submit != nil && e.Submit.ID != "":
		if byID[e.Submit.ID] != nil {
			return // replayed after a partial compaction: already known
		}
		byID[e.Submit.ID] = e.Submit
		*order = append(*order, e.Submit.ID)
	case e.State != nil:
		sj := byID[e.State.ID]
		if sj == nil {
			rs.Skipped++
			return
		}
		sj.State = e.State.State
		sj.Error = e.State.Error
		at := e.State.At
		switch {
		case e.State.State == StateRunning:
			sj.Started = &at
			// A (re)start invalidates any previously journaled records:
			// the run streams a fresh, bit-identical set.
			sj.Records = nil
			sj.Report = nil
		case e.State.State.terminal():
			sj.Finished = &at
		}
	case e.Cell != nil:
		sj := byID[e.Cell.ID]
		if sj == nil || e.Cell.Record == nil || e.Cell.Record.Index < 0 {
			rs.Skipped++
			return
		}
		// Place by index so duplicate replays are idempotent; the stream
		// is in plan order, so the slice only ever grows by one.
		for len(sj.Records) <= e.Cell.Record.Index {
			sj.Records = append(sj.Records, nil)
		}
		sj.Records[e.Cell.Record.Index] = e.Cell.Record
	case e.Report != nil:
		if sj := byID[e.Report.ID]; sj != nil {
			sj.Report = e.Report.Report
		} else {
			rs.Skipped++
		}
	case e.ETA != nil:
		rs.ETA = e.ETA
	case e.Forget != nil:
		if byID[e.Forget.ID] != nil {
			delete(byID, e.Forget.ID)
			for i, id := range *order {
				if id == e.Forget.ID {
					*order = append((*order)[:i], (*order)[i+1:]...)
					break
				}
			}
		}
	default:
		rs.Skipped++ // unknown entry kind (version skew): skip
	}
}

// jobNumber parses the numeric suffix of "job-N" IDs (0 when foreign).
func jobNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// compact atomically replaces the snapshot with snap and truncates the
// journal. Failures leave the previous snapshot + journal intact — the
// store keeps appending and the next compaction retries.
func (s *Store) compact(snap *snapshotFile) { s.log.Compact(snap) }

// close freezes the store and closes the journal.
func (s *Store) close() { s.log.Close() }

// journalBytes is a test helper view of the journal (what a crash would
// leave on disk at this instant).
func (s *Store) journalBytes() []byte { return s.log.JournalBytes() }
