package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// The durable job store: an append-only NDJSON journal plus a compacted
// snapshot under gpowd's -state-dir, so a daemon crash or restart loses
// no job state. Every artifact a job owns is already serializable
// (JobRequest, CellRecord, Report, the ETA model's EWMA) and every
// simulation is deterministic, so recovery is safe replay: terminal jobs
// restore with their records and memoized reports, queued jobs re-enqueue
// in submit order, and jobs that were running when the process died come
// back as "interrupted" and re-execute bit-identically.
//
// Layout mirrors internal/simcache/disk.go: state lives under a
// generation directory (<state-dir>/v<version>-<build fingerprint>/) so a
// directory shared across simulator versions never replays state an
// incompatible binary wrote; the snapshot is written atomically (temp
// file + rename); and corruption is never fatal — a corrupt journal line
// (including the torn tail a crash mid-write leaves) or an unreadable
// snapshot is skipped, never a crash.
//
// Write path: one journal line per event (submission, state transition,
// cell record, memoized report, EWMA sample, forget). Lines are appended
// without fsync — recovery targets process death (SIGKILL, panic, OOM),
// where the page cache survives; power-loss durability is explicitly not
// the contract. Compaction (at recovery, on prune evictions, and at
// shutdown) folds everything into snapshot.json and truncates the
// journal, which both bounds disk under -retain/-retain-age and clears
// any torn tail so later appends cannot concatenate onto it.
//
// Crash windows: the snapshot is renamed into place before the journal is
// truncated, so a crash between the two leaves journal entries that are
// already folded into the snapshot. Replaying them is idempotent by
// construction — submissions of a known job are skipped, state/report
// entries overwrite, cell entries place by record index — except that a
// job forgotten by the snapshot may be resurrected by its surviving
// journal entries; that is benign (the next prune forgets it again) and
// strictly better than the reverse order, which could lose jobs.

// storeVersion guards the persisted shape; bump on incompatible change.
const storeVersion = 1

// storedJob is one job's persisted form — everything recovery needs to
// rebuild it (the Plan is re-derived from the request).
type storedJob struct {
	ID      string           `json:"id"`
	Request sweep.JobRequest `json:"request"`
	// Key is the client's Idempotency-Key, so retried submissions keep
	// resolving to this job across restarts.
	Key      string     `json:"idempotencyKey,omitempty"`
	State    JobState   `json:"state"`
	Error    string     `json:"error,omitempty"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	// Records and Report are kept for terminal jobs only: a non-terminal
	// job re-executes on recovery and regenerates both deterministically.
	Records []*sweep.CellRecord `json:"records,omitempty"`
	Report  *sweep.Report       `json:"report,omitempty"`
}

// stateEntry journals one lifecycle transition.
type stateEntry struct {
	ID    string    `json:"id"`
	State JobState  `json:"state"`
	Error string    `json:"error,omitempty"`
	At    time.Time `json:"at"`
}

// cellEntry journals one streamed cell record; Record.Index is its
// position, so replaying a duplicate entry is idempotent.
type cellEntry struct {
	ID     string            `json:"id"`
	Record *sweep.CellRecord `json:"record"`
}

// reportEntry journals a job's memoized reduction.
type reportEntry struct {
	ID     string        `json:"id"`
	Report *sweep.Report `json:"report"`
}

// etaEntry journals the shared ETA model's calibration.
type etaEntry struct {
	SecPerUnit float64 `json:"secPerUnit"`
	Samples    uint64  `json:"samples"`
}

// forgetEntry journals a pruned/canceled-and-pruned job's removal.
type forgetEntry struct {
	ID string `json:"id"`
}

// journalEntry is one journal line; exactly one field is set.
type journalEntry struct {
	Submit *storedJob   `json:"submit,omitempty"`
	State  *stateEntry  `json:"state,omitempty"`
	Cell   *cellEntry   `json:"cell,omitempty"`
	Report *reportEntry `json:"report,omitempty"`
	ETA    *etaEntry    `json:"eta,omitempty"`
	Forget *forgetEntry `json:"forget,omitempty"`
}

// snapshotFile is the compacted on-disk state.
type snapshotFile struct {
	Version int `json:"version"`
	// NextID is the highest job number ever assigned, so recovered
	// daemons never reuse a pruned job's ID.
	NextID int          `json:"nextID"`
	ETA    *etaEntry    `json:"eta,omitempty"`
	Jobs   []*storedJob `json:"jobs,omitempty"` // creation order
}

// recoveredState is what recover() hands the Manager.
type recoveredState struct {
	Jobs    []*storedJob // creation order
	NextID  int
	ETA     *etaEntry
	Skipped int // corrupt/unusable journal lines skipped
}

// Store is the journal + snapshot pair for one state directory.
type Store struct {
	mu      sync.Mutex
	dir     string // generation directory
	journal *os.File
	// frozen drops all writes: set by Close, and by tests simulating the
	// instant of process death (a frozen store is a dead process's disk).
	frozen bool
}

// openStore opens (creating if needed) the store under stateDir.
func openStore(stateDir string) (*Store, error) {
	dir := filepath.Join(stateDir, fmt.Sprintf("v%d-%s", storeVersion, simcache.Fingerprint()))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: state dir: %w", err)
	}
	j, err := os.OpenFile(filepath.Join(dir, "journal.ndjson"),
		os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &Store{dir: dir, journal: j}, nil
}

func (s *Store) snapshotPath() string { return filepath.Join(s.dir, "snapshot.json") }
func (s *Store) journalPath() string  { return filepath.Join(s.dir, "journal.ndjson") }

// append writes one journal line. All failures are swallowed — durability
// degrades, the daemon does not; the in-memory state still serves.
func (s *Store) append(e journalEntry) {
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	s.mu.Lock()
	if !s.frozen && s.journal != nil {
		_, _ = s.journal.Write(append(b, '\n'))
	}
	s.mu.Unlock()
	if faultpoint(FaultCrashAfterJournalAppend) {
		fmt.Fprintln(os.Stderr, "gpowd: faultpoint crash-after-journal-append: dying")
		os.Exit(137)
	}
}

// freeze drops all future writes — the test stand-in for SIGKILL: what is
// on disk now is exactly the crash image a killed process leaves.
func (s *Store) freeze() {
	s.mu.Lock()
	s.frozen = true
	s.mu.Unlock()
}

// recover reads the snapshot, folds the journal over it, and returns the
// merged state. Corrupt snapshot: start empty. Corrupt journal line
// (including a torn tail): skip. Entries referencing unknown jobs: skip,
// except submissions, which introduce jobs.
func (s *Store) recover() *recoveredState {
	rs := &recoveredState{}
	byID := map[string]*storedJob{}
	var order []string

	if b, err := os.ReadFile(s.snapshotPath()); err == nil {
		var snap snapshotFile
		if json.Unmarshal(b, &snap) == nil && snap.Version == storeVersion {
			rs.NextID = snap.NextID
			rs.ETA = snap.ETA
			for _, sj := range snap.Jobs {
				if sj == nil || sj.ID == "" || byID[sj.ID] != nil {
					continue
				}
				byID[sj.ID] = sj
				order = append(order, sj.ID)
			}
		}
	}

	if f, err := os.Open(s.journalPath()); err == nil {
		r := bufio.NewReader(f)
		for {
			line, err := r.ReadBytes('\n')
			atEOF := err != nil
			if len(line) > 0 {
				var e journalEntry
				if json.Unmarshal(line, &e) != nil {
					// Corrupt or torn line: skip. A torn line can only be
					// the journal's tail (appends are single writes), so
					// nothing after it is lost.
					rs.Skipped++
				} else {
					applyEntry(&e, byID, &order, rs)
				}
			}
			if atEOF {
				break
			}
		}
		f.Close()
	}

	for _, id := range order {
		rs.Jobs = append(rs.Jobs, byID[id])
	}
	for _, sj := range rs.Jobs {
		if n := jobNumber(sj.ID); n > rs.NextID {
			rs.NextID = n
		}
	}
	return rs
}

// applyEntry folds one journal entry into the recovery state.
func applyEntry(e *journalEntry, byID map[string]*storedJob, order *[]string, rs *recoveredState) {
	switch {
	case e.Submit != nil && e.Submit.ID != "":
		if byID[e.Submit.ID] != nil {
			return // replayed after a partial compaction: already known
		}
		byID[e.Submit.ID] = e.Submit
		*order = append(*order, e.Submit.ID)
	case e.State != nil:
		sj := byID[e.State.ID]
		if sj == nil {
			rs.Skipped++
			return
		}
		sj.State = e.State.State
		sj.Error = e.State.Error
		at := e.State.At
		switch {
		case e.State.State == StateRunning:
			sj.Started = &at
			// A (re)start invalidates any previously journaled records:
			// the run streams a fresh, bit-identical set.
			sj.Records = nil
			sj.Report = nil
		case e.State.State.terminal():
			sj.Finished = &at
		}
	case e.Cell != nil:
		sj := byID[e.Cell.ID]
		if sj == nil || e.Cell.Record == nil || e.Cell.Record.Index < 0 {
			rs.Skipped++
			return
		}
		// Place by index so duplicate replays are idempotent; the stream
		// is in plan order, so the slice only ever grows by one.
		for len(sj.Records) <= e.Cell.Record.Index {
			sj.Records = append(sj.Records, nil)
		}
		sj.Records[e.Cell.Record.Index] = e.Cell.Record
	case e.Report != nil:
		if sj := byID[e.Report.ID]; sj != nil {
			sj.Report = e.Report.Report
		} else {
			rs.Skipped++
		}
	case e.ETA != nil:
		rs.ETA = e.ETA
	case e.Forget != nil:
		if byID[e.Forget.ID] != nil {
			delete(byID, e.Forget.ID)
			for i, id := range *order {
				if id == e.Forget.ID {
					*order = append((*order)[:i], (*order)[i+1:]...)
					break
				}
			}
		}
	default:
		rs.Skipped++ // unknown entry kind (version skew): skip
	}
}

// jobNumber parses the numeric suffix of "job-N" IDs (0 when foreign).
func jobNumber(id string) int {
	var n int
	if _, err := fmt.Sscanf(id, "job-%d", &n); err != nil {
		return 0
	}
	return n
}

// compact atomically replaces the snapshot with snap and truncates the
// journal. Failures leave the previous snapshot + journal intact — the
// store keeps appending and the next compaction retries.
func (s *Store) compact(snap *snapshotFile) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.frozen {
		return
	}
	b, err := json.MarshalIndent(snap, "", " ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.snapshotPath()); err != nil {
		os.Remove(tmp.Name())
		return
	}
	// Snapshot is durable; the journal's contents are now redundant.
	// (Crash before this truncate: replaying the stale entries over the
	// new snapshot is idempotent — see the file comment.)
	if s.journal != nil {
		_ = s.journal.Truncate(0)
	}
}

// close freezes the store and closes the journal.
func (s *Store) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.frozen = true
	if s.journal != nil {
		s.journal.Close()
		s.journal = nil
	}
}

// journalBytes is a test helper view of the journal (what a crash would
// leave on disk at this instant).
func (s *Store) journalBytes() []byte {
	b, _ := os.ReadFile(s.journalPath())
	return b
}
