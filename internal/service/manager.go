// Package service is the sweep-level service front-end: a job manager and
// an HTTP/NDJSON server over the sweep engine's wire layer
// (internal/sweep's JobRequest/CellRecord/ScenarioInfo), the step from
// "two CLIs that link the whole simulator" toward the north-star
// multi-tenant system. A job is one submitted sweep: it is planned at
// admission (invalid scenarios and filters are rejected synchronously),
// queued, executed with bounded concurrency over internal/runner's worker
// pool, and streamed as flat cell records in deterministic plan order —
// the same records the in-process path produces, bit-identically.
//
// Admission control is fed by the simulation-result cache's counters
// (simcache.Stats): a bounded queue rejects submit bursts, and when a
// byte budget is configured, sustained eviction pressure near the budget
// rejects new work instead of letting every tenant's job thrash the
// shared cache.
package service

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync"
	"time"

	"gpusimpow/internal/simcache"
	"gpusimpow/internal/sweep"
)

// Options configures a Manager.
type Options struct {
	// MaxConcurrent bounds how many jobs execute at once (each job
	// additionally fans out internally over internal/runner's
	// GOMAXPROCS-sized pool). <= 0 selects 2.
	MaxConcurrent int
	// MaxQueued bounds the submitted-but-not-started queue; submissions
	// beyond it are rejected with ErrBusy. <= 0 selects 16.
	MaxQueued int
	// CachePressure is the fraction of the simulation cache's byte budget
	// above which rising eviction counts reject new jobs (0 selects 0.9).
	// Irrelevant when no byte budget is configured.
	CachePressure float64
	// RetainJobs bounds how many terminal (done/failed/canceled) jobs stay
	// in the table — their records back /cells replays and /report, so
	// retention is the job-state memory bound. Oldest terminal jobs are
	// pruned first; queued and running jobs are never pruned. <= 0 keeps
	// everything.
	RetainJobs int
	// RetainAge prunes terminal jobs whose finish time is older than this,
	// independent of RetainJobs. 0 keeps everything.
	RetainAge time.Duration
	// StateDir enables the durable job store (see store.go): submissions,
	// state transitions, cell records, reports and the ETA calibration are
	// journaled under this directory, and OpenManager recovers them —
	// terminal jobs restore intact, queued jobs re-enqueue, jobs that were
	// running when the process died are marked interrupted and re-execute.
	// Empty keeps the PR-4 in-memory-only behavior.
	StateDir string
	// JobTimeoutScale scales the EWMA-calibrated wall-clock estimate of a
	// job into its timeout: a job is failed once it has run longer than
	// Scale x its calibrated estimate (never less than JobTimeoutFloor).
	// Timeouts only engage once the ETA model has at least one
	// observation — an uncalibrated daemon cannot distinguish slow from
	// stuck. 0 selects 20; negative disables timeouts.
	JobTimeoutScale float64
	// JobTimeoutFloor is the minimum per-job timeout (0 selects 30s) —
	// the calibrated estimate of a tiny job is milliseconds, and a 20x
	// margin of milliseconds would misfire on any scheduling hiccup.
	JobTimeoutFloor time.Duration
}

func (o *Options) withDefaults() Options {
	out := *o
	if out.MaxConcurrent <= 0 {
		out.MaxConcurrent = 2
	}
	if out.MaxQueued <= 0 {
		out.MaxQueued = 16
	}
	if out.CachePressure <= 0 {
		out.CachePressure = 0.9
	}
	if out.JobTimeoutScale == 0 {
		out.JobTimeoutScale = 20
	}
	if out.JobTimeoutFloor <= 0 {
		out.JobTimeoutFloor = 30 * time.Second
	}
	return out
}

// JobState is a job's lifecycle position.
type JobState string

const (
	StateQueued  JobState = "queued"
	StateRunning JobState = "running"
	// StateInterrupted marks a job whose execution was cut short by
	// process death or a drain deadline rather than by anyone's choice:
	// it is queued for re-execution (deterministic simulation makes the
	// re-run bit-identical), so it is NOT terminal — consumers keep
	// waiting exactly as they would for a queued job.
	StateInterrupted JobState = "interrupted"
	StateDone        JobState = "done"
	StateFailed      JobState = "failed"
	StateCanceled    JobState = "canceled"
)

// terminal reports whether no further transitions can happen.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// JobStatus is the wire form of one job's state.
type JobStatus struct {
	ID       string       `json:"id"`
	Scenario string       `json:"scenario"`
	Filter   sweep.Filter `json:"filter,omitempty"`
	Label    string       `json:"label,omitempty"`
	State    JobState     `json:"state"`
	Error    string       `json:"error,omitempty"`
	Cells    int          `json:"cells"`
	// TimingRuns is the plan's timing-group count — what the job will
	// actually simulate after dedup.
	TimingRuns int `json:"timingRuns"`
	// EstCycles is the plan's static cost estimate (see sweep.Plan.Cost).
	EstCycles uint64 `json:"estCycles,omitempty"`
	// DoneCells counts streamed cells; CostFraction is their cost-weighted
	// share of the whole plan.
	DoneCells    int     `json:"doneCells"`
	CostFraction float64 `json:"costFraction,omitempty"`
	// ETASeconds extrapolates the remaining wall-clock from elapsed time
	// and CostFraction while the job runs (0 when unknown).
	ETASeconds float64    `json:"etaSeconds,omitempty"`
	Created    time.Time  `json:"created"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
}

// Job is one submitted sweep.
type Job struct {
	mu   sync.Mutex
	cond *sync.Cond

	id      string
	request sweep.JobRequest
	plan    *sweep.Plan
	// cost is filled by the worker just before execution (estimation
	// builds workload instances — too heavy for the submit path); nil
	// while queued.
	cost *sweep.Cost

	state    JobState
	err      string
	created  time.Time
	started  time.Time
	finished time.Time

	// records accumulates streamed cell records; the sweep's stream
	// callback is serialized in plan order, so records[i] is always the
	// cell with Index i. fractions[i] is the cost-weighted completion
	// fraction after cell i (what the events stream reports).
	records   []*sweep.CellRecord
	fractions []float64
	costDone  float64

	// report memoizes the scenario's reduction of the finished job.
	report *sweep.Report

	// eta is the manager's shared wall-clock calibration.
	eta *etaModel

	// store is the manager's durable store (nil without one); the job
	// journals its own memoized report through it.
	store *Store

	// idemKey is the client's Idempotency-Key ("" when none): retried
	// submissions carrying it resolve to this job instead of duplicating.
	idemKey string
	// interrupted marks a running job whose cancellation means "requeue,
	// don't fail": set by a drain deadline before canceling the context.
	interrupted bool

	cancel context.CancelFunc
}

func newJob(id string, req sweep.JobRequest, plan *sweep.Plan, eta *etaModel, now time.Time) *Job {
	j := &Job{id: id, request: req, plan: plan, eta: eta, state: StateQueued, created: now}
	j.cond = sync.NewCond(&j.mu)
	return j
}

// ID returns the job's identity.
func (j *Job) ID() string { return j.id }

// Status snapshots the job.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:           j.id,
		Scenario:     j.request.Scenario,
		Filter:       j.request.Filter,
		Label:        j.request.Label,
		State:        j.state,
		Error:        j.err,
		Cells:        len(j.plan.Cells),
		TimingRuns:   j.plan.TimingRuns(),
		DoneCells:    len(j.records),
		CostFraction: j.costDone,
		Created:      j.created,
	}
	if j.cost != nil {
		st.EstCycles = j.cost.EstCycles
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if j.state == StateRunning && j.costDone < 1 {
		// Calibrated ETA first: remaining cost units scaled by the
		// manager's observed seconds-per-unit EWMA — available before this
		// job's own first cell completes, once any job has fed the model.
		// Fallback: extrapolate this job's own elapsed/progress ratio.
		calibrated := false
		if j.cost != nil && j.eta != nil {
			remaining := (1 - j.costDone) * float64(j.cost.EstCycles)
			if eta, ok := j.eta.estimate(remaining); ok {
				st.ETASeconds = eta
				calibrated = true
			}
		}
		if !calibrated && j.costDone > 0 {
			elapsed := time.Since(j.started).Seconds()
			st.ETASeconds = elapsed * (1 - j.costDone) / j.costDone
		}
	}
	return st
}

// WaitCell blocks until cell i's record is available or the job reaches a
// terminal state without producing it, whichever comes first. It returns
// the record (nil once the stream is exhausted), the job's state at that
// point, and the job error ("" unless failed/canceled). The context
// bounds the wait.
func (j *Job) WaitCell(ctx context.Context, i int) (*sweep.CellRecord, JobState, string) {
	// Wake waiters when the caller's context dies; cond.Wait cannot watch
	// a channel itself.
	stop := context.AfterFunc(ctx, func() {
		j.mu.Lock()
		j.mu.Unlock() //nolint:staticcheck // empty critical section orders the broadcast after Wait
		j.cond.Broadcast()
	})
	defer stop()

	j.mu.Lock()
	defer j.mu.Unlock()
	for len(j.records) <= i && !j.state.terminal() && ctx.Err() == nil {
		j.cond.Wait()
	}
	if len(j.records) > i {
		return j.records[i], j.state, ""
	}
	if err := ctx.Err(); err != nil {
		return nil, j.state, err.Error()
	}
	return nil, j.state, j.err
}

// WaitEvent is WaitCell's progress-event analogue: it blocks until cell
// i's record is available and wraps it in a structured sweep.Progress
// event (done/total counters, timing-run count, cost-weighted completion
// fraction) — what GET /v1/jobs/{id}/events streams.
func (j *Job) WaitEvent(ctx context.Context, i int) (*sweep.Progress, JobState, string) {
	rec, state, errMsg := j.WaitCell(ctx, i)
	if rec == nil {
		return nil, state, errMsg
	}
	pr := &sweep.Progress{
		Scenario:   j.request.Scenario,
		Done:       i + 1,
		Total:      len(j.plan.Cells),
		TimingRuns: j.plan.TimingRuns(),
		Cell:       rec,
	}
	j.mu.Lock()
	if i < len(j.fractions) {
		pr.CostFraction = j.fractions[i]
	}
	j.mu.Unlock()
	return pr, state, ""
}

// Records snapshots the job's streamed cell records, in plan order.
func (j *Job) Records() []*sweep.CellRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]*sweep.CellRecord(nil), j.records...)
}

// ErrNotReady marks a report request against a job that is still queued
// or running (mapped to 409: retry after the job completes).
type ErrNotReady struct{ State JobState }

func (e ErrNotReady) Error() string {
	return fmt.Sprintf("job is %s; the report needs a completed job", e.State)
}

// ErrGone marks a report request against a terminally failed or canceled
// job (mapped to 410: no report will ever exist — do not retry).
type ErrGone struct{ State JobState }

func (e ErrGone) Error() string {
	return fmt.Sprintf("job %s; no report will exist", e.State)
}

// ErrNoReduction marks scenarios without a Reduce hook (mapped to 404).
var ErrNoReduction = errors.New("scenario has no reduction")

// Report reduces the finished job's cell records through the scenario
// registry's Reduce hook — the server-side counterpart of the CLI's
// in-process reduce-and-render, over the exact records the job streamed.
// The result is memoized on the job (reduction is deterministic).
func (j *Job) Report() (*sweep.Report, error) {
	j.mu.Lock()
	if j.state != StateDone {
		st := j.state
		j.mu.Unlock()
		if st.terminal() { // failed or canceled: permanently reportless
			return nil, ErrGone{State: st}
		}
		return nil, ErrNotReady{State: st}
	}
	if j.report != nil {
		rep := j.report
		j.mu.Unlock()
		return rep, nil
	}
	recs := append([]*sweep.CellRecord(nil), j.records...)
	req := j.request
	j.mu.Unlock()

	sc, ok := sweep.Lookup(req.Scenario)
	if !ok || sc.Reduce == nil {
		return nil, fmt.Errorf("service: %w: %q", ErrNoReduction, req.Scenario)
	}
	// Reducers are scenario-author code running inside the daemon: contain
	// their panics to this one request (the job itself stays done — a
	// report bug must not poison a finished sweep, let alone the process).
	rep, err := func() (rep *sweep.Report, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("service: reduce panicked: %v\n%s", r, debug.Stack())
			}
		}()
		if faultpoint(FaultPanicInReduce) {
			panic("faultpoint " + FaultPanicInReduce)
		}
		return sc.Reduce(recs, req.Filter)
	}()
	if err != nil {
		return nil, err
	}
	j.mu.Lock()
	j.report = rep
	store := j.store
	j.mu.Unlock()
	if store != nil {
		store.append(journalEntry{Report: &reportEntry{ID: j.id, Report: rep}})
	}
	return rep, nil
}

// ErrBusy is returned (and mapped to 429 + Retry-After) when admission
// control rejects a submission; the service is healthy, just saturated —
// the client should back off and retry the identical request.
type ErrBusy struct{ Reason string }

func (e ErrBusy) Error() string { return "service busy: " + e.Reason }

// ErrDraining is returned (and mapped to 503 + Retry-After) while the
// manager is shutting down gracefully: no new work is admitted, but a
// replacement process may accept the retry.
var ErrDraining = errors.New("service draining: not accepting new jobs")

// Manager owns the job table, the admission policy, the worker pool and
// (when Options.StateDir is set) the durable job store.
type Manager struct {
	opts Options

	// eta calibrates cost-unit wall-clock across all jobs (see eta.go).
	eta etaModel

	// store is the durable journal+snapshot (nil without StateDir).
	store *Store

	mu            sync.Mutex
	jobs          map[string]*Job
	idem          map[string]string // Idempotency-Key -> job ID
	order         []string          // creation order, for listings
	nextID        int
	runningCount  int
	lastEvictions uint64
	draining      bool
	closed        bool

	// pending is the submitted-but-not-started FIFO; workers pop from the
	// front, Cancel removes a job outright (immediately freeing its
	// admission slot), queueCond is signaled on enqueue and Close.
	pending   []*Job
	queueCond *sync.Cond

	wg sync.WaitGroup
}

// NewManager starts a manager and its workers; it panics if the durable
// store cannot be opened (use OpenManager to handle that error).
func NewManager(opts Options) *Manager {
	m, err := OpenManager(opts)
	if err != nil {
		panic(err)
	}
	return m
}

// OpenManager starts a manager and its workers. With Options.StateDir
// set, it opens the durable job store, recovers every persisted job —
// terminal jobs restore with their records and reports, queued jobs
// re-enqueue in submit order, jobs caught running by the crash requeue as
// interrupted — restores the ETA calibration, and compacts the recovered
// state into a fresh snapshot before accepting new work.
func OpenManager(opts Options) (*Manager, error) {
	o := opts.withDefaults()
	m := &Manager{
		opts: o,
		jobs: make(map[string]*Job),
		idem: make(map[string]string),
	}
	m.queueCond = sync.NewCond(&m.mu)
	if o.StateDir != "" {
		st, err := openStore(o.StateDir)
		if err != nil {
			return nil, err
		}
		m.store = st
		m.recoverFrom(st.recover())
		// Fold the recovered state (including interrupted-state rewrites
		// and any torn journal tail) into a clean snapshot + empty journal.
		st.compact(m.snapshot())
	}
	m.wg.Add(o.MaxConcurrent)
	for i := 0; i < o.MaxConcurrent; i++ {
		go m.worker()
	}
	return m, nil
}

// recoverFrom rebuilds the job table from the store's recovered state.
// Runs before the workers start, so no locking is needed. A stored job
// that no longer plans (scenario unregistered, filter invalid after
// version skew) is dropped — recovery skips, never crashes.
func (m *Manager) recoverFrom(rs *recoveredState) {
	m.nextID = rs.NextID
	if rs.ETA != nil {
		m.eta.restore(rs.ETA.SecPerUnit, rs.ETA.Samples)
	}
	for _, sj := range rs.Jobs {
		plan, err := sj.Request.Plan()
		if err != nil {
			continue
		}
		j := newJob(sj.ID, sj.Request, plan, &m.eta, sj.Created)
		j.idemKey = sj.Key
		j.store = m.store
		if sj.Started != nil {
			j.started = *sj.Started
		}
		switch {
		case sj.State.terminal():
			j.state = sj.State
			j.err = sj.Error
			if sj.Finished != nil {
				j.finished = *sj.Finished
			}
			// A terminal job's records must be the complete plan-order
			// stream; a gap means the journal lied (torn entries between
			// intact ones cannot happen, but a forged/edited journal can) —
			// demote to interrupted and re-execute rather than serve holes.
			complete := len(sj.Records) == len(plan.Cells)
			for _, r := range sj.Records {
				if r == nil {
					complete = false
				}
			}
			if sj.State == StateDone && !complete {
				j.state = StateInterrupted
				j.err = ""
				j.finished = time.Time{}
				m.pending = append(m.pending, j)
				break
			}
			j.records = sj.Records
			j.report = sj.Report
			if sj.State == StateDone {
				j.costDone = 1
			}
		case sj.State == StateQueued:
			m.pending = append(m.pending, j)
		default:
			// Running or already interrupted when the process died:
			// deterministic re-execution is bit-identical, so partial
			// records are discarded and the job re-runs from scratch.
			j.state = StateInterrupted
			m.pending = append(m.pending, j)
		}
		m.jobs[sj.ID] = j
		m.order = append(m.order, sj.ID)
		if sj.Key != "" {
			m.idem[sj.Key] = sj.ID
		}
	}
}

// snapshot captures the full persistent state for compaction.
func (m *Manager) snapshot() *snapshotFile {
	m.mu.Lock()
	ids := append([]string(nil), m.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, m.jobs[id])
	}
	nextID := m.nextID
	m.mu.Unlock()
	snap := &snapshotFile{Version: storeVersion, NextID: nextID}
	if sec, n := m.eta.export(); n > 0 {
		snap.ETA = &etaEntry{SecPerUnit: sec, Samples: n}
	}
	for _, j := range jobs {
		snap.Jobs = append(snap.Jobs, j.stored())
	}
	return snap
}

// stored snapshots one job into its persisted form.
func (j *Job) stored() *storedJob {
	j.mu.Lock()
	defer j.mu.Unlock()
	sj := &storedJob{
		ID:      j.id,
		Request: j.request,
		Key:     j.idemKey,
		State:   j.state,
		Error:   j.err,
		Created: j.created,
	}
	// A job snapshotted mid-run persists as interrupted: if this snapshot
	// is the one a restart recovers, the run it describes is already dead.
	if sj.State == StateRunning {
		sj.State = StateInterrupted
		sj.Error = ""
	}
	if !j.started.IsZero() {
		t := j.started
		sj.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		sj.Finished = &t
	}
	if j.state.terminal() {
		sj.Records = append([]*sweep.CellRecord(nil), j.records...)
		sj.Report = j.report
	}
	return sj
}

// journal appends one entry to the durable store, if any.
func (m *Manager) journal(e journalEntry) {
	if m.store != nil {
		m.store.append(e)
	}
}

// Close stops accepting jobs immediately, cancels everything queued or
// running, waits for the workers, and persists whatever state results
// (use Shutdown for a graceful drain that keeps queued work alive).
// Idempotent, including after Shutdown.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.queueCond.Broadcast()
	jobs := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		jobs = append(jobs, j)
	}
	m.mu.Unlock()
	for _, j := range jobs {
		m.cancelJob(j)
	}
	m.wg.Wait()
	if m.store != nil {
		m.store.compact(m.snapshot())
		m.store.close()
	}
}

// admissionError applies the admission policy to one snapshot of the
// world; a pure function so the policy is unit-testable without staging
// real load. queued is the submitted-but-not-started depth, running the
// currently-executing job count.
func admissionError(st simcache.Stats, queued, running int, lastEvictions uint64, opts Options) error {
	if queued >= opts.MaxQueued {
		return ErrBusy{Reason: fmt.Sprintf("job queue full (%d queued)", queued)}
	}
	// Cache-pressure rejection: only meaningful when a byte budget bounds
	// the shared timing cache. Near-budget occupancy alone is fine (a full
	// cache is a good cache); it is occupancy combined with *rising*
	// evictions — the cache is discarding entries jobs still want — that
	// marks thrashing, where admitting more work degrades every tenant.
	// Both conditions only mean anything while jobs are actually in
	// flight: on an idle daemon the eviction delta is leftover history
	// from jobs long finished, and admitting the lone new job cannot
	// degrade anyone.
	if queued+running > 0 && st.BudgetBytes > 0 &&
		float64(st.Bytes) >= opts.CachePressure*float64(st.BudgetBytes) &&
		st.Evictions > lastEvictions {
		return ErrBusy{Reason: fmt.Sprintf(
			"simulation cache thrashing (%d/%d bytes, %d evictions)",
			st.Bytes, st.BudgetBytes, st.Evictions)}
	}
	return nil
}

// Submit validates, plans and enqueues one job request. Unknown
// scenarios, non-sweep scenarios and invalid filters fail here,
// synchronously; admission rejections return ErrBusy, a draining or
// closed manager ErrDraining.
func (m *Manager) Submit(req sweep.JobRequest) (*Job, error) {
	j, _, err := m.SubmitIdempotent(req, "")
	return j, err
}

// SubmitIdempotent is Submit with an optional client-chosen idempotency
// key: a key that already named a submission returns that job with
// replayed=true instead of enqueuing a duplicate — the contract that
// makes client-side submit retries safe (the first attempt's response may
// have been lost after the server processed it). Keys survive restarts
// (they are journaled with the job) and are forgotten when the job is
// pruned.
func (m *Manager) SubmitIdempotent(req sweep.JobRequest, key string) (j *Job, replayed bool, err error) {
	plan, err := req.Plan()
	if err != nil {
		return nil, false, err
	}

	m.mu.Lock()
	if key != "" {
		if id, ok := m.idem[key]; ok {
			if prev := m.jobs[id]; prev != nil {
				m.mu.Unlock()
				return prev, true, nil
			}
		}
	}
	if m.closed || m.draining {
		m.mu.Unlock()
		return nil, false, ErrDraining
	}
	st := simcache.Default().Stats()
	if err := admissionError(st, len(m.pending), m.runningCount, m.lastEvictions, m.opts); err != nil {
		m.lastEvictions = st.Evictions
		m.mu.Unlock()
		return nil, false, err
	}
	m.lastEvictions = st.Evictions
	m.nextID++
	id := fmt.Sprintf("job-%d", m.nextID)
	j = newJob(id, req, plan, &m.eta, time.Now())
	j.idemKey = key
	j.store = m.store
	m.jobs[id] = j
	m.order = append(m.order, id)
	m.pending = append(m.pending, j)
	if key != "" {
		m.idem[key] = id
	}
	m.queueCond.Signal()
	m.mu.Unlock()
	m.journal(journalEntry{Submit: j.stored()})
	// Age-based retention advances on submissions too, so an idle daemon
	// sheds stale terminal jobs on its next contact.
	m.prune()
	return j, false, nil
}

// prune applies the retention policy: terminal jobs beyond RetainJobs
// (newest kept) or finished longer than RetainAge ago leave the table.
// Queued and running jobs always stay. Call with no locks held.
func (m *Manager) prune() {
	if m.opts.RetainJobs <= 0 && m.opts.RetainAge <= 0 {
		return
	}
	now := time.Now()
	m.mu.Lock()
	kept := make([]string, 0, len(m.order))
	var evicted []string
	terminal := 0
	for i := len(m.order) - 1; i >= 0; i-- { // newest first
		id := m.order[i]
		j := m.jobs[id]
		j.mu.Lock()
		isTerminal := j.state.terminal()
		finished := j.finished
		j.mu.Unlock()
		evict := false
		if isTerminal {
			terminal++
			if m.opts.RetainJobs > 0 && terminal > m.opts.RetainJobs {
				evict = true
			}
			if m.opts.RetainAge > 0 && now.Sub(finished) > m.opts.RetainAge {
				evict = true
			}
		}
		if evict {
			delete(m.jobs, id)
			if j.idemKey != "" {
				delete(m.idem, j.idemKey)
			}
			evicted = append(evicted, id)
		} else {
			kept = append(kept, id)
		}
	}
	// kept is newest-first; restore creation order.
	for l, r := 0, len(kept)-1; l < r; l, r = l+1, r-1 {
		kept[l], kept[r] = kept[r], kept[l]
	}
	m.order = kept
	m.mu.Unlock()
	// Evictions shrink durable state too: journal the removals, then fold
	// everything into a fresh snapshot so the records/reports of pruned
	// jobs actually leave the disk (-retain/-retain-age bound the store's
	// footprint, not just the table's).
	if len(evicted) > 0 && m.store != nil {
		for _, id := range evicted {
			m.journal(journalEntry{Forget: &forgetEntry{ID: id}})
		}
		m.store.compact(m.snapshot())
	}
}

// Job returns a job by ID.
func (m *Manager) Job(id string) (*Job, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	return j, ok
}

// Jobs lists every job in creation order.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]*Job, 0, len(m.order))
	for _, id := range m.order {
		out = append(out, m.jobs[id])
	}
	return out
}

// Statuses lists every job's status in creation order (Jobs already
// walks m.order, which is appended at submit time).
func (m *Manager) Statuses() []JobStatus {
	jobs := m.Jobs()
	out := make([]JobStatus, len(jobs))
	for i, j := range jobs {
		out[i] = j.Status()
	}
	return out
}

// Cancel cancels a job: queued jobs are marked canceled and skipped by
// the workers; running jobs have their context canceled and stop at the
// next cell boundary. Canceling a terminal job is a no-op.
func (m *Manager) Cancel(id string) error {
	j, ok := m.Job(id)
	if !ok {
		return fmt.Errorf("service: no job %q", id)
	}
	m.cancelJob(j)
	return nil
}

func (m *Manager) cancelJob(j *Job) {
	defer m.prune() // a queued job canceled here turns terminal
	// Remove the job from the pending queue first (freeing its admission
	// slot on the spot); m.mu strictly before j.mu, matching the worker.
	m.mu.Lock()
	for i, p := range m.pending {
		if p == j {
			m.pending = append(m.pending[:i], m.pending[i+1:]...)
			break
		}
	}
	m.mu.Unlock()

	j.mu.Lock()
	switch j.state {
	case StateQueued, StateInterrupted:
		j.state = StateCanceled
		j.err = "canceled before start"
		j.finished = time.Now()
		finished := j.finished
		j.cond.Broadcast()
		j.mu.Unlock()
		m.journal(journalEntry{State: &stateEntry{
			ID: j.id, State: StateCanceled, Error: "canceled before start", At: finished,
		}})
	case StateRunning:
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		j.mu.Unlock()
	}
}

// worker pops pending jobs until Close; while draining it pops nothing,
// so queued jobs persist for the next process instead of racing the
// shutdown deadline.
func (m *Manager) worker() {
	defer m.wg.Done()
	for {
		m.mu.Lock()
		for !m.closed && (m.draining || len(m.pending) == 0) {
			m.queueCond.Wait()
		}
		if m.closed {
			m.mu.Unlock()
			return
		}
		j := m.pending[0]
		m.pending = m.pending[1:]
		m.runningCount++
		m.mu.Unlock()
		m.runJob(j)
		m.mu.Lock()
		m.runningCount--
		m.mu.Unlock()
	}
}

// runJob executes one job end to end.
func (m *Manager) runJob(j *Job) {
	parent, cancel := context.WithCancel(context.Background())
	defer cancel()

	j.mu.Lock()
	if j.state != StateQueued && j.state != StateInterrupted {
		j.mu.Unlock() // canceled between pop and start
		return
	}
	// An interrupted job re-executes from scratch: the determinism contract
	// makes the fresh stream bit-identical to the one the crash cut short,
	// so partial progress is worthless and dropped.
	j.state = StateRunning
	j.started = time.Now()
	j.err = ""
	j.records = nil
	j.fractions = nil
	j.costDone = 0
	j.report = nil
	j.interrupted = false
	j.cancel = cancel
	started := j.started
	j.mu.Unlock()
	m.journal(journalEntry{State: &stateEntry{ID: j.id, State: StateRunning, At: started}})

	// Cost estimation builds workload instances, so it runs on the worker
	// rather than in the submit path; best effort — a plan that executes
	// can still fail to estimate, which only costs the progress fractions.
	// Builds are scenario-author code: contain their panics (estimation
	// runs inline on this worker goroutine, outside the runner pool's own
	// panic conversion).
	cost, costErr := func() (c *sweep.Cost, err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("cost estimation panicked: %v", r)
			}
		}()
		return j.plan.Cost()
	}()
	if costErr == nil {
		j.mu.Lock()
		j.cost = cost
		j.mu.Unlock()
	}

	// Wall-clock timeout, derived from the calibrated ETA: a job that has
	// run JobTimeoutScale times its estimate is stuck, not slow. Only
	// engages once the EWMA has absorbed at least one observation — an
	// uncalibrated daemon cannot tell the difference.
	ctx := parent
	if m.opts.JobTimeoutScale > 0 && cost != nil {
		if est, ok := m.eta.estimate(float64(cost.EstCycles)); ok {
			d := time.Duration(m.opts.JobTimeoutScale * est * float64(time.Second))
			if d < m.opts.JobTimeoutFloor {
				d = m.opts.JobTimeoutFloor
			}
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(parent, d)
			defer tcancel()
		}
	}

	// Stream callbacks arrive serialized in plan order, so the wall-clock
	// between consecutive callbacks is the pipeline's per-cell throughput —
	// the sample the ETA calibration wants. The whole execution runs under
	// a recover: a panicking scenario on this goroutine fails this job with
	// the stack in its error, never the daemon (panics on the runner pool's
	// goroutines surface as a *runner.PanicError return instead).
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
			}
		}()
		lastEmit := time.Now()
		_, err = j.plan.RunContext(ctx, func(cr *sweep.CellResult) {
			rec := j.plan.Record(cr)
			now := time.Now()
			j.mu.Lock()
			j.records = append(j.records, rec)
			if j.cost != nil {
				j.costDone += j.cost.PerCell[rec.Index]
				m.eta.observe(j.cost.PerCell[rec.Index]*float64(j.cost.EstCycles), now.Sub(lastEmit).Seconds())
			}
			j.fractions = append(j.fractions, j.costDone)
			lastEmit = now
			j.cond.Broadcast()
			j.mu.Unlock()
			m.journal(journalEntry{Cell: &cellEntry{ID: j.id, Record: rec}})
		})
		return err
	}()

	j.mu.Lock()
	switch {
	case err == nil:
		j.finished = time.Now()
		j.state = StateDone
		j.costDone = 1
	case j.interrupted:
		// A drain deadline cut this run short: not a failure, not a
		// cancellation — the job requeues (here in state only; the next
		// process's recovery re-enqueues it) for bit-identical re-execution.
		j.state = StateInterrupted
		j.err = ""
	case ctx.Err() == context.DeadlineExceeded:
		j.finished = time.Now()
		j.state = StateFailed
		j.err = fmt.Sprintf("timed out (exceeded %.0fx the calibrated estimate)", m.opts.JobTimeoutScale)
	case parent.Err() != nil:
		j.finished = time.Now()
		j.state = StateCanceled
		j.err = "canceled"
	default:
		j.finished = time.Now()
		j.state = StateFailed
		j.err = err.Error()
	}
	state, errMsg, finished := j.state, j.err, j.finished
	j.cond.Broadcast()
	j.mu.Unlock()
	m.journal(journalEntry{State: &stateEntry{ID: j.id, State: state, Error: errMsg, At: finished}})
	m.prune()
}

// interrupt cancels a running job while marking the cancellation as
// "requeue for re-execution, don't fail" — what a drain deadline means.
func (j *Job) interrupt() {
	j.mu.Lock()
	if j.state != StateRunning {
		j.mu.Unlock()
		return
	}
	j.interrupted = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Health reports the manager's liveness for GET /v1/healthz: ok until
// draining or closed.
func (m *Manager) Health() (state string, ok bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch {
	case m.closed:
		return "closed", false
	case m.draining:
		return "draining", false
	}
	return "ok", true
}

// HealthInfo is the enriched GET /v1/healthz body: enough signal for a
// fleet router to score backends (load, cache heat, drain state) instead
// of treating health as a boolean. The bare 200/503 status-code contract
// is unchanged — existing checks that only look at the code keep working.
type HealthInfo struct {
	Status   string         `json:"status"` // "ok", "draining", "closed"
	Draining bool           `json:"draining,omitempty"`
	Queued   int            `json:"queued"`  // submitted but not started
	Running  int            `json:"running"` // currently executing
	Jobs     int            `json:"jobs"`    // total retained (incl. terminal)
	Cache    simcache.Stats `json:"cache"`   // process-wide simcache counters
}

// HealthInfo returns the enriched health payload; ok mirrors Health().
func (m *Manager) HealthInfo() (HealthInfo, bool) {
	state, ok := m.Health()
	m.mu.Lock()
	hi := HealthInfo{
		Status:   state,
		Draining: state != "ok",
		Queued:   len(m.pending),
		Running:  m.runningCount,
		Jobs:     len(m.jobs),
	}
	m.mu.Unlock()
	hi.Cache = simcache.Default().Stats()
	return hi, ok
}

// Shutdown drains the manager gracefully: new submissions are rejected
// with ErrDraining, queued jobs stay queued (persisted for the next
// process), and running jobs get until ctx expires to finish — then they
// are interrupted, checkpointed as such, and will re-execute on recovery.
// Finally all state is folded into a fresh snapshot and the store closed.
func (m *Manager) Shutdown(ctx context.Context) {
	m.mu.Lock()
	if m.closed || m.draining {
		m.mu.Unlock()
		return
	}
	m.draining = true
	m.queueCond.Broadcast() // idle workers re-check and park
	m.mu.Unlock()

	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	interrupted := false
	for {
		m.mu.Lock()
		running := m.runningCount
		m.mu.Unlock()
		if running == 0 {
			break
		}
		if ctx.Err() != nil && !interrupted {
			interrupted = true
			for _, j := range m.Jobs() {
				j.interrupt()
			}
		}
		<-tick.C
	}

	m.mu.Lock()
	m.closed = true
	m.queueCond.Broadcast()
	m.mu.Unlock()
	m.wg.Wait()
	if m.store != nil {
		m.store.compact(m.snapshot())
		m.store.close()
	}
}
