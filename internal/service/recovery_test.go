package service

import (
	"context"
	"errors"
	"io"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"gpusimpow/internal/config"
	"gpusimpow/internal/sweep"
)

// panicArmed gates svcpanic's panic: only armed tests trip it (unarmed,
// the scenario builds normally — DescribeAll cost-estimates every
// registered sweep, which must not blow up the metadata endpoint).
var panicArmed atomic.Bool

func init() {
	// svcpanic's workload build panics while armed — the stand-in for a
	// buggy scenario author. The daemon must fail the job, not die.
	sweep.Register(sweep.Scenario{
		Name: "svcpanic", Title: "service-test panicking scenario",
		Spec: func() *sweep.Spec {
			return &sweep.Spec{
				Name:  "svcpanic",
				Title: "service-test panicking scenario",
				Axes:  []sweep.Axis{{Name: "v", Values: []sweep.Value{{Name: "only"}}}},
				Base:  config.GT240,
				Workload: func(*sweep.Cell) (*sweep.Workload, error) {
					return &sweep.Workload{Name: "svcpanic", Build: func(*config.GPU) (*sweep.Instance, error) {
						if panicArmed.Load() {
							panic("svcpanic: deliberate test panic")
						}
						l, mem := blockKernel()
						return &sweep.Instance{Mem: mem, Units: []sweep.Unit{{Name: l.Prog.Name, Launch: l}}}, nil
					}}, nil
				},
				Sim: true,
			}
		},
		Print: func(io.Writer, sweep.Filter) error { return nil },
	})
}

// resetFaultpoint re-arms a named faultpoint (they fire once per process;
// tests must stay correct under -count=N).
func resetFaultpoint(name string) {
	faultMu.Lock()
	delete(faultHits, name)
	faultMu.Unlock()
}

// referenceRun executes one request on a store-less manager and returns
// the uninterrupted records and report — the ground truth recovery must
// reproduce bit-identically.
func referenceRun(t *testing.T, req sweep.JobRequest) ([]*sweep.CellRecord, *sweep.Report) {
	t.Helper()
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	j, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	rep, err := j.Report()
	if err != nil && !errors.Is(err, ErrNoReduction) {
		t.Fatal(err)
	}
	return j.Records(), rep
}

// A terminal job survives a restart intact: records, memoized report and
// timestamps all restore from disk, with no re-execution.
func TestRecoverTerminalJobIntact(t *testing.T) {
	dir := t.TempDir()
	m1, err := OpenManager(Options{MaxConcurrent: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := m1.Submit(sweep.JobRequest{Scenario: "ablation-processnode", Label: "durable"})
	if err != nil {
		t.Fatal(err)
	}
	st1 := waitState(t, j1, StateDone)
	recs := j1.Records()
	rep, err := j1.Report()
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := OpenManager(Options{MaxConcurrent: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, ok := m2.Job(j1.ID())
	if !ok {
		t.Fatal("job not recovered")
	}
	// Recovered as done immediately — a re-execution would read queued or
	// interrupted at this instant.
	st2 := j2.Status()
	if st2.State != StateDone || st2.DoneCells != len(recs) || st2.Label != "durable" {
		t.Fatalf("recovered status %+v", st2)
	}
	if !st2.Created.Equal(st1.Created) || st2.Started == nil || !st2.Started.Equal(*st1.Started) ||
		st2.Finished == nil || !st2.Finished.Equal(*st1.Finished) {
		t.Errorf("timestamps drifted: %+v vs %+v", st2, st1)
	}
	if !reflect.DeepEqual(j2.Records(), recs) {
		t.Error("recovered records differ from the originals")
	}
	rep2, err := j2.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep2, rep) {
		t.Error("recovered report differs from the original")
	}
}

// A job the process was executing when it died recovers as interrupted
// and re-executes to a bit-identical result. The crash image is built
// through the store's own write path: submission, the running
// transition, two of five cell records — then nothing, as if the process
// was killed mid-stream.
func TestCrashRecoveryReExecutesBitIdentically(t *testing.T) {
	req := sweep.JobRequest{Scenario: "ablation-processnode"}
	refRecs, refRep := referenceRun(t, req)

	dir := t.TempDir()
	s, err := openStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	s.append(journalEntry{Submit: &storedJob{ID: "job-1", Request: req, State: StateQueued, Created: now}})
	s.append(journalEntry{State: &stateEntry{ID: "job-1", State: StateRunning, At: now}})
	s.append(journalEntry{Cell: &cellEntry{ID: "job-1", Record: refRecs[0]}})
	s.append(journalEntry{Cell: &cellEntry{ID: "job-1", Record: refRecs[1]}})
	s.close()

	m, err := OpenManager(Options{MaxConcurrent: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	j, ok := m.Job("job-1")
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	waitState(t, j, StateDone)
	if !reflect.DeepEqual(j.Records(), refRecs) {
		t.Error("re-executed records differ from the uninterrupted run")
	}
	rep, err := j.Report()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, refRep) {
		t.Error("re-executed report differs from the uninterrupted run")
	}
	// The recovered daemon never reuses the crashed job's ID.
	j2, err := m.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j2.ID() != "job-2" {
		t.Errorf("next ID %s, want job-2", j2.ID())
	}
}

// Graceful drain: submissions are rejected while draining, and a running
// job that outlives the deadline is checkpointed as interrupted — then
// re-executes to completion in the next process.
func TestShutdownCheckpointsRunningJob(t *testing.T) {
	refRecs, _ := referenceRun(t, sweep.JobRequest{Scenario: "svcblock"})

	dir := t.TempDir()
	m, err := OpenManager(Options{MaxConcurrent: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	blockArm()
	defer blockOpen()
	builds := blockBuilds.Load()
	j, err := m.Submit(sweep.JobRequest{Scenario: "svcblock"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateRunning)
	deadline := time.Now().Add(30 * time.Second)
	for blockBuilds.Load() == builds {
		if time.Now().After(deadline) {
			t.Fatal("worker never reached the blocking build")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Drain with an already-expired deadline: the running job must be
	// interrupted, not waited for.
	expired, cancel := context.WithCancel(context.Background())
	cancel()
	done := make(chan struct{})
	go func() { m.Shutdown(expired); close(done) }()

	// The drain marks the job interrupted (it is still stuck in the
	// blocked build) and rejects new submissions.
	for {
		j.mu.Lock()
		interrupted := j.interrupted
		j.mu.Unlock()
		if interrupted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shutdown never interrupted the running job")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := m.Submit(sweep.JobRequest{Scenario: "svcblock"}); !errors.Is(err, ErrDraining) {
		t.Errorf("submit during drain: %v, want ErrDraining", err)
	}
	blockOpen()
	<-done
	if st := j.Status(); st.State != StateInterrupted {
		t.Fatalf("job after drain: %+v, want interrupted", st)
	}

	// Next process: the checkpointed job re-enqueues and completes.
	m2, err := OpenManager(Options{MaxConcurrent: 1, StateDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	j2, ok := m2.Job(j.ID())
	if !ok {
		t.Fatal("interrupted job not recovered")
	}
	waitState(t, j2, StateDone)
	if !reflect.DeepEqual(j2.Records(), refRecs) {
		t.Error("re-executed records differ from the uninterrupted run")
	}
}

// The EWMA-calibrated timeout fails a stuck job. A poisoned calibration
// (absurdly fast seconds-per-unit) plus a nanosecond floor makes any real
// job "stuck" instantly, without staging an actual hang.
func TestJobTimeoutFromCalibration(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1, JobTimeoutScale: 1e-9, JobTimeoutFloor: time.Nanosecond})
	defer m.Close()
	m.eta.observe(1e12, 1e-9) // ≈1e-21 s per cost unit: everything is "stuck"
	j, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateFailed)
	if !strings.Contains(st.Error, "timed out") {
		t.Errorf("timeout error %q", st.Error)
	}
}

// A panicking workload build fails its own job — with the panic and
// stack in the job error — and the daemon keeps serving.
func TestPanicIsolation(t *testing.T) {
	panicArmed.Store(true)
	defer panicArmed.Store(false)
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	j, err := m.Submit(sweep.JobRequest{Scenario: "svcpanic"})
	if err != nil {
		t.Fatal(err)
	}
	st := waitState(t, j, StateFailed)
	if !strings.Contains(st.Error, "svcpanic: deliberate test panic") ||
		!strings.Contains(st.Error, "goroutine") {
		t.Errorf("panic error should carry the value and a stack, got %q", st.Error)
	}
	// The daemon survived: the next job runs normally.
	j2, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j2, StateDone)
}

// The panic-in-reduce faultpoint: a panicking reducer fails that one
// report request; the job stays done, and the next request succeeds.
func TestReducePanicIsolation(t *testing.T) {
	m := NewManager(Options{MaxConcurrent: 1})
	defer m.Close()
	j, err := m.Submit(sweep.JobRequest{Scenario: "ablation-processnode"})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)

	resetFaultpoint(FaultPanicInReduce)
	t.Setenv("GPUSIMPOW_FAULTPOINT", FaultPanicInReduce)
	if _, err := j.Report(); err == nil || !strings.Contains(err.Error(), "reduce panicked") {
		t.Fatalf("armed reduce faultpoint: %v, want a contained panic", err)
	}
	if st := j.Status(); st.State != StateDone {
		t.Errorf("a report panic must not poison the job: %+v", st)
	}
	rep, err := j.Report() // the faultpoint fires once; this one reduces
	if err != nil || rep == nil {
		t.Fatalf("second report after contained panic: %v", err)
	}
}
