package service

import (
	"context"
	"net/http/httptest"
	"reflect"
	"testing"

	"gpusimpow/internal/sweep"
)

// The acceptance contract of the service: running a scenario in-process
// and running it through a daemon produce identical cell records —
// bit-identical metrics, identical order — for the paper's headline
// validation grid (fig6, all four stages) and the new L1×scheduler
// extension. Float64 values survive the JSON hop exactly (encoding/json
// emits the shortest round-trip representation), so reflect.DeepEqual on
// the decoded records is a bitwise comparison.
func TestRemoteEqualsInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig6 grid in -short mode")
	}
	m := NewManager(Options{MaxConcurrent: 2, MaxQueued: 8})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	for _, scenario := range []string{"fig6", "l1sched"} {
		req := sweep.JobRequest{Scenario: scenario}

		plan, err := req.Plan()
		if err != nil {
			t.Fatal(err)
		}
		local, err := plan.Run(nil)
		if err != nil {
			t.Fatal(err)
		}
		localRecs := plan.Records(local)

		var remoteRecs []*sweep.CellRecord
		final, err := c.Run(ctx, req, func(r *sweep.CellRecord) error {
			remoteRecs = append(remoteRecs, r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("%s: job ended %s: %s", scenario, final.State, final.Error)
		}

		if len(remoteRecs) != len(localRecs) {
			t.Fatalf("%s: %d remote records, %d local", scenario, len(remoteRecs), len(localRecs))
		}
		for i := range localRecs {
			if !reflect.DeepEqual(localRecs[i], remoteRecs[i]) {
				t.Errorf("%s: cell %d (%s) diverged between local and remote:\n local  %+v\n remote %+v",
					scenario, i, localRecs[i].CoordString(), localRecs[i], remoteRecs[i])
			}
		}
	}
}

// The reduction layer's acceptance contract: the report a daemon reduces
// server-side from a job's records (GET /v1/jobs/{id}/report) equals the
// in-process reduction of the same request — reflect.DeepEqual after the
// JSON hop, for the paper's headline figure (fig6), the DVFS curve and
// the L1×scheduler extension.
func TestRemoteReportEqualsInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("full fig6 grid in -short mode")
	}
	m := NewManager(Options{MaxConcurrent: 2, MaxQueued: 8})
	defer m.Close()
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	c := &Client{Base: srv.URL, HTTP: srv.Client()}
	ctx := context.Background()

	for _, scenario := range []string{"fig6", "dvfs", "l1sched"} {
		req := sweep.JobRequest{Scenario: scenario}

		want, err := sweep.BuildReport(scenario, nil)
		if err != nil {
			t.Fatal(err)
		}

		final, err := c.Run(ctx, req, func(*sweep.CellRecord) error { return nil })
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone {
			t.Fatalf("%s: job ended %s: %s", scenario, final.State, final.Error)
		}
		got, err := c.Report(ctx, final.ID)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: remote report diverged from in-process reduction:\n got %+v\nwant %+v",
				scenario, got, want)
		}
	}
}
