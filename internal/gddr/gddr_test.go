package gddr

import (
	"math"
	"testing"
	"testing/quick"
)

func TestIdlePowerPlausible(t *testing.T) {
	c := HynixGDDR5(4.0)
	p := c.IdlePower()
	// A GDDR5 device idles at a few hundred milliwatts.
	if p < 0.05 || p > 1.0 {
		t.Errorf("idle power %.3f W outside plausible [0.05, 1.0] W", p)
	}
}

func TestPowerComponents(t *testing.T) {
	c := HynixGDDR5(4.0)
	b, err := c.Power(Activity{
		Seconds:        1e-3,
		Activates:      5000,
		ReadBursts:     80000,
		WriteBursts:    20000,
		ActiveFraction: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Background <= 0 || b.Activate <= 0 || b.ReadWrite <= 0 || b.Termination <= 0 || b.Refresh <= 0 {
		t.Fatalf("all components should be positive under traffic: %+v", b)
	}
	if b.Total() <= c.IdlePower() {
		t.Error("loaded device must consume more than idle")
	}
	// A heavily-read GDDR5 device draws several watts.
	if b.Total() < 0.5 || b.Total() > 10 {
		t.Errorf("busy power %.2f W outside plausible [0.5, 10] W", b.Total())
	}
}

func TestPowerErrors(t *testing.T) {
	c := HynixGDDR5(4.0)
	if _, err := c.Power(Activity{Seconds: 0}); err == nil {
		t.Error("zero interval should error")
	}
	if _, err := c.Power(Activity{Seconds: -1}); err == nil {
		t.Error("negative interval should error")
	}
}

func TestActiveFractionClamped(t *testing.T) {
	c := HynixGDDR5(4.0)
	lo, _ := c.Power(Activity{Seconds: 1, ActiveFraction: -5})
	hi, _ := c.Power(Activity{Seconds: 1, ActiveFraction: 5})
	expLo := c.VDD * c.IDD2N
	expHi := c.VDD * c.IDD3N
	if math.Abs(lo.Background-expLo) > 1e-9 {
		t.Errorf("clamped-low background %.4f != %.4f", lo.Background, expLo)
	}
	if math.Abs(hi.Background-expHi) > 1e-9 {
		t.Errorf("clamped-high background %.4f != %.4f", hi.Background, expHi)
	}
}

func TestReadCostsMoreThanWrite(t *testing.T) {
	c := HynixGDDR5(4.0)
	r, _ := c.Power(Activity{Seconds: 1e-3, ReadBursts: 50000})
	w, _ := c.Power(Activity{Seconds: 1e-3, WriteBursts: 50000})
	if r.ReadWrite <= w.ReadWrite {
		t.Error("IDD4R > IDD4W implies reads cost more than writes")
	}
}

func TestPowerScalesWithTraffic(t *testing.T) {
	c := HynixGDDR5(3.4)
	base, _ := c.Power(Activity{Seconds: 1e-3, ReadBursts: 10000, Activates: 1000})
	dbl, _ := c.Power(Activity{Seconds: 1e-3, ReadBursts: 20000, Activates: 2000})
	if dbl.Activate <= base.Activate || dbl.ReadWrite <= base.ReadWrite {
		t.Error("power must scale with command counts")
	}
	if math.Abs(dbl.Activate/base.Activate-2) > 1e-9 {
		t.Error("activate power should be linear in ACT count")
	}
}

func TestDataRateAffectsBurstDuration(t *testing.T) {
	slow := HynixGDDR5(3.4)
	fast := HynixGDDR5(4.0)
	if fast.BurstSeconds >= slow.BurstSeconds {
		t.Error("higher data rate must shorten bursts")
	}
}

func TestDefaultDataRate(t *testing.T) {
	c := HynixGDDR5(0)
	if c.BurstSeconds <= 0 {
		t.Error("default data rate should produce valid burst duration")
	}
}

func TestTerminationSaturates(t *testing.T) {
	c := HynixGDDR5(4.0)
	// Absurd burst counts: termination must not exceed pins * mW.
	b, _ := c.Power(Activity{Seconds: 1e-9, ReadBursts: 1 << 40})
	maxTerm := float64(c.DataPins) * c.TerminationMWPerPin / 1000
	if b.Termination > maxTerm+1e-12 {
		t.Errorf("termination %.4f exceeds physical cap %.4f", b.Termination, maxTerm)
	}
}

func TestPowerQuickProperties(t *testing.T) {
	c := HynixGDDR5(4.0)
	f := func(acts, rds, wrs uint16, afRaw uint8) bool {
		a := Activity{
			Seconds:        1e-3,
			Activates:      uint64(acts),
			ReadBursts:     uint64(rds),
			WriteBursts:    uint64(wrs),
			ActiveFraction: float64(afRaw) / 255,
		}
		b, err := c.Power(a)
		if err != nil {
			return false
		}
		// Non-negative components and total at least idle background.
		return b.Background > 0 && b.Activate >= 0 && b.ReadWrite >= 0 &&
			b.Termination >= 0 && b.Refresh >= 0 && b.Total() >= c.VDD*c.IDD2N
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDDR3Chip(t *testing.T) {
	d := DDR3(1.6)
	g := HynixGDDR5(4.0)
	if d.IdlePower() >= g.IdlePower() {
		t.Error("a DDR3 device idles well below a GDDR5 device")
	}
	if d.DataPins != 16 {
		t.Errorf("DDR3 width %d, want x16", d.DataPins)
	}
	b, err := d.Power(Activity{Seconds: 1e-3, Activates: 1000, ReadBursts: 20000, ActiveFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() <= d.IdlePower() {
		t.Error("busy DDR3 must beat idle")
	}
	if DDR3(0).BurstSeconds <= 0 {
		t.Error("default data rate broken")
	}
}

func TestForType(t *testing.T) {
	if c, err := ForType("", 4.0); err != nil || c.DataPins != 32 {
		t.Error("empty type should default to GDDR5")
	}
	if c, err := ForType("ddr3", 1.6); err != nil || c.DataPins != 16 {
		t.Error("ddr3 type broken")
	}
	if _, err := ForType("hbm17", 1); err == nil {
		t.Error("unknown type should error")
	}
}
