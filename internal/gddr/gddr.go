// Package gddr models graphics DRAM power following the Micron "Calculating
// Memory System Power" methodology the paper cites: total device power is
// decomposed into background, activate, read/write, termination and refresh
// components, each derived from datasheet IDD currents and the command
// activity observed by the memory-controller model.
package gddr

import "fmt"

// Chip holds datasheet-style electrical parameters for one DRAM device.
// Values are representative of the parts the two modeled cards use
// (Hynix H5GQ1H24AFR-class GDDR5 for both; the GT240 runs it slower).
type Chip struct {
	Name string
	// VDD is the core supply voltage in volts.
	VDD float64
	// Densities and interface.
	DataPins int // DQ width per device (x32 for GDDR5)

	// IDD currents in amperes (datasheet naming):
	IDD2N float64 // precharge standby
	IDD3N float64 // active standby
	IDD0  float64 // activate-precharge average over tRC
	IDD4R float64 // burst read
	IDD4W float64 // burst write
	IDD5  float64 // refresh average over tRFC

	// Timing in seconds.
	TRC   float64 // activate-to-activate, same bank
	TRFC  float64 // refresh cycle time
	TREFI float64 // average refresh interval
	// BurstSeconds is the duration of one read/write burst (BL/2 cycles of
	// the command clock for GDDR5's 8n prefetch).
	BurstSeconds float64

	// TerminationMWPerPin is the average ODT/termination power per active DQ
	// pin in milliwatts while bursting.
	TerminationMWPerPin float64
}

// HynixGDDR5 returns parameters for a 1 Gbit x32 GDDR5 device at the given
// data rate in Gbit/s/pin (e.g. 3.4 for GT240-class, 4.0 for GTX580-class).
func HynixGDDR5(dataRateGbps float64) Chip {
	if dataRateGbps <= 0 {
		dataRateGbps = 4.0
	}
	wck := dataRateGbps / 2 * 1e9 // write clock Hz (DDR)
	return Chip{
		Name:     fmt.Sprintf("H5GQ1H24AFR-%.1fGbps", dataRateGbps),
		VDD:      1.5,
		DataPins: 32,
		IDD2N:    0.115,
		IDD3N:    0.205,
		IDD0:     0.290,
		IDD4R:    0.850,
		IDD4W:    0.800,
		IDD5:     0.550,
		TRC:      40e-9,
		TRFC:     110e-9,
		TREFI:    1.9e-6,
		// burst of 8 data beats on a wck/2 command clock: 4 command cycles.
		BurstSeconds:        4 / (wck / 2),
		TerminationMWPerPin: 5.2,
	}
}

// Activity summarises DRAM command traffic for one device over an interval.
type Activity struct {
	// Seconds is the wall-clock duration of the interval.
	Seconds float64
	// Activates is the number of ACT (row open) commands.
	Activates uint64
	// ReadBursts and WriteBursts count CAS commands (one burst each).
	ReadBursts, WriteBursts uint64
	// ActiveFraction is the fraction of time at least one bank is open
	// (IDD3N vs IDD2N weighting); clamp to [0,1].
	ActiveFraction float64
}

// Breakdown is the per-component power split in watts for one device.
type Breakdown struct {
	Background  float64
	Activate    float64
	ReadWrite   float64
	Termination float64
	Refresh     float64
}

// Total returns the sum of all components.
func (b Breakdown) Total() float64 {
	return b.Background + b.Activate + b.ReadWrite + b.Termination + b.Refresh
}

// Power computes the average power of one device over the activity interval.
func (c Chip) Power(a Activity) (Breakdown, error) {
	if a.Seconds <= 0 {
		return Breakdown{}, fmt.Errorf("gddr: non-positive interval %g s", a.Seconds)
	}
	af := a.ActiveFraction
	if af < 0 {
		af = 0
	}
	if af > 1 {
		af = 1
	}
	var b Breakdown

	// Background: weighted standby current.
	b.Background = c.VDD * (c.IDD2N*(1-af) + c.IDD3N*af)

	// Activate: each ACT adds (IDD0-IDD3N)*tRC charge above standby.
	actEnergy := c.VDD * (c.IDD0 - c.IDD3N) * c.TRC
	b.Activate = actEnergy * float64(a.Activates) / a.Seconds

	// Read/write: burst current above active standby for the burst duration.
	rdE := c.VDD * (c.IDD4R - c.IDD3N) * c.BurstSeconds
	wrE := c.VDD * (c.IDD4W - c.IDD3N) * c.BurstSeconds
	b.ReadWrite = (rdE*float64(a.ReadBursts) + wrE*float64(a.WriteBursts)) / a.Seconds

	// Termination: DQ pins dissipate ODT power while bursting.
	burstFrac := float64(a.ReadBursts+a.WriteBursts) * c.BurstSeconds / a.Seconds
	if burstFrac > 1 {
		burstFrac = 1
	}
	b.Termination = burstFrac * float64(c.DataPins) * c.TerminationMWPerPin / 1000

	// Refresh: duty-cycled refresh current above standby.
	b.Refresh = c.VDD * (c.IDD5 - c.IDD3N) * c.TRFC / c.TREFI

	return b, nil
}

// IdlePower returns the device power with no traffic and all banks closed.
func (c Chip) IdlePower() float64 {
	b, _ := c.Power(Activity{Seconds: 1})
	return b.Total()
}

// DDR3 returns parameters for a 2 Gbit x16 DDR3 SDRAM device at the given
// data rate in Gbit/s/pin (e.g. 1.6 for DDR3-1600). Low-end graphics cards
// of the paper's era shipped with DDR3 instead of GDDR5; the Micron power
// methodology applies identically.
func DDR3(dataRateGbps float64) Chip {
	if dataRateGbps <= 0 {
		dataRateGbps = 1.6
	}
	ck := dataRateGbps / 2 * 1e9 // command clock (DDR)
	return Chip{
		Name:     fmt.Sprintf("DDR3-%.0f", dataRateGbps*1000),
		VDD:      1.5,
		DataPins: 16,
		IDD2N:    0.032,
		IDD3N:    0.047,
		IDD0:     0.075,
		IDD4R:    0.180,
		IDD4W:    0.185,
		IDD5:     0.210,
		TRC:      49e-9,
		TRFC:     160e-9,
		TREFI:    7.8e-6,
		// Burst of 8 beats on the command clock: 4 cycles.
		BurstSeconds:        4 / ck,
		TerminationMWPerPin: 8.5,
	}
}

// ForType returns the chip model for a memory type name ("gddr5" or
// "ddr3"), the two technologies the paper names for contemporary cards.
func ForType(memType string, dataRateGbps float64) (Chip, error) {
	switch memType {
	case "", "gddr5":
		return HynixGDDR5(dataRateGbps), nil
	case "ddr3":
		return DDR3(dataRateGbps), nil
	}
	return Chip{}, fmt.Errorf("gddr: unknown memory type %q", memType)
}
