package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
)

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := config.GT240()
	cfg.Clusters = 0
	if _, err := New(cfg); err == nil {
		t.Error("invalid config must be rejected")
	}
	cfg2 := config.GT240()
	cfg2.ProcessNM = 3 // sim accepts it, power tier must reject
	if _, err := New(cfg2); err == nil {
		t.Error("unsupported process node must be rejected")
	}
}

func TestRunKernelEndToEnd(t *testing.T) {
	simr, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	if simr.Config().Name != "GT240" {
		t.Error("config accessor broken")
	}
	inst, err := bench.VectorAdd()
	if err != nil {
		t.Fatal(err)
	}
	r := inst.Runs[0]
	rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Verify(); err != nil {
		t.Fatalf("functional results wrong through the framework: %v", err)
	}
	if rep.Kernel != "vectorAdd" {
		t.Errorf("kernel name %q", rep.Kernel)
	}
	if rep.Perf == nil || rep.Power == nil {
		t.Fatal("incomplete report")
	}
	if rep.Power.TotalW <= rep.Power.StaticW {
		t.Error("running a kernel must add dynamic power")
	}
}

func TestStaticConsistentWithRuntime(t *testing.T) {
	simr, err := New(config.GTX580())
	if err != nil {
		t.Fatal(err)
	}
	st := simr.Static()
	inst, err := bench.ScalarProd()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simr.RunKernel(inst.Runs[0].Launch, inst.Mem, inst.Runs[0].CMem)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Power.StaticW != st.StaticW {
		t.Errorf("static %.3f at runtime vs %.3f architectural", rep.Power.StaticW, st.StaticW)
	}
	if rep.Power.DynamicW > st.PeakDynamicW {
		t.Errorf("runtime dynamic %.2f exceeds peak %.2f", rep.Power.DynamicW, st.PeakDynamicW)
	}
}

func TestWriteProfileFormat(t *testing.T) {
	simr, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.BlackScholes()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := simr.RunKernel(inst.Runs[0].Launch, inst.Mem, inst.Runs[0].CMem)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteProfile(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// The profile must carry the Table V row names.
	for _, want := range []string{"Overall", "Cores", "NoC", "Memory Controller",
		"PCIe Controller", "Base Power", "WCU", "Register File",
		"Execution Units", "LDSTU", "Undiff. Core", "External DRAM"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q", want)
		}
	}
}

func TestMultiKernelBenchmarkStateFlow(t *testing.T) {
	// bfs needs the state left by earlier launches: the framework must not
	// reset memory between kernels.
	simr, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.BFS()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range inst.Runs {
		if _, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem); err != nil {
			t.Fatal(err)
		}
	}
	if err := inst.Verify(); err != nil {
		t.Fatalf("bfs through the framework: %v", err)
	}
}

// TestCachedVsFreshEquivalence is the determinism contract of the
// simulation-result cache: for both GPUs and several kernels (including a
// multi-kernel benchmark whose launches chain through the memory image),
// every reported metric — performance counters and the full power breakdown
// — must be bit-identical between the fresh-simulation path
// (DisableSimCache) and the cached path, on both a cold pass (misses fill
// the cache) and a warm pass (every launch replays). Run under -race via
// make ci.
func TestCachedVsFreshEquivalence(t *testing.T) {
	gpus := map[string]func() *config.GPU{"GT240": config.GT240, "GTX580": config.GTX580}
	kernels := []string{"vectorAdd", "BlackScholes", "bfs", "mergeSort"}

	type outcome struct {
		reps  []*KernelReport
		final []uint32
	}
	runSuite := func(t *testing.T, cfg *config.GPU, kernelName string) outcome {
		t.Helper()
		simr, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		f, err := bench.ByName(kernelName)
		if err != nil {
			t.Fatal(err)
		}
		inst, err := f.Make()
		if err != nil {
			t.Fatal(err)
		}
		var o outcome
		for _, r := range inst.Runs {
			rep, err := simr.RunKernel(r.Launch, inst.Mem, r.CMem)
			if err != nil {
				t.Fatal(err)
			}
			o.reps = append(o.reps, rep)
		}
		if err := inst.Verify(); err != nil {
			t.Fatalf("verification failed: %v", err)
		}
		o.final = append([]uint32(nil), inst.Mem.Words()...)
		return o
	}

	for gpuName, mk := range gpus {
		for _, kern := range kernels {
			t.Run(gpuName+"/"+kern, func(t *testing.T) {
				fresh := mk()
				fresh.DisableSimCache = true
				want := runSuite(t, fresh, kern)
				cold := runSuite(t, mk(), kern) // fills (or reuses) cache entries
				warm := runSuite(t, mk(), kern) // replays every launch
				for pass, got := range map[string]outcome{"cold": cold, "warm": warm} {
					for i := range want.reps {
						if !reflect.DeepEqual(got.reps[i].Perf, want.reps[i].Perf) {
							t.Errorf("%s pass: launch %d perf result differs from fresh", pass, i)
						}
						if !reflect.DeepEqual(got.reps[i].Power, want.reps[i].Power) {
							t.Errorf("%s pass: launch %d power report differs from fresh", pass, i)
						}
					}
					if !reflect.DeepEqual(got.final, want.final) {
						t.Errorf("%s pass: final memory image differs from fresh", pass)
					}
				}
			})
		}
	}
}

// TestEvaluatePowerBatchEquivalence pins the batched power entry point's
// contract: one shared timing result priced under N power-parameter
// variants through EvaluatePowerBatch is bit-identical to N sequential
// EvaluatePower calls on per-variant evaluators (and to full per-variant
// Simulators), including the leader's shared-model evaluator.
func TestEvaluatePowerBatchEquivalence(t *testing.T) {
	leader, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	inst, err := bench.VectorAdd()
	if err != nil {
		t.Fatal(err)
	}
	r := inst.Runs[0]
	tr, err := leader.Simulate(r.Launch, inst.Mem, r.CMem)
	if err != nil {
		t.Fatal(err)
	}

	// Power variants of the same timing configuration: process node and
	// energy-anchor changes only.
	variants := []*config.GPU{config.GT240()}
	for _, nm := range []float64{65, 32, 28} {
		c := config.GT240()
		c.ProcessNM = nm
		variants = append(variants, c)
	}
	tuned := config.GT240()
	tuned.Power.FPOpPJ *= 1.5
	tuned.Power.DynScaleFactor *= 0.9
	variants = append(variants, tuned)

	evs := []*PowerEvaluator{leader.PowerEvaluator()}
	for _, c := range variants[1:] {
		ev, err := NewPowerEvaluator(c)
		if err != nil {
			t.Fatal(err)
		}
		evs = append(evs, ev)
	}

	batch, err := EvaluatePowerBatch(evs, tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(evs) {
		t.Fatalf("%d batch reports, want %d", len(batch), len(evs))
	}
	for i, ev := range evs {
		seq, err := ev.EvaluatePower(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], seq) {
			t.Errorf("variant %d: batched report differs from sequential EvaluatePower", i)
		}
		// Cross-check against a full Simulator for the same variant (the
		// pre-batching way to price a variant).
		full, err := New(variants[i])
		if err != nil {
			t.Fatal(err)
		}
		want, err := full.EvaluatePower(tr)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], want) {
			t.Errorf("variant %d: batched report differs from full-simulator evaluation", i)
		}
	}

	// The evaluator's static report matches the full simulator's.
	if !reflect.DeepEqual(evs[1].Static(), mustNew(t, variants[1]).Static()) {
		t.Error("PowerEvaluator.Static diverged from Simulator.Static")
	}
}

func mustNew(t *testing.T, cfg *config.GPU) *Simulator {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}
