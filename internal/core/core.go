// Package core is the GPUSimPow framework: it couples the cycle-accurate
// performance simulator (internal/sim, the GPGPU-Sim analog) with the
// GPGPU-Pow power model (internal/power, the McPAT-derived analog) exactly
// as Figure 1 of the paper shows:
//
//	GPU configuration + GPGPU kernel
//	        |
//	        v
//	  GPGPU simulator  --activity-->  power model  -->  power & area results
//
// Given a configuration and a kernel, it produces architectural information
// (static power, peak dynamic power, area) and runtime dynamic power for the
// kernel, including hierarchical power profiles (paper Section V-B).
package core

import (
	"fmt"
	"io"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/power"
	"gpusimpow/internal/sim"
	"gpusimpow/internal/simcache"
)

// Simulator is a configured GPUSimPow instance.
type Simulator struct {
	cfg  *config.GPU
	perf *sim.GPU
	pow  *power.Model
}

// New builds a GPUSimPow instance for the configuration.
func New(cfg *config.GPU) (*Simulator, error) {
	perf, err := sim.New(cfg)
	if err != nil {
		return nil, err
	}
	pow, err := power.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Simulator{cfg: cfg, perf: perf, pow: pow}, nil
}

// Config returns the simulated configuration.
func (s *Simulator) Config() *config.GPU { return s.cfg }

// Static returns the workload-independent architectural estimates: area,
// leakage power, peak dynamic power (paper Table IV).
func (s *Simulator) Static() *power.StaticReport { return s.pow.Static() }

// KernelReport bundles the performance and power results of one launch.
type KernelReport struct {
	Kernel string
	Perf   *sim.Result
	Power  *power.RuntimeReport
}

// Simulate runs the pure timing stage of one kernel launch: cycle counts,
// activity counters and the functional memory update, with no power
// evaluation. It is served through the process-wide content-addressed
// simulation-result cache (internal/simcache): launches whose
// timing-relevant configuration subset, program, launch geometry and input
// memory images have been simulated before replay in microseconds, with the
// global memory image updated in place either way — so subsequent kernels
// of a multi-kernel benchmark see preceding results, as on real hardware.
// cfg.DisableSimCache (or GPUSIMPOW_DISABLE_SIM_CACHE) forces a fresh
// simulation; the two paths are bit-identical.
func (s *Simulator) Simulate(l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*simcache.TimingResult, error) {
	tr, err := simcache.Run(s.perf, l, global, cmem)
	if err != nil {
		return nil, fmt.Errorf("core: simulating %s: %w", l.Prog.Name, err)
	}
	return tr, nil
}

// EvaluatePower runs the pure power stage: the analytic model applied to a
// timing snapshot. Sweeps that vary only power-side parameters (process
// node, power anchors, clock scaling at the card level) call this once per
// operating point against one shared timing result.
func (s *Simulator) EvaluatePower(tr *simcache.TimingResult) (*power.RuntimeReport, error) {
	rt, err := s.pow.Evaluate(tr.Perf)
	if err != nil {
		return nil, fmt.Errorf("core: power for %s: %w", tr.Kernel, err)
	}
	return rt, nil
}

// PowerEvaluator is the pure power stage of GPUSimPow for one configuration:
// a Simulator without the timing machinery. Sweep executors that partition a
// grid by timing key build one full Simulator per timing group (it simulates
// once) and one PowerEvaluator per power-parameter variant (each re-prices
// the shared timing result), skipping the per-variant cost of constructing a
// cycle-level simulator that would never run.
type PowerEvaluator struct {
	cfg *config.GPU
	pow *power.Model
}

// NewPowerEvaluator builds the power stage alone for a configuration.
func NewPowerEvaluator(cfg *config.GPU) (*PowerEvaluator, error) {
	pow, err := power.New(cfg)
	if err != nil {
		return nil, err
	}
	return &PowerEvaluator{cfg: cfg, pow: pow}, nil
}

// PowerEvaluator returns the simulator's own power stage (sharing its built
// model), so a sweep group's leader does not rebuild the model it already
// has.
func (s *Simulator) PowerEvaluator() *PowerEvaluator {
	return &PowerEvaluator{cfg: s.cfg, pow: s.pow}
}

// Config returns the evaluated configuration.
func (p *PowerEvaluator) Config() *config.GPU { return p.cfg }

// Static returns the workload-independent architectural estimates.
func (p *PowerEvaluator) Static() *power.StaticReport { return p.pow.Static() }

// EvaluatePower prices one timing snapshot under this evaluator's
// configuration, exactly as Simulator.EvaluatePower would.
func (p *PowerEvaluator) EvaluatePower(tr *simcache.TimingResult) (*power.RuntimeReport, error) {
	rt, err := p.pow.Evaluate(tr.Perf)
	if err != nil {
		return nil, fmt.Errorf("core: power for %s: %w", tr.Kernel, err)
	}
	return rt, nil
}

// EvaluatePowerBatch evaluates one shared timing result under every power
// variant, returning reports in argument order. This is the batched power
// entry point of the simulate-once-evaluate-many pipeline: a sweep group
// whose cells differ only in power-side parameters simulates its kernel once
// and prices the resulting snapshot N times here. Bit-identical to N
// sequential EvaluatePower calls (pinned by the core tests).
func EvaluatePowerBatch(evs []*PowerEvaluator, tr *simcache.TimingResult) ([]*power.RuntimeReport, error) {
	models := make([]*power.Model, len(evs))
	for i, ev := range evs {
		models[i] = ev.pow
	}
	rts, err := power.EvaluateBatch(models, tr.Perf)
	if err != nil {
		return nil, fmt.Errorf("core: batched power for %s: %w", tr.Kernel, err)
	}
	return rts, nil
}

// RunKernel simulates one kernel launch and evaluates its power: the
// two-stage pipeline (Simulate, then EvaluatePower) as one call.
func (s *Simulator) RunKernel(l *kernel.Launch, global *kernel.GlobalMem, cmem *kernel.ConstMem) (*KernelReport, error) {
	tr, err := s.Simulate(l, global, cmem)
	if err != nil {
		return nil, err
	}
	rt, err := s.EvaluatePower(tr)
	if err != nil {
		return nil, err
	}
	return &KernelReport{Kernel: tr.Kernel, Perf: tr.Perf, Power: rt}, nil
}

// WriteProfile prints the hierarchical power profile of a kernel in the
// shape of the paper's Table V: GPU-level components, then one core. The
// table5 scenario (internal/experiments, reduceTable5) renders the same
// shape through the sweep report layer — core cannot import sweep, so the
// layouts are paired by convention and pinned separately
// (TestWriteProfileFormat here, table5.golden there). Change one and the
// other must follow.
func (r *KernelReport) WriteProfile(w io.Writer) error {
	p := r.Power
	total := p.TotalW
	if _, err := fmt.Fprintf(w, "Power profile: %s on %s (runtime %.3g s)\n",
		r.Kernel, p.GPUName, p.Seconds); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-22s %10s %11s %8s\n", "GPU", "Static [W]", "Dynamic [W]", "Percent")
	fmt.Fprintf(w, "%-22s %10.3f %11.3f %7.1f%%\n", "Overall", p.StaticW, p.DynamicW, 100.0)
	for _, it := range p.GPU {
		fmt.Fprintf(w, "%-22s %10.3f %11.3f %7.1f%%\n", it.Name, it.StaticW, it.DynamicW, 100*it.Total()/total)
	}
	var coreTotal float64
	for _, it := range p.Core {
		coreTotal += it.Total()
	}
	fmt.Fprintf(w, "%-22s %10s %11s %8s\n", "Core", "Static [W]", "Dynamic [W]", "Percent")
	for _, it := range p.Core {
		fmt.Fprintf(w, "%-22s %10.4f %11.4f %7.1f%%\n", it.Name, it.StaticW, it.DynamicW, 100*it.Total()/coreTotal)
	}
	fmt.Fprintf(w, "External DRAM: %.3f W (background %.2f, activate %.2f, r/w %.2f, term %.2f, refresh %.2f)\n",
		p.DRAMW, p.DRAM.Background, p.DRAM.Activate, p.DRAM.ReadWrite, p.DRAM.Termination, p.DRAM.Refresh)
	return nil
}
