// Package sim implements the cycle-level GPGPU performance simulator — the
// GPGPU-Sim analog of the GPUSimPow framework. It executes kernels written in
// the internal/kernel ISA on a configurable SIMT GPU (warp control units,
// operand-collector register files, SIMD pipelines, a coalescing load/store
// unit, banked shared memory, caches, a NoC, memory controllers and GDDR5
// timing) and produces the per-component activity counts the power model
// turns into runtime dynamic power.
package sim

// Activity is the complete set of component activity counters produced by
// one kernel simulation. Each counter corresponds to a component model in
// internal/power; the mapping is: runtime dynamic energy = count x
// energy-per-event, summed over components, divided by kernel runtime.
type Activity struct {
	// Cycles is the kernel duration in core (shader) clock cycles.
	Cycles uint64

	// --- Warp control unit (per-core front end, summed over cores) ---
	ICacheReads  uint64 // instruction cache accesses
	Decodes      uint64 // decoded instructions
	WSTReads     uint64 // warp status table reads
	WSTWrites    uint64 // warp status table writes
	IBufReads    uint64 // instruction buffer reads (at issue)
	IBufWrites   uint64 // instruction buffer fills (at fetch)
	SchedArbs    uint64 // warp scheduler arbitrations (priority encoder)
	SBSearches   uint64 // scoreboard dependency searches
	SBWrites     uint64 // scoreboard allocate/release writes
	ReconvReads  uint64 // reconvergence stack top reads
	ReconvPushes uint64 // tokens pushed on divergence
	ReconvPops   uint64 // tokens popped on reconvergence

	// --- Register file and operand collectors ---
	RFBankReads  uint64 // warp-wide register bank row reads
	RFBankWrites uint64
	OCWrites     uint64 // operand collector entry fills
	OperandXbar  uint64 // crossbar transfers bank -> collector

	// --- Execution units (thread = lane-weighted, warp = per instruction) ---
	IssuedInstrs    uint64
	IntWarpInstrs   uint64
	FPWarpInstrs    uint64
	SFUWarpInstrs   uint64
	MemWarpInstrs   uint64
	CtrlWarpInstrs  uint64
	IntThreadInstrs uint64
	FPThreadInstrs  uint64
	SFUThreadInstrs uint64

	// --- Load/store unit ---
	AGUAddresses     uint64 // per-lane addresses generated
	CoalescerQueries uint64 // memory instructions analysed
	CoalescedReqs    uint64 // segment requests after coalescing
	PRTWrites        uint64 // pending-request-table updates
	SMemAccesses     uint64 // shared-memory bank accesses
	SMemConflicts    uint64 // extra serialization cycles from conflicts
	L1Reads          uint64
	L1Writes         uint64
	L1Misses         uint64
	ConstReads       uint64
	ConstMisses      uint64
	TexReads         uint64 // texture cache probes (per distinct line)
	TexMisses        uint64
	L2Reads          uint64
	L2Writes         uint64
	L2Misses         uint64

	// --- Interconnect, memory controller, DRAM ---
	NoCFlits        uint64
	MCRequests      uint64
	DRAMActivates   uint64
	DRAMReadBursts  uint64 // 32-byte bursts
	DRAMWriteBursts uint64
	DRAMBusyCycles  uint64 // summed over channels, core cycles

	// --- Host interface ---
	PCIeBytes uint64 // kernel launch + parameter traffic

	// --- Occupancy (for base power and static gating) ---
	CoreBusyCycles     []uint64 // per core: cycles with resident warps
	ClusterBusyCycles  []uint64 // per cluster: cycles with any busy core
	GlobalSchedCycles  uint64   // cycles the global block scheduler is active
	ResidentWarpCycles uint64   // integral of resident warps over cycles, all cores
	BlocksLaunched     uint64
	WarpsLaunched      uint64
	ThreadsLaunched    uint64
}

// addScalars accumulates every scalar counter of o into a. The per-core
// and per-cluster slices are deliberately excluded: parallel core stepping
// gives each worker a private scalar shard merged here once per cycle,
// while the sliced counters are written at disjoint indices by the core's
// owning worker directly. TestActivityAddScalarsCoversEveryField keeps
// this list exhaustive when counters are added.
func (a *Activity) addScalars(o *Activity) {
	a.Cycles += o.Cycles
	a.ICacheReads += o.ICacheReads
	a.Decodes += o.Decodes
	a.WSTReads += o.WSTReads
	a.WSTWrites += o.WSTWrites
	a.IBufReads += o.IBufReads
	a.IBufWrites += o.IBufWrites
	a.SchedArbs += o.SchedArbs
	a.SBSearches += o.SBSearches
	a.SBWrites += o.SBWrites
	a.ReconvReads += o.ReconvReads
	a.ReconvPushes += o.ReconvPushes
	a.ReconvPops += o.ReconvPops
	a.RFBankReads += o.RFBankReads
	a.RFBankWrites += o.RFBankWrites
	a.OCWrites += o.OCWrites
	a.OperandXbar += o.OperandXbar
	a.IssuedInstrs += o.IssuedInstrs
	a.IntWarpInstrs += o.IntWarpInstrs
	a.FPWarpInstrs += o.FPWarpInstrs
	a.SFUWarpInstrs += o.SFUWarpInstrs
	a.MemWarpInstrs += o.MemWarpInstrs
	a.CtrlWarpInstrs += o.CtrlWarpInstrs
	a.IntThreadInstrs += o.IntThreadInstrs
	a.FPThreadInstrs += o.FPThreadInstrs
	a.SFUThreadInstrs += o.SFUThreadInstrs
	a.AGUAddresses += o.AGUAddresses
	a.CoalescerQueries += o.CoalescerQueries
	a.CoalescedReqs += o.CoalescedReqs
	a.PRTWrites += o.PRTWrites
	a.SMemAccesses += o.SMemAccesses
	a.SMemConflicts += o.SMemConflicts
	a.L1Reads += o.L1Reads
	a.L1Writes += o.L1Writes
	a.L1Misses += o.L1Misses
	a.ConstReads += o.ConstReads
	a.ConstMisses += o.ConstMisses
	a.TexReads += o.TexReads
	a.TexMisses += o.TexMisses
	a.L2Reads += o.L2Reads
	a.L2Writes += o.L2Writes
	a.L2Misses += o.L2Misses
	a.NoCFlits += o.NoCFlits
	a.MCRequests += o.MCRequests
	a.DRAMActivates += o.DRAMActivates
	a.DRAMReadBursts += o.DRAMReadBursts
	a.DRAMWriteBursts += o.DRAMWriteBursts
	a.DRAMBusyCycles += o.DRAMBusyCycles
	a.PCIeBytes += o.PCIeBytes
	a.GlobalSchedCycles += o.GlobalSchedCycles
	a.ResidentWarpCycles += o.ResidentWarpCycles
	a.BlocksLaunched += o.BlocksLaunched
	a.WarpsLaunched += o.WarpsLaunched
	a.ThreadsLaunched += o.ThreadsLaunched
}

// Result bundles the activity with headline performance numbers.
type Result struct {
	Activity Activity
	// Seconds is the kernel runtime.
	Seconds float64
	// WarpInstrs and ThreadInstrs summarise executed work.
	WarpInstrs, ThreadInstrs uint64
	// IPC is warp instructions per core cycle, summed over the chip.
	IPC float64
	// L1HitRate, L2HitRate and ConstHitRate are overall hit fractions
	// (1.0 when the structure is absent or unused).
	L1HitRate, L2HitRate, ConstHitRate float64
	// OccupancyPct is resident warps / max warps averaged over busy cores.
	OccupancyPct float64
}

// Clone returns a deep copy of the result (the per-core and per-cluster
// activity slices are copied), so the simulation-result cache can hand out
// snapshots without any caller aliasing the cached master copy.
func (r *Result) Clone() *Result {
	c := *r
	c.Activity.CoreBusyCycles = append([]uint64(nil), r.Activity.CoreBusyCycles...)
	c.Activity.ClusterBusyCycles = append([]uint64(nil), r.Activity.ClusterBusyCycles...)
	return &c
}
