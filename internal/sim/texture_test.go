package sim

import (
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// texGatherKernel reads a small texture with 2D locality and writes sums.
func texGatherKernel() (*kernel.Program, func() (*kernel.Launch, *kernel.GlobalMem, []float32)) {
	const w = 64
	b := kernel.NewBuilder("texgather", 14).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 0) // texture base
	// Gather a 2x2 footprint around (tid % w, tid / w) — spatial locality.
	b.IAnd(4, kernel.R(0), kernel.I(w-1)) // x
	b.IShr(5, kernel.R(0), kernel.I(6))   // y
	b.MovF(6, 0)
	for _, d := range [][2]int32{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		b.IAdd(7, kernel.R(4), kernel.I(d[0]))
		b.IAnd(7, kernel.R(7), kernel.I(w-1))
		b.IAdd(8, kernel.R(5), kernel.I(d[1]))
		b.IAnd(8, kernel.R(8), kernel.I(w-1))
		b.IMul(8, kernel.R(8), kernel.I(w))
		b.IAdd(7, kernel.R(7), kernel.R(8))
		b.IShl(7, kernel.R(7), kernel.I(2))
		b.IAdd(7, kernel.R(3), kernel.R(7))
		b.Ld(kernel.SpaceTexture, 9, kernel.R(7), 0)
		b.FAdd(6, kernel.R(6), kernel.R(9))
	}
	b.LdParam(10, 1)
	b.IShl(11, kernel.R(0), kernel.I(2))
	b.IAdd(10, kernel.R(10), kernel.R(11))
	b.St(kernel.SpaceGlobal, kernel.R(10), kernel.R(6), 0)
	b.Exit()
	prog := b.MustBuild()
	mk := func() (*kernel.Launch, *kernel.GlobalMem, []float32) {
		mem := kernel.NewGlobalMem()
		tex := make([]float32, w*w)
		for i := range tex {
			tex[i] = float32(i % 31)
		}
		texAddr := mem.AllocF32(tex)
		out := mem.AllocZeroF32(w * w)
		l := &kernel.Launch{
			Prog:   prog,
			Grid:   kernel.Dim{X: w * w / 256, Y: 1},
			Block:  kernel.Dim{X: 256, Y: 1},
			Params: []uint32{texAddr, out},
		}
		return l, mem, tex
	}
	return prog, mk
}

func texConfig() *config.GPU {
	cfg := config.GT240()
	cfg.Name = "GT240+tex"
	cfg.TexCacheKB = 8
	cfg.TexLineB = 32
	return cfg
}

func TestTextureCachePath(t *testing.T) {
	_, mk := texGatherKernel()
	l, mem, tex := mk()
	g, err := New(texConfig())
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	a := r.Activity
	if a.TexReads == 0 {
		t.Fatal("texture reads not counted")
	}
	if a.TexMisses == 0 {
		t.Error("cold texture lines should miss")
	}
	// Spatial locality: the 2x2 footprint must hit far more than it misses.
	if float64(a.TexMisses) > 0.3*float64(a.TexReads) {
		t.Errorf("texture hit rate too low: %d misses of %d reads", a.TexMisses, a.TexReads)
	}
	// Functional check.
	const w = 64
	out := mem.ReadF32Slice(l.Params[1], w*w)
	for i := range out {
		x, y := i%w, i/w
		want := tex[y*w+x] + tex[y*w+(x+1)%w] + tex[(y+1)%w*w+x] + tex[(y+1)%w*w+(x+1)%w]
		if out[i] != want {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestTextureWithoutCacheErrors(t *testing.T) {
	_, mk := texGatherKernel()
	l, mem, _ := mk()
	g, err := New(config.GT240()) // no texture cache configured
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(l, mem, nil); err == nil {
		t.Error("texture access without a texture cache must error")
	}
}

func TestTextureConfigValidation(t *testing.T) {
	cfg := config.GT240()
	cfg.TexCacheKB = 8
	cfg.TexLineB = 0
	if err := cfg.Validate(); err == nil {
		t.Error("texture cache without line size must be rejected")
	}
}
