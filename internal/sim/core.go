package sim

import (
	"fmt"
	"math/bits"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim/cache"
)

// wbEvent is a scheduled writeback: when the pipeline or memory system
// delivers the result of an in-flight instruction back to the warp.
type wbEvent struct {
	cycle uint64
	slot  int
	reg   uint8
	hasWB bool // writes a register (counts an RF bank write)
	isMem bool // memory instruction (two-level scheduler demotion state)
	lanes int
}

// wbHeap is a min-heap of writeback events ordered by cycle. The sift
// operations are implemented directly (rather than through container/heap)
// so pushes and pops stay free of interface boxing on the issue hot path.
type wbHeap []wbEvent

func (h *wbHeap) push(ev wbEvent) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].cycle <= q[i].cycle {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *wbHeap) pop() wbEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].cycle < q[min].cycle {
			min = l
		}
		if r < n && q[r].cycle < q[min].cycle {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// blockRt is a thread block resident on a core.
type blockRt struct {
	env         *kernel.Env
	slots       []int // warp slot indices
	total       int   // warps in the block
	finished    int
	atBarrier   int
	outstanding int // in-flight instructions across the block's warps
}

// warpSlot is the per-warp control state of the warp control unit.
type warpSlot struct {
	active bool
	w      *kernel.Warp
	block  *blockRt

	ibValid   bool
	fetchedAt uint64

	pendingN    int
	pendingRegs []uint8 // scoreboard: destination registers in flight

	// ageStamp orders warps by placement for GTO/two-level policies.
	ageStamp uint64
	// memPending counts outstanding memory instructions (two-level
	// scheduler demotes warps waiting on memory).
	memPending int
}

// coreState is one SIMT core (SM): warps, schedulers, pipelines, L1 and
// constant caches.
type coreState struct {
	id, cluster int
	cfg         *config.GPU

	slots  []warpSlot
	blocks []*blockRt

	// Resource accounting for the block dispatcher.
	freeWarps int
	freeSMem  int
	freeRegs  int

	// Pipeline availability (cycle when the unit accepts the next warp).
	spFree   []uint64 // per scheduler
	sfuFree  uint64
	ldstFree uint64

	fetchRR    int
	issueRR    []int
	lastIssued []int // per scheduler: slot that issued last (GTO greediness)
	ageCounter uint64
	orderBuf   []int // scratch for candidate ordering

	// Warp-status bitmasks, maintained when MaxWarpsPerCore fits a word
	// (useMasks): bit i of fetchable is set iff slot i is active with no
	// buffered instruction and neither finished nor at a barrier; issuable
	// is the same predicate with a buffered instruction. schedMask[s]
	// selects scheduler s's congruence class (slot i belongs to scheduler
	// i mod Schedulers). The field-scan loops remain for larger cores.
	useMasks  bool
	fetchable uint64
	issuable  uint64
	schedMask []uint64

	// Retired warps, block contexts and block runtimes recycle through
	// per-core LIFO pools, so steady-state dispatch allocates nothing but
	// one Env per block.
	warpPool  []*kernel.Warp
	ctxPool   []*kernel.BlockCtx
	blockPool []*blockRt

	events wbHeap

	l1     *cache.Cache // nil when absent
	ccache *cache.Cache
	tcache *cache.Cache // texture cache; nil when absent

	// Reusable per-core scratch buffers: these keep the fetch/issue/memory
	// hot path free of per-cycle allocations.
	segBuf   []uint32 // coalesced segment bases
	addrBuf  []uint32 // distinct constant addresses
	lineBuf  []uint32 // distinct texture lines
	tlActive []int    // two-level scheduler active set
	tlPend   []int    // two-level scheduler pending set
}

func newCoreState(id int, cfg *config.GPU) (*coreState, error) {
	c := &coreState{
		id:        id,
		cluster:   id / cfg.CoresPerCluster,
		cfg:       cfg,
		slots:     make([]warpSlot, cfg.MaxWarpsPerCore),
		freeWarps: cfg.MaxWarpsPerCore,
		freeSMem:  cfg.SharedMemPerCoreKB * 1024,
		freeRegs:  cfg.RegsPerCore,
		spFree:    make([]uint64, cfg.Schedulers),
		issueRR:   make([]int, cfg.Schedulers),
	}
	c.lastIssued = make([]int, cfg.Schedulers)
	for i := range c.lastIssued {
		c.lastIssued[i] = -1
	}
	if cfg.MaxWarpsPerCore <= 64 {
		c.useMasks = true
		c.schedMask = make([]uint64, cfg.Schedulers)
		for i := 0; i < cfg.MaxWarpsPerCore; i++ {
			c.schedMask[i%cfg.Schedulers] |= 1 << i
		}
	}
	if cfg.L1KB > 0 {
		l1, err := cache.New(cache.Config{
			SizeBytes: cfg.L1KB * 1024, LineBytes: cfg.L1LineB,
			Assoc: cfg.L1Assoc, Policy: cache.WriteThrough,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: core %d L1: %w", id, err)
		}
		c.l1 = l1
	}
	cc, err := cache.New(cache.Config{
		SizeBytes: cfg.ConstCacheKB * 1024, LineBytes: cfg.ConstLineB,
		Assoc: 4, Policy: cache.WriteThrough,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: core %d const cache: %w", id, err)
	}
	c.ccache = cc
	if cfg.TexCacheKB > 0 {
		tc, err := cache.New(cache.Config{
			SizeBytes: cfg.TexCacheKB * 1024, LineBytes: cfg.TexLineB,
			Assoc: 4, Policy: cache.WriteThrough,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: core %d texture cache: %w", id, err)
		}
		c.tcache = tc
	}
	return c, nil
}

// residentWarps reports whether the core has any work.
func (c *coreState) residentWarps() bool { return c.freeWarps < len(c.slots) }

// nextEventCycle returns the cycle of the core's earliest pending writeback,
// or the maximum uint64 when none is in flight.
func (c *coreState) nextEventCycle() uint64 {
	if len(c.events) == 0 {
		return ^uint64(0)
	}
	return c.events[0].cycle
}

// residentBlocks returns the number of blocks on the core.
func (c *coreState) residentBlocks() int { return len(c.blocks) }

// canAccept reports whether a block with the given demands fits.
func (c *coreState) canAccept(warps, smemBytes, regs int) bool {
	return len(c.blocks) < c.cfg.MaxBlocksPerCore &&
		c.freeWarps >= warps && c.freeSMem >= smemBytes && c.freeRegs >= regs
}

// takeWarp pops a pooled warp (resetting it for the new block) or builds a
// fresh one when the pool is dry.
func (c *coreState) takeWarp(idInBlock, lanes, numRegs int) *kernel.Warp {
	if n := len(c.warpPool); n > 0 {
		w := c.warpPool[n-1]
		c.warpPool = c.warpPool[:n-1]
		w.Reset(idInBlock, lanes, numRegs)
		return w
	}
	return kernel.NewWarp(idInBlock, lanes, numRegs)
}

// takeBlock pops a pooled block runtime or builds a fresh one.
func (c *coreState) takeBlock(env *kernel.Env, total int) *blockRt {
	if n := len(c.blockPool); n > 0 {
		b := c.blockPool[n-1]
		c.blockPool = c.blockPool[:n-1]
		*b = blockRt{env: env, slots: b.slots[:0], total: total}
		return b
	}
	return &blockRt{env: env, total: total}
}

// takeBlockCtx pops a pooled block context (resetting it for the new
// block's coordinates) or builds a fresh one.
func (c *coreState) takeBlockCtx(l *kernel.Launch, cx, cy int) *kernel.BlockCtx {
	if n := len(c.ctxPool); n > 0 {
		bctx := c.ctxPool[n-1]
		c.ctxPool = c.ctxPool[:n-1]
		bctx.Reset(l, cx, cy)
		return bctx
	}
	return kernel.NewBlockCtx(l, cx, cy)
}

// place installs a block's warps into free slots.
func (c *coreState) place(l *kernel.Launch, env *kernel.Env, smemBytes, regs int, a *Activity) *blockRt {
	nw := l.WarpsPerBlock()
	threads := l.ThreadsPerBlock()
	b := c.takeBlock(env, nw)
	for i := 0; i < nw; i++ {
		lanes := kernel.WarpSize
		if rem := threads - i*kernel.WarpSize; rem < kernel.WarpSize {
			lanes = rem
		}
		slot := c.findFreeSlot()
		c.ageCounter++
		c.slots[slot] = warpSlot{
			active:      true,
			w:           c.takeWarp(i, lanes, l.Prog.NumRegs),
			block:       b,
			ageStamp:    c.ageCounter,
			pendingRegs: c.slots[slot].pendingRegs[:0],
		}
		if c.useMasks {
			c.fetchable |= 1 << slot
		}
		b.slots = append(b.slots, slot)
		a.WSTWrites++ // warp status table entry initialised
		a.WarpsLaunched++
	}
	a.ThreadsLaunched += uint64(threads)
	c.freeWarps -= nw
	c.freeSMem -= smemBytes
	c.freeRegs -= regs
	c.blocks = append(c.blocks, b)
	return b
}

func (c *coreState) findFreeSlot() int {
	for i := range c.slots {
		if !c.slots[i].active {
			return i
		}
	}
	panic("sim: no free warp slot despite accounting")
}

// maybeReleaseBarrier releases a block's barrier once every live warp waits.
func (c *coreState) maybeReleaseBarrier(b *blockRt) {
	if b.atBarrier == 0 || b.atBarrier+b.finished < b.total {
		return
	}
	for _, slot := range b.slots {
		if c.slots[slot].active && c.slots[slot].w.AtBarrier {
			c.slots[slot].w.ReleaseBarrier()
			// A released warp was fetch-blocked by AtBarrier with an empty
			// instruction buffer; it becomes fetchable again.
			if c.useMasks && !c.slots[slot].w.Finished {
				c.fetchable |= 1 << slot
			}
		}
	}
	b.atBarrier = 0
}

// retire frees a completed block's resources, returning its warps, block
// context and runtime to the core's pools. The slot's scoreboard backing
// array survives the reset (it is empty — the block had no outstanding
// instructions — but its capacity is reused by the next occupant).
func (c *coreState) retire(b *blockRt, smemBytes, regs int) {
	for _, s := range b.slots {
		c.warpPool = append(c.warpPool, c.slots[s].w)
		c.slots[s] = warpSlot{pendingRegs: c.slots[s].pendingRegs[:0]}
		if c.useMasks {
			c.fetchable &^= 1 << s
			c.issuable &^= 1 << s
		}
	}
	c.freeWarps += b.total
	c.freeSMem += smemBytes
	c.freeRegs += regs
	for i, bb := range c.blocks {
		if bb == b {
			c.blocks = append(c.blocks[:i], c.blocks[i+1:]...)
			break
		}
	}
	c.ctxPool = append(c.ctxPool, b.env.Block)
	b.env = nil
	c.blockPool = append(c.blockPool, b)
}

// drainEvents applies writebacks due at the current cycle and returns how
// many events it drained.
func (c *coreState) drainEvents(now uint64, a *Activity) int {
	drained := 0
	for len(c.events) > 0 && c.events[0].cycle <= now {
		ev := c.events.pop()
		drained++
		sl := &c.slots[ev.slot]
		if !sl.active {
			continue // block already retired (possible only after errors)
		}
		sl.pendingN--
		sl.block.outstanding--
		if ev.isMem && sl.memPending > 0 {
			sl.memPending--
		}
		if ev.hasWB {
			a.RFBankWrites++
			a.SBWrites++ // scoreboard entry release
			for i, r := range sl.pendingRegs {
				if r == ev.reg {
					sl.pendingRegs = append(sl.pendingRegs[:i], sl.pendingRegs[i+1:]...)
					break
				}
			}
		}
	}
	return drained
}

// fetchStage models instruction fetch + decode: up to Schedulers warps per
// cycle refill their instruction buffer slot. It returns the fetch count.
func (c *coreState) fetchStage(now uint64, a *Activity) int {
	n := len(c.slots)
	fetched := 0
	if c.useMasks {
		// Mask-kept equivalent of the field scan below, skipping runs of
		// ineligible slots in one step. The scan visits i = fetchRR + scan
		// with the LIVE fetchRR (a successful fetch advances the whole
		// window, exactly as the field loop does); rotating the fetchable
		// mask so bit 0 is the scan head turns "next eligible slot" into a
		// trailing-zero count. Nothing mutates eligibility mid-scan except
		// our own fetches, so the jump sees what the field loop would.
		for scan := 0; scan < n && fetched < c.cfg.Schedulers; {
			f := c.fetchable
			if f == 0 {
				break
			}
			start := c.fetchRR + scan
			if start >= n {
				start -= n
			}
			rot := f>>start | f<<(n-start)
			d := bits.TrailingZeros64(rot)
			if scan+d >= n {
				break // next eligible slot is past the scan budget
			}
			scan += d
			i := start + d
			if i >= n {
				i -= n
			}
			sl := &c.slots[i]
			sl.ibValid = true
			sl.fetchedAt = now
			c.fetchable &^= 1 << i
			c.issuable |= 1 << i
			fetched++
			a.ICacheReads++
			a.Decodes++
			a.WSTReads++
			a.WSTWrites++
			a.IBufWrites++
			c.fetchRR = i + 1
			if c.fetchRR == n {
				c.fetchRR = 0
			}
			scan++
		}
		return fetched
	}
	for scan := 0; scan < n && fetched < c.cfg.Schedulers; scan++ {
		// i derives from the *current* fetchRR each iteration (so a
		// successful fetch advances the whole scan window) — the reduction
		// replaces the original modulo, everything else is seed behaviour.
		i := c.fetchRR + scan
		if i >= n {
			i -= n
		}
		sl := &c.slots[i]
		if !sl.active || sl.ibValid || sl.w.Finished || sl.w.AtBarrier {
			continue
		}
		sl.ibValid = true
		sl.fetchedAt = now
		fetched++
		a.ICacheReads++
		a.Decodes++
		a.WSTReads++
		a.WSTWrites++
		a.IBufWrites++
		c.fetchRR = i + 1
		if c.fetchRR == n {
			c.fetchRR = 0
		}
	}
	return fetched
}

// hazard reports whether the instruction at the warp's PC has a register
// dependency against in-flight instructions (scoreboard check) or, in
// blocking mode, whether anything at all is outstanding. The decoded
// HazRegs table is the same register set the seed built per issue with
// Instr.SrcRegs plus the destination.
func (c *coreState) hazard(sl *warpSlot, d *kernel.DInstr) bool {
	if !c.cfg.HasScoreboard {
		return sl.pendingN > 0
	}
	if len(sl.pendingRegs) >= c.cfg.ScoreboardEntries {
		return true
	}
	for _, r := range d.HazRegs[:d.NHaz] {
		for _, p := range sl.pendingRegs {
			if p == r {
				return true
			}
		}
	}
	return false
}

// unitFree checks structural availability for the instruction class.
func (c *coreState) unitFree(class kernel.Class, sched int, now uint64) bool {
	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		return c.spFree[sched] <= now
	case kernel.ClassSFU:
		return c.sfuFree <= now
	case kernel.ClassMem:
		return c.ldstFree <= now
	default:
		return true
	}
}

// unitFreeAt returns the cycle the instruction class's unit accepts the next
// warp — the wake-up time of a warp blocked only structurally.
func (c *coreState) unitFreeAt(class kernel.Class, sched int) uint64 {
	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		return c.spFree[sched]
	case kernel.ClassSFU:
		return c.sfuFree
	case kernel.ClassMem:
		return c.ldstFree
	default:
		return 0
	}
}

// issueStage arbitrates and issues up to one instruction per scheduler,
// considering warps in the order the configured scheduling policy dictates.
func (st *stepper) issueStage(c *coreState, now uint64) error {
	a := st.act
	g := st.sim
	n := len(c.slots)
	for sched := 0; sched < c.cfg.Schedulers; sched++ {
		c.orderBuf = g.candidateOrder(c, sched, c.orderBuf)
		arbitrated := false
		for _, i := range c.orderBuf {
			sl := &c.slots[i]
			if sl.fetchedAt >= now {
				continue
			}
			if !arbitrated {
				arbitrated = true
				a.SchedArbs++
			}
			pc := sl.w.PC()
			in := &g.prog.Instrs[pc]
			d := &g.dec[pc]
			a.SBSearches++
			if c.hazard(sl, d) {
				continue
			}
			class := d.Class
			if !c.unitFree(class, sched, now) {
				// Hazard-free but structurally blocked: the warp becomes
				// issuable the moment the unit frees, so the fast-forward
				// must not jump past that point.
				if t := c.unitFreeAt(class, sched); t < st.structNext {
					st.structNext = t
				}
				continue
			}
			if err := st.issueInstr(c, sl, i, sched, in, d, class, now); err != nil {
				return err
			}
			c.issueRR[sched] = (i + 1) % n
			c.lastIssued[sched] = i
			break // one issue per scheduler per cycle
		}
	}
	return nil
}

// issueInstr executes one instruction functionally and models its timing.
func (st *stepper) issueInstr(c *coreState, sl *warpSlot, slotIdx, sched int, in *kernel.Instr, d *kernel.DInstr, class kernel.Class, now uint64) error {
	a := st.act
	cfg := c.cfg

	if st.stage {
		sl.block.env.Capture = &st.capture
	}
	info, err := sl.w.Exec(st.sim.prog, sl.block.env)
	if err != nil {
		return fmt.Errorf("core %d slot %d: %w", c.id, slotIdx, err)
	}

	st.progress = true
	sl.ibValid = false
	if c.useMasks {
		c.issuable &^= 1 << slotIdx
		if !sl.w.Finished && !sl.w.AtBarrier {
			c.fetchable |= 1 << slotIdx
		}
	}
	a.IssuedInstrs++
	a.IBufReads++
	a.WSTReads++
	a.ReconvReads++
	if info.Diverged {
		a.ReconvPushes += 2
	}
	a.ReconvPops += uint64(info.Reconverged)

	// Register file activity: one bank row read per source register
	// (operands collected over multiple cycles), one collector fill and one
	// crossbar transfer each.
	nsrc := uint64(d.NSrc)
	a.RFBankReads += nsrc
	a.OCWrites += nsrc
	a.OperandXbar += nsrc

	lanes := info.ActiveLanes
	var latency uint64
	recIdx := -1
	hasWB := in.HasDst

	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		ii := uint64(cfg.WarpSize / (cfg.FUsPerCore / cfg.Schedulers))
		if ii == 0 {
			ii = 1
		}
		c.spFree[sched] = now + ii
		latency = uint64(cfg.ALULatency)
		if class == kernel.ClassInt {
			a.IntWarpInstrs++
			a.IntThreadInstrs += uint64(lanes)
		} else {
			a.FPWarpInstrs++
			a.FPThreadInstrs += uint64(lanes)
		}
	case kernel.ClassSFU:
		ii := uint64(cfg.WarpSize / cfg.SFUsPerCore)
		if ii == 0 {
			ii = 1
		}
		c.sfuFree = now + ii
		latency = uint64(cfg.SFULatency)
		a.SFUWarpInstrs++
		a.SFUThreadInstrs += uint64(lanes)
	case kernel.ClassMem:
		a.MemWarpInstrs++
		var err error
		latency, recIdx, err = st.memAccess(c, in, &info, now)
		if err != nil {
			return err
		}
	default: // control
		a.CtrlWarpInstrs++
		latency = 1
		hasWB = false
	}

	if info.AtBarrier {
		sl.block.atBarrier++
		c.maybeReleaseBarrier(sl.block)
	}
	if info.Finished {
		sl.block.finished++
		a.WSTWrites++
		c.maybeReleaseBarrier(sl.block)
	}

	if class == kernel.ClassCtrl && !hasWB {
		// Control instructions complete immediately; no pipeline slot held.
		st.retireIfDone(c, sl.block)
		return nil
	}

	if cfg.HasScoreboard && hasWB {
		sl.pendingRegs = append(sl.pendingRegs, in.Dst)
		a.SBWrites++
	}
	sl.pendingN++
	sl.block.outstanding++
	isMem := class == kernel.ClassMem
	if isMem {
		sl.memPending++
	}
	if recIdx >= 0 {
		// The writeback latency depends on staged memory-system requests:
		// the event is pushed by the barrier replay instead.
		rec := &st.staged[recIdx]
		rec.needEvent = true
		rec.slot = slotIdx
		rec.reg = in.Dst
		rec.hasWB = hasWB
		rec.lanes = lanes
		return nil
	}
	c.events.push(wbEvent{cycle: now + latency, slot: slotIdx, reg: in.Dst, hasWB: hasWB, isMem: isMem, lanes: lanes})
	return nil
}

// memAccess routes a memory instruction through the LDST unit: AGU, then the
// space-specific path. It returns the dependency latency and, when the
// latency depends on memory-system requests the stepper staged for the
// cycle barrier, the index of the staged record (-1 otherwise — the caller
// pushes the writeback event itself). Core-private structures — shared
// memory banks, the L1/constant/texture caches, the LDST pipeline — are
// always modelled inline; only traffic below the cores is staged.
func (st *stepper) memAccess(c *coreState, in *kernel.Instr, info *kernel.StepInfo, now uint64) (uint64, int, error) {
	a := st.act
	g := st.sim
	cfg := c.cfg
	lanes := info.ActiveLanes

	// AGU: sub-AGUs generate 8 addresses per cycle.
	a.AGUAddresses += uint64(lanes)
	aguCycles := uint64((lanes + 7) / 8)
	if aguCycles == 0 {
		aguCycles = 1
	}

	switch in.Space {
	case kernel.SpaceShared:
		extra := smemExtraCycles(info, cfg.SMemBanks)
		a.SMemAccesses += uint64(lanes)
		a.SMemConflicts += uint64(extra)
		c.ldstFree = now + aguCycles + uint64(extra)
		return uint64(cfg.SMemLatency) + uint64(extra), -1, nil

	case kernel.SpaceConst, kernel.SpaceParam:
		addrs := constDistinctAddrs(info, c.addrBuf[:0])
		c.addrBuf = addrs
		a.ConstReads += uint64(len(addrs))
		worst := uint64(cfg.SMemLatency)
		arenaStart := len(st.addrArena)
		for _, ad := range addrs {
			res := c.ccache.Access(uint64(ad), false)
			if !res.Hit {
				a.ConstMisses++
				if st.stage {
					st.addrArena = append(st.addrArena, ad)
					continue
				}
				done := g.mem.globalSegment(now, constRegionBase+ad, cfg.ConstLineB, false, a)
				if done-now > worst {
					worst = done - now
				}
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(addrs)-1)
		if miss := st.addrArena[arenaStart:]; st.stage && len(miss) > 0 {
			st.staged = append(st.staged, stagedAccess{
				c: c, space: kernel.SpaceConst, addrs: miss,
				reqBytes: cfg.ConstLineB, now: now, floorLat: worst,
			})
			return 0, len(st.staged) - 1, nil
		}
		return worst, -1, nil

	case kernel.SpaceTexture:
		if c.tcache == nil {
			return 0, -1, fmt.Errorf("sim: texture access on %s, which has no texture cache configured", cfg.Name)
		}
		// Per-lane addresses collapse to distinct cache lines (deduplicated
		// in lane order, so cache behaviour is deterministic); hits are
		// served at L1-like latency, misses fetch the line from memory.
		lines := c.lineBuf[:0]
		for l := 0; l < kernel.WarpSize; l++ {
			if info.ExecMask&(1<<l) == 0 {
				continue
			}
			line := info.Addrs[l] &^ uint32(cfg.TexLineB-1)
			dup := false
			for _, seen := range lines {
				if seen == line {
					dup = true
					break
				}
			}
			if !dup {
				lines = append(lines, line)
			}
		}
		c.lineBuf = lines
		worst := uint64(cfg.SMemLatency) + 12 // TMU addressing + filtering pipe
		arenaStart := len(st.addrArena)
		for _, line := range lines {
			a.TexReads++
			if res := c.tcache.Access(uint64(line), false); !res.Hit {
				a.TexMisses++
				if st.stage {
					st.addrArena = append(st.addrArena, line)
					continue
				}
				done := g.mem.globalSegment(now, line, cfg.TexLineB, false, a)
				if done-now > worst {
					worst = done - now
				}
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(lines))
		if miss := st.addrArena[arenaStart:]; st.stage && len(miss) > 0 {
			st.staged = append(st.staged, stagedAccess{
				c: c, space: kernel.SpaceTexture, addrs: miss,
				reqBytes: cfg.TexLineB, now: now, floorLat: worst,
			})
			return 0, len(st.staged) - 1, nil
		}
		return worst, -1, nil

	case kernel.SpaceGlobal:
		write := in.Op == kernel.OpSt
		segs := coalesce(info, c.segBuf[:0])
		c.segBuf = segs
		a.CoalescerQueries++
		a.CoalescedReqs += uint64(len(segs))
		a.PRTWrites += uint64(len(segs))
		var worst uint64
		arenaStart := len(st.addrArena)
		for _, seg := range segs {
			segDone := st.globalThroughL1(c, now, seg, write, a)
			if segDone > worst {
				worst = segDone
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(segs))
		staged := st.addrArena[arenaStart:]
		if write {
			if len(staged) > 0 {
				// Store traffic is staged for the memory system, but the
				// dependency latency is the fixed hand-off cost: the caller
				// pushes the event as usual.
				st.staged = append(st.staged, stagedAccess{
					c: c, space: kernel.SpaceGlobal, write: true, addrs: staged,
					reqBytes: segmentBytes, now: now,
				})
			}
			// Stores retire once handed to the memory system.
			return 4, -1, nil
		}
		if len(staged) > 0 {
			st.staged = append(st.staged, stagedAccess{
				c: c, space: kernel.SpaceGlobal, addrs: staged,
				reqBytes: segmentBytes, now: now, worstAbs: worst,
			})
			return 0, len(st.staged) - 1, nil
		}
		if worst <= now {
			worst = now + uint64(cfg.SMemLatency)
		}
		return worst - now, -1, nil
	}
	return 0, -1, fmt.Errorf("sim: unhandled memory space %v", in.Space)
}

// globalThroughL1 sends one segment through the per-core L1 (when present)
// and on to the shared memory system — or, when staging, appends it to the
// stepper's arena for the barrier replay and returns 0 (the staged record
// resolves the completion time).
func (st *stepper) globalThroughL1(c *coreState, now uint64, seg uint32, write bool, a *Activity) uint64 {
	forward := func() uint64 {
		if st.stage {
			st.addrArena = append(st.addrArena, seg)
			return 0
		}
		return st.sim.mem.globalSegment(now, seg, segmentBytes, write, a)
	}
	if c.l1 != nil {
		res := c.l1.Access(uint64(seg), write)
		if write {
			a.L1Writes++
			// Write-through: always forwarded.
			return forward()
		}
		a.L1Reads++
		if res.Hit {
			return now + uint64(c.cfg.SMemLatency) + 8
		}
		a.L1Misses++
		return forward()
	}
	return forward()
}
