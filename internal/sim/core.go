package sim

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim/cache"
)

// wbEvent is a scheduled writeback: when the pipeline or memory system
// delivers the result of an in-flight instruction back to the warp.
type wbEvent struct {
	cycle uint64
	slot  int
	reg   uint8
	hasWB bool // writes a register (counts an RF bank write)
	isMem bool // memory instruction (two-level scheduler demotion state)
	lanes int
}

// wbHeap is a min-heap of writeback events ordered by cycle. The sift
// operations are implemented directly (rather than through container/heap)
// so pushes and pops stay free of interface boxing on the issue hot path.
type wbHeap []wbEvent

func (h *wbHeap) push(ev wbEvent) {
	*h = append(*h, ev)
	q := *h
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if q[parent].cycle <= q[i].cycle {
			break
		}
		q[parent], q[i] = q[i], q[parent]
		i = parent
	}
}

func (h *wbHeap) pop() wbEvent {
	q := *h
	top := q[0]
	n := len(q) - 1
	q[0] = q[n]
	q = q[:n]
	*h = q
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && q[l].cycle < q[min].cycle {
			min = l
		}
		if r < n && q[r].cycle < q[min].cycle {
			min = r
		}
		if min == i {
			break
		}
		q[i], q[min] = q[min], q[i]
		i = min
	}
	return top
}

// blockRt is a thread block resident on a core.
type blockRt struct {
	env         *kernel.Env
	slots       []int // warp slot indices
	total       int   // warps in the block
	finished    int
	atBarrier   int
	outstanding int // in-flight instructions across the block's warps
}

// warpSlot is the per-warp control state of the warp control unit.
type warpSlot struct {
	active bool
	w      *kernel.Warp
	block  *blockRt

	ibValid   bool
	fetchedAt uint64

	pendingN    int
	pendingRegs []uint8 // scoreboard: destination registers in flight

	// ageStamp orders warps by placement for GTO/two-level policies.
	ageStamp uint64
	// memPending counts outstanding memory instructions (two-level
	// scheduler demotes warps waiting on memory).
	memPending int
}

// coreState is one SIMT core (SM): warps, schedulers, pipelines, L1 and
// constant caches.
type coreState struct {
	id, cluster int
	cfg         *config.GPU

	slots  []warpSlot
	blocks []*blockRt

	// Resource accounting for the block dispatcher.
	freeWarps int
	freeSMem  int
	freeRegs  int

	// Pipeline availability (cycle when the unit accepts the next warp).
	spFree   []uint64 // per scheduler
	sfuFree  uint64
	ldstFree uint64

	fetchRR    int
	issueRR    []int
	lastIssued []int // per scheduler: slot that issued last (GTO greediness)
	ageCounter uint64
	orderBuf   []int // scratch for candidate ordering

	events wbHeap

	l1     *cache.Cache // nil when absent
	ccache *cache.Cache
	tcache *cache.Cache // texture cache; nil when absent

	// Reusable per-core scratch buffers: these keep the fetch/issue/memory
	// hot path free of per-cycle allocations.
	scratch  []uint8  // register list (scoreboard checks, RF accounting)
	segBuf   []uint32 // coalesced segment bases
	addrBuf  []uint32 // distinct constant addresses
	lineBuf  []uint32 // distinct texture lines
	tlActive []int    // two-level scheduler active set
	tlPend   []int    // two-level scheduler pending set
}

func newCoreState(id int, cfg *config.GPU) (*coreState, error) {
	c := &coreState{
		id:        id,
		cluster:   id / cfg.CoresPerCluster,
		cfg:       cfg,
		slots:     make([]warpSlot, cfg.MaxWarpsPerCore),
		freeWarps: cfg.MaxWarpsPerCore,
		freeSMem:  cfg.SharedMemPerCoreKB * 1024,
		freeRegs:  cfg.RegsPerCore,
		spFree:    make([]uint64, cfg.Schedulers),
		issueRR:   make([]int, cfg.Schedulers),
	}
	c.lastIssued = make([]int, cfg.Schedulers)
	for i := range c.lastIssued {
		c.lastIssued[i] = -1
	}
	if cfg.L1KB > 0 {
		l1, err := cache.New(cache.Config{
			SizeBytes: cfg.L1KB * 1024, LineBytes: cfg.L1LineB,
			Assoc: cfg.L1Assoc, Policy: cache.WriteThrough,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: core %d L1: %w", id, err)
		}
		c.l1 = l1
	}
	cc, err := cache.New(cache.Config{
		SizeBytes: cfg.ConstCacheKB * 1024, LineBytes: cfg.ConstLineB,
		Assoc: 4, Policy: cache.WriteThrough,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: core %d const cache: %w", id, err)
	}
	c.ccache = cc
	if cfg.TexCacheKB > 0 {
		tc, err := cache.New(cache.Config{
			SizeBytes: cfg.TexCacheKB * 1024, LineBytes: cfg.TexLineB,
			Assoc: 4, Policy: cache.WriteThrough,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: core %d texture cache: %w", id, err)
		}
		c.tcache = tc
	}
	return c, nil
}

// residentWarps reports whether the core has any work.
func (c *coreState) residentWarps() bool { return c.freeWarps < len(c.slots) }

// nextEventCycle returns the cycle of the core's earliest pending writeback,
// or the maximum uint64 when none is in flight.
func (c *coreState) nextEventCycle() uint64 {
	if len(c.events) == 0 {
		return ^uint64(0)
	}
	return c.events[0].cycle
}

// residentBlocks returns the number of blocks on the core.
func (c *coreState) residentBlocks() int { return len(c.blocks) }

// canAccept reports whether a block with the given demands fits.
func (c *coreState) canAccept(warps, smemBytes, regs int) bool {
	return len(c.blocks) < c.cfg.MaxBlocksPerCore &&
		c.freeWarps >= warps && c.freeSMem >= smemBytes && c.freeRegs >= regs
}

// place installs a block's warps into free slots.
func (c *coreState) place(l *kernel.Launch, env *kernel.Env, smemBytes, regs int, a *Activity) *blockRt {
	nw := l.WarpsPerBlock()
	threads := l.ThreadsPerBlock()
	b := &blockRt{env: env, total: nw}
	for i := 0; i < nw; i++ {
		lanes := kernel.WarpSize
		if rem := threads - i*kernel.WarpSize; rem < kernel.WarpSize {
			lanes = rem
		}
		slot := c.findFreeSlot()
		c.ageCounter++
		c.slots[slot] = warpSlot{
			active:   true,
			w:        kernel.NewWarp(i, lanes, l.Prog.NumRegs),
			block:    b,
			ageStamp: c.ageCounter,
		}
		b.slots = append(b.slots, slot)
		a.WSTWrites++ // warp status table entry initialised
		a.WarpsLaunched++
	}
	a.ThreadsLaunched += uint64(threads)
	c.freeWarps -= nw
	c.freeSMem -= smemBytes
	c.freeRegs -= regs
	c.blocks = append(c.blocks, b)
	return b
}

func (c *coreState) findFreeSlot() int {
	for i := range c.slots {
		if !c.slots[i].active {
			return i
		}
	}
	panic("sim: no free warp slot despite accounting")
}

// retire frees a completed block's resources.
func (c *coreState) retire(b *blockRt, smemBytes, regs int) {
	for _, s := range b.slots {
		c.slots[s] = warpSlot{}
	}
	c.freeWarps += b.total
	c.freeSMem += smemBytes
	c.freeRegs += regs
	for i, bb := range c.blocks {
		if bb == b {
			c.blocks = append(c.blocks[:i], c.blocks[i+1:]...)
			break
		}
	}
}

// drainEvents applies writebacks due at the current cycle and returns how
// many events it drained.
func (c *coreState) drainEvents(now uint64, a *Activity) int {
	drained := 0
	for len(c.events) > 0 && c.events[0].cycle <= now {
		ev := c.events.pop()
		drained++
		sl := &c.slots[ev.slot]
		if !sl.active {
			continue // block already retired (possible only after errors)
		}
		sl.pendingN--
		sl.block.outstanding--
		if ev.isMem && sl.memPending > 0 {
			sl.memPending--
		}
		if ev.hasWB {
			a.RFBankWrites++
			a.SBWrites++ // scoreboard entry release
			for i, r := range sl.pendingRegs {
				if r == ev.reg {
					sl.pendingRegs = append(sl.pendingRegs[:i], sl.pendingRegs[i+1:]...)
					break
				}
			}
		}
	}
	return drained
}

// fetchStage models instruction fetch + decode: up to Schedulers warps per
// cycle refill their instruction buffer slot. It returns the fetch count.
func (c *coreState) fetchStage(now uint64, a *Activity) int {
	n := len(c.slots)
	fetched := 0
	for scan := 0; scan < n && fetched < c.cfg.Schedulers; scan++ {
		// i derives from the *current* fetchRR each iteration (so a
		// successful fetch advances the whole scan window) — the reduction
		// replaces the original modulo, everything else is seed behaviour.
		i := c.fetchRR + scan
		if i >= n {
			i -= n
		}
		sl := &c.slots[i]
		if !sl.active || sl.ibValid || sl.w.Finished || sl.w.AtBarrier {
			continue
		}
		sl.ibValid = true
		sl.fetchedAt = now
		fetched++
		a.ICacheReads++
		a.Decodes++
		a.WSTReads++
		a.WSTWrites++
		a.IBufWrites++
		c.fetchRR = i + 1
		if c.fetchRR == n {
			c.fetchRR = 0
		}
	}
	return fetched
}

// hazard reports whether the instruction at the warp's PC has a register
// dependency against in-flight instructions (scoreboard check) or, in
// blocking mode, whether anything at all is outstanding.
func (c *coreState) hazard(sl *warpSlot, in *kernel.Instr) bool {
	if !c.cfg.HasScoreboard {
		return sl.pendingN > 0
	}
	if len(sl.pendingRegs) >= c.cfg.ScoreboardEntries {
		return true
	}
	c.scratch = in.SrcRegs(c.scratch[:0])
	if in.HasDst {
		c.scratch = append(c.scratch, in.Dst)
	}
	for _, r := range c.scratch {
		for _, p := range sl.pendingRegs {
			if p == r {
				return true
			}
		}
	}
	return false
}

// unitFree checks structural availability for the instruction class.
func (c *coreState) unitFree(class kernel.Class, sched int, now uint64) bool {
	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		return c.spFree[sched] <= now
	case kernel.ClassSFU:
		return c.sfuFree <= now
	case kernel.ClassMem:
		return c.ldstFree <= now
	default:
		return true
	}
}

// unitFreeAt returns the cycle the instruction class's unit accepts the next
// warp — the wake-up time of a warp blocked only structurally.
func (c *coreState) unitFreeAt(class kernel.Class, sched int) uint64 {
	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		return c.spFree[sched]
	case kernel.ClassSFU:
		return c.sfuFree
	case kernel.ClassMem:
		return c.ldstFree
	default:
		return 0
	}
}

// issueStage arbitrates and issues up to one instruction per scheduler,
// considering warps in the order the configured scheduling policy dictates.
func (g *gpuSim) issueStage(c *coreState, now uint64) error {
	a := &g.act
	n := len(c.slots)
	for sched := 0; sched < c.cfg.Schedulers; sched++ {
		c.orderBuf = g.candidateOrder(c, sched, c.orderBuf)
		arbitrated := false
		for _, i := range c.orderBuf {
			sl := &c.slots[i]
			if sl.fetchedAt >= now {
				continue
			}
			if !arbitrated {
				arbitrated = true
				a.SchedArbs++
			}
			in := &sl.block.env.Block.Launch.Prog.Instrs[sl.w.PC()]
			a.SBSearches++
			if c.hazard(sl, in) {
				continue
			}
			class := kernel.ClassOf(in.Op)
			if !c.unitFree(class, sched, now) {
				// Hazard-free but structurally blocked: the warp becomes
				// issuable the moment the unit frees, so the fast-forward
				// must not jump past that point.
				if t := c.unitFreeAt(class, sched); t < g.structNext {
					g.structNext = t
				}
				continue
			}
			if err := g.issueInstr(c, sl, i, sched, in, class, now); err != nil {
				return err
			}
			c.issueRR[sched] = (i + 1) % n
			c.lastIssued[sched] = i
			break // one issue per scheduler per cycle
		}
	}
	return nil
}

// issueInstr executes one instruction functionally and models its timing.
func (g *gpuSim) issueInstr(c *coreState, sl *warpSlot, slotIdx, sched int, in *kernel.Instr, class kernel.Class, now uint64) error {
	a := &g.act
	cfg := c.cfg
	prog := sl.block.env.Block.Launch.Prog

	info, err := sl.w.Exec(prog, sl.block.env)
	if err != nil {
		return fmt.Errorf("core %d slot %d: %w", c.id, slotIdx, err)
	}

	g.progress = true
	sl.ibValid = false
	a.IssuedInstrs++
	a.IBufReads++
	a.WSTReads++
	a.ReconvReads++
	if info.Diverged {
		a.ReconvPushes += 2
	}
	a.ReconvPops += uint64(info.Reconverged)

	// Register file activity: one bank row read per source register
	// (operands collected over multiple cycles), one collector fill and one
	// crossbar transfer each.
	c.scratch = in.SrcRegs(c.scratch[:0])
	nsrc := uint64(len(c.scratch))
	a.RFBankReads += nsrc
	a.OCWrites += nsrc
	a.OperandXbar += nsrc

	lanes := info.ActiveLanes
	var latency uint64
	hasWB := in.HasDst

	switch class {
	case kernel.ClassInt, kernel.ClassFP:
		ii := uint64(cfg.WarpSize / (cfg.FUsPerCore / cfg.Schedulers))
		if ii == 0 {
			ii = 1
		}
		c.spFree[sched] = now + ii
		latency = uint64(cfg.ALULatency)
		if class == kernel.ClassInt {
			a.IntWarpInstrs++
			a.IntThreadInstrs += uint64(lanes)
		} else {
			a.FPWarpInstrs++
			a.FPThreadInstrs += uint64(lanes)
		}
	case kernel.ClassSFU:
		ii := uint64(cfg.WarpSize / cfg.SFUsPerCore)
		if ii == 0 {
			ii = 1
		}
		c.sfuFree = now + ii
		latency = uint64(cfg.SFULatency)
		a.SFUWarpInstrs++
		a.SFUThreadInstrs += uint64(lanes)
	case kernel.ClassMem:
		a.MemWarpInstrs++
		var err error
		latency, err = g.memAccess(c, in, &info, now)
		if err != nil {
			return err
		}
	default: // control
		a.CtrlWarpInstrs++
		latency = 1
		hasWB = false
	}

	if info.AtBarrier {
		sl.block.atBarrier++
		g.maybeReleaseBarrier(c, sl.block)
	}
	if info.Finished {
		sl.block.finished++
		a.WSTWrites++
		g.maybeReleaseBarrier(c, sl.block)
	}

	if class == kernel.ClassCtrl && !hasWB {
		// Control instructions complete immediately; no pipeline slot held.
		g.retireIfDone(c, sl.block)
		return nil
	}

	if cfg.HasScoreboard && hasWB {
		sl.pendingRegs = append(sl.pendingRegs, in.Dst)
		a.SBWrites++
	}
	sl.pendingN++
	sl.block.outstanding++
	isMem := class == kernel.ClassMem
	if isMem {
		sl.memPending++
	}
	c.events.push(wbEvent{cycle: now + latency, slot: slotIdx, reg: in.Dst, hasWB: hasWB, isMem: isMem, lanes: lanes})
	return nil
}

// memAccess routes a memory instruction through the LDST unit: AGU, then the
// space-specific path. It returns the dependency latency.
func (g *gpuSim) memAccess(c *coreState, in *kernel.Instr, info *kernel.StepInfo, now uint64) (uint64, error) {
	a := &g.act
	cfg := c.cfg
	lanes := info.ActiveLanes

	// AGU: sub-AGUs generate 8 addresses per cycle.
	a.AGUAddresses += uint64(lanes)
	aguCycles := uint64((lanes + 7) / 8)
	if aguCycles == 0 {
		aguCycles = 1
	}

	switch in.Space {
	case kernel.SpaceShared:
		extra := smemExtraCycles(info, cfg.SMemBanks)
		a.SMemAccesses += uint64(lanes)
		a.SMemConflicts += uint64(extra)
		c.ldstFree = now + aguCycles + uint64(extra)
		return uint64(cfg.SMemLatency) + uint64(extra), nil

	case kernel.SpaceConst, kernel.SpaceParam:
		addrs := constDistinctAddrs(info, c.addrBuf[:0])
		c.addrBuf = addrs
		a.ConstReads += uint64(len(addrs))
		worst := uint64(cfg.SMemLatency)
		for _, ad := range addrs {
			res := c.ccache.Access(uint64(ad), false)
			if !res.Hit {
				a.ConstMisses++
				done := g.mem.globalSegment(now, constRegionBase+ad, cfg.ConstLineB, false, a)
				if done-now > worst {
					worst = done - now
				}
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(addrs)-1)
		return worst, nil

	case kernel.SpaceTexture:
		if c.tcache == nil {
			return 0, fmt.Errorf("sim: texture access on %s, which has no texture cache configured", cfg.Name)
		}
		// Per-lane addresses collapse to distinct cache lines (deduplicated
		// in lane order, so cache behaviour is deterministic); hits are
		// served at L1-like latency, misses fetch the line from memory.
		lines := c.lineBuf[:0]
		for l := 0; l < kernel.WarpSize; l++ {
			if info.ExecMask&(1<<l) == 0 {
				continue
			}
			line := info.Addrs[l] &^ uint32(cfg.TexLineB-1)
			dup := false
			for _, seen := range lines {
				if seen == line {
					dup = true
					break
				}
			}
			if !dup {
				lines = append(lines, line)
			}
		}
		c.lineBuf = lines
		worst := uint64(cfg.SMemLatency) + 12 // TMU addressing + filtering pipe
		for _, line := range lines {
			a.TexReads++
			if res := c.tcache.Access(uint64(line), false); !res.Hit {
				a.TexMisses++
				done := g.mem.globalSegment(now, line, cfg.TexLineB, false, a)
				if done-now > worst {
					worst = done - now
				}
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(lines))
		return worst, nil

	case kernel.SpaceGlobal:
		write := in.Op == kernel.OpSt
		segs := coalesce(info, c.segBuf[:0])
		c.segBuf = segs
		a.CoalescerQueries++
		a.CoalescedReqs += uint64(len(segs))
		a.PRTWrites += uint64(len(segs))
		var worst uint64
		for _, seg := range segs {
			segDone := g.globalThroughL1(c, now, seg, write, a)
			if segDone > worst {
				worst = segDone
			}
		}
		c.ldstFree = now + aguCycles + uint64(len(segs))
		if write {
			// Stores retire once handed to the memory system.
			return 4, nil
		}
		if worst <= now {
			worst = now + uint64(cfg.SMemLatency)
		}
		return worst - now, nil
	}
	return 0, fmt.Errorf("sim: unhandled memory space %v", in.Space)
}

// globalThroughL1 sends one segment through the per-core L1 (when present)
// and on to the shared memory system.
func (g *gpuSim) globalThroughL1(c *coreState, now uint64, seg uint32, write bool, a *Activity) uint64 {
	if c.l1 != nil {
		res := c.l1.Access(uint64(seg), write)
		if write {
			a.L1Writes++
			// Write-through: always forwarded.
			return g.mem.globalSegment(now, seg, segmentBytes, true, a)
		}
		a.L1Reads++
		if res.Hit {
			return now + uint64(c.cfg.SMemLatency) + 8
		}
		a.L1Misses++
		return g.mem.globalSegment(now, seg, segmentBytes, false, a)
	}
	if write {
		return g.mem.globalSegment(now, seg, segmentBytes, true, a)
	}
	return g.mem.globalSegment(now, seg, segmentBytes, false, a)
}
