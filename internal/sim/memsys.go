package sim

import (
	"fmt"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim/cache"
)

// segmentBytes is the coalescing granularity (and L1/L2 line size on the
// global path): contiguous aligned 128-byte segments, after the NVIDIA
// coalescing patent the paper models.
const segmentBytes = 128

// constRegionBase maps the constant segment into the global address space
// for DRAM timing purposes (constant cache misses must pay memory latency).
const constRegionBase = 0xF000_0000

// memSys bundles the shared memory-system state: the (optional) L2, the
// DRAM channels, and NoC accounting. L1 and constant caches are per-core and
// live in coreState.
type memSys struct {
	cfg  *config.GPU
	l2   *cache.Cache // nil when absent
	dram *dramSys

	l2Lat uint64
}

func newMemSys(cfg *config.GPU) (*memSys, error) {
	m := &memSys{
		cfg:   cfg,
		dram:  newDRAMSys(cfg),
		l2Lat: uint64(cfg.DRAMLatencyCore) / 3,
	}
	if cfg.L2KB > 0 {
		l2, err := cache.New(cache.Config{
			SizeBytes: cfg.L2KB * 1024,
			LineBytes: cfg.L2LineB,
			Assoc:     cfg.L2Assoc,
			Policy:    cache.WriteBack,
		})
		if err != nil {
			return nil, fmt.Errorf("sim: L2: %w", err)
		}
		m.l2 = l2
	}
	return m, nil
}

// globalSegment services one coalesced segment request and returns its
// completion cycle. The caller has already gone through (and counted) the
// per-core L1.
func (m *memSys) globalSegment(now uint64, addr uint32, segBytes int, write bool, a *Activity) uint64 {
	// Request flit towards the L2/MC partition; writes carry payload flits.
	a.NoCFlits++
	if write {
		a.NoCFlits += uint64((segBytes + 31) / 32)
	}

	var done uint64
	if m.l2 != nil {
		res := m.l2.Access(uint64(addr), write)
		if write {
			a.L2Writes++
		} else {
			a.L2Reads++
		}
		switch {
		case res.Hit:
			done = now + m.l2Lat
		default:
			a.L2Misses++
			if res.Writeback {
				// Dirty victim heads to DRAM; its latency is off the load's
				// critical path but consumes bandwidth.
				m.dram.access(now, uint32(res.VictimLine), m.cfg.L2LineB, true, a)
			}
			if write {
				// Write-allocate without fetch: coalesced stores cover whole
				// segments, so the line is installed dirty with no fill read.
				done = now + m.l2Lat
			} else {
				done = m.dram.access(now, addr, segBytes, false, a) + m.l2Lat
			}
		}
	} else {
		done = m.dram.access(now, addr, segBytes, write, a)
	}

	// Response flits back to the core (reads carry data).
	if !write {
		a.NoCFlits += uint64((segBytes+31)/32) + 1
	} else {
		a.NoCFlits++ // ack
	}
	return done
}

// nextEventCycle returns the earliest cycle at which the memory system
// completes in-flight work after now, or the maximum uint64 when idle. The
// memory model resolves each request's completion eagerly at issue time (the
// core-side writeback heaps carry the dependency events), so this only
// bounds how far the fast-forward may jump while DRAM channels still drain.
func (m *memSys) nextEventCycle(now uint64) uint64 {
	return m.dram.nextEventCycle(now)
}

// finalize drains dirty L2 state at kernel end: lines written during the
// kernel ultimately reach DRAM, so the flush traffic is charged to the
// kernel's DRAM command counts.
func (m *memSys) finalize(a *Activity) {
	if m.l2 == nil {
		return
	}
	dirty := m.l2.Flush()
	if dirty > 0 {
		bursts := uint64(dirty) * uint64((m.cfg.L2LineB+31)/32)
		a.DRAMWriteBursts += bursts
		a.MCRequests += uint64(dirty)
		a.NoCFlits += bursts // writeback payload crosses the NoC partition links
	}
}

// coalesce groups the active lanes' byte addresses into aligned segments.
// It appends the distinct segment base addresses to buf (sorted ascending),
// mirroring the input queue / pending request table / FSM structure of the
// coalescing patent: the goal is "to service the addresses requested by the
// memory access in as few memory requests as possible". The caller passes a
// reusable buffer; with at most WarpSize segments per warp access, linear
// dedup plus insertion sort beats a map without allocating.
func coalesce(info *kernel.StepInfo, buf []uint32) []uint32 {
	segs := buf
	for l := 0; l < kernel.WarpSize; l++ {
		if info.ExecMask&(1<<l) == 0 {
			continue
		}
		base := info.Addrs[l] &^ (segmentBytes - 1)
		dup := false
		for _, s := range segs {
			if s == base {
				dup = true
				break
			}
		}
		if !dup {
			segs = append(segs, base)
		}
	}
	// Insertion sort: ≤32 elements, usually already ordered (unit strides).
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j] < segs[j-1]; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
	return segs
}

// smemExtraCycles computes the bank-conflict serialization cost of a
// shared-memory access, per the shared-memory patent's conflict resolution
// mechanism: within each access group (a half-warp on 16-bank Tesla parts,
// a full warp on 32-bank Fermi parts) the cost is the maximum number of
// *distinct* addresses mapping to one bank (equal addresses broadcast). The
// return value is the total extra cycles beyond a conflict-free access.
func smemExtraCycles(info *kernel.StepInfo, banks int) int {
	group := banks
	if group > kernel.WarpSize {
		group = kernel.WarpSize
	}
	extra := 0
	// Fixed-size stack scratch (a group never exceeds the warp width):
	// addrs/bankOf collect the group's active lanes, firsts marks the first
	// occurrence of each (bank, address) pair so equal addresses broadcast.
	var addrs [kernel.WarpSize]uint32
	var bankOf [kernel.WarpSize]int32
	var firsts [kernel.WarpSize]bool
	fastBanks := banks <= 64
	for g := 0; g < kernel.WarpSize; g += group {
		if fastBanks {
			// Single-pass conflict screen: mark each active lane's bank in
			// a word; if no bank repeats, the group is conflict-free (the
			// max distinct-address degree is 1) and the quadratic
			// first-occurrence analysis below is skipped. A repeated bank
			// may still be a broadcast, so collisions fall through to the
			// exact algorithm.
			var occ uint64
			clash := false
			for l := g; l < g+group && l < kernel.WarpSize; l++ {
				if info.ExecMask&(1<<l) == 0 {
					continue
				}
				bank := uint64(1) << (int(info.Addrs[l]/4) % banks)
				if occ&bank != 0 {
					clash = true
					break
				}
				occ |= bank
			}
			if !clash {
				continue
			}
		}
		m := 0
		for l := g; l < g+group && l < kernel.WarpSize; l++ {
			if info.ExecMask&(1<<l) == 0 {
				continue
			}
			addrs[m] = info.Addrs[l]
			bankOf[m] = int32(int(info.Addrs[l]/4) % banks)
			m++
		}
		deg := 1
		for i := 0; i < m; i++ {
			first := true
			for j := 0; j < i; j++ {
				if bankOf[j] == bankOf[i] && addrs[j] == addrs[i] {
					first = false
					break
				}
			}
			firsts[i] = first
			if !first {
				continue
			}
			cnt := 1
			for j := 0; j < i; j++ {
				if firsts[j] && bankOf[j] == bankOf[i] {
					cnt++
				}
			}
			if cnt > deg {
				deg = cnt
			}
		}
		extra += deg - 1
	}
	return extra
}

// constDistinctAddrs collects the distinct addresses of a constant access
// into the caller's reusable buffer, in lane order: "the number of generated
// constant cache accesses is equal to the number of different addresses in
// the address bundle".
func constDistinctAddrs(info *kernel.StepInfo, buf []uint32) []uint32 {
	out := buf
	for l := 0; l < kernel.WarpSize; l++ {
		if info.ExecMask&(1<<l) == 0 {
			continue
		}
		addr := info.Addrs[l]
		dup := false
		for _, a := range out {
			if a == addr {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, addr)
		}
	}
	return out
}
