package sim

import (
	"math/bits"

	"gpusimpow/internal/config"
)

// dramSys models the memory controllers and GDDR5 channels: per-channel
// bandwidth serialization, per-bank open-row tracking (activate on row
// change), and the command counts the DRAM power model needs. Timing is kept
// in core cycles throughout.
type dramSys struct {
	cfg         *config.GPU
	channels    int
	banks       int
	rowShift    uint
	burstCycles uint64 // core cycles to transfer one 32B burst on one channel
	rowPenalty  uint64 // tRP + tRCD in core cycles
	frontLat    uint64 // core->MC pipeline latency
	backLat     uint64 // MC->core return latency

	nextFree []uint64 // per channel: earliest cycle the data bus is free
	openRow  [][]int64
	busy     []uint64 // per channel: accumulated busy cycles
}

func newDRAMSys(cfg *config.GPU) *dramSys {
	coreHz := cfg.CoreClockHz()
	// One x32 device per channel: 32 bytes take 8/dataRate ns.
	burstNS := 8 / cfg.MemDataRateGbps
	burst := uint64(burstNS*coreHz/1e9 + 0.5)
	if burst == 0 {
		burst = 1
	}
	rowNS := cfg.DRAMTRCDNS + cfg.DRAMTRPNS
	d := &dramSys{
		cfg:         cfg,
		channels:    cfg.MemChannels,
		banks:       cfg.DRAMBanks,
		rowShift:    uint(bits.TrailingZeros(uint(cfg.DRAMRowBytes))),
		burstCycles: burst,
		rowPenalty:  uint64(rowNS * coreHz / 1e9),
		frontLat:    uint64(cfg.DRAMLatencyCore) / 2,
		backLat:     uint64(cfg.DRAMLatencyCore) - uint64(cfg.DRAMLatencyCore)/2,
		nextFree:    make([]uint64, cfg.MemChannels),
		openRow:     make([][]int64, cfg.MemChannels),
		busy:        make([]uint64, cfg.MemChannels),
	}
	for i := range d.openRow {
		d.openRow[i] = make([]int64, cfg.DRAMBanks)
		for b := range d.openRow[i] {
			d.openRow[i][b] = -1
		}
	}
	return d
}

// access services a segment request of segBytes at addr issued at cycle now.
// It returns the completion cycle and records command activity.
func (d *dramSys) access(now uint64, addr uint32, segBytes int, write bool, a *Activity) uint64 {
	ch := int(addr>>8) % d.channels
	chLocal := uint32(addr) / uint32(d.channels)
	bank := int(chLocal>>d.rowShift) % d.banks
	row := int64(chLocal >> d.rowShift / uint32(d.banks))

	arrival := now + d.frontLat
	start := arrival
	if nf := d.nextFree[ch]; nf > start {
		start = nf
	}

	var penalty uint64
	if d.openRow[ch][bank] != row {
		penalty = d.rowPenalty
		d.openRow[ch][bank] = row
		a.DRAMActivates++
	}

	bursts := uint64((segBytes + 31) / 32)
	service := penalty + bursts*d.burstCycles
	d.nextFree[ch] = start + service
	d.busy[ch] += service

	a.MCRequests++
	if write {
		a.DRAMWriteBursts += bursts
	} else {
		a.DRAMReadBursts += bursts
	}
	return start + service + d.backLat
}

// nextEventCycle returns the earliest in-flight completion (bus-free time
// plus return latency) across channels that are still busy after now, or the
// maximum uint64 when every channel is drained.
func (d *dramSys) nextEventCycle(now uint64) uint64 {
	next := ^uint64(0)
	for _, nf := range d.nextFree {
		if nf > now && nf+d.backLat < next {
			next = nf + d.backLat
		}
	}
	return next
}

// totalBusy returns the summed channel busy cycles.
func (d *dramSys) totalBusy() uint64 {
	var t uint64
	for _, b := range d.busy {
		t += b
	}
	return t
}

// activeFraction estimates the fraction of time banks were open.
func (d *dramSys) activeFraction(kernelCycles uint64) float64 {
	if kernelCycles == 0 {
		return 0
	}
	f := float64(d.totalBusy()) / float64(uint64(d.channels)*kernelCycles)
	if f > 1 {
		f = 1
	}
	return f
}
