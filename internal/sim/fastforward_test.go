package sim_test

// Equivalence tests for the event-driven fast-forward clock loop: skipping
// quiescent cycles must be bit-identical to the dense tick-every-cycle loop
// in every activity counter, in the headline results derived from them, and
// in the functional global-memory image.

import (
	"reflect"
	"testing"

	"gpusimpow/internal/bench"
	"gpusimpow/internal/config"
	"gpusimpow/internal/sim"
)

// runSuiteMode executes every launch of the named benchmark on cfg and
// returns the per-launch results plus the final global-memory words.
func runSuiteMode(t *testing.T, cfg *config.GPU, benchName string) ([]*sim.Result, []uint32) {
	t.Helper()
	g, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f, err := bench.ByName(benchName)
	if err != nil {
		t.Fatal(err)
	}
	inst, err := f.Make()
	if err != nil {
		t.Fatal(err)
	}
	var results []*sim.Result
	for _, r := range inst.Runs {
		res, err := g.Run(r.Launch, inst.Mem, r.CMem)
		if err != nil {
			t.Fatalf("%s/%s: %v", benchName, r.Name, err)
		}
		results = append(results, res)
	}
	if err := inst.Verify(); err != nil {
		t.Fatalf("%s failed functional verification: %v", benchName, err)
	}
	words := make([]uint32, inst.Mem.Size()/4)
	for i := range words {
		words[i] = inst.Mem.Read32(uint32(4 * i))
	}
	return results, words
}

func TestFastForwardEquivalence(t *testing.T) {
	cases := []struct {
		gpu    func() *config.GPU
		policy string
		bench  string
	}{
		{config.GT240, "", "vectorAdd"},
		{config.GT240, "", "BlackScholes"},
		{config.GT240, "", "bfs"},
		{config.GTX580, "", "vectorAdd"},
		{config.GTX580, "", "BlackScholes"},
		{config.GTX580, "", "bfs"},
		// Non-default scheduling policies exercise different candidate
		// orderings and arbitration counts during stalls.
		{config.GTX580, sim.PolicyGTO, "vectorAdd"},
		{config.GTX580, sim.PolicyTwoLevel, "vectorAdd"},
	}
	for _, tc := range cases {
		fast := tc.gpu()
		fast.SchedulerPolicy = tc.policy
		dense := tc.gpu()
		dense.SchedulerPolicy = tc.policy
		dense.DenseClock = true

		name := fast.Name + "/" + tc.bench
		if tc.policy != "" {
			name += "/" + tc.policy
		}
		t.Run(name, func(t *testing.T) {
			fastRes, fastMem := runSuiteMode(t, fast, tc.bench)
			denseRes, denseMem := runSuiteMode(t, dense, tc.bench)

			if len(fastRes) != len(denseRes) {
				t.Fatalf("launch counts differ: %d vs %d", len(fastRes), len(denseRes))
			}
			for i := range fastRes {
				if !reflect.DeepEqual(fastRes[i].Activity, denseRes[i].Activity) {
					t.Errorf("launch %d: activity counters diverge:\nfast:  %+v\ndense: %+v",
						i, fastRes[i].Activity, denseRes[i].Activity)
				} else if !reflect.DeepEqual(fastRes[i], denseRes[i]) {
					// Activity matched but a derived headline number didn't.
					t.Errorf("launch %d: derived results diverge:\nfast:  %+v\ndense: %+v",
						i, fastRes[i], denseRes[i])
				}
			}
			if !reflect.DeepEqual(fastMem, denseMem) {
				t.Error("global memory images diverge between fast-forward and dense mode")
			}
		})
	}
}

// TestFastForwardSkips guards the optimization itself: on a memory-bound
// kernel the event-driven loop must actually be exercised (the equivalence
// test above would pass vacuously if fast-forward never engaged). We can't
// observe skip counts from outside the package, so this asserts the
// precondition instead: long stalls exist, i.e. issued instructions are far
// fewer than elapsed cycles summed over cores.
func TestFastForwardSkips(t *testing.T) {
	res, _ := runSuiteMode(t, config.GT240(), "vectorAdd")
	a := res[0].Activity
	if a.Cycles == 0 || a.IssuedInstrs == 0 {
		t.Fatal("degenerate run")
	}
	if float64(a.IssuedInstrs) > 0.5*float64(a.Cycles)*float64(len(a.CoreBusyCycles)) {
		t.Skip("kernel not stall-bound on this configuration")
	}
}
