package sim

import (
	"strings"
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// vecAddProg builds c[i] = a[i] + b[i] with bounds guard.
// Params: 0=a, 1=b, 2=c, 3=n.
func vecAddProg() *kernel.Program {
	b := kernel.NewBuilder("vecadd", 12).Params(4)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 3)
	b.ISet(4, kernel.CmpGE, kernel.R(0), kernel.R(3))
	b.When(4).Exit()
	b.LdParam(5, 0)
	b.LdParam(6, 1)
	b.LdParam(7, 2)
	b.IShl(8, kernel.R(0), kernel.I(2))
	b.IAdd(5, kernel.R(5), kernel.R(8))
	b.IAdd(6, kernel.R(6), kernel.R(8))
	b.IAdd(7, kernel.R(7), kernel.R(8))
	b.Ld(kernel.SpaceGlobal, 9, kernel.R(5), 0)
	b.Ld(kernel.SpaceGlobal, 10, kernel.R(6), 0)
	b.FAdd(11, kernel.R(9), kernel.R(10))
	b.St(kernel.SpaceGlobal, kernel.R(7), kernel.R(11), 0)
	b.Exit()
	return b.MustBuild()
}

func vecAddLaunch(n, block int, mem *kernel.GlobalMem) (*kernel.Launch, uint32, []float32) {
	av := make([]float32, n)
	bv := make([]float32, n)
	want := make([]float32, n)
	for i := range av {
		av[i] = float32(i%97) * 0.25
		bv[i] = float32((i*7)%31) * 1.5
		want[i] = av[i] + bv[i]
	}
	aAddr := mem.AllocF32(av)
	bAddr := mem.AllocF32(bv)
	cAddr := mem.AllocZeroF32(n)
	return &kernel.Launch{
		Prog:   vecAddProg(),
		Grid:   kernel.Dim{X: (n + block - 1) / block, Y: 1},
		Block:  kernel.Dim{X: block, Y: 1},
		Params: []uint32{aAddr, bAddr, cAddr, uint32(n)},
	}, cAddr, want
}

func runOn(t *testing.T, cfg *config.GPU, l *kernel.Launch, mem *kernel.GlobalMem) *Result {
	t.Helper()
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestVecAddCorrectOnBothGPUs(t *testing.T) {
	for _, mk := range []func() *config.GPU{config.GT240, config.GTX580} {
		cfg := mk()
		mem := kernel.NewGlobalMem()
		l, cAddr, want := vecAddLaunch(4096, 128, mem)
		r := runOn(t, cfg, l, mem)
		got := mem.ReadF32Slice(cAddr, len(want))
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: c[%d] = %v, want %v", cfg.Name, i, got[i], want[i])
			}
		}
		if r.Activity.Cycles == 0 {
			t.Fatalf("%s: zero cycles", cfg.Name)
		}
		if r.Seconds <= 0 {
			t.Fatalf("%s: non-positive runtime", cfg.Name)
		}
	}
}

func TestActivityCountersPlausible(t *testing.T) {
	cfg := config.GT240()
	mem := kernel.NewGlobalMem()
	l, _, _ := vecAddLaunch(4096, 128, mem)
	r := runOn(t, cfg, l, mem)
	a := r.Activity

	if a.IssuedInstrs == 0 || a.Decodes == 0 || a.ICacheReads == 0 {
		t.Fatal("front-end counters empty")
	}
	if a.IssuedInstrs > a.Decodes {
		t.Errorf("issued %d > decoded %d", a.IssuedInstrs, a.Decodes)
	}
	if a.IntWarpInstrs == 0 || a.FPWarpInstrs == 0 || a.MemWarpInstrs == 0 {
		t.Error("per-class instruction counts missing")
	}
	sum := a.IntWarpInstrs + a.FPWarpInstrs + a.SFUWarpInstrs + a.MemWarpInstrs + a.CtrlWarpInstrs
	if sum != a.IssuedInstrs {
		t.Errorf("class sum %d != issued %d", sum, a.IssuedInstrs)
	}
	if a.RFBankReads == 0 || a.RFBankWrites == 0 {
		t.Error("register file counters empty")
	}
	// 4096 threads, 3 global arrays, 128B segments: each float array touches
	// 4096*4/128 = 128 segments.
	if a.CoalescedReqs < 3*128 {
		t.Errorf("coalesced requests %d below minimum 384", a.CoalescedReqs)
	}
	// Perfectly coalesced: ~4 requests per memory warp instruction would be
	// wildly uncoalesced here; expect close to 1 segment per warp access.
	if a.CoalescedReqs > a.AGUAddresses {
		t.Error("more requests than addresses generated")
	}
	if a.DRAMReadBursts == 0 || a.DRAMWriteBursts == 0 || a.DRAMActivates == 0 {
		t.Error("DRAM counters empty")
	}
	if a.NoCFlits == 0 || a.MCRequests == 0 {
		t.Error("interconnect counters empty")
	}
	if a.BlocksLaunched != uint64(l.Grid.X) {
		t.Errorf("blocks launched %d, want %d", a.BlocksLaunched, l.Grid.X)
	}
	if a.ThreadsLaunched != 4096 {
		t.Errorf("threads launched %d, want 4096", a.ThreadsLaunched)
	}
	if a.GlobalSchedCycles == 0 {
		t.Error("global scheduler cycles empty")
	}
}

func TestClusterAwareDispatch(t *testing.T) {
	// With exactly 4 blocks on a 4-cluster GT240, each cluster must get one.
	cfg := config.GT240()
	mem := kernel.NewGlobalMem()
	l, _, _ := vecAddLaunch(4*64, 64, mem) // 4 blocks
	r := runOn(t, cfg, l, mem)
	busyClusters := 0
	for _, c := range r.Activity.ClusterBusyCycles {
		if c > 0 {
			busyClusters++
		}
	}
	if busyClusters != 4 {
		t.Errorf("busy clusters = %d, want 4 (cluster-aware dispatch)", busyClusters)
	}
	// With 1 block only one cluster may be busy.
	mem2 := kernel.NewGlobalMem()
	l2, _, _ := vecAddLaunch(64, 64, mem2)
	r2 := runOn(t, cfg, l2, mem2)
	busy2 := 0
	for _, c := range r2.Activity.ClusterBusyCycles {
		if c > 0 {
			busy2++
		}
	}
	if busy2 != 1 {
		t.Errorf("busy clusters = %d, want 1", busy2)
	}
}

func TestMoreCoresFaster(t *testing.T) {
	// GTX580 has 16 wider cores at a higher clock: the same kernel must take
	// fewer cycles-per-instruction overall, and strictly less wall time.
	mem1 := kernel.NewGlobalMem()
	l1, _, _ := vecAddLaunch(1<<15, 256, mem1)
	r240 := runOn(t, config.GT240(), l1, mem1)
	mem2 := kernel.NewGlobalMem()
	l2, _, _ := vecAddLaunch(1<<15, 256, mem2)
	r580 := runOn(t, config.GTX580(), l2, mem2)
	if r580.Seconds >= r240.Seconds {
		t.Errorf("GTX580 (%.3g s) should beat GT240 (%.3g s)", r580.Seconds, r240.Seconds)
	}
	if r580.IPC <= r240.IPC {
		t.Errorf("GTX580 IPC %.3f should exceed GT240 IPC %.3f", r580.IPC, r240.IPC)
	}
}

func TestSharedMemoryKernelAndConflicts(t *testing.T) {
	// Stride-N shared accesses: stride 1 conflict-free, stride 16 causes
	// 16-way conflicts on a 16-bank GT240.
	build := func(stride int) *kernel.Program {
		b := kernel.NewBuilder("smem", 10).Params(1).SMem(4096)
		b.SReg(0, kernel.SpecTidX)
		b.IMul(1, kernel.R(0), kernel.I(int32(stride*4)))
		b.IAnd(1, kernel.R(1), kernel.I(4095)) // stay in bounds
		b.St(kernel.SpaceShared, kernel.R(1), kernel.R(0), 0)
		b.Bar()
		b.Ld(kernel.SpaceShared, 2, kernel.R(1), 0)
		b.LdParam(3, 0)
		b.IShl(4, kernel.R(0), kernel.I(2))
		b.IAdd(3, kernel.R(3), kernel.R(4))
		b.St(kernel.SpaceGlobal, kernel.R(3), kernel.R(2), 0)
		b.Exit()
		return b.MustBuild()
	}
	run := func(stride int) *Result {
		mem := kernel.NewGlobalMem()
		out := mem.Alloc(256 * 4)
		l := &kernel.Launch{
			Prog: build(stride), Grid: kernel.Dim{X: 4, Y: 1},
			Block: kernel.Dim{X: 64, Y: 1}, Params: []uint32{out},
		}
		return runOn(t, config.GT240(), l, mem)
	}
	noConf := run(1)
	conf := run(16)
	if noConf.Activity.SMemConflicts != 0 {
		t.Errorf("stride-1 should be conflict free, got %d conflict cycles", noConf.Activity.SMemConflicts)
	}
	if conf.Activity.SMemConflicts == 0 {
		t.Error("stride-16 should conflict on 16 banks")
	}
	if conf.Activity.Cycles <= noConf.Activity.Cycles {
		t.Error("bank conflicts should cost cycles")
	}
	if noConf.Activity.SMemAccesses == 0 {
		t.Error("shared accesses not counted")
	}
}

func TestL2ReducesDRAMTraffic(t *testing.T) {
	// Re-reading the same array from many blocks: with the GTX580 L2 most
	// repeat traffic must be filtered before DRAM.
	prog := func() *kernel.Program {
		b := kernel.NewBuilder("reread", 10).Params(2)
		b.SReg(0, kernel.SpecTidX)
		b.LdParam(1, 0)
		b.IShl(2, kernel.R(0), kernel.I(2))
		b.IAdd(1, kernel.R(1), kernel.R(2)) // same addresses in every block
		b.Ld(kernel.SpaceGlobal, 3, kernel.R(1), 0)
		b.SReg(4, kernel.SpecCtaX)
		b.IMad(5, kernel.R(4), kernel.S(kernel.SpecNTidX), kernel.R(0))
		b.IShl(5, kernel.R(5), kernel.I(2))
		b.LdParam(6, 1)
		b.IAdd(6, kernel.R(6), kernel.R(5))
		b.St(kernel.SpaceGlobal, kernel.R(6), kernel.R(3), 0)
		b.Exit()
		return b.MustBuild()
	}()
	mem := kernel.NewGlobalMem()
	in := mem.AllocZeroF32(256)
	out := mem.AllocZeroF32(256 * 64)
	l := &kernel.Launch{
		Prog: prog, Grid: kernel.Dim{X: 64, Y: 1},
		Block: kernel.Dim{X: 256, Y: 1}, Params: []uint32{in, out},
	}
	r := runOn(t, config.GTX580(), l, mem)
	a := r.Activity
	if a.L2Reads == 0 {
		t.Fatal("L2 unused on GTX580")
	}
	// 512 warp-level reads of the same 1 KB array: without the hierarchy
	// that is 2048 DRAM read bursts; the L1+L2 must filter nearly all of it.
	if a.DRAMReadBursts >= a.L1Reads {
		t.Errorf("cache hierarchy did not filter reads: %d DRAM read bursts vs %d L1 reads",
			a.DRAMReadBursts, a.L1Reads)
	}
	// All written lines must ultimately reach DRAM (write-back + flush):
	// 64 blocks x 256 floats = 64 KB = 2048 32-byte bursts.
	if a.DRAMWriteBursts < 2048 {
		t.Errorf("DRAM write bursts %d below the 2048 the output data requires", a.DRAMWriteBursts)
	}
}

func TestBlockTooLargeErrors(t *testing.T) {
	cfg := config.GT240() // 768 threads/core max
	b := kernel.NewBuilder("big", 4)
	b.Exit()
	p := b.MustBuild()
	l := &kernel.Launch{Prog: p, Grid: kernel.Dim{X: 1, Y: 1}, Block: kernel.Dim{X: 1024, Y: 1}}
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.Run(l, kernel.NewGlobalMem(), nil); err == nil {
		t.Error("1024-thread block should not fit a 768-thread core")
	}
}

func TestInvalidWarpSizeRejected(t *testing.T) {
	cfg := config.GT240()
	cfg.WarpSize = 64
	cfg.MaxThreadsPerCore = cfg.MaxWarpsPerCore * 64
	if _, err := New(cfg); err == nil {
		t.Error("non-32 warp size must be rejected")
	}
}

func TestScoreboardBeatsBlockingIssue(t *testing.T) {
	// A chain of independent FP ops: scoreboarded cores overlap latency,
	// blocking cores cannot. Same machine otherwise.
	prog := func() *kernel.Program {
		b := kernel.NewBuilder("ilp", 16).Params(1)
		b.SReg(0, kernel.SpecTidX)
		b.I2F(1, kernel.R(0))
		for i := 0; i < 8; i++ {
			// Independent ops into distinct registers.
			b.FMul(2+i, kernel.R(1), kernel.F(float32(i)+1))
		}
		b.FAdd(10, kernel.R(2), kernel.R(3))
		b.LdParam(11, 0)
		b.IShl(12, kernel.R(0), kernel.I(2))
		b.IAdd(11, kernel.R(11), kernel.R(12))
		b.St(kernel.SpaceGlobal, kernel.R(11), kernel.R(10), 0)
		b.Exit()
		return b.MustBuild()
	}()
	base := config.GT240()
	sb := config.GT240()
	sb.Name = "GT240-SB"
	sb.HasScoreboard = true
	sb.ScoreboardEntries = 6

	run := func(cfg *config.GPU) uint64 {
		mem := kernel.NewGlobalMem()
		out := mem.Alloc(64 * 4)
		l := &kernel.Launch{Prog: prog, Grid: kernel.Dim{X: 1, Y: 1},
			Block: kernel.Dim{X: 64, Y: 1}, Params: []uint32{out}}
		return runOn(t, cfg, l, mem).Activity.Cycles
	}
	blocking := run(base)
	scoreboarded := run(sb)
	if scoreboarded >= blocking {
		t.Errorf("scoreboard (%d cyc) should beat blocking issue (%d cyc)", scoreboarded, blocking)
	}
}

func TestDivergentKernelRunsAndCounts(t *testing.T) {
	prog := func() *kernel.Program {
		b := kernel.NewBuilder("div", 10).Params(1)
		b.SReg(0, kernel.SpecTidX)
		b.SReg(6, kernel.SpecCtaX)
		b.IMad(0, kernel.R(6), kernel.S(kernel.SpecNTidX), kernel.R(0)) // global id
		b.IAnd(1, kernel.R(0), kernel.I(3))
		b.ISet(2, kernel.CmpEQ, kernel.R(1), kernel.I(0))
		b.When(2).Bra("zero", "join")
		b.IMul(3, kernel.R(0), kernel.I(3))
		b.BraUni("join")
		b.Label("zero")
		b.IMul(3, kernel.R(0), kernel.I(5))
		b.Label("join")
		b.LdParam(4, 0)
		b.IShl(5, kernel.R(0), kernel.I(2))
		b.IAdd(4, kernel.R(4), kernel.R(5))
		b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(3), 0)
		b.Exit()
		return b.MustBuild()
	}()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(128 * 4)
	l := &kernel.Launch{Prog: prog, Grid: kernel.Dim{X: 2, Y: 1},
		Block: kernel.Dim{X: 64, Y: 1}, Params: []uint32{out}}
	r := runOn(t, config.GT240(), l, mem)
	if r.Activity.ReconvPushes == 0 || r.Activity.ReconvPops == 0 {
		t.Error("divergence should move the reconvergence stack")
	}
	vals := mem.ReadI32Slice(out, 128)
	for i, v := range vals {
		want := int32(i * 3)
		if i%4 == 0 {
			want = int32(i * 5)
		}
		if v != want {
			t.Fatalf("out[%d] = %d, want %d", i, v, want)
		}
	}
}

func TestResultDerivedMetrics(t *testing.T) {
	cfg := config.GT240()
	mem := kernel.NewGlobalMem()
	l, _, _ := vecAddLaunch(2048, 128, mem)
	r := runOn(t, cfg, l, mem)
	if r.IPC <= 0 || r.IPC > float64(cfg.NumCores()*cfg.Schedulers) {
		t.Errorf("IPC %.3f implausible", r.IPC)
	}
	if r.ConstHitRate <= 0 || r.ConstHitRate > 1 {
		t.Errorf("const hit rate %v out of range", r.ConstHitRate)
	}
	if f := r.DRAMActiveFraction(cfg.MemChannels); f < 0 || f > 1 {
		t.Errorf("DRAM active fraction %v out of range", f)
	}
	if r.DRAMActiveFraction(0) != 0 {
		t.Error("zero channels must yield zero fraction")
	}
}

func TestActivityWriteTable(t *testing.T) {
	cfg := config.GT240()
	mem := kernel.NewGlobalMem()
	l, _, _ := vecAddLaunch(2048, 128, mem)
	r := runOn(t, cfg, l, mem)
	var buf strings.Builder
	if err := r.Activity.WriteTable(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Execution", "Warp control unit", "Register file",
		"Load/store unit", "Memory system", "Occupancy",
		"coalesced requests", "DRAM activates", "threads launched",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stats table missing %q", want)
		}
	}
}

func TestDDR3ConfigRuns(t *testing.T) {
	cfg := config.GT240()
	cfg.MemType = "ddr3"
	cfg.MemDataRateGbps = 1.6
	mem := kernel.NewGlobalMem()
	l, cAddr, want := vecAddLaunch(2048, 128, mem)
	r := runOn(t, cfg, l, mem)
	got := mem.ReadF32Slice(cAddr, len(want))
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ddr3 config: c[%d] wrong", i)
		}
	}
	// Slower memory: longer bursts, so the memory-bound kernel slows down.
	mem2 := kernel.NewGlobalMem()
	l2, _, _ := vecAddLaunch(2048, 128, mem2)
	fast := runOn(t, config.GT240(), l2, mem2)
	if r.Activity.Cycles <= fast.Activity.Cycles {
		t.Error("DDR3 at 1.6 Gbps should be slower than GDDR5 at 3.4 Gbps")
	}
}
