package sim

import (
	"math/bits"
	"sort"
)

// Warp scheduling policies. The paper's baseline is the rotating-priority
// (round-robin) scheduler of Section III-C1; its conclusion proposes
// studying "two-level scheduling" and similar mechanisms "from a power
// perspective", so the simulator supports three policies:
//
//	rr        rotating priority over all in-flight warps (default)
//	gto       greedy-then-oldest: keep issuing the same warp until it
//	          stalls, then fall back to the oldest ready warp
//	twolevel  Narasiman et al.: a small active set is scheduled
//	          round-robin; warps that stall on memory are swapped out for
//	          pending warps. The smaller active set needs a narrower
//	          priority encoder, which is precisely its power appeal.
const (
	PolicyRR       = "rr"
	PolicyGTO      = "gto"
	PolicyTwoLevel = "twolevel"
)

// candidateOrder fills buf with the slot indices scheduler `sched` should
// consider this cycle, in priority order.
func (g *gpuSim) candidateOrder(c *coreState, sched int, buf []int) []int {
	buf = buf[:0]
	n := len(c.slots)
	mine := func(i int) bool { return i%c.cfg.Schedulers == sched }
	issuable := func(sl *warpSlot) bool {
		return sl.active && sl.ibValid && !sl.w.Finished && !sl.w.AtBarrier
	}

	// cand is the issuable mask restricted to this scheduler's slots; the
	// mask-kept paths below iterate its set bits (ascending slot order,
	// matching the field-scan loops they replace) instead of re-deriving
	// the predicate per slot.
	var cand uint64
	if c.useMasks {
		cand = c.issuable & c.schedMask[sched]
		if cand == 0 {
			return buf
		}
	}

	switch g.policy {
	case PolicyGTO:
		last := c.lastIssued[sched]
		if c.useMasks {
			// Greedy: last-issued warp first, then the others ascending
			// (the sort below orders them by age).
			if last >= 0 && cand&(1<<last) != 0 {
				buf = append(buf, last)
			}
			for m := cand; m != 0; m &= m - 1 {
				if i := bits.TrailingZeros64(m); i != last {
					buf = append(buf, i)
				}
			}
		} else {
			// Greedy: last-issued warp first.
			if last >= 0 && mine(last) && issuable(&c.slots[last]) {
				buf = append(buf, last)
			}
			// Then all other issuable warps, oldest first.
			for i := 0; i < n; i++ {
				if i != last && mine(i) && issuable(&c.slots[i]) {
					buf = append(buf, i)
				}
			}
		}
		rest := buf
		if len(buf) > 0 && buf[0] == last {
			rest = buf[1:]
		}
		sort.Slice(rest, func(a, b int) bool {
			return c.slots[rest[a]].ageStamp < c.slots[rest[b]].ageStamp
		})
		return buf

	case PolicyTwoLevel:
		// Active set: the K oldest issuable warps not waiting on memory.
		// The two sets live in reusable per-core buffers.
		k := g.activeSet
		active, pending := c.tlActive[:0], c.tlPend[:0]
		if c.useMasks {
			for m := cand; m != 0; m &= m - 1 {
				i := bits.TrailingZeros64(m)
				if c.slots[i].memPending > 0 {
					pending = append(pending, i)
				} else {
					active = append(active, i)
				}
			}
		} else {
			for i := 0; i < n; i++ {
				if !mine(i) || !issuable(&c.slots[i]) {
					continue
				}
				if c.slots[i].memPending > 0 {
					pending = append(pending, i)
				} else {
					active = append(active, i)
				}
			}
		}
		sort.Slice(active, func(a, b int) bool {
			return c.slots[active[a]].ageStamp < c.slots[active[b]].ageStamp
		})
		if len(active) > k {
			pending = append(pending, active[k:]...)
			active = active[:k]
		}
		// Round-robin within the active set, then the pending warps.
		start := 0
		for i, s := range active {
			if s >= c.issueRR[sched] {
				start = i
				break
			}
		}
		for i := 0; i < len(active); i++ {
			buf = append(buf, active[(start+i)%len(active)])
		}
		buf = append(buf, pending...)
		c.tlActive, c.tlPend = active, pending
		return buf

	default: // PolicyRR
		// Hot path: visit only this scheduler's slots (i ≡ sched mod S),
		// starting at the rotating priority pointer, without closure calls
		// or per-step modulo. Order matches a full (issueRR+scan)%n sweep
		// filtered to this scheduler's congruence class.
		S := c.cfg.Schedulers
		rr := c.issueRR[sched]
		if rr >= n {
			rr = 0
		}
		first := rr + ((sched-rr)%S+S)%S
		if c.useMasks {
			// Candidates at or after the priority pointer's first class
			// slot, ascending, then the wrapped remainder. The class has no
			// members in [rr, first), so cand&^hi == the class's candidates
			// below rr — exactly the field loop's second window.
			var hi uint64
			if first < 64 {
				hi = cand >> first << first
			}
			for m := hi; m != 0; m &= m - 1 {
				buf = append(buf, bits.TrailingZeros64(m))
			}
			for m := cand &^ hi; m != 0; m &= m - 1 {
				buf = append(buf, bits.TrailingZeros64(m))
			}
			return buf
		}
		for i := first; i < n; i += S {
			sl := &c.slots[i]
			if sl.active && sl.ibValid && !sl.w.Finished && !sl.w.AtBarrier {
				buf = append(buf, i)
			}
		}
		for i := sched; i < rr; i += S {
			sl := &c.slots[i]
			if sl.active && sl.ibValid && !sl.w.Finished && !sl.w.AtBarrier {
				buf = append(buf, i)
			}
		}
		return buf
	}
}
