package sim_test

// Equivalence tests for intra-simulation parallel core stepping: any worker
// count must be bit-identical to the sequential reference loop in every
// activity counter, in the derived headline results, and in the functional
// global-memory image — in both the event-driven and dense clock modes —
// and repeated runs at the same worker count must reproduce themselves.

import (
	"fmt"
	"reflect"
	"testing"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/sim"
)

func TestParallelEquivalence(t *testing.T) {
	// The config knob must decide the worker count here, whatever the
	// ambient environment (make ci-seq exports GPUSIMPOW_SIM_WORKERS=1).
	t.Setenv("GPUSIMPOW_SIM_WORKERS", "")

	gpus := []func() *config.GPU{config.GT240, config.GTX580}
	kernels := []string{"vectorAdd", "BlackScholes", "bfs", "mergeSort"}
	for _, mk := range gpus {
		for _, dense := range []bool{false, true} {
			for _, kname := range kernels {
				ref := mk()
				ref.DenseClock = dense
				ref.SimWorkers = 1
				refRes, refMem := runSuiteMode(t, ref, kname)

				for _, workers := range []int{2, 8} {
					name := fmt.Sprintf("%s/%s/dense=%v/workers=%d", ref.Name, kname, dense, workers)
					t.Run(name, func(t *testing.T) {
						// Two repetitions: the second catches any hidden
						// scheduling-dependent state the first happened to
						// get right.
						for rep := 0; rep < 2; rep++ {
							cfg := mk()
							cfg.DenseClock = dense
							cfg.SimWorkers = workers
							res, mem := runSuiteMode(t, cfg, kname)
							if len(res) != len(refRes) {
								t.Fatalf("rep %d: launch counts differ: %d vs %d", rep, len(res), len(refRes))
							}
							for i := range res {
								if !reflect.DeepEqual(res[i].Activity, refRes[i].Activity) {
									t.Errorf("rep %d launch %d: activity counters diverge:\nparallel:   %+v\nsequential: %+v",
										rep, i, res[i].Activity, refRes[i].Activity)
								} else if !reflect.DeepEqual(res[i], refRes[i]) {
									t.Errorf("rep %d launch %d: derived results diverge:\nparallel:   %+v\nsequential: %+v",
										rep, i, res[i], refRes[i])
								}
							}
							if !reflect.DeepEqual(mem, refMem) {
								t.Errorf("rep %d: global memory images diverge from the sequential reference", rep)
							}
						}
					})
				}
			}
		}
	}
}

// TestPooledWarpStateIsolation drives more blocks through a small GPU than
// can be resident at once, so retired warps and block contexts recycle
// through the per-core pools many times. Block 0 poisons a register and its
// shared memory; every other block stores the same never-written register
// plus the same never-written shared word, and must observe zeros — a
// pooled warp or block context leaking state across blocks shows up as the
// poison value in a later block's output.
func TestPooledWarpStateIsolation(t *testing.T) {
	t.Setenv("GPUSIMPOW_SIM_WORKERS", "")

	const (
		blocks  = 256
		threads = 16 // partial warp: lane masks must reset too
		poison  = 0xBEEF
	)
	b := kernel.NewBuilder("poolIsolation", 8)
	b.Params(1)
	b.SMem(4 * threads)
	// r0 = global thread id (r1, r2 scratch).
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	// r6 = (ctaX == 0); r2 = shared-memory offset of this thread's word.
	b.SReg(5, kernel.SpecCtaX)
	b.ISet(6, kernel.CmpEQ, kernel.R(5), kernel.I(0))
	b.SReg(1, kernel.SpecTidX)
	b.IShl(2, kernel.R(1), kernel.I(2))
	// Block 0 poisons r7 and its shared-memory word; everyone else leaves
	// both untouched and must read them back as zero.
	b.When(6).MovI(7, poison)
	b.When(6).St(kernel.SpaceShared, kernel.R(2), kernel.R(7), 0)
	b.Bar()
	b.Ld(kernel.SpaceShared, 3, kernel.R(2), 0)
	b.IAdd(3, kernel.R(3), kernel.R(7))
	// out[gtid] = r3 + r7's contribution.
	b.IShl(4, kernel.R(0), kernel.I(2))
	b.LdParam(1, 0)
	b.IAdd(4, kernel.R(4), kernel.R(1))
	b.St(kernel.SpaceGlobal, kernel.R(4), kernel.R(3), 0)
	b.Exit()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := config.GT240()
			cfg.SimWorkers = workers
			g, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			mem := kernel.NewGlobalMem()
			const outBase = 0x1000
			for i := 0; i < blocks*threads; i++ {
				mem.Write32(outBase+uint32(4*i), 0xDEADDEAD)
			}
			l := &kernel.Launch{
				Prog:   prog,
				Grid:   kernel.Dim{X: blocks, Y: 1},
				Block:  kernel.Dim{X: threads, Y: 1},
				Params: []uint32{outBase},
			}
			if _, err := g.Run(l, mem, nil); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < blocks*threads; i++ {
				want := uint32(0)
				if i < threads { // block 0 sees its own poison twice
					want = 2 * poison
				}
				if got := mem.Read32(outBase + uint32(4*i)); got != want {
					t.Fatalf("thread %d (block %d): out = %#x, want %#x — pooled state leaked across blocks",
						i, i/threads, got, want)
				}
			}
		})
	}
}
