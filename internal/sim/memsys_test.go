package sim

import (
	"testing"
	"testing/quick"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
)

// stridedLoadKernel loads in[gid*stride] and stores a result.
func stridedLoadKernel(stride int32) *kernel.Program {
	b := kernel.NewBuilder("strided", 12).Params(2)
	b.SReg(0, kernel.SpecTidX)
	b.SReg(1, kernel.SpecCtaX)
	b.SReg(2, kernel.SpecNTidX)
	b.IMad(0, kernel.R(1), kernel.R(2), kernel.R(0))
	b.LdParam(3, 0)
	b.IMul(4, kernel.R(0), kernel.I(stride*4))
	b.IAdd(4, kernel.R(3), kernel.R(4))
	b.Ld(kernel.SpaceGlobal, 5, kernel.R(4), 0)
	b.LdParam(6, 1)
	b.IShl(7, kernel.R(0), kernel.I(2))
	b.IAdd(6, kernel.R(6), kernel.R(7))
	b.St(kernel.SpaceGlobal, kernel.R(6), kernel.R(5), 0)
	b.Exit()
	return b.MustBuild()
}

func runStride(t *testing.T, stride int32) *Result {
	t.Helper()
	mem := kernel.NewGlobalMem()
	const threads = 1024
	in := mem.AllocZeroF32(threads * int(stride))
	out := mem.AllocZeroF32(threads)
	l := &kernel.Launch{
		Prog:   stridedLoadKernel(stride),
		Grid:   kernel.Dim{X: threads / 256, Y: 1},
		Block:  kernel.Dim{X: 256, Y: 1},
		Params: []uint32{in, out},
	}
	g, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, nil)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCoalescingUnitStride(t *testing.T) {
	// Unit stride: a 32-lane warp covers exactly one 128 B segment per load.
	r := runStride(t, 1)
	a := r.Activity
	// Every global access of a unit-stride warp coalesces to exactly one
	// 128 B segment (param loads go through the constant path, not the
	// coalescer).
	if a.CoalescedReqs != a.CoalescerQueries {
		t.Errorf("unit stride: %d segments for %d coalesced accesses (want 1 per access)",
			a.CoalescedReqs, a.CoalescerQueries)
	}
}

func TestCoalescingScattered(t *testing.T) {
	// Stride 32 (128 B): every lane in its own segment -> 32 requests per
	// load warp; the store side stays coalesced.
	unit := runStride(t, 1)
	scattered := runStride(t, 32)
	if scattered.Activity.CoalescedReqs <= 8*unit.Activity.CoalescedReqs {
		t.Errorf("stride-32 should explode segment count: %d vs unit %d",
			scattered.Activity.CoalescedReqs, unit.Activity.CoalescedReqs)
	}
	if scattered.Activity.Cycles <= unit.Activity.Cycles {
		t.Error("uncoalesced access must cost cycles")
	}
	if scattered.Activity.DRAMReadBursts <= unit.Activity.DRAMReadBursts {
		t.Error("uncoalesced access must cost DRAM traffic")
	}
}

func TestDRAMRowLocality(t *testing.T) {
	// Sequential streaming hits open rows; scattered access activates far
	// more rows per byte moved.
	unit := runStride(t, 1)
	scattered := runStride(t, 32)
	// The scattered footprint touches 32x the rows, so the open-row
	// tracking must issue more activates in total.
	if scattered.Activity.DRAMActivates <= unit.Activity.DRAMActivates {
		t.Errorf("row locality not modeled: %d activates scattered vs %d unit",
			scattered.Activity.DRAMActivates, unit.Activity.DRAMActivates)
	}
}

func TestConstantBroadcast(t *testing.T) {
	// All lanes reading the same constant address need ONE constant access
	// per warp ("if all addresses are equal, the memory access can be
	// serviced with a single constant memory request").
	b := kernel.NewBuilder("cbroadcast", 8).Params(1)
	b.SReg(0, kernel.SpecTidX)
	b.Ld(kernel.SpaceConst, 1, kernel.U(16), 0) // uniform address
	b.LdParam(2, 0)
	b.IShl(3, kernel.R(0), kernel.I(2))
	b.IAdd(2, kernel.R(2), kernel.R(3))
	b.St(kernel.SpaceGlobal, kernel.R(2), kernel.R(1), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(256 * 4)
	cmem := kernel.NewConstMem(64)
	cmem.WriteI32Slice(16, []int32{777})
	l := &kernel.Launch{Prog: prog, Grid: kernel.Dim{X: 1, Y: 1},
		Block: kernel.Dim{X: 256, Y: 1}, Params: []uint32{out}}
	g, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, cmem)
	if err != nil {
		t.Fatal(err)
	}
	// 8 warps, each one broadcast access; LdParam also goes through the
	// constant path (one per warp). Expect exactly 2 per warp = 16.
	if r.Activity.ConstReads != 16 {
		t.Errorf("const reads = %d, want 16 (1 broadcast + 1 param per warp)", r.Activity.ConstReads)
	}
	if got := mem.Read32(out); got != 777 {
		t.Errorf("broadcast value %d, want 777", got)
	}
}

func TestConstantDivergentAddresses(t *testing.T) {
	// Lane-dependent constant addresses serialize into one access per
	// distinct address.
	b := kernel.NewBuilder("cdiverge", 8).Params(1)
	b.SReg(0, kernel.SpecLane)
	b.IShl(1, kernel.R(0), kernel.I(2))
	b.Ld(kernel.SpaceConst, 2, kernel.R(1), 0) // 32 distinct addresses
	b.LdParam(3, 0)
	b.SReg(4, kernel.SpecTidX)
	b.IShl(5, kernel.R(4), kernel.I(2))
	b.IAdd(3, kernel.R(3), kernel.R(5))
	b.St(kernel.SpaceGlobal, kernel.R(3), kernel.R(2), 0)
	b.Exit()
	prog := b.MustBuild()
	mem := kernel.NewGlobalMem()
	out := mem.Alloc(32 * 4)
	cmem := kernel.NewConstMem(128)
	l := &kernel.Launch{Prog: prog, Grid: kernel.Dim{X: 1, Y: 1},
		Block: kernel.Dim{X: 32, Y: 1}, Params: []uint32{out}}
	g, err := New(config.GT240())
	if err != nil {
		t.Fatal(err)
	}
	r, err := g.Run(l, mem, cmem)
	if err != nil {
		t.Fatal(err)
	}
	// 1 warp: 32 distinct const reads + 1 param read = 33.
	if r.Activity.ConstReads != 33 {
		t.Errorf("const reads = %d, want 33", r.Activity.ConstReads)
	}
}

func TestOccupancyLimitedByRegisters(t *testing.T) {
	// A register-hungry kernel must co-locate fewer blocks per core. GT240:
	// 16384 regs/core; blocks of 256 threads x 64 regs = 16384 -> 1 block.
	mk := func(regs int) *kernel.Launch {
		b := kernel.NewBuilder("reghog", regs).Params(1)
		b.SReg(0, kernel.SpecTidX)
		b.LdParam(1, 0)
		b.IShl(2, kernel.R(0), kernel.I(2))
		b.IAdd(1, kernel.R(1), kernel.R(2))
		b.St(kernel.SpaceGlobal, kernel.R(1), kernel.R(0), 0)
		b.Exit()
		return &kernel.Launch{Prog: b.MustBuild(),
			Grid: kernel.Dim{X: 24, Y: 1}, Block: kernel.Dim{X: 256, Y: 1},
			Params: []uint32{0}}
	}
	run := func(regs int) *Result {
		mem := kernel.NewGlobalMem()
		l := mk(regs)
		l.Params[0] = mem.Alloc(256 * 4)
		g, err := New(config.GT240())
		if err != nil {
			t.Fatal(err)
		}
		r, err := g.Run(l, mem, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	lean := run(8)
	hog := run(64)
	// With 64 regs/thread only 1 block fits per core (vs 3 warps-limited
	// blocks at 8 regs), so the same 24 blocks serialize further.
	if hog.Activity.Cycles <= lean.Activity.Cycles {
		t.Errorf("register pressure should serialize blocks: %d vs %d cycles",
			hog.Activity.Cycles, lean.Activity.Cycles)
	}
}

func TestAGUCountsAddresses(t *testing.T) {
	r := runStride(t, 1)
	a := r.Activity
	// Every memory warp instruction generates one address per active lane:
	// 1024 threads x 2 accesses (1 load + 1 store)... plus param loads.
	if a.AGUAddresses < 2*1024 {
		t.Errorf("AGU addresses %d below the 2048 the data accesses require", a.AGUAddresses)
	}
}

func TestCoalesceHelperProperties(t *testing.T) {
	f := func(addrSeed uint32, mask uint32) bool {
		info := &kernel.StepInfo{ExecMask: mask}
		for l := 0; l < kernel.WarpSize; l++ {
			info.Addrs[l] = addrSeed + uint32(l)*64
		}
		segs := coalesce(info, nil)
		// All segments must be 128-byte aligned and sorted ascending.
		for i, s := range segs {
			if s%segmentBytes != 0 {
				return false
			}
			if i > 0 && segs[i-1] >= s {
				return false
			}
		}
		// Every active lane's address must fall into some segment.
		for l := 0; l < kernel.WarpSize; l++ {
			if mask&(1<<l) == 0 {
				continue
			}
			base := info.Addrs[l] &^ uint32(segmentBytes-1)
			found := false
			for _, s := range segs {
				if s == base {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		// No active lanes -> no segments.
		if mask == 0 && len(segs) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSMemExtraCyclesProperties(t *testing.T) {
	// Broadcast (all lanes same address) is conflict-free on any bank count.
	info := &kernel.StepInfo{ExecMask: kernel.FullMask}
	for l := range info.Addrs {
		info.Addrs[l] = 64
	}
	for _, banks := range []int{16, 32} {
		if extra := smemExtraCycles(info, banks); extra != 0 {
			t.Errorf("broadcast with %d banks: %d extra cycles, want 0", banks, extra)
		}
	}
	// Worst case: all lanes in one group hit one bank with distinct addrs.
	for l := range info.Addrs {
		info.Addrs[l] = uint32(l) * 16 * 4 // same bank on 16 banks
	}
	if extra := smemExtraCycles(info, 16); extra != 2*(16-1) {
		t.Errorf("16-way conflict in both half-warps: %d extra, want 30", extra)
	}
}
