// Package cache provides the set-associative cache timing/tag model used for
// the L1 data caches, constant caches and the shared L2 of the simulated GPU.
// Only tags are modeled: data values flow through the functional executor, so
// the cache answers hit/miss questions and tracks dirty state for write-back
// policies.
package cache

import (
	"fmt"
	"math/bits"
)

// WritePolicy selects the behaviour of stores.
type WritePolicy uint8

const (
	// WriteThrough sends every store to the next level and does not allocate
	// on store misses (the GPU L1 policy).
	WriteThrough WritePolicy = iota
	// WriteBack allocates on store misses and writes dirty lines back on
	// eviction (the GPU L2 policy).
	WriteBack
)

// Config sizes a cache.
type Config struct {
	SizeBytes int
	LineBytes int
	Assoc     int
	Policy    WritePolicy
}

// Cache is a set-associative tag store with LRU replacement.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// tags[set*assoc+way]; valid/dirty parallel arrays; lru holds ascending
	// use-order stamps.
	tags  []uint64
	valid []bool
	dirty []bool
	lru   []uint64
	tick  uint64

	// Stats.
	Reads, ReadMisses   uint64
	Writes, WriteMisses uint64
	Writebacks          uint64
}

// New builds a cache. Size must be a multiple of line*assoc and the derived
// set count a power of two.
func New(cfg Config) (*Cache, error) {
	if cfg.SizeBytes <= 0 || cfg.LineBytes <= 0 || cfg.Assoc <= 0 {
		return nil, fmt.Errorf("cache: non-positive geometry %+v", cfg)
	}
	if cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache: line size %d not a power of two", cfg.LineBytes)
	}
	lines := cfg.SizeBytes / cfg.LineBytes
	if lines*cfg.LineBytes != cfg.SizeBytes {
		return nil, fmt.Errorf("cache: size %d not a multiple of line %d", cfg.SizeBytes, cfg.LineBytes)
	}
	sets := lines / cfg.Assoc
	if sets == 0 || sets*cfg.Assoc != lines {
		return nil, fmt.Errorf("cache: %d lines not divisible into %d ways", lines, cfg.Assoc)
	}
	// Non-power-of-two set counts are allowed (real GPU L2s are built from
	// an odd number of partitions); indexing falls back to modulo.
	n := sets * cfg.Assoc
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: uint(bits.TrailingZeros(uint(cfg.LineBytes))),
		tags:     make([]uint64, n),
		valid:    make([]bool, n),
		dirty:    make([]bool, n),
		lru:      make([]uint64, n),
	}, nil
}

// Result reports the outcome of one access.
type Result struct {
	Hit bool
	// Writeback is set when a dirty victim was evicted; VictimLine is its
	// line address (byte address of line start).
	Writeback  bool
	VictimLine uint64
	// Filled reports whether the access allocated a line (miss traffic to
	// the next level).
	Filled bool
}

// Access performs a read or write of the line containing addr.
func (c *Cache) Access(addr uint64, write bool) Result {
	c.tick++
	line := addr >> c.lineBits
	set := int(line % uint64(c.sets))
	base := set * c.cfg.Assoc

	// Probe.
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == line {
			c.lru[i] = c.tick
			if write {
				c.Writes++
				if c.cfg.Policy == WriteBack {
					c.dirty[i] = true
				}
			} else {
				c.Reads++
			}
			return Result{Hit: true}
		}
	}

	// Miss.
	if write {
		c.Writes++
		c.WriteMisses++
		if c.cfg.Policy == WriteThrough {
			// No-allocate: the store goes straight through.
			return Result{}
		}
	} else {
		c.Reads++
		c.ReadMisses++
	}

	// Allocate: pick invalid way or LRU victim.
	victim := base
	for w := 0; w < c.cfg.Assoc; w++ {
		i := base + w
		if !c.valid[i] {
			victim = i
			break
		}
		if c.lru[i] < c.lru[victim] {
			victim = i
		}
	}
	res := Result{Filled: true}
	if c.valid[victim] && c.dirty[victim] {
		res.Writeback = true
		res.VictimLine = c.tags[victim] << c.lineBits
		c.Writebacks++
	}
	c.tags[victim] = line
	c.valid[victim] = true
	c.dirty[victim] = write && c.cfg.Policy == WriteBack
	c.lru[victim] = c.tick
	return res
}

// HitRate returns the overall hit fraction, or 1 when unused.
func (c *Cache) HitRate() float64 {
	total := c.Reads + c.Writes
	if total == 0 {
		return 1
	}
	return 1 - float64(c.ReadMisses+c.WriteMisses)/float64(total)
}

// Sets returns the number of sets (for the power model's array geometry).
func (c *Cache) Sets() int { return c.sets }

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Flush invalidates everything, returning the number of dirty lines that a
// real cache would have written back (kernel-boundary behaviour).
func (c *Cache) Flush() int {
	n := 0
	for i := range c.valid {
		if c.valid[i] && c.dirty[i] {
			n++
		}
		c.valid[i] = false
		c.dirty[i] = false
	}
	return n
}
