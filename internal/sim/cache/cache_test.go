package cache

import (
	"testing"
	"testing/quick"
)

func mk(t *testing.T, size, line, assoc int, pol WritePolicy) *Cache {
	t.Helper()
	c, err := New(Config{SizeBytes: size, LineBytes: line, Assoc: assoc, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewErrors(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 64, Assoc: 0},
		{SizeBytes: 1000, LineBytes: 64, Assoc: 4}, // not a multiple
		{SizeBytes: 1024, LineBytes: 48, Assoc: 4}, // line not pow2
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d (%+v): expected error", i, cfg)
		}
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mk(t, 1024, 64, 4, WriteBack)
	if r := c.Access(0x100, false); r.Hit {
		t.Error("cold access should miss")
	}
	if r := c.Access(0x100, false); !r.Hit {
		t.Error("second access should hit")
	}
	if r := c.Access(0x108, false); !r.Hit {
		t.Error("same-line access should hit")
	}
	if c.Reads != 3 || c.ReadMisses != 1 {
		t.Errorf("reads=%d misses=%d, want 3/1", c.Reads, c.ReadMisses)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, force 3 lines into one set.
	c := mk(t, 2*64*4, 64, 2, WriteBack) // 4 sets, 2 ways
	setStride := uint64(4 * 64)          // same set every 256 bytes
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a most recent
	c.Access(d, false) // evicts b
	if r := c.Access(a, false); !r.Hit {
		t.Error("a should still be resident")
	}
	if r := c.Access(b, false); r.Hit {
		t.Error("b should have been evicted (LRU)")
	}
}

func TestWriteThroughNoAllocate(t *testing.T) {
	c := mk(t, 1024, 64, 4, WriteThrough)
	if r := c.Access(0x40, true); r.Hit || r.Filled {
		t.Error("write-through store miss must not allocate")
	}
	if r := c.Access(0x40, false); r.Hit {
		t.Error("line must not be resident after store no-allocate")
	}
	// After a load allocates, a store hit must not dirty the line.
	c.Access(0x80, false)
	c.Access(0x80, true)
	if n := c.Flush(); n != 0 {
		t.Errorf("write-through cache flushed %d dirty lines, want 0", n)
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := mk(t, 2*64, 64, 1, WriteBack) // 2 sets, direct mapped
	c.Access(0x00, true)               // allocate dirty in set 0
	r := c.Access(0x80, true)          // same set, evicts dirty victim
	if !r.Writeback {
		t.Error("evicting dirty line must report writeback")
	}
	if r.VictimLine != 0 {
		t.Errorf("victim line = %#x, want 0", r.VictimLine)
	}
	if c.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", c.Writebacks)
	}
}

func TestHitRate(t *testing.T) {
	c := mk(t, 1024, 64, 4, WriteBack)
	if c.HitRate() != 1 {
		t.Error("unused cache should report hit rate 1")
	}
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	c.Access(0, false)
	if hr := c.HitRate(); hr != 0.75 {
		t.Errorf("hit rate = %v, want 0.75", hr)
	}
}

func TestFlush(t *testing.T) {
	c := mk(t, 1024, 64, 4, WriteBack)
	c.Access(0x000, true)
	c.Access(0x400, true)
	c.Access(0x800, false)
	if n := c.Flush(); n != 2 {
		t.Errorf("flush returned %d dirty lines, want 2", n)
	}
	if r := c.Access(0x000, false); r.Hit {
		t.Error("flush must invalidate")
	}
}

func TestWorkingSetResidency(t *testing.T) {
	// A working set equal to the cache size must be fully resident after a
	// warm-up pass (no conflict surprises with pow2 strides).
	c := mk(t, 4096, 64, 4, WriteBack)
	for pass := 0; pass < 2; pass++ {
		for addr := uint64(0); addr < 4096; addr += 64 {
			c.Access(addr, false)
		}
	}
	// Second pass must have been all hits.
	if c.ReadMisses != 64 {
		t.Errorf("misses = %d, want 64 (cold only)", c.ReadMisses)
	}
}

func TestQuickProperty(t *testing.T) {
	// Property: an access immediately repeated always hits, and stats are
	// consistent (misses <= accesses).
	c := mk(t, 8192, 128, 8, WriteBack)
	f := func(addr uint32, write bool) bool {
		c.Access(uint64(addr), write)
		r := c.Access(uint64(addr), false)
		if !r.Hit {
			return false
		}
		return c.ReadMisses <= c.Reads && c.WriteMisses <= c.Writes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
