package sim

import (
	"fmt"
	"math/bits"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync/atomic"

	"gpusimpow/internal/config"
	"gpusimpow/internal/kernel"
	"gpusimpow/internal/runner"
)

// Parallel core stepping.
//
// Within one clock cycle the per-core work — event drain, retirement
// sweep, fetch, issue — couples cores through exactly three shared things:
// the scalar activity counters, the chip-level occupancy/dispatch
// bookkeeping, and the memory hierarchy below the cores (the shared L2 and
// DRAM timing state, plus the functional global-memory image). Everything
// else (warp slots, L1/const/texture caches, pipelines, writeback heaps)
// is core-private. So the cores are sharded across a bounded worker set:
// each worker steps a fixed contiguous core range against a private
// stepper that accumulates counters in an Activity shard, occupancy
// changes as deltas, functional global-memory operations in a
// kernel.GlobalCapture, and L2/DRAM-bound requests as staged records. At
// the cycle barrier the main goroutine merges the shards and replays the
// captures and staged requests worker by worker — ascending worker index
// is ascending core id, and within a worker records are appended in issue
// order, so the replay reproduces the sequential loop's total order and
// with it every counter and every byte of memory, bit for bit
// (TestParallelEquivalence). SimWorkers=1 bypasses all of this: the one
// sequential stepper aliases the real Activity and applies memory traffic
// inline, which IS the pre-parallelism code path.
//
// Deferring a load's register write to the barrier is invisible to the
// machine model: the scoreboard (or the blocking-warp rule when there is
// no scoreboard) prevents any dependent issue until the instruction's
// writeback event fires, cycles after the barrier replay has landed the
// value.

// stagedAccess is one memory instruction's deferred L2/DRAM traffic, plus
// the writeback event whose latency depends on it.
type stagedAccess struct {
	c *coreState
	// space selects the replay path: SpaceConst/SpaceParam (constant-cache
	// miss fills), SpaceTexture (texture miss fills), SpaceGlobal.
	space kernel.Space
	write bool
	// addrs are the deferred request addresses (constant miss addresses,
	// texture miss lines, or global segment bases), sliced out of the
	// stepper's arena.
	addrs []uint32
	// reqBytes is the per-request transfer size.
	reqBytes int
	now      uint64
	// floorLat is the latency floor for const/texture accesses; worstAbs
	// is the max completion cycle already observed inline (global-read L1
	// hits).
	floorLat uint64
	worstAbs uint64
	// needEvent: the writeback event could not be pushed at issue because
	// its latency depends on the replayed requests. slot/reg/hasWB/lanes
	// parameterize it (isMem is implied).
	needEvent bool
	slot      int
	reg       uint8
	hasWB     bool
	lanes     int
}

// stepper is the per-worker view of one clock cycle. The sequential path
// uses a single stepper whose act aliases the simulation's real Activity
// and whose stage flag is off, making every staging branch fall through to
// the exact pre-parallelism behaviour.
type stepper struct {
	sim *gpuSim
	// act receives the phase's scalar counters: &sim.act when sequential,
	// &shard when parallel.
	act   *Activity
	shard Activity
	// stage diverts shared-memory-system traffic and functional global
	// ops into staged/capture instead of applying them inline.
	stage bool

	progress   bool
	structNext uint64
	busyCores  []int

	// Retirement deltas, applied to the chip-wide occupancy counters at
	// the merge (nothing reads them mid-phase).
	retiredDelta       int
	residentDelta      int
	clusterBlocksDelta []int
	clusterCoresDelta  []int

	capture   kernel.GlobalCapture
	staged    []stagedAccess
	addrArena []uint32

	err        error
	panicVal   any
	panicStack []byte
}

func newStepper(s *gpuSim, parallel bool) *stepper {
	st := &stepper{
		sim:                s,
		stage:              parallel,
		clusterBlocksDelta: make([]int, s.cfg.Clusters),
		clusterCoresDelta:  make([]int, s.cfg.Clusters),
	}
	if parallel {
		st.act = &st.shard
	} else {
		st.act = &s.act
	}
	return st
}

// reset prepares the stepper for a new cycle.
func (st *stepper) reset() {
	st.progress = false
	st.structNext = ^uint64(0)
	st.busyCores = st.busyCores[:0]
	st.retiredDelta = 0
	st.residentDelta = 0
	for i := range st.clusterBlocksDelta {
		st.clusterBlocksDelta[i] = 0
		st.clusterCoresDelta[i] = 0
	}
	if st.stage {
		st.shard = Activity{}
		st.capture.Reset()
		st.staged = st.staged[:0]
		st.addrArena = st.addrArena[:0]
	}
	st.err = nil
}

// stepRange steps the cores in [lo, hi), stopping at the first error (the
// sequential loop aborts the same way).
func (st *stepper) stepRange(lo, hi int, cycle uint64) {
	for _, c := range st.sim.cores[lo:hi] {
		if !c.residentWarps() && len(c.events) == 0 {
			continue
		}
		st.busyCores = append(st.busyCores, c.id)
		st.stepCore(c, cycle)
		if st.err != nil {
			return
		}
	}
}

// stepCore runs one core's cycle: writeback drain, retirement sweep,
// fetch, issue, busy-cycle credit.
func (st *stepper) stepCore(c *coreState, cycle uint64) {
	if c.drainEvents(cycle, st.act) > 0 {
		st.progress = true
	}
	st.drainRetirements(c)
	if c.fetchStage(cycle, st.act) > 0 {
		st.progress = true
	}
	if err := st.issueStage(c, cycle); err != nil {
		st.err = err
		return
	}
	// CoreBusyCycles is indexed by core id: each core has exactly one
	// owning worker per cycle, so writing the real slice directly is
	// race-free and spares the shard a slice.
	st.sim.act.CoreBusyCycles[c.id]++
}

// retireIfDone frees a block once all warps finished and all in-flight
// instructions drained. Chip-wide occupancy updates accumulate as deltas.
func (st *stepper) retireIfDone(c *coreState, b *blockRt) bool {
	if b.finished < b.total || b.outstanding != 0 {
		return false
	}
	c.retire(b, st.sim.blockSMem, st.sim.blockRegs)
	st.retiredDelta++
	st.residentDelta += b.total
	st.clusterBlocksDelta[c.cluster]++
	if !c.residentWarps() {
		st.clusterCoresDelta[c.cluster]++
	}
	st.progress = true
	return true
}

// drainRetirements retires any blocks that completed via event drains.
func (st *stepper) drainRetirements(c *coreState) {
	for i := 0; i < len(c.blocks); {
		if st.retireIfDone(c, c.blocks[i]) {
			continue // retire spliced the slice
		}
		i++
	}
}

// mergeStepper folds a stepper's cycle results into the simulation.
func (s *gpuSim) mergeStepper(st *stepper) {
	if st.progress {
		s.progress = true
	}
	if st.structNext < s.structNext {
		s.structNext = st.structNext
	}
	s.retired += st.retiredDelta
	s.resident -= st.residentDelta
	for cl, d := range st.clusterBlocksDelta {
		s.clusterBlocks[cl] -= d
	}
	for cl, d := range st.clusterCoresDelta {
		s.clusterCores[cl] -= d
	}
	if st.stage {
		s.act.addScalars(&st.shard)
	}
	s.busyCores = append(s.busyCores, st.busyCores...)
}

// replayStaged applies one stepper's deferred memory-system requests in
// record order, computing the deferred writeback latencies exactly as the
// sequential path would have at issue.
func (s *gpuSim) replayStaged(st *stepper) {
	a := &s.act
	for i := range st.staged {
		rec := &st.staged[i]
		var latency uint64
		switch rec.space {
		case kernel.SpaceConst, kernel.SpaceParam:
			worst := rec.floorLat
			for _, ad := range rec.addrs {
				done := s.mem.globalSegment(rec.now, constRegionBase+ad, rec.reqBytes, false, a)
				if done-rec.now > worst {
					worst = done - rec.now
				}
			}
			latency = worst
		case kernel.SpaceTexture:
			worst := rec.floorLat
			for _, line := range rec.addrs {
				done := s.mem.globalSegment(rec.now, line, rec.reqBytes, false, a)
				if done-rec.now > worst {
					worst = done - rec.now
				}
			}
			latency = worst
		case kernel.SpaceGlobal:
			if rec.write {
				for _, seg := range rec.addrs {
					s.mem.globalSegment(rec.now, seg, rec.reqBytes, true, a)
				}
				continue // store events were pushed at issue (fixed latency)
			}
			worst := rec.worstAbs
			for _, seg := range rec.addrs {
				done := s.mem.globalSegment(rec.now, seg, rec.reqBytes, false, a)
				if done > worst {
					worst = done
				}
			}
			if worst <= rec.now {
				worst = rec.now + uint64(s.cfg.SMemLatency)
			}
			latency = worst - rec.now
		}
		if rec.needEvent {
			rec.c.events.push(wbEvent{
				cycle: rec.now + latency, slot: rec.slot, reg: rec.reg,
				hasWB: rec.hasWB, isMem: true, lanes: rec.lanes,
			})
		}
	}
}

// workerPool is the persistent goroutine set that steps core shards. The
// cycle barrier is a generation counter plus a completion count: the main
// goroutine publishes work by bumping gen, workers report by bumping done.
// All transitions go through sync/atomic, which both orders the memory
// (publish/observe) and satisfies the race detector. Waiters spin briefly
// then yield — on a host with fewer free CPUs than workers a pure spin
// would livelock the barrier, and the equivalence tests run 8 workers on
// whatever CI gives them.
type workerPool struct {
	steppers []*stepper
	ranges   [][2]int
	cycle    uint64
	gen      atomic.Uint64
	done     atomic.Int64
	quit     atomic.Bool
}

func newWorkerPool(s *gpuSim, workers int) *workerPool {
	p := &workerPool{}
	n := len(s.cores)
	base, rem := n/workers, n%workers
	lo := 0
	for w := 0; w < workers; w++ {
		size := base
		if w < rem {
			size++
		}
		p.steppers = append(p.steppers, newStepper(s, true))
		p.ranges = append(p.ranges, [2]int{lo, lo + size})
		lo += size
	}
	for w := 0; w < workers; w++ {
		go p.worker(w)
	}
	return p
}

func (p *workerPool) worker(w int) {
	st := p.steppers[w]
	lo, hi := p.ranges[w][0], p.ranges[w][1]
	var lastGen uint64
	for {
		for spin := 0; ; spin++ {
			g := p.gen.Load()
			if g != lastGen {
				lastGen = g
				break
			}
			if spin > 64 {
				runtime.Gosched()
			}
		}
		if p.quit.Load() {
			p.done.Add(1)
			return
		}
		p.step(st, lo, hi)
		p.done.Add(1)
	}
}

// step runs one worker's shard with panic containment: the panic value and
// stack are recorded for the main goroutine to re-raise, keeping the pool
// goroutines alive for the run's remaining cycles (the runner's job-level
// containment then turns the re-raised panic into a *PanicError).
func (p *workerPool) step(st *stepper, lo, hi int) {
	defer func() {
		if r := recover(); r != nil {
			st.panicVal = r
			st.panicStack = debug.Stack()
		}
	}()
	st.stepRange(lo, hi, p.cycle)
}

// runCycle steps all shards through one cycle and waits for the barrier.
func (p *workerPool) runCycle(cycle uint64) {
	for _, st := range p.steppers {
		st.reset()
	}
	p.cycle = cycle
	p.done.Store(0)
	p.gen.Add(1)
	p.wait()
}

func (p *workerPool) wait() {
	want := int64(len(p.steppers))
	for spin := 0; p.done.Load() != want; spin++ {
		if spin > 64 {
			runtime.Gosched()
		}
	}
}

// stop shuts the worker goroutines down (deferred from Run, so it also
// runs after an error or a re-raised worker panic).
func (p *workerPool) stop() {
	p.quit.Store(true)
	p.done.Store(0)
	p.gen.Add(1)
	p.wait()
}

// stepParallel runs one parallel cycle: fan out, barrier, merge, replay.
func (s *gpuSim) stepParallel(cycle uint64) error {
	p := s.pool
	p.runCycle(cycle)
	for _, st := range p.steppers {
		if st.panicVal != nil {
			panic(fmt.Sprintf("sim worker panic: %v\n%s", st.panicVal, st.panicStack))
		}
	}
	for _, st := range p.steppers {
		if st.err != nil {
			// The lowest-core error wins, as in the sequential loop (worker
			// ranges ascend and a worker stops at its first error). The
			// machine state is abandoned either way.
			return st.err
		}
	}
	for _, st := range p.steppers {
		s.mergeStepper(st)
	}
	// Functional global memory first, then memory-system timing: the two
	// domains are disjoint, and within each the worker-then-record order
	// reproduces the sequential (core, issue) interleaving exactly.
	for _, st := range p.steppers {
		st.capture.Replay(s.global, 0, st.capture.Len())
	}
	for _, st := range p.steppers {
		s.replayStaged(st)
	}
	return nil
}

// resolveSimWorkers picks the worker count for one run and reserves its
// extra threads from the shared runner budget. Precedence:
// GPUSIMPOW_SIM_WORKERS (positive integer) over cfg.SimWorkers (positive)
// over auto. Forced counts reserve unconditionally — the user's word beats
// the heuristic; auto asks TryReserveWorkers for GOMAXPROCS-derived
// workers and takes whatever the sweep-level fan-out left over, falling
// back to the sequential path when nothing is free. The count is capped at
// the core count (extra workers would own empty shards). Returns the
// worker count and the number of budget slots to release after the run.
func resolveSimWorkers(cfg *config.GPU) (workers, reserved int) {
	req := 0 // 0 = auto
	if v := os.Getenv("GPUSIMPOW_SIM_WORKERS"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			req = n
		}
	} else if cfg.SimWorkers > 0 {
		req = cfg.SimWorkers
	}
	maxW := cfg.NumCores()
	if req == 0 {
		want := runtime.GOMAXPROCS(0)
		// Never auto-spin more stepper threads than physical CPUs: with
		// GOMAXPROCS inflated past runtime.NumCPU (common in test
		// containers), the spin barrier degenerates into a scheduling
		// storm — runnable spinners and the one goroutine with real work
		// round-robin on the same core. A forced count still gets what it
		// asked for; auto prefers the sequential path over oversubscribing.
		if ncpu := runtime.NumCPU(); want > ncpu {
			want = ncpu
		}
		if want > maxW {
			want = maxW
		}
		if want <= 1 {
			return 1, 0
		}
		got := runner.TryReserveWorkers(want - 1)
		return got + 1, got
	}
	if req > maxW {
		req = maxW
	}
	if req <= 1 {
		return 1, 0
	}
	runner.ReserveWorkers(req - 1)
	return req, req - 1
}

// popcount64 is a tiny alias so mask-path call sites read uniformly.
func popcount64(m uint64) int { return bits.OnesCount64(m) }
